(* Tests for the Docker-Slim pipeline: fanotify recording, keep-set
   closure, slim-image construction, validation, and the Figure 5 dataset
   shape (mean 66.6 %, 6/50 below 10 %, most mass in 60-97 %). *)

open Repro_util
open Repro_image
open Repro_runtime
open Repro_cntr
open Repro_slim

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let ok' = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.to_string e)

let nginx world =
  match Registry.find world.World.registry "nginx:latest" with
  | Some i -> i
  | None -> Alcotest.fail "catalogue missing nginx"

let test_recorder_tracks_accesses () =
  let world = Testbed.create () in
  let image = nginx world in
  let report = ok' (Slimmer.analyze ~world image) in
  (* the binary, config and manifest must be in the keep set *)
  check_b "binary kept" true (List.mem "/usr/sbin/nginx" report.Slimmer.r_kept_paths);
  check_b "config kept" true (List.mem "/etc/nginx.conf" report.Slimmer.r_kept_paths);
  check_b "manifest kept" true (List.mem "/etc/app.manifest" report.Slimmer.r_kept_paths);
  (* cold data must not be *)
  check_b "ballast dropped" false
    (List.exists (fun p -> Pathx.is_under ~dir:"/usr/share/doc" p && p <> "/usr/share/doc")
       report.Slimmer.r_kept_paths)

let test_closure_includes_parents () =
  let keep = Slimmer.closure [ "/usr/share/nginx/hot.dat" ] in
  check_b "file" true (Hashtbl.mem keep "/usr/share/nginx/hot.dat");
  check_b "parent" true (Hashtbl.mem keep "/usr/share/nginx");
  check_b "grandparent" true (Hashtbl.mem keep "/usr/share");
  check_b "always-keep passwd" true (Hashtbl.mem keep "/etc/passwd")

(* closure must be insensitive to duplicate inputs and shared ancestors *)
let test_closure_duplicate_ancestors () =
  let paths = [ "/a/b/c.txt"; "/a/b/sub/d.txt"; "/a/b/c.txt"; "/a/b/sub/d.txt" ] in
  let keep = Slimmer.closure paths in
  List.iter
    (fun p -> check_b p true (Hashtbl.mem keep p))
    [ "/a/b/c.txt"; "/a/b/sub/d.txt"; "/a/b/sub"; "/a/b"; "/a" ];
  (* Hashtbl semantics: one binding per path even when ancestors are shared
     and inputs repeat *)
  let dedup = Slimmer.closure [ "/a/b/c.txt"; "/a/b/sub/d.txt" ] in
  check_i "duplicate inputs add nothing" (Hashtbl.length dedup) (Hashtbl.length keep);
  Hashtbl.iter (fun p () -> check_i ("single binding " ^ p) 1 (List.length (Hashtbl.find_all keep p))) keep

(* a path that is already in always_keep must not double up or change the set *)
let test_closure_always_keep_overlap () =
  let base = Slimmer.closure [] in
  List.iter
    (fun p -> check_b ("identity file " ^ p) true (Hashtbl.mem base p))
    Slimmer.always_keep;
  let overlap = Slimmer.closure Slimmer.always_keep in
  check_i "always_keep overlap is a no-op" (Hashtbl.length base) (Hashtbl.length overlap);
  check_i "passwd kept once" 1 (List.length (Hashtbl.find_all overlap "/etc/passwd"))

(* a path kept both as a file and as the directory prefix of another kept
   file: the slim image must carry it once, with its original entry *)
let test_closure_path_as_file_and_prefix () =
  let keep = Slimmer.closure [ "/data/app"; "/data/app/cache.db" ] in
  check_b "prefix path kept" true (Hashtbl.mem keep "/data/app");
  check_b "child kept" true (Hashtbl.mem keep "/data/app/cache.db");
  let image =
    Image.v ~name:"prefix-test"
      [
        Layer.v ~id:"l0"
          [
            Layer.Dir { path = "/data"; mode = 0o755 };
            Layer.Dir { path = "/data/app"; mode = 0o755 };
            Layer.File { path = "/data/app/cache.db"; mode = 0o644; content = Content.Filler 512 };
            Layer.File { path = "/data/other"; mode = 0o644; content = Content.Filler 256 };
          ];
      ]
  in
  let slim_image = Slimmer.build_slim_image image keep in
  let paths = Image.effective_paths slim_image in
  check_i "kept dir appears once" 1
    (List.length (List.filter (( = ) "/data/app") paths));
  check_b "child survives" true (List.mem "/data/app/cache.db" paths);
  check_b "unrelated sibling dropped" false (List.mem "/data/other" paths)

let test_slim_image_smaller_and_valid () =
  let world = Testbed.create () in
  let image = nginx world in
  let report, slim_image = ok' (Slimmer.slim ~world image) in
  check_b "smaller" true (report.Slimmer.r_slim_bytes < report.Slimmer.r_original_bytes);
  check_b "reduction substantial" true (report.Slimmer.r_reduction > 0.5);
  check_b "fewer files" true (report.Slimmer.r_slim_files < report.Slimmer.r_original_files);
  (* the slimmed container still runs its entrypoint successfully *)
  check_b "slim image still works" true (ok' (Slimmer.validate ~world slim_image))

let test_go_binary_low_reduction () =
  let world = Testbed.create () in
  let image =
    match Registry.find world.World.registry "etcd:latest" with
    | Some i -> i
    | None -> Alcotest.fail "catalogue missing etcd"
  in
  let report = ok' (Slimmer.analyze ~world image) in
  check_b "go image barely shrinks" true (report.Slimmer.r_reduction < 0.10)

let test_figure5_dataset_shape () =
  let world = Testbed.create () in
  let images = Catalog.top50 () in
  check_i "fifty images" 50 (List.length images);
  let reports =
    List.map
      (fun image ->
        match Slimmer.analyze ~world image with
        | Ok r -> r
        | Error e ->
            Alcotest.failf "analyze %s failed: %s" (Image.ref_ image) (Errno.to_string e))
      images
  in
  let reductions = List.map (fun r -> r.Slimmer.r_reduction *. 100.) reports in
  let mean = Stats.mean reductions in
  (* paper: 66.6 % average *)
  check_b (Printf.sprintf "mean reduction ~66%% (got %.1f)" mean) true
    (mean > 60. && mean < 73.);
  (* paper: 6/50 images below 10 % *)
  let below10 = List.length (List.filter (fun r -> r < 10.) reductions) in
  check_i "six images below 10%" 6 below10;
  (* paper: for over 75 % of containers the reduction is 60-97 % *)
  let in_band = List.length (List.filter (fun r -> r >= 60. && r <= 97.) reductions) in
  check_b (Printf.sprintf "75%%+ in [60,97] (got %d/50)" in_band) true (in_band * 4 >= 50 * 3)

(* --- static partitioning over synthesized families ------------------------- *)

let webd_member () =
  match Family.specs with
  | spec :: _ -> Family.member spec ~members:16 3
  | [] -> Alcotest.fail "no family specs"

(* the static keep set must cover the dynamic working set (the manifest) *)
let test_partition_superset_of_manifest () =
  let image = webd_member () in
  let keep = Partition.keep_set image in
  let entries = Image.effective_entries image in
  let manifest =
    match Hashtbl.find_opt entries Programs.manifest_path with
    | Some (Layer.File { content = Content.Literal text; _ }) ->
        String.split_on_char '\n' text |> List.map String.trim
        |> List.filter (( <> ) "")
    | _ -> Alcotest.fail "member image has no manifest"
  in
  check_b "manifest non-trivial" true (List.length manifest > 3);
  List.iter
    (fun p -> check_b ("manifest path statically kept: " ^ p) true (Hashtbl.mem keep p))
    manifest;
  (* but not everything: ballast must be dropped *)
  check_b "ballast dropped" false
    (Hashtbl.fold (fun p () acc -> acc || Pathx.is_under ~dir:"/opt" p) keep false)

(* static slim: valid (entrypoint exits 0) but keeps more than dynamic *)
let test_partition_valid_but_coarser_than_dynamic () =
  let world = Testbed.create () in
  let image = webd_member () in
  let static_report, static_image = Partition.slim image in
  check_b "static reduction positive" true (static_report.Partition.p_reduction > 0.0);
  check_b "static slim still works" true (ok' (Slimmer.validate ~world static_image));
  let dynamic_report = ok' (Slimmer.analyze ~world image) in
  (* the declared closure includes cold data the run never touches *)
  check_b
    (Printf.sprintf "static keeps more (static %.3f < dynamic %.3f)"
       static_report.Partition.p_reduction dynamic_report.Slimmer.r_reduction)
    true
    (static_report.Partition.p_reduction < dynamic_report.Slimmer.r_reduction)

(* images without a .deps graph degrade to keep-everything, never invalid *)
let test_partition_no_entrypoint_keeps_all () =
  let image =
    Image.v ~name:"no-entry"
      [ Layer.v ~id:"l0" [ Layer.File { path = "/x"; mode = 0o644; content = Content.Filler 64 } ] ]
  in
  let report, _slim = Partition.slim image in
  check_b "nothing dropped" true (report.Partition.p_reduction < 0.001)

(* the work-stealing sweep: heterogeneous per-image costs force steals *)
let test_sweep_steals_and_order () =
  let clock = Clock.create () in
  let images = Family.synthesize ~n:64 in
  check_i "synthesize count" 64 (List.length images);
  let cost_ns image = 50_000 + (Image.file_count image * 1_000) + (Image.effective_size image / 4096) in
  let stats, reports =
    Sweep.run ~workers:4 ~clock ~images ~cost_ns ~f:(fun i -> fst (Partition.slim i)) ()
  in
  check_i "one report per image" 64 (List.length reports);
  (* results come back in submission order *)
  List.iter2
    (fun image report ->
      Alcotest.(check string) "order" (Image.ref_ image) report.Partition.p_image)
    images reports;
  check_b "steals happened" true (stats.Sweep.sw_steals > 0);
  check_b "throughput positive" true (stats.Sweep.sw_images_per_s > 0.0)

let test_registry_pull_dedup () =
  let world = Testbed.create () in
  let reg = world.World.registry in
  Registry.drop_cache reg;
  let _img, bytes1 = Result.get_ok (Registry.pull reg "nginx:latest") in
  check_b "first pull transfers" true (bytes1 > 0);
  (* same image again: all layers cached *)
  let _img, bytes2 = Result.get_ok (Registry.pull reg "nginx:latest") in
  check_i "second pull free" 0 bytes2;
  (* a different debian-based image shares the base layer *)
  let img3, bytes3 = Result.get_ok (Registry.pull reg "httpd:latest") in
  check_b "base layer dedup" true (bytes3 < Image.size img3)

let test_slim_deploy_time_improvement () =
  let world = Testbed.create () in
  let reg = world.World.registry in
  let image = nginx world in
  let _report, slim_image = ok' (Slimmer.slim ~world image) in
  Registry.push reg slim_image;
  (* deployment time = pull time; measure both cold *)
  Registry.drop_cache reg;
  let t0 = Clock.now_ns world.World.clock in
  ignore (Result.get_ok (Registry.pull reg "nginx:latest"));
  let fat_time = Int64.sub (Clock.now_ns world.World.clock) t0 in
  Registry.drop_cache reg;
  let t1 = Clock.now_ns world.World.clock in
  ignore (Result.get_ok (Registry.pull reg "nginx-slim:latest"));
  let slim_time = Int64.sub (Clock.now_ns world.World.clock) t1 in
  check_b "slim deploys faster" true (Int64.to_int slim_time * 2 < Int64.to_int fat_time)

let () =
  Alcotest.run "slim"
    [
      ( "recorder",
        [
          Alcotest.test_case "tracks accesses" `Quick test_recorder_tracks_accesses;
          Alcotest.test_case "closure includes parents" `Quick test_closure_includes_parents;
          Alcotest.test_case "closure duplicate ancestors" `Quick test_closure_duplicate_ancestors;
          Alcotest.test_case "closure always_keep overlap" `Quick test_closure_always_keep_overlap;
          Alcotest.test_case "closure path as file and prefix" `Quick
            test_closure_path_as_file_and_prefix;
        ] );
      ( "partition",
        [
          Alcotest.test_case "superset of manifest" `Quick test_partition_superset_of_manifest;
          Alcotest.test_case "valid but coarser than dynamic" `Quick
            test_partition_valid_but_coarser_than_dynamic;
          Alcotest.test_case "no entrypoint keeps all" `Quick test_partition_no_entrypoint_keeps_all;
          Alcotest.test_case "sweep steals and order" `Quick test_sweep_steals_and_order;
        ] );
      ( "slimmer",
        [
          Alcotest.test_case "smaller and valid" `Quick test_slim_image_smaller_and_valid;
          Alcotest.test_case "go binary low reduction" `Quick test_go_binary_low_reduction;
        ] );
      ( "figure5",
        [ Alcotest.test_case "dataset shape" `Slow test_figure5_dataset_shape ] );
      ( "registry",
        [
          Alcotest.test_case "pull dedup" `Quick test_registry_pull_dedup;
          Alcotest.test_case "slim deploy time" `Quick test_slim_deploy_time_improvement;
        ] );
    ]
