(* Tests for the Docker-Slim pipeline: fanotify recording, keep-set
   closure, slim-image construction, validation, and the Figure 5 dataset
   shape (mean 66.6 %, 6/50 below 10 %, most mass in 60-97 %). *)

open Repro_util
open Repro_image
open Repro_runtime
open Repro_cntr
open Repro_slim

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let ok' = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.to_string e)

let nginx world =
  match Registry.find world.World.registry "nginx:latest" with
  | Some i -> i
  | None -> Alcotest.fail "catalogue missing nginx"

let test_recorder_tracks_accesses () =
  let world = Testbed.create () in
  let image = nginx world in
  let report = ok' (Slimmer.analyze ~world image) in
  (* the binary, config and manifest must be in the keep set *)
  check_b "binary kept" true (List.mem "/usr/sbin/nginx" report.Slimmer.r_kept_paths);
  check_b "config kept" true (List.mem "/etc/nginx.conf" report.Slimmer.r_kept_paths);
  check_b "manifest kept" true (List.mem "/etc/app.manifest" report.Slimmer.r_kept_paths);
  (* cold data must not be *)
  check_b "ballast dropped" false
    (List.exists (fun p -> Pathx.is_under ~dir:"/usr/share/doc" p && p <> "/usr/share/doc")
       report.Slimmer.r_kept_paths)

let test_closure_includes_parents () =
  let keep = Slimmer.closure [ "/usr/share/nginx/hot.dat" ] in
  check_b "file" true (Hashtbl.mem keep "/usr/share/nginx/hot.dat");
  check_b "parent" true (Hashtbl.mem keep "/usr/share/nginx");
  check_b "grandparent" true (Hashtbl.mem keep "/usr/share");
  check_b "always-keep passwd" true (Hashtbl.mem keep "/etc/passwd")

let test_slim_image_smaller_and_valid () =
  let world = Testbed.create () in
  let image = nginx world in
  let report, slim_image = ok' (Slimmer.slim ~world image) in
  check_b "smaller" true (report.Slimmer.r_slim_bytes < report.Slimmer.r_original_bytes);
  check_b "reduction substantial" true (report.Slimmer.r_reduction > 0.5);
  check_b "fewer files" true (report.Slimmer.r_slim_files < report.Slimmer.r_original_files);
  (* the slimmed container still runs its entrypoint successfully *)
  check_b "slim image still works" true (ok' (Slimmer.validate ~world slim_image))

let test_go_binary_low_reduction () =
  let world = Testbed.create () in
  let image =
    match Registry.find world.World.registry "etcd:latest" with
    | Some i -> i
    | None -> Alcotest.fail "catalogue missing etcd"
  in
  let report = ok' (Slimmer.analyze ~world image) in
  check_b "go image barely shrinks" true (report.Slimmer.r_reduction < 0.10)

let test_figure5_dataset_shape () =
  let world = Testbed.create () in
  let images = Catalog.top50 () in
  check_i "fifty images" 50 (List.length images);
  let reports =
    List.map
      (fun image ->
        match Slimmer.analyze ~world image with
        | Ok r -> r
        | Error e ->
            Alcotest.failf "analyze %s failed: %s" (Image.ref_ image) (Errno.to_string e))
      images
  in
  let reductions = List.map (fun r -> r.Slimmer.r_reduction *. 100.) reports in
  let mean = Stats.mean reductions in
  (* paper: 66.6 % average *)
  check_b (Printf.sprintf "mean reduction ~66%% (got %.1f)" mean) true
    (mean > 60. && mean < 73.);
  (* paper: 6/50 images below 10 % *)
  let below10 = List.length (List.filter (fun r -> r < 10.) reductions) in
  check_i "six images below 10%" 6 below10;
  (* paper: for over 75 % of containers the reduction is 60-97 % *)
  let in_band = List.length (List.filter (fun r -> r >= 60. && r <= 97.) reductions) in
  check_b (Printf.sprintf "75%%+ in [60,97] (got %d/50)" in_band) true (in_band * 4 >= 50 * 3)

let test_registry_pull_dedup () =
  let world = Testbed.create () in
  let reg = world.World.registry in
  Registry.drop_cache reg;
  let _img, bytes1 = Result.get_ok (Registry.pull reg "nginx:latest") in
  check_b "first pull transfers" true (bytes1 > 0);
  (* same image again: all layers cached *)
  let _img, bytes2 = Result.get_ok (Registry.pull reg "nginx:latest") in
  check_i "second pull free" 0 bytes2;
  (* a different debian-based image shares the base layer *)
  let img3, bytes3 = Result.get_ok (Registry.pull reg "httpd:latest") in
  check_b "base layer dedup" true (bytes3 < Image.size img3)

let test_slim_deploy_time_improvement () =
  let world = Testbed.create () in
  let reg = world.World.registry in
  let image = nginx world in
  let _report, slim_image = ok' (Slimmer.slim ~world image) in
  Registry.push reg slim_image;
  (* deployment time = pull time; measure both cold *)
  Registry.drop_cache reg;
  let t0 = Clock.now_ns world.World.clock in
  ignore (Result.get_ok (Registry.pull reg "nginx:latest"));
  let fat_time = Int64.sub (Clock.now_ns world.World.clock) t0 in
  Registry.drop_cache reg;
  let t1 = Clock.now_ns world.World.clock in
  ignore (Result.get_ok (Registry.pull reg "nginx-slim:latest"));
  let slim_time = Int64.sub (Clock.now_ns world.World.clock) t1 in
  check_b "slim deploys faster" true (Int64.to_int slim_time * 2 < Int64.to_int fat_time)

let () =
  Alcotest.run "slim"
    [
      ( "recorder",
        [
          Alcotest.test_case "tracks accesses" `Quick test_recorder_tracks_accesses;
          Alcotest.test_case "closure includes parents" `Quick test_closure_includes_parents;
        ] );
      ( "slimmer",
        [
          Alcotest.test_case "smaller and valid" `Quick test_slim_image_smaller_and_valid;
          Alcotest.test_case "go binary low reduction" `Quick test_go_binary_low_reduction;
        ] );
      ( "figure5",
        [ Alcotest.test_case "dataset shape" `Slow test_figure5_dataset_shape ] );
      ( "registry",
        [
          Alcotest.test_case "pull dedup" `Quick test_registry_pull_dedup;
          Alcotest.test_case "slim deploy time" `Quick test_slim_deploy_time_improvement;
        ] );
    ]
