(* Tests for the VFS substrate: sparse file data, the page cache, the
   native filesystem's POSIX semantics, permissions and ACLs. *)

open Repro_util
open Repro_vfs

let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

let errno = Alcotest.testable Errno.pp ( = )

let check_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> Alcotest.check errno "errno" expected e

let ok = Errno.ok_exn

(* --- Fdata --------------------------------------------------------------- *)

let test_fdata_basic () =
  let d = Fdata.create () in
  check_i "empty" 0 (Fdata.size d);
  check_i "write" 5 (Fdata.write d ~off:0 "hello");
  check_s "read" "hello" (Fdata.read d ~off:0 ~len:100);
  check_s "partial" "ell" (Fdata.read d ~off:1 ~len:3);
  check_s "past eof" "" (Fdata.read d ~off:10 ~len:5)

let test_fdata_sparse () =
  let d = Fdata.create () in
  let far = 10 * 1024 * 1024 in
  ignore (Fdata.write d ~off:far "x");
  check_i "sparse size" (far + 1) (Fdata.size d);
  check_s "hole reads zero" (String.make 4 '\000') (Fdata.read d ~off:1000 ~len:4);
  check_b "allocation bounded" true (Fdata.allocated d < 2 * Fdata.chunk_size)

let test_fdata_truncate () =
  let d = Fdata.create () in
  ignore (Fdata.write d ~off:0 (String.make 100_000 'a'));
  Fdata.truncate d 10;
  check_i "shrunk" 10 (Fdata.size d);
  check_s "kept" (String.make 10 'a') (Fdata.read d ~off:0 ~len:10);
  Fdata.truncate d 20;
  check_s "regrown zeros" (String.make 10 'a' ^ String.make 10 '\000') (Fdata.read d ~off:0 ~len:20);
  (* Shrink then regrow across the old data region: must read zeros. *)
  ignore (Fdata.write d ~off:0 (String.make 200 'b'));
  Fdata.truncate d 50;
  Fdata.truncate d 200;
  check_s "zeros after regrow" (String.make 150 '\000') (Fdata.read d ~off:50 ~len:150)

let test_fdata_cross_chunk () =
  let d = Fdata.create () in
  let off = Fdata.chunk_size - 3 in
  ignore (Fdata.write d ~off "abcdef");
  check_s "crosses boundary" "abcdef" (Fdata.read d ~off ~len:6)

(* Random writes compared against a flat-bytes reference model. *)
let prop_fdata_model =
  QCheck.Test.make ~name:"fdata matches flat model" ~count:100
    QCheck.(small_list (pair (int_range 0 5000) (string_gen_of_size (Gen.int_range 1 200) Gen.printable)))
    (fun ops ->
      let d = Fdata.create () in
      let model = Bytes.make 8192 '\000' in
      let model_size = ref 0 in
      List.iter
        (fun (off, data) ->
          ignore (Fdata.write d ~off data);
          Bytes.blit_string data 0 model off (String.length data);
          model_size := max !model_size (off + String.length data))
        ops;
      Fdata.size d = !model_size
      && Fdata.read d ~off:0 ~len:!model_size = Bytes.sub_string model 0 !model_size)

(* --- Page cache ---------------------------------------------------------- *)

let mk_cache ?(limit = 16 * 4096) () =
  let budget = Mem_budget.create ~limit_bytes:limit in
  (Page_cache.create ~name:"test" ~budget ~page_size:4096 (), budget)

let test_cache_hit_miss () =
  let c, _ = mk_cache () in
  check_b "first is miss" true (Page_cache.touch c ~ino:1 ~page:0 ~dirty:false = `Miss);
  check_b "second is hit" true (Page_cache.touch c ~ino:1 ~page:0 ~dirty:false = `Hit);
  check_i "hits" 1 (Page_cache.stats c).Page_cache.hits;
  check_i "misses" 1 (Page_cache.stats c).Page_cache.misses

let test_cache_eviction_lru () =
  let c, budget = mk_cache ~limit:(4 * 4096) () in
  for p = 0 to 3 do
    ignore (Page_cache.touch c ~ino:1 ~page:p ~dirty:false)
  done;
  (* touch page 0 to make it most recent, then insert page 4: page 1 is LRU *)
  ignore (Page_cache.touch c ~ino:1 ~page:0 ~dirty:false);
  ignore (Page_cache.touch c ~ino:1 ~page:4 ~dirty:false);
  check_b "page 0 kept" true (Page_cache.mem c ~ino:1 ~page:0);
  check_b "page 1 evicted" false (Page_cache.mem c ~ino:1 ~page:1);
  check_b "budget respected" true (Mem_budget.used budget <= 4 * 4096)

let test_cache_flush_runs () =
  let c, _ = mk_cache () in
  let flushes = ref [] in
  Page_cache.set_on_flush c (fun ~ino:_ ~page ~pages -> flushes := (page, pages) :: !flushes);
  List.iter (fun p -> ignore (Page_cache.touch c ~ino:1 ~page:p ~dirty:true)) [ 0; 1; 2; 5; 6; 9 ];
  Page_cache.flush_inode c 1;
  let runs = List.sort compare !flushes in
  Alcotest.(check (list (pair int int))) "contiguous runs" [ (0, 3); (5, 2); (9, 1) ] runs;
  check_i "no dirty left" 0 (Page_cache.dirty_count c 1)

let test_cache_discard_drops_dirty () =
  let c, _ = mk_cache () in
  let flushed = ref 0 in
  Page_cache.set_on_flush c (fun ~ino:_ ~page:_ ~pages -> flushed := !flushed + pages);
  ignore (Page_cache.touch c ~ino:7 ~page:0 ~dirty:true);
  ignore (Page_cache.touch c ~ino:7 ~page:1 ~dirty:true);
  Page_cache.discard_inode c 7;
  check_i "nothing flushed" 0 !flushed;
  check_b "pages gone" false (Page_cache.mem c ~ino:7 ~page:0)

let test_cache_dirty_eviction_writes_back () =
  let c, _ = mk_cache ~limit:(2 * 4096) () in
  let flushed = ref 0 in
  Page_cache.set_on_flush c (fun ~ino:_ ~page:_ ~pages -> flushed := !flushed + pages);
  for p = 0 to 5 do
    ignore (Page_cache.touch c ~ino:1 ~page:p ~dirty:true)
  done;
  check_b "dirty evictions flushed" true (!flushed >= 4)

(* Read-after-write coherence under random traffic: every dirty page is
   either still cached or was flushed exactly once. *)
let prop_cache_flush_accounting =
  QCheck.Test.make ~name:"dirty pages flushed exactly once" ~count:50
    QCheck.(small_list (pair (int_range 0 30) bool))
    (fun ops ->
      let c, _ = mk_cache ~limit:(8 * 4096) () in
      let flushed = Hashtbl.create 16 in
      Page_cache.set_on_flush c (fun ~ino:_ ~page ~pages ->
          for p = page to page + pages - 1 do
            Hashtbl.replace flushed p (1 + Option.value ~default:0 (Hashtbl.find_opt flushed p))
          done);
      let dirtied = Hashtbl.create 16 in
      List.iter
        (fun (page, dirty) ->
          ignore (Page_cache.touch c ~ino:1 ~page ~dirty);
          if dirty then Hashtbl.replace dirtied page ())
        ops;
      Page_cache.flush_inode c 1;
      (* No page is flushed more times than it was dirtied (bounded by ops
         count), and nothing remains dirty. *)
      Page_cache.dirty_count c 1 = 0)

(* --- Nativefs ------------------------------------------------------------ *)

let mkfs () =
  let clock = Clock.create () in
  let fs = Nativefs.create ~clock ~cost:Cost.default Store.Ram () in
  let ops = Nativefs.ops fs in
  (* world-writable root so unprivileged fixtures can create files *)
  ignore
    (Errno.ok_exn
       (ops.Fsops.setattr Types.root_cred ops.Fsops.root
          { Types.setattr_none with Types.sa_mode = Some 0o777 }));
  ops

let root_cred = Types.root_cred
let alice = Types.user_cred ~uid:1000 ~gid:1000 ()
let bob = Types.user_cred ~uid:1001 ~gid:1001 ()

let test_fs_create_read_write () =
  let ops = mkfs () in
  let st, fh = ok (ops.Fsops.create root_cred ops.Fsops.root "f" ~mode:0o644 [ Types.O_RDWR ]) in
  check_i "new file empty" 0 st.Types.st_size;
  check_i "write" 5 (ok (ops.Fsops.write root_cred fh ~off:0 "hello"));
  check_s "read back" "hello" (ok (ops.Fsops.read fh ~off:0 ~len:10));
  ops.Fsops.release fh;
  check_err Errno.EBADF (ops.Fsops.read fh ~off:0 ~len:1)

let test_fs_lookup_and_dirs () =
  let ops = mkfs () in
  let st = ok (ops.Fsops.mkdir root_cred ops.Fsops.root "d" ~mode:0o755) in
  let ino, _ = ok (ops.Fsops.lookup root_cred ops.Fsops.root "d") in
  check_i "lookup finds" st.Types.st_ino ino;
  check_err Errno.ENOENT (ops.Fsops.lookup root_cred ops.Fsops.root "missing");
  check_err Errno.EEXIST (ops.Fsops.mkdir root_cred ops.Fsops.root "d" ~mode:0o755);
  (* ".." of a subdir is the parent *)
  let up, _ = ok (ops.Fsops.lookup root_cred ino "..") in
  check_i "dotdot" ops.Fsops.root up;
  let entries = ok (ops.Fsops.readdir root_cred ops.Fsops.root) in
  check_b "readdir has . .. d" true
    (List.map (fun e -> e.Types.d_name) entries = [ "."; ".."; "d" ])

let test_fs_nlink_accounting () =
  let ops = mkfs () in
  let root = ops.Fsops.root in
  let st0 = ok (ops.Fsops.getattr root) in
  check_i "root nlink 2" 2 st0.Types.st_nlink;
  ignore (ok (ops.Fsops.mkdir root_cred root "a" ~mode:0o755));
  let st1 = ok (ops.Fsops.getattr root) in
  check_i "after mkdir" 3 st1.Types.st_nlink;
  let fst_, fh = ok (ops.Fsops.create root_cred root "f" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  ignore (ok (ops.Fsops.link root_cred ~src:fst_.Types.st_ino ~dir:root ~name:"f2"));
  let stf = ok (ops.Fsops.getattr fst_.Types.st_ino) in
  check_i "hardlink nlink" 2 stf.Types.st_nlink;
  ok (ops.Fsops.unlink root_cred root "f");
  let stf = ok (ops.Fsops.getattr fst_.Types.st_ino) in
  check_i "after unlink" 1 stf.Types.st_nlink;
  (* data reachable through second link *)
  let _, st2 = ok (ops.Fsops.lookup root_cred root "f2") in
  check_i "same inode" fst_.Types.st_ino st2.Types.st_ino;
  ok (ops.Fsops.unlink root_cred root "f2");
  check_err Errno.ENOENT (ops.Fsops.getattr fst_.Types.st_ino)

let test_fs_unlinked_open_file_survives () =
  let ops = mkfs () in
  let _, fh = ok (ops.Fsops.create root_cred ops.Fsops.root "tmp" ~mode:0o600 [ Types.O_RDWR ]) in
  check_i "write" 3 (ok (ops.Fsops.write root_cred fh ~off:0 "abc"));
  ok (ops.Fsops.unlink root_cred ops.Fsops.root "tmp");
  (* Orphan: still readable through the open handle. *)
  check_s "still readable" "abc" (ok (ops.Fsops.read fh ~off:0 ~len:3));
  ops.Fsops.release fh

let test_fs_rename_semantics () =
  let ops = mkfs () in
  let root = ops.Fsops.root in
  ignore (ok (ops.Fsops.mkdir root_cred root "d1" ~mode:0o755));
  ignore (ok (ops.Fsops.mkdir root_cred root "d2" ~mode:0o755));
  let d1, _ = ok (ops.Fsops.lookup root_cred root "d1") in
  let d2, _ = ok (ops.Fsops.lookup root_cred root "d2") in
  let _, fh = ok (ops.Fsops.create root_cred d1 "f" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  ok (ops.Fsops.rename root_cred d1 "f" d2 "g");
  check_err Errno.ENOENT (ops.Fsops.lookup root_cred d1 "f");
  let _ = ok (ops.Fsops.lookup root_cred d2 "g") in
  (* move dir into its own subtree is EINVAL *)
  ignore (ok (ops.Fsops.mkdir root_cred d1 "sub" ~mode:0o755));
  check_err Errno.EINVAL (ops.Fsops.rename root_cred root "d1" d1 "oops");
  let sub, _ = ok (ops.Fsops.lookup root_cred d1 "sub") in
  check_err Errno.EINVAL (ops.Fsops.rename root_cred root "d1" sub "oops");
  (* replacing a non-empty dir fails *)
  ignore (ok (ops.Fsops.mkdir root_cred d2 "sub2" ~mode:0o755));
  check_err Errno.ENOTEMPTY (ops.Fsops.rename root_cred d1 "sub" root "d2");
  (* file over file replaces *)
  let _, fh = ok (ops.Fsops.create root_cred root "x" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  let _, fh = ok (ops.Fsops.create root_cred root "y" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  ok (ops.Fsops.rename root_cred root "x" root "y");
  check_err Errno.ENOENT (ops.Fsops.lookup root_cred root "x");
  (* dir nlink updated when dir moves across parents *)
  ok (ops.Fsops.rename root_cred d1 "sub" root "sub");
  let st1 = ok (ops.Fsops.getattr d1) in
  check_i "d1 lost subdir" 2 st1.Types.st_nlink

let test_fs_permissions () =
  let ops = mkfs () in
  let root = ops.Fsops.root in
  ignore (ok (ops.Fsops.mkdir root_cred root "priv" ~mode:0o700));
  let priv, _ = ok (ops.Fsops.lookup root_cred root "priv") in
  (* alice cannot look inside root-owned 0700 dir *)
  check_err Errno.EACCES (ops.Fsops.lookup alice priv "anything");
  check_err Errno.EACCES (ops.Fsops.create alice priv "f" ~mode:0o644 [ Types.O_WRONLY ]);
  (* a 0644 root file is readable but not writable by alice *)
  let st, fh = ok (ops.Fsops.create root_cred root "pub" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  let _ = ok (ops.Fsops.open_ alice st.Types.st_ino [ Types.O_RDONLY ]) in
  check_err Errno.EACCES (ops.Fsops.open_ alice st.Types.st_ino [ Types.O_WRONLY ]);
  (* chmod by non-owner fails *)
  check_err Errno.EPERM
    (ops.Fsops.setattr alice st.Types.st_ino { Types.setattr_none with Types.sa_mode = Some 0o777 })

let test_fs_sticky_bit () =
  let ops = mkfs () in
  let root = ops.Fsops.root in
  ignore (ok (ops.Fsops.mkdir root_cred root "tmp" ~mode:0o1777));
  let tmp, _ = ok (ops.Fsops.lookup root_cred root "tmp") in
  let _, fh = ok (ops.Fsops.create alice tmp "af" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  (* bob cannot delete alice's file from a sticky dir *)
  check_err Errno.EPERM (ops.Fsops.unlink bob tmp "af");
  (* alice can *)
  ok (ops.Fsops.unlink alice tmp "af")

let test_fs_setgid_inheritance () =
  let ops = mkfs () in
  let root = ops.Fsops.root in
  ignore (ok (ops.Fsops.mkdir root_cred root "shared" ~mode:0o2775));
  let d, _ = ok (ops.Fsops.lookup root_cred root "shared") in
  (ok (ops.Fsops.setattr root_cred d { Types.setattr_none with Types.sa_gid = Some 500 })
  |> fun (_ : Types.stat) -> ());
  let st, fh = ok (ops.Fsops.create root_cred d "f" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  check_i "file inherits gid" 500 st.Types.st_gid;
  let std = ok (ops.Fsops.mkdir root_cred d "sub" ~mode:0o755) in
  check_b "subdir inherits setgid" true (std.Types.st_mode land Types.s_isgid <> 0);
  check_i "subdir inherits gid" 500 std.Types.st_gid

let test_fs_chmod_clears_setgid () =
  let ops = mkfs () in
  let root = ops.Fsops.root in
  (* file owned by alice, group 2000 (alice is NOT in 2000) *)
  let st, fh = ok (ops.Fsops.create alice root "f" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  ignore (ok (ops.Fsops.setattr root_cred st.Types.st_ino { Types.setattr_none with Types.sa_gid = Some 2000 }));
  (* alice chmods with setgid: bit must be silently cleared *)
  let st' = ok (ops.Fsops.setattr alice st.Types.st_ino { Types.setattr_none with Types.sa_mode = Some 0o2755 }) in
  check_b "setgid cleared" true (st'.Types.st_mode land Types.s_isgid = 0);
  (* root (CAP_FSETID) keeps it *)
  let st'' = ok (ops.Fsops.setattr root_cred st.Types.st_ino { Types.setattr_none with Types.sa_mode = Some 0o2755 }) in
  check_b "root keeps setgid" true (st''.Types.st_mode land Types.s_isgid <> 0)

let test_fs_write_clears_suid () =
  let ops = mkfs () in
  let root = ops.Fsops.root in
  let st, fh = ok (ops.Fsops.create alice root "f" ~mode:0o644 [ Types.O_RDWR ]) in
  ignore (ok (ops.Fsops.setattr alice st.Types.st_ino { Types.setattr_none with Types.sa_mode = Some 0o4755 }));
  ignore (ok (ops.Fsops.write alice fh ~off:0 "data"));
  ops.Fsops.release fh;
  let st' = ok (ops.Fsops.getattr st.Types.st_ino) in
  check_b "suid stripped by write" true (st'.Types.st_mode land Types.s_isuid = 0)

let test_fs_rlimit_fsize () =
  let ops = mkfs () in
  let limited = { alice with Types.rlimit_fsize = Some 10 } in
  let _, fh = ok (ops.Fsops.create limited ops.Fsops.root "f" ~mode:0o644 [ Types.O_RDWR ]) in
  check_i "within limit" 5 (ok (ops.Fsops.write limited fh ~off:0 "aaaaa"));
  check_err Errno.EFBIG (ops.Fsops.write limited fh ~off:8 "bbbbb");
  (* the same write without the limit (e.g. replayed by a FUSE server as
     root) succeeds — the CntrFS xfstests #228 failure mode *)
  check_i "server-side replay ignores limit" 5 (ok (ops.Fsops.write root_cred fh ~off:8 "bbbbb"));
  ops.Fsops.release fh

let test_fs_xattr () =
  let ops = mkfs () in
  let st, fh = ok (ops.Fsops.create alice ops.Fsops.root "f" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  let ino = st.Types.st_ino in
  ok (ops.Fsops.setxattr alice ino "user.comment" "hi");
  check_s "getxattr" "hi" (ok (ops.Fsops.getxattr ino "user.comment"));
  check_err Errno.ENODATA (ops.Fsops.getxattr ino "user.missing");
  Alcotest.(check (list string)) "list" [ "user.comment" ] (ok (ops.Fsops.listxattr ino));
  (* bob (not owner) cannot set, nor set trusted.* *)
  check_err Errno.EPERM (ops.Fsops.setxattr bob ino "user.evil" "x");
  check_err Errno.EPERM (ops.Fsops.setxattr alice ino "trusted.overlay" "x");
  ok (ops.Fsops.removexattr alice ino "user.comment");
  check_err Errno.ENODATA (ops.Fsops.removexattr alice ino "user.comment")

let test_fs_symlink () =
  let ops = mkfs () in
  let root = ops.Fsops.root in
  let st = ok (ops.Fsops.symlink root_cred root "lnk" ~target:"/some/where") in
  check_s "readlink" "/some/where" (ok (ops.Fsops.readlink st.Types.st_ino));
  check_b "kind" true (st.Types.st_kind = Types.Symlink);
  check_i "size is target length" (String.length "/some/where") st.Types.st_size;
  check_err Errno.EINVAL (ops.Fsops.readlink root)

let test_fs_truncate_and_fallocate () =
  let ops = mkfs () in
  let _, fh = ok (ops.Fsops.create root_cred ops.Fsops.root "f" ~mode:0o644 [ Types.O_RDWR ]) in
  ignore (ok (ops.Fsops.write root_cred fh ~off:0 "hello world"));
  ok (ops.Fsops.fallocate fh ~off:0 ~len:100);
  let st = ok (ops.Fsops.getattr (ok (ops.Fsops.lookup root_cred ops.Fsops.root "f") |> fst)) in
  check_i "fallocate extended" 100 st.Types.st_size;
  ops.Fsops.release fh

let test_fs_acl_check () =
  let ops = mkfs () in
  let st, fh = ok (ops.Fsops.create root_cred ops.Fsops.root "f" ~mode:0o600 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  let ino = st.Types.st_ino in
  (* mode 0600 root-owned: alice denied *)
  check_err Errno.EACCES (ops.Fsops.open_ alice ino [ Types.O_RDONLY ]);
  (* grant alice read via ACL *)
  ok (ops.Fsops.setxattr root_cred ino "system.posix_acl_access" "u::rw-,u:1000:r--,g::---,m::r--,o::---");
  let fh = ok (ops.Fsops.open_ alice ino [ Types.O_RDONLY ]) in
  ops.Fsops.release fh;
  (* mask can revoke it *)
  ok (ops.Fsops.setxattr root_cred ino "system.posix_acl_access" "u::rw-,u:1000:r--,g::---,m::---,o::---");
  check_err Errno.EACCES (ops.Fsops.open_ alice ino [ Types.O_RDONLY ])

let test_fs_handles_exportable () =
  let ops = mkfs () in
  let st, fh = ok (ops.Fsops.create root_cred ops.Fsops.root "f" ~mode:0o644 [ Types.O_WRONLY ]) in
  ops.Fsops.release fh;
  let h = ok (ops.Fsops.export_handle st.Types.st_ino) in
  check_i "open_by_handle round trip" st.Types.st_ino (ok (ops.Fsops.open_by_handle h));
  check_b "mmap supported" true (ops.Fsops.supports_mmap 0);
  check_b "direct io supported" true ops.Fsops.supports_direct_io

let test_fs_readonly () =
  let clock = Clock.create () in
  let fs = Nativefs.create ~name:"ro" ~readonly:true ~clock ~cost:Cost.default Store.Ram () in
  let ops = Nativefs.ops fs in
  check_err Errno.EROFS (ops.Fsops.mkdir root_cred ops.Fsops.root "d" ~mode:0o755);
  check_err Errno.EROFS (ops.Fsops.create root_cred ops.Fsops.root "f" ~mode:0o644 [ Types.O_WRONLY ])

(* --- disk-backed costs --------------------------------------------------- *)

let mk_ssd_fs ?(limit = 64 * 4096) ?(flush_pages = 16) () =
  let clock = Clock.create () in
  let budget = Mem_budget.create ~limit_bytes:limit in
  let cache = Page_cache.create ~name:"ext4" ~budget ~page_size:4096 () in
  let fs =
    Nativefs.create ~name:"ext4" ~clock ~cost:Cost.default
      (Store.Ssd { cache; flush_pages })
      ()
  in
  (Nativefs.ops fs, fs, clock, cache)

let test_ssd_costs_cached_reread_cheaper () =
  let ops, _fs, clock, _ = mk_ssd_fs () in
  let _, fh = ok (ops.Fsops.create root_cred ops.Fsops.root "f" ~mode:0o644 [ Types.O_RDWR ]) in
  let data = String.make (16 * 4096) 'x' in
  ignore (ok (ops.Fsops.write root_cred fh ~off:0 data));
  (* Drop cache to force a cold read. *)
  Store.invalidate (Nativefs.store _fs) ~ino:(ok (ops.Fsops.lookup root_cred ops.Fsops.root "f") |> fst);
  let t0 = Repro_util.Clock.now_ns clock in
  ignore (ok (ops.Fsops.read fh ~off:0 ~len:(16 * 4096)));
  let cold = Int64.sub (Repro_util.Clock.now_ns clock) t0 in
  let t1 = Repro_util.Clock.now_ns clock in
  ignore (ok (ops.Fsops.read fh ~off:0 ~len:(16 * 4096)));
  let warm = Int64.sub (Repro_util.Clock.now_ns clock) t1 in
  check_b "cold read slower than warm" true (Int64.to_int cold > 3 * Int64.to_int warm);
  ops.Fsops.release fh

let test_ssd_delete_before_flush_avoids_io () =
  let ops, fs, _clock, _cache = mk_ssd_fs ~flush_pages:1000 () in
  let _, fh = ok (ops.Fsops.create root_cred ops.Fsops.root "f" ~mode:0o644 [ Types.O_RDWR ]) in
  ignore (ok (ops.Fsops.write root_cred fh ~off:0 (String.make 8192 'x')));
  ops.Fsops.release fh;
  ok (ops.Fsops.unlink root_cred ops.Fsops.root "f");
  let stats = Store.stats (Nativefs.store fs) in
  check_i "no disk writes for deleted dirty file" 0 stats.Store.disk_write_ios

let test_ssd_fsync_forces_io () =
  let ops, fs, _clock, _cache = mk_ssd_fs ~flush_pages:1000 () in
  let _, fh = ok (ops.Fsops.create root_cred ops.Fsops.root "f" ~mode:0o644 [ Types.O_RDWR ]) in
  ignore (ok (ops.Fsops.write root_cred fh ~off:0 (String.make 8192 'x')));
  ok (ops.Fsops.fsync fh);
  let stats = Store.stats (Nativefs.store fs) in
  check_b "fsync wrote" true (stats.Store.disk_write_ios > 0);
  ops.Fsops.release fh

(* --- Perm / ACL parsing --------------------------------------------------- *)

let test_acl_parse_roundtrip () =
  let text = "u::rwx,u:1000:r-x,g::r--,m::rwx,o::---" in
  match Perm.parse text with
  | None -> Alcotest.fail "parse failed"
  | Some entries -> check_s "roundtrip" text (Perm.serialize entries)

let test_acl_reject_malformed () =
  check_b "bad perm" true (Perm.parse "u::rwz" = None);
  check_b "empty" true (Perm.parse "" = None);
  check_b "garbage" true (Perm.parse "hello" = None)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "vfs"
    [
      ( "fdata",
        [
          Alcotest.test_case "basic" `Quick test_fdata_basic;
          Alcotest.test_case "sparse" `Quick test_fdata_sparse;
          Alcotest.test_case "truncate" `Quick test_fdata_truncate;
          Alcotest.test_case "cross chunk" `Quick test_fdata_cross_chunk;
        ] );
      qsuite "fdata-props" [ prop_fdata_model ];
      ( "page-cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction_lru;
          Alcotest.test_case "flush runs" `Quick test_cache_flush_runs;
          Alcotest.test_case "discard drops dirty" `Quick test_cache_discard_drops_dirty;
          Alcotest.test_case "dirty eviction writes back" `Quick test_cache_dirty_eviction_writes_back;
        ] );
      qsuite "cache-props" [ prop_cache_flush_accounting ];
      ( "nativefs",
        [
          Alcotest.test_case "create/read/write" `Quick test_fs_create_read_write;
          Alcotest.test_case "lookup & dirs" `Quick test_fs_lookup_and_dirs;
          Alcotest.test_case "nlink accounting" `Quick test_fs_nlink_accounting;
          Alcotest.test_case "unlinked open file" `Quick test_fs_unlinked_open_file_survives;
          Alcotest.test_case "rename semantics" `Quick test_fs_rename_semantics;
          Alcotest.test_case "permissions" `Quick test_fs_permissions;
          Alcotest.test_case "sticky bit" `Quick test_fs_sticky_bit;
          Alcotest.test_case "setgid inheritance" `Quick test_fs_setgid_inheritance;
          Alcotest.test_case "chmod clears setgid" `Quick test_fs_chmod_clears_setgid;
          Alcotest.test_case "write clears suid" `Quick test_fs_write_clears_suid;
          Alcotest.test_case "rlimit fsize" `Quick test_fs_rlimit_fsize;
          Alcotest.test_case "xattr" `Quick test_fs_xattr;
          Alcotest.test_case "symlink" `Quick test_fs_symlink;
          Alcotest.test_case "truncate/fallocate" `Quick test_fs_truncate_and_fallocate;
          Alcotest.test_case "acl check" `Quick test_fs_acl_check;
          Alcotest.test_case "exportable handles" `Quick test_fs_handles_exportable;
          Alcotest.test_case "readonly" `Quick test_fs_readonly;
        ] );
      ( "ssd-costs",
        [
          Alcotest.test_case "cached reread cheaper" `Quick test_ssd_costs_cached_reread_cheaper;
          Alcotest.test_case "delete before flush" `Quick test_ssd_delete_before_flush_avoids_io;
          Alcotest.test_case "fsync forces io" `Quick test_ssd_fsync_forces_io;
        ] );
      ( "acl",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_acl_parse_roundtrip;
          Alcotest.test_case "reject malformed" `Quick test_acl_reject_malformed;
        ] );
    ]
