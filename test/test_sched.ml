(* Unit tests for the discrete-event scheduler: per-task timelines, overlap
   semantics (max-of-timelines), ivar ordering, Mesa mutexes, condition
   variables, and the sequential-identity property the FUSE request queue
   relies on (1 worker + 1 client == inline execution). *)

open Repro_util

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let check_ns name expect clock =
  Alcotest.(check int64) name (Int64.of_int expect) (Clock.now_ns clock)

let mk () =
  let clock = Clock.create () in
  let sched = Repro_sched.Sched.create ~clock in
  (clock, sched)

module Sched = Repro_sched.Sched

(* --- tasks & timelines ------------------------------------------------------ *)

let test_run_charges_task_time () =
  let clock, s = mk () in
  let v = Sched.run s (fun () -> Clock.consume_int clock 1_000; 42) in
  check_i "value" 42 v;
  check_ns "task time charged" 1_000 clock

let test_parallel_tasks_overlap () =
  (* two tasks spawned at t0 run on their own timelines: the join lands at
     the max, not the sum *)
  let clock, s = mk () in
  let t1 = Sched.spawn s (fun () -> Clock.consume_int clock 1_000) in
  let t2 = Sched.spawn s (fun () -> Clock.consume_int clock 5_000) in
  Sched.await s t1;
  Sched.await s t2;
  check_ns "elapsed = max, not sum" 5_000 clock

let test_spawn_inherits_current_time () =
  let clock, s = mk () in
  Clock.consume_int clock 700;
  let t1 = Sched.spawn s (fun () -> Clock.consume_int clock 300) in
  Sched.await s t1;
  check_ns "start offset + task work" 1_000 clock

let test_nested_spawn () =
  let clock, s = mk () in
  let outer =
    Sched.spawn s (fun () ->
        Clock.consume_int clock 100;
        let inner = Sched.spawn s (fun () -> Clock.consume_int clock 1_000) in
        Clock.consume_int clock 50;
        Sched.await s inner)
  in
  Sched.await s outer;
  check_ns "inner joined from a task" 1_100 clock

let test_task_exception_propagates () =
  let _, s = mk () in
  let t = Sched.spawn s (fun () -> failwith "boom") in
  match Sched.await s t with
  | exception Failure m -> Alcotest.(check string) "exn carried" "boom" m
  | () -> Alcotest.fail "expected exception"

let test_deadlock_detected () =
  let _, s = mk () in
  let (iv : unit Sched.ivar) = Sched.ivar () in
  match Sched.read s iv with
  | exception Sched.Deadlock _ -> ()
  | () -> Alcotest.fail "expected Deadlock"

(* --- ivars ------------------------------------------------------------------ *)

let test_ivar_read_waits_for_fill_time () =
  (* the reader cannot observe a value before it was produced *)
  let clock, s = mk () in
  let iv = Sched.ivar () in
  let producer =
    Sched.spawn s (fun () ->
        Clock.consume_int clock 2_000;
        Sched.fill s iv 7)
  in
  let v = Sched.read s iv in
  check_i "value" 7 v;
  check_ns "reader warped to fill time" 2_000 clock;
  Sched.await s producer

let test_ivar_read_after_fill_keeps_reader_time () =
  let clock, s = mk () in
  let iv = Sched.ivar () in
  let producer = Sched.spawn s (fun () -> Sched.fill s iv 7) in
  Clock.consume_int clock 9_000;
  let v = Sched.read s iv in
  Sched.await s producer;
  check_i "value" 7 v;
  check_ns "late reader keeps its own time" 9_000 clock

(* --- mutex ------------------------------------------------------------------ *)

let test_mutex_serializes_tasks () =
  (* two tasks each hold the lock for 1000ns: the second's critical section
     starts only after the first releases *)
  let clock, s = mk () in
  let m = Sched.mutex () in
  let sections = ref [] in
  let worker () =
    Sched.with_lock s m (fun () ->
        let t0 = Clock.now_ns clock in
        Clock.consume_int clock 1_000;
        sections := (t0, Clock.now_ns clock) :: !sections)
  in
  let t1 = Sched.spawn s worker in
  let t2 = Sched.spawn s worker in
  Sched.await s t1;
  Sched.await s t2;
  match List.rev !sections with
  | [ (a0, a1); (b0, _) ] ->
      check_b "no overlap" true (Int64.compare b0 a1 >= 0);
      check_ns "total serialized" 2_000 clock;
      check_b "first started at 0" true (Int64.equal a0 0L)
  | _ -> Alcotest.fail "expected two sections"

let test_mutex_reentrant () =
  let clock, s = mk () in
  let m = Sched.mutex () in
  Sched.run s (fun () ->
      Sched.with_lock s m (fun () ->
          Sched.with_lock s m (fun () -> Clock.consume_int clock 10)));
  check_ns "reentrant lock ran" 10 clock

(* --- condition variables ---------------------------------------------------- *)

let test_cond_broadcast_counts_waiters () =
  let clock, s = mk () in
  let m = Sched.mutex () in
  let cv = Sched.cond () in
  let ready = ref 0 in
  let go = ref false in
  let waiter () =
    Sched.lock s m;
    incr ready;
    while not !go do
      Sched.wait s cv m
    done;
    Sched.unlock s m
  in
  let ws = List.init 3 (fun _ -> Sched.spawn s waiter) in
  (* drive until all three are parked on the condvar *)
  Sched.drive_main s (fun () -> !ready = 3 && Sched.pending_events s = 0);
  Clock.consume_int clock 500;
  go := true;
  let woken = Sched.broadcast s cv in
  check_i "broadcast counted the herd" 3 woken;
  List.iter (Sched.await s) ws;
  check_b "no waiters left" true (Sched.signal s cv = 0)

(* --- sequential identity ----------------------------------------------------

   The property the Conn refactor leans on: a producer/consumer pair over a
   queue, with ONE consumer and ONE top-level producer, yields exactly the
   timeline of inline execution.  Randomized over work sizes (qcheck). *)

let sequential_identity_prop (works : int list) =
  let works = List.map (fun w -> 1 + (abs w mod 10_000)) works in
  (* inline model: each item costs submit(30) + service(w) in one thread *)
  let expect =
    List.fold_left (fun acc w -> acc + 30 + w) 0 works
  in
  let clock, s = mk () in
  let q = Queue.create () in
  let m = Sched.mutex () in
  let cv = Sched.cond () in
  let consumer_done : unit Sched.ivar = Sched.ivar () in
  let n = List.length works in
  let served = ref 0 in
  let _consumer =
    Sched.spawn s (fun () ->
        while !served < n do
          Sched.lock s m;
          while Queue.is_empty q do
            Sched.wait s cv m
          done;
          let w, reply = Queue.pop q in
          Sched.unlock s m;
          Clock.consume_int clock w;
          incr served;
          Sched.fill s reply ()
        done;
        Sched.fill s consumer_done ())
  in
  List.iter
    (fun w ->
      let reply : unit Sched.ivar = Sched.ivar () in
      Sched.lock s m;
      Clock.consume_int clock 30;
      Queue.push (w, reply) q;
      ignore (Sched.broadcast s cv);
      Sched.unlock s m;
      Sched.read s reply)
    works;
  Sched.read s consumer_done;
  Int64.equal (Clock.now_ns clock) (Int64.of_int expect)

let qcheck_sequential_identity =
  QCheck.Test.make ~count:200 ~name:"1 consumer + 1 producer == inline timeline"
    QCheck.(list_of_size Gen.(1 -- 40) int)
    sequential_identity_prop

(* --- Dq model check ---------------------------------------------------------

   The two-list deque against the obvious list model: any interleaving of
   pushes and pops at both ends matches list semantics.  Every scheduler
   wait list and worker run queue now leans on this structure. *)

let dq_model_prop (ops : (int * int) list) =
  let dq : int Sched.Dq.t = Sched.Dq.create () in
  let model = ref [] in
  (* front of the deque = head of the list *)
  let ok = ref true in
  let expect a b = if a <> b then ok := false in
  List.iter
    (fun (op, v) ->
      match abs op mod 4 with
      | 0 ->
          Sched.Dq.push_back dq v;
          model := !model @ [ v ]
      | 1 ->
          Sched.Dq.push_front dq v;
          model := v :: !model
      | 2 -> (
          let got = Sched.Dq.pop_front dq in
          match !model with
          | [] -> expect got None
          | x :: rest ->
              model := rest;
              expect got (Some x))
      | _ -> (
          let got = Sched.Dq.pop_back dq in
          match List.rev !model with
          | [] -> expect got None
          | x :: rest ->
              model := List.rev rest;
              expect got (Some x)))
    ops;
  !ok
  && Sched.Dq.length dq = List.length !model
  && Sched.Dq.is_empty dq = (!model = [])
  && Sched.Dq.drain dq = !model

let qcheck_dq_model =
  QCheck.Test.make ~count:500 ~name:"Dq == list model"
    QCheck.(list_of_size Gen.(0 -- 60) (pair small_int small_int))
    dq_model_prop

(* --- Ws: deterministic steal order ------------------------------------------ *)

let test_ws_victim_order () =
  let p1 : int Sched.Ws.t = Sched.Ws.create ~seed:42 () in
  let p2 : int Sched.Ws.t = Sched.Ws.create ~seed:42 () in
  Sched.Ws.ensure p1 8;
  Sched.Ws.ensure p2 8;
  (* same seed, same thief, same instant: byte-identical walks *)
  let o1 = Sched.Ws.victim_order p1 ~thief:3 ~now:123456L in
  let o2 = Sched.Ws.victim_order p2 ~thief:3 ~now:123456L in
  Alcotest.(check (list int)) "same seed, same walk" o1 o2;
  (* a walk visits every other worker exactly once, never the thief *)
  check_i "walk covers the pool" 7 (List.length o1);
  check_b "thief is not its own victim" true (not (List.mem 3 o1));
  check_i "no duplicate victims" 7 (List.length (List.sort_uniq compare o1));
  (* the starting point rotates with the clock (different instants give a
     different rotation somewhere), and with the thief's private stream *)
  check_b "rotation varies with the clock" true
    (List.exists
       (fun now -> Sched.Ws.victim_order p1 ~thief:3 ~now <> o1)
       [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ]);
  check_b "rotation varies across thieves" true
    (List.exists
       (fun thief ->
         List.filter (fun v -> v <> 3) (Sched.Ws.victim_order p1 ~thief ~now:123456L)
         <> List.filter (fun v -> v <> thief) o1)
       [ 0; 1; 2; 4 ])

(* --- Ws: one worker degenerates to inline ------------------------------------

   A pool of ONE worker running the full pop-steal-park loop serves
   randomized submissions on exactly the inline timeline: the stealing
   machinery (empty victim walks, placement scoring, park/wake
   bookkeeping) adds no virtual time of its own. *)

let ws_single_worker_prop (works : int list) =
  let works = List.map (fun w -> 1 + (abs w mod 10_000)) works in
  let expect = List.fold_left (fun acc w -> acc + 30 + w) 0 works in
  let clock, s = mk () in
  let pool : (int * unit Sched.ivar) Sched.Ws.t = Sched.Ws.create ~seed:7 () in
  Sched.Ws.ensure pool 1;
  let m = Sched.mutex () in
  let cv = Sched.cond () in
  let n = List.length works in
  let served = ref 0 in
  let worker_done : unit Sched.ivar = Sched.ivar () in
  let _worker =
    Sched.spawn s (fun () ->
        while !served < n do
          Sched.lock s m;
          (match Sched.Ws.pop pool 0 with
          | Some (w, reply) ->
              Sched.unlock s m;
              Clock.consume_int clock w;
              incr served;
              Sched.fill s reply ()
          | None -> (
              (* steal walk: no victims in a pool of one *)
              match Sched.Ws.victim_order pool ~thief:0 ~now:(Clock.now_ns clock) with
              | _ :: _ -> failwith "victim in a singleton pool"
              | [] ->
                  Sched.Ws.set_parked pool 0 ~at:(Clock.now_ns clock);
                  Sched.unlock s m;
                  Sched.park s cv;
                  Sched.Ws.clear_parked pool 0))
        done;
        Sched.fill s worker_done ())
  in
  List.iter
    (fun w ->
      let reply : unit Sched.ivar = Sched.ivar () in
      let wid, _ =
        Sched.Ws.submit_target pool ~now:(Clock.now_ns clock) ~wake_ns:2500 ~item_ns:100
      in
      Sched.lock s m;
      Clock.consume_int clock 30;
      Sched.Ws.push pool wid (w, reply);
      ignore (Sched.signal s cv);
      Sched.unlock s m;
      Sched.read s reply)
    works;
  Sched.read s worker_done;
  (* every placement in a singleton pool lands on worker 0 (size stays 1),
     the local-hit counter saw every pop, and no virtual time beyond the
     inline submit+service sum ever passed *)
  Sched.Ws.size pool = 1
  && Sched.Ws.local_hits pool = List.length works
  && Sched.Ws.steals pool = 0
  && Int64.equal (Clock.now_ns clock) (Int64.of_int expect)

let qcheck_ws_single_worker =
  QCheck.Test.make ~count:200 ~name:"1-worker stealing pool == inline timeline"
    QCheck.(list_of_size Gen.(1 -- 40) int)
    ws_single_worker_prop

(* --- suite ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "sched"
    [
      ( "tasks",
        [
          tc "run charges task time" `Quick test_run_charges_task_time;
          tc "parallel tasks overlap" `Quick test_parallel_tasks_overlap;
          tc "spawn inherits current time" `Quick test_spawn_inherits_current_time;
          tc "nested spawn" `Quick test_nested_spawn;
          tc "task exception propagates" `Quick test_task_exception_propagates;
          tc "deadlock detected" `Quick test_deadlock_detected;
        ] );
      ( "ivars",
        [
          tc "read waits for fill time" `Quick test_ivar_read_waits_for_fill_time;
          tc "late read keeps reader time" `Quick test_ivar_read_after_fill_keeps_reader_time;
        ] );
      ( "mutex",
        [
          tc "serializes tasks" `Quick test_mutex_serializes_tasks;
          tc "reentrant" `Quick test_mutex_reentrant;
        ] );
      ("cond", [ tc "broadcast counts waiters" `Quick test_cond_broadcast_counts_waiters ]);
      ( "sequential-identity",
        [ QCheck_alcotest.to_alcotest qcheck_sequential_identity ] );
      ("dq", [ QCheck_alcotest.to_alcotest qcheck_dq_model ]);
      ( "work-stealing",
        [
          tc "deterministic victim order" `Quick test_ws_victim_order;
          QCheck_alcotest.to_alcotest qcheck_ws_single_worker;
        ] );
    ]
