(* Unit tests for the FUSE layer: connection accounting, batching, splice,
   the background (uncharged) mode, forget coalescing and the driver's
   caches — observed through the protocol statistics. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_cntrfs

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)
let ok = Errno.ok_exn

type world = {
  k : Kernel.t;
  init : Proc.t;
  session : Session.t;
}

let boot ?(opts = Opts.cntr_default) () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  ok (Kernel.mkdir k init "/back" ~mode:0o777);
  ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
  let server = Kernel.fork k init in
  let budget = Mem_budget.create ~limit_bytes:(64 * 1024 * 1024) in
  let session = Session.create ~kernel:k ~server_proc:server ~root_path:"/back" ~opts ~budget () in
  ignore (ok (Kernel.mount_at k init ~fs:(Session.fs session) "/mnt"));
  { k; init; session }

let kind_count w kind =
  Option.value ~default:0 (Hashtbl.find_opt (Session.stats w.session).Conn.by_kind kind)

let write_file w path data =
  let fd = ok (Kernel.open_ w.k w.init path [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] ~mode:0o644) in
  ignore (ok (Kernel.write w.k w.init fd data));
  ok (Kernel.close w.k w.init fd)

let metric w name =
  Repro_obs.Metrics.counter_value (Repro_obs.Obs.metrics (Session.obs w.session)) name

(* --- connection accounting -------------------------------------------------- *)

let test_requests_counted_by_kind () =
  let w = boot () in
  write_file w "/mnt/f" "x";
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  check_b "create counted" true (kind_count w "create" >= 1);
  check_b "lookups counted" true (kind_count w "lookup" >= 1);
  check_b "writes counted" true (kind_count w "write" >= 1);
  let s = Session.stats w.session in
  check_b "bytes to server tracked" true (s.Conn.bytes_to_server > 0);
  check_b "bytes from server tracked" true (s.Conn.bytes_from_server > 0)

let test_not_serving_before_handshake () =
  (* a fresh connection without start_serving refuses requests, like a FUSE
     fd before the mount signal (§3.2.2) *)
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  (match Conn.call conn Protocol.root_ctx Protocol.Statfs with
  | Protocol.R_err Errno.ENOTCONN -> ()
  | _ -> Alcotest.fail "expected ENOTCONN before start_serving");
  Conn.start_serving conn;
  match Conn.call conn Protocol.root_ctx Protocol.Statfs with
  | Protocol.R_ok -> ()
  | _ -> Alcotest.fail "expected R_ok after start_serving"

let test_batching_amortizes_context_switches () =
  (* a group of 8 requests submitted at once crosses /dev/fuse once: the
     worker pipelines through the queue without re-parking, so the group
     costs far fewer context switches than 8 separate round trips *)
  let clock = Clock.create () in
  let cost = Cost.default in
  let conn = Conn.create ~clock ~cost () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  conn.Conn.threads <- 1;
  Conn.start_serving conn;
  let t0 = Clock.now_ns clock in
  for _ = 1 to 8 do
    ignore (Conn.call conn Protocol.root_ctx Protocol.Statfs)
  done;
  let singles = Int64.to_int (Int64.sub (Clock.now_ns clock) t0) in
  let t1 = Clock.now_ns clock in
  ignore (Conn.call_group conn Protocol.root_ctx (List.init 8 (fun _ -> Protocol.Statfs)));
  let grouped = Int64.to_int (Int64.sub (Clock.now_ns clock) t1) in
  check_b "grouped submission cheaper" true (grouped < singles);
  check_b "saves most of the context switches" true
    (singles - grouped > cost.Cost.context_switch_ns)

let test_background_mode_free () =
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  Conn.start_serving conn;
  conn.Conn.background <- true;
  let t0 = Clock.now_ns clock in
  ignore (Conn.call conn Protocol.root_ctx Protocol.Statfs);
  check_b "background call charges nothing" true (Clock.now_ns clock = t0);
  conn.Conn.background <- false;
  let t1 = Clock.now_ns clock in
  ignore (Conn.call conn Protocol.root_ctx Protocol.Statfs);
  check_b "foreground call charges" true (Clock.now_ns clock > t1)

let test_splice_accounting () =
  let w = boot () in
  write_file w "/back/big" (String.make (256 * 1024) 'x');
  ignore (ok (Kernel.read_whole w.k w.init "/mnt/big"));
  let s = Session.stats w.session in
  check_b "spliced bytes recorded (splice_read on)" true (s.Conn.spliced_bytes > 0)

let test_no_splice_when_disabled () =
  let w = boot ~opts:{ Opts.cntr_default with Opts.splice_read = false } () in
  write_file w "/back/big" (String.make (256 * 1024) 'x');
  ignore (ok (Kernel.read_whole w.k w.init "/mnt/big"));
  check_i "no spliced bytes" 0 (Session.stats w.session).Conn.spliced_bytes

(* --- the shared data-path model ----------------------------------------------- *)

(* A bare kernel (no CntrFS session) for exercising Kernel.splice itself. *)
let kboot () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  (k, Kernel.init_proc k, clock, cost)

let test_splice_eagain_consumes_nothing () =
  (* a full destination is EAGAIN before anything is pulled out of the
     source — the clamp runs before the read, so no bytes are stranded *)
  let k, init, _, _ = kboot () in
  let src_r, src_w = Kernel.pipe k init in
  let _dst_r, dst_w = Kernel.pipe k init in
  ignore (ok (Kernel.write k init src_w "precious"));
  ignore (ok (Kernel.write k init dst_w (String.make (64 * 1024) 'f')));
  (match Kernel.splice k init ~fd_in:src_r ~fd_out:dst_w ~len:8 with
  | Error Errno.EAGAIN -> ()
  | Ok n -> Alcotest.failf "expected EAGAIN, spliced %d" n
  | Error e -> Alcotest.failf "expected EAGAIN, got %s" (Errno.to_string e));
  check_s "source intact" "precious" (ok (Kernel.read k init src_r ~len:64))

let test_splice_clamps_to_sink_room () =
  (* len larger than the sink's free room moves exactly the room; the
     remainder stays queued at the source *)
  let k, init, _, _ = kboot () in
  let src_r, src_w = Kernel.pipe k init in
  let _dst_r, dst_w = Kernel.pipe k init in
  ignore (ok (Kernel.write k init src_w (String.make 4096 's')));
  ignore (ok (Kernel.write k init dst_w (String.make ((64 * 1024) - 1000) 'f')));
  check_i "moves exactly the sink's room" 1000
    (ok (Kernel.splice k init ~fd_in:src_r ~fd_out:dst_w ~len:4096));
  check_i "remainder still at the source" 3096
    (String.length (ok (Kernel.read k init src_r ~len:8192)))

let test_splice_priced_per_page () =
  (* splice pricing is the Datapath model: fixed setup plus a per-page
     remap — growing the chunk by N pages costs exactly N more remaps *)
  let k, init, clock, cost = kboot () in
  let measure pages =
    let src_r, src_w = Kernel.pipe k init in
    let dst_r, dst_w = Kernel.pipe k init in
    let len = pages * cost.Cost.page_size in
    ignore (ok (Kernel.write k init src_w (String.make len 'x')));
    let t0 = Clock.now_ns clock in
    check_i "full chunk moved" len
      (ok (Kernel.splice k init ~fd_in:src_r ~fd_out:dst_w ~len));
    let d = Int64.to_int (Int64.sub (Clock.now_ns clock) t0) in
    List.iter (fun fd -> ok (Kernel.close k init fd)) [ src_r; src_w; dst_r; dst_w ];
    d
  in
  let one = measure 1 in
  let nine = measure 9 in
  check_i "eight more pages cost eight more remaps" (8 * cost.Cost.splice_page_ns)
    (nine - one)

let test_splice_read_cost_bearing () =
  (* the same cold streaming read is cheaper over the splice path than over
     the copy path, and only the splice path touches fuse.splice.* *)
  let run opts =
    let w = boot ~opts () in
    write_file w "/back/big" (String.make (512 * 1024) 'x');
    let t0 = Clock.now_ns w.k.Kernel.clock in
    ignore (ok (Kernel.read_whole w.k w.init "/mnt/big"));
    let d = Int64.to_int (Int64.sub (Clock.now_ns w.k.Kernel.clock) t0) in
    (d, metric w "fuse.splice.calls", metric w "fuse.splice.bytes")
  in
  let d_splice, calls, bytes = run Opts.cntr_default in
  let d_copy, calls0, bytes0 = run { Opts.cntr_default with Opts.splice_read = false } in
  check_b "spliced streaming read cheaper than copied" true (d_splice < d_copy);
  check_b "splice calls counted" true (calls >= 1);
  check_b "splice bytes cover the payload" true (bytes >= 512 * 1024);
  check_i "copy path leaves the splice counters untouched" 0 (calls0 + bytes0)

(* --- forget batching ---------------------------------------------------------- *)

let test_forget_batching () =
  let w = boot () in
  (* create then unlink many files: forgets queue until the batch size *)
  for i = 0 to 99 do
    write_file w (Printf.sprintf "/mnt/f%d" i) "x"
  done;
  for i = 0 to 99 do
    ignore (ok (Kernel.unlink w.k w.init (Printf.sprintf "/mnt/f%d" i)))
  done;
  let forgets = kind_count w "forget" in
  check_b "forgets sent" true (forgets >= 1);
  check_b "forgets coalesced (100 inos, batch 64)" true (forgets <= 3)

let test_forget_unbatched () =
  let w = boot ~opts:{ Opts.cntr_default with Opts.forget_batch = 1 } () in
  for i = 0 to 9 do
    write_file w (Printf.sprintf "/mnt/f%d" i) "x"
  done;
  for i = 0 to 9 do
    ignore (ok (Kernel.unlink w.k w.init (Printf.sprintf "/mnt/f%d" i)))
  done;
  check_b "one forget per ino" true (kind_count w "forget" >= 10)

(* --- driver caches -------------------------------------------------------------- *)

let test_entry_cache_avoids_lookups () =
  let w = boot () in
  write_file w "/back/f" "x";
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  let lookups1 = kind_count w "lookup" in
  (* repeated stats resolve from the dentry cache *)
  for _ = 1 to 10 do
    ignore (ok (Kernel.stat w.k w.init "/mnt/f"))
  done;
  check_i "no further lookup requests" lookups1 (kind_count w "lookup")

let test_entry_cache_disabled () =
  let w = boot ~opts:{ Opts.cntr_default with Opts.entry_cache = false; attr_cache = false } () in
  write_file w "/back/f" "x";
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  let lookups1 = kind_count w "lookup" in
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  check_b "every walk pays lookups" true (kind_count w "lookup" > lookups1)

let test_write_coalescing () =
  let w = boot () in
  let fd = ok (Kernel.open_ w.k w.init "/mnt/f" [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644) in
  (* 64 x 4 KiB sequential writes = 256 KiB -> at most a handful of WRITE
     requests (128 KiB each) thanks to the writeback cache *)
  for i = 0 to 63 do
    ignore (ok (Kernel.pwrite w.k w.init fd ~off:(i * 4096) (String.make 4096 'w')))
  done;
  ok (Kernel.close w.k w.init fd);
  let writes = kind_count w "write" in
  check_b (Printf.sprintf "writes coalesced (%d requests for 64 calls)" writes) true (writes <= 4)

let test_write_through_no_coalescing () =
  let w = boot ~opts:{ Opts.cntr_default with Opts.writeback = false } () in
  let fd = ok (Kernel.open_ w.k w.init "/mnt/f" [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644) in
  for i = 0 to 15 do
    ignore (ok (Kernel.pwrite w.k w.init fd ~off:(i * 4096) (String.make 4096 'w')))
  done;
  ok (Kernel.close w.k w.init fd);
  check_b "one WRITE per call" true (kind_count w "write" >= 16)

(* --- connection counter accounting (regression) ------------------------------- *)
(* fuse.round_trips / os.context_switches must report what was *charged*:
   a group of n requests crosses /dev/fuse once (one round trip), the
   worker wakes once and the submitter resumes once (two context
   switches), however many members the group has. *)

let test_batched_counters_amortized () =
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  conn.Conn.threads <- 1;
  Conn.start_serving conn;
  let m = Repro_obs.Obs.metrics (Conn.obs conn) in
  let rt0 = (Conn.stats conn).Conn.round_trips in
  let cs0 = Repro_obs.Metrics.counter_value m "os.context_switches" in
  ignore (Conn.call_group conn Protocol.root_ctx (List.init 8 (fun _ -> Protocol.Statfs)));
  check_i "8 grouped requests = one round trip" (rt0 + 1) (Conn.stats conn).Conn.round_trips;
  check_i "and two context switches" (cs0 + 2)
    (Repro_obs.Metrics.counter_value m "os.context_switches")

let test_unbatched_counters_exact () =
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  (* one worker: no herd, so the accounting is exact — each call wakes the
     worker once and resumes the submitter once *)
  conn.Conn.threads <- 1;
  Conn.start_serving conn;
  let m = Repro_obs.Obs.metrics (Conn.obs conn) in
  for _ = 1 to 5 do
    ignore (Conn.call conn Protocol.root_ctx Protocol.Statfs)
  done;
  check_i "one round trip per call" 5 (Conn.stats conn).Conn.round_trips;
  check_i "two context switches each" 10
    (Repro_obs.Metrics.counter_value m "os.context_switches")

(* --- metadata fast path --------------------------------------------------------- *)


let test_readdirplus_populates_caches () =
  let w = boot ~opts:Opts.fastpath () in
  ok (Kernel.mkdir w.k w.init "/back/d" ~mode:0o755);
  for i = 0 to 9 do
    write_file w (Printf.sprintf "/back/d/f%d" i) "x"
  done;
  ignore (ok (Kernel.readdir w.k w.init "/mnt/d"));
  check_b "readdirplus returned entries" true (metric w "fuse.readdirplus.entries" >= 10);
  let lookups = kind_count w "lookup" in
  let getattrs = kind_count w "getattr" in
  (* every child is already in the dentry+attr caches: stats are free *)
  for i = 0 to 9 do
    ignore (ok (Kernel.stat w.k w.init (Printf.sprintf "/mnt/d/f%d" i)))
  done;
  check_i "no LOOKUP after readdirplus" lookups (kind_count w "lookup");
  check_i "no GETATTR after readdirplus" getattrs (kind_count w "getattr")

let test_readdir_plain_when_disabled () =
  let w = boot () in
  (* paper profile: READDIRPLUS off, stats after readdir still pay lookups *)
  ok (Kernel.mkdir w.k w.init "/back/d" ~mode:0o755);
  write_file w "/back/d/f" "x";
  ignore (ok (Kernel.readdir w.k w.init "/mnt/d"));
  check_i "no readdirplus entries in paper profile" 0 (metric w "fuse.readdirplus.entries");
  let lookups = kind_count w "lookup" in
  ignore (ok (Kernel.stat w.k w.init "/mnt/d/f"));
  check_b "stat still pays a LOOKUP" true (kind_count w "lookup" > lookups)

let test_negative_dentries () =
  let w = boot ~opts:Opts.fastpath () in
  (match Kernel.stat w.k w.init "/mnt/ghost" with
  | Error Errno.ENOENT -> ()
  | _ -> Alcotest.fail "expected ENOENT");
  let lookups = kind_count w "lookup" in
  for _ = 1 to 5 do
    match Kernel.stat w.k w.init "/mnt/ghost" with
    | Error Errno.ENOENT -> ()
    | _ -> Alcotest.fail "expected cached ENOENT"
  done;
  check_i "repeat misses served from the negative cache" lookups (kind_count w "lookup");
  check_b "negative hits counted" true (metric w "fuse.dentry.negative_hits" >= 5);
  (* coherence: creating the name must drop the negative entry *)
  write_file w "/mnt/ghost" "now";
  (match Kernel.stat w.k w.init "/mnt/ghost" with
  | Ok st -> check_i "created file visible" 3 st.Types.st_size
  | Error _ -> Alcotest.fail "negative dentry survived create")

let test_unlink_installs_negative_entry () =
  let w = boot ~opts:Opts.fastpath () in
  write_file w "/mnt/churn" "x";
  ignore (ok (Kernel.unlink w.k w.init "/mnt/churn"));
  let lookups = kind_count w "lookup" in
  (* postmark's create-after-unlink: the failed LOOKUP is skipped *)
  write_file w "/mnt/churn" "y";
  check_i "create-after-unlink pays no failed LOOKUP" lookups (kind_count w "lookup");
  (match Kernel.stat w.k w.init "/mnt/churn" with
  | Ok st -> check_i "recreated file visible" 1 st.Types.st_size
  | Error _ -> Alcotest.fail "recreated file invisible")

let test_ttl_expiry_re_lookups () =
  (* tiny TTLs: entries expire between operations (every op consumes
     virtual time), so walks go back to the wire *)
  let w =
    boot
      ~opts:
        { Opts.fastpath with Opts.entry_timeout_ns = 1; attr_timeout_ns = 1; negative_timeout_ns = 1 }
      ()
  in
  write_file w "/back/f" "x";
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  let lookups = kind_count w "lookup" in
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  check_b "expired entry pays a fresh LOOKUP" true (kind_count w "lookup" > lookups)

let test_handle_cache_hits () =
  (* expired dentries force re-LOOKUPs; the server-side handle cache then
     answers them without re-paying open()+stat() *)
  let w =
    boot
      ~opts:
        { Opts.fastpath with Opts.entry_timeout_ns = 1; attr_timeout_ns = 1; negative_timeout_ns = 1 }
      ()
  in
  write_file w "/back/f" "x";
  for _ = 1 to 10 do
    ignore (ok (Kernel.stat w.k w.init "/mnt/f"))
  done;
  check_b "handle cache hit on re-LOOKUP" true (metric w "cntrfs.handle_cache.hits" >= 1);
  check_b "misses counted too" true (metric w "cntrfs.handle_cache.misses" >= 1)

let test_handle_cache_coherent_after_write () =
  let w =
    boot ~opts:{ Opts.fastpath with Opts.entry_timeout_ns = 1; attr_timeout_ns = 1 } ()
  in
  write_file w "/mnt/f" "old";
  write_file w "/mnt/f" "older!";
  (* the cached handle's stat must not serve the pre-write size *)
  match Kernel.stat w.k w.init "/mnt/f" with
  | Ok st -> check_i "size after rewrite" 6 st.Types.st_size
  | Error _ -> Alcotest.fail "stat failed"

let test_fastpath_off_is_inert () =
  (* the paper profile must not touch any fast-path machinery *)
  let w = boot () in
  write_file w "/mnt/f" "x";
  ignore (Kernel.stat w.k w.init "/mnt/ghost");
  ignore (Kernel.stat w.k w.init "/mnt/ghost");
  ignore (ok (Kernel.readdir w.k w.init "/mnt"));
  check_i "no negative hits" 0 (metric w "fuse.dentry.negative_hits");
  check_i "no readdirplus entries" 0 (metric w "fuse.readdirplus.entries");
  check_i "no handle-cache traffic" 0
    (metric w "cntrfs.handle_cache.hits" + metric w "cntrfs.handle_cache.misses")

let test_server_lookup_tax_counted () =
  let w = boot () in
  for i = 0 to 9 do
    write_file w (Printf.sprintf "/back/s%d" i) "x"
  done;
  let before = Server.lookups_performed w.session.Session.server in
  for i = 0 to 9 do
    ignore (ok (Kernel.stat w.k w.init (Printf.sprintf "/mnt/s%d" i)))
  done;
  check_b "server-side open()+stat() per cold lookup" true
    (Server.lookups_performed w.session.Session.server - before >= 10)

(* --- passthrough grants -------------------------------------------------------- *)

let test_passthrough_reads_bypass_fuse () =
  (* a granted open serves its reads out of the backing file: the payload
     crosses zero FUSE READ round trips *)
  let w = boot ~opts:{ Opts.cntr_default with Opts.passthrough = 8 } () in
  let payload = String.make (256 * 1024) 'h' in
  write_file w "/back/hot" payload;
  let reads_before = kind_count w "read" in
  let fd = ok (Kernel.open_ w.k w.init "/mnt/hot" [ Types.O_RDONLY ] ~mode:0) in
  let data = ok (Kernel.pread w.k w.init fd ~off:0 ~len:(256 * 1024)) in
  ok (Kernel.close w.k w.init fd);
  check_b "payload intact" true (String.equal data payload);
  check_b "grant issued" true (metric w "fuse.passthrough.grants" >= 1);
  check_b "grant served the reads" true (metric w "fuse.passthrough.reads" >= 1);
  check_i "zero READ round trips" reads_before (kind_count w "read")

let test_passthrough_off_is_inert () =
  (* the default profile must leave the grant plane untouched: not a
     single fuse.passthrough.* counter may exist in the registry *)
  let w = boot () in
  write_file w "/mnt/f" "x";
  ignore (ok (Kernel.read_whole w.k w.init "/mnt/f"));
  check_i "no passthrough counters in the registry" 0
    (List.length
       (Repro_obs.Metrics.counters_with_prefix
          (Repro_obs.Obs.metrics (Session.obs w.session))
          ~prefix:"fuse.passthrough."))

let test_passthrough_write_through () =
  (* with the writeback cache off every write is a synchronous WRITE round
     trip — unless a grant carries it straight to the backing file *)
  let w =
    boot ~opts:{ Opts.cntr_default with Opts.passthrough = 8; writeback = false } ()
  in
  write_file w "/back/f" "aaaaaaaa";
  let writes_before = kind_count w "write" in
  let fd = ok (Kernel.open_ w.k w.init "/mnt/f" [ Types.O_WRONLY ] ~mode:0) in
  check_i "written" 4 (ok (Kernel.pwrite w.k w.init fd ~off:0 "ZZZZ"));
  ok (Kernel.close w.k w.init fd);
  check_i "zero WRITE round trips" writes_before (kind_count w "write");
  check_b "grant carried the write" true (metric w "fuse.passthrough.writes" >= 1);
  check_s "backing updated synchronously" "ZZZZaaaa"
    (ok (Kernel.read_whole w.k w.init "/back/f"))

let test_passthrough_revocation_races_writeback () =
  (* LRU capacity 1: the second grant evicts the first (a server-side
     revocation).  The revoked handle's writes ride the writeback cache;
     a regrant over the same file must serve reads that see the pending
     dirty data — the grant fill must never clobber dirty pages — and the
     eventual flush must land it in the backing file. *)
  let w = boot ~opts:{ Opts.cntr_default with Opts.passthrough = 1 } () in
  write_file w "/back/f1" (String.make 8192 'a');
  write_file w "/back/f2" "bbbb";
  let fd1 = ok (Kernel.open_ w.k w.init "/mnt/f1" [ Types.O_RDWR ] ~mode:0) in
  ignore (ok (Kernel.pread w.k w.init fd1 ~off:0 ~len:16));
  let fd2 = ok (Kernel.open_ w.k w.init "/mnt/f2" [ Types.O_RDONLY ] ~mode:0) in
  check_b "LRU overflow revoked the first grant" true
    (metric w "fuse.passthrough.revocations" >= 1);
  (* the revoked handle falls back to the writeback cache: dirty pages *)
  check_i "fallback write accepted" 3 (ok (Kernel.pwrite w.k w.init fd1 ~off:0 "XYZ"));
  ok (Kernel.close w.k w.init fd2);
  (* a fresh open regrants f1 while those dirty pages are still pending *)
  let fd3 = ok (Kernel.open_ w.k w.init "/mnt/f1" [ Types.O_RDONLY ] ~mode:0) in
  check_s "regranted read sees the unflushed write" "XYZ"
    (ok (Kernel.pread w.k w.init fd3 ~off:0 ~len:3));
  ok (Kernel.fsync w.k w.init fd1);
  ok (Kernel.close w.k w.init fd1);
  ok (Kernel.close w.k w.init fd3);
  Session.quiesce w.session;
  let backing = ok (Kernel.read_whole w.k w.init "/back/f1") in
  check_s "backing caught up after the flush" "XYZ" (String.sub backing 0 3);
  check_b "every open earned a grant" true (metric w "fuse.passthrough.grants" >= 3)

(* --- request queue ----------------------------------------------------------- *)

let test_queue_fifo_ordering () =
  (* a single worker drains the pending queue in submission order — the
     queue is the kernel's FIFO fuse_conn list, not a priority structure *)
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  let served = ref [] in
  Conn.set_handler conn (fun _ req ->
      (match req with
      | Protocol.Getattr ino -> served := ino :: !served
      | _ -> ());
      Protocol.R_err Errno.ENOSYS);
  conn.Conn.threads <- 1;
  Conn.start_serving conn;
  let inos = List.init 16 (fun i -> i + 100) in
  ignore
    (Conn.call_group conn Protocol.root_ctx
       (List.map (fun i -> Protocol.Getattr i) inos));
  check_b "served in submission order" true (List.rev !served = inos)

let test_background_backpressure () =
  (* one-way messages are the background class: at [max_background] the
     submitter blocks until workers drain below the threshold, so the
     in-flight count can touch but never exceed it *)
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  conn.Conn.threads <- 2;
  conn.Conn.max_background <- 3;
  Conn.start_serving conn;
  let max_seen = ref 0 in
  for fh = 1 to 32 do
    Conn.post conn Protocol.root_ctx (Protocol.Release fh);
    if conn.Conn.bg_inflight > !max_seen then max_seen := conn.Conn.bg_inflight
  done;
  check_i "submitter held at the congestion threshold" 3 !max_seen;
  Conn.quiesce conn;
  check_i "background class drains to zero" 0 conn.Conn.bg_inflight

let test_worker_fairness () =
  (* grouped submissions keep the queue deep enough that the whole pool
     engages: every worker accumulates busy time, and no single worker
     pipelines the queue dry while its peers starve (the yield between
     requests models re-entering read(2) on /dev/fuse) *)
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  conn.Conn.threads <- 4;
  Conn.start_serving conn;
  for _ = 1 to 8 do
    ignore
      (Conn.call_group conn Protocol.root_ctx
         (List.init 16 (fun _ -> Protocol.Statfs)))
  done;
  let m = Repro_obs.Obs.metrics (Conn.obs conn) in
  let busy = Repro_obs.Metrics.counters_with_prefix m ~prefix:"cntrfs.worker." in
  check_i "one busy counter per worker" 4 (List.length busy);
  let vals = List.map snd busy in
  let mn = List.fold_left min max_int vals in
  let mx = List.fold_left max 0 vals in
  check_b "every worker served requests" true (mn > 0);
  check_b
    (Printf.sprintf "no worker monopolizes the pool (min %dns, max %dns)" mn mx)
    true
    (mx <= 4 * mn)

let test_sixteen_worker_determinism () =
  (* 16 workers, a grouped concurrent load: two fresh runs leave
     byte-identical registries — counters, gauges AND latency histograms.
     Placement scoring, steal walks and park order all derive from the
     virtual clock and the pool's seeded rng streams, never from host
     scheduling, so `cntr stats --json` is reproducible at any width. *)
  let run () =
    let clock = Clock.create () in
    let conn = Conn.create ~clock ~cost:Cost.default () in
    Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
    conn.Conn.threads <- 16;
    Conn.start_serving conn;
    for _ = 1 to 6 do
      ignore
        (Conn.call_group conn Protocol.root_ctx (List.init 24 (fun _ -> Protocol.Statfs)))
    done;
    Conn.quiesce conn;
    Repro_obs.Metrics.to_json (Repro_obs.Obs.metrics (Conn.obs conn))
  in
  Alcotest.(check string) "byte-identical stats at 16 workers" (run ()) (run ())

let test_rename_storm_no_deadlock () =
  (* Serialized dirops shard the directory locks by inode hash, and rename
     takes its two shards in table order.  A seeded storm of concurrent
     cross-directory renames — enough parents that some must collide in
     the 64-entry shard table, with tasks hopping in opposing directions —
     must run to completion (a lock cycle would surface as
     Sched.Deadlock) with every file still reachable where its task left
     it. *)
  let w = boot ~opts:{ Opts.cntr_default with Opts.parallel_dirops = false } () in
  let ndirs = 66 (* > 64 shards: the pigeonhole guarantees collisions *) in
  let ntasks = 8 and hops = 20 in
  for d = 0 to ndirs - 1 do
    ok (Kernel.mkdir w.k w.init (Printf.sprintf "/mnt/d%02d" d) ~mode:0o777)
  done;
  for t = 0 to ntasks - 1 do
    write_file w (Printf.sprintf "/mnt/d%02d/f%d" t t) "payload"
  done;
  let sched = Conn.sched w.session.Session.conn in
  let final = Array.make ntasks 0 in
  Repro_sched.Sched.run sched (fun () ->
      let tasks =
        List.init ntasks (fun t ->
            Repro_sched.Sched.spawn sched (fun () ->
                (* distinct strides give opposing lock orders across the
                   same directory pairs *)
                let stride = (t * 13) + 7 in
                let cur = ref t in
                for _ = 1 to hops do
                  let next = (!cur + stride) mod ndirs in
                  ok
                    (Kernel.rename w.k w.init
                       ~src:(Printf.sprintf "/mnt/d%02d/f%d" !cur t)
                       ~dst:(Printf.sprintf "/mnt/d%02d/f%d" next t));
                  cur := next
                done;
                final.(t) <- !cur))
      in
      List.iter (fun task -> Repro_sched.Sched.await sched task) tasks);
  for t = 0 to ntasks - 1 do
    let st =
      ok (Kernel.stat w.k w.init (Printf.sprintf "/mnt/d%02d/f%d" final.(t) t))
    in
    check_b (Printf.sprintf "file %d intact after the storm" t) true
      (st.Types.st_size = String.length "payload")
  done

let () =
  Alcotest.run "fuse"
    [
      ( "connection",
        [
          Alcotest.test_case "requests by kind" `Quick test_requests_counted_by_kind;
          Alcotest.test_case "handshake gate" `Quick test_not_serving_before_handshake;
          Alcotest.test_case "batching amortizes" `Quick test_batching_amortizes_context_switches;
          Alcotest.test_case "background mode free" `Quick test_background_mode_free;
          Alcotest.test_case "splice accounting" `Quick test_splice_accounting;
          Alcotest.test_case "splice disabled" `Quick test_no_splice_when_disabled;
          Alcotest.test_case "batched counters amortized" `Quick test_batched_counters_amortized;
          Alcotest.test_case "unbatched counters exact" `Quick test_unbatched_counters_exact;
        ] );
      ( "datapath",
        [
          Alcotest.test_case "splice EAGAIN consumes nothing" `Quick
            test_splice_eagain_consumes_nothing;
          Alcotest.test_case "splice clamps to sink room" `Quick test_splice_clamps_to_sink_room;
          Alcotest.test_case "splice priced per page" `Quick test_splice_priced_per_page;
          Alcotest.test_case "splice read cost-bearing" `Quick test_splice_read_cost_bearing;
        ] );
      ( "passthrough",
        [
          Alcotest.test_case "reads bypass FUSE" `Quick test_passthrough_reads_bypass_fuse;
          Alcotest.test_case "off is inert" `Quick test_passthrough_off_is_inert;
          Alcotest.test_case "write-through bypass" `Quick test_passthrough_write_through;
          Alcotest.test_case "revocation races writeback" `Quick
            test_passthrough_revocation_races_writeback;
        ] );
      ( "fastpath",
        [
          Alcotest.test_case "readdirplus populates caches" `Quick test_readdirplus_populates_caches;
          Alcotest.test_case "plain readdir when disabled" `Quick test_readdir_plain_when_disabled;
          Alcotest.test_case "negative dentries" `Quick test_negative_dentries;
          Alcotest.test_case "unlink installs negative entry" `Quick test_unlink_installs_negative_entry;
          Alcotest.test_case "ttl expiry re-lookups" `Quick test_ttl_expiry_re_lookups;
          Alcotest.test_case "handle cache hits" `Quick test_handle_cache_hits;
          Alcotest.test_case "handle cache coherent" `Quick test_handle_cache_coherent_after_write;
          Alcotest.test_case "fast path off is inert" `Quick test_fastpath_off_is_inert;
        ] );
      ( "queue",
        [
          Alcotest.test_case "FIFO ordering" `Quick test_queue_fifo_ordering;
          Alcotest.test_case "congestion backpressure" `Quick test_background_backpressure;
          Alcotest.test_case "worker fairness" `Quick test_worker_fairness;
          Alcotest.test_case "16-worker determinism" `Quick test_sixteen_worker_determinism;
          Alcotest.test_case "rename storm is deadlock-free" `Quick
            test_rename_storm_no_deadlock;
        ] );
      ( "forgets",
        [
          Alcotest.test_case "batched" `Quick test_forget_batching;
          Alcotest.test_case "unbatched" `Quick test_forget_unbatched;
        ] );
      ( "caches",
        [
          Alcotest.test_case "entry cache" `Quick test_entry_cache_avoids_lookups;
          Alcotest.test_case "entry cache disabled" `Quick test_entry_cache_disabled;
          Alcotest.test_case "write coalescing" `Quick test_write_coalescing;
          Alcotest.test_case "write-through" `Quick test_write_through_no_coalescing;
          Alcotest.test_case "server lookup tax" `Quick test_server_lookup_tax_counted;
        ] );
    ]
