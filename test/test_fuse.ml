(* Unit tests for the FUSE layer: connection accounting, batching, splice,
   the background (uncharged) mode, forget coalescing and the driver's
   caches — observed through the protocol statistics. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_cntrfs

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let ok = Errno.ok_exn

type world = {
  k : Kernel.t;
  init : Proc.t;
  session : Session.t;
}

let boot ?(opts = Opts.cntr_default) () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  ok (Kernel.mkdir k init "/back" ~mode:0o777);
  ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
  let server = Kernel.fork k init in
  let budget = Mem_budget.create ~limit_bytes:(64 * 1024 * 1024) in
  let session = Session.create ~kernel:k ~server_proc:server ~root_path:"/back" ~opts ~budget () in
  ignore (ok (Kernel.mount_at k init ~fs:(Session.fs session) "/mnt"));
  { k; init; session }

let kind_count w kind =
  Option.value ~default:0 (Hashtbl.find_opt (Session.stats w.session).Conn.by_kind kind)

let write_file w path data =
  let fd = ok (Kernel.open_ w.k w.init path [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] ~mode:0o644) in
  ignore (ok (Kernel.write w.k w.init fd data));
  ok (Kernel.close w.k w.init fd)

(* --- connection accounting -------------------------------------------------- *)

let test_requests_counted_by_kind () =
  let w = boot () in
  write_file w "/mnt/f" "x";
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  check_b "create counted" true (kind_count w "create" >= 1);
  check_b "lookups counted" true (kind_count w "lookup" >= 1);
  check_b "writes counted" true (kind_count w "write" >= 1);
  let s = Session.stats w.session in
  check_b "bytes to server tracked" true (s.Conn.bytes_to_server > 0);
  check_b "bytes from server tracked" true (s.Conn.bytes_from_server > 0)

let test_not_serving_before_handshake () =
  (* a fresh connection without start_serving refuses requests, like a FUSE
     fd before the mount signal (§3.2.2) *)
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  (match Conn.call conn Protocol.root_ctx Protocol.Statfs with
  | Protocol.R_err Errno.ENOTCONN -> ()
  | _ -> Alcotest.fail "expected ENOTCONN before start_serving");
  Conn.start_serving conn;
  match Conn.call conn Protocol.root_ctx Protocol.Statfs with
  | Protocol.R_ok -> ()
  | _ -> Alcotest.fail "expected R_ok after start_serving"

let test_batching_amortizes_context_switches () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let conn = Conn.create ~clock ~cost () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  Conn.start_serving conn;
  conn.Conn.threads <- 1;
  let t0 = Clock.now_ns clock in
  ignore (Conn.call conn Protocol.root_ctx Protocol.Statfs);
  let single = Int64.to_int (Int64.sub (Clock.now_ns clock) t0) in
  let t1 = Clock.now_ns clock in
  ignore (Conn.call conn ~batch:8 Protocol.root_ctx Protocol.Statfs);
  let batched = Int64.to_int (Int64.sub (Clock.now_ns clock) t1) in
  check_b "batched call cheaper" true (batched < single);
  check_b "saves most of the context switches" true
    (single - batched > cost.Cost.context_switch_ns)

let test_background_mode_free () =
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  Conn.set_handler conn (fun _ _ -> Protocol.R_ok);
  Conn.start_serving conn;
  conn.Conn.background <- true;
  let t0 = Clock.now_ns clock in
  ignore (Conn.call conn Protocol.root_ctx Protocol.Statfs);
  check_b "background call charges nothing" true (Clock.now_ns clock = t0);
  conn.Conn.background <- false;
  let t1 = Clock.now_ns clock in
  ignore (Conn.call conn Protocol.root_ctx Protocol.Statfs);
  check_b "foreground call charges" true (Clock.now_ns clock > t1)

let test_splice_accounting () =
  let w = boot () in
  write_file w "/back/big" (String.make (256 * 1024) 'x');
  ignore (ok (Kernel.read_whole w.k w.init "/mnt/big"));
  let s = Session.stats w.session in
  check_b "spliced bytes recorded (splice_read on)" true (s.Conn.spliced_bytes > 0)

let test_no_splice_when_disabled () =
  let w = boot ~opts:{ Opts.cntr_default with Opts.splice_read = false } () in
  write_file w "/back/big" (String.make (256 * 1024) 'x');
  ignore (ok (Kernel.read_whole w.k w.init "/mnt/big"));
  check_i "no spliced bytes" 0 (Session.stats w.session).Conn.spliced_bytes

(* --- forget batching ---------------------------------------------------------- *)

let test_forget_batching () =
  let w = boot () in
  (* create then unlink many files: forgets queue until the batch size *)
  for i = 0 to 99 do
    write_file w (Printf.sprintf "/mnt/f%d" i) "x"
  done;
  for i = 0 to 99 do
    ignore (ok (Kernel.unlink w.k w.init (Printf.sprintf "/mnt/f%d" i)))
  done;
  let forgets = kind_count w "forget" in
  check_b "forgets sent" true (forgets >= 1);
  check_b "forgets coalesced (100 inos, batch 64)" true (forgets <= 3)

let test_forget_unbatched () =
  let w = boot ~opts:{ Opts.cntr_default with Opts.forget_batch = 1 } () in
  for i = 0 to 9 do
    write_file w (Printf.sprintf "/mnt/f%d" i) "x"
  done;
  for i = 0 to 9 do
    ignore (ok (Kernel.unlink w.k w.init (Printf.sprintf "/mnt/f%d" i)))
  done;
  check_b "one forget per ino" true (kind_count w "forget" >= 10)

(* --- driver caches -------------------------------------------------------------- *)

let test_entry_cache_avoids_lookups () =
  let w = boot () in
  write_file w "/back/f" "x";
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  let lookups1 = kind_count w "lookup" in
  (* repeated stats resolve from the dentry cache *)
  for _ = 1 to 10 do
    ignore (ok (Kernel.stat w.k w.init "/mnt/f"))
  done;
  check_i "no further lookup requests" lookups1 (kind_count w "lookup")

let test_entry_cache_disabled () =
  let w = boot ~opts:{ Opts.cntr_default with Opts.entry_cache = false; attr_cache = false } () in
  write_file w "/back/f" "x";
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  let lookups1 = kind_count w "lookup" in
  ignore (ok (Kernel.stat w.k w.init "/mnt/f"));
  check_b "every walk pays lookups" true (kind_count w "lookup" > lookups1)

let test_write_coalescing () =
  let w = boot () in
  let fd = ok (Kernel.open_ w.k w.init "/mnt/f" [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644) in
  (* 64 x 4 KiB sequential writes = 256 KiB -> at most a handful of WRITE
     requests (128 KiB each) thanks to the writeback cache *)
  for i = 0 to 63 do
    ignore (ok (Kernel.pwrite w.k w.init fd ~off:(i * 4096) (String.make 4096 'w')))
  done;
  ok (Kernel.close w.k w.init fd);
  let writes = kind_count w "write" in
  check_b (Printf.sprintf "writes coalesced (%d requests for 64 calls)" writes) true (writes <= 4)

let test_write_through_no_coalescing () =
  let w = boot ~opts:{ Opts.cntr_default with Opts.writeback = false } () in
  let fd = ok (Kernel.open_ w.k w.init "/mnt/f" [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644) in
  for i = 0 to 15 do
    ignore (ok (Kernel.pwrite w.k w.init fd ~off:(i * 4096) (String.make 4096 'w')))
  done;
  ok (Kernel.close w.k w.init fd);
  check_b "one WRITE per call" true (kind_count w "write" >= 16)

let test_server_lookup_tax_counted () =
  let w = boot () in
  for i = 0 to 9 do
    write_file w (Printf.sprintf "/back/s%d" i) "x"
  done;
  let before = Server.lookups_performed w.session.Session.server in
  for i = 0 to 9 do
    ignore (ok (Kernel.stat w.k w.init (Printf.sprintf "/mnt/s%d" i)))
  done;
  check_b "server-side open()+stat() per cold lookup" true
    (Server.lookups_performed w.session.Session.server - before >= 10)

let () =
  Alcotest.run "fuse"
    [
      ( "connection",
        [
          Alcotest.test_case "requests by kind" `Quick test_requests_counted_by_kind;
          Alcotest.test_case "handshake gate" `Quick test_not_serving_before_handshake;
          Alcotest.test_case "batching amortizes" `Quick test_batching_amortizes_context_switches;
          Alcotest.test_case "background mode free" `Quick test_background_mode_free;
          Alcotest.test_case "splice accounting" `Quick test_splice_accounting;
          Alcotest.test_case "splice disabled" `Quick test_no_splice_when_disabled;
        ] );
      ( "forgets",
        [
          Alcotest.test_case "batched" `Quick test_forget_batching;
          Alcotest.test_case "unbatched" `Quick test_forget_unbatched;
        ] );
      ( "caches",
        [
          Alcotest.test_case "entry cache" `Quick test_entry_cache_avoids_lookups;
          Alcotest.test_case "entry cache disabled" `Quick test_entry_cache_disabled;
          Alcotest.test_case "write coalescing" `Quick test_write_coalescing;
          Alcotest.test_case "write-through" `Quick test_write_through_no_coalescing;
          Alcotest.test_case "server lookup tax" `Quick test_server_lookup_tax_counted;
        ] );
    ]
