(* Property tests for the OS substrate: path-walk vs lexical normalization,
   mount stacking, pipe FIFO behavior, and byte-stream preservation through
   the socket-proxy pump under random chunking. *)

open Repro_util
open Repro_vfs
open Repro_os

let ok = Errno.ok_exn

let boot () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"root" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  (k, Kernel.init_proc k)

(* --- walk vs normalize --------------------------------------------------------- *)

(* In a symlink-free tree, a *successful* kernel walk must agree with
   lexical normalization.  (The converse does not hold: POSIX walking
   fails on "/a/missing/../b" while lexical collapsing succeeds — the
   physical-vs-lexical distinction.) *)
let prop_walk_matches_normalize =
  let gen =
    (* random path expressions over a fixed tree /a/b/c with files f in
       each directory, sprinkled with ".", ".." and junk components *)
    QCheck.Gen.(
      list_size (int_range 1 10)
        (oneofl [ "a"; "b"; "c"; "f"; "."; ".."; "zz" ]))
  in
  QCheck.Test.make ~name:"kernel walk = lexical normalize (no symlinks)" ~count:300
    (QCheck.make ~print:(fun l -> "/" ^ String.concat "/" l) gen)
    (fun comps ->
      let k, init = boot () in
      ok (Kernel.mkdir k init "/a" ~mode:0o755);
      ok (Kernel.mkdir k init "/a/b" ~mode:0o755);
      ok (Kernel.mkdir k init "/a/b/c" ~mode:0o755);
      List.iter
        (fun d ->
          let fd = ok (Kernel.open_ k init (d ^ "/f") [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644) in
          ignore (ok (Kernel.write k init fd d));
          ok (Kernel.close k init fd))
        [ "/a"; "/a/b"; "/a/b/c" ];
      let path = "/" ^ String.concat "/" comps in
      let via_kernel = Kernel.stat k init path in
      let via_lexical = Kernel.stat k init (Pathx.normalize path) in
      match (via_kernel, via_lexical) with
      | Ok a, Ok b -> a.Types.st_ino = b.Types.st_ino
      | Ok _, Error _ -> false (* kernel success must be lexically reachable *)
      | Error _, _ -> true)

(* --- mount stacking -------------------------------------------------------------- *)

(* Stack N filesystems on the same mountpoint: reads always hit the newest;
   unmounting LIFO restores each previous layer in turn. *)
let prop_mount_stacking =
  QCheck.Test.make ~name:"mount stack is LIFO" ~count:50
    QCheck.(int_range 1 6)
    (fun depth ->
      let k, init = boot () in
      ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
      let clock = k.Kernel.clock and cost = k.Kernel.cost in
      let write_probe proc i =
        let fd = ok (Kernel.open_ k proc "/mnt/probe" [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] ~mode:0o644) in
        ignore (ok (Kernel.write k proc fd (string_of_int i)));
        ok (Kernel.close k proc fd)
      in
      write_probe init (-1);
      for i = 0 to depth - 1 do
        let fs = Nativefs.create ~name:(Printf.sprintf "layer%d" i) ~clock ~cost Store.Ram () in
        ignore (ok (Kernel.mount_at k init ~fs:(Nativefs.ops fs) "/mnt"));
        write_probe init i
      done;
      let read_probe () = ok (Kernel.read_whole k init "/mnt/probe") in
      let rec unwind i acc =
        let acc = acc && read_probe () = string_of_int i in
        if i < 0 then acc
        else begin
          ok (Kernel.umount k init "/mnt");
          unwind (i - 1) acc
        end
      in
      unwind (depth - 1) true)

(* --- pipes ------------------------------------------------------------------------- *)

(* Random interleavings of writes and reads preserve the byte stream. *)
let prop_pipe_fifo =
  QCheck.Test.make ~name:"pipe preserves the byte stream" ~count:200
    QCheck.(small_list (pair bool (int_range 1 200)))
    (fun script ->
      let p = Pipe.create ~capacity:512 () in
      let written = Buffer.create 64 and read = Buffer.create 64 in
      let counter = ref 0 in
      List.iter
        (fun (is_write, n) ->
          if is_write then begin
            let data = String.init n (fun i -> Char.chr (65 + ((!counter + i) mod 26))) in
            match Pipe.write p data with
            | Ok m ->
                Buffer.add_string written (String.sub data 0 m);
                counter := !counter + m
            | Error _ -> ()
          end
          else
            match Pipe.read p ~len:n with
            | Ok s -> Buffer.add_string read s
            | Error _ -> ())
        script;
      (* drain *)
      let rec drain () =
        match Pipe.read p ~len:512 with
        | Ok s when s <> "" ->
            Buffer.add_string read s;
            drain ()
        | _ -> ()
      in
      drain ();
      Buffer.contents written = Buffer.contents read)

(* --- socket proxy under random chunking ----------------------------------------------- *)

let prop_proxy_stream_preserved =
  QCheck.Test.make ~name:"socket pair preserves stream under chunking" ~count:100
    QCheck.(small_list (int_range 1 500))
    (fun chunks ->
      let k, init = boot () in
      ok (Kernel.mkdir k init "/run" ~mode:0o755);
      let lfd = ok (Kernel.socket_listen k init "/run/s") in
      let cfd = ok (Kernel.socket_connect k init "/run/s") in
      let sfd = ok (Kernel.socket_accept k init lfd) in
      let sent = Buffer.create 64 and received = Buffer.create 64 in
      List.iter
        (fun n ->
          let data = String.init n (fun i -> Char.chr (97 + (i mod 26))) in
          (match Kernel.write k init cfd data with
          | Ok m -> Buffer.add_string sent (String.sub data 0 m)
          | Error _ -> ());
          (* receiver drains opportunistically, with odd read sizes *)
          match Kernel.read k init sfd ~len:((n * 2) + 3) with
          | Ok s -> Buffer.add_string received s
          | Error _ -> ())
        chunks;
      let rec drain () =
        match Kernel.read k init sfd ~len:4096 with
        | Ok s when s <> "" ->
            Buffer.add_string received s;
            drain ()
        | _ -> ()
      in
      drain ();
      Buffer.contents sent = Buffer.contents received)

(* --- fork/exec isolation -------------------------------------------------------------- *)

let prop_umask_respected =
  QCheck.Test.make ~name:"umask always masks creation modes" ~count:100
    QCheck.(pair (int_bound 0o777) (int_bound 0o777))
    (fun (umask, mode) ->
      let k, init = boot () in
      init.Proc.umask <- umask;
      let fd = ok (Kernel.open_ k init "/f" [ Types.O_CREAT; Types.O_WRONLY ] ~mode) in
      ok (Kernel.close k init fd);
      let st = ok (Kernel.stat k init "/f") in
      st.Types.st_mode = mode land lnot umask)

let () =
  Alcotest.run "os-props"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_walk_matches_normalize;
            prop_mount_stacking;
            prop_pipe_fifo;
            prop_proxy_stream_preserved;
            prop_umask_respected;
          ] );
    ]
