(* Unit and property tests for the util substrate: paths, RNG, clock,
   stats, cost model. *)

open Repro_util

let check_s = Alcotest.(check string)
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* --- Pathx -------------------------------------------------------------- *)

let test_split () =
  Alcotest.(check (list string)) "abs" [ "a"; "b" ] (Pathx.split "/a/b");
  Alcotest.(check (list string)) "dots" [ "a"; "b" ] (Pathx.split "/a/./b/");
  Alcotest.(check (list string)) "empty" [] (Pathx.split "/");
  Alcotest.(check (list string)) "dotdot kept" [ "a"; ".."; "b" ] (Pathx.split "a/../b")

let test_normalize () =
  check_s "collapse" "/a/b" (Pathx.normalize "//a//./b/");
  check_s "dotdot" "/b" (Pathx.normalize "/a/../b");
  check_s "root dotdot" "/" (Pathx.normalize "/..");
  check_s "rel" "b" (Pathx.normalize "a/../b");
  check_s "rel up" "../b" (Pathx.normalize "../b");
  check_s "empty rel" "." (Pathx.normalize "a/..")

let test_join () =
  check_s "concat" "/a/b" (Pathx.concat "/a" "b");
  check_s "concat abs" "/x" (Pathx.concat "/a" "/x");
  check_s "concat root" "/b" (Pathx.concat "/" "b");
  check_s "basename" "c" (Pathx.basename "/a/b/c");
  check_s "basename root" "/" (Pathx.basename "/");
  check_s "dirname" "/a/b" (Pathx.dirname "/a/b/c");
  check_s "dirname top" "/" (Pathx.dirname "/a")

let test_is_under () =
  check_b "under" true (Pathx.is_under ~dir:"/a" "/a/b/c");
  check_b "self" true (Pathx.is_under ~dir:"/a" "/a");
  check_b "not under" false (Pathx.is_under ~dir:"/a/b" "/a/c");
  Alcotest.(check (option string)) "strip" (Some "b/c") (Pathx.strip_prefix ~dir:"/a" "/a/b/c");
  Alcotest.(check (option string)) "strip self" (Some "") (Pathx.strip_prefix ~dir:"/a" "/a");
  Alcotest.(check (option string)) "strip miss" None (Pathx.strip_prefix ~dir:"/b" "/a")

let prop_normalize_idempotent =
  QCheck.Test.make ~name:"normalize idempotent" ~count:500
    QCheck.(string_gen_of_size (Gen.int_range 0 30) (Gen.oneofl [ 'a'; 'b'; '/'; '.' ]))
    (fun s ->
      let n = Pathx.normalize s in
      Pathx.normalize n = n)

(* --- Clock & Cost ------------------------------------------------------- *)

let test_clock () =
  let c = Clock.create () in
  check_b "zero" true (Clock.now_ns c = 0L);
  Clock.consume_int c 1500;
  check_b "advanced" true (Clock.now_ns c = 1500L);
  let (), d = Clock.time c (fun () -> Clock.consume_int c 42) in
  check_b "timed" true (d = 42L);
  Clock.consume c (-5L);
  check_b "no negative" true (Clock.now_ns c = 1542L)

let test_cost () =
  let c = Cost.default in
  check_i "kib round up" 1 (Cost.kib_of_bytes 1);
  check_i "kib exact" 4 (Cost.kib_of_bytes 4096);
  check_b "disk read has latency" true
    (Cost.disk_read_cost c 4096 > c.Cost.disk.Cost.read_ns_per_kib * 4);
  check_i "copy" (c.Cost.copy_ns_per_kib * 2) (Cost.copy_cost c 2048)

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_b "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done;
  let c = Rng.create ~seed:43 in
  check_b "different seed" true (Rng.next_int64 a <> Rng.next_int64 c)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_range =
  QCheck.Test.make ~name:"rng int_range inclusive" ~count:500
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Rng.create ~seed in
      let v = Rng.int_range rng lo (lo + span) in
      v >= lo && v <= lo + span)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:7 in
  let arr = Array.init 50 Fun.id in
  let copy = Array.copy arr in
  Rng.shuffle rng copy;
  Array.sort compare copy;
  Alcotest.(check (array int)) "permutation" arr copy

(* --- Stats -------------------------------------------------------------- *)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Stats.mean []);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-6)) "stddev" 1.0 (Stats.stddev [ 1.; 2.; 3. ]);
  let h = Stats.histogram ~lo:0. ~hi:10. ~buckets:5 [ 0.5; 1.5; 2.5; 9.9; 15.0 ] in
  check_i "bucket0" 2 h.(0);
  check_i "bucket1" 1 h.(1);
  check_i "last bucket catches overflow" 2 h.(4)

let test_percentile_edges () =
  (* single element: any valid p returns it *)
  check_i "single p=0" 7 (Stats.percentile 0. [ 7 ]);
  check_i "single p=0.5" 7 (Stats.percentile 0.5 [ 7 ]);
  check_i "single p=1" 7 (Stats.percentile 1. [ 7 ]);
  (* boundaries select min and max *)
  check_i "p=0 is min" 1 (Stats.percentile 0. [ 3; 1; 2 ]);
  check_i "p=1 is max" 3 (Stats.percentile 1. [ 3; 1; 2 ]);
  check_i "median of evens" 2 (Stats.percentile 0.5 [ 4; 2; 3; 1 ]);
  (* invalid inputs raise instead of indexing out of bounds *)
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "empty list" (fun () -> Stats.percentile 0.5 []);
  raises "p negative" (fun () -> Stats.percentile (-0.1) [ 1 ]);
  raises "p above 1" (fun () -> Stats.percentile 1.1 [ 1 ]);
  raises "p nan" (fun () -> Stats.percentile Float.nan [ 1 ])

let test_histogram_edges () =
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "no buckets" (fun () -> Stats.histogram ~lo:0. ~hi:1. ~buckets:0 [ 0.5 ]);
  raises "hi = lo" (fun () -> Stats.histogram ~lo:1. ~hi:1. ~buckets:4 [ 1. ]);
  raises "hi < lo" (fun () -> Stats.histogram ~lo:2. ~hi:1. ~buckets:4 [ 1. ]);
  (* empty input is fine: all buckets zero *)
  let h = Stats.histogram ~lo:0. ~hi:10. ~buckets:3 [] in
  check_i "empty total" 0 (Array.fold_left ( + ) 0 h);
  (* below-lo clamps to first bucket, at/above-hi to last; NaN skipped *)
  let h = Stats.histogram ~lo:0. ~hi:10. ~buckets:2 [ -5.; 0.; 10.; 99.; Float.nan ] in
  check_i "underflow+lo in first" 2 h.(0);
  check_i "hi+overflow in last" 2 h.(1);
  (* one value, one bucket *)
  let h = Stats.histogram ~lo:0. ~hi:1. ~buckets:1 [ 0.5 ] in
  check_i "single bucket" 1 h.(0)

let test_size () =
  check_s "b" "512B" (Size.to_string 512);
  check_s "kib" "2.0KiB" (Size.to_string 2048);
  check_s "mib" "1.5MiB" (Size.to_string (Size.mib 1 + Size.kib 512));
  check_i "gib" (1 lsl 30) (Size.gib 1)

(* --- Errno -------------------------------------------------------------- *)

let test_errno () =
  check_s "to_string" "ENOENT" (Errno.to_string Errno.ENOENT);
  check_b "message nonempty" true (String.length (Errno.message Errno.EACCES) > 0);
  check_i "ok_exn" 5 (Errno.ok_exn (Ok 5));
  Alcotest.check_raises "raises" (Errno.Error Errno.EIO) (fun () ->
      ignore (Errno.ok_exn (Error Errno.EIO)))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "util"
    [
      ( "pathx",
        [
          Alcotest.test_case "split" `Quick test_split;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "join/base/dir" `Quick test_join;
          Alcotest.test_case "is_under/strip" `Quick test_is_under;
        ] );
      qsuite "pathx-props" [ prop_normalize_idempotent ];
      ( "clock-cost",
        [
          Alcotest.test_case "clock" `Quick test_clock;
          Alcotest.test_case "cost" `Quick test_cost;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      qsuite "rng-props" [ prop_rng_int_bounds; prop_rng_range ];
      ( "stats-size-errno",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "errno" `Quick test_errno;
        ] );
    ]
