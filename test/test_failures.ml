(* Failure injection: what happens when parts of the CNTR machinery die or
   are misused — the server disappears mid-session, the target container
   stops, mounts are busy, detach is repeated.  The system must fail with
   meaningful errnos and never corrupt the application container. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_runtime
open Repro_cntr

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let ok = Errno.ok_exn

let errno = Alcotest.testable Errno.pp ( = )

let check_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> Alcotest.check errno "errno" expected e

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let boot_with_app () =
  let world = Testbed.create () in
  let app =
    ok (World.run_container world ~engine:(World.docker world) ~name:"web" ~image_ref:"nginx:latest" ())
  in
  (world, app)

(* --- server death ----------------------------------------------------------- *)

let test_server_death_gives_enotconn () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let code, _ = Attach.run session "which gdb" in
  check_i "alive before" 0 code;
  (* the CntrFS server crashes *)
  Attach.crash_server session;
  let code, out = Attach.run session "cat /etc/passwd" in
  check_b "command fails, not hangs" true (code <> 0);
  check_b "reports an error" true (String.length out > 0);
  (* the app container itself keeps working on its own fs *)
  let content = ok (Kernel.read_whole world.World.kernel _app.Container.ct_main "/etc/nginx.conf") in
  check_b "app unaffected" true (contains ~needle:"listen" content)

let test_crash_then_recover_resumes () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let code, _ = Attach.run session "cat /var/lib/cntr/etc/nginx.conf" in
  check_i "alive before" 0 code;
  Attach.crash_server session;
  let code, _ = Attach.run session "cat /var/lib/cntr/etc/nginx.conf" in
  check_b "fails while down" true (code <> 0);
  Attach.recover session;
  let code, out = Attach.run session "cat /var/lib/cntr/etc/nginx.conf" in
  check_i "works after recover" 0 code;
  check_b "content back" true (contains ~needle:"listen" out);
  let m = Repro_obs.Obs.metrics (Attach.obs session) in
  check_b "recovery counted" true
    (Repro_obs.Metrics.counter_value m "session.recoveries" >= 1);
  Attach.detach session

let test_hang_server_bounded_by_deadline () =
  let world, _app = boot_with_app () in
  (* a deadline but no fault plan: the supervised path arms timeouts *)
  let config =
    {
      Attach.Config.default with
      Attach.Config.retry = Some Repro_fault.Fault.retry_default;
    }
  in
  let session = ok (Testbed.attach world ~config "web") in
  let code, _ = Attach.run session "which gdb" in
  check_i "alive before" 0 code;
  (* the next request sits far past the deadline; the session must not hang *)
  Attach.hang_server session ~ns:10_000_000_000;
  let before = Clock.now_ns world.World.clock in
  ignore (Attach.run session "stat /etc/passwd");
  let waited = Int64.sub (Clock.now_ns world.World.clock) before in
  check_b "bounded wait" true (waited < 10_000_000_000L);
  (* and afterwards the session still works *)
  let code, _ = Attach.run session "which gdb" in
  check_i "alive after" 0 code;
  Attach.detach session

let test_uninitialized_conn_refuses () =
  let clock = Clock.create () in
  let conn = Conn.create ~clock ~cost:Cost.default () in
  (* no handler installed at all *)
  (match Conn.call conn Protocol.root_ctx Protocol.Statfs with
  | Protocol.R_err Errno.ENOTCONN -> ()
  | _ -> Alcotest.fail "expected ENOTCONN without a handler")

(* --- stopped / missing containers ------------------------------------------- *)

let test_attach_to_stopped_container () =
  let world, app = boot_with_app () in
  Container.stop ~kernel:world.World.kernel app;
  (* a stopped container resolves to no live process *)
  check_b "attach fails" true (Result.is_error (Testbed.attach world "web"))

let test_exec_in_dead_process_namespace () =
  let world, app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  Container.stop ~kernel:world.World.kernel app;
  (* the session's shell still exists (its own process), and its namespace
     keeps the filesystems alive — commands still run *)
  let code, _ = Attach.run session "which gdb" in
  check_i "session survives app exit" 0 code;
  Attach.detach session

(* --- teardown misuse ----------------------------------------------------------- *)

let test_double_detach_harmless () =
  let world, app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  Attach.detach session;
  check_b "marked detached" true session.Attach.sn_detached;
  (* the second call is a no-op, not a crash on dead processes *)
  Attach.detach session;
  Attach.detach session;
  (* still consistent *)
  check_b "app alive" true (Container.is_running app);
  check_b "shell dead" false session.Attach.sn_shell_proc.Proc.alive;
  ignore world

let test_with_session_detaches_on_exception () =
  let world, app = boot_with_app () in
  let captured = ref None in
  (match
     Testbed.with_session world "web" (fun session ->
         captured := Some session;
         let code, _ = Attach.run session "which gdb" in
         check_i "runs inside bracket" 0 code;
         raise Exit)
   with
  | exception Exit -> ()
  | _ -> Alcotest.fail "expected Exit to propagate");
  (match !captured with
  | Some session -> check_b "detached by bracket" true session.Attach.sn_detached
  | None -> Alcotest.fail "bracket body never ran");
  check_b "app alive" true (Container.is_running app)

let test_detach_with_open_fds () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let k = world.World.kernel in
  (* leave a file open in the nested namespace, then detach *)
  let _fd =
    ok (Kernel.open_ k session.Attach.sn_shell_proc "/var/lib/cntr/etc/nginx.conf" [ Types.O_RDONLY ] ~mode:0)
  in
  Attach.detach session;
  (* exit closed the fd; reading through the app container still works *)
  let content = ok (Kernel.read_whole k _app.Container.ct_main "/etc/nginx.conf") in
  check_b "file intact" true (contains ~needle:"listen" content)

(* --- busy mounts ------------------------------------------------------------------ *)

let test_umount_busy_with_submounts () =
  let world = Testbed.create () in
  let k = world.World.kernel and init = world.World.init in
  let clock = world.World.clock and cost = world.World.cost in
  ok (Kernel.mkdir k init "/m1" ~mode:0o755);
  let fs1 = Nativefs.create ~name:"fs1" ~clock ~cost Store.Ram () in
  ignore (ok (Kernel.mount_at k init ~fs:(Nativefs.ops fs1) "/m1"));
  ok (Kernel.mkdir k init "/m1/sub" ~mode:0o755);
  let fs2 = Nativefs.create ~name:"fs2" ~clock ~cost Store.Ram () in
  ignore (ok (Kernel.mount_at k init ~fs:(Nativefs.ops fs2) "/m1/sub"));
  check_err Errno.EBUSY (Kernel.umount k init "/m1");
  ok (Kernel.umount k init "/m1/sub");
  ok (Kernel.umount k init "/m1")

let test_umount_root_refused () =
  let world = Testbed.create () in
  check_err Errno.EBUSY (Kernel.umount world.World.kernel world.World.init "/")

(* --- permission failures ------------------------------------------------------------ *)

let test_unprivileged_cannot_mount_or_unshare () =
  let world = Testbed.create () in
  let k = world.World.kernel in
  let user = Kernel.fork k world.World.init in
  user.Proc.cred.Proc.uid <- 1000;
  user.Proc.cred.Proc.caps <- Caps.Set.empty;
  let fs = Nativefs.create ~name:"x" ~clock:world.World.clock ~cost:world.World.cost Store.Ram () in
  check_err Errno.EPERM (Kernel.mount_at k user ~fs:(Nativefs.ops fs) "/tmp");
  check_err Errno.EPERM (Kernel.unshare k user [ Namespace.Mnt ]);
  check_err Errno.EPERM (Kernel.chroot k user "/tmp");
  check_err Errno.EPERM (Kernel.sethostname k user "nope")

let test_engine_conventions () =
  (* each engine applies its own id / cgroup / LSM conventions *)
  let world = Testbed.create () in
  let run engine_name =
    let engine = World.engine world engine_name in
    ok (World.run_container world ~engine ~name:("c-" ^ engine_name) ~image_ref:"redis:latest" ())
  in
  let d = run "docker" in
  check_i "docker id is 64-hex" 64 (String.length d.Container.ct_id);
  check_b "docker cgroup" true (contains ~needle:"/docker/" d.Container.ct_main.Proc.cgroup);
  check_b "docker lsm" true (d.Container.ct_main.Proc.lsm_profile = Some "docker-default");
  let l = run "lxc" in
  check_b "lxc cgroup" true (contains ~needle:"/lxc/" l.Container.ct_main.Proc.cgroup);
  let r = run "rkt" in
  check_b "rkt machine scope" true
    (contains ~needle:"machine-rkt-" r.Container.ct_main.Proc.cgroup);
  check_b "rkt uuid has dashes" true (String.contains r.Container.ct_id '-');
  let n = run "systemd-nspawn" in
  check_b "nspawn service scope" true
    (contains ~needle:"systemd-nspawn@" n.Container.ct_main.Proc.cgroup);
  check_b "nspawn unconfined" true (n.Container.ct_main.Proc.lsm_profile = None)

let () =
  Alcotest.run "failures"
    [
      ( "server-death",
        [
          Alcotest.test_case "ENOTCONN after crash" `Quick test_server_death_gives_enotconn;
          Alcotest.test_case "crash then recover" `Quick test_crash_then_recover_resumes;
          Alcotest.test_case "hang bounded by deadline" `Quick test_hang_server_bounded_by_deadline;
          Alcotest.test_case "uninitialized conn" `Quick test_uninitialized_conn_refuses;
        ] );
      ( "container-lifecycle",
        [
          Alcotest.test_case "attach to stopped" `Quick test_attach_to_stopped_container;
          Alcotest.test_case "session outlives app" `Quick test_exec_in_dead_process_namespace;
          Alcotest.test_case "double detach" `Quick test_double_detach_harmless;
          Alcotest.test_case "with_session detaches on exception" `Quick
            test_with_session_detaches_on_exception;
          Alcotest.test_case "detach with open fds" `Quick test_detach_with_open_fds;
        ] );
      ( "mounts",
        [
          Alcotest.test_case "umount busy" `Quick test_umount_busy_with_submounts;
          Alcotest.test_case "umount root refused" `Quick test_umount_root_refused;
        ] );
      ( "permissions",
        [
          Alcotest.test_case "unprivileged denied" `Quick test_unprivileged_cannot_mount_or_unshare;
          Alcotest.test_case "engine conventions" `Quick test_engine_conventions;
        ] );
    ]
