(* Tests for the content-addressed dedup store: qcheck properties of the
   gear chunker (determinism, concat round-trip, bounded invalidation
   under single-byte edits, the analytic uniform-fill fast path) and unit
   coverage of the refcounted chunk index and its GC. *)

open Repro_store

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* deterministic generator driver: qcheck inside alcotest with a pinned
   random state, so runs are reproducible byte-for-byte *)
let qcheck ?(seed = 0xC41C) test () =
  QCheck.Test.check_exn ~rand:(Random.State.make [| seed |]) test

(* small params so properties exercise many cuts on short strings *)
let small = { Chunker.min_size = 32; mask_bits = 5; max_size = 256 }

let gen_bytes =
  QCheck.Gen.(
    map Bytes.unsafe_to_string (bytes_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 4096)))

let arb_bytes = QCheck.make ~print:(fun s -> Printf.sprintf "%d bytes" (String.length s)) gen_bytes

(* chunking is a pure function of the bytes *)
let prop_deterministic =
  QCheck.Test.make ~name:"chunker deterministic" ~count:200 arb_bytes (fun s ->
      Chunker.chunks_of_string ~params:small s = Chunker.chunks_of_string ~params:small s
      && Chunker.cut_points ~params:small s = Chunker.cut_points ~params:small s)

(* split obeys the size bounds and concatenates back to the input *)
let prop_split_roundtrip =
  QCheck.Test.make ~name:"split concatenates back to the input" ~count:200 arb_bytes (fun s ->
      let pieces = Chunker.split ~params:small s in
      String.concat "" pieces = s
      && List.for_all (fun p -> String.length p <= small.Chunker.max_size) pieces
      && List.for_all
           (fun p -> String.length p >= 1)
           pieces)

(* chunk descriptors agree with the split pieces *)
let prop_chunks_match_split =
  QCheck.Test.make ~name:"chunk digests match split pieces" ~count:100 arb_bytes (fun s ->
      let pieces = Chunker.split ~params:small s in
      let chunks = Chunker.chunks_of_string ~params:small s in
      List.length pieces = List.length chunks
      && List.for_all2
           (fun p c ->
             c.Chunker.size = String.length p && c.Chunker.digest = Digest.string p)
           pieces chunks
      && Chunker.manifest_bytes chunks = String.length s)

(* a single-byte edit invalidates only a bounded window of chunks: the
   suffixes of the two cut sequences coincide once past the edit by a
   resynchronization window (max_size + the rolling window) *)
let prop_bounded_invalidation =
  QCheck.Test.make ~name:"single-byte edit invalidates bounded chunks" ~count:200
    QCheck.(pair arb_bytes (pair (int_bound 100_000) (int_range 1 255)))
    (fun (s, (pos_seed, delta)) ->
      QCheck.assume (String.length s >= 1024);
      let pos = pos_seed mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b pos (Char.chr ((Char.code (Bytes.get b pos) + delta) land 0xff));
      let s' = Bytes.to_string b in
      let cuts = Chunker.cut_points ~params:small s in
      let cuts' = Chunker.cut_points ~params:small s' in
      (* prefix stability: cuts strictly before the edited byte are shared *)
      let before = List.filter (fun c -> c <= pos) cuts in
      let before' = List.filter (fun c -> c <= pos) cuts' in
      before = before'
      &&
      (* resynchronization: past the edit by one forced-cut distance plus
         the rolling window, the cut streams coincide again *)
      let horizon = pos + (2 * small.Chunker.max_size) + small.Chunker.mask_bits in
      let after = List.filter (fun c -> c > horizon) cuts in
      let after' = List.filter (fun c -> c > horizon) cuts' in
      after = after')

(* the analytic uniform-fill path equals chunking the rendered string *)
let prop_uniform_fast_path =
  QCheck.Test.make ~name:"analytic uniform chunking = rendered chunking" ~count:60
    QCheck.(pair arb_bytes (pair (int_bound 8192) printable_char))
    (fun (prefix, (extra, fill)) ->
      let total = String.length prefix + extra in
      let rendered =
        prefix ^ String.make (total - String.length prefix) fill
      in
      Chunker.chunks_prefixed_uniform ~params:small ~prefix ~fill ~total ()
      = Chunker.chunks_of_string ~params:small rendered)

(* concatenation property the registry relies on: chunks of a shared
   prefix survive as a prefix of the chunk list of any extension *)
let prop_prefix_stable =
  QCheck.Test.make ~name:"cut points are prefix-stable" ~count:100
    QCheck.(pair arb_bytes arb_bytes)
    (fun (a, b) ->
      let cuts_a = Chunker.cut_points ~params:small a in
      let cuts_ab = Chunker.cut_points ~params:small (a ^ b) in
      let len_a = String.length a in
      let full_a = List.filter (fun c -> c < len_a) cuts_a in
      let full_ab = List.filter (fun c -> c < len_a) cuts_ab in
      full_a = full_ab)

(* --- store unit tests -------------------------------------------------------- *)

let chunks s = Chunker.chunks_of_string ~params:small s

let test_store_refcount_and_dedup () =
  let metrics = Repro_obs.Metrics.create () in
  let store = Store.create ~metrics () in
  let payload =
    Bytes.to_string (Repro_util.Rng.bytes (Repro_util.Rng.create ~seed:7) 2048)
  in
  let m = chunks payload in
  Store.add store ~key:"layer-a" m;
  Store.add store ~key:"layer-b" m;
  (* same bytes under two keys: logical doubles, physical does not *)
  check_i "logical counts both" (2 * String.length payload) (Store.logical_bytes store);
  check_i "physical counts once" (String.length payload) (Store.physical_bytes store);
  check_b "dedup ratio 2x" true (abs_float (Store.dedup_ratio store -. 2.0) < 1e-9);
  check_i "metrics logical" (2 * String.length payload)
    (Repro_obs.Metrics.counter_value metrics "store.bytes.logical");
  check_b "metrics gauge" true
    (abs_float (Repro_obs.Metrics.gauge_value metrics "store.dedup_ratio" -. 2.0) < 1e-9);
  (* missing: everything present already *)
  check_i "nothing missing" 0 (List.length (Store.missing store m))

let test_store_gc_collects_dead_chunks () =
  let store = Store.create () in
  let a = chunks (String.make 1500 'a') in
  let b = chunks (String.make 1500 'b') in
  Store.add store ~key:"a" a;
  Store.add store ~key:"b" b;
  let physical_before = Store.physical_bytes store in
  Store.release store "a";
  (* dead chunks no longer resolve, but their bytes linger until the sweep *)
  check_b "released chunk dead" false (Store.chunk_present store (List.hd a).Chunker.digest);
  check_i "physical unchanged pre-gc" physical_before (Store.physical_bytes store);
  let collected = Store.gc store in
  check_b "physical dropped post-gc" true (Store.physical_bytes store < physical_before);
  check_b "collected some" true (collected > 0);
  check_b "a's chunks gone" false (Store.chunk_present store (List.hd a).Chunker.digest);
  check_b "b's chunks survive" true (Store.chunk_present store (List.hd b).Chunker.digest);
  check_i "gc counter" collected (Store.gc_collected store)

let test_store_reset_is_not_gc () =
  let store = Store.create () in
  Store.add store ~key:"a" (chunks (String.make 600 'z'));
  Store.reset store;
  check_i "no blobs" 0 (Store.blobs store);
  check_i "no physical bytes" 0 (Store.physical_bytes store);
  check_i "reset does not count as gc" 0 (Store.gc_collected store)

let () =
  Alcotest.run "store"
    [
      ( "chunker",
        [
          Alcotest.test_case "deterministic" `Quick (qcheck prop_deterministic);
          Alcotest.test_case "split round-trip" `Quick (qcheck prop_split_roundtrip);
          Alcotest.test_case "chunks match split" `Quick (qcheck prop_chunks_match_split);
          Alcotest.test_case "bounded invalidation" `Quick (qcheck prop_bounded_invalidation);
          Alcotest.test_case "analytic uniform path" `Quick (qcheck prop_uniform_fast_path);
          Alcotest.test_case "prefix stable" `Quick (qcheck prop_prefix_stable);
        ] );
      ( "store",
        [
          Alcotest.test_case "refcount and dedup" `Quick test_store_refcount_and_dedup;
          Alcotest.test_case "gc collects dead chunks" `Quick test_store_gc_collects_dead_chunks;
          Alcotest.test_case "reset is not gc" `Quick test_store_reset_is_not_gc;
        ] );
    ]
