(* Tests for the Dockerfile-style builder: layered assembly, RUN diffs with
   whiteouts, and the full loop — build a custom image, run it, slim it,
   attach to it with CNTR. *)

open Repro_util
open Repro_os
open Repro_image
open Repro_runtime
open Repro_cntr

let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let ok = Errno.ok_exn

let ok' = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected errno %s" (Errno.to_string e)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let boot () = Testbed.create ()

let build world name instrs =
  Builder.build ~kernel:world.World.kernel ~registry:world.World.registry ~name instrs

let test_scratch_build () =
  let world = boot () in
  let image =
    ok'
      (build world "minimal"
         [
           Builder.From "scratch";
           Builder.Mkdir "/app";
           Builder.Copy { dst = "/app/config"; mode = 0o644; content = Content.Literal "key=value" };
           Builder.Env ("MODE", "prod");
           Builder.Entrypoint [ "/app/run" ];
         ])
  in
  check_s "name" "minimal:latest" (Image.ref_ image);
  check_b "has config" true (List.mem "/app/config" (Image.effective_paths image));
  check_b "env" true (List.mem_assoc "MODE" image.Image.config.Image.env);
  Alcotest.(check (list string)) "entrypoint" [ "/app/run" ] image.Image.config.Image.entrypoint

let test_from_base () =
  let world = boot () in
  let image =
    ok'
      (build world "derived"
         [
           Builder.From "redis:latest";
           Builder.Copy { dst = "/etc/extra.conf"; mode = 0o644; content = Content.Literal "x" };
         ])
  in
  (* the base's content plus the new file *)
  check_b "base binary present" true (List.mem "/usr/sbin/redis" (Image.effective_paths image));
  check_b "new file present" true (List.mem "/etc/extra.conf" (Image.effective_paths image));
  check_b "base config inherited" true (image.Image.config.Image.entrypoint <> [])

let test_run_captures_diff () =
  let world = boot () in
  let image =
    ok'
      (build world "ran"
         [
           Builder.From "redis:latest";
           Builder.Run "echo generated-at-build > /etc/build-stamp";
           Builder.Run "rm /etc/os-release";
         ])
  in
  let paths = Image.effective_paths image in
  check_b "RUN created a file" true (List.mem "/etc/build-stamp" paths);
  check_b "RUN rm produced a whiteout" false (List.mem "/etc/os-release" paths);
  (* materialize and verify content *)
  let c = ok (Engine.run (World.docker world) ~name:"ran-c" image) in
  let content = ok (Kernel.read_whole world.World.kernel c.Container.ct_main "/etc/build-stamp") in
  check_s "content" "generated-at-build\n" content;
  check_b "os-release gone" true
    (Kernel.stat world.World.kernel c.Container.ct_main "/etc/os-release" = Error Errno.ENOENT)

let test_failing_run_aborts () =
  let world = boot () in
  check_b "failing RUN" true
    (build world "bad" [ Builder.From "redis:latest"; Builder.Run "false" ] = Error Errno.EIO)

let test_misplaced_from () =
  let world = boot () in
  check_b "second FROM rejected" true
    (build world "bad2" [ Builder.From "redis:latest"; Builder.From "nginx:latest" ]
    = Error Errno.EINVAL)

let test_unknown_base () =
  let world = boot () in
  check_b "unknown base" true
    (build world "bad3" [ Builder.From "no-such:latest" ] = Error Errno.ENOENT)

(* the full loop: build a custom service image, run it, attach with cntr *)
let test_build_run_attach () =
  let world = boot () in
  Kernel.register_program world.World.kernel "myservice" (fun k p _args ->
      let fd =
        ok
          (Kernel.open_ k p "/var/run/service.pid"
             [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY ] ~mode:0o644)
      in
      ignore (ok (Kernel.write k p fd (string_of_int p.Proc.pid)));
      ok (Kernel.close k p fd);
      0);
  let image =
    ok'
      (build world "myservice"
         [
           Builder.From "redis:latest";
           Builder.Mkdir "/srv";
           Builder.Copy
             { dst = "/srv/myservice"; mode = 0o755; content = Content.Binary { prog = "myservice"; size = 4096 } };
           Builder.Run "echo configured > /srv/state";
           Builder.Entrypoint [ "/srv/myservice" ];
         ])
  in
  Registry.push world.World.registry image;
  let _c =
    ok (World.run_container world ~engine:(World.docker world) ~name:"svc" ~image_ref:"myservice:latest" ())
  in
  let session = ok (Testbed.attach world "svc") in
  let _code, out = Attach.run session "cat /var/lib/cntr/srv/state" in
  check_b "built state visible through cntr" true (contains ~needle:"configured" out);
  let _code, out = Attach.run session "cat /var/lib/cntr/var/run/service.pid" in
  check_b "service wrote its pid" true (String.length (String.trim out) > 0);
  check_i "report mentions requests" 0
    (if contains ~needle:"requests" (Attach.report session) then 0 else 1);
  Attach.detach session

let () =
  Alcotest.run "build"
    [
      ( "builder",
        [
          Alcotest.test_case "scratch build" `Quick test_scratch_build;
          Alcotest.test_case "from base" `Quick test_from_base;
          Alcotest.test_case "RUN diff + whiteout" `Quick test_run_captures_diff;
          Alcotest.test_case "failing RUN aborts" `Quick test_failing_run_aborts;
          Alcotest.test_case "misplaced FROM" `Quick test_misplaced_from;
          Alcotest.test_case "unknown base" `Quick test_unknown_base;
        ] );
      ( "integration",
        [ Alcotest.test_case "build, run, attach" `Quick test_build_run_attach ] );
    ]
