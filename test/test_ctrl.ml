(* The cntrd control plane: JSON / JSON-RPC codec round-trips (qcheck),
   malformed-input error replies, the session lifecycle over both
   transports, $/cancel of in-flight requests, admission-queue rejection
   and queueing under quota, the ctrl fault site with crash → recover,
   and RPC-layer detach idempotency (detach racing a crash-triggered
   recovery never sees ENOTCONN). *)

open Repro_util
open Repro_runtime
open Repro_ctrl
module Fault = Repro_fault.Fault
module Metrics = Repro_obs.Metrics
module Kernel = Repro_os.Kernel

let ok = Errno.ok_exn
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let ok' = function
  | Ok v -> v
  | Error (e : Rpc.rerror) -> Alcotest.failf "rpc error %d: %s" e.Rpc.e_code e.Rpc.e_message

let err_code = function
  | Ok _ -> Alcotest.fail "expected an rpc error"
  | Error (e : Rpc.rerror) -> e.Rpc.e_code

let boot () =
  let world = Repro_cntr.Testbed.create () in
  List.iter
    (fun (name, image) ->
      ignore
        (ok (World.run_container world ~engine:(World.docker world) ~name ~image_ref:image ())))
    [ ("web", "nginx:latest"); ("cache", "redis:latest"); ("db", "postgres:latest") ];
  world

let counter world name =
  Metrics.counter_value (Repro_obs.Obs.metrics world.World.kernel.Repro_os.Kernel.obs) name

let gauge world name =
  Metrics.gauge_value (Repro_obs.Obs.metrics world.World.kernel.Repro_os.Kernel.obs) name

(* --- codec: qcheck round-trips --------------------------------------------- *)

let gen_json =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let scalar =
          oneof
            [
              return Jsonx.Null;
              map (fun b -> Jsonx.Bool b) bool;
              map (fun i -> Jsonx.Int i) (int_range (-1000000) 1000000);
              map (fun f -> Jsonx.Float (float_of_int f /. 16.)) (int_range (-10000) 10000);
              map (fun s -> Jsonx.Str s) (string_size ~gen:printable (int_range 0 12));
            ]
        in
        if n <= 0 then scalar
        else
          frequency
            [
              (3, scalar);
              (1, map (fun l -> Jsonx.List l) (list_size (int_range 0 4) (self (n / 2))));
              ( 1,
                map
                  (fun l -> Jsonx.Obj l)
                  (list_size (int_range 0 4)
                     (pair (string_size ~gen:printable (int_range 1 8)) (self (n / 2)))) );
            ]))

let prop_json_roundtrip =
  QCheck.Test.make ~name:"jsonx print/parse round-trip" ~count:500
    (QCheck.make ~print:Jsonx.to_string gen_json)
    (fun v ->
      match Jsonx.parse (Jsonx.to_string v) with
      | Ok v' -> Jsonx.equal v v'
      | Error msg -> QCheck.Test.fail_reportf "parse failed: %s" msg)

let gen_request =
  QCheck.Gen.(
    map3
      (fun id meth params ->
        { Rpc.r_id = id; r_method = meth; r_params = params })
      (oneof
         [
           return None;
           map (fun n -> Some (Rpc.I n)) (int_range 0 100000);
           map (fun s -> Some (Rpc.S s)) (string_size ~gen:printable (int_range 1 10));
         ])
      (string_size ~gen:printable (int_range 1 16))
      gen_json)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"rpc request encode/decode round-trip" ~count:500
    (QCheck.make ~print:Rpc.encode_request gen_request)
    (fun r ->
      match Rpc.decode (Rpc.encode_request r) with
      | Ok (Rpc.Request r') ->
          r.Rpc.r_id = r'.Rpc.r_id
          && String.equal r.Rpc.r_method r'.Rpc.r_method
          && Jsonx.equal r.Rpc.r_params r'.Rpc.r_params
      | Ok (Rpc.Response _) -> false
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Rpc.e_message)

let gen_response =
  QCheck.Gen.(
    map2
      (fun id result -> { Rpc.p_id = id; p_result = result })
      (oneof [ return None; map (fun n -> Some (Rpc.I n)) (int_range 0 100000) ])
      (oneof
         [
           map (fun v -> Ok v) gen_json;
           map2
             (fun code msg -> Error (Rpc.error code msg))
             (int_range (-33000) (-32000))
             (string_size ~gen:printable (int_range 0 20));
         ]))

let prop_response_roundtrip =
  QCheck.Test.make ~name:"rpc response encode/decode round-trip" ~count:500
    (QCheck.make ~print:Rpc.encode_response gen_response)
    (fun p ->
      match Rpc.decode (Rpc.encode_response p) with
      | Ok (Rpc.Response p') -> (
          p.Rpc.p_id = p'.Rpc.p_id
          &&
          match (p.Rpc.p_result, p'.Rpc.p_result) with
          | Ok a, Ok b -> Jsonx.equal a b
          | Error a, Error b ->
              a.Rpc.e_code = b.Rpc.e_code && String.equal a.Rpc.e_message b.Rpc.e_message
          | _ -> false)
      | Ok (Rpc.Request _) -> false
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Rpc.e_message)

let test_malformed_error_replies () =
  let world = boot () in
  let d = Daemon.create world in
  let expect_code text code =
    match Daemon.handle_text d text with
    | None -> Alcotest.failf "no reply for %S" text
    | Some reply -> (
        match Rpc.decode reply with
        | Ok (Rpc.Response { p_id = None; p_result = Error e }) ->
            check_i ("code for " ^ text) code e.Rpc.e_code
        | _ -> Alcotest.failf "unexpected reply %s" reply)
  in
  expect_code "{not json" Rpc.parse_error;
  expect_code "[]" Rpc.invalid_request;
  (* empty batch: one error, null id — a non-empty array is a batch and
     answers per element (see the batch tests) *)
  expect_code "{\"id\":1,\"method\":\"x\"}" Rpc.invalid_request;
  (* missing jsonrpc *)
  expect_code "{\"jsonrpc\":\"2.0\",\"id\":{},\"method\":\"x\"}" Rpc.invalid_request;
  expect_code "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":7}" Rpc.invalid_request;
  expect_code "{\"jsonrpc\":\"2.0\",\"id\":1}" Rpc.invalid_request;
  (* unknown method is a real (id-carrying) error *)
  match Daemon.handle_text d "{\"jsonrpc\":\"2.0\",\"id\":9,\"method\":\"nope\"}" with
  | Some reply -> (
      match Rpc.decode reply with
      | Ok (Rpc.Response { p_id = Some (Rpc.I 9); p_result = Error e }) ->
          check_i "method_not_found" Rpc.method_not_found e.Rpc.e_code
      | _ -> Alcotest.failf "unexpected reply %s" reply)
  | None -> Alcotest.fail "no reply"

(* --- batch envelopes (JSON-RPC 2.0 §6) -------------------------------------- *)

let test_batch_handle_text () =
  let world = boot () in
  let d = Daemon.create world in
  (* mixed batch: call, notification, malformed element, call — one
     order-preserving reply array; the notification is elided, the
     malformed element answers in place with a null id *)
  let text =
    "[{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"daemon.info\"},"
    ^ "{\"jsonrpc\":\"2.0\",\"method\":\"$/cancel\",\"params\":{\"id\":99}},"
    ^ "7,"
    ^ "{\"jsonrpc\":\"2.0\",\"id\":2,\"method\":\"session.list\"}]"
  in
  (match Daemon.handle_text d text with
  | None -> Alcotest.fail "expected a reply array"
  | Some reply -> (
      match Rpc.decode_incoming reply with
      | Ok (Rpc.Batch [ a; b; c ]) ->
          (match a with
          | Ok (Rpc.Response { p_id = Some (Rpc.I 1); p_result = Ok info }) ->
              check_s "first slot is daemon.info" "cntrd/1.0"
                (Option.value (Jsonx.field_str info "version") ~default:"")
          | _ -> Alcotest.fail "slot 1: expected the daemon.info result");
          (match b with
          | Ok (Rpc.Response { p_id = None; p_result = Error e }) ->
              check_i "malformed element answers in place" Rpc.invalid_request e.Rpc.e_code
          | _ -> Alcotest.fail "slot 2: expected a null-id invalid_request");
          (match c with
          | Ok (Rpc.Response { p_id = Some (Rpc.I 2); p_result = Ok _ }) -> ()
          | _ -> Alcotest.fail "slot 3: expected the session.list result")
      | _ -> Alcotest.failf "expected a 3-element reply array, got %s" reply));
  (* an all-notification batch gets no reply frame at all *)
  check_b "all-notification batch elided" true
    (Daemon.handle_text d
       "[{\"jsonrpc\":\"2.0\",\"method\":\"$/cancel\",\"params\":{\"id\":1}}]"
    = None);
  (* all-malformed batch: every element answers, order preserved *)
  match Daemon.handle_text d "[1,2,3]" with
  | None -> Alcotest.fail "expected per-element errors"
  | Some reply -> (
      match Rpc.decode_incoming reply with
      | Ok (Rpc.Batch elems) ->
          check_i "three error slots" 3 (List.length elems);
          List.iter
            (function
              | Ok (Rpc.Response { p_id = None; p_result = Error e }) ->
                  check_i "per-element invalid_request" Rpc.invalid_request e.Rpc.e_code
              | _ -> Alcotest.fail "expected null-id errors")
            elems
      | _ -> Alcotest.failf "expected a reply array, got %s" reply)

(* --- lifecycle over both transports ---------------------------------------- *)

let lifecycle_roundtrip mk_client =
  let world = boot () in
  let d = Daemon.create world in
  let c = mk_client d in
  let created = ok' (Client.session_create c ~tenant:"ops" "web") in
  check_b "session id assigned" true (created.Client.sc_session >= 1);
  check_b "cgroup captured" true (contains ~needle:"docker" created.Client.sc_cgroup);
  let x = ok' (Client.session_exec c ~session:created.Client.sc_session "echo hi") in
  check_i "exec exit code" 0 x.Client.sx_code;
  check_b "exec output" true (contains ~needle:"hi" x.Client.sx_output);
  let rows = ok' (Client.session_list c) in
  check_i "one live session" 1 (List.length rows);
  let row = List.hd rows in
  check_s "state" "active" row.Client.sr_state;
  check_i "execs counted" 1 row.Client.sr_execs;
  let stat = ok' (Client.session_stat c ~session:created.Client.sc_session) in
  check_b "stat has report" true
    (contains ~needle:"cntrfs session" (Option.value (Jsonx.field_str stat "report") ~default:""));
  let already = ok' (Client.session_detach c ~session:created.Client.sc_session) in
  check_b "first detach is fresh" false already;
  let again = ok' (Client.session_detach c ~session:created.Client.sc_session) in
  check_b "second detach reports already" true again;
  check_i "table empty" 0 (List.length (ok' (Client.session_list c)));
  check_i "ctrl.sessions.total" 1 (counter world "ctrl.sessions.total")

let test_lifecycle_in_process () = lifecycle_roundtrip Client.in_process

let test_lifecycle_wire () =
  lifecycle_roundtrip (fun d ->
      let w = ok (Daemon.wire_serve d ~path:"/run/cntrd.sock" ()) in
      Client.connect w)

let test_daemon_info () =
  let world = boot () in
  let d = Daemon.create world in
  let c = Client.in_process d in
  let info = ok' (Client.call c "daemon.info") in
  check_s "protocol version" "cntrd/1.0"
    (Option.value (Jsonx.field_str info "version") ~default:"");
  check_b "methods listed" true
    (match Option.bind (Jsonx.mem info "methods") Jsonx.list_ with
    | Some ms -> List.mem (Jsonx.Str "session.exec") ms
    | None -> false)

(* --- cancellation ----------------------------------------------------------- *)

let test_cancel_inflight_exec () =
  let world = boot () in
  let d = Daemon.create world in
  let c = Client.in_process d in
  let created = ok' (Client.session_create c "web") in
  let sid = created.Client.sc_session in
  (* submit the exec but cancel before pumping: it is in flight (queued in
     the session mailbox), and the cancel wins at the dispatch point *)
  let tk =
    Client.submit c
      ~params:(Jsonx.Obj [ ("session", Jsonx.Int sid); ("cmd", Jsonx.Str "echo never") ])
      "session.exec"
  in
  Client.cancel c tk;
  check_i "cancelled code" Rpc.cancelled (err_code (Client.await c tk));
  check_i "ctrl.rpc.cancelled" 1 (counter world "ctrl.rpc.cancelled");
  (* the session is untouched and still serves *)
  let x = ok' (Client.session_exec c ~session:sid "echo alive") in
  check_b "session still serves" true (contains ~needle:"alive" x.Client.sx_output);
  ignore (ok' (Client.session_detach c ~session:sid))

let test_cancel_queued_create () =
  let world = boot () in
  let config =
    {
      Daemon.default_config with
      Daemon.c_max_active = 1;
      c_queue_depth = 4;
      c_tenant = { Daemon.q_active = 1; q_queued = 4 };
    }
  in
  let d = Daemon.create ~config world in
  let c = Client.in_process d in
  let first = ok' (Client.session_create c "web") in
  (* second create parks in the admission queue... *)
  let tk = Client.submit c ~params:(Jsonx.Obj [ ("container", Jsonx.Str "cache") ]) "session.create" in
  check_b "still queued" true (Client.poll c tk = None);
  let rows = ok' (Client.session_list c) in
  check_i "two table entries" 2 (List.length rows);
  check_b "one queued" true (List.exists (fun r -> r.Client.sr_state = "queued") rows);
  (* ...and $/cancel unparks it with a cancelled reply *)
  Client.cancel c tk;
  check_i "queued create cancelled" Rpc.cancelled (err_code (Client.await c tk));
  check_i "ctrl.sessions.total" 1 (counter world "ctrl.sessions.total");
  ignore (ok' (Client.session_detach c ~session:first.Client.sc_session))

(* --- admission --------------------------------------------------------------- *)

let test_admission_rejection_under_quota () =
  let world = boot () in
  let config =
    {
      Daemon.default_config with
      Daemon.c_max_active = 2;
      c_queue_depth = 1;
      c_tenant = { Daemon.q_active = 1; q_queued = 1 };
    }
  in
  let d = Daemon.create ~config world in
  let c = Client.in_process d in
  let a = ok' (Client.session_create c ~tenant:"alice" "web") in
  (* alice is at her active quota: her next create queues (1 allowed)... *)
  let queued =
    Client.submit c
      ~params:(Jsonx.Obj [ ("container", Jsonx.Str "cache"); ("tenant", Jsonx.Str "alice") ])
      "session.create"
  in
  check_b "parked, not rejected" true (Client.poll c queued = None);
  (* ...and the one after that bursts her queue quota: rejected *)
  let r = Client.session_create c ~tenant:"alice" "db" in
  check_i "tenant queue full" Rpc.admission_rejected (err_code r);
  (* bob still fits (global active 2) *)
  let b = ok' (Client.session_create c ~tenant:"bob" "db") in
  (* global queue depth is 1 and alice holds it: bob's second create is
     rejected fleet-wide *)
  let r2 = Client.session_create c ~tenant:"bob" "cache" in
  check_i "global queue full" Rpc.admission_rejected (err_code r2);
  check_i "ctrl.sessions.rejected" 2 (counter world "ctrl.sessions.rejected");
  (* detaching alice's first admits her queued one (FIFO) *)
  ignore (ok' (Client.session_detach c ~session:a.Client.sc_session));
  let second = ok' (Client.await c queued) in
  check_b "queued create admitted after detach" true
    (Jsonx.field_int second "session" <> None);
  check_b "waited a measurable time" true
    (match Jsonx.field_int second "queue_wait_us" with Some _ -> true | None -> false);
  ignore (ok' (Client.session_detach c ~session:b.Client.sc_session));
  (match Jsonx.field_int second "session" with
  | Some sid -> ignore (ok' (Client.session_detach c ~session:sid))
  | None -> ());
  check_i "all slots released" 0 (List.length (ok' (Client.session_list c)));
  check_i "ctrl.sessions.total" 3 (counter world "ctrl.sessions.total")

(* --- ctrl fault site: create/crash/recover ---------------------------------- *)

let test_fault_create_crash_recover () =
  let world = boot () in
  let plan, _ =
    Result.get_ok (Fault.parse "seed 7\nctrl create nth=2 crash\nctrl exec nth=2 delay=50000")
  in
  let config = { Daemon.default_config with Daemon.c_fault = Some plan } in
  let d = Daemon.create ~config world in
  let c = Client.in_process d in
  let s1 = ok' (Client.session_create c "web") in
  (* the 2nd create fires Crash_server: attach succeeds, then the session's
     CntrFS server is killed — the first exec transparently recovers *)
  let s2 = ok' (Client.session_create c "cache") in
  let x = ok' (Client.session_exec c ~session:s2.Client.sc_session "echo back") in
  check_b "exec recovered the session" true x.Client.sx_recovered;
  check_b "output after recovery" true (contains ~needle:"back" x.Client.sx_output);
  check_i "ctrl.sessions.recovered" 1 (counter world "ctrl.sessions.recovered");
  (* the delayed 3rd exec still completes (virtual time absorbs it) *)
  let y = ok' (Client.session_exec c ~session:s1.Client.sc_session "echo slow") in
  check_b "delayed exec completes" true (contains ~needle:"slow" y.Client.sx_output);
  check_b "fault plane counted injections" true (counter world "fault.injected.total" >= 2);
  ignore (ok' (Client.session_detach c ~session:s1.Client.sc_session));
  ignore (ok' (Client.session_detach c ~session:s2.Client.sc_session))

(* Detach racing a crash-triggered recovery: the detach lands while the
   session is recovering and must return a clean result — never ENOTCONN —
   and a repeat detach reports already=true. *)
let test_detach_races_recovery () =
  let world = boot () in
  let plan, _ = Result.get_ok (Fault.parse "seed 7\nctrl exec nth=1 crash") in
  let config = { Daemon.default_config with Daemon.c_fault = Some plan } in
  let d = Daemon.create ~config world in
  let c = Client.in_process d in
  let s = ok' (Client.session_create c "web") in
  let sid = s.Client.sc_session in
  (* exec will crash the server and recover; the detach is submitted before
     any of that runs, so it races the recovery inside one pump *)
  let xk =
    Client.submit c
      ~params:(Jsonx.Obj [ ("session", Jsonx.Int sid); ("cmd", Jsonx.Str "echo boom") ])
      "session.exec"
  in
  let dk = Client.submit c ~params:(Jsonx.Obj [ ("session", Jsonx.Int sid) ]) "session.detach" in
  let x = ok' (Client.await c xk) in
  check_b "exec recovered" true (Jsonx.field_bool x "recovered" = Some true);
  let det = ok' (Client.await c dk) in
  check_b "racing detach is clean" true (Jsonx.field_bool det "detached" = Some true);
  check_b "racing detach was fresh" true (Jsonx.field_bool det "already" = Some false);
  let again = ok' (Client.session_detach c ~session:sid) in
  check_b "repeat detach reports already" true again;
  check_i "one recovery" 1 (counter world "ctrl.sessions.recovered")

(* --- subscriptions ----------------------------------------------------------- *)

let test_stats_subscribe () =
  let world = boot () in
  let d = Daemon.create world in
  let c = Client.in_process d in
  ok' (Client.subscribe c);
  let s = ok' (Client.session_create c ~tenant:"ops" "web") in
  ignore (ok' (Client.session_detach c ~session:s.Client.sc_session));
  let events =
    Client.notifications c
    |> List.filter_map (fun j ->
           match Jsonx.mem j "params" with
           | Some p -> Jsonx.field_str p "event"
           | None -> None)
  in
  check_b "created event" true (List.mem "session.created" events);
  check_b "detached event" true (List.mem "session.detached" events)

let test_subscribe_bounded_buffer () =
  (* A subscriber whose transport never becomes ready: events pile into
     its ring, the ring never exceeds the configured bound, the overflow
     is counted under ctrl.subscribe.dropped, and nothing is ever
     delivered through the stuck sink. *)
  let world = boot () in
  let d =
    Daemon.create ~config:{ Daemon.default_config with Daemon.c_sub_buffer = 4 } world
  in
  let delivered = ref 0 in
  let req =
    {
      Rpc.r_id = Some (Rpc.I 1);
      r_method = "stats.subscribe";
      r_params = Jsonx.Obj [];
    }
  in
  let tk =
    Option.get
      (Daemon.submit d
         ~sink:(fun _ -> incr delivered)
         ~sink_ready:(fun () -> false)
         req)
  in
  ignore (Daemon.response d tk);
  (* churn out more events than the ring holds *)
  let c = Client.in_process d in
  for _ = 1 to 6 do
    let s = ok' (Client.session_create c ~tenant:"ops" "web") in
    ignore (ok' (Client.session_detach c ~session:s.Client.sc_session))
  done;
  Daemon.pump d;
  check_i "stuck sink received nothing" 0 !delivered;
  check_b "overflow counted" true (counter world "ctrl.subscribe.dropped" > 0)

(* --- wire plane: pipelining, batching, flow control --------------------------- *)

let wire_boot ?config () =
  let world = boot () in
  let d = Daemon.create ?config world in
  let w = ok (Daemon.wire_serve d ~path:"/run/cntrd.sock" ()) in
  (world, d, w)

let test_wire_batch_roundtrip () =
  let world, _d, w = wire_boot () in
  let c = Client.connect w in
  let s = ok' (Client.session_create c "web") in
  let sid = s.Client.sc_session in
  (* three typed verbs in one array envelope — one frame on the wire —
     then claim the replies in reverse submission order *)
  let h1, h2, h3 =
    Client.batch c (fun () ->
        ( Client.start_exec c ~session:sid "echo one",
          Client.start_stat c ~session:sid,
          Client.start_list c ))
  in
  let rows = ok' (Client.finish c h3) in
  check_i "list inside batch" 1 (List.length rows);
  let stat = ok' (Client.finish c h2) in
  check_b "stat inside batch" true (Jsonx.field_str stat "report" <> None);
  let x = ok' (Client.finish c h1) in
  check_b "exec inside batch" true (contains ~needle:"one" x.Client.sx_output);
  check_b "envelope counted" true (counter world "ctrl.wire.batches" >= 1);
  check_b "batch pipelined on the connection" true
    (gauge world "ctrl.wire.pipelined.max" > 1.);
  ignore (ok' (Client.session_detach c ~session:sid))

let test_wire_out_of_order_replies () =
  let world, _d, w =
    wire_boot
      ~config:
        {
          Daemon.default_config with
          Daemon.c_max_active = 1;
          c_queue_depth = 2;
          c_tenant = { Daemon.q_active = 1; q_queued = 2 };
        }
      ()
  in
  let c = Client.connect w in
  let s1 = ok' (Client.session_create c "web") in
  (* capacity is full: this create parks in the admission queue... *)
  let parked =
    Client.submit c ~params:(Jsonx.Obj [ ("container", Jsonx.Str "cache") ]) "session.create"
  in
  check_b "create parked" true (Client.poll c parked = None);
  (* ...so a request submitted later overtakes it on the same connection *)
  let listed = Client.submit c "session.list" in
  let rows = ok' (Client.await c listed) in
  check_b "later list answered first" true (Jsonx.mem rows "sessions" <> None);
  check_b "parked create still unanswered" true (Client.poll c parked = None);
  check_b "two in flight at peak" true (gauge world "ctrl.wire.pipelined.max" >= 2.);
  (* freeing the slot unparks it; the out-of-order reply still matches *)
  ignore (ok' (Client.session_detach c ~session:s1.Client.sc_session));
  let second = ok' (Client.await c parked) in
  (match Jsonx.field_int second "session" with
  | Some sid -> ignore (ok' (Client.session_detach c ~session:sid))
  | None -> Alcotest.fail "unparked create carries its session id");
  check_i "ctrl.sessions.total" 2 (counter world "ctrl.sessions.total")

let test_wire_watermark_stall_resume () =
  (* A reader that claims nothing while a storm of stat replies heads its
     way: the client-bound pipes fill, then the connection's framed
     backlog crosses the high watermark and the connection stalls.  The
     late drain must deliver every reply exactly once, and the backlog
     peak must stay under high + one frame. *)
  let high = 4096 and low = 1024 in
  let world, _d, w =
    wire_boot
      ~config:
        {
          Daemon.default_config with
          Daemon.c_wire_inflight = 1_000_000;
          c_wire_high = high;
          c_wire_low = low;
        }
      ()
  in
  let c = Client.connect w in
  let s = ok' (Client.session_create c "web") in
  let sid = s.Client.sc_session in
  let handles = List.init 1500 (fun _ -> Client.start_stat c ~session:sid) in
  check_b "connection stalled under backlog" true (counter world "ctrl.wire.stalls" > 0);
  List.iter
    (fun h ->
      match Client.finish c h with
      | Ok v -> check_b "stat reply intact" true (Jsonx.field_str v "report" <> None)
      | Error e -> Alcotest.failf "stat lost under flow control: %s" e.Rpc.e_message)
    handles;
  check_b "backlog peak bounded by high + one frame" true
    (gauge world "ctrl.wire.backlog.peak"
    <= float_of_int high +. gauge world "ctrl.wire.frame.max");
  check_i "flow control never refuses" 0 (counter world "ctrl.wire.overloaded");
  ignore (ok' (Client.session_detach c ~session:sid))

(* Overload property, over raw frames so duplicate replies cannot be
   masked by the client's reply table: burst n calls at a connection with
   an in-flight cap, then drain — every submitted id must get exactly one
   reply, a result or a -32005, never both and never twice. *)
let prop_wire_overload_exactly_once =
  QCheck.Test.make ~name:"wire overload: every id answered exactly once" ~count:15
    QCheck.(pair (int_range 1 6) (int_range 1 40))
    (fun (cap, n) ->
      let world = boot () in
      let config = { Daemon.default_config with Daemon.c_wire_inflight = cap } in
      let d = Daemon.create ~config world in
      let w = Result.get_ok (Daemon.wire_serve d ~path:"/run/cntrd.sock" ()) in
      let kernel = Daemon.kernel d in
      let proc = Daemon.wire_client_proc w in
      let fd = Result.get_ok (Kernel.socket_connect kernel proc (Daemon.wire_path w)) in
      Daemon.pump d;
      (* queue the whole burst before the daemon sees any of it *)
      let rec write_all s =
        if String.length s > 0 then
          match Kernel.write kernel proc fd s with
          | Ok k when k > 0 -> write_all (String.sub s k (String.length s - k))
          | _ ->
              Daemon.pump d;
              write_all s
      in
      for i = 1 to n do
        write_all
          (Rpc.frame
             (Rpc.encode_request
                { Rpc.r_id = Some (Rpc.I i); r_method = "daemon.info"; r_params = Jsonx.Null }))
      done;
      let seen = Hashtbl.create 64 in
      (* id -> (results, refusals) *)
      let record = function
        | Ok (Rpc.Response { Rpc.p_id = Some (Rpc.I i); p_result }) -> (
            let oks, refusals =
              Option.value (Hashtbl.find_opt seen i) ~default:(0, 0)
            in
            match p_result with
            | Ok _ -> Hashtbl.replace seen i (oks + 1, refusals)
            | Error e when e.Rpc.e_code = Rpc.overloaded ->
                Hashtbl.replace seen i (oks, refusals + 1)
            | Error e -> QCheck.Test.fail_reportf "unexpected error %d" e.Rpc.e_code)
        | _ -> QCheck.Test.fail_reportf "unexpected frame from the daemon"
      in
      let reader = Rpc.reader () in
      let answered () = Hashtbl.fold (fun _ (a, b) acc -> acc + a + b) seen 0 in
      let rec drain idle =
        if idle <= 64 && answered () < n then begin
          Daemon.pump d;
          match Kernel.read kernel proc fd ~len:65536 with
          | Ok s when String.length s > 0 ->
              Rpc.feed reader s;
              let rec frames () =
                match Rpc.next reader with
                | `Frame p ->
                    (match Rpc.decode_incoming p with
                    | Ok (Rpc.Single m) -> record m
                    | Ok (Rpc.Batch ms) -> List.iter record ms
                    | Error _ -> QCheck.Test.fail_reportf "undecodable reply frame");
                    frames ()
                | `Garbage _ -> QCheck.Test.fail_reportf "garbage framing from the daemon"
                | `More -> ()
              in
              frames ();
              drain 0
          | _ -> drain (idle + 1)
        end
      in
      drain 0;
      let refused = Hashtbl.fold (fun _ (_, b) acc -> acc + b) seen 0 in
      if n > cap && refused = 0 then
        QCheck.Test.fail_reportf "burst of %d over cap %d was never refused" n cap;
      List.for_all
        (fun i ->
          match Hashtbl.find_opt seen i with
          | Some (1, 0) | Some (0, 1) -> true
          | Some (a, b) ->
              QCheck.Test.fail_reportf "id %d answered %d times (%d ok, %d refused)" i
                (a + b) a b
          | None -> QCheck.Test.fail_reportf "id %d never answered" i)
        (List.init n (fun i -> i + 1)))

(* --- fault plan grammar: ctrl site round-trip -------------------------------- *)

let test_ctrl_site_grammar () =
  let text = "seed 11\nctrl create every=10 fail=EAGAIN\nctrl * prob=0.25 delay=1000" in
  let plan, _ = Result.get_ok (Fault.parse text) in
  check_i "two rules" 2 (List.length plan.Fault.rules);
  let printed = Fault.to_string plan in
  check_b "ctrl site prints" true (contains ~needle:"ctrl create" printed);
  let plan2, _ = Result.get_ok (Fault.parse printed) in
  check_b "grammar round-trips" true (Fault.to_string plan = Fault.to_string plan2)

let () =
  Alcotest.run "ctrl"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          Alcotest.test_case "malformed input replies" `Quick test_malformed_error_replies;
          Alcotest.test_case "ctrl fault-plan grammar" `Quick test_ctrl_site_grammar;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "in-process transport" `Quick test_lifecycle_in_process;
          Alcotest.test_case "wire transport" `Quick test_lifecycle_wire;
          Alcotest.test_case "daemon.info" `Quick test_daemon_info;
        ] );
      ( "cancel",
        [
          Alcotest.test_case "in-flight exec" `Quick test_cancel_inflight_exec;
          Alcotest.test_case "queued create" `Quick test_cancel_queued_create;
        ] );
      ( "admission",
        [ Alcotest.test_case "rejection under quota" `Quick test_admission_rejection_under_quota ] );
      ( "faults",
        [
          Alcotest.test_case "create/crash/recover" `Quick test_fault_create_crash_recover;
          Alcotest.test_case "detach races recovery" `Quick test_detach_races_recovery;
        ] );
      ( "events",
        [
          Alcotest.test_case "stats.subscribe" `Quick test_stats_subscribe;
          Alcotest.test_case "bounded subscriber buffer" `Quick
            test_subscribe_bounded_buffer;
        ] );
      ( "wire",
        [
          Alcotest.test_case "batch envelopes via handle_text" `Quick
            test_batch_handle_text;
          Alcotest.test_case "batched verbs over the wire" `Quick
            test_wire_batch_roundtrip;
          Alcotest.test_case "out-of-order pipelined replies" `Quick
            test_wire_out_of_order_replies;
          Alcotest.test_case "watermark stall and resume" `Quick
            test_wire_watermark_stall_resume;
          QCheck_alcotest.to_alcotest prop_wire_overload_exactly_once;
        ] );
    ]
