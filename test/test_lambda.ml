(* The §6 future-work extension: serverless functions as micro-containers,
   debuggable with CNTR.  "Lambdas offer limited or no support for
   interactive debugging because clients have no access to the lambda's
   container" — here CNTR provides exactly that access. *)

open Repro_util
open Repro_os
open Repro_runtime
open Repro_cntr

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let ok = Errno.ok_exn

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let boot () =
  let world = Testbed.create () in
  let platform = Lambda.create ~kernel:world.World.kernel in
  (* a handler that records its payload in /tmp *)
  Kernel.register_program world.World.kernel "thumbnailer" (fun k proc args ->
      let payload = match args with _ :: p :: _ -> p | _ -> "?" in
      let fd =
        ok (Kernel.open_ k proc "/tmp/processed" [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY; Repro_vfs.Types.O_APPEND ] ~mode:0o644)
      in
      ignore (ok (Kernel.write k proc fd (payload ^ "\n")));
      ok (Kernel.close k proc fd);
      0);
  (world, platform)

let test_deploy_and_invoke () =
  let _world, platform = boot () in
  let _fn = Lambda.deploy platform ~name:"thumb" ~handler:"thumbnailer" () in
  let code, cold, _inst = ok (Lambda.invoke platform "thumb" ~payload:"img1.png") in
  check_i "handler ok" 0 code;
  check_b "first invocation cold-starts" true cold;
  let code, cold, _inst = ok (Lambda.invoke platform "thumb" ~payload:"img2.png") in
  check_i "second ok" 0 code;
  check_b "second is warm" false cold;
  let invocations, instances = Lambda.stats platform "thumb" in
  check_i "two invocations" 2 invocations;
  check_i "one warm instance" 1 instances

let test_unknown_function () =
  let _world, platform = boot () in
  check_b "invoke unknown" true (Lambda.invoke platform "nope" ~payload:"x" = Error Errno.ENOENT)

let test_micro_image_is_minimal () =
  let _world, platform = boot () in
  let fn = Lambda.deploy platform ~name:"thumb" ~handler:"thumbnailer" () in
  let paths = Repro_image.Image.effective_paths fn.Lambda.fn_image in
  check_b "no shell in the image" true (not (List.exists (fun p -> Repro_util.Pathx.basename p = "sh") paths));
  check_b "bootstrap present" true (List.mem "/var/runtime/bootstrap" paths);
  check_b "handler present" true (List.mem "/var/task/handler" paths);
  check_b "tiny" true (Repro_image.Image.effective_size fn.Lambda.fn_image < Repro_util.Size.mib 1)

let test_cntr_attach_to_lambda () =
  let world, platform = boot () in
  let _fn = Lambda.deploy platform ~name:"thumb" ~handler:"thumbnailer" () in
  let _code, _cold, inst = ok (Lambda.invoke platform "thumb" ~payload:"img1.png") in
  (* the instance has no shell, no tools — CNTR brings them *)
  let engines = Lambda.engine platform :: world.World.engines in
  let session =
    ok
      (Attach.attach ~kernel:world.World.kernel ~engines ~budget:world.World.budget
         inst.Container.ct_name)
  in
  (* host tools work inside the function sandbox *)
  let code, out = Attach.run session "which gdb" in
  check_i "gdb available" 0 code;
  check_b "from host" true (contains ~needle:"/usr/bin/gdb" out);
  (* the function's filesystem and state are inspectable *)
  let _c, out = Attach.run session "cat /var/lib/cntr/tmp/processed" in
  check_b "handler state visible" true (contains ~needle:"img1.png" out);
  let _c, out = Attach.run session "ls /var/lib/cntr/var/task" in
  check_b "code bundle visible" true (contains ~needle:"handler" out);
  (* the lambda engine's conventions were captured *)
  check_b "lambda cgroup" true
    (contains ~needle:"/lambda/" (Attach.context session).Context.cx_cgroup);
  check_b "lambda lsm profile" true
    ((Attach.context session).Context.cx_lsm_profile = Some "lambda-runtime");
  Attach.detach session;
  (* a further invocation still works after detach *)
  let code, _cold, _ = ok (Lambda.invoke platform "thumb" ~payload:"img3.png") in
  check_i "function unharmed" 0 code

let () =
  Alcotest.run "lambda"
    [
      ( "platform",
        [
          Alcotest.test_case "deploy & invoke" `Quick test_deploy_and_invoke;
          Alcotest.test_case "unknown function" `Quick test_unknown_function;
          Alcotest.test_case "micro image minimal" `Quick test_micro_image_is_minimal;
        ] );
      ( "cntr-integration",
        [ Alcotest.test_case "attach to a lambda" `Quick test_cntr_attach_to_lambda ] );
    ]
