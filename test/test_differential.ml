(* Differential testing: the same randomly-generated syscall trace is
   executed twice — once against a directory served through the full
   CntrFS stack, once against a plain native directory — and every
   result (data, sizes, errnos, directory listings) must be observationally
   identical.  This is the strongest correctness statement about the FUSE
   driver's caches and the passthrough server: POSIX behavior is preserved
   modulo the four documented deviations (which the generator avoids:
   no O_DIRECT, no rlimits, no ACL-setgid interplay, no handles). *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_cntrfs

let ok = Errno.ok_exn

type sys = { k : Kernel.t; proc : Proc.t; base : string }

let boot_pair_full ?(threads = 4) ~opts () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  List.iter (fun d -> ok (Kernel.mkdir k init d ~mode:0o777)) [ "/back"; "/native" ];
  ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
  let server = Kernel.fork k init in
  let budget = Mem_budget.create ~limit_bytes:(32 * 1024 * 1024) in
  let session =
    Session.create ~kernel:k ~server_proc:server ~root_path:"/back" ~opts ~threads ~budget ()
  in
  ignore (ok (Kernel.mount_at k init ~fs:(Session.fs session) "/mnt"));
  ({ k; proc = init; base = "/mnt" }, { k; proc = init; base = "/native" }, session)

let boot_pair ?threads ~opts () =
  let fuse_sys, native_sys, _session = boot_pair_full ?threads ~opts () in
  (fuse_sys, native_sys)

(* --- the operation language --------------------------------------------------- *)

type op =
  | Op_write of int * int * int (* file slot, offset, length *)
  | Op_append of int * int
  | Op_read of int * int * int
  | Op_read_whole of int
  | Op_truncate of int * int
  | Op_unlink of int
  | Op_mkdir of int
  | Op_rmdir of int
  | Op_rename of int * int
  | Op_link of int * int
  | Op_symlink of int * int
  | Op_stat of int
  | Op_readdir
  | Op_fsync of int
  | Op_chmod of int * int
  | Op_xattr_set of int * int
  | Op_xattr_get of int

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, map3 (fun a b c -> Op_write (a, b, c)) (int_range 0 7) (int_range 0 20000) (int_range 1 3000));
        (3, map2 (fun a b -> Op_append (a, b)) (int_range 0 7) (int_range 1 500));
        (5, map3 (fun a b c -> Op_read (a, b, c)) (int_range 0 7) (int_range 0 25000) (int_range 1 4000));
        (3, map (fun a -> Op_read_whole a) (int_range 0 7));
        (2, map2 (fun a b -> Op_truncate (a, b)) (int_range 0 7) (int_range 0 15000));
        (2, map (fun a -> Op_unlink a) (int_range 0 7));
        (1, map (fun a -> Op_mkdir a) (int_range 0 3));
        (1, map (fun a -> Op_rmdir a) (int_range 0 3));
        (2, map2 (fun a b -> Op_rename (a, b)) (int_range 0 7) (int_range 0 7));
        (1, map2 (fun a b -> Op_link (a, b)) (int_range 0 7) (int_range 0 7));
        (1, map2 (fun a b -> Op_symlink (a, b)) (int_range 0 7) (int_range 0 7));
        (3, map (fun a -> Op_stat a) (int_range 0 7));
        (1, return Op_readdir);
        (1, map (fun a -> Op_fsync a) (int_range 0 7));
        (1, map2 (fun a b -> Op_chmod (a, b)) (int_range 0 7) (oneofl [ 0o600; 0o644; 0o755 ]));
        (1, map2 (fun a b -> Op_xattr_set (a, b)) (int_range 0 7) (int_range 0 3));
        (1, map (fun a -> Op_xattr_get a) (int_range 0 7));
      ])

let fname slot = Printf.sprintf "f%d" slot
let dname slot = Printf.sprintf "d%d" slot

(* Execute one op; the observation is a string capturing everything
   user-visible about the outcome. *)
let execute sys op =
  let k = sys.k and p = sys.proc in
  let path rel = sys.base ^ "/" ^ rel in
  let obs_of_result pp = function
    | Ok v -> "ok:" ^ pp v
    | Error e -> "err:" ^ Errno.to_string e
  in
  let unit_obs = obs_of_result (fun () -> "()") in
  let payload n = String.init n (fun i -> Char.chr (33 + ((i * 7) mod 90))) in
  match op with
  | Op_write (slot, off, len) ->
      let r =
        match Kernel.open_ k p (path (fname slot)) [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644 with
        | Error e -> Error e
        | Ok fd ->
            let r = Kernel.pwrite k p fd ~off (payload len) in
            ignore (Kernel.close k p fd);
            r
      in
      obs_of_result string_of_int r
  | Op_append (slot, len) ->
      let r =
        match Kernel.open_ k p (path (fname slot)) [ Types.O_CREAT; Types.O_WRONLY; Types.O_APPEND ] ~mode:0o644 with
        | Error e -> Error e
        | Ok fd ->
            let r = Kernel.write k p fd (payload len) in
            ignore (Kernel.close k p fd);
            r
      in
      obs_of_result string_of_int r
  | Op_read (slot, off, len) ->
      let r =
        match Kernel.open_ k p (path (fname slot)) [ Types.O_RDONLY ] ~mode:0 with
        | Error e -> Error e
        | Ok fd ->
            let r = Kernel.pread k p fd ~off ~len in
            ignore (Kernel.close k p fd);
            r
      in
      obs_of_result (fun s -> string_of_int (Hashtbl.hash s)) r
  | Op_read_whole slot ->
      obs_of_result (fun s -> string_of_int (Hashtbl.hash s)) (Kernel.read_whole k p (path (fname slot)))
  | Op_truncate (slot, size) -> unit_obs (Kernel.truncate k p (path (fname slot)) size)
  | Op_unlink slot -> unit_obs (Kernel.unlink k p (path (fname slot)))
  | Op_mkdir slot -> unit_obs (Kernel.mkdir k p (path (dname slot)) ~mode:0o755)
  | Op_rmdir slot -> unit_obs (Kernel.rmdir k p (path (dname slot)))
  | Op_rename (a, b) -> unit_obs (Kernel.rename k p ~src:(path (fname a)) ~dst:(path (fname b)))
  | Op_link (a, b) -> unit_obs (Kernel.link k p ~target:(path (fname a)) ~linkpath:(path (fname b)))
  | Op_symlink (a, b) ->
      unit_obs (Kernel.symlink k p ~target:(fname a) ~linkpath:(path (fname b)))
  | Op_stat slot ->
      obs_of_result
        (fun st ->
          Printf.sprintf "%s:%d:%d:%o" (Types.kind_to_string st.Types.st_kind) st.Types.st_size
            st.Types.st_nlink st.Types.st_mode)
        (Kernel.stat k p (path (fname slot)))
  | Op_readdir ->
      obs_of_result
        (fun entries ->
          entries
          |> List.map (fun e -> e.Types.d_name ^ "/" ^ Types.kind_to_string e.Types.d_kind)
          |> List.sort compare |> String.concat ",")
        (Kernel.readdir k p sys.base)
  | Op_fsync slot ->
      let r =
        match Kernel.open_ k p (path (fname slot)) [ Types.O_WRONLY ] ~mode:0 with
        | Error e -> Error e
        | Ok fd ->
            let r = Kernel.fsync k p fd in
            ignore (Kernel.close k p fd);
            r
      in
      unit_obs r
  | Op_chmod (slot, mode) -> unit_obs (Kernel.chmod k p (path (fname slot)) mode)
  | Op_xattr_set (slot, key) ->
      unit_obs (Kernel.setxattr k p (path (fname slot)) (Printf.sprintf "user.k%d" key) "v")
  | Op_xattr_get (slot) ->
      obs_of_result Fun.id (Kernel.getxattr k p (path (fname slot)) "user.k0")

(* Final deep comparison: every file's full content and the listing. *)
let fingerprint sys =
  let k = sys.k and p = sys.proc in
  let buf = Buffer.create 256 in
  (* the base directory's own attributes: size tracks the entry count and
     nlink the subdirectory count, so this catches a drifting post-op
     parent-attribute update (Driver.touch_parent_attr) red-handed *)
  (match Kernel.stat k p sys.base with
  | Ok st -> Buffer.add_string buf (Printf.sprintf "[dir:%d,%d]" st.Types.st_size st.Types.st_nlink)
  | Error e -> Buffer.add_string buf ("[dir:" ^ Errno.to_string e ^ "]"));
  (match Kernel.readdir k p sys.base with
  | Error e -> Buffer.add_string buf ("readdir-err:" ^ Errno.to_string e)
  | Ok entries ->
      entries
      |> List.map (fun e -> e.Types.d_name)
      |> List.sort compare
      |> List.iter (fun name ->
             if name <> "." && name <> ".." then begin
               Buffer.add_string buf name;
               (match Kernel.lstat k p (sys.base ^ "/" ^ name) with
               | Ok st ->
                   Buffer.add_string buf
                     (Printf.sprintf "<%s,%d,%d>" (Types.kind_to_string st.Types.st_kind)
                        st.Types.st_size st.Types.st_nlink)
               | Error e -> Buffer.add_string buf ("<" ^ Errno.to_string e ^ ">"));
               match Kernel.read_whole k p (sys.base ^ "/" ^ name) with
               | Ok data -> Buffer.add_string buf (string_of_int (Hashtbl.hash data))
               | Error e -> Buffer.add_string buf (Errno.to_string e)
             end));
  Buffer.contents buf

let run_trace ?threads ~opts ops =
  let fuse_sys, native_sys = boot_pair ?threads ~opts () in
  let rec go i = function
    | [] -> None
    | op :: rest ->
        let a = execute fuse_sys op in
        let b = execute native_sys op in
        if a <> b then Some (Printf.sprintf "op %d diverged: cntrfs=%s native=%s" i a b)
        else go (i + 1) rest
  in
  match go 0 ops with
  | Some msg -> Some msg
  | None ->
      let fa = fingerprint fuse_sys and fb = fingerprint native_sys in
      if fa <> fb then Some (Printf.sprintf "final state diverged:\n  cntrfs=%s\n  native=%s" fa fb)
      else None

(* The fault-injected leg: run the first half of the trace on both systems,
   murder the CntrFS server mid-session, observe bounded ENOTCONN failures
   on throwaway idempotent reads, recover, and demand the second half (and
   the final fingerprints) re-converge with the native leg.  A server crash
   plus recovery must be observationally invisible to everything that comes
   after it. *)
let run_trace_faulted ?threads ~opts ops =
  let fuse_sys, native_sys, session = boot_pair_full ?threads ~opts () in
  let n = List.length ops in
  let rec split i acc = function
    | rest when i = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | op :: rest -> split (i - 1) (op :: acc) rest
  in
  let first, second = split (n / 2) [] ops in
  let rec go i = function
    | [] -> None
    | op :: rest ->
        let a = execute fuse_sys op in
        let b = execute native_sys op in
        if a <> b then Some (Printf.sprintf "op %d diverged: cntrfs=%s native=%s" i a b)
        else go (i + 1) rest
  in
  match go 0 first with
  | Some msg -> Some msg
  | None -> (
      (* the server dies; idempotent probes fail with ENOTCONN, fast *)
      Conn.inject_crash session.Session.conn;
      let probes =
        [ Op_stat 0; Op_read_whole 1; Op_readdir ]
        |> List.filter_map (fun op ->
               let obs = execute fuse_sys op in
               (* every probe must resolve (no hang); cached answers may
                  still succeed, uncached ones must say ENOTCONN *)
               if String.length obs = 0 then Some "empty observation" else None)
      in
      match probes with
      | msg :: _ -> Some msg
      | [] -> (
          Session.recover session;
          match go (n / 2) second with
          | Some msg -> Some ("after recovery: " ^ msg)
          | None ->
              let fa = fingerprint fuse_sys and fb = fingerprint native_sys in
              if fa <> fb then
                Some
                  (Printf.sprintf "post-recovery state diverged:\n  cntrfs=%s\n  native=%s" fa fb)
              else None))

let pp_op = function
  | Op_write (a, b, c) -> Printf.sprintf "write f%d off=%d len=%d" a b c
  | Op_append (a, b) -> Printf.sprintf "append f%d len=%d" a b
  | Op_read (a, b, c) -> Printf.sprintf "read f%d off=%d len=%d" a b c
  | Op_read_whole a -> Printf.sprintf "read_whole f%d" a
  | Op_truncate (a, b) -> Printf.sprintf "truncate f%d %d" a b
  | Op_unlink a -> Printf.sprintf "unlink f%d" a
  | Op_mkdir a -> Printf.sprintf "mkdir d%d" a
  | Op_rmdir a -> Printf.sprintf "rmdir d%d" a
  | Op_rename (a, b) -> Printf.sprintf "rename f%d f%d" a b
  | Op_link (a, b) -> Printf.sprintf "link f%d f%d" a b
  | Op_symlink (a, b) -> Printf.sprintf "symlink f%d f%d" a b
  | Op_stat a -> Printf.sprintf "stat f%d" a
  | Op_readdir -> "readdir"
  | Op_fsync a -> Printf.sprintf "fsync f%d" a
  | Op_chmod (a, b) -> Printf.sprintf "chmod f%d %o" a b
  | Op_xattr_set (a, b) -> Printf.sprintf "xattr_set f%d k%d" a b
  | Op_xattr_get a -> Printf.sprintf "xattr_get f%d" a

let prop_differential_faulted ?(count = 60) ?threads ~name ~opts () =
  QCheck.Test.make ~name ~count
    (QCheck.make ~print:(fun ops ->
         Printf.sprintf "<%d ops>\n%s" (List.length ops)
           (String.concat "\n" (List.mapi (Printf.sprintf "  %d: %s") (List.map pp_op ops))))
       QCheck.Gen.(list_size (int_range 10 80) gen_op))
    (fun ops ->
      match run_trace_faulted ?threads ~opts ops with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

let prop_differential ?(count = 60) ?threads ~name ~opts () =
  QCheck.Test.make ~name ~count
    (QCheck.make ~print:(fun ops ->
         Printf.sprintf "<%d ops>\n%s" (List.length ops)
           (String.concat "\n" (List.mapi (Printf.sprintf "  %d: %s") (List.map pp_op ops))))
       QCheck.Gen.(list_size (int_range 10 80) gen_op))
    (fun ops ->
      match run_trace ?threads ~opts ops with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)


(* search mode: DIFF_SEARCH=1 dune exec test/test_differential.exe *)
let search () =
  let rand = Random.State.make [| 42 |] in
  let found = ref false in
  let len = ref 3 in
  while not !found && !len <= 60 do
    for _attempt = 0 to 1500 do
      if not !found then begin
        let ops = QCheck.Gen.generate1 ~rand QCheck.Gen.(list_size (return !len) gen_op) in
        match run_trace ~opts:Opts.cntr_default ops with
        | Some msg ->
            found := true;
            Printf.printf "MINIMAL TRACE (%d ops): %s\n" !len msg;
            List.iteri (fun i op -> Printf.printf "  %d: %s\n" i (pp_op op)) ops;
            (* replay and dump the first byte-level difference per file *)
            let fuse_sys, native_sys = boot_pair ~opts:Opts.cntr_default () in
            List.iter (fun op -> ignore (execute fuse_sys op); ignore (execute native_sys op)) ops;
            (* replay with a request logger *)
            (let clock = Clock.create () in
             let cost = Cost.default in
             let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
             let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
             let init = Kernel.init_proc k in
             List.iter (fun d -> ok (Kernel.mkdir k init d ~mode:0o777)) [ "/back" ];
             ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
             let server = Kernel.fork k init in
             let budget = Mem_budget.create ~limit_bytes:(32 * 1024 * 1024) in
             let session =
               Session.create ~kernel:k ~server_proc:server ~root_path:"/back"
                 ~opts:Opts.cntr_default ~budget ()
             in
             let real = Server.handle session.Session.server in
             Conn.set_handler session.Session.conn (fun ctx req ->
                 (match req with
                 | Protocol.Write { fh; off; data } ->
                     Printf.printf "    WRITE fh=%d off=%d len=%d first=%C\n" fh off
                       (String.length data)
                       (if data = "" then '?' else data.[0])
                 | Protocol.Lookup { parent; name } ->
                     Printf.printf "    LOOKUP parent=%d %s\n" parent name
                 | Protocol.Create { parent; name; _ } ->
                     Printf.printf "    CREATE parent=%d %s\n" parent name
                 | Protocol.Open { ino; _ } -> Printf.printf "    OPEN ino=%d\n" ino
                 | Protocol.Read { fh; off; len } ->
                     Printf.printf "    READ fh=%d off=%d len=%d\n" fh off len
                 | _ -> ());
                 real ctx req);
             ignore (ok (Kernel.mount_at k init ~fs:(Session.fs session) "/mnt"));
             let sys = { k; proc = init; base = "/mnt" } in
             List.iteri
               (fun i op ->
                 Printf.printf "  [op %d] %s\n" i (pp_op op);
                 ignore (execute sys op))
               ops;
             Printf.printf "  [fingerprint]\n";
             ignore (fingerprint sys);
             List.iter
               (fun (i, pg, c) -> Printf.printf "    pdata ino=%d page=%d first=%C\n" i pg c)
               (Driver.debug_pages session.Session.driver));
            (* also dump the fuse system's BACKING view to localize the bug *)
            (for slot = 0 to 7 do
              let rd base = Kernel.read_whole fuse_sys.k fuse_sys.proc (base ^ "/" ^ fname slot) in
              match (rd "/mnt", rd "/back") with
              | Ok a, Ok b when a <> b ->
                  let n = min (String.length a) (String.length b) in
                  let i = ref 0 in
                  while !i < n && a.[!i] = b.[!i] do incr i done;
                  Printf.printf "  f%d mount-vs-backing differs: len %d vs %d at %d (mnt=%C back=%C)\n"
                    slot (String.length a) (String.length b) !i
                    (if !i < String.length a then a.[!i] else '?')
                    (if !i < String.length b then b.[!i] else '?')
              | _ -> ()
            done);
            for slot = 0 to 7 do
              let rd sys = Kernel.read_whole sys.k sys.proc (sys.base ^ "/" ^ fname slot) in
              match (rd fuse_sys, rd native_sys) with
              | Ok a, Ok b when a <> b ->
                  let n = min (String.length a) (String.length b) in
                  let i = ref 0 in
                  while !i < n && a.[!i] = b.[!i] do incr i done;
                  Printf.printf
                    "  f%d differs: len %d vs %d, first diff at %d (cntrfs=%C native=%C)\n"
                    slot (String.length a) (String.length b) !i
                    (if !i < String.length a then a.[!i] else '?')
                    (if !i < String.length b then b.[!i] else '?')
              | _ -> ()
            done
        | None -> ()
      end
    done;
    len := !len + 4
  done;
  if not !found then print_endline "no divergence found"

let () =
  if Sys.getenv_opt "DIFF_SEARCH" = Some "1" then begin
    search ();
    exit 0
  end

let () =
  Alcotest.run "differential"
    [
      ( "cntrfs-vs-native",
        [
          QCheck_alcotest.to_alcotest
            (prop_differential ~name:"default options" ~opts:Opts.cntr_default ());
          QCheck_alcotest.to_alcotest
            (prop_differential ~name:"unoptimized options" ~opts:Opts.unoptimized ());
          QCheck_alcotest.to_alcotest
            (prop_differential ~name:"no writeback"
               ~opts:{ Opts.cntr_default with Opts.writeback = false } ());
          QCheck_alcotest.to_alcotest
            (prop_differential ~name:"tiny request sizes"
               ~opts:{ Opts.cntr_default with Opts.max_read = 4096; max_write = 4096; read_batch = 1 } ());
          (* pin the worker pool explicitly: the same traces must stay
             observationally identical when four CntrFS worker fibers
             contend for the request queue (and when one serves alone) *)
          QCheck_alcotest.to_alcotest
            (prop_differential ~name:"scheduler at 4 server threads" ~threads:4
               ~opts:Opts.cntr_default ());
          QCheck_alcotest.to_alcotest
            (prop_differential ~name:"single server thread" ~threads:1 ~count:30
               ~opts:Opts.cntr_default ());
          (* passthrough with a 4-grant LRU: opens churn the grant table,
             so reads/writes keep flipping between the capability and the
             round-trip path; eviction-driven revocation must never leak a
             stale byte into either view *)
          QCheck_alcotest.to_alcotest
            (prop_differential ~name:"passthrough (tiny grant LRU)"
               ~opts:{ Opts.cntr_default with Opts.passthrough = 4 } ());
        ] );
      ( "fault-injected",
        [
          (* crash + recovery mid-trace must be observationally invisible *)
          QCheck_alcotest.to_alcotest
            (prop_differential_faulted ~name:"crash + recover re-converges"
               ~opts:Opts.cntr_default ());
          QCheck_alcotest.to_alcotest
            (prop_differential_faulted ~name:"crash + recover (fastpath)" ~count:40
               ~opts:Opts.fastpath ());
          (* the ISSUE's acceptance leg: crash with passthrough grants live
             → driver-side revocation → recovery reopens without the
             capability → state re-converges with the native twin *)
          QCheck_alcotest.to_alcotest
            (prop_differential_faulted ~name:"crash + recover (passthrough)"
               ~opts:{ Opts.cntr_default with Opts.passthrough = 8 } ());
        ] );
      ( "metadata-fast-path",
        [
          (* the PR 2 coherence property: READDIRPLUS + TTL dentry/attr +
             negative dentries + the server handle cache must stay
             observationally equal to nativefs.  1-second TTLs never expire
             within a trace, so every answer the caches give is tested. *)
          QCheck_alcotest.to_alcotest
            (prop_differential ~count:500 ~name:"fastpath (1s TTLs)" ~opts:Opts.fastpath ());
          (* tiny TTLs + a 4-slot handle cache: entries expire mid-trace
             (every op consumes virtual time) and the LRU churns, so the
             expiry and eviction paths are the ones under test *)
          QCheck_alcotest.to_alcotest
            (prop_differential ~count:200 ~name:"fastpath (aggressive expiry + tiny LRU)"
               ~opts:
                 {
                   Opts.fastpath with
                   Opts.entry_timeout_ns = 50_000;
                   attr_timeout_ns = 30_000;
                   negative_timeout_ns = 20_000;
                   handle_cache = 4;
                 }
               ());
        ] );
    ]
