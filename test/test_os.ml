(* Tests for the simulated kernel: path walking across mounts, chroot,
   namespaces, fds, pipes, sockets, epoll, /proc, /dev, exec. *)

open Repro_util
open Repro_vfs
open Repro_os

let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

let errno = Alcotest.testable Errno.pp ( = )

let check_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> Alcotest.check errno "errno" expected e

let ok = Errno.ok_exn

(* A small world: kernel with a RAM root fs and /dev, /proc mounted. *)
let boot () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  List.iter
    (fun d -> ok (Kernel.mkdir k init d ~mode:0o755))
    [ "/dev"; "/proc"; "/tmp"; "/etc"; "/usr"; "/usr/bin" ];
  ok (Kernel.chmod k init "/tmp" 0o1777);
  let devfs = Devfs.create ~kernel:k in
  ignore (ok (Kernel.mount_at k init ~fs:(Nativefs.ops devfs) "/dev"));
  let procfs = Procfs.create ~kernel:k ~pidns:init.Proc.ns.Proc.pid_ns in
  ignore (ok (Kernel.mount_at k init ~fs:(Procfs.ops procfs) "/proc"));
  (k, init)

let write_file k proc path content =
  let fd = ok (Kernel.open_ k proc path [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] ~mode:0o755) in
  ignore (ok (Kernel.write k proc fd content));
  ok (Kernel.close k proc fd)

let read_file k proc path =
  ok (Kernel.read_whole k proc path)

(* --- basic file I/O ------------------------------------------------------ *)

let test_open_write_read () =
  let k, init = boot () in
  write_file k init "/tmp/hello" "world";
  check_s "read back" "world" (read_file k init "/tmp/hello");
  let st = ok (Kernel.stat k init "/tmp/hello") in
  check_i "size" 5 st.Types.st_size;
  check_err Errno.ENOENT (Kernel.stat k init "/tmp/nope")

let test_offsets_and_lseek () =
  let k, init = boot () in
  write_file k init "/tmp/f" "0123456789";
  let fd = ok (Kernel.open_ k init "/tmp/f" [ Types.O_RDONLY ] ~mode:0) in
  check_s "first" "012" (ok (Kernel.read k init fd ~len:3));
  check_s "cursor advanced" "345" (ok (Kernel.read k init fd ~len:3));
  check_i "seek" 8 (ok (Kernel.lseek k init fd (Kernel.SEEK_SET 8)));
  check_s "after seek" "89" (ok (Kernel.read k init fd ~len:10));
  check_i "seek end" 10 (ok (Kernel.lseek k init fd (Kernel.SEEK_END 0)));
  check_i "seek cur" 7 (ok (Kernel.lseek k init fd (Kernel.SEEK_CUR (-3))));
  ok (Kernel.close k init fd);
  check_err Errno.EBADF (Kernel.read k init fd ~len:1)

let test_append_mode () =
  let k, init = boot () in
  write_file k init "/tmp/log" "a";
  let fd = ok (Kernel.open_ k init "/tmp/log" [ Types.O_WRONLY; Types.O_APPEND ] ~mode:0) in
  ignore (ok (Kernel.write k init fd "b"));
  ignore (ok (Kernel.write k init fd "c"));
  ok (Kernel.close k init fd);
  check_s "appended" "abc" (read_file k init "/tmp/log")

let test_o_excl_and_trunc () =
  let k, init = boot () in
  write_file k init "/tmp/f" "data";
  check_err Errno.EEXIST
    (Kernel.open_ k init "/tmp/f" [ Types.O_CREAT; Types.O_EXCL; Types.O_WRONLY ] ~mode:0o644);
  let fd = ok (Kernel.open_ k init "/tmp/f" [ Types.O_WRONLY; Types.O_TRUNC ] ~mode:0) in
  ok (Kernel.close k init fd);
  check_i "truncated" 0 (ok (Kernel.stat k init "/tmp/f")).Types.st_size

let test_fork_shares_offset () =
  let k, init = boot () in
  write_file k init "/tmp/f" "0123456789";
  let fd = ok (Kernel.open_ k init "/tmp/f" [ Types.O_RDONLY ] ~mode:0) in
  let child = Kernel.fork k init in
  check_s "parent reads" "012" (ok (Kernel.read k init fd ~len:3));
  check_s "child continues at shared offset" "345" (ok (Kernel.read k child fd ~len:3));
  Kernel.exit k child 0;
  check_s "still open in parent" "678" (ok (Kernel.read k init fd ~len:3))

let test_umask () =
  let k, init = boot () in
  init.Proc.umask <- 0o027;
  write_file k init "/tmp/f" "x";
  let st = ok (Kernel.stat k init "/tmp/f") in
  check_i "umask applied" 0o750 st.Types.st_mode

(* --- symlinks and walking ------------------------------------------------ *)

let test_symlink_walk () =
  let k, init = boot () in
  ok (Kernel.mkdir k init "/data" ~mode:0o755);
  write_file k init "/data/f" "payload";
  ok (Kernel.symlink k init ~target:"/data" ~linkpath:"/lnk");
  check_s "through symlink" "payload" (read_file k init "/lnk/f");
  ok (Kernel.symlink k init ~target:"f" ~linkpath:"/data/rel");
  check_s "relative symlink" "payload" (read_file k init "/data/rel");
  let st = ok (Kernel.lstat k init "/lnk") in
  check_b "lstat sees link" true (st.Types.st_kind = Types.Symlink);
  let st = ok (Kernel.stat k init "/lnk") in
  check_b "stat follows" true (st.Types.st_kind = Types.Dir)

let test_symlink_loop () =
  let k, init = boot () in
  ok (Kernel.symlink k init ~target:"/b" ~linkpath:"/a");
  ok (Kernel.symlink k init ~target:"/a" ~linkpath:"/b");
  check_err Errno.ELOOP (Kernel.stat k init "/a/x")

let test_dotdot_walk () =
  let k, init = boot () in
  ok (Kernel.mkdir k init "/a" ~mode:0o755);
  ok (Kernel.mkdir k init "/a/b" ~mode:0o755);
  write_file k init "/etc/conf" "c";
  check_s "dotdot" "c" (read_file k init "/a/b/../../etc/conf");
  check_s "dotdot above root clamps" "c" (read_file k init "/../../etc/conf")

(* --- mounts --------------------------------------------------------------- *)

let test_mount_and_cross () =
  let k, init = boot () in
  let extra = Nativefs.create ~name:"extra" ~clock:k.Kernel.clock ~cost:k.Kernel.cost Store.Ram () in
  ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
  ignore (ok (Kernel.mount_at k init ~fs:(Nativefs.ops extra) "/mnt"));
  write_file k init "/mnt/inside" "in-extra";
  (* the file lives in the mounted fs, not the root fs *)
  let root_entries = ok (Kernel.readdir k init "/") |> List.map (fun e -> e.Types.d_name) in
  check_b "root unchanged" false (List.mem "inside" root_entries);
  check_s "visible through mount" "in-extra" (read_file k init "/mnt/inside");
  (* ".." from inside the mount crosses back to the parent fs *)
  check_b "dotdot crosses mount" true
    (List.mem "etc" (ok (Kernel.readdir k init "/mnt/..") |> List.map (fun e -> e.Types.d_name)))

let test_bind_mount () =
  let k, init = boot () in
  ok (Kernel.mkdir k init "/a" ~mode:0o755);
  write_file k init "/a/f" "shared";
  ok (Kernel.mkdir k init "/b" ~mode:0o755);
  ignore (ok (Kernel.bind_mount k init ~src:"/a" ~dst:"/b"));
  check_s "bind visible" "shared" (read_file k init "/b/f");
  (* writes through the bind alias hit the same file *)
  write_file k init "/b/g" "via-b";
  check_s "write through bind" "via-b" (read_file k init "/a/g");
  (* file-over-file bind *)
  write_file k init "/etc/passwd" "root:0";
  write_file k init "/tmp/passwd" "other";
  ignore (ok (Kernel.bind_mount k init ~src:"/etc/passwd" ~dst:"/tmp/passwd"));
  check_s "file bind" "root:0" (read_file k init "/tmp/passwd")

let test_umount () =
  let k, init = boot () in
  let extra = Nativefs.create ~name:"extra" ~clock:k.Kernel.clock ~cost:k.Kernel.cost Store.Ram () in
  ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
  ignore (ok (Kernel.mount_at k init ~fs:(Nativefs.ops extra) "/mnt"));
  write_file k init "/mnt/x" "1";
  ok (Kernel.umount k init "/mnt");
  check_err Errno.ENOENT (Kernel.stat k init "/mnt/x");
  (* umounting a non-mount-root is EINVAL *)
  check_err Errno.EINVAL (Kernel.umount k init "/etc")

let test_chroot_confinement () =
  let k, init = boot () in
  ok (Kernel.mkdir k init "/jail" ~mode:0o755);
  ok (Kernel.mkdir k init "/jail/etc" ~mode:0o755);
  write_file k init "/jail/etc/hosts" "jailed";
  write_file k init "/etc/hosts" "host";
  let child = Kernel.fork k init in
  ok (Kernel.chroot k child "/jail");
  check_s "sees jailed file" "jailed" (read_file k child "/etc/hosts");
  check_s "dotdot cannot escape" "jailed" (read_file k child "/../../etc/hosts");
  (* the parent is unaffected *)
  check_s "parent unaffected" "host" (read_file k init "/etc/hosts")

let test_mount_ns_isolation () =
  let k, init = boot () in
  ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
  let child = Kernel.fork k init in
  ok (Kernel.unshare k child [ Namespace.Mnt ]);
  ok (Kernel.make_rprivate k child);
  let extra = Nativefs.create ~name:"extra" ~clock:k.Kernel.clock ~cost:k.Kernel.cost Store.Ram () in
  ignore (ok (Kernel.mount_at k child ~fs:(Nativefs.ops extra) "/mnt"));
  write_file k child "/mnt/secret" "s";
  (* invisible from the parent namespace *)
  check_err Errno.ENOENT (Kernel.stat k init "/mnt/secret");
  check_s "visible in child" "s" (read_file k child "/mnt/secret")

let test_shared_propagation () =
  let k, init = boot () in
  ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
  (* clone the namespace while the root is still shared *)
  let child = Kernel.fork k init in
  ok (Kernel.unshare k child [ Namespace.Mnt ]);
  (* host mounts something: the shared peer group propagates it *)
  let extra = Nativefs.create ~name:"extra" ~clock:k.Kernel.clock ~cost:k.Kernel.cost Store.Ram () in
  ignore (ok (Kernel.mount_at k init ~fs:(Nativefs.ops extra) "/mnt"));
  write_file k init "/mnt/x" "prop";
  check_s "propagated into clone" "prop" (read_file k child "/mnt/x")

(* --- namespaces ----------------------------------------------------------- *)

let test_setns () =
  let k, init = boot () in
  let target = Kernel.fork k init in
  ok (Kernel.unshare k target [ Namespace.Mnt; Namespace.Uts; Namespace.Pid ]);
  ok (Kernel.sethostname k target "container");
  let joiner = Kernel.fork k init in
  ok (Kernel.setns k joiner ~target_pid:target.Proc.pid [ Namespace.Uts; Namespace.Mnt ]);
  check_s "joined uts" "container" (Kernel.gethostname k joiner);
  check_b "joined mnt ns" true
    (joiner.Proc.ns.Proc.mnt.Mount.ns_id = target.Proc.ns.Proc.mnt.Mount.ns_id);
  check_b "pid ns not joined" true
    (joiner.Proc.ns.Proc.pid_ns.Namespace.pns_id <> target.Proc.ns.Proc.pid_ns.Namespace.pns_id)

let test_setns_requires_admin () =
  let k, init = boot () in
  let target = Kernel.fork k init in
  let unpriv = Kernel.fork k init in
  unpriv.Proc.cred.Proc.uid <- 1000;
  unpriv.Proc.cred.Proc.caps <- Caps.Set.empty;
  check_err Errno.EPERM (Kernel.setns k unpriv ~target_pid:target.Proc.pid [ Namespace.Mnt ])

(* --- /proc ---------------------------------------------------------------- *)

let test_procfs_status_env () =
  let k, init = boot () in
  let child = Kernel.fork k init in
  child.Proc.comm <- "myapp";
  Proc.setenv child "FOO" "bar";
  let status = read_file k init (Printf.sprintf "/proc/%d/status" child.Proc.pid) in
  check_b "status has name" true
    (String.length status > 0 && String.sub status 0 11 = "Name:\tmyapp");
  let environ = read_file k init (Printf.sprintf "/proc/%d/environ" child.Proc.pid) in
  check_b "environ has FOO" true
    (String.split_on_char '\000' environ |> List.exists (fun s -> s = "FOO=bar"))

let test_procfs_ns_ids () =
  let k, init = boot () in
  let child = Kernel.fork k init in
  (* ns entries are magic symlinks: their readlink text is the ns tag *)
  let before = ok (Kernel.readlink k init (Printf.sprintf "/proc/%d/ns/uts" child.Proc.pid)) in
  ok (Kernel.unshare k child [ Namespace.Uts ]);
  let after = ok (Kernel.readlink k init (Printf.sprintf "/proc/%d/ns/uts" child.Proc.pid)) in
  check_b "uts ns id changed" true (before <> after);
  let mnt = ok (Kernel.readlink k init (Printf.sprintf "/proc/%d/ns/mnt" child.Proc.pid)) in
  check_b "mnt tag format" true (String.sub mnt 0 5 = "mnt:[")

let test_procfs_pidns_scoping () =
  let k, init = boot () in
  let cont = Kernel.fork k init in
  ok (Kernel.unshare k cont [ Namespace.Pid ]);
  let inner = Kernel.fork k cont in
  (* container-scoped procfs shows inner but not init *)
  let cproc = Procfs.create ~kernel:k ~pidns:cont.Proc.ns.Proc.pid_ns in
  ok (Kernel.mkdir k init "/cproc" ~mode:0o755);
  ignore (ok (Kernel.mount_at k init ~fs:(Procfs.ops cproc) "/cproc"));
  let names = ok (Kernel.readdir k init "/cproc") |> List.map (fun e -> e.Types.d_name) in
  check_b "inner visible" true (List.mem (string_of_int inner.Proc.pid) names);
  check_b "init hidden" false (List.mem "1" names);
  (* host procfs sees the container's processes (pid ns hierarchy) *)
  let host_names = ok (Kernel.readdir k init "/proc") |> List.map (fun e -> e.Types.d_name) in
  check_b "host sees inner" true (List.mem (string_of_int inner.Proc.pid) host_names)

let test_procfs_readonly () =
  let k, init = boot () in
  check_err Errno.EPERM (Kernel.mkdir k init "/proc/foo" ~mode:0o755);
  check_err Errno.EPERM
    (Kernel.open_ k init "/proc/1/status" [ Types.O_WRONLY ] ~mode:0
    |> function Ok fd -> Kernel.write k init fd "x" | Error e -> Error e)

(* --- /dev ------------------------------------------------------------------ *)

let test_devices () =
  let k, init = boot () in
  let fd = ok (Kernel.open_ k init "/dev/zero" [ Types.O_RDONLY ] ~mode:0) in
  check_s "zero" (String.make 4 '\000') (ok (Kernel.read k init fd ~len:4));
  ok (Kernel.close k init fd);
  let fd = ok (Kernel.open_ k init "/dev/null" [ Types.O_RDWR ] ~mode:0) in
  check_i "null swallows" 5 (ok (Kernel.write k init fd "hello"));
  check_s "null eof" "" (ok (Kernel.read k init fd ~len:4));
  ok (Kernel.close k init fd)

(* --- pipes, splice, sockets, epoll ----------------------------------------- *)

let test_pipe () =
  let k, init = boot () in
  let rfd, wfd = Kernel.pipe k init in
  check_i "write" 5 (ok (Kernel.write k init wfd "hello"));
  check_s "read" "hel" (ok (Kernel.read k init rfd ~len:3));
  check_err Errno.EAGAIN
    (match Kernel.read k init rfd ~len:10 with
    | Ok "lo" -> Kernel.read k init rfd ~len:10
    | other -> other);
  ok (Kernel.close k init wfd);
  check_s "eof after writer close" "" (ok (Kernel.read k init rfd ~len:10));
  ok (Kernel.close k init rfd)

let test_pipe_epipe () =
  let k, init = boot () in
  let rfd, wfd = Kernel.pipe k init in
  ok (Kernel.close k init rfd);
  check_err Errno.EPIPE (Kernel.write k init wfd "x")

let test_unix_socket () =
  let k, init = boot () in
  let lfd = ok (Kernel.socket_listen k init "/tmp/sock") in
  let st = ok (Kernel.stat k init "/tmp/sock") in
  check_b "socket file" true (st.Types.st_kind = Types.Sock);
  check_err Errno.EADDRINUSE (Kernel.socket_listen k init "/tmp/sock");
  let cfd = ok (Kernel.socket_connect k init "/tmp/sock") in
  let sfd = ok (Kernel.socket_accept k init lfd) in
  ignore (ok (Kernel.write k init cfd "ping"));
  check_s "server receives" "ping" (ok (Kernel.read k init sfd ~len:10));
  ignore (ok (Kernel.write k init sfd "pong"));
  check_s "client receives" "pong" (ok (Kernel.read k init cfd ~len:10));
  ok (Kernel.close k init cfd);
  check_s "eof after close" "" (ok (Kernel.read k init sfd ~len:10))

let test_socket_connect_refused () =
  let k, init = boot () in
  write_file k init "/tmp/notsock" "x";
  check_err Errno.ECONNREFUSED (Kernel.socket_connect k init "/tmp/notsock");
  check_err Errno.ENOENT (Kernel.socket_connect k init "/tmp/missing")

let test_splice_pipe_to_socket () =
  let k, init = boot () in
  let lfd = ok (Kernel.socket_listen k init "/tmp/s") in
  let cfd = ok (Kernel.socket_connect k init "/tmp/s") in
  let sfd = ok (Kernel.socket_accept k init lfd) in
  let rfd, wfd = Kernel.pipe k init in
  ignore (ok (Kernel.write k init wfd "spliced-data"));
  let n = ok (Kernel.splice k init ~fd_in:rfd ~fd_out:cfd ~len:1024) in
  check_i "moved" 12 n;
  check_s "arrived" "spliced-data" (ok (Kernel.read k init sfd ~len:100))

let test_epoll () =
  let k, init = boot () in
  let rfd, wfd = Kernel.pipe k init in
  let epfd = Kernel.epoll_create k init in
  ok (Kernel.epoll_add k init ~epfd ~fd:rfd ~interest:{ Epoll.want_in = true; want_out = false });
  check_i "not ready" 0 (List.length (ok (Kernel.epoll_wait k init epfd)));
  ignore (ok (Kernel.write k init wfd "x"));
  let evs = ok (Kernel.epoll_wait k init epfd) in
  check_i "ready" 1 (List.length evs);
  check_i "right fd" rfd (List.hd evs).Epoll.ev_fd;
  ignore (ok (Kernel.read k init rfd ~len:10));
  check_i "drained" 0 (List.length (ok (Kernel.epoll_wait k init epfd)))

let test_epoll_edge_rearm () =
  let k, init = boot () in
  let rfd, wfd = Kernel.pipe k init in
  let epfd = Kernel.epoll_create k init in
  ok (Kernel.epoll_add k init ~epfd ~fd:rfd ~interest:{ Epoll.want_in = true; want_out = false });
  ignore (ok (Kernel.write k init wfd "ab"));
  check_i "edge reported once" 1 (List.length (ok (Kernel.epoll_wait_edge k init epfd)));
  (* still ready, but no new edge: not reported again *)
  check_i "no repeat while level-high" 0 (List.length (ok (Kernel.epoll_wait_edge k init epfd)));
  (* a partial drain leaves the fd readable — still no edge... *)
  check_s "partial drain" "a" (ok (Kernel.read k init rfd ~len:1));
  check_i "partial drain is not an edge" 0 (List.length (ok (Kernel.epoll_wait_edge k init epfd)));
  (* ...unless the waiter re-arms (EPOLL_CTL_MOD idiom) *)
  ok (Kernel.epoll_rearm k init ~epfd ~fd:rfd);
  check_i "rearm re-reports pending data" 1 (List.length (ok (Kernel.epoll_wait_edge k init epfd)));
  (* a full drain followed by a refill is a genuine new edge *)
  check_s "full drain" "b" (ok (Kernel.read k init rfd ~len:4));
  check_i "empty" 0 (List.length (ok (Kernel.epoll_wait_edge k init epfd)));
  ignore (ok (Kernel.write k init wfd "c"));
  check_i "refill is a new edge" 1 (List.length (ok (Kernel.epoll_wait_edge k init epfd)))

let test_epoll_closed_fds () =
  let k, init = boot () in
  let rfd, wfd = Kernel.pipe k init in
  let epfd = Kernel.epoll_create k init in
  ok (Kernel.epoll_add k init ~epfd ~fd:rfd ~interest:{ Epoll.want_in = true; want_out = false });
  ignore (ok (Kernel.write k init wfd "x"));
  (* closing a watched fd silently drops it from the interest set *)
  ok (Kernel.close k init rfd);
  check_i "closed fd not reported" 0 (List.length (ok (Kernel.epoll_wait k init epfd)));
  check_i "nor as an edge" 0 (List.length (ok (Kernel.epoll_wait_edge k init epfd)));
  (* waiting on a closed epoll fd is an error, not a hang *)
  ok (Kernel.close k init epfd);
  check_err Errno.EBADF (Kernel.epoll_wait k init epfd);
  check_err Errno.EBADF (Kernel.epoll_wait_edge k init epfd)

let test_accept_backlog_exhaustion () =
  let k, init = boot () in
  let lfd = ok (Kernel.socket_listen ~backlog:1 k init "/tmp/busy.sock") in
  let cfd1 = ok (Kernel.socket_connect k init "/tmp/busy.sock") in
  (* the queue of not-yet-accepted connections is full *)
  check_err Errno.ECONNREFUSED (Kernel.socket_connect k init "/tmp/busy.sock");
  (* accepting frees a backlog slot *)
  let _sfd1 = ok (Kernel.socket_accept k init lfd) in
  let cfd2 = ok (Kernel.socket_connect k init "/tmp/busy.sock") in
  let sfd2 = ok (Kernel.socket_accept k init lfd) in
  ignore (ok (Kernel.write k init cfd2 "ok"));
  check_s "post-backlog connection works" "ok" (ok (Kernel.read k init sfd2 ~len:8));
  ok (Kernel.close k init cfd1)

let test_write_peer_closed_socket () =
  let k, init = boot () in
  let lfd = ok (Kernel.socket_listen k init "/tmp/peer.sock") in
  let cfd = ok (Kernel.socket_connect k init "/tmp/peer.sock") in
  let sfd = ok (Kernel.socket_accept k init lfd) in
  ok (Kernel.close k init sfd);
  check_err Errno.EPIPE (Kernel.write k init cfd "too late");
  (* half-close is gentler: reads still drain, but writes are refused *)
  let cfd2 = ok (Kernel.socket_connect k init "/tmp/peer.sock") in
  let sfd2 = ok (Kernel.socket_accept k init lfd) in
  ignore (ok (Kernel.write k init sfd2 "parting"));
  ok (Kernel.shutdown_write k init cfd2);
  check_err Errno.EPIPE (Kernel.write k init cfd2 "no more");
  check_s "inbound still drains" "parting" (ok (Kernel.read k init cfd2 ~len:16));
  check_s "then EOF" "" (ok (Kernel.read k init sfd2 ~len:16))

(* --- exec ------------------------------------------------------------------ *)

let test_exec () =
  let k, init = boot () in
  Kernel.register_program k "hello" (fun _k _p args ->
      match args with _ :: rest -> List.length rest | [] -> 99);
  write_file k init "/usr/bin/hello" (Binfmt.make ~prog:"hello" ());
  check_i "exit code" 2 (ok (Kernel.exec k init "/usr/bin/hello" [ "hello"; "a"; "b" ]));
  (* non-executable file *)
  ok (Kernel.chmod k init "/usr/bin/hello" 0o644);
  let unpriv = Kernel.fork k init in
  unpriv.Proc.cred.Proc.uid <- 1000;
  unpriv.Proc.cred.Proc.caps <- Caps.Set.empty;
  check_err Errno.EACCES (Kernel.exec k unpriv "/usr/bin/hello" [ "hello" ])

let test_exec_script () =
  let k, init = boot () in
  let log = ref [] in
  Kernel.register_program k "sh" (fun _k _p args ->
      log := args;
      0);
  write_file k init "/usr/bin/sh" (Binfmt.make ~prog:"sh" ());
  write_file k init "/tmp/script" "#!/usr/bin/sh\necho hi\n";
  check_i "script runs" 0 (ok (Kernel.exec k init "/tmp/script" [ "script" ]));
  check_b "interpreter got script path" true (List.mem "/tmp/script" !log)

let test_exec_unknown () =
  let k, init = boot () in
  write_file k init "/tmp/junk" "not a binary";
  check_err Errno.ENOSYS (Kernel.exec k init "/tmp/junk" [ "junk" ])

(* --- cgroups, rlimits, hostname -------------------------------------------- *)

let test_cgroups () =
  let k, init = boot () in
  let child = Kernel.fork k init in
  Kernel.cgroup_attach k child ~cgroup:"/docker/abc";
  check_b "in cgroup" true (List.mem child.Proc.pid (Kernel.cgroup_procs k "/docker/abc"));
  check_b "left root" false (List.mem child.Proc.pid (Kernel.cgroup_procs k "/"));
  let cg = read_file k init (Printf.sprintf "/proc/%d/cgroup" child.Proc.pid) in
  check_s "procfs cgroup" "0::/docker/abc\n" cg

let test_rlimit_fsize_via_kernel () =
  let k, init = boot () in
  let child = Kernel.fork k init in
  child.Proc.cred.Proc.uid <- 1000;
  child.Proc.cred.Proc.caps <- Caps.Set.empty;
  Kernel.set_rlimit_fsize k child (Some 4);
  write_file k init "/tmp/f" "";
  ok (Kernel.chmod k init "/tmp/f" 0o666);
  let fd = ok (Kernel.open_ k child "/tmp/f" [ Types.O_WRONLY ] ~mode:0) in
  check_err Errno.EFBIG (Kernel.write k child fd "12345678");
  ok (Kernel.close k child fd)

let test_hostname_per_uts () =
  let k, init = boot () in
  check_s "default" "host" (Kernel.gethostname k init);
  let child = Kernel.fork k init in
  ok (Kernel.unshare k child [ Namespace.Uts ]);
  ok (Kernel.sethostname k child "inner");
  check_s "child" "inner" (Kernel.gethostname k child);
  check_s "host unchanged" "host" (Kernel.gethostname k init)

let test_exit_closes_fds () =
  let k, init = boot () in
  let child = Kernel.fork k init in
  let rfd, wfd = Kernel.pipe k child in
  ignore (rfd);
  ignore (ok (Kernel.write k child wfd "x"));
  Kernel.exit k child 7;
  check_b "dead" false child.Proc.alive;
  check_b "exit code" true (child.Proc.exit_code = Some 7);
  check_err Errno.ESRCH (Kernel.proc_by_pid k child.Proc.pid)

let () =
  Alcotest.run "os"
    [
      ( "file-io",
        [
          Alcotest.test_case "open/write/read" `Quick test_open_write_read;
          Alcotest.test_case "offsets & lseek" `Quick test_offsets_and_lseek;
          Alcotest.test_case "append" `Quick test_append_mode;
          Alcotest.test_case "O_EXCL/O_TRUNC" `Quick test_o_excl_and_trunc;
          Alcotest.test_case "fork shares offset" `Quick test_fork_shares_offset;
          Alcotest.test_case "umask" `Quick test_umask;
        ] );
      ( "walking",
        [
          Alcotest.test_case "symlinks" `Quick test_symlink_walk;
          Alcotest.test_case "symlink loop" `Quick test_symlink_loop;
          Alcotest.test_case "dotdot" `Quick test_dotdot_walk;
        ] );
      ( "mounts",
        [
          Alcotest.test_case "mount & cross" `Quick test_mount_and_cross;
          Alcotest.test_case "bind mount" `Quick test_bind_mount;
          Alcotest.test_case "umount" `Quick test_umount;
          Alcotest.test_case "chroot confinement" `Quick test_chroot_confinement;
          Alcotest.test_case "mount ns isolation" `Quick test_mount_ns_isolation;
          Alcotest.test_case "shared propagation" `Quick test_shared_propagation;
        ] );
      ( "namespaces",
        [
          Alcotest.test_case "setns" `Quick test_setns;
          Alcotest.test_case "setns requires admin" `Quick test_setns_requires_admin;
        ] );
      ( "procfs",
        [
          Alcotest.test_case "status & environ" `Quick test_procfs_status_env;
          Alcotest.test_case "ns ids" `Quick test_procfs_ns_ids;
          Alcotest.test_case "pidns scoping" `Quick test_procfs_pidns_scoping;
          Alcotest.test_case "readonly" `Quick test_procfs_readonly;
        ] );
      ( "devices",
        [ Alcotest.test_case "zero/null" `Quick test_devices ] );
      ( "ipc",
        [
          Alcotest.test_case "pipe" `Quick test_pipe;
          Alcotest.test_case "pipe EPIPE" `Quick test_pipe_epipe;
          Alcotest.test_case "unix socket" `Quick test_unix_socket;
          Alcotest.test_case "connect refused" `Quick test_socket_connect_refused;
          Alcotest.test_case "splice" `Quick test_splice_pipe_to_socket;
          Alcotest.test_case "epoll" `Quick test_epoll;
          Alcotest.test_case "epoll edge rearm" `Quick test_epoll_edge_rearm;
          Alcotest.test_case "epoll closed fds" `Quick test_epoll_closed_fds;
          Alcotest.test_case "accept backlog exhaustion" `Quick test_accept_backlog_exhaustion;
          Alcotest.test_case "write to peer-closed socket" `Quick test_write_peer_closed_socket;
        ] );
      ( "exec",
        [
          Alcotest.test_case "binary" `Quick test_exec;
          Alcotest.test_case "script" `Quick test_exec_script;
          Alcotest.test_case "unknown format" `Quick test_exec_unknown;
        ] );
      ( "misc",
        [
          Alcotest.test_case "cgroups" `Quick test_cgroups;
          Alcotest.test_case "rlimit fsize" `Quick test_rlimit_fsize_via_kernel;
          Alcotest.test_case "hostname per uts" `Quick test_hostname_per_uts;
          Alcotest.test_case "exit closes fds" `Quick test_exit_closes_fds;
        ] );
    ]
