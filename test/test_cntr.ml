(* End-to-end tests of the CNTR attach workflow (§3.2): all four steps, on
   all four container engines, for all three §2.4 use cases — plus
   isolation, credentials and socket-proxy behavior. *)

open Repro_util
open Repro_os
open Repro_runtime
open Repro_cntr
module Proxy = Repro_proxy.Proxy

let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

let errno = Alcotest.testable Errno.pp ( = )

let check_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> Alcotest.check errno "errno" expected e

let ok = Errno.ok_exn

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Boot a testbed with an nginx application container under docker. *)
let boot_with_app () =
  let world = Testbed.create () in
  let app =
    ok (World.run_container world ~engine:(World.docker world) ~name:"web" ~image_ref:"nginx:latest" ())
  in
  (world, app)

(* --- step #1: resolution & context ----------------------------------------- *)

let test_resolve_and_context () =
  let world, app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let ctx = Attach.context session in
  check_i "resolved the app pid" (Container.pid app) ctx.Context.cx_pid;
  check_b "captured docker caps" true (Caps.Set.equal ctx.Context.cx_caps Caps.Set.docker_default);
  check_b "captured env" true (List.mem_assoc "nginx_MODE" ctx.Context.cx_env);
  check_b "captured cgroup" true (contains ~needle:"/docker/" ctx.Context.cx_cgroup);
  check_b "captured lsm profile" true (ctx.Context.cx_lsm_profile = Some "docker-default");
  Attach.detach session

let test_resolve_by_id_prefix () =
  let world, app = boot_with_app () in
  let prefix = String.sub app.Container.ct_id 0 12 in
  let session = ok (Testbed.attach world prefix) in
  check_i "same container" (Container.pid app) (Attach.context session).Context.cx_pid;
  Attach.detach session

let test_unknown_container () =
  let world = Testbed.create () in
  check_err Errno.ENOENT (Testbed.attach world "no-such-container")

(* --- the nested namespace view --------------------------------------------- *)

let test_tools_from_host_visible () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  (* `which gdb` resolves through CntrFS to the host's gdb *)
  let code, out = Attach.run session "which gdb" in
  check_i "which ok" 0 code;
  check_s "host gdb path" "/usr/bin/gdb\n" out;
  (* and it runs *)
  let code, out = Attach.run session "gdb" in
  check_i "gdb runs" 0 code;
  check_b "gdb banner" true (contains ~needle:"GNU gdb" out);
  Attach.detach session

let test_app_fs_under_var_lib_cntr () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let code, out = Attach.run session "ls /var/lib/cntr/usr/sbin" in
  check_i "ls ok" 0 code;
  check_b "app binary visible" true (contains ~needle:"nginx" out);
  let _code, out = Attach.run session "cat /var/lib/cntr/etc/nginx.conf" in
  check_b "app config readable" true (contains ~needle:"listen=0.0.0.0" out);
  Attach.detach session

let test_config_files_bound_from_app () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  (* /etc/passwd inside the session is the *application's*, not the
     host's (the host user would be wrong for the app) *)
  let _code, out = Attach.run session "cat /etc/os-release" in
  (* os-release is NOT in the bind list: comes from the host (tools side) *)
  check_b "tools os-release" true (contains ~needle:"coreos" out);
  let _code, out = Attach.run session "cat /etc/hostname" in
  check_b "app hostname file" true (contains ~needle:"debian" out);
  Attach.detach session

let test_env_applied_except_path () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let _code, out = Attach.run session "env" in
  check_b "app env var present" true (contains ~needle:"nginx_MODE=production" out);
  (* PATH must be the tools-side PATH, not the container's *)
  check_b "PATH from tools side" true
    (contains ~needle:"PATH=/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin" out);
  Attach.detach session

let test_credentials_dropped () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  check_b "caps reduced to container's" true
    (Caps.Set.equal session.Attach.sn_shell_proc.Proc.cred.Proc.caps Caps.Set.docker_default);
  check_b "lsm applied" true
    (session.Attach.sn_shell_proc.Proc.lsm_profile = Some "docker-default");
  (* joined the container's cgroup *)
  check_b "cgroup joined" true
    (contains ~needle:"/docker/" session.Attach.sn_shell_proc.Proc.cgroup);
  Attach.detach session

let test_same_proc_view_gdb_attach () =
  let world, app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  (* the app's pid is visible through the bound /proc, so gdb can attach *)
  let code, out = Attach.run session (Printf.sprintf "gdb -p %d" (Container.pid app)) in
  check_i "gdb attach ok" 0 code;
  check_b "attached" true (contains ~needle:"attached" out);
  (* ps inside the session lists the app process, not the host's init *)
  let _code, out = Attach.run session "ps" in
  check_b "sees app" true (contains ~needle:"nginx" out);
  Attach.detach session

let test_hostname_is_containers () =
  let world, app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let _code, out = Attach.run session "hostname" in
  check_b "uts namespace joined" true
    (contains ~needle:(String.sub app.Container.ct_id 0 12) out);
  Attach.detach session

(* --- isolation --------------------------------------------------------------- *)

let test_nested_mounts_invisible_to_app () =
  let world, app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  (* inside the session, / is the tools fs *)
  let _code, out = Attach.run session "ls /usr/bin" in
  check_b "session sees tools" true (contains ~needle:"gdb" out);
  (* the application's own namespace must NOT see the nested mounts: the
     mountpoint dir exists (it was created in the shared fs) but nothing is
     mounted on it *)
  let k = world.World.kernel in
  let app_proc = app.Container.ct_main in
  check_err Errno.ENOENT (Kernel.stat k app_proc (Attach.tmp_mountpoint ^ "/usr/bin/gdb"));
  (* and the app never gained a /var/lib/cntr view of itself *)
  check_err Errno.ENOENT (Kernel.stat k app_proc "/var/lib/cntr/etc/nginx.conf");
  Attach.detach session

let test_edit_config_in_place () =
  let world, app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  (* §7 workflow: edit the app's config through /var/lib/cntr *)
  let code, _ = Attach.run session "vi /var/lib/cntr/etc/nginx.conf" in
  check_i "edit ok" 0 code;
  (* the change is visible inside the application container itself *)
  let content = ok (Kernel.read_whole world.World.kernel app.Container.ct_main "/etc/nginx.conf") in
  check_b "app sees edit" true (contains ~needle:"edited with vi" content);
  Attach.detach session

let test_detach_leaves_app_running () =
  let world, app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  Attach.detach session;
  check_b "app alive" true (Container.is_running app);
  check_b "shell dead" false session.Attach.sn_shell_proc.Proc.alive;
  check_b "server dead" false session.Attach.sn_server_proc.Proc.alive;
  (* the app can still use its filesystem *)
  let content = ok (Kernel.read_whole world.World.kernel app.Container.ct_main "/etc/nginx.conf") in
  check_b "app fs intact" true (contains ~needle:"listen" content)

(* --- container-to-container (fat image) ------------------------------------- *)

let test_fat_container_tools () =
  let world, _app = boot_with_app () in
  let _fat =
    ok
      (World.run_container world ~engine:(World.docker world) ~name:"debug"
         ~image_ref:"cntr/debug-tools:latest" ())
  in
  let session =
    ok
      (Testbed.attach world
         ~config:
           {
             Attach.Config.default with
             Attach.Config.tools = Attach.From_container "debug";
           }
         "web")
  in
  let code, out = Attach.run session "which gdb" in
  check_i "which ok" 0 code;
  check_s "fat gdb" "/usr/bin/gdb\n" out;
  (* the fat container's payload is visible at / *)
  let code, _out = Attach.run session "stat /opt/ide.tar" in
  check_i "fat payload visible" 0 code;
  (* the app fs is still at /var/lib/cntr *)
  let code, _ = Attach.run session "stat /var/lib/cntr/etc/nginx.conf" in
  check_i "app fs present" 0 code;
  Attach.detach session

(* --- container-to-host (privileged admin) ----------------------------------- *)

let test_privileged_container_to_host () =
  let world = Testbed.create () in
  let _admin =
    ok
      (World.run_container world ~engine:(World.docker world) ~name:"admin"
         ~image_ref:"cntr/debug-tools:latest" ~privileged:true ())
  in
  (* attach to the admin container with tools from the host: the host's
     root fs appears at /, the container's at /var/lib/cntr — a CoreOS-like
     host gains a package-managed toolbox without installing anything *)
  let session = ok (Testbed.attach world "admin") in
  let _code, out = Attach.run session "cat /etc/os-release" in
  check_b "host rootfs visible" true (contains ~needle:"coreos" out);
  let code, _ = Attach.run session "stat /var/lib/cntr/usr/bin/gdb" in
  check_i "container fs at /var/lib/cntr" 0 code;
  Attach.detach session

(* --- all four engines --------------------------------------------------------- *)

let test_attach_all_engines () =
  let world = Testbed.create () in
  List.iter
    (fun engine_name ->
      let engine = World.engine world engine_name in
      let name = "app-" ^ engine_name in
      let _c = ok (World.run_container world ~engine ~name ~image_ref:"redis:latest" ()) in
      let session = ok (Testbed.attach world name) in
      let code, out = Attach.run session "which gdb" in
      check_i (engine_name ^ ": which ok") 0 code;
      check_s (engine_name ^ ": gdb found") "/usr/bin/gdb\n" out;
      let code, _ = Attach.run session "stat /var/lib/cntr/etc/redis.conf" in
      check_i (engine_name ^ ": app fs bound") 0 code;
      Attach.detach session)
    [ "docker"; "lxc"; "rkt"; "systemd-nspawn" ]

(* --- socket proxy -------------------------------------------------------------- *)

let test_socket_proxy_roundtrip () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let k = world.World.kernel in
  let host = world.World.init in
  (* a "D-Bus daemon" listens on the host *)
  let dbus_lfd = ok (Kernel.socket_listen k host "/var/run/dbus.sock") in
  (* direct connection through CntrFS fails: wrong inode identity *)
  check_err Errno.ECONNREFUSED
    (Kernel.socket_connect k session.Attach.sn_shell_proc "/var/run/dbus.sock");
  (* the forwarding plane bridges it *)
  let plane = Attach.proxy session in
  let fwd =
    ok
      (Proxy.forward plane ~front_proc:session.Attach.sn_shell_proc
         ~back_proc:session.Attach.sn_server_proc ~backend_path:"/var/run/dbus.sock"
         "/var/run/cntr-dbus.sock")
  in
  let cfd = ok (Kernel.socket_connect k session.Attach.sn_shell_proc "/var/run/cntr-dbus.sock") in
  ignore (ok (Kernel.write k session.Attach.sn_shell_proc cfd "hello-dbus"));
  Proxy.drain plane;
  (* the host daemon accepts and reads the forwarded bytes *)
  let sfd = ok (Kernel.socket_accept k host dbus_lfd) in
  check_s "payload forwarded" "hello-dbus" (ok (Kernel.read k host sfd ~len:100));
  (* reply flows back *)
  ignore (ok (Kernel.write k host sfd "ack"));
  Proxy.drain plane;
  check_s "reply forwarded" "ack" (ok (Kernel.read k session.Attach.sn_shell_proc cfd ~len:100));
  check_i "one bridged connection" 1 (Proxy.connection_count fwd);
  check_i "counted in the registry" 1
    (Repro_obs.Metrics.counter_value
       (Repro_obs.Obs.metrics (Attach.obs session))
       "proxy.connections.total");
  Attach.detach session

(* --- shell details ---------------------------------------------------------------- *)

let test_shell_redirect_and_builtin () =
  let world, _app = boot_with_app () in
  let session = ok (Testbed.attach world "web") in
  let code, _ = Attach.run session "echo probe-output > /var/lib/cntr/tmp/out.txt" in
  check_i "redirect ok" 0 code;
  let _code, out = Attach.run session "cat /var/lib/cntr/tmp/out.txt" in
  check_s "redirect wrote through cntr" "probe-output\n" out;
  let code, out = Attach.run session "doesnotexist" in
  check_i "unknown command 127" 127 code;
  check_b "error message" true (contains ~needle:"command not found" out);
  let code, _ = Attach.run session "cd /var/lib/cntr/etc" in
  check_i "cd ok" 0 code;
  let _code, out = Attach.run session "cat nginx.conf" in
  check_b "relative path after cd" true (contains ~needle:"listen" out);
  (* pipelines work inside a session too *)
  let code, out = Attach.run session "ls /var/lib/cntr/etc | grep nginx" in
  check_i "pipeline in session" 0 code;
  check_b "filtered listing" true (contains ~needle:"nginx.conf" out);
  (* and the traffic report is well-formed *)
  let report = Attach.report session in
  check_b "report has request counts" true (contains ~needle:"requests" report);
  check_b "report has server lookups" true (contains ~needle:"lookups" report);
  Attach.detach session

let () =
  Alcotest.run "cntr"
    [
      ( "step1-resolution",
        [
          Alcotest.test_case "resolve & context" `Quick test_resolve_and_context;
          Alcotest.test_case "resolve by id prefix" `Quick test_resolve_by_id_prefix;
          Alcotest.test_case "unknown container" `Quick test_unknown_container;
        ] );
      ( "nested-namespace",
        [
          Alcotest.test_case "host tools visible" `Quick test_tools_from_host_visible;
          Alcotest.test_case "app fs at /var/lib/cntr" `Quick test_app_fs_under_var_lib_cntr;
          Alcotest.test_case "config files bound" `Quick test_config_files_bound_from_app;
          Alcotest.test_case "env except PATH" `Quick test_env_applied_except_path;
          Alcotest.test_case "credentials dropped" `Quick test_credentials_dropped;
          Alcotest.test_case "gdb sees app /proc" `Quick test_same_proc_view_gdb_attach;
          Alcotest.test_case "container hostname" `Quick test_hostname_is_containers;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "nested mounts invisible" `Quick test_nested_mounts_invisible_to_app;
          Alcotest.test_case "edit config in place" `Quick test_edit_config_in_place;
          Alcotest.test_case "detach leaves app" `Quick test_detach_leaves_app_running;
        ] );
      ( "use-cases",
        [
          Alcotest.test_case "fat container tools" `Quick test_fat_container_tools;
          Alcotest.test_case "container-to-host" `Quick test_privileged_container_to_host;
          Alcotest.test_case "all four engines" `Quick test_attach_all_engines;
        ] );
      ( "socket-proxy",
        [ Alcotest.test_case "roundtrip" `Quick test_socket_proxy_roundtrip ] );
      ( "shell",
        [ Alcotest.test_case "redirects & builtins" `Quick test_shell_redirect_and_builtin ] );
    ]
