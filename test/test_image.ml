(* Tests for the image substrate: layers, whiteouts, union materialization,
   the registry's bandwidth/dedup model, and the Top-50 catalogue's
   structural invariants. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_image

let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let ok = Errno.ok_exn

let boot () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"root" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  (k, Kernel.init_proc k)

let file path content = Layer.File { path; mode = 0o644; content = Content.Literal content }
let dir path = Layer.Dir { path; mode = 0o755 }

let test_layer_size () =
  let l = Layer.v ~id:"l1" [ dir "/a"; file "/a/f" "12345"; Layer.Symlink { path = "/a/l"; target = "f" } ] in
  check_i "size" 6 (Layer.size l);
  Alcotest.(check (list string)) "paths" [ "/a"; "/a/f"; "/a/l" ] (Layer.paths l)

let test_union_whiteout () =
  let base = Layer.v ~id:"base" [ dir "/etc"; file "/etc/a" "old-a"; file "/etc/b" "b" ] in
  let top = Layer.v ~id:"top" [ file "/etc/a" "new-a"; Layer.Whiteout "/etc/b"; file "/etc/c" "c" ] in
  let image = Image.v ~name:"t" [ base; top ] in
  let paths = Image.effective_paths image in
  check_b "a present" true (List.mem "/etc/a" paths);
  check_b "b whited out" false (List.mem "/etc/b" paths);
  check_b "c present" true (List.mem "/etc/c" paths);
  (* materialize and read back: top layer wins *)
  let k, init = boot () in
  let rootfs = ok (Image.materialize image ~kernel:k ~proc:init) in
  let ns = Mount.create_ns ~fs:(Nativefs.ops rootfs) () in
  Kernel.register_mnt_ns k ns;
  let probe = Kernel.fork k init in
  let root_vnode = { Proc.v_mount = Mount.root_mount ns; v_ino = (Nativefs.ops rootfs).Fsops.root } in
  probe.Proc.ns.Proc.mnt <- ns;
  probe.Proc.root <- root_vnode;
  probe.Proc.cwd <- root_vnode;
  check_s "upper layer wins" "new-a" (ok (Kernel.read_whole k probe "/etc/a"));
  check_b "whiteout removed the file" true
    (Kernel.stat k probe "/etc/b" = Error Errno.ENOENT);
  check_s "new file" "c" (ok (Kernel.read_whole k probe "/etc/c"))

let test_content_kinds () =
  check_i "filler size" 100 (Content.size (Content.Filler 100));
  let b = Content.Binary { prog = "gdb"; size = 4096 } in
  check_i "binary padded" 4096 (Content.size b);
  check_b "binary parses" true
    (match Binfmt.parse (Content.render b) with Some (Binfmt.Bin "gdb") -> true | _ -> false)

(* Incompressible content: every CDC chunk is unique, so a cold pull must
   transfer the full byte count and the bandwidth model is visible. *)
let incompressible ~seed n = Bytes.to_string (Rng.bytes (Rng.create ~seed) n)

let test_registry_bandwidth_model () =
  let clock = Clock.create () in
  let reg = Registry.create ~clock ~bandwidth_mb_per_s:100.0 ~latency_ms_per_layer:10 () in
  let image =
    Image.v ~name:"x" [ Layer.v ~id:"only" [ file "/f" (incompressible ~seed:11 (Size.mib 1)) ] ]
  in
  Registry.push reg image;
  let t0 = Clock.now_ns clock in
  let _i, bytes = Result.get_ok (Registry.pull reg "x:latest") in
  let ns = Int64.to_int (Int64.sub (Clock.now_ns clock) t0) in
  check_i "bytes" (Size.mib 1) bytes;
  (* 10ms latency + 1MiB at 100MB/s (~10.5ms) *)
  check_b "pull time plausible" true (ns > 15_000_000 && ns < 30_000_000)

(* The per-layer latency is charged only for layers that actually move
   bytes: cached layers — and layers whose chunks all dedup against
   content already on the host — are completely free. *)
let test_registry_cached_layers_free () =
  let clock = Clock.create () in
  let latency_ms = 10 in
  let reg = Registry.create ~clock ~bandwidth_mb_per_s:100.0 ~latency_ms_per_layer:latency_ms () in
  let base = Layer.v ~id:"shared-base" [ dir "/lib"; file "/lib/libc" (incompressible ~seed:1 (Size.kib 256)) ] in
  let app_a = Layer.v ~id:"app-a" [ file "/bin/a" (incompressible ~seed:2 (Size.kib 64)) ] in
  let app_b = Layer.v ~id:"app-b" [ file "/bin/b" (incompressible ~seed:3 (Size.kib 64)) ] in
  Registry.push reg (Image.v ~name:"a" [ base; app_a ]);
  Registry.push reg (Image.v ~name:"b" [ base; app_b ]);
  (* same bytes as app-a under a different layer id *)
  Registry.push reg
    (Image.v ~name:"c" [ base; Layer.v ~id:"app-c" [ file "/bin/c" (incompressible ~seed:2 (Size.kib 64)) ] ]);
  let elapsed f =
    let t0 = Clock.now_ns clock in
    f ();
    Int64.to_int (Int64.sub (Clock.now_ns clock) t0)
  in
  let cold = elapsed (fun () -> ignore (Result.get_ok (Registry.pull reg "a:latest"))) in
  check_b "cold pull charged both layers" true (cold > 2 * latency_ms * 1_000_000);
  (* fully cached pull: zero bytes, zero time — cached layers are free *)
  let warm_bytes = ref (-1) in
  let warm = elapsed (fun () -> warm_bytes := snd (Result.get_ok (Registry.pull reg "a:latest"))) in
  check_i "warm pull moves no bytes" 0 !warm_bytes;
  check_i "warm pull is free (no per-layer latency)" 0 warm;
  (* image b: base is cached, so only the app layer pays latency *)
  let b_bytes = ref 0 in
  let b_ns = elapsed (fun () -> b_bytes := snd (Result.get_ok (Registry.pull reg "b:latest"))) in
  check_i "only b's own layer transfers" (Size.kib 64) !b_bytes;
  check_b "one latency charge, not two" true
    (b_ns >= latency_ms * 1_000_000 && b_ns < 2 * latency_ms * 1_000_000);
  (* image c: new layer id, but every chunk dedups against app-a -> free *)
  let c_bytes = ref (-1) in
  let c_ns = elapsed (fun () -> c_bytes := snd (Result.get_ok (Registry.pull reg "c:latest"))) in
  check_i "chunk-deduped layer moves no bytes" 0 !c_bytes;
  check_i "chunk-deduped layer pays no latency" 0 c_ns

let test_registry_store_accounting () =
  let clock = Clock.create () in
  let reg = Registry.create ~clock () in
  let base = Layer.v ~id:"acct-base" [ file "/lib/l" (incompressible ~seed:4 (Size.kib 128)) ] in
  let mk n id = Image.v ~name:n [ base; Layer.v ~id [ file "/etc/c" ("cfg-" ^ n) ] ] in
  Registry.push reg (mk "p" "acct-p");
  Registry.push reg (mk "q" "acct-q");
  let st = Registry.store reg in
  let module Store = Repro_store.Store in
  (* both images count the shared base logically; physically it is stored once *)
  check_b "dedup ratio > 1 with a shared base" true (Store.dedup_ratio st > 1.5);
  check_i "logical counts both references" (2 * Size.kib 128 + 5 + 5) (Store.logical_bytes st);
  (* a blob released to refcount zero is collected by gc *)
  Store.release st "acct-q";
  let collected = Store.gc st in
  check_b "gc collected q's unique chunk" true (collected >= 1);
  check_b "base survives (still referenced)" true (Store.chunk_present st
    (List.hd (Option.get (Store.manifest st "acct-base"))).Repro_store.Chunker.digest)

let test_catalog_invariants () =
  let images = Catalog.top50 () in
  check_i "50 images" 50 (List.length images);
  (* names unique *)
  let names = List.map (fun i -> i.Image.name) images in
  check_i "unique names" 50 (List.length (List.sort_uniq compare names));
  List.iter
    (fun image ->
      (* every image has an entrypoint that exists in its own fs *)
      match image.Image.config.Image.entrypoint with
      | [] -> Alcotest.failf "%s has no entrypoint" (Image.ref_ image)
      | bin :: _ ->
          check_b
            (Image.ref_ image ^ " entrypoint in image")
            true
            (List.mem bin (Image.effective_paths image));
          check_b
            (Image.ref_ image ^ " has a manifest")
            true
            (List.mem "/etc/app.manifest" (Image.effective_paths image)))
    images

let test_catalog_entrypoints_run () =
  let world = Repro_runtime.World.create () in
  (* sample a few images across bases and check the app starts cleanly *)
  List.iter
    (fun ref_ ->
      let c =
        ok
          (Repro_runtime.World.run_container world
             ~engine:(Repro_runtime.World.docker world) ~name:("t-" ^ ref_) ~image_ref:ref_ ())
      in
      check_b (ref_ ^ " container runs") true (Repro_runtime.Container.is_running c))
    [ "nginx:latest"; "redis:latest"; "etcd:latest"; "jenkins:latest" ]

let test_base_layer_sharing () =
  let images = Catalog.top50 () in
  let debian_bases =
    List.filter_map
      (fun i -> match i.Image.layers with base :: _ -> Some base.Layer.id | [] -> None)
      images
    |> List.filter (fun id -> id = "base:debian")
  in
  check_b "debian base shared by many images" true (List.length debian_bases > 20)

(* The central union property: the paths visible in a *materialized* image
   equal [Image.effective_paths] — whiteouts and layer ordering agree
   between the metadata view and the real filesystem. *)
let prop_materialize_matches_effective =
  QCheck.Test.make ~name:"materialized fs = effective paths" ~count:60
    QCheck.(
      small_list
        (triple (int_range 0 5) (oneofl [ `File; `Dir; `Whiteout ]) (int_range 1 50)))
    (fun spec ->
      (* each triple becomes one single-entry layer touching /nN or /dN *)
      let layers =
        List.mapi
          (fun i (slot, kind, size) ->
            let entry =
              match kind with
              | `File -> Layer.File { path = Printf.sprintf "/n%d" slot; mode = 0o644; content = Content.Filler size }
              | `Dir -> Layer.Dir { path = Printf.sprintf "/d%d" slot; mode = 0o755 }
              | `Whiteout -> Layer.Whiteout (Printf.sprintf "/n%d" slot)
            in
            Layer.v ~id:(string_of_int i) [ entry ])
          spec
      in
      let image = Image.v ~name:"prop" layers in
      let k, init = boot () in
      match Image.materialize image ~kernel:k ~proc:init with
      | Error _ -> false
      | Ok rootfs ->
          let ns = Mount.create_ns ~fs:(Nativefs.ops rootfs) () in
          Kernel.register_mnt_ns k ns;
          let probe = Kernel.fork k init in
          let root_vnode =
            { Proc.v_mount = Mount.root_mount ns; v_ino = (Nativefs.ops rootfs).Fsops.root }
          in
          probe.Proc.ns.Proc.mnt <- ns;
          probe.Proc.root <- root_vnode;
          probe.Proc.cwd <- root_vnode;
          let actual =
            Errno.ok_exn (Kernel.readdir k probe "/")
            |> List.filter_map (fun e ->
                   if e.Types.d_name = "." || e.Types.d_name = ".." then None
                   else Some ("/" ^ e.Types.d_name))
            |> List.sort compare
          in
          actual = Image.effective_paths image)

let prop_effective_size_le_total =
  QCheck.Test.make ~name:"effective size <= raw size (whiteouts only shrink)" ~count:50
    QCheck.(small_list (pair (int_range 0 9) (int_range 1 100)))
    (fun spec ->
      let layers =
        List.mapi
          (fun i (slot, size) ->
            let path = Printf.sprintf "/f%d" slot in
            Layer.v ~id:(string_of_int i)
              [ (if size mod 7 = 0 then Layer.Whiteout path
                 else Layer.File { path; mode = 0o644; content = Content.Filler size }) ])
          spec
      in
      let image = Image.v ~name:"p" layers in
      Image.effective_size image <= Image.size image)

let () =
  Alcotest.run "image"
    [
      ( "layers",
        [
          Alcotest.test_case "layer size & paths" `Quick test_layer_size;
          Alcotest.test_case "union + whiteout" `Quick test_union_whiteout;
          Alcotest.test_case "content kinds" `Quick test_content_kinds;
        ] );
      ( "registry",
        [
          Alcotest.test_case "bandwidth model" `Quick test_registry_bandwidth_model;
          Alcotest.test_case "cached layers are free" `Quick test_registry_cached_layers_free;
          Alcotest.test_case "store accounting" `Quick test_registry_store_accounting;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "invariants" `Quick test_catalog_invariants;
          Alcotest.test_case "entrypoints run" `Quick test_catalog_entrypoints_run;
          Alcotest.test_case "base layer sharing" `Quick test_base_layer_sharing;
        ] );
      ( "props",
        [
          QCheck_alcotest.to_alcotest prop_effective_size_le_total;
          QCheck_alcotest.to_alcotest prop_materialize_matches_effective;
        ] );
    ]
