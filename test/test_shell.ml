(* Tests for the interactive layer: shell parsing/semantics, the toolbox
   programs, pseudo-TTY plumbing, and the §7 nested-container attach
   (cntr launched from inside a privileged container). *)

open Repro_util
open Repro_os
open Repro_runtime
open Repro_cntr

let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let ok = Errno.ok_exn

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* --- tokenizer ------------------------------------------------------------- *)

let test_tokenize () =
  Alcotest.(check (list string)) "plain" [ "ls"; "-l"; "/tmp" ] (Shell.tokenize "ls -l /tmp");
  Alcotest.(check (list string)) "quotes" [ "echo"; "hello world"; "x" ] (Shell.tokenize {|echo "hello world" x|});
  Alcotest.(check (list string)) "empty" [] (Shell.tokenize "   ");
  Alcotest.(check (list string)) "tabs" [ "a"; "b" ] (Shell.tokenize "a\tb")

let test_parse_redirect () =
  let toks, r = Shell.parse_redirect [ "echo"; "hi"; ">"; "/tmp/f" ] in
  Alcotest.(check (list string)) "cmd" [ "echo"; "hi" ] toks;
  check_b "truncate" true (r = Shell.Truncate "/tmp/f");
  let _toks, r = Shell.parse_redirect [ "echo"; "hi"; ">>"; "/tmp/f" ] in
  check_b "append" true (r = Shell.Append "/tmp/f");
  let toks, r = Shell.parse_redirect [ "ls" ] in
  Alcotest.(check (list string)) "no redirect" [ "ls" ] toks;
  check_b "none" true (r = Shell.No_redirect)

(* --- a world with a shell ---------------------------------------------------- *)

let boot_shell () =
  let world = Testbed.create () in
  let proc = Kernel.fork world.World.kernel world.World.init in
  let tty = Tty.attach world.World.kernel proc in
  let run cmd =
    let code = Result.value ~default:126 (Shell.eval world.World.kernel proc cmd) in
    (code, Tty.read_output tty)
  in
  (world, proc, tty, run)

let test_builtins () =
  let _w, proc, _tty, run = boot_shell () in
  let code, _ = run "cd /etc" in
  check_i "cd ok" 0 code;
  let code, out = run "doesnotexist" in
  check_i "127 for unknown" 127 code;
  check_b "message" true (contains ~needle:"command not found" out);
  let code, _ = run "export FOO=bar BAZ=qux" in
  check_i "export ok" 0 code;
  check_s "env set" "bar" (Option.get (Proc.getenv proc "FOO"));
  let code, _ = run "true" in
  check_i "true" 0 code;
  let code, _ = run "false" in
  check_i "false" 1 code;
  let code, _ = run "# a comment" in
  check_i "comment ignored" 0 code;
  let code, _ = run "" in
  check_i "empty line" 0 code

let test_path_resolution () =
  let world, proc, _tty, run = boot_shell () in
  ignore world;
  let code, out = run "which ls" in
  check_i "which ok" 0 code;
  check_s "resolved in PATH" "/usr/bin/ls\n" out;
  Proc.setenv proc "PATH" "/nonexistent";
  let code, _ = run "ls" in
  check_i "not found without PATH" 127 code;
  (* absolute path still works *)
  let code, _ = run "/usr/bin/ls /" in
  check_i "absolute path" 0 code

let test_redirects_via_shell () =
  let world, _proc, _tty, run = boot_shell () in
  let code, out = run "echo first > /tmp/log" in
  check_i "redirect ok" 0 code;
  check_s "no stdout leak" "" out;
  let code, _ = run "echo second >> /tmp/log" in
  check_i "append ok" 0 code;
  let content = ok (Kernel.read_whole world.World.kernel world.World.init "/tmp/log") in
  check_s "both lines" "first\nsecond\n" content

let test_scripts () =
  let world, proc, _tty, run = boot_shell () in
  let k = world.World.kernel in
  let script = "#!/bin/sh\nexport MODE=test\necho running > /tmp/script.out\n" in
  let fd = ok (Kernel.open_ k world.World.init "/usr/bin/myscript" [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY ] ~mode:0o755) in
  ignore (ok (Kernel.write k world.World.init fd script));
  ok (Kernel.close k world.World.init fd);
  let code, _ = run "myscript" in
  check_i "script exit" 0 code;
  check_s "script side effect" "running\n" (ok (Kernel.read_whole k world.World.init "/tmp/script.out"));
  check_s "script env applied" "test" (Option.get (Proc.getenv proc "MODE"))

(* --- toolbox programs --------------------------------------------------------- *)

let test_toolbox_outputs () =
  let world, _proc, _tty, run = boot_shell () in
  ignore world;
  let _c, out = run "echo a b c" in
  check_s "echo" "a b c\n" out;
  let _c, out = run "id" in
  check_b "id" true (contains ~needle:"uid=0" out);
  let _c, out = run "hostname" in
  check_s "hostname" "host\n" out;
  let _c, out = run "ls /etc" in
  check_b "ls lists" true (contains ~needle:"passwd" out);
  let _c, out = run "stat /etc/passwd" in
  check_b "stat shows size" true (contains ~needle:"Size:" out);
  let _c, out = run "grep root /etc/passwd" in
  check_b "grep finds" true (contains ~needle:"root" out);
  let code, _ = run "grep zebra /etc/passwd" in
  check_i "grep miss exit 1" 1 code;
  let _c, out = run "cat /etc/hostname /etc/resolv.conf" in
  check_b "cat concatenates" true (contains ~needle:"host" out && contains ~needle:"nameserver" out);
  let _c, out = run "find /home" in
  check_b "find prints root" true (contains ~needle:"/home" out);
  let _c, out = run "du /etc" in
  check_b "du prints total" true (contains ~needle:"/etc" out);
  let _c, out = run "ps" in
  check_b "ps header" true (contains ~needle:"PID COMMAND" out)

let test_pipelines () =
  let world, _proc, _tty, run = boot_shell () in
  ignore world;
  (* cat | grep *)
  let code, out = run "cat /etc/passwd | grep root" in
  check_i "pipeline exit" 0 code;
  check_b "filtered" true (contains ~needle:"root" out);
  (* three stages with sort/uniq/head *)
  let _ = run "echo b > /tmp/l" in
  let _ = run "echo a >> /tmp/l" in
  let _ = run "echo b >> /tmp/l" in
  let _c, out = run "cat /tmp/l | sort | uniq" in
  check_s "sort|uniq" "a\nb\n" out;
  let _c, out = run "ls /etc | wc -l" in
  check_b "count lines" true (int_of_string (String.trim out) > 3);
  let _c, out = run "cat /etc/passwd | head -n 1 | wc -l" in
  check_s "head cap" "1\n" out;
  (* pipeline into a redirect *)
  let code, _ = run "cat /etc/passwd | grep root > /tmp/roots" in
  check_i "pipe+redirect" 0 code;
  let content = ok (Kernel.read_whole world.World.kernel world.World.init "/tmp/roots") in
  check_b "written" true (contains ~needle:"root" content);
  (* grep miss still reports failure through the pipe *)
  let code, _ = run "cat /etc/passwd | grep zebra" in
  check_i "miss exit code" 1 code

let test_var_expansion () =
  let _world, proc, _tty, run = boot_shell () in
  Proc.setenv proc "TARGET" "/etc/hostname";
  let _c, out = run "cat $TARGET" in
  check_b "expanded" true (contains ~needle:"host" out);
  let _c, out = run "echo ${TARGET}.bak" in
  check_s "braced" "/etc/hostname.bak\n" out;
  let _c, out = run "echo $UNDEFINED_VAR" in
  check_s "undefined empty" "\n" out;
  let _c, out = run "echo $$" in
  check_s "lone dollars literal" "$$\n" out

let test_tty_input_channel () =
  let world, proc, tty, _run = boot_shell () in
  ignore (world, proc);
  check_i "send input" 5 (Tty.send_input tty "gdb\nx");
  check_b "input line readable" true (Tty.input_line tty <> None);
  check_b "drained" true (Tty.input_line tty = None)

(* --- nested attach (§7 future work) ------------------------------------------- *)

let test_nested_attach_from_container () =
  let world = Testbed.create () in
  let docker = World.docker world in
  let _web = ok (World.run_container world ~engine:docker ~name:"web" ~image_ref:"nginx:latest" ()) in
  let admin =
    ok
      (World.run_container world ~engine:docker ~name:"admin"
         ~image_ref:"cntr/debug-tools:latest" ~privileged:true ())
  in
  (* a shell inside the privileged admin container launches cntr *)
  let launcher = Kernel.fork world.World.kernel admin.Container.ct_main in
  let session =
    ok
      (Testbed.attach world
         ~config:{ Attach.Config.default with Attach.Config.from = Some launcher }
         "web")
  in
  (* the tools side is the admin container's own filesystem *)
  let code, out = Attach.run session "which gdb" in
  check_i "gdb from admin container" 0 code;
  check_s "path" "/usr/bin/gdb\n" out;
  (* the target app's filesystem is present *)
  let code, _ = Attach.run session "stat /var/lib/cntr/etc/nginx.conf" in
  check_i "app fs bound" 0 code;
  (* context captured across containers (host pidns made the target's /proc
     visible to the privileged launcher) *)
  check_i "right target" (Container.pid _web) (Attach.context session).Context.cx_pid;
  Attach.detach session

let test_nested_attach_unprivileged_fails () =
  let world = Testbed.create () in
  let docker = World.docker world in
  let _web = ok (World.run_container world ~engine:docker ~name:"web" ~image_ref:"nginx:latest" ()) in
  let plain =
    ok (World.run_container world ~engine:docker ~name:"plain" ~image_ref:"redis:latest" ())
  in
  let launcher = Kernel.fork world.World.kernel plain.Container.ct_main in
  (* an unprivileged container cannot see the target's /proc, and lacks
     CAP_SYS_ADMIN for setns *)
  check_b "attach denied" true
    (Result.is_error
       (Testbed.attach world
          ~config:{ Attach.Config.default with Attach.Config.from = Some launcher }
          "web"))

let () =
  Alcotest.run "shell"
    [
      ( "parsing",
        [
          Alcotest.test_case "tokenize" `Quick test_tokenize;
          Alcotest.test_case "redirect parse" `Quick test_parse_redirect;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "builtins" `Quick test_builtins;
          Alcotest.test_case "PATH resolution" `Quick test_path_resolution;
          Alcotest.test_case "redirects" `Quick test_redirects_via_shell;
          Alcotest.test_case "scripts" `Quick test_scripts;
        ] );
      ( "toolbox",
        [
          Alcotest.test_case "program outputs" `Quick test_toolbox_outputs;
          Alcotest.test_case "pipelines" `Quick test_pipelines;
          Alcotest.test_case "var expansion" `Quick test_var_expansion;
          Alcotest.test_case "tty input" `Quick test_tty_input_channel;
        ] );
      ( "nested-attach",
        [
          Alcotest.test_case "from privileged container" `Quick test_nested_attach_from_container;
          Alcotest.test_case "unprivileged denied" `Quick test_nested_attach_unprivileged_fails;
        ] );
    ]
