(* The E1 gate: the 94-test generic suite passes 94/94 on native tmpfs and
   exactly 90/94 through CntrFS, with precisely the four failures the paper
   reports (§5.1, generic/228, /375, /391, /426). *)

open Repro_xfstests

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

let test_suite_has_94_tests () =
  check_i "94 tests like the paper" 94 Suite.count;
  (* ids are unique *)
  let ids = List.map (fun t -> t.Harness.t_id) Suite.all in
  check_i "unique ids" 94 (List.length (List.sort_uniq compare ids))

let test_groups_cover_paper_list () =
  List.iter
    (fun g ->
      check_b (g ^ " group non-empty") true (Suite.by_group g <> []))
    [ "auto"; "quick"; "aio"; "prealloc"; "ioctl"; "dangerous" ]

let test_native_all_pass () =
  let setup = Harness.setup_native () in
  let summary = Harness.run_suite setup Suite.all in
  List.iter
    (fun (id, msg) -> Printf.printf "native generic/%03d: %s\n" id msg)
    summary.Harness.s_failed;
  check_i "all 94 pass natively" 94 summary.Harness.s_passed

(* The CI gate pins the literal failure list, not just the Suite constant:
   a drive-by edit of [Suite.expected_cntrfs_failures] cannot silently
   relax it. *)
let paper_failures = [ 228; 375; 391; 426 ]

let test_cntrfs_90_of_94 () =
  let setup = Harness.setup_cntrfs () in
  let summary = Harness.run_suite setup Suite.all in
  let failed_ids = List.map fst summary.Harness.s_failed |> List.sort compare in
  List.iter
    (fun (id, msg) -> Printf.printf "cntrfs generic/%03d: %s\n" id msg)
    summary.Harness.s_failed;
  check_i "90 of 94 pass" 90 summary.Harness.s_passed;
  Alcotest.(check (list int))
    "exactly the paper's four failures" Suite.expected_cntrfs_failures failed_ids;
  Alcotest.(check (list int))
    "generic/228, /375, /391, /426" paper_failures failed_ids

let test_cntrfs_unoptimized_same_semantics () =
  (* the §3.3 optimizations must not change correctness *)
  let setup = Harness.setup_cntrfs ~opts:Repro_fuse.Opts.unoptimized () in
  let summary = Harness.run_suite setup Suite.all in
  let failed_ids = List.map fst summary.Harness.s_failed |> List.sort compare in
  Alcotest.(check (list int))
    "same failures without optimizations" Suite.expected_cntrfs_failures failed_ids

let test_cntrfs_fastpath_same_semantics () =
  (* the PR 2 metadata fast path must not change correctness either:
     same 90/94, same four failures *)
  let setup = Harness.setup_cntrfs ~opts:Repro_fuse.Opts.fastpath () in
  let summary = Harness.run_suite setup Suite.all in
  let failed_ids = List.map fst summary.Harness.s_failed |> List.sort compare in
  check_i "still 90 of 94" 90 summary.Harness.s_passed;
  Alcotest.(check (list int)) "same failures with the fast path" paper_failures failed_ids

let () =
  Alcotest.run "xfstests"
    [
      ( "structure",
        [
          Alcotest.test_case "94 tests" `Quick test_suite_has_94_tests;
          Alcotest.test_case "groups" `Quick test_groups_cover_paper_list;
        ] );
      ( "native",
        [ Alcotest.test_case "94/94 pass" `Quick test_native_all_pass ] );
      ( "cntrfs",
        [
          Alcotest.test_case "90/94 pass, known failures" `Quick test_cntrfs_90_of_94;
          Alcotest.test_case "unoptimized same semantics" `Quick test_cntrfs_unoptimized_same_semantics;
          Alcotest.test_case "fast path same semantics" `Quick test_cntrfs_fastpath_same_semantics;
        ] );
    ]
