(* The deterministic fault plane: plan parsing, every injection action at
   the FUSE / backing / disk sites, supervised retry and deadlines, and the
   crash → recover cycle.  The closing qcheck property drives random fault
   plans against a CntrFS session and demands that (a) the app container's
   backing state survives byte-identical, and (b) the session is usable
   again after bounded recovery work — the ISSUE's robustness contract. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_cntrfs
module Fault = Repro_fault.Fault

let ok = Errno.ok_exn
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* --- harness ----------------------------------------------------------- *)

type sys = {
  k : Kernel.t;
  init : Proc.t;
  rootfs : Nativefs.t;
  session : Session.t;
}

let files = [ ("alpha", 3000); ("beta", 300); ("gamma", 12000) ]

let payload name n =
  String.init n (fun i -> Char.chr (33 + ((Hashtbl.hash name + (i * 7)) mod 90)))

let boot ?opts ?fault ?retry () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  ok (Kernel.mkdir k init "/back" ~mode:0o777);
  ok (Kernel.mkdir k init "/mnt" ~mode:0o755);
  List.iter
    (fun (name, n) ->
      let fd = ok (Kernel.open_ k init ("/back/" ^ name) [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644) in
      ignore (ok (Kernel.write k init fd (payload name n)));
      ok (Kernel.close k init fd))
    files;
  let server = Kernel.fork k init in
  let budget = Mem_budget.create ~limit_bytes:(32 * 1024 * 1024) in
  let session =
    Session.create ~kernel:k ~server_proc:server ~root_path:"/back" ?opts ?fault ?retry ~budget ()
  in
  (* disk-site rules throttle the backing store itself *)
  (match Session.fault session with
  | Some f ->
      Store.set_fault_delay (Nativefs.store rootfs)
        (Some (fun ~op -> Fault.disk_delay_ns f ~op))
  | None -> ());
  ignore (ok (Kernel.mount_at k init ~fs:(Session.fs session) "/mnt"));
  { k; init; rootfs; session }

let read_file sys path =
  Kernel.read_whole sys.k sys.init path

let metrics sys = Repro_obs.Obs.metrics (Session.obs sys.session)
let counter sys name = Repro_obs.Metrics.counter_value (metrics sys) name

(* Native view of the backing directory, bypassing CntrFS entirely: the
   "app container integrity" observation. *)
let backing_fingerprint sys =
  let buf = Buffer.create 256 in
  (match Kernel.readdir sys.k sys.init "/back" with
  | Error e -> Buffer.add_string buf ("err:" ^ Errno.to_string e)
  | Ok entries ->
      entries
      |> List.map (fun e -> e.Types.d_name)
      |> List.sort compare
      |> List.iter (fun name ->
             if name <> "." && name <> ".." then begin
               Buffer.add_string buf name;
               match read_file sys ("/back/" ^ name) with
               | Ok data -> Buffer.add_string buf (Printf.sprintf "#%d;" (Hashtbl.hash data))
               | Error e -> Buffer.add_string buf ("!" ^ Errno.to_string e ^ ";")
             end));
  Buffer.contents buf

(* --- plan files -------------------------------------------------------- *)

let test_parse_roundtrip () =
  let text =
    "# robustness plan\n\
     seed 7\n\
     retry deadline=1000000 max=3 backoff=50000 mult=2\n\
     fuse read nth=2 fail=EINTR\n\
     fuse * every=10 delay=5000\n\
     backing write nth=1 fail=ENOSPC\n\
     disk * prob=0.5 delay=800\n\
     fuse lookup nth=4 crash\n"
  in
  match Fault.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok (plan, retry) ->
      check_i "seed" 7 plan.Fault.seed;
      check_i "rules" 5 (List.length plan.Fault.rules);
      (match retry with
      | Some r ->
          check_i "deadline" 1_000_000 r.Fault.deadline_ns;
          check_i "max" 3 r.Fault.max_retries;
          check_i "backoff" 50_000 r.Fault.backoff_ns;
          check_i "mult" 2 r.Fault.backoff_mult
      | None -> Alcotest.fail "retry line lost");
      (* to_string → parse is stable *)
      (match Fault.parse (Fault.to_string plan) with
      | Ok (plan2, _) ->
          check_s "roundtrip" (Fault.to_string plan) (Fault.to_string plan2)
      | Error e -> Alcotest.failf "reparse failed: %s" e)

let test_parse_errors () =
  let bad l = match Fault.parse l with Ok _ -> Alcotest.failf "accepted %S" l | Error _ -> () in
  bad "fuse read nth=x crash";
  bad "nonsense read nth=1 crash";
  bad "fuse read sometimes crash";
  bad "fuse read nth=1 explode";
  bad "seed many"

(* --- single-action behaviour ------------------------------------------ *)

let test_transient_eintr_retried () =
  let plan = Fault.plan [ { Fault.site = Fault.Fuse (Some "read"); trigger = Fault.Nth 1; action = Fault.Fail Errno.EINTR } ] in
  let sys = boot ~fault:plan ~retry:Fault.retry_default () in
  (* the first READ is failed with EINTR; the supervised path retries it *)
  let data = ok (read_file sys "/mnt/alpha") in
  check_s "content intact" (payload "alpha" 3000) data;
  check_b "fault was injected" true (counter sys "fault.injected.fail.EINTR" >= 1);
  check_b "retry counted" true (counter sys "fuse.retries" >= 1)

let test_dropped_reply_times_out_and_retries () =
  let plan = Fault.plan [ { Fault.site = Fault.Fuse (Some "read"); trigger = Fault.Nth 1; action = Fault.Drop_reply } ] in
  let sys = boot ~fault:plan ~retry:Fault.retry_default () in
  let data = ok (read_file sys "/mnt/beta") in
  check_s "content intact" (payload "beta" 300) data;
  check_b "drop injected" true (counter sys "fault.injected.drop" >= 1);
  check_b "deadline tripped" true (counter sys "fuse.timeouts" >= 1);
  check_b "retry counted" true (counter sys "fuse.retries" >= 1)

let test_duplicate_reply_harmless () =
  let plan = Fault.plan [ { Fault.site = Fault.Fuse None; trigger = Fault.Every 3; action = Fault.Duplicate_reply } ] in
  let sys = boot ~fault:plan () in
  List.iter
    (fun (name, n) ->
      let data = ok (read_file sys ("/mnt/" ^ name)) in
      check_s (name ^ " intact") (payload name n) data)
    files;
  check_b "dups injected" true (counter sys "fault.injected.dup" >= 1)

let test_latency_spike_slows_but_succeeds () =
  let spike = 5_000_000 in
  let plan = Fault.plan [ { Fault.site = Fault.Fuse (Some "lookup"); trigger = Fault.Nth 1; action = Fault.Delay spike } ] in
  let sys = boot ~fault:plan () in
  let before = Clock.now_ns sys.k.Kernel.clock in
  let data = ok (read_file sys "/mnt/alpha") in
  let elapsed = Int64.to_int (Int64.sub (Clock.now_ns sys.k.Kernel.clock) before) in
  check_s "content intact" (payload "alpha" 3000) data;
  check_b "spike charged" true (elapsed >= spike);
  check_b "delay injected" true (counter sys "fault.injected.delay" >= 1)

let test_disk_delay_charged () =
  let plan = Fault.plan [ { Fault.site = Fault.Disk; trigger = Fault.Every 1; action = Fault.Delay 40_000 } ] in
  let sys = boot ~fault:plan () in
  let data = ok (read_file sys "/mnt/gamma") in
  check_s "content intact" (payload "gamma" 12000) data;
  check_b "disk delays injected" true (counter sys "fault.injected.disk.delay" >= 1)

let test_enospc_on_write_path () =
  let plan =
    Fault.plan
      [
        { Fault.site = Fault.Backing (Some "write"); trigger = Fault.Every 1; action = Fault.Fail Errno.ENOSPC };
        { Fault.site = Fault.Backing (Some "pwrite"); trigger = Fault.Every 1; action = Fault.Fail Errno.ENOSPC };
      ]
  in
  let sys = boot ~fault:plan () in
  let before = backing_fingerprint sys in
  let fd = ok (Kernel.open_ sys.k sys.init "/mnt/alpha" [ Types.O_WRONLY ] ~mode:0) in
  let r = Kernel.write sys.k sys.init fd "overwrite-attempt" in
  ignore (Kernel.close sys.k sys.init fd);
  (* with writeback caching the error may surface at write or at flush time;
     either way the backing file must be untouched *)
  (match r with
  | Error Errno.ENOSPC | Ok _ -> ()
  | Error e -> Alcotest.failf "expected ENOSPC or deferred error, got %s" (Errno.to_string e));
  Session.quiesce sys.session;
  check_b "ENOSPC injected" true (counter sys "fault.injected.backing.ENOSPC" >= 1);
  check_s "backing unchanged" before (backing_fingerprint sys)

let test_backing_faults_spare_other_processes () =
  let plan = Fault.plan [ { Fault.site = Fault.Backing None; trigger = Fault.Every 1; action = Fault.Fail Errno.EIO } ] in
  let sys = boot ~fault:plan () in
  (* the shell's own syscalls bypass the plane: only the server's backing
     operations are poisoned *)
  let data = ok (read_file sys "/back/alpha") in
  check_s "native read fine" (payload "alpha" 3000) data;
  (match read_file sys "/mnt/alpha" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "server-side faults should surface through the mount")

let test_crash_without_recovery_is_bounded () =
  let plan = Fault.plan [ { Fault.site = Fault.Fuse (Some "read"); trigger = Fault.Nth 1; action = Fault.Crash_server } ] in
  let sys = boot ~fault:plan () in
  let before = Clock.now_ns sys.k.Kernel.clock in
  (match read_file sys "/mnt/alpha" with
  | Error Errno.ENOTCONN -> ()
  | Error e -> Alcotest.failf "expected ENOTCONN, got %s" (Errno.to_string e)
  | Ok _ -> Alcotest.fail "read should fail after crash");
  (* never a hang: the failure resolves in bounded virtual time *)
  let elapsed = Int64.sub (Clock.now_ns sys.k.Kernel.clock) before in
  check_b "bounded failure" true (elapsed < 1_000_000_000L);
  (* later requests keep failing fast, still ENOTCONN *)
  (match Kernel.stat sys.k sys.init "/mnt/beta" with
  | Error Errno.ENOTCONN -> ()
  | Error _ | Ok _ -> ());
  check_b "crash injected" true (counter sys "fault.injected.crash" >= 1)

let test_crash_then_recover () =
  let plan = Fault.plan [ { Fault.site = Fault.Fuse (Some "read"); trigger = Fault.Nth 2; action = Fault.Crash_server } ] in
  let sys = boot ~fault:plan ~retry:Fault.retry_default () in
  let data = ok (read_file sys "/mnt/alpha") in
  check_s "first read fine" (payload "alpha" 3000) data;
  (* second READ crashes the server (retries meet a dead conn and stop) *)
  (match read_file sys "/mnt/beta" with
  | Error Errno.ENOTCONN -> ()
  | Error e -> Alcotest.failf "expected ENOTCONN, got %s" (Errno.to_string e)
  | Ok _ -> Alcotest.fail "read should fail at the crash");
  Session.recover sys.session;
  (* the relaunched server inherits the live ino map: all content back *)
  List.iter
    (fun (name, n) ->
      let data = ok (read_file sys ("/mnt/" ^ name)) in
      check_s (name ^ " after recovery") (payload name n) data)
    files;
  check_i "one recovery" 1 (counter sys "session.recoveries")

(* Crash while a passthrough grant is live: the capability dies with the
   server's backing fds, so the driver must revoke it locally (counted in
   fuse.passthrough.revocations), and recovery reopens the handle WITHOUT
   the stale grant — content stays intact through the mount. *)
let test_crash_with_live_grant () =
  let opts = { Opts.cntr_default with Opts.passthrough = 8 } in
  let sys = boot ~opts () in
  let fd = ok (Kernel.open_ sys.k sys.init "/mnt/alpha" [ Types.O_RDONLY ] ~mode:0) in
  let head = ok (Kernel.pread sys.k sys.init fd ~off:0 ~len:512) in
  check_s "granted read" (String.sub (payload "alpha" 3000) 0 512) head;
  check_b "grant issued" true (counter sys "fuse.passthrough.grants" >= 1);
  Conn.inject_crash sys.session.Session.conn;
  (* the next I/O on the held fd notices the dead transport and drops the
     grant; whether the bytes themselves come from cache or fail with
     ENOTCONN is incidental — the revocation is the contract *)
  (match Kernel.pread sys.k sys.init fd ~off:0 ~len:512 with
  | Ok _ | Error Errno.ENOTCONN -> ()
  | Error e -> Alcotest.failf "unexpected error while dead: %s" (Errno.to_string e));
  check_b "grant revoked by crash" true
    (counter sys "fuse.passthrough.revocations" >= 1);
  Session.recover sys.session;
  List.iter
    (fun (name, n) ->
      let data = ok (read_file sys ("/mnt/" ^ name)) in
      check_s (name ^ " after pt recovery") (payload name n) data)
    files;
  ok (Kernel.close sys.k sys.init fd);
  check_i "one recovery" 1 (counter sys "session.recoveries")

(* --- the robustness property ------------------------------------------ *)

(* Random plans: every rule is one-shot (Nth) so a plan can only inject a
   bounded number of faults — the recovery loop below is then guaranteed to
   converge.  Persistent rules (Every/Prob) are covered by the unit tests
   above. *)
let gen_rule =
  QCheck.Gen.(
    let site =
      frequency
        [
          (4, return (Fault.Fuse None));
          (2, return (Fault.Fuse (Some "read")));
          (2, return (Fault.Fuse (Some "lookup")));
          (1, return (Fault.Backing None));
          (1, return (Fault.Backing (Some "read")));
          (1, return Fault.Disk);
        ]
    in
    let action =
      frequency
        [
          (2, return Fault.Crash_server);
          (2, return Fault.Drop_reply);
          (2, return Fault.Duplicate_reply);
          (2, map (fun n -> Fault.Delay n) (int_range 1_000 1_000_000));
          (2, map (fun n -> Fault.Hang n) (int_range 1_000_000 100_000_000));
          (1, return (Fault.Fail Errno.EINTR));
          (1, return (Fault.Fail Errno.ENOMEM));
          (1, return (Fault.Fail Errno.EIO));
          (1, return (Fault.Fail Errno.ENOSPC));
        ]
    in
    map3
      (fun site trigger action ->
        let action =
          match (site, action) with
          (* only FUSE rules can crash/hang/drop/dup; elsewhere fall back to
             a benign delay so the site stays exercised *)
          | (Fault.Backing _ | Fault.Disk), (Fault.Crash_server | Fault.Hang _ | Fault.Drop_reply | Fault.Duplicate_reply) ->
              Fault.Delay 10_000
          | _ -> action
        in
        { Fault.site; trigger = Fault.Nth trigger; action })
      site (int_range 1 12) action)

let gen_plan =
  QCheck.Gen.(
    map2
      (fun seed rules -> Fault.plan ~seed rules)
      (int_range 0 10_000)
      (list_size (int_range 1 5) gen_rule))

let prop_faults_never_corrupt =
  QCheck.Test.make ~name:"random fault plans: integrity + recovery" ~count:120
    (QCheck.make ~print:(fun p -> Fault.to_string p) gen_plan)
    (fun plan ->
      let sys = boot ~fault:plan ~retry:Fault.retry_default () in
      let before = backing_fingerprint sys in
      (* a read-heavy workload through the mount; individual operations may
         fail (that is the point), the machine must not wedge or corrupt *)
      for round = 1 to 4 do
        List.iter
          (fun (name, _) ->
            ignore (read_file sys ("/mnt/" ^ name));
            ignore (Kernel.stat sys.k sys.init ("/mnt/" ^ name)))
          files;
        ignore (Kernel.readdir sys.k sys.init "/mnt");
        if sys.session.Session.conn.Conn.dead then Session.recover sys.session;
        ignore round
      done;
      (* every one-shot rule has had ample chances; drain stragglers and
         verify the session answers again (recovering if a late crash hit) *)
      let attempts = ref 0 in
      let rec settle () =
        incr attempts;
        if !attempts > 12 then Alcotest.fail "session did not settle";
        if sys.session.Session.conn.Conn.dead then begin
          Session.recover sys.session;
          settle ()
        end
        else
          match read_file sys "/mnt/alpha" with
          | Ok data -> data
          | Error _ -> settle ()
      in
      let data = settle () in
      check_s "readable after faults" (payload "alpha" 3000) data;
      (* the app container's own state never changed: a read-only workload
         under any fault plan must leave the backing bytes alone *)
      check_s "backing intact" before (backing_fingerprint sys);
      (* if the plan crashed the server, recovery must have been counted *)
      if counter sys "fault.injected.crash" >= 1 then
        check_b "recovery counted" true (counter sys "session.recoveries" >= 1);
      true)

let () =
  Alcotest.run "fault"
    [
      ( "plans",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "actions",
        [
          Alcotest.test_case "EINTR retried" `Quick test_transient_eintr_retried;
          Alcotest.test_case "drop -> timeout -> retry" `Quick test_dropped_reply_times_out_and_retries;
          Alcotest.test_case "duplicate reply harmless" `Quick test_duplicate_reply_harmless;
          Alcotest.test_case "latency spike" `Quick test_latency_spike_slows_but_succeeds;
          Alcotest.test_case "disk delay" `Quick test_disk_delay_charged;
          Alcotest.test_case "ENOSPC on write path" `Quick test_enospc_on_write_path;
          Alcotest.test_case "backing faults are server-only" `Quick test_backing_faults_spare_other_processes;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "crash is bounded, never a hang" `Quick test_crash_without_recovery_is_bounded;
          Alcotest.test_case "crash then recover" `Quick test_crash_then_recover;
          Alcotest.test_case "crash with live passthrough grant" `Quick test_crash_with_live_grant;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_faults_never_corrupt ] );
    ]
