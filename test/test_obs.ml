(* Tests for the unified observability layer (lib/obs): the metrics
   registry, the span tracer, and their wiring through the FUSE/CntrFS/VFS
   stack via the bench environment. *)

open Repro_util
open Repro_vfs
open Repro_obs
open Repro_workloads

let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)
let check_s = Alcotest.(check string)

(* --- Metrics: counters, gauges, derived ---------------------------------- *)

let test_counters () =
  let t = Metrics.create () in
  let c = Metrics.counter t "a.b.count" in
  Metrics.incr c;
  Metrics.add c 4;
  check_i "handle value" 5 (Metrics.value c);
  (* get-or-create returns the same underlying counter *)
  let c' = Metrics.counter t "a.b.count" in
  Metrics.incr c';
  check_i "shared" 6 (Metrics.value c);
  check_i "by name" 6 (Metrics.counter_value t "a.b.count");
  check_i "absent is 0" 0 (Metrics.counter_value t "no.such")

let test_prefix () =
  let t = Metrics.create () in
  Metrics.add (Metrics.counter t "x.b.hits") 2;
  Metrics.add (Metrics.counter t "x.a.hits") 1;
  Metrics.add (Metrics.counter t "y.a.hits") 9;
  Alcotest.(check (list (pair string int)))
    "sorted, filtered"
    [ ("x.a.hits", 1); ("x.b.hits", 2) ]
    (Metrics.counters_with_prefix t ~prefix:"x.")

let test_gauges_and_derived () =
  let t = Metrics.create () in
  let g = Metrics.gauge t "g.depth" in
  Metrics.set g 3.5;
  Alcotest.(check (float 1e-9)) "stored" 3.5 (Metrics.gauge_value t "g.depth");
  let n = ref 1.0 in
  Metrics.register_derived t "g.ratio" (fun () -> !n);
  n := 2.0;
  (* derived gauges are evaluated at read time, not registration time *)
  Alcotest.(check (float 1e-9)) "derived live" 2.0 (Metrics.gauge_value t "g.ratio");
  (* re-registration keeps the first closure *)
  Metrics.register_derived t "g.ratio" (fun () -> 99.0);
  Alcotest.(check (float 1e-9)) "first wins" 2.0 (Metrics.gauge_value t "g.ratio");
  Alcotest.(check (float 1e-9)) "absent is 0" 0.0 (Metrics.gauge_value t "no.such")

let test_kind_clash () =
  let t = Metrics.create () in
  ignore (Metrics.counter t "m.name");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Obs.Metrics: m.name is already a counter, not a gauge")
    (fun () -> ignore (Metrics.gauge t "m.name"))

let test_histogram () =
  let t = Metrics.create () in
  let h = Metrics.histogram t "h.latency_us" in
  List.iter (Metrics.observe h) [ 1.; 2.; 3.; 4. ];
  let s = Metrics.summarize h in
  check_i "count" 4 s.Metrics.s_count;
  Alcotest.(check (float 1e-9)) "sum" 10. s.Metrics.s_sum;
  Alcotest.(check (float 1e-9)) "min" 1. s.Metrics.s_min;
  Alcotest.(check (float 1e-9)) "max" 4. s.Metrics.s_max;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.Metrics.s_mean;
  check_b "p50 sane" true (s.Metrics.s_p50 >= 1. && s.Metrics.s_p50 <= 4.);
  (* observe_ns records microseconds *)
  let h2 = Metrics.histogram t "h2.latency_us" in
  Metrics.observe_ns h2 2500;
  Alcotest.(check (float 1e-9)) "ns -> us" 2.5 (Metrics.summarize h2).Metrics.s_max

let test_json_deterministic () =
  let build () =
    let t = Metrics.create () in
    Metrics.add (Metrics.counter t "b.count") 2;
    Metrics.add (Metrics.counter t "a.count") 1;
    Metrics.set (Metrics.gauge t "g") 0.5;
    Metrics.observe (Metrics.histogram t "h.latency_us") 7.;
    Metrics.to_json t
  in
  let j1 = build () and j2 = build () in
  check_s "byte identical" j1 j2;
  check_b "sorted sections" true
    (let a = String.index j1 'a' and b = String.index j1 'b' in
     a < b)

(* --- Trace: ring, sinks, with_span --------------------------------------- *)

let test_trace_ring () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Trace.record tr ~name:(Printf.sprintf "s%d" i) ~begin_ns:(Int64.of_int i)
      ~end_ns:(Int64.of_int (i + 1)) ()
  done;
  check_i "recorded" 6 (Trace.recorded tr);
  check_i "dropped" 2 (Trace.dropped tr);
  Alcotest.(check (list string)) "oldest first, ring keeps last 4"
    [ "s3"; "s4"; "s5"; "s6" ]
    (List.map (fun sp -> sp.Trace.sp_name) (Trace.spans tr));
  Trace.clear tr;
  check_i "cleared" 0 (List.length (Trace.spans tr))

let test_trace_sink_sees_everything () =
  let tr = Trace.create ~capacity:2 () in
  let sink, seen = Trace.memory_sink () in
  Trace.set_sink tr (Some sink);
  for i = 1 to 5 do
    Trace.record tr ~name:"s" ~begin_ns:0L ~end_ns:(Int64.of_int i) ()
  done;
  (* ring retains 2, the sink saw all 5 including the overwritten ones *)
  check_i "ring bounded" 2 (List.length (Trace.spans tr));
  check_i "sink unbounded" 5 (List.length (seen ()))

let test_trace_with_span () =
  let tr = Trace.create () in
  let clock = Clock.create () in
  Clock.consume_int clock 100;
  let v = Trace.with_span tr ~clock ~attrs:[ ("k", "v") ] "work" (fun () ->
      Clock.consume_int clock 50;
      42)
  in
  check_i "result" 42 v;
  match Trace.spans tr with
  | [ sp ] ->
      check_s "name" "work" sp.Trace.sp_name;
      check_b "begin" true (sp.Trace.sp_begin_ns = 100L);
      check_b "end" true (sp.Trace.sp_end_ns = 150L);
      Alcotest.(check (list (pair string string))) "attrs" [ ("k", "v") ] sp.Trace.sp_attrs
  | l -> Alcotest.failf "expected one span, got %d" (List.length l)

let test_trace_jsonl () =
  let buf = Buffer.create 64 in
  let tr = Trace.create () in
  Trace.set_sink tr (Some (Trace.buffer_sink buf));
  Trace.record tr ~name:{|q"uote|} ~begin_ns:1L ~end_ns:2L ~attrs:[ ("a", "b") ] ();
  Trace.record tr ~name:"plain" ~begin_ns:2L ~end_ns:3L ();
  let lines =
    String.split_on_char '\n' (Buffer.contents buf) |> List.filter (( <> ) "")
  in
  check_i "one line per span" 2 (List.length lines);
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_b "escaped quote" true (contains ~needle:{|q\"uote|} (List.hd lines))

(* --- Workload-level properties ------------------------------------------- *)

let mib = Size.mib
let kib = Size.kib

(* A small seeded read/write mix over the CntrFS mount. *)
let mini_workload seed =
  {
    Bench_env.w_name = "obs-mini";
    w_paper = 0.;
    w_concurrency = 2;
    w_budget_mb = 8;
    w_setup =
      (fun env ->
        Bench_env.write_file env (env.Bench_env.backing_dir ^ "/seed")
          (String.make (kib 64) 'x'));
    w_run =
      (fun env ->
        let rng = Rng.create ~seed in
        for i = 0 to 15 do
          match Rng.int rng 3 with
          | 0 ->
              ignore
                (Bench_env.read_file env (env.Bench_env.dir ^ "/seed"))
          | 1 ->
              Bench_env.write_file env
                (Printf.sprintf "%s/f%d" env.Bench_env.dir i)
                (String.make (kib 4) 'y')
          | _ -> Bench_env.mkdir env (Printf.sprintf "%s/d%d" env.Bench_env.dir i)
        done);
  }

let run_with_sink seed sink_of_obs =
  let obs = Obs.create () in
  (match sink_of_obs with
  | None -> ()
  | Some mk -> Trace.set_sink (Obs.tracer obs) (Some (mk ())));
  let backend = Bench_env.Cntrfs Repro_fuse.Opts.cntr_default in
  ignore (Bench_env.run_workload ~obs ~backend (mini_workload seed));
  Obs.to_json obs

(* The tracer is an observer: counter totals must not depend on which sink
   (if any) is attached. *)
let prop_sink_invariant =
  QCheck.Test.make ~name:"counters invariant under trace sink" ~count:8
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let none = run_with_sink seed None in
      let mem = run_with_sink seed (Some (fun () -> fst (Trace.memory_sink ()))) in
      let buffered =
        run_with_sink seed (Some (fun () -> Trace.buffer_sink (Buffer.create 256)))
      in
      none = mem && mem = buffered)

let test_runs_byte_identical () =
  let a = run_with_sink 1234 None and b = run_with_sink 1234 None in
  check_s "same seed, same JSON" a b;
  let c = run_with_sink 4321 None in
  check_b "different seed differs" true (a <> c)

(* E3a: FOPEN_KEEP_CACHE.  With keep_cache off every open invalidates the
   driver's page cache, so re-reads hit the server as READ requests; with
   it on, re-reads are served from the fuse page cache. *)
let e3a_workload =
  {
    Bench_env.w_name = "obs-e3a";
    w_paper = 0.;
    w_concurrency = 4;
    w_budget_mb = 64;
    w_setup =
      (fun env ->
        Bench_env.write_file env (env.Bench_env.backing_dir ^ "/t")
          (String.make (mib 1) 'x'));
    w_run =
      (fun env ->
        for _pass = 0 to 3 do
          let fd =
            Bench_env.openf env (env.Bench_env.dir ^ "/t") [ Types.O_RDONLY ] 0
          in
          Bench_env.seq_read env fd ~total:(mib 1) ~record:(kib 8);
          Bench_env.closef env fd
        done);
  }

let test_e3a_keep_cache_flips_metrics () =
  let run opts =
    let obs = Obs.create () in
    ignore (Bench_env.run_workload ~obs ~backend:(Bench_env.Cntrfs opts) e3a_workload);
    let m = Obs.metrics obs in
    ( Metrics.gauge_value m "vfs.page_cache.fuse.hit_ratio",
      Metrics.counter_value m "fuse.req.read.count" )
  in
  let open Repro_fuse in
  let ratio_off, reads_off = run { Opts.cntr_default with Opts.keep_cache = false } in
  let ratio_on, reads_on = run Opts.cntr_default in
  check_b "keep_cache raises fuse hit ratio" true (ratio_on > ratio_off);
  check_b "hit ratio substantial when on" true (ratio_on > 0.5);
  check_b "keep_cache cuts READ requests" true (reads_on < reads_off);
  check_b "reads happen in both" true (reads_on > 0 && reads_off > 0)

(* cntrfs amplification: every lookup costs open+stat on the backing fs. *)
let test_amplification_reported () =
  let obs = Obs.create () in
  ignore
    (Bench_env.run_workload ~obs
       ~backend:(Bench_env.Cntrfs Repro_fuse.Opts.cntr_default) e3a_workload);
  let m = Obs.metrics obs in
  check_b "lookups counted" true (Metrics.counter_value m "cntrfs.lookup.count" > 0);
  check_b "amplification >= 2" true
    (Metrics.gauge_value m "cntrfs.lookup.amplification" >= 2.0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "prefix scan" `Quick test_prefix;
          Alcotest.test_case "gauges + derived" `Quick test_gauges_and_derived;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "json deterministic" `Quick test_json_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring retention" `Quick test_trace_ring;
          Alcotest.test_case "sink sees all" `Quick test_trace_sink_sees_everything;
          Alcotest.test_case "with_span" `Quick test_trace_with_span;
          Alcotest.test_case "jsonl sink" `Quick test_trace_jsonl;
        ] );
      qsuite "sink-invariance" [ prop_sink_invariant ];
      ( "integration",
        [
          Alcotest.test_case "seeded runs byte-identical" `Quick test_runs_byte_identical;
          Alcotest.test_case "E3a keep_cache flips metrics" `Quick
            test_e3a_keep_cache_flips_metrics;
          Alcotest.test_case "lookup amplification" `Quick test_amplification_reported;
        ] );
    ]
