(* Integration tests: CntrFS (FUSE driver + passthrough server) mounted in
   the simulated kernel, exercised through ordinary syscalls.  Includes the
   four xfstests failure modes the paper reports (§5.1). *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_cntrfs

let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

let errno = Alcotest.testable Errno.pp ( = )

let check_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> Alcotest.check errno "errno" expected e

let ok = Errno.ok_exn

(* World: a root fs, a "fat" subtree at /fat served over CntrFS at /cntr. *)
type world = {
  k : Kernel.t;
  init : Proc.t;
  session : Session.t;
  budget : Mem_budget.t;
}

let boot ?(opts = Opts.cntr_default) ?(budget_bytes = 1024 * 1024 * 1024) () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"rootfs" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  List.iter
    (fun d -> ok (Kernel.mkdir k init d ~mode:0o755))
    [ "/fat"; "/fat/usr"; "/fat/usr/bin"; "/fat/tmp"; "/cntr" ];
  ok (Kernel.chmod k init "/fat/tmp" 0o1777);
  ok (Kernel.chmod k init "/fat" 0o755);
  let server_proc = Kernel.fork k init in
  server_proc.Proc.comm <- "cntrfs";
  let budget = Mem_budget.create ~limit_bytes:budget_bytes in
  let session = Session.create ~kernel:k ~server_proc ~root_path:"/fat" ~opts ~budget () in
  ignore (ok (Kernel.mount_at k init ~fs:(Session.fs session) "/cntr"));
  { k; init; session; budget }

let write_file k proc path content =
  let fd = ok (Kernel.open_ k proc path [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] ~mode:0o644) in
  ignore (ok (Kernel.write k proc fd content));
  ok (Kernel.close k proc fd)

let read_file k proc path = ok (Kernel.read_whole k proc path)

(* --- basic passthrough ---------------------------------------------------- *)

let test_passthrough_read () =
  let w = boot () in
  write_file w.k w.init "/fat/hello" "from-fat";
  check_s "read through cntrfs" "from-fat" (read_file w.k w.init "/cntr/hello")

let test_passthrough_write_coherent () =
  let w = boot () in
  write_file w.k w.init "/cntr/new" "via-fuse";
  (* must be visible on the backing filesystem *)
  check_s "backing sees it" "via-fuse" (read_file w.k w.init "/fat/new");
  (* and still correct through the mount *)
  check_s "fuse sees it" "via-fuse" (read_file w.k w.init "/cntr/new")

let test_writeback_flush_on_close () =
  let w = boot () in
  let fd = ok (Kernel.open_ w.k w.init "/cntr/f" [ Types.O_CREAT; Types.O_WRONLY ] ~mode:0o644) in
  ignore (ok (Kernel.write w.k w.init fd "buffered"));
  (* with writeback the data may still sit in the driver cache; close
     flushes it *)
  ok (Kernel.close w.k w.init fd);
  check_s "flushed at close" "buffered" (read_file w.k w.init "/fat/f")

let test_partial_page_rmw () =
  let w = boot () in
  write_file w.k w.init "/fat/f" (String.make 6000 'a');
  (* overwrite bytes 100..104 through the mount (partial first page) *)
  let fd = ok (Kernel.open_ w.k w.init "/cntr/f" [ Types.O_WRONLY ] ~mode:0) in
  ignore (ok (Kernel.pwrite w.k w.init fd ~off:100 "XXXXX"));
  ok (Kernel.close w.k w.init fd);
  let content = read_file w.k w.init "/fat/f" in
  check_i "size unchanged" 6000 (String.length content);
  check_s "patch applied" "XXXXX" (String.sub content 100 5);
  check_s "prefix intact" (String.make 100 'a') (String.sub content 0 100);
  check_s "suffix intact" (String.make 20 'a') (String.sub content 105 20)

let test_dirs_and_rename_remap () =
  let w = boot () in
  ok (Kernel.mkdir w.k w.init "/cntr/d" ~mode:0o755);
  write_file w.k w.init "/cntr/d/f" "deep";
  (* rename the directory through the mount; interned server paths must
     follow *)
  ok (Kernel.rename w.k w.init ~src:"/cntr/d" ~dst:"/cntr/e");
  check_s "read after dir rename" "deep" (read_file w.k w.init "/cntr/e/f");
  check_err Errno.ENOENT (Kernel.stat w.k w.init "/cntr/d/f");
  (* stat of the same file through old interned ino still works *)
  check_s "backing agrees" "deep" (read_file w.k w.init "/fat/e/f")

let test_hardlink_same_ino () =
  let w = boot () in
  write_file w.k w.init "/fat/a" "x";
  ok (Kernel.link w.k w.init ~target:"/fat/a" ~linkpath:"/fat/b");
  let sta = ok (Kernel.stat w.k w.init "/cntr/a") in
  let stb = ok (Kernel.stat w.k w.init "/cntr/b") in
  check_i "hardlinks share driver ino" sta.Types.st_ino stb.Types.st_ino;
  check_i "nlink 2" 2 sta.Types.st_nlink

let test_unlink_through_mount () =
  let w = boot () in
  write_file w.k w.init "/fat/gone" "x";
  ok (Kernel.unlink w.k w.init "/cntr/gone");
  check_err Errno.ENOENT (Kernel.stat w.k w.init "/fat/gone")

let test_symlink_through_mount () =
  let w = boot () in
  write_file w.k w.init "/fat/target" "pointed";
  (* relative targets resolve within the mount; absolute targets resolve
     against the *process* root (Linux semantics), so they break when the
     tree is viewed at a different mountpoint *)
  ok (Kernel.symlink w.k w.init ~target:"target" ~linkpath:"/cntr/lnk");
  check_s "relative link follows" "pointed" (read_file w.k w.init "/cntr/lnk");
  ok (Kernel.symlink w.k w.init ~target:"/fat/target" ~linkpath:"/cntr/abs");
  check_s "absolute link uses process root" "pointed" (read_file w.k w.init "/cntr/abs")

let test_xattr_through_mount () =
  let w = boot () in
  write_file w.k w.init "/fat/f" "x";
  ok (Kernel.setxattr w.k w.init "/cntr/f" "user.k" "v");
  check_s "get" "v" (ok (Kernel.getxattr w.k w.init "/cntr/f" "user.k"));
  check_s "backing agrees" "v" (ok (Kernel.getxattr w.k w.init "/fat/f" "user.k"));
  Alcotest.(check (list string)) "list" [ "user.k" ] (ok (Kernel.listxattr w.k w.init "/cntr/f"));
  ok (Kernel.removexattr w.k w.init "/cntr/f" "user.k");
  check_err Errno.ENODATA (Kernel.getxattr w.k w.init "/cntr/f" "user.k")

let test_readdir_through_mount () =
  let w = boot () in
  write_file w.k w.init "/fat/one" "1";
  write_file w.k w.init "/fat/two" "2";
  let names = ok (Kernel.readdir w.k w.init "/cntr") |> List.map (fun e -> e.Types.d_name) in
  check_b "sees one" true (List.mem "one" names);
  check_b "sees two" true (List.mem "two" names)

let test_exec_through_mount () =
  let w = boot () in
  Kernel.register_program w.k "tool" (fun _ _ _ -> 42);
  write_file w.k w.init "/fat/usr/bin/tool" (Binfmt.make ~prog:"tool" ~size:4096 ());
  ok (Kernel.chmod w.k w.init "/fat/usr/bin/tool" 0o755);
  check_i "exec via cntrfs" 42 (ok (Kernel.exec w.k w.init "/cntr/usr/bin/tool" [ "tool" ]))

(* --- paper's xfstests failure modes --------------------------------------- *)

let test_o_direct_rejected () =
  let w = boot () in
  write_file w.k w.init "/fat/f" "x";
  (* native: O_DIRECT works *)
  let fd = ok (Kernel.open_ w.k w.init "/fat/f" [ Types.O_RDONLY; Types.O_DIRECT ] ~mode:0) in
  ok (Kernel.close w.k w.init fd);
  (* through CntrFS: EINVAL (generic/391) *)
  check_err Errno.EINVAL (Kernel.open_ w.k w.init "/cntr/f" [ Types.O_RDONLY; Types.O_DIRECT ] ~mode:0)

let test_handles_not_exportable () =
  let w = boot () in
  write_file w.k w.init "/fat/f" "x";
  (* native: exportable *)
  ignore (ok (Kernel.name_to_handle_at w.k w.init "/fat/f"));
  (* through CntrFS: ENOTSUP (generic/426) *)
  check_err Errno.ENOTSUP (Kernel.name_to_handle_at w.k w.init "/cntr/f")

let test_rlimit_not_enforced () =
  let w = boot () in
  write_file w.k w.init "/fat/f" "";
  ok (Kernel.chmod w.k w.init "/fat/f" 0o666);
  let child = Kernel.fork w.k w.init in
  child.Proc.cred.Proc.uid <- 1000;
  child.Proc.cred.Proc.gid <- 1000;
  child.Proc.cred.Proc.caps <- Caps.Set.empty;
  Kernel.set_rlimit_fsize w.k child (Some 4);
  (* native: EFBIG *)
  let fd = ok (Kernel.open_ w.k child "/fat/f" [ Types.O_WRONLY ] ~mode:0) in
  check_err Errno.EFBIG (Kernel.write w.k child fd "12345678");
  ok (Kernel.close w.k child fd);
  (* through CntrFS: the server replays without the limit (generic/228) *)
  let fd = ok (Kernel.open_ w.k child "/cntr/f" [ Types.O_WRONLY ] ~mode:0) in
  check_i "limit lost through fuse" 8 (ok (Kernel.write w.k child fd "12345678"));
  ok (Kernel.close w.k child fd)

let test_setgid_not_cleared () =
  let w = boot () in
  (* file owned by uid 1000, group 2000 (owner not a member) *)
  write_file w.k w.init "/fat/f" "x";
  ok (Kernel.chown w.k w.init "/fat/f" ~uid:(Some 1000) ~gid:(Some 2000));
  let alice = Kernel.fork w.k w.init in
  alice.Proc.cred.Proc.uid <- 1000;
  alice.Proc.cred.Proc.gid <- 1000;
  alice.Proc.cred.Proc.groups <- [ 1000 ];
  alice.Proc.cred.Proc.caps <- Caps.Set.empty;
  (* native chmod: setgid silently cleared *)
  ok (Kernel.chmod w.k alice "/fat/f" 0o2755);
  let st = ok (Kernel.stat w.k w.init "/fat/f") in
  check_b "native clears setgid" true (st.Types.st_mode land Types.s_isgid = 0);
  (* through CntrFS: the server's CAP_FSETID keeps it (generic/375) *)
  ok (Kernel.chmod w.k alice "/cntr/f" 0o2755);
  let st = ok (Kernel.stat w.k w.init "/fat/f") in
  check_b "cntrfs keeps setgid" true (st.Types.st_mode land Types.s_isgid <> 0)

(* --- permission gating by the driver --------------------------------------- *)

let test_driver_checks_permissions () =
  let w = boot () in
  write_file w.k w.init "/fat/secret" "s";
  ok (Kernel.chmod w.k w.init "/fat/secret" 0o600);
  let alice = Kernel.fork w.k w.init in
  alice.Proc.cred.Proc.uid <- 1000;
  alice.Proc.cred.Proc.gid <- 1000;
  alice.Proc.cred.Proc.caps <- Caps.Set.empty;
  (* the server runs as root, but the driver's default_permissions gate
     must deny alice *)
  check_err Errno.EACCES (Kernel.open_ w.k alice "/cntr/secret" [ Types.O_RDONLY ] ~mode:0)

let test_sticky_through_mount () =
  let w = boot () in
  write_file w.k w.init "/fat/tmp/af" "x";
  ok (Kernel.chown w.k w.init "/fat/tmp/af" ~uid:(Some 1000) ~gid:(Some 1000));
  let bob = Kernel.fork w.k w.init in
  bob.Proc.cred.Proc.uid <- 1001;
  bob.Proc.cred.Proc.gid <- 1001;
  bob.Proc.cred.Proc.caps <- Caps.Set.empty;
  check_err Errno.EPERM (Kernel.unlink w.k bob "/cntr/tmp/af")

(* --- sockets through the mount --------------------------------------------- *)

let test_socket_refused_through_mount () =
  let w = boot () in
  let _lfd = ok (Kernel.socket_listen w.k w.init "/fat/x11.sock") in
  (* direct connect works *)
  let cfd = ok (Kernel.socket_connect w.k w.init "/fat/x11.sock") in
  ok (Kernel.close w.k w.init cfd);
  (* through CntrFS the inode identity differs: ECONNREFUSED — this is why
     CNTR needs its socket proxy (§3.2.4) *)
  check_err Errno.ECONNREFUSED (Kernel.socket_connect w.k w.init "/cntr/x11.sock")

(* --- caching behaviour ------------------------------------------------------ *)

let test_keep_cache_avoids_rereads () =
  let w = boot () in
  let data = String.make (64 * 1024) 'z' in
  write_file w.k w.init "/fat/big" data;
  (* first read through the mount: populates the driver cache *)
  ignore (read_file w.k w.init "/cntr/big");
  let reqs_after_first = (Session.stats w.session).Conn.requests in
  (* second read: FOPEN_KEEP_CACHE + page cache → no READ requests *)
  ignore (read_file w.k w.init "/cntr/big");
  let reqs_after_second = (Session.stats w.session).Conn.requests in
  let read_reqs =
    Option.value ~default:0
      (Hashtbl.find_opt (Session.stats w.session).Conn.by_kind "read")
  in
  check_b "some reads happened" true (read_reqs > 0);
  (* the delta allows open/release but no new read requests *)
  check_b "no new READs on warm read" true (reqs_after_second - reqs_after_first <= 3)

let test_no_keep_cache_rereads () =
  let w = boot ~opts:Opts.unoptimized () in
  let data = String.make (64 * 1024) 'z' in
  write_file w.k w.init "/fat/big" data;
  ignore (read_file w.k w.init "/cntr/big");
  let reads_first =
    Option.value ~default:0 (Hashtbl.find_opt (Session.stats w.session).Conn.by_kind "read")
  in
  ignore (read_file w.k w.init "/cntr/big");
  let reads_second =
    Option.value ~default:0 (Hashtbl.find_opt (Session.stats w.session).Conn.by_kind "read")
  in
  check_b "cache invalidated on open: rereads hit the server" true
    (reads_second > reads_first)

let test_write_costs_getxattr_lookup () =
  let w = boot () in
  write_file w.k w.init "/fat/log" "";
  ok (Kernel.chmod w.k w.init "/fat/log" 0o666);
  let before =
    Option.value ~default:0 (Hashtbl.find_opt (Session.stats w.session).Conn.by_kind "getxattr")
  in
  let fd = ok (Kernel.open_ w.k w.init "/cntr/log" [ Types.O_WRONLY; Types.O_APPEND ] ~mode:0) in
  for _ = 1 to 10 do
    ignore (ok (Kernel.write w.k w.init fd "entry\n"))
  done;
  ok (Kernel.close w.k w.init fd);
  let after =
    Option.value ~default:0 (Hashtbl.find_opt (Session.stats w.session).Conn.by_kind "getxattr")
  in
  check_i "one security.capability getxattr per write" 10 (after - before)

let test_unlinked_dirty_pages_discarded () =
  let w = boot () in
  (* create, write, close, unlink quickly: writeback should drop data *)
  write_file w.k w.init "/cntr/tmpfile" (String.make 8192 'q');
  ok (Kernel.unlink w.k w.init "/cntr/tmpfile");
  check_err Errno.ENOENT (Kernel.stat w.k w.init "/fat/tmpfile")

let test_fuse_virtual_time_overhead () =
  let w = boot () in
  write_file w.k w.init "/fat/f" (String.make 4096 'a');
  (* measure native read *)
  let t0 = Clock.now_ns w.k.Kernel.clock in
  ignore (read_file w.k w.init "/fat/f");
  let native = Int64.to_int (Int64.sub (Clock.now_ns w.k.Kernel.clock) t0) in
  let t1 = Clock.now_ns w.k.Kernel.clock in
  ignore (read_file w.k w.init "/cntr/f");
  let fuse = Int64.to_int (Int64.sub (Clock.now_ns w.k.Kernel.clock) t1) in
  check_b "cold fuse read costs more than native" true (fuse > native)

let () =
  Alcotest.run "cntrfs"
    [
      ( "passthrough",
        [
          Alcotest.test_case "read" `Quick test_passthrough_read;
          Alcotest.test_case "write coherent" `Quick test_passthrough_write_coherent;
          Alcotest.test_case "writeback flush on close" `Quick test_writeback_flush_on_close;
          Alcotest.test_case "partial page rmw" `Quick test_partial_page_rmw;
          Alcotest.test_case "dirs & rename remap" `Quick test_dirs_and_rename_remap;
          Alcotest.test_case "hardlink same ino" `Quick test_hardlink_same_ino;
          Alcotest.test_case "unlink" `Quick test_unlink_through_mount;
          Alcotest.test_case "symlink" `Quick test_symlink_through_mount;
          Alcotest.test_case "xattr" `Quick test_xattr_through_mount;
          Alcotest.test_case "readdir" `Quick test_readdir_through_mount;
          Alcotest.test_case "exec" `Quick test_exec_through_mount;
        ] );
      ( "xfstests-failure-modes",
        [
          Alcotest.test_case "O_DIRECT rejected (391)" `Quick test_o_direct_rejected;
          Alcotest.test_case "handles not exportable (426)" `Quick test_handles_not_exportable;
          Alcotest.test_case "rlimit not enforced (228)" `Quick test_rlimit_not_enforced;
          Alcotest.test_case "setgid not cleared (375)" `Quick test_setgid_not_cleared;
        ] );
      ( "permissions",
        [
          Alcotest.test_case "driver gates access" `Quick test_driver_checks_permissions;
          Alcotest.test_case "sticky bit" `Quick test_sticky_through_mount;
        ] );
      ( "sockets",
        [ Alcotest.test_case "connect refused via mount" `Quick test_socket_refused_through_mount ] );
      ( "caching",
        [
          Alcotest.test_case "keep_cache avoids rereads" `Quick test_keep_cache_avoids_rereads;
          Alcotest.test_case "no keep_cache rereads" `Quick test_no_keep_cache_rereads;
          Alcotest.test_case "getxattr per write" `Quick test_write_costs_getxattr_lookup;
          Alcotest.test_case "unlink drops dirty pages" `Quick test_unlinked_dirty_pages_discarded;
          Alcotest.test_case "virtual-time overhead" `Quick test_fuse_virtual_time_overhead;
        ] );
    ]
