(* Tests for the forwarding plane (§3.2.4): duplex echo, per-direction
   half-close, the backpressure ceiling, the [proxy] fault site, and the
   splice-vs-copy stream-equivalence property. *)

open Repro_util
open Repro_vfs
open Repro_os
module Proxy = Repro_proxy.Proxy
module Fault = Repro_fault.Fault
module Metrics = Repro_obs.Metrics

let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)

let errno = Alcotest.testable Errno.pp ( = )

let check_err expected = function
  | Ok _ -> Alcotest.failf "expected %s, got Ok" (Errno.to_string expected)
  | Error e -> Alcotest.check errno "errno" expected e

let ok = Errno.ok_exn

let boot () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let rootfs = Nativefs.create ~name:"root" ~clock ~cost Store.Ram () in
  let k = Kernel.create ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc k in
  List.iter (fun d -> ok (Kernel.mkdir k init d ~mode:0o755)) [ "/run"; "/tmp" ];
  (k, init)

let mk_plane ?mode ?buffer ?fault k init =
  let pd = Kernel.fork k init in
  pd.Proc.comm <- "proxyd";
  Proxy.create ?mode ?buffer ?fault ~kernel:k ~proc:pd ()

(* Listener at /run/backend.sock, plane forwarder at /tmp/front.sock,
   one connected client.  Returns (backend listener fd, client fd, fwd). *)
let bridge k init plane =
  let blfd = ok (Kernel.socket_listen k init "/run/backend.sock") in
  let fwd =
    ok
      (Proxy.forward plane ~front_proc:init ~back_proc:init
         ~backend_path:"/run/backend.sock" "/tmp/front.sock")
  in
  let cfd = ok (Kernel.socket_connect k init "/tmp/front.sock") in
  (blfd, cfd, fwd)

let counter k name = Metrics.counter_value (Repro_obs.Obs.metrics k.Kernel.obs) name
let gauge k name = Metrics.gauge_value (Repro_obs.Obs.metrics k.Kernel.obs) name

(* --- duplex echo ------------------------------------------------------------ *)

let test_duplex_echo () =
  let k, init = boot () in
  let plane = mk_plane k init in
  let blfd, cfd, fwd = bridge k init plane in
  ignore (ok (Kernel.write k init cfd "ping"));
  Proxy.drain plane;
  let sfd = ok (Kernel.socket_accept k init blfd) in
  check_s "client->backend" "ping" (ok (Kernel.read k init sfd ~len:64));
  ignore (ok (Kernel.write k init sfd "pong"));
  Proxy.drain plane;
  check_s "backend->client" "pong" (ok (Kernel.read k init cfd ~len:64));
  (* both directions in flight at once *)
  ignore (ok (Kernel.write k init cfd "abc"));
  ignore (ok (Kernel.write k init sfd "xyz"));
  Proxy.drain plane;
  check_s "c2b interleaved" "abc" (ok (Kernel.read k init sfd ~len:64));
  check_s "b2c interleaved" "xyz" (ok (Kernel.read k init cfd ~len:64));
  check_i "one proxied connection" 1 (Proxy.connection_count fwd);
  check_i "total counter" 1 (counter k "proxy.connections.total");
  check_b "bytes counted c2b" true (counter k "proxy.bytes.c2b" = 7);
  check_b "bytes counted b2c" true (counter k "proxy.bytes.b2c" = 7);
  check_b "splice mode actually spliced" true (counter k "proxy.splice.calls" > 0);
  check_b "reactor woke without busy polling" true (counter k "proxy.loop.wakeups" > 0);
  Proxy.close plane

let test_backend_down_refuses_loudly () =
  let k, init = boot () in
  let plane = mk_plane k init in
  (* no listener behind the forwarder's backend path *)
  let fwd =
    ok
      (Proxy.forward plane ~front_proc:init ~back_proc:init
         ~backend_path:"/run/nobody-home.sock" "/tmp/front.sock")
  in
  let cfd = ok (Kernel.socket_connect k init "/tmp/front.sock") in
  Proxy.drain plane;
  check_i "refused counted" 1 (counter k "proxy.connections.refused");
  check_i "not proxied" 0 (Proxy.connection_count fwd);
  (* the client observes a dead connection, not a hang *)
  check_err Errno.ECONNRESET (Kernel.read k init cfd ~len:16);
  (* the refusal left a trace event *)
  let spans = Repro_obs.Trace.spans (Repro_obs.Obs.tracer k.Kernel.obs) in
  check_b "trace event" true
    (List.exists (fun sp -> sp.Repro_obs.Trace.sp_name = "proxy.refused") spans);
  Proxy.close plane

(* --- half-close ordering ---------------------------------------------------- *)

let test_half_close_per_direction () =
  let k, init = boot () in
  let plane = mk_plane k init in
  let blfd, cfd, _fwd = bridge k init plane in
  ignore (ok (Kernel.write k init cfd "request"));
  ok (Kernel.shutdown_write k init cfd);
  Proxy.drain plane;
  let sfd = ok (Kernel.socket_accept k init blfd) in
  check_s "request before EOF" "request" (ok (Kernel.read k init sfd ~len:64));
  check_s "EOF propagated c2b" "" (ok (Kernel.read k init sfd ~len:64));
  (* the other direction stays open: the backend can still answer *)
  ignore (ok (Kernel.write k init sfd "late-reply"));
  Proxy.drain plane;
  check_s "reply after client half-close" "late-reply" (ok (Kernel.read k init cfd ~len:64));
  (* backend closes: EOF reaches the client, the connection retires *)
  ok (Kernel.close k init sfd);
  Proxy.drain plane;
  check_s "EOF propagated b2c" "" (ok (Kernel.read k init cfd ~len:64));
  check_b "connection retired" true (gauge k "proxy.connections.active" = 0.);
  Proxy.close plane

(* --- backpressure ceiling ---------------------------------------------------- *)

let test_backpressure_ceiling () =
  let k, init = boot () in
  let plane = mk_plane ~buffer:4096 k init in
  let _blfd, cfd, _fwd = bridge k init plane in
  (* nobody reads on the backend: the plane may buffer at most the two
     socket queues plus its 4 KiB staging pipe *)
  let ceiling = (2 * Pipe.default_capacity) + 4096 in
  let chunk = String.make 8192 'x' in
  let total = ref 0 in
  let rec stuff budget =
    if budget > 0 then begin
      let wrote =
        match Kernel.write k init cfd chunk with Ok n -> n | Error _ -> 0
      in
      Proxy.drain plane;
      total := !total + wrote;
      if wrote > 0 then stuff budget
      else begin
        (* one more attempt after a drain; stop when still stuck *)
        match Kernel.write k init cfd chunk with
        | Ok n when n > 0 ->
            total := !total + n;
            stuff (budget - 1)
        | _ -> ()
      end
    end
  in
  stuff 4;
  check_b "made progress" true (!total >= Pipe.default_capacity);
  check_b "in-flight bytes bounded" true (!total <= ceiling);
  check_b "stalls counted" true (counter k "proxy.buffer.stalls" > 0);
  Proxy.close plane

(* --- fault plane: the proxy site --------------------------------------------- *)

let arm k text =
  match Fault.parse text with
  | Ok (plan, _) -> Fault.arm ~obs:k.Kernel.obs ~clock:k.Kernel.clock plan
  | Error e -> Alcotest.failf "bad plan: %s" e

let roundtrip k init plane blfd cfd payload =
  ignore (ok (Kernel.write k init cfd payload));
  Proxy.drain plane;
  let sfd = ok (Kernel.socket_accept k init blfd) in
  let got = ok (Kernel.read k init sfd ~len:(String.length payload + 16)) in
  ok (Kernel.close k init sfd);
  Proxy.drain plane;
  got

let test_fault_delay_slows_but_delivers () =
  let k, init = boot () in
  let f = arm k "proxy data nth=1 delay=5000000" in
  let plane = mk_plane ~fault:f k init in
  let blfd, cfd, _fwd = bridge k init plane in
  let before = Clock.now_ns k.Kernel.clock in
  check_s "delivered despite delay" "slow" (roundtrip k init plane blfd cfd "slow");
  let elapsed = Int64.sub (Clock.now_ns k.Kernel.clock) before in
  check_b "the delay burned virtual time" true (Int64.compare elapsed 5_000_000L >= 0);
  check_i "fault recorded" 1 (counter k "fault.injected.proxy.delay");
  Proxy.close plane

let test_fault_accept_crash_refuses_then_recovers () =
  let k, init = boot () in
  let f = arm k "proxy accept nth=1 crash" in
  let plane = mk_plane ~fault:f k init in
  let blfd, cfd, fwd = bridge k init plane in
  ignore (ok (Kernel.write k init cfd "doomed"));
  Proxy.drain plane;
  (* first connection refused abortively: ECONNRESET, bounded, no hang *)
  check_err Errno.ECONNRESET (Kernel.read k init cfd ~len:16);
  check_i "refused counted" 1 (counter k "proxy.connections.refused");
  (* the plane stays usable: the next connection goes through *)
  let cfd2 = ok (Kernel.socket_connect k init "/tmp/front.sock") in
  ignore (ok (Kernel.write k init cfd2 "fine"));
  Proxy.drain plane;
  let sfd = ok (Kernel.socket_accept k init blfd) in
  check_s "second connection clean" "fine" (ok (Kernel.read k init sfd ~len:16));
  check_i "one proxied" 1 (Proxy.connection_count fwd);
  Proxy.close plane

let test_fault_data_crash_resets_connection () =
  let k, init = boot () in
  let f = arm k "proxy data nth=1 crash" in
  let plane = mk_plane ~fault:f k init in
  let blfd, cfd, _fwd = bridge k init plane in
  ignore (ok (Kernel.write k init cfd "boom"));
  Proxy.drain plane;
  check_err Errno.ECONNRESET (Kernel.read k init cfd ~len:16);
  check_b "nothing left active" true (gauge k "proxy.connections.active" = 0.);
  check_i "stranded bytes accounted" 4 (counter k "proxy.bytes.unflushed");
  (* the crashed connection's backend end is still queued on the listener *)
  let dead = ok (Kernel.socket_accept k init blfd) in
  check_err Errno.ECONNRESET (Kernel.read k init dead ~len:16);
  (* a fresh connection works: the plan's nth rule is spent *)
  let cfd2 = ok (Kernel.socket_connect k init "/tmp/front.sock") in
  ignore (ok (Kernel.write k init cfd2 "alive"));
  Proxy.drain plane;
  let sfd = ok (Kernel.socket_accept k init blfd) in
  check_s "plane survives the crash" "alive" (ok (Kernel.read k init sfd ~len:16));
  Proxy.close plane

(* --- splice and copy relays move identical streams --------------------------- *)

(* A random duplex schedule: writes in either direction with arbitrary
   drain points.  Both relay modes must deliver every accepted byte, in
   order, in both directions — and therefore identical streams.  Write
   volume stays under the socket queue capacity so acceptance itself
   cannot diverge between modes. *)
let run_schedule mode ops =
  let k, init = boot () in
  let plane = mk_plane ~mode ~buffer:8192 k init in
  let blfd, cfd, _fwd = bridge k init plane in
  Proxy.drain plane;
  let sfd = ok (Kernel.socket_accept k init blfd) in
  let sent_c2b = Buffer.create 256 and sent_b2c = Buffer.create 256 in
  let got_c2b = Buffer.create 256 and got_b2c = Buffer.create 256 in
  List.iteri
    (fun i op ->
      match op with
      | `C2b n ->
          let data = String.init n (fun j -> Char.chr (97 + ((i * 31) + j) mod 26)) in
          (match Kernel.write k init cfd data with
          | Ok m -> Buffer.add_string sent_c2b (String.sub data 0 m)
          | Error _ -> ())
      | `B2c n ->
          let data = String.init n (fun j -> Char.chr (65 + ((i * 17) + j) mod 26)) in
          (match Kernel.write k init sfd data with
          | Ok m -> Buffer.add_string sent_b2c (String.sub data 0 m)
          | Error _ -> ())
      | `Drain -> Proxy.drain plane)
    ops;
  Proxy.drain plane;
  let rec slurp fd buf =
    match Kernel.read k init fd ~len:4096 with
    | Ok s when s <> "" ->
        Buffer.add_string buf s;
        slurp fd buf
    | _ -> ()
  in
  slurp sfd got_c2b;
  slurp cfd got_b2c;
  Proxy.close plane;
  ( Buffer.contents sent_c2b,
    Buffer.contents sent_b2c,
    Buffer.contents got_c2b,
    Buffer.contents got_b2c )

let prop_splice_equals_copy =
  let op =
    QCheck.Gen.(
      frequency
        [
          (3, map (fun n -> `C2b n) (int_range 1 1024));
          (3, map (fun n -> `B2c n) (int_range 1 1024));
          (2, return `Drain);
        ])
  in
  let print_op = function
    | `C2b n -> Printf.sprintf "c2b:%d" n
    | `B2c n -> Printf.sprintf "b2c:%d" n
    | `Drain -> "drain"
  in
  QCheck.Test.make ~name:"splice plane streams = copy relay streams" ~count:60
    (QCheck.make
       ~print:(fun l -> String.concat " " (List.map print_op l))
       QCheck.Gen.(list_size (int_range 1 40) op))
    (fun ops ->
      let s_sent_c2b, s_sent_b2c, s_got_c2b, s_got_b2c = run_schedule Proxy.Splice ops in
      let c_sent_c2b, c_sent_b2c, c_got_c2b, c_got_b2c = run_schedule Proxy.Copy ops in
      (* no relay loses, duplicates or reorders accepted bytes *)
      s_got_c2b = s_sent_c2b && s_got_b2c = s_sent_b2c
      && c_got_c2b = c_sent_c2b
      && c_got_b2c = c_sent_b2c
      (* and the two planes moved identical streams *)
      && s_got_c2b = c_got_c2b
      && s_got_b2c = c_got_b2c)

let () =
  Alcotest.run "proxy"
    [
      ( "plane",
        [
          Alcotest.test_case "duplex echo" `Quick test_duplex_echo;
          Alcotest.test_case "backend down refuses loudly" `Quick test_backend_down_refuses_loudly;
          Alcotest.test_case "half-close per direction" `Quick test_half_close_per_direction;
          Alcotest.test_case "backpressure ceiling" `Quick test_backpressure_ceiling;
        ] );
      ( "faults",
        [
          Alcotest.test_case "delay delivers late" `Quick test_fault_delay_slows_but_delivers;
          Alcotest.test_case "accept crash refuses, plane survives" `Quick
            test_fault_accept_crash_refuses_then_recovers;
          Alcotest.test_case "data crash resets, plane survives" `Quick
            test_fault_data_crash_resets_connection;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_splice_equals_copy ] );
    ]
