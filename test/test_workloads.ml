(* Calibration gates for E2-E4: each key workload's measured overhead must
   stay in a band around the paper's value, so cost-model regressions are
   caught by CI rather than by re-reading benchmark output. *)

open Repro_workloads
open Repro_fuse

let check_b = Alcotest.(check bool)

let find name =
  List.find (fun w -> w.Bench_env.w_name = name) Suite.figure2

let in_band name lo hi () =
  let w = find name in
  let o = Bench_env.overhead w in
  check_b
    (Printf.sprintf "%s overhead %.2f in [%.2f, %.2f] (paper %.1f)" name o lo hi
       w.Bench_env.w_paper)
    true
    (o >= lo && o <= hi)

(* The paper's three claims that CntrFS *wins*. *)
let test_cntrfs_wins () =
  List.iter
    (fun name ->
      let o = Bench_env.overhead (find name) in
      check_b (name ^ " faster through CntrFS") true (o < 1.0))
    [ "FIO"; "Pgbench"; "Threaded I/O: Write" ]

(* The pathological cases keep their rank order. *)
let test_rank_order () =
  let o name = Bench_env.overhead (find name) in
  let read = o "Compileb.: Read" in
  let create = o "Compileb.: Create" in
  let postmark = o "PostMark" in
  let gzip = o "Gzip" in
  check_b "read tree is the worst case" true (read > create && read > postmark);
  check_b "lookup-heavy >> compute-bound" true (create > 3. *. gzip)

let test_figure3_directions () =
  let figs = Experiments.figure3 () in
  List.iter
    (fun a ->
      check_b
        (Printf.sprintf "%s improves (%.1f -> %.1f)" a.Experiments.a_name a.Experiments.a_before
           a.Experiments.a_after)
        true
        (a.Experiments.a_after > a.Experiments.a_before))
    figs;
  (* panel-specific magnitudes *)
  let get n = List.nth figs n in
  let ratio a = a.Experiments.a_after /. a.Experiments.a_before in
  check_b "keep_cache >= 4x" true (ratio (get 0) >= 4.);
  check_b "writeback >= 1.2x" true (ratio (get 1) >= 1.2);
  check_b "parallel dirops in [1.8x, 3.5x]" true (ratio (get 2) >= 1.8 && ratio (get 2) <= 3.5);
  check_b "splice read small gain (<12%)" true (ratio (get 3) >= 1.0 && ratio (get 3) <= 1.12)

let test_figure4_shape () =
  let points = Experiments.figure4 () in
  let mbps = List.map (fun p -> p.Experiments.tp_mbps) points in
  (* monotonically non-increasing: extra idle workers never *help* a
     single reader, and with targeted wakeups they may no longer hurt *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a >= b && mono rest
    | _ -> true
  in
  check_b "throughput never rises with threads" true (mono mbps);
  let first = List.hd mbps in
  let at n =
    (List.find (fun p -> p.Experiments.tp_threads = n) points).Experiments.tp_mbps
  in
  (* Per-worker deques + targeted wakeups retired the herd tax: the old
     gate demanded the paper's 2-12% penalty at 16 threads, the sharded
     queues must keep it under 3%. *)
  let drop = 1. -. (at 16 /. first) in
  check_b (Printf.sprintf "drop at 16 threads %.1f%% in [0%%, 3%%]" (drop *. 100.)) true
    (drop >= 0. && drop <= 0.03);
  (* the extended tail probes far past the paper's axis: a 256-thread
     pool may pay a little for its sparse placements but must not
     collapse *)
  check_b "256-thread leg holds >= 95% of single-thread" true (at 256 /. first >= 0.95)

let test_figure4_deterministic () =
  (* the sweep derives entirely from the virtual clock and the fixed
     workload, so two runs render identical points — this is what makes
     `bench/main.exe e4 --json` write a byte-identical BENCH_e4.json *)
  let render pts =
    String.concat "\n"
      (List.map
         (fun p ->
           Printf.sprintf "%d %.6f" p.Experiments.tp_threads p.Experiments.tp_mbps)
         pts)
  in
  let a = render (Experiments.figure4 ()) in
  let b = render (Experiments.figure4 ()) in
  Alcotest.(check string) "identical timeline on re-run" a b

let test_unoptimized_much_worse () =
  (* the whole point of §3.3: default opts beat the unoptimized config *)
  let w = find "Compileb.: Read" in
  let opt = Bench_env.overhead w in
  let unopt = Bench_env.overhead ~opts:Opts.unoptimized w in
  check_b
    (Printf.sprintf "unoptimized (%.1fx) much worse than optimized (%.1fx)" unopt opt)
    true
    (unopt > 1.5 *. opt)

let test_deterministic () =
  let w = find "PostMark" in
  let a = Bench_env.overhead w and b = Bench_env.overhead w in
  Alcotest.(check (float 1e-9)) "same result on re-run" a b

let band name lo hi = Alcotest.test_case name `Slow (in_band name lo hi)

let () =
  Alcotest.run "workloads"
    [
      ( "figure2-bands",
        [
          band "AIO-Stress" 2.0 3.6;
          band "Apachebench" 1.15 1.9;
          band "Compileb.: Read" 7.0 16.0;
          band "Compileb.: Create" 4.5 10.0;
          band "PostMark" 4.5 9.5;
          band "Dbench: 128 Clients" 0.9 1.15;
          band "Gzip" 0.95 1.1;
          band "FS-Mark" 0.85 1.3;
          band "IOzone: Read" 1.4 2.6;
          band "SQlite" 1.2 2.3;
          band "Unpack tarball" 1.05 1.7;
        ] );
      ( "figure2-claims",
        [
          Alcotest.test_case "cntrfs wins where the paper says" `Slow test_cntrfs_wins;
          Alcotest.test_case "rank order" `Slow test_rank_order;
          Alcotest.test_case "deterministic" `Slow test_deterministic;
        ] );
      ( "figure3",
        [ Alcotest.test_case "ablation directions & magnitudes" `Slow test_figure3_directions ] );
      ( "figure4",
        [
          Alcotest.test_case "thread sweep shape" `Slow test_figure4_shape;
          Alcotest.test_case "deterministic sweep" `Slow test_figure4_deterministic;
        ] );
      ( "optimizations",
        [ Alcotest.test_case "unoptimized much worse" `Slow test_unoptimized_much_worse ] );
    ]
