(* Shared plumbing for the cntr subcommands: the demo world every
   invocation boots, container resolution honoring --engine, and the
   --engine/--seed flags themselves. *)

open Repro_util
open Repro_runtime
open Repro_cntr
open Cmdliner

let ok = Errno.ok_exn

(* Flags shared by every subcommand that touches the fleet. *)
type common = { engine : string option; seed : int }

(* Boot the demo machine: one app container per engine + the fat image. *)
let demo_world () =
  let world = Testbed.create () in
  let containers =
    [
      ("docker", "web", "nginx:latest");
      ("docker", "cache", "redis:latest");
      ("lxc", "db", "postgres:latest");
      ("rkt", "queue", "rabbitmq:latest");
      ("systemd-nspawn", "search", "elasticsearch:latest");
    ]
  in
  List.iter
    (fun (engine, name, image) ->
      ignore (ok (World.run_container world ~engine:(World.engine world engine) ~name ~image_ref:image ())))
    containers;
  ignore
    (ok
       (World.run_container world ~engine:(World.docker world) ~name:"debug"
          ~image_ref:"cntr/debug-tools:latest" ()));
  world

(* Resolve a container name, restricted to --engine when given. *)
let resolve world common name =
  let engines =
    match common.engine with
    | None -> world.World.engines
    | Some e -> (
        match Engine.by_name world.World.engines e with
        | Some engine -> [ engine ]
        | None -> [])
  in
  Engine.resolve_any engines name

let engine_arg =
  Arg.(value & opt (some string) None
       & info [ "engine"; "e" ] ~docv:"ENGINE"
           ~doc:"Operate on this container engine only (docker, lxc, rkt, systemd-nspawn).")

let seed_arg =
  Arg.(value & opt int 0xc47
       & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for the scripted deterministic workloads; identical seeds give bit-identical runs.")

let common_term = Term.(const (fun engine seed -> { engine; seed }) $ engine_arg $ seed_arg)
