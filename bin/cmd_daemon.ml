(* `cntr daemon [--wire] [--json]`: boot the demo fleet, start cntrd with
   deliberately small quotas, and drive a scripted multi-tenant session
   mix through the JSON-RPC API — admission queueing, a quota rejection,
   a cancellation, an injected crash with transparent recovery, and
   idempotent detach.  Prints the event stream and the final ctrl.*
   counters; --wire carries every request Content-Length-framed over the
   forwarding plane instead of in-process. *)

open Repro_util
open Repro_ctrl
open Cmdliner

let wire_path = "/run/cntrd.sock"

let counters obs =
  let m = Repro_obs.Obs.metrics obs in
  fun name -> Repro_obs.Metrics.counter_value m name

let run common json wire =
  let world = Cmd_common.demo_world () in
  let say fmt =
    if json then Printf.ifprintf stdout fmt else Printf.printf fmt
  in
  let plan_text =
    Printf.sprintf "seed %d\nctrl exec nth=4 crash" common.Cmd_common.seed
  in
  let plan =
    match Repro_fault.Fault.parse plan_text with
    | Ok (plan, _) -> plan
    | Error msg -> failwith ("cntr daemon: internal fault plan rejected: " ^ msg)
  in
  let config =
    {
      Daemon.default_config with
      Daemon.c_max_active = 3;
      c_queue_depth = 2;
      c_tenant = { Daemon.q_active = 2; q_queued = 2 };
      c_fault = Some plan;
    }
  in
  let daemon = Daemon.create ~config world in
  let client =
    if wire then
      match Daemon.wire_serve daemon ~path:wire_path () with
      | Ok w -> Client.connect w
      | Error e -> failwith ("cntr daemon: cannot serve wire: " ^ Errno.message e)
    else Client.in_process daemon
  in
  ignore (Client.subscribe client);
  let transport = if wire then wire_path else "in-process" in
  say "cntrd serving %s (seed %#x): max_active=3 queue_depth=2 tenant=2/2\n"
    transport common.Cmd_common.seed;
  (* Fill capacity: one session per tenant. *)
  let create tenant container =
    match Client.session_create client ~tenant container with
    | Ok c ->
        say "session %d: %s for %s (queue wait %dus)\n" c.Client.sc_session
          container tenant c.Client.sc_queue_wait_us;
        c.Client.sc_session
    | Error err -> failwith ("cntr daemon: create failed: " ^ err.Rpc.e_message)
  in
  let s1 = create "ops" "web" in
  let s2 = create "dev" "cache" in
  let s3 = create "ci" "db" in
  (* Capacity is full: the next two creates park in the admission queue,
     the third bounces off the queue bound. *)
  let park tenant container =
    let params =
      Jsonx.Obj [ ("container", Jsonx.Str container); ("tenant", Jsonx.Str tenant) ]
    in
    let tk = Client.submit client ~params "session.create" in
    (match Client.poll client tk with
    | None -> say "create %s for %s: parked in admission queue\n" container tenant
    | Some _ -> say "create %s for %s: answered immediately\n" container tenant);
    tk
  in
  let tk_queue = park "ops" "queue" in
  let tk_search = park "dev" "search" in
  let params =
    Jsonx.Obj [ ("container", Jsonx.Str "web"); ("tenant", Jsonx.Str "ci") ]
  in
  let tk_reject = Client.submit client ~params "session.create" in
  (match Client.poll client tk_reject with
  | Some { Rpc.p_result = Error e; _ } when e.Rpc.e_code = Rpc.admission_rejected ->
      say "create web for ci: rejected (%s)\n" e.Rpc.e_message
  | _ -> say "create web for ci: expected an admission rejection\n");
  (* Cancel one parked create. *)
  Client.cancel client tk_queue;
  (match Client.poll client tk_queue with
  | Some { Rpc.p_result = Error e; _ } when e.Rpc.e_code = Rpc.cancelled ->
      say "create queue for ops: cancelled while queued\n"
  | _ -> say "create queue for ops: expected cancellation\n");
  (* Drive the active sessions; the fault plan crashes the attach server
     under the 4th exec and cntrd recovers it transparently. *)
  let exec sid cmd =
    match Client.session_exec client ~session:sid cmd with
    | Ok x ->
        if x.Client.sx_recovered then
          say "session %d: recovered after injected crash, then ran %s\n" sid cmd
        else say "session %d: $ %s -> %d\n" sid cmd x.Client.sx_code
    | Error err -> say "session %d: exec failed: %s\n" sid err.Rpc.e_message
  in
  exec s1 "hostname";
  exec s1 "ps";
  exec s2 "hostname";
  exec s3 "hostname";
  (* One batched round trip: three execs in a single JSON-RPC array
     envelope (one frame over the wire), replies claimed out of order. *)
  let batched =
    Client.batch client (fun () ->
        List.map (fun sid -> (sid, Client.start_exec client ~session:sid "ls /etc")) [ s1; s2; s3 ])
  in
  List.iter
    (fun (sid, h) ->
      match Client.finish client h with
      | Ok x -> say "session %d: batched $ ls /etc -> %d\n" sid x.Client.sx_code
      | Error err -> say "session %d: batched exec failed: %s\n" sid err.Rpc.e_message)
    (List.rev batched);
  (* Detaching frees a slot: the parked create gets admitted (FIFO). *)
  ignore (Client.session_detach client ~session:s1);
  say "session %d: detached\n" s1;
  let s4 =
    match Client.poll client tk_search with
    | Some { Rpc.p_result = Ok v; _ } ->
        let sid = Option.value (Jsonx.field_int v "session") ~default:(-1) in
        say "session %d: search for dev admitted after %dus in queue\n" sid
          (Option.value (Jsonx.field_int v "queue_wait_us") ~default:0);
        Some sid
    | _ ->
        say "create search for dev: expected admission after detach\n";
        None
  in
  (match s4 with Some sid -> exec sid "hostname" | None -> ());
  (* The session table, then drain it. *)
  (match Client.session_list client with
  | Ok rows ->
      say "sessions:\n";
      List.iter
        (fun r ->
          say "  #%d %-6s %-8s %-9s execs=%d\n" r.Client.sr_session r.Client.sr_tenant
            r.Client.sr_container r.Client.sr_state r.Client.sr_execs)
        rows;
      List.iter (fun r -> ignore (Client.session_detach client ~session:r.Client.sr_session)) rows
  | Error _ -> ());
  (match Client.session_detach client ~session:s1 with
  | Ok true -> say "session %d: detach again -> already detached (idempotent)\n" s1
  | _ -> say "session %d: expected idempotent detach\n" s1);
  let events = Client.notifications client in
  List.iter
    (fun n ->
      match Option.bind (Jsonx.mem n "params") (fun p -> Jsonx.field_str p "event") with
      | Some ev ->
          let sid =
            Option.bind (Jsonx.mem n "params") (fun p -> Jsonx.field_int p "session")
          in
          say "event: %-16s%s\n" ev
            (match sid with Some s -> Printf.sprintf " session=%d" s | None -> "")
      | None -> ())
    events;
  let obs = Daemon.obs daemon in
  let c = counters obs in
  let active =
    int_of_float (Repro_obs.Metrics.gauge_value (Repro_obs.Obs.metrics obs) "ctrl.sessions.active")
  in
  let wait = Repro_obs.Metrics.histogram_summary (Repro_obs.Obs.metrics obs) "ctrl.queue.wait_us" in
  if json then begin
    let summary =
      match wait with
      | None -> Jsonx.Null
      | Some s ->
          Jsonx.Obj
            [
              ("count", Jsonx.Int s.Repro_obs.Metrics.s_count);
              ("mean", Jsonx.Float s.Repro_obs.Metrics.s_mean);
              ("p95", Jsonx.Float s.Repro_obs.Metrics.s_p95);
            ]
    in
    let doc =
      Jsonx.Obj
        [
          ("protocol", Jsonx.Str "cntrd/1.0");
          ("transport", Jsonx.Str transport);
          ( "sessions",
            Jsonx.Obj
              [
                ("total", Jsonx.Int (c "ctrl.sessions.total"));
                ("rejected", Jsonx.Int (c "ctrl.sessions.rejected"));
                ("recovered", Jsonx.Int (c "ctrl.sessions.recovered"));
                ("active", Jsonx.Int active);
              ] );
          ( "rpc",
            Jsonx.Obj
              [
                ("calls", Jsonx.Int (c "ctrl.rpc.calls"));
                ("cancelled", Jsonx.Int (c "ctrl.rpc.cancelled"));
              ] );
          ("queue_wait_us", summary);
          ("events", Jsonx.Int (List.length events));
        ]
    in
    print_endline (Jsonx.to_string doc)
  end
  else begin
    Printf.printf
      "ctrl.sessions: total=%d rejected=%d recovered=%d active=%d\n"
      (c "ctrl.sessions.total") (c "ctrl.sessions.rejected")
      (c "ctrl.sessions.recovered") active;
    Printf.printf "ctrl.rpc: calls=%d cancelled=%d\n" (c "ctrl.rpc.calls")
      (c "ctrl.rpc.cancelled");
    if wire then
      Printf.printf
        "ctrl.wire: conns=%d batches=%d pipelined.max=%.0f stalls=%d overloaded=%d\n"
        (c "ctrl.wire.conns") (c "ctrl.wire.batches")
        (Repro_obs.Metrics.gauge_value (Repro_obs.Obs.metrics obs) "ctrl.wire.pipelined.max")
        (c "ctrl.wire.stalls") (c "ctrl.wire.overloaded");
    match wait with
    | Some s ->
        Printf.printf "ctrl.queue.wait_us: count=%d mean=%.1f p95=%.1f\n"
          s.Repro_obs.Metrics.s_count s.Repro_obs.Metrics.s_mean
          s.Repro_obs.Metrics.s_p95
    | None -> ()
  end;
  0

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the final ctrl.* counters as deterministic JSON instead of the narrated run.")

let wire_arg =
  Arg.(value & flag & info [ "wire" ]
         ~doc:"Carry every request Content-Length-framed over the forwarding plane (the bytes a remote client would send) instead of in-process dispatch.")

let cmd =
  Cmd.v
    (Cmd.info "daemon"
       ~doc:"Run cntrd over the demo fleet and drive a scripted multi-tenant session mix through its JSON-RPC API.")
    Term.(const run $ Cmd_common.common_term $ json_arg $ wire_arg)
