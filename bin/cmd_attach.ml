(* `cntr attach <container>`: nested namespace, tools, scripted shell,
   then the session's traffic summary.  A thin client: the attach itself
   runs in an in-process cntrd ([Repro_ctrl.Daemon]) and every verb goes
   through the JSON-RPC session API ([Ctrl.Client]). *)

open Repro_util
open Repro_runtime
open Repro_ctrl
open Cmdliner

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> Ok text
  | exception Sys_error msg -> Error msg

let run common name fat fault_plan command =
  let world = Cmd_common.demo_world () in
  match Cmd_common.resolve world common name with
  | Error e ->
      Printf.eprintf "cntr: cannot resolve %s: %s\n" name (Errno.message e);
      1
  | Ok (_engine, container) -> (
      let plan_text =
        match fault_plan with
        | None -> Ok None
        | Some file -> Result.map Option.some (read_file file)
      in
      match plan_text with
      | Error msg ->
          Printf.eprintf "cntr: bad fault plan: %s\n" msg;
          1
      | Ok fault_plan -> (
          let daemon = Daemon.create world in
          let client = Client.in_process daemon in
          match
            Client.session_create client ~tenant:"cli" ?tools:fat ?fault_plan
              container.Container.ct_name
          with
          | Error err ->
              Printf.eprintf "cntr: cannot attach to %s: %s\n" name err.Rpc.e_message;
              1
          | Ok created ->
              let sid = created.Client.sc_session in
              Printf.printf "attached to %s (pid %d, cgroup %s)\n" name
                created.Client.sc_pid created.Client.sc_cgroup;
              let commands =
                match command with
                | Some c -> [ c ]
                | None ->
                    (* scripted interactive session *)
                    [
                      "hostname";
                      "which gdb";
                      "ls /var/lib/cntr";
                      "ls /var/lib/cntr/etc";
                      "ps";
                      "mount";
                    ]
              in
              let code =
                List.fold_left
                  (fun _ cmd ->
                    Printf.printf "[cntr] $ %s\n" cmd;
                    match Client.session_exec client ~session:sid cmd with
                    | Ok x ->
                        print_string x.Client.sx_output;
                        x.Client.sx_code
                    | Error err ->
                        Printf.eprintf "cntr: %s\n" err.Rpc.e_message;
                        1)
                  0 commands
              in
              (match Client.session_stat client ~session:sid with
              | Ok stat ->
                  print_string (Option.value (Jsonx.field_str stat "report") ~default:"")
              | Error _ -> ());
              ignore (Client.session_detach client ~session:sid);
              Printf.printf "[cntr] detached; container left running\n";
              code))

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CONTAINER" ~doc:"Container name or id prefix.")

let fat_arg =
  Arg.(value & opt (some string) None & info [ "fat-container"; "f" ] ~docv:"NAME"
         ~doc:"Serve the tools from this fat container instead of the host.")

let fault_plan_arg =
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"FILE"
         ~doc:"Arm a deterministic fault plan over the session (see DESIGN.md for the plan-file grammar).")

let command_arg =
  Arg.(value & opt (some string) None & info [ "command"; "c" ] ~docv:"CMD"
         ~doc:"Run a single command instead of the scripted shell.")

let cmd =
  Cmd.v
    (Cmd.info "attach" ~doc:"Attach to a container: nested namespace, tools, shell.")
    Term.(const run $ Cmd_common.common_term $ name_arg $ fat_arg $ fault_plan_arg $ command_arg)
