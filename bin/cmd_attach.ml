(* `cntr attach <container>`: nested namespace, tools, scripted shell,
   then the session's traffic summary. *)

open Repro_util
open Repro_runtime
open Repro_cntr
open Cmdliner

let run common name fat fault_plan command =
  let world = Cmd_common.demo_world () in
  match Cmd_common.resolve world common name with
  | Error e ->
      Printf.eprintf "cntr: cannot resolve %s: %s\n" name (Errno.message e);
      1
  | Ok (_engine, container) -> (
      let tools =
        match fat with None -> Attach.From_host | Some f -> Attach.From_container f
      in
      let plan =
        match fault_plan with
        | None -> Ok (None, None)
        | Some file -> (
            match Repro_fault.Fault.of_file file with
            | Ok (plan, retry) -> Ok (Some plan, retry)
            | Error msg -> Error msg)
      in
      match plan with
      | Error msg ->
          Printf.eprintf "cntr: bad fault plan: %s\n" msg;
          1
      | Ok (fault, retry) -> (
      let config = { Attach.Config.default with Attach.Config.tools; fault; retry } in
      match Testbed.attach world ~config container.Container.ct_name with
      | Error e ->
          Printf.eprintf "cntr: cannot attach to %s: %s\n" name (Errno.message e);
          1
      | Ok session ->
          let ctx = Attach.context session in
          Printf.printf "attached to %s (pid %d, cgroup %s)\n" name ctx.Context.cx_pid
            ctx.Context.cx_cgroup;
          let commands =
            match command with
            | Some c -> [ c ]
            | None ->
                (* scripted interactive session *)
                [
                  "hostname";
                  "which gdb";
                  "ls /var/lib/cntr";
                  "ls /var/lib/cntr/etc";
                  "ps";
                  "mount";
                ]
          in
          let code =
            List.fold_left
              (fun _ cmd ->
                Printf.printf "[cntr] $ %s\n" cmd;
                let code, out = Attach.run session cmd in
                print_string out;
                code)
              0 commands
          in
          Printf.printf "%s" (Attach.report session);
          Attach.detach session;
          Printf.printf "[cntr] detached; container left running\n";
          code))

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CONTAINER" ~doc:"Container name or id prefix.")

let fat_arg =
  Arg.(value & opt (some string) None & info [ "fat-container"; "f" ] ~docv:"NAME"
         ~doc:"Serve the tools from this fat container instead of the host.")

let fault_plan_arg =
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"FILE"
         ~doc:"Arm a deterministic fault plan over the session (see DESIGN.md for the plan-file grammar).")

let command_arg =
  Arg.(value & opt (some string) None & info [ "command"; "c" ] ~docv:"CMD"
         ~doc:"Run a single command instead of the scripted shell.")

let cmd =
  Cmd.v
    (Cmd.info "attach" ~doc:"Attach to a container: nested namespace, tools, shell.")
    Term.(const run $ Cmd_common.common_term $ name_arg $ fat_arg $ fault_plan_arg $ command_arg)
