(* `cntr ls-containers` (alias: `list`): the demo fleet, one row per
   container, optionally restricted to one engine. *)

open Repro_runtime
open Cmdliner

let run common =
  let world = Cmd_common.demo_world () in
  let engines =
    match common.Cmd_common.engine with
    | None -> world.World.engines
    | Some e -> (
        match Engine.by_name world.World.engines e with
        | Some engine -> [ engine ]
        | None ->
            Printf.eprintf "cntr: unknown engine %s\n" e;
            [])
  in
  if engines = [] then 1
  else begin
    Printf.printf "%-16s %-8s %-14s %-24s %s\n" "ENGINE" "PID" "ID" "IMAGE" "NAME";
    List.iter
      (fun engine ->
        List.iter
          (fun c ->
            Printf.printf "%-16s %-8d %-14s %-24s %s\n" engine.Engine.e_name (Container.pid c)
              (Container.short_id c)
              (Repro_image.Image.ref_ c.Container.ct_image)
              c.Container.ct_name)
          (Engine.list engine))
      engines;
    0
  end

let term = Term.(const run $ Cmd_common.common_term)
let cmd = Cmd.v (Cmd.info "ls-containers" ~doc:"List the demo fleet's containers.") term

(* Back-compat spelling from earlier releases. *)
let alias = Cmd.v (Cmd.info "list" ~doc:"Alias of ls-containers.") term
