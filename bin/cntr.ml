(* cntr — the command-line front end, mirroring the real tool's interface:

     cntr attach <container> [--fat-container NAME] [--command CMD] [--engine E]
     cntr list
     cntr demo

   The simulation is self-contained: each invocation boots a world with a
   demo fleet (one slim container per engine plus a fat debug container)
   and operates on it.  `attach` drops into a scripted shell unless
   --command is given. *)

open Repro_util
open Repro_runtime
open Repro_cntr
open Cmdliner

let ok = Errno.ok_exn

(* Boot the demo machine: one app container per engine + the fat image. *)
let demo_world () =
  let world = Testbed.create () in
  let containers =
    [
      ("docker", "web", "nginx:latest");
      ("docker", "cache", "redis:latest");
      ("lxc", "db", "postgres:latest");
      ("rkt", "queue", "rabbitmq:latest");
      ("systemd-nspawn", "search", "elasticsearch:latest");
    ]
  in
  List.iter
    (fun (engine, name, image) ->
      ignore (ok (World.run_container world ~engine:(World.engine world engine) ~name ~image_ref:image ())))
    containers;
  ignore
    (ok
       (World.run_container world ~engine:(World.docker world) ~name:"debug"
          ~image_ref:"cntr/debug-tools:latest" ()));
  world

let list_cmd () =
  let world = demo_world () in
  Printf.printf "%-16s %-8s %-14s %-24s %s\n" "ENGINE" "PID" "ID" "IMAGE" "NAME";
  List.iter
    (fun engine ->
      List.iter
        (fun c ->
          Printf.printf "%-16s %-8d %-14s %-24s %s\n" engine.Engine.e_name (Container.pid c)
            (Container.short_id c)
            (Repro_image.Image.ref_ c.Container.ct_image)
            c.Container.ct_name)
        (Engine.list engine))
    world.World.engines;
  0

let attach_cmd name fat command =
  let world = demo_world () in
  let tools =
    match fat with None -> Attach.From_host | Some f -> Attach.From_container f
  in
  match Testbed.attach world ~tools name with
  | Error e ->
      Printf.eprintf "cntr: cannot attach to %s: %s\n" name (Errno.message e);
      1
  | Ok session ->
      let ctx = Attach.context session in
      Printf.printf "attached to %s (pid %d, cgroup %s)\n" name ctx.Context.cx_pid
        ctx.Context.cx_cgroup;
      let commands =
        match command with
        | Some c -> [ c ]
        | None ->
            (* scripted interactive session *)
            [
              "hostname";
              "which gdb";
              "ls /var/lib/cntr";
              "ls /var/lib/cntr/etc";
              "ps";
              "mount";
            ]
      in
      let code =
        List.fold_left
          (fun _ cmd ->
            Printf.printf "[cntr] $ %s\n" cmd;
            let code, out = Attach.run session cmd in
            print_string out;
            code)
          0 commands
      in
      Printf.printf "%s" (Attach.report session);
      Attach.detach session;
      Printf.printf "[cntr] detached; container left running\n";
      code

let demo_cmd () =
  let world = demo_world () in
  let session = ok (Testbed.attach world ~tools:(Attach.From_container "debug") "web") in
  Printf.printf "attach web with tools from the 'debug' container:\n";
  List.iter
    (fun cmd ->
      Printf.printf "[cntr] $ %s\n" cmd;
      let _c, out = Attach.run session cmd in
      print_string out)
    [ "which gdb"; "stat /var/lib/cntr/etc/nginx.conf"; "id" ];
  Attach.detach session;
  0

(* --- cmdliner plumbing ------------------------------------------------------ *)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CONTAINER" ~doc:"Container name or id prefix.")

let fat_arg =
  Arg.(value & opt (some string) None & info [ "fat-container"; "f" ] ~docv:"NAME"
         ~doc:"Serve the tools from this fat container instead of the host.")

let command_arg =
  Arg.(value & opt (some string) None & info [ "command"; "c" ] ~docv:"CMD"
         ~doc:"Run a single command instead of the scripted shell.")

let attach_t =
  Cmd.v
    (Cmd.info "attach" ~doc:"Attach to a container: nested namespace, tools, shell.")
    Term.(const attach_cmd $ name_arg $ fat_arg $ command_arg)

let list_t = Cmd.v (Cmd.info "list" ~doc:"List the demo fleet's containers.") Term.(const list_cmd $ const ())

let demo_t =
  Cmd.v (Cmd.info "demo" ~doc:"Container-to-container debugging demo.") Term.(const demo_cmd $ const ())

let main =
  Cmd.group
    (Cmd.info "cntr" ~version:"1.0.0"
       ~doc:"Lightweight OS containers: attach fat tool images to slim application containers (simulated reproduction of USENIX ATC'18).")
    [ attach_t; list_t; demo_t ]

let () = exit (Cmd.eval' main)
