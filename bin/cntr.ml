(* cntr — the command-line front end, mirroring the real tool's interface:

     cntr attach <container> [--fat-container NAME] [--command CMD] [--engine E]
     cntr exec <container> <cmd> [--fat-container NAME]
     cntr ls-containers [--engine E]        (alias: list)
     cntr stats [CONTAINER] [--json] [--trace FILE]
     cntr daemon [--wire] [--json]
     cntr demo

   The simulation is self-contained: each invocation boots a world with a
   demo fleet (one slim container per engine plus a fat debug container)
   and operates on it.  The attach/exec/stats subcommands are thin
   clients over an in-process cntrd (Repro_ctrl.Daemon) — every verb goes
   through the JSON-RPC session API; `cntr daemon` showcases the control
   plane itself.  Subcommands live in their own modules (Cmd_attach,
   Cmd_exec, Cmd_ls, Cmd_stats, Cmd_demo, Cmd_daemon) over the shared
   Cmd_common flags. *)

open Cmdliner

let main =
  Cmd.group
    (Cmd.info "cntr" ~version:"1.0.0"
       ~doc:"Lightweight OS containers: attach fat tool images to slim application containers (simulated reproduction of USENIX ATC'18).")
    [ Cmd_attach.cmd; Cmd_exec.cmd; Cmd_ls.cmd; Cmd_ls.alias; Cmd_stats.cmd; Cmd_daemon.cmd; Cmd_demo.cmd ]

let () = exit (Cmd.eval' main)
