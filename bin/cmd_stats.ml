(* `cntr stats [CONTAINER] [--json] [--trace FILE]`: attach, drive a
   seeded deterministic workload through the CntrFS mount, and report the
   unified metrics registry — every fuse.*, cntrfs.*, vfs.*, os.* and
   ctrl.* counter the session produced.  Identical seeds print
   byte-identical JSON.  --trace writes the request spans as JSON-lines.
   The workload rides the cntrd session API like every other subcommand. *)

open Repro_util
open Repro_runtime
open Repro_ctrl
open Cmdliner

(* The seeded workload: a deterministic mix of metadata and data traffic
   over the attach mount, shaped by --seed. *)
let drive client sid seed =
  let rng = Rng.create ~seed in
  let exec cmd = ignore (Client.session_exec client ~session:sid cmd) in
  let files =
    [| "/var/lib/cntr/etc/passwd"; "/var/lib/cntr/etc/group";
       "/var/lib/cntr/etc/hostname"; "/var/lib/cntr/etc/hosts" |]
  in
  let rounds = 4 + Rng.int rng 4 in
  for _ = 1 to rounds do
    match Rng.int rng 4 with
    | 0 -> exec ("cat " ^ Rng.choose rng files)
    | 1 -> exec ("stat " ^ Rng.choose rng files)
    | 2 -> exec "ls /var/lib/cntr/etc"
    | _ -> exec "du /var/lib/cntr/etc"
  done;
  exec "ps";
  exec "hostname"

let run common name json trace_file =
  let world = Cmd_common.demo_world () in
  match Cmd_common.resolve world common name with
  | Error e ->
      Printf.eprintf "cntr: cannot resolve %s: %s\n" name (Errno.message e);
      1
  | Ok (_engine, container) -> (
      let daemon = Daemon.create world in
      let client = Client.in_process daemon in
      match Client.session_create client ~tenant:"cli" container.Container.ct_name with
      | Error err ->
          Printf.eprintf "cntr: cannot attach to %s: %s\n" name err.Rpc.e_message;
          1
      | Ok created ->
          let sid = created.Client.sc_session in
          let obs = Daemon.obs daemon in
          (* Capture every span, including ones the ring would overwrite. *)
          let buf = Buffer.create 4096 in
          (match trace_file with
          | Some _ ->
              Repro_obs.Trace.set_sink (Repro_obs.Obs.tracer obs)
                (Some (Repro_obs.Trace.buffer_sink buf))
          | None -> ());
          drive client sid common.Cmd_common.seed;
          let report =
            match Client.session_stat client ~session:sid with
            | Ok stat -> Option.value (Jsonx.field_str stat "report") ~default:""
            | Error _ -> ""
          in
          ignore (Client.session_detach client ~session:sid);
          let trace_error = ref false in
          (match trace_file with
          | Some path -> (
              match open_out path with
              | oc ->
                  Buffer.output_buffer oc buf;
                  close_out oc;
                  Printf.eprintf "cntr: wrote trace to %s\n" path
              | exception Sys_error msg ->
                  Printf.eprintf "cntr: cannot write trace: %s\n" msg;
                  trace_error := true)
          | None -> ());
          if json then print_string (Repro_obs.Obs.to_json obs)
          else begin
            Printf.printf "metrics for attach session on %s (seed %#x):\n"
              container.Container.ct_name common.Cmd_common.seed;
            Format.printf "%a@?" Repro_obs.Obs.pp obs;
            print_string report
          end;
          if !trace_error then 1 else 0)

let name_arg =
  Arg.(value & pos 0 string "web" & info [] ~docv:"CONTAINER" ~doc:"Container name or id prefix (default: web).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the metrics registry as deterministic JSON.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write the session's request spans to $(docv) as JSON-lines.")

let cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Attach, drive a seeded workload, and report the unified observability metrics.")
    Term.(const run $ Cmd_common.common_term $ name_arg $ json_arg $ trace_arg)
