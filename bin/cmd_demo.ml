(* `cntr demo`: container-to-container debugging — tools served from the
   fat "debug" container into the slim "web" container (§7). *)

open Repro_util
open Repro_cntr
open Cmdliner

let ok = Errno.ok_exn

let run () =
  let world = Cmd_common.demo_world () in
  let session =
    ok
      (Testbed.attach world
         ~config:
           {
             Attach.Config.default with
             Attach.Config.tools = Attach.From_container "debug";
           }
         "web")
  in
  Printf.printf "attach web with tools from the 'debug' container:\n";
  List.iter
    (fun cmd ->
      Printf.printf "[cntr] $ %s\n" cmd;
      let _c, out = Attach.run session cmd in
      print_string out)
    [ "which gdb"; "stat /var/lib/cntr/etc/nginx.conf"; "id" ];
  Attach.detach session;
  0

let cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Container-to-container debugging demo.") Term.(const run $ const ())
