(* Calibration runner: print measured vs paper overheads for Figure 2. *)
let () =
  Printf.printf "%-22s %8s %8s\n" "benchmark" "paper" "measured";
  List.iter
    (fun w ->
      let o = Repro_workloads.Bench_env.overhead w in
      Printf.printf "%-22s %8.1f %8.2f\n%!" w.Repro_workloads.Bench_env.w_name
        w.Repro_workloads.Bench_env.w_paper o)
    Repro_workloads.Suite.figure2

let () =
  print_endline "--- Figure 3 ablations ---";
  List.iter
    (fun a ->
      Printf.printf "%-36s before=%8.1f after=%8.1f native=%8.1f (%s)\n%!"
        a.Repro_workloads.Experiments.a_name a.Repro_workloads.Experiments.a_before
        a.Repro_workloads.Experiments.a_after a.Repro_workloads.Experiments.a_native
        a.Repro_workloads.Experiments.a_paper_note)
    (Repro_workloads.Experiments.figure3 ());
  print_endline "--- Figure 4 threads ---";
  List.iter
    (fun p ->
      Printf.printf "threads=%2d  %8.1f MB/s\n%!" p.Repro_workloads.Experiments.tp_threads
        p.Repro_workloads.Experiments.tp_mbps)
    (Repro_workloads.Experiments.figure4 ())
