(* `cntr exec <container> <cmd>`: one-shot command in the attach
   environment — session.create, session.exec, session.detach through the
   cntrd API.  Exits with the command's code. *)

open Repro_util
open Repro_runtime
open Repro_ctrl
open Cmdliner

let run common name fat command =
  let world = Cmd_common.demo_world () in
  match Cmd_common.resolve world common name with
  | Error e ->
      Printf.eprintf "cntr: cannot resolve %s: %s\n" name (Errno.message e);
      1
  | Ok (_engine, container) -> (
      let daemon = Daemon.create world in
      let client = Client.in_process daemon in
      match
        Client.session_create client ~tenant:"cli" ?tools:fat
          container.Container.ct_name
      with
      | Error err ->
          Printf.eprintf "cntr: cannot attach to %s: %s\n" name err.Rpc.e_message;
          1
      | Ok created -> (
          let sid = created.Client.sc_session in
          match Client.session_exec client ~session:sid command with
          | Error err ->
              Printf.eprintf "cntr: %s\n" err.Rpc.e_message;
              ignore (Client.session_detach client ~session:sid);
              1
          | Ok x ->
              print_string x.Client.sx_output;
              ignore (Client.session_detach client ~session:sid);
              x.Client.sx_code))

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CONTAINER" ~doc:"Container name or id prefix.")

let command_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"CMD" ~doc:"Command line to run inside the container.")

let fat_arg =
  Arg.(value & opt (some string) None & info [ "fat-container"; "f" ] ~docv:"NAME"
         ~doc:"Serve the tools from this fat container instead of the host.")

let cmd =
  Cmd.v
    (Cmd.info "exec" ~doc:"Run a single command inside a container's attach environment.")
    Term.(const run $ Cmd_common.common_term $ name_arg $ fat_arg $ command_arg)
