(* `cntr exec <container> <cmd>`: one-shot command in the attach
   environment — attach, run, print, detach.  Exits with the command's
   code. *)

open Repro_util
open Repro_runtime
open Repro_cntr
open Cmdliner

let run common name fat command =
  let world = Cmd_common.demo_world () in
  match Cmd_common.resolve world common name with
  | Error e ->
      Printf.eprintf "cntr: cannot resolve %s: %s\n" name (Errno.message e);
      1
  | Ok (_engine, container) -> (
      let tools =
        match fat with None -> Attach.From_host | Some f -> Attach.From_container f
      in
      match
        Testbed.attach world
          ~config:{ Attach.Config.default with Attach.Config.tools }
          container.Container.ct_name
      with
      | Error e ->
          Printf.eprintf "cntr: cannot attach to %s: %s\n" name (Errno.message e);
          1
      | Ok session ->
          let code, out = Attach.run session command in
          print_string out;
          Attach.detach session;
          code)

let name_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CONTAINER" ~doc:"Container name or id prefix.")

let command_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"CMD" ~doc:"Command line to run inside the container.")

let fat_arg =
  Arg.(value & opt (some string) None & info [ "fat-container"; "f" ] ~docv:"NAME"
         ~doc:"Serve the tools from this fat container instead of the host.")

let cmd =
  Cmd.v
    (Cmd.info "exec" ~doc:"Run a single command inside a container's attach environment.")
    Term.(const run $ Cmd_common.common_term $ name_arg $ fat_arg $ command_arg)
