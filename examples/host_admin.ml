(* Container-to-host administration (§2.4, use case 3).

   Container-oriented distributions (CoreOS, RancherOS) ship no package
   manager: admin tools live in a privileged container.  CNTR attaches to
   that container and exposes the *host's* root filesystem through CntrFS,
   so the host stays lean while the admin keeps a full toolbox.

   Run with:  dune exec examples/host_admin.exe *)

open Repro_util
open Repro_runtime
open Repro_cntr

let ok = Errno.ok_exn

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let show (code, out) = Printf.printf "%s(exit %d)\n%!" out code

let () =
  step "a CoreOS-like host: no package manager, minimal userland";
  let world = Testbed.create () in
  let os_release = ok (Repro_os.Kernel.read_whole world.World.kernel world.World.init "/etc/os-release") in
  Printf.printf "%s" os_release;

  step "the admin runs a privileged toolbox container";
  let _admin =
    ok
      (World.run_container world ~engine:(World.docker world) ~name:"toolbox"
         ~image_ref:"cntr/debug-tools:latest" ~privileged:true ())
  in

  step "cntr attach toolbox  (tools from the HOST: its rootfs appears at /)";
  let session = ok (Testbed.attach world "toolbox") in

  step "inspect the host from inside the container";
  show (Attach.run session "cat /etc/os-release");
  show (Attach.run session "ls /etc");
  show (Attach.run session "hostname");

  step "the toolbox container's own filesystem is under /var/lib/cntr";
  show (Attach.run session "ls /var/lib/cntr/usr/bin");

  step "host administration: fix a host config file from the container";
  show (Attach.run session "echo nameserver 10.0.0.53 > /etc/resolv.conf");
  let resolv = ok (Repro_os.Kernel.read_whole world.World.kernel world.World.init "/etc/resolv.conf") in
  Printf.printf "the host now resolves with:\n%s" resolv;

  step "host processes are visible (shared /proc view of the privileged container)";
  show (Attach.run session "ps");

  Attach.detach session;
  print_endline "\nhost_admin done."
