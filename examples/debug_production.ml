(* Container-to-container debugging in production (§2.4, use case 1).

   A fleet of slim application containers shares ONE fat debug container.
   `cntr attach --fat debug <app>` runs the CntrFS server inside the debug
   container, so its tools serve every application — and the D-Bus/X11
   socket proxy (§3.2.4) bridges Unix sockets across the mount.

   Run with:  dune exec examples/debug_production.exe *)

open Repro_util
open Repro_os
open Repro_runtime
open Repro_cntr
module Proxy = Repro_proxy.Proxy

let ok = Errno.ok_exn

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let show (code, out) = Printf.printf "%s(exit %d)\n%!" out code

let () =
  let world = Testbed.create () in
  let docker = World.docker world in

  step "deploy the production fleet: three slim app containers";
  let apps =
    List.map
      (fun (name, image) ->
        ok (World.run_container world ~engine:docker ~name ~image_ref:image ()))
      [ ("api", "redis:latest"); ("db", "postgres:latest"); ("web", "nginx:latest") ]
  in
  List.iter
    (fun c -> Printf.printf "  %-4s %s (pid %d)\n" c.Container.ct_name (Container.short_id c) (Container.pid c))
    apps;

  step "deploy ONE fat debug container, shared by the whole fleet";
  let _debug =
    ok (World.run_container world ~engine:docker ~name:"debug" ~image_ref:"cntr/debug-tools:latest" ())
  in

  step "attach to each app with tools from the debug container";
  List.iter
    (fun app ->
      let name = app.Container.ct_name in
      let session =
        ok
          (Testbed.attach world
             ~config:
               {
                 Attach.Config.default with
                 Attach.Config.tools = Attach.From_container "debug";
               }
             name)
      in
      let _code, out = Attach.run session "which gdb" in
      let _code2, ps = Attach.run session "ps" in
      Printf.printf "  [%s] gdb from the debug image: %s" name out;
      Printf.printf "  [%s] processes visible inside: %s" name
        (String.concat " " (List.tl (String.split_on_char '\n' ps)));
      Printf.printf "\n";
      Attach.detach session)
    apps;

  step "socket forwarding: a D-Bus daemon on the host, reachable from inside";
  let session = ok (Testbed.attach world "api") in
  let k = world.World.kernel in
  let dbus = ok (Kernel.socket_listen k world.World.init "/var/run/dbus.sock") in
  (* direct connect through CntrFS fails: the FUSE inode identity differs *)
  (match Kernel.socket_connect k session.Attach.sn_shell_proc "/var/run/dbus.sock" with
  | Error e -> Printf.printf "direct connect through CntrFS: %s (expected — §3.2.4)\n" (Errno.to_string e)
  | Ok _ -> print_endline "unexpectedly connected?!");
  let plane = Attach.proxy session in
  let _fwd =
    ok
      (Proxy.forward plane ~front_proc:session.Attach.sn_shell_proc
         ~back_proc:session.Attach.sn_server_proc ~backend_path:"/var/run/dbus.sock"
         "/var/run/cntr-dbus.sock")
  in
  let cfd = ok (Kernel.socket_connect k session.Attach.sn_shell_proc "/var/run/cntr-dbus.sock") in
  ignore (ok (Kernel.write k session.Attach.sn_shell_proc cfd "Hello org.freedesktop.DBus"));
  Proxy.drain plane;
  let sfd = ok (Kernel.socket_accept k world.World.init dbus) in
  Printf.printf "host daemon received: %S\n" (ok (Kernel.read k world.World.init sfd ~len:128));
  ignore (ok (Kernel.write k world.World.init sfd "NameAcquired"));
  Proxy.drain plane;
  Printf.printf "client received reply: %S\n"
    (ok (Kernel.read k session.Attach.sn_shell_proc cfd ~len:128));

  step "isolation check: nothing leaked into the application containers";
  List.iter
    (fun app ->
      let leaked =
        Result.is_ok (Kernel.stat k app.Container.ct_main "/var/lib/cntr")
        || Result.is_ok (Kernel.stat k app.Container.ct_main "/usr/bin/gdb")
      in
      Printf.printf "  [%s] debug tools visible inside the app itself: %b\n" app.Container.ct_name leaked)
    apps;
  show (Attach.run session "echo cleanup ok");
  Attach.detach session;
  print_endline "\ndebug_production done."
