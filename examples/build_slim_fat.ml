(* The development workflow CNTR enables (§7): instead of one fat image,
   build a *slim* image for deployment and a *fat* tools image for
   debugging — with the Dockerfile-style builder — then attach them at
   runtime.

   Run with:  dune exec examples/build_slim_fat.exe *)

open Repro_util
open Repro_os
open Repro_image
open Repro_runtime
open Repro_cntr

let ok = Errno.ok_exn

let ok' = function
  | Ok v -> v
  | Error e -> failwith (Errno.to_string e)

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let show (code, out) = Printf.printf "%s(exit %d)\n%!" out code

let () =
  let world = Testbed.create () in
  let kernel = world.World.kernel in
  let registry = world.World.registry in
  Kernel.register_program kernel "paymentd" (fun k p _ ->
      let fd =
        ok (Kernel.open_ k p "/var/log/payments.log"
              [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY; Repro_vfs.Types.O_APPEND ] ~mode:0o644)
      in
      ignore (ok (Kernel.write k p fd "payment 42 accepted\n"));
      ok (Kernel.close k p fd);
      0);

  step "build the SLIM image: the service and nothing else";
  let slim =
    ok'
      (Builder.build ~kernel ~registry ~name:"payments"
         [
           Builder.From "scratch";
           Builder.Mkdir "/srv";
           Builder.Mkdir "/var";
           Builder.Mkdir "/var/log";
           Builder.Mkdir "/etc";
           Builder.Copy { dst = "/srv/paymentd"; mode = 0o755; content = Content.Binary { prog = "paymentd"; size = Size.kib 512 } };
           Builder.Copy { dst = "/etc/paymentd.conf"; mode = 0o644; content = Content.Literal "currency=EUR\n" };
           Builder.Env ("PAYMENTS_MODE", "production");
           Builder.Entrypoint [ "/srv/paymentd" ];
         ])
  in
  Printf.printf "payments:latest — %s, %d files (no shell, no libc, no tools)\n"
    (Size.to_string (Image.effective_size slim))
    (List.length (Image.effective_paths slim));

  step "build the FAT tools image: alpine + debuggers, built with RUN steps";
  let fat =
    ok'
      (Builder.build ~kernel ~registry ~name:"payments-debug"
         [
           Builder.From "cntr/debug-tools:latest";
           Builder.Run "mkdir /workspace";
           Builder.Run "echo payments debug kit > /workspace/README";
           Builder.Copy { dst = "/usr/bin/paymentctl"; mode = 0o755; content = Content.Binary { prog = "echo"; size = Size.kib 64 } };
         ])
  in
  Printf.printf "payments-debug:latest — %s with gdb, strace, and a workspace\n"
    (Size.to_string (Image.effective_size fat));

  step "deploy: only the slim image ships to production";
  Registry.push registry slim;
  Registry.push registry fat;
  let _svc =
    ok (World.run_container world ~engine:(World.docker world) ~name:"payments" ~image_ref:"payments:latest" ())
  in
  let _dbg =
    ok (World.run_container world ~engine:(World.docker world) ~name:"payments-debug" ~image_ref:"payments-debug:latest" ())
  in

  step "incident: attach the fat image's tools to the slim service";
  let session =
    ok
      (Testbed.attach world
         ~config:
           {
             Attach.Config.default with
             Attach.Config.tools = Attach.From_container "payments-debug";
           }
         "payments")
  in
  show (Attach.run session "cat /workspace/README");
  show (Attach.run session "cat /var/lib/cntr/var/log/payments.log");
  show (Attach.run session "cat /var/lib/cntr/etc/paymentd.conf | grep currency");
  show (Attach.run session "env | grep PAYMENTS");

  step "what the session cost (FUSE traffic)";
  print_string (Attach.report session);
  Attach.detach session;
  print_endline "\nbuild_slim_fat done."
