(* Debugging serverless functions with CNTR (the paper's §6 future work).

   Lambdas run in sealed micro-containers with no shell and no tools;
   platform users normally cannot inspect them at all.  With the instance
   being an ordinary container under the hood, CNTR attaches to a warm
   instance and brings a full toolbox.

   Run with:  dune exec examples/lambda_debug.exe *)

open Repro_util
open Repro_os
open Repro_runtime
open Repro_cntr

let ok = Errno.ok_exn

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let show (code, out) = Printf.printf "%s(exit %d)\n%!" out code

let () =
  step "boot a machine with a lambda platform";
  let world = Testbed.create () in
  let platform = Lambda.create ~kernel:world.World.kernel in

  step "deploy a function: resize-image (handler + runtime, nothing else)";
  Kernel.register_program world.World.kernel "resize-image" (fun k proc args ->
      let payload = match args with _ :: p :: _ -> p | _ -> "?" in
      let fd =
        ok
          (Kernel.open_ k proc "/tmp/work.log"
             [ Repro_vfs.Types.O_CREAT; Repro_vfs.Types.O_WRONLY; Repro_vfs.Types.O_APPEND ]
             ~mode:0o644)
      in
      ignore (ok (Kernel.write k proc fd ("resized " ^ payload ^ "\n")));
      ok (Kernel.close k proc fd);
      if payload = "corrupt.png" then 1 else 0);
  let fn = Lambda.deploy platform ~name:"resize-image" ~handler:"resize-image" () in
  Printf.printf "image %s: %s, %d files (no shell, no coreutils)\n"
    (Repro_image.Image.ref_ fn.Lambda.fn_image)
    (Size.to_string (Repro_image.Image.effective_size fn.Lambda.fn_image))
    (List.length (Repro_image.Image.effective_paths fn.Lambda.fn_image));

  step "invoke it a few times (one cold start, then warm)";
  List.iter
    (fun payload ->
      let code, cold, _ = ok (Lambda.invoke platform "resize-image" ~payload) in
      Printf.printf "  invoke %-12s -> exit %d (%s)\n" payload code
        (if cold then "cold start" else "warm"))
    [ "cat.png"; "dog.png"; "corrupt.png" ];

  step "that last invocation failed — attach to the warm instance with cntr";
  let _code, _cold, inst = ok (Lambda.invoke platform "resize-image" ~payload:"probe.png") in
  let engines = Lambda.engine platform :: world.World.engines in
  let session =
    ok
      (Attach.attach ~kernel:world.World.kernel ~engines ~budget:world.World.budget
         inst.Container.ct_name)
  in
  Printf.printf "attached to instance %s (cgroup %s)\n" inst.Container.ct_name
    (Attach.context session).Context.cx_cgroup;

  step "inspect the sealed sandbox with host tools";
  show (Attach.run session "cat /var/lib/cntr/tmp/work.log");
  show (Attach.run session "ls /var/lib/cntr/var/task");
  show (Attach.run session "ps");

  step "detach — the function keeps serving";
  Attach.detach session;
  let code, _cold, _ = ok (Lambda.invoke platform "resize-image" ~payload:"bird.png") in
  Printf.printf "post-debug invoke: exit %d\n" code;
  print_endline "\nlambda_debug done."
