(* The Docker-Slim pipeline (§5.3): build the slim/fat split CNTR assumes.

   An image is run under fanotify observation; the accessed closure becomes
   the slim image, which is validated, pushed, and compared for deployment
   time.  The dropped tools are exactly what a CNTR fat image provides on
   demand.

   Run with:  dune exec examples/slim_pipeline.exe *)

open Repro_util
open Repro_image
open Repro_runtime
open Repro_cntr
open Repro_slim

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")

let ok' = function
  | Ok v -> v
  | Error e -> failwith (Errno.to_string e)

let () =
  let world = Testbed.create () in
  let reg = world.World.registry in

  step "pick a popular image from the registry";
  let image = Option.get (Registry.find reg "mysql:latest") in
  Printf.printf "%s: %s in %d files\n" (Image.ref_ image)
    (Size.to_string (Image.effective_size image))
    (List.length (Image.effective_paths image));

  step "run it under fanotify observation and record the working set";
  let report, slim_image = ok' (Slimmer.slim ~world image) in
  Printf.printf "accessed %d paths; slim image keeps %d of %d files\n"
    (List.length report.Slimmer.r_kept_paths) report.Slimmer.r_slim_files
    report.Slimmer.r_original_files;
  Printf.printf "size: %s -> %s  (reduction %.1f%%)\n"
    (Size.to_string report.Slimmer.r_original_bytes)
    (Size.to_string report.Slimmer.r_slim_bytes)
    (100. *. report.Slimmer.r_reduction);

  step "what was kept (the application's true working set)";
  List.iter
    (fun p -> if not (String.length p >= 5 && String.sub p 0 5 = "/usr/") || String.length p < 30 then Printf.printf "  %s\n" p)
    report.Slimmer.r_kept_paths;

  step "validate: the slim container still runs its entrypoint";
  Printf.printf "entrypoint healthy: %b\n" (ok' (Slimmer.validate ~world slim_image));

  step "deployment time: pull fat vs slim from a cold registry cache";
  Registry.push reg slim_image;
  Registry.drop_cache reg;
  let t0 = Clock.now_ns world.World.clock in
  ignore (Result.get_ok (Registry.pull reg (Image.ref_ image)));
  let fat_ns = Int64.sub (Clock.now_ns world.World.clock) t0 in
  Registry.drop_cache reg;
  let t1 = Clock.now_ns world.World.clock in
  ignore (Result.get_ok (Registry.pull reg (Image.ref_ slim_image)));
  let slim_ns = Int64.sub (Clock.now_ns world.World.clock) t1 in
  Printf.printf "fat pull:  %6.1f ms\nslim pull: %6.1f ms  (%.1fx faster)\n"
    (Int64.to_float fat_ns /. 1e6)
    (Int64.to_float slim_ns /. 1e6)
    (Int64.to_float fat_ns /. Int64.to_float slim_ns);

  step "and the tools the slim image dropped? attach them on demand with cntr";
  let slim_name = "mysql-slim" in
  Registry.push reg slim_image;
  let _c =
    ok' (World.run_container world ~engine:(World.docker world) ~name:slim_name
           ~image_ref:(Image.ref_ slim_image) ())
  in
  let session = ok' (Testbed.attach world slim_name) in
  let code, out = Attach.run session "which gdb" in
  Printf.printf "inside the slim container: which gdb -> %s(exit %d)\n" out code;
  Attach.detach session;
  print_endline "\nslim_pipeline done."
