(* Quickstart: the paper's §1 story end to end.

   A slim nginx container is deployed; it has no shell, no debugger —
   nothing but the application.  `cntr attach web` builds the nested
   namespace: the host's tools appear at /, the application's filesystem at
   /var/lib/cntr, and gdb can inspect the application process.

   Run with:  dune exec examples/quickstart.exe *)

open Repro_util
open Repro_runtime
open Repro_cntr

let ok = Errno.ok_exn

let step fmt = Printf.printf ("\n== " ^^ fmt ^^ "\n%!")
let show (code, out) = Printf.printf "%s(exit %d)\n%!" out code

let () =
  step "boot a simulated machine (kernel, engines, registry, /dev/fuse)";
  let world = Testbed.create () in

  step "docker run --name web nginx  (a *slim* image: no shell, no tools)";
  let web =
    ok (World.run_container world ~engine:(World.docker world) ~name:"web" ~image_ref:"nginx:latest" ())
  in
  Printf.printf "container %s running, pid %d\n" (Container.short_id web) (Container.pid web);

  step "cntr attach web   (tools from the host)";
  let session = ok (Testbed.attach world "web") in
  let ctx = Attach.context session in
  Printf.printf "attached: pid=%d cgroup=%s caps=%s\n" ctx.Context.cx_pid ctx.Context.cx_cgroup
    (Repro_os.Caps.Set.to_hex ctx.Context.cx_caps);

  step "the host's tools are available inside the container now";
  show (Attach.run session "which gdb");
  show (Attach.run session "hostname");

  step "the application's filesystem is at /var/lib/cntr";
  show (Attach.run session "ls /var/lib/cntr/usr/sbin");
  show (Attach.run session "cat /var/lib/cntr/etc/nginx.conf");

  step "tools see the application's /proc — attach gdb to nginx";
  show (Attach.run session (Printf.sprintf "gdb -p %d" (Container.pid web)));

  step "edit the app's config in place and prove the app sees it (§7)";
  show (Attach.run session "vi /var/lib/cntr/etc/nginx.conf");
  let conf = ok (Repro_os.Kernel.read_whole world.World.kernel web.Container.ct_main "/etc/nginx.conf") in
  Printf.printf "the container itself now reads:\n%s\n" conf;

  step "detach: the shell and CntrFS server exit; the app is untouched";
  Attach.detach session;
  Printf.printf "container still running: %b\n" (Container.is_running web);
  print_endline "\nquickstart done."
