(** cntrd: the persistent attach control plane.

    A daemon multiplexes many concurrent attach sessions over one world:
    each session is a scheduler fiber wrapping an {!Repro_cntr.Attach}
    session, admitted through a bounded FIFO queue with per-tenant quotas.
    Clients speak JSON-RPC 2.0 ({!Rpc}) — over the in-process transport or
    framed over a {!Repro_proxy.Proxy} forwarder ({!wire_serve}).

    {2 Execution model}

    Control-plane state (admission, quotas, cancellation, fault delays)
    lives in fibers on the daemon's own scheduler; the data-plane verbs
    (attach / exec / detach / recover) are emitted as actions that
    {!pump} executes one at a time at top level, where the FUSE
    connection's event loop can be driven.  [pump] alternates between
    driving fibers to quiescence and committing the next pending action,
    so virtual time stays deterministic: same submissions, same
    interleaving, byte-identical metrics.

    {2 Methods}

    - [daemon.info] — protocol identity and method list
    - [session.create {container; tenant?; tools?; threads?; fault_plan?}]
    - [session.exec {session; cmd}]
    - [session.stat {session}]
    - [session.detach {session}] — idempotent: unknown or already-detached
      sessions answer [{detached:true, already:true}], never an error
    - [session.list]
    - [stats.subscribe] — streams [stats.event] notifications
    - [$/cancel {id}] — cancel the in-flight request with that id

    The fault plane's [ctrl] site ({!Repro_fault.Fault.ctrl_action}) is
    consulted on [create] and [exec]. *)

open Repro_util
open Repro_os

(** Per-tenant admission quota. *)
type quota = { q_active : int; q_queued : int }

type config = {
  c_max_active : int;  (** fleet-wide concurrent session ceiling *)
  c_queue_depth : int;  (** fleet-wide admission queue bound *)
  c_tenant : quota;
  c_attach : Repro_cntr.Attach.Config.t;  (** base config for every session *)
  c_fault : Repro_fault.Fault.plan option;  (** plan consulted at the ctrl site *)
  c_auto_recover : bool;
      (** recover crashed sessions transparently on the next exec
          (otherwise the exec fails with [exec_failed]/ENOTCONN) *)
  c_sub_buffer : int;
      (** undelivered [stats.event]s retained per subscriber; at capacity
          the oldest is dropped and counted under
          [ctrl.subscribe.dropped] (drop-oldest: a monitoring stream
          wants recent state, not stale history) *)
  c_wire_inflight : int;
      (** wire flow control: admitted requests per connection whose
          replies have not yet been flushed; the next call over the limit
          is refused with [-32005] ({!Rpc.overloaded}) before dispatch.
          Notifications are never refused. *)
  c_wire_high : int;
      (** wire flow control: framed-output backlog (bytes) at which a
          connection stalls — it stops being read and stops taking
          buffered replies/events until it drains.  One reply frame may
          overshoot the watermark (appends are gated, not split). *)
  c_wire_low : int;
      (** wire flow control: backlog at which a stalled connection
          resumes (hysteresis — must be < [c_wire_high]) *)
}

(** 64 active, 32 queued, 16/8 per tenant, {!Repro_cntr.Attach.Config.default},
    no faults, auto-recovery on, 256-event subscriber buffers; wire flow
    control at 64 in-flight per connection with 64 KiB/16 KiB
    high/low watermarks. *)
val default_config : config

type t

(** The daemon drives sessions against [world]'s kernel and engines. *)
val create : ?config:config -> Repro_runtime.World.t -> t

val world : t -> Repro_runtime.World.t
val config : t -> config
val obs : t -> Repro_obs.Obs.t

(** {1 Request path} *)

(** Handle on one in-flight request. *)
type ticket

(** Dispatch one decoded message.  [None] for notifications.  [sink]
    receives [stats.event] notification payloads once this connection has
    subscribed via [stats.subscribe]; events queue in a bounded
    per-subscriber buffer ([config.c_sub_buffer], drop-oldest) and are
    delivered by {!pump} whenever [sink_ready] (default: always) says the
    transport can take them.  Dispatch only enqueues work — drive it with
    {!pump} / {!response}. *)
val submit :
  t ->
  ?sink:(Jsonx.t -> unit) ->
  ?sink_ready:(unit -> bool) ->
  Rpc.request ->
  ticket option

(** Drive fibers, pending actions and wire connections until quiescent. *)
val pump : t -> unit

(** The reply, when already produced. *)
val peek : t -> ticket -> Rpc.response option

exception Stalled of string
(** Raised by {!response} when a request is parked (e.g. in the admission
    queue) and no runnable work remains to unpark it. *)

(** [pump] until the reply exists. *)
val response : t -> ticket -> Rpc.response

(** Decode raw text, dispatch, pump to completion; the encoded reply
    ([None] for notifications).  Malformed input yields an error reply
    with a [null] id, exactly like the wire path.  A batch envelope
    (top-level array) dispatches every element and answers with one
    order-preserving reply array — per-element errors in place,
    notifications elided, no reply at all when every element was a
    notification. *)
val handle_text : t -> ?sink:(Jsonx.t -> unit) -> string -> string option

(** {1 Wire transport}

    Each accepted connection is pipelined: any number of id-carrying
    requests may be in flight (bounded by [c_wire_inflight]; the
    overflow is refused with [-32005]), and replies flush as they
    resolve — out of submission order when a later request finishes
    first.  Batch envelopes dispatch element-at-a-time and flush as one
    order-preserving reply array.  Write-side flow control stalls a
    connection whose framed backlog reaches [c_wire_high] (no reads, no
    buffered replies or events) until it drains to [c_wire_low]; a
    stalled client never wedges the other connections.

    Registry namespace (created by the first {!wire_serve}):
    [ctrl.wire.conns] (accepted connections), [ctrl.wire.batches]
    (envelopes received), [ctrl.wire.stalls] (flow-control stall
    entries), [ctrl.wire.overloaded] ([-32005] refusals), and the gauges
    [ctrl.wire.pipelined.max] (peak in-flight on one connection),
    [ctrl.wire.backlog.peak] / [ctrl.wire.frame.max] (peak framed
    backlog and largest single frame — the fleet bench gates
    [peak <= c_wire_high + frame.max]). *)

(** A served wire endpoint: a proxy-plane forwarder carrying
    Content-Length-framed JSON-RPC to the daemon's listener socket. *)
type wire

(** [wire_serve t ~path ()] — listen for framed RPC at [path] (clients
    {!Repro_os.Kernel.socket_connect} there).  The bytes ride the
    forwarding plane under the ["rpc"] label
    ([proxy.fwd.rpc.bytes.{c2b,b2c}]).  {!pump} services accepted
    connections round-robin. *)
val wire_serve :
  t -> ?mode:Repro_proxy.Proxy.mode -> path:string -> unit -> (wire, Errno.t) result

val wire_path : wire -> string

(** The daemon this endpoint serves — a wire is a complete connect
    handle ({!Client.connect} needs nothing else). *)
val wire_daemon : wire -> t

(** The client-side proc to [socket_connect] from (any proc works; this
    one is convenient). *)
val wire_client_proc : wire -> Proc.t

val kernel : t -> Kernel.t
