(* cntrd: the persistent attach control plane.

   Split-brain by design: fibers on the daemon's scheduler own every piece
   of control-plane state (session table, admission queue, quotas,
   cancellation flags), while the data-plane verbs — attach, exec, detach,
   recover, crash — are *actions* queued to the top level.  [pump]
   alternates: drive fibers until they quiesce or request an action, then
   commit the next action where the FUSE/TTY event loops can be driven
   (those loops no-op inside foreign fibers).  Everything stays on the one
   virtual clock, so identical submissions replay identically. *)

open Repro_util
open Repro_os
open Repro_cntr
module Sched = Repro_sched.Sched
module Metrics = Repro_obs.Metrics
module Fault = Repro_fault.Fault
module Proxy = Repro_proxy.Proxy

type quota = { q_active : int; q_queued : int }

type config = {
  c_max_active : int;
  c_queue_depth : int;
  c_tenant : quota;
  c_attach : Attach.Config.t;
  c_fault : Fault.plan option;
  c_auto_recover : bool;
  c_sub_buffer : int;  (* undelivered events retained per subscriber *)
  (* wire plane: per-connection flow control *)
  c_wire_inflight : int;  (* admitted-but-unflushed requests per connection *)
  c_wire_high : int;  (* wc_out bytes at which a connection stalls *)
  c_wire_low : int;  (* wc_out bytes at which a stalled connection resumes *)
}

let default_config =
  {
    c_max_active = 64;
    c_queue_depth = 32;
    c_tenant = { q_active = 16; q_queued = 8 };
    c_attach = Attach.Config.default;
    c_fault = None;
    c_auto_recover = true;
    c_sub_buffer = 256;
    c_wire_inflight = 64;
    c_wire_high = 65536;
    c_wire_low = 16384;
  }

(* One in-flight request. *)
type ticket = {
  p_rid : Rpc.id;
  mutable p_cancelled : bool;
  mutable p_resp : Rpc.response option;
}

type state = Queued | Active | Recovering | Detached

let state_str = function
  | Queued -> "queued"
  | Active -> "active"
  | Recovering -> "recovering"
  | Detached -> "detached"

type op = Op_exec of ticket * string | Op_detach of ticket

type sess = {
  s_id : int;
  s_tenant : string;
  s_container : string;
  s_config : Attach.Config.t;
  mutable s_state : state;
  mutable s_attach : Attach.session option;
  mutable s_execs : int;
  mutable s_admitted : bool;
  mutable s_crash_pending : bool; (* ctrl create fault: crash right after attach *)
  s_ops : op Queue.t;
  s_cond : Sched.cond;
}

(* Data-plane actions, executed by [pump] at top level. *)
type action =
  | A_attach of Attach.Config.t * string * (Attach.session, Errno.t) result Sched.ivar
  | A_run of Attach.session * string * (int * string) Sched.ivar
  | A_detach of Attach.session * unit Sched.ivar
  | A_recover of Attach.session * unit Sched.ivar
  | A_crash of Attach.session * unit Sched.ivar

(* A subscriber: the sink plus a bounded ring of undelivered events.  A
   slow transport stops draining instead of letting the daemon buffer its
   entire event history; at capacity the *oldest* event is dropped and
   counted (recent state beats stale history for a monitoring stream). *)
type sub = {
  sb_sink : Jsonx.t -> unit;
  sb_buf : Jsonx.t Queue.t;
  sb_ready : unit -> bool;  (* can the transport take another event now? *)
}

(* ctrl.wire.* instruments, created lazily by the first [wire_serve] so
   in-process daemons never touch this registry namespace. *)
type wire_metrics = {
  wm_conns : Metrics.counter;
  wm_batches : Metrics.counter;
  wm_stalls : Metrics.counter;
  wm_overloaded : Metrics.counter;
  wm_pipelined_max : Metrics.gauge;
  wm_backlog_peak : Metrics.gauge;
  wm_frame_max : Metrics.gauge;
  mutable wm_pmax : int;
  mutable wm_bpeak : int;
  mutable wm_fmax : int;
}

(* Per-connection write-side flow control: a connection whose framed
   output backlog reaches the high watermark stops being read (requests
   back up into the bounded kernel socket, then into the sender) and
   stops taking buffered replies/events until the backlog drains to the
   low watermark.  One stalled reader never wedges the others. *)
type flow = Flowing | Stalled

(* One admitted element of a batch envelope.  [Slot_done] holds replies
   produced without dispatch (malformed elements, overload rejections);
   [Slot_wait] resolves through its ticket.  The envelope flushes as one
   order-preserving reply array when every slot has a response. *)
type slot = Slot_wait of ticket | Slot_done of Rpc.response

type wire_conn = {
  wc_fd : int;
  wc_reader : Rpc.reader;
  wc_outq : string Queue.t;  (* framed chunks awaiting the socket *)
  mutable wc_out_off : int;  (* written prefix of the head chunk *)
  mutable wc_out_len : int;  (* total unwritten backlog bytes *)
  mutable wc_flow : flow;
  wc_now : Rpc.response Queue.t;  (* immediate replies awaiting room *)
  mutable wc_singles : ticket list;  (* pipelined calls: flushed as resolved *)
  mutable wc_batches : slot array list;  (* envelopes: flushed when complete *)
  mutable wc_inflight : int;  (* admitted, not yet flushed *)
}

type wire = {
  w_path : string;
  w_proc : Proc.t; (* daemon-side endpoint: owns the backend listener *)
  w_client_proc : Proc.t;
  w_plane : Proxy.t;
  w_lfd : int;
  w_daemon : t;
  mutable w_conns : wire_conn list;
  mutable w_rr : int; (* round-robin cursor over w_conns *)
}

and t = {
  d_world : Repro_runtime.World.t;
  d_config : config;
  d_sched : Sched.t;
  d_fault : Fault.t option;
  d_actions : action Queue.t;
  d_sessions : (int, sess) Hashtbl.t;
  mutable d_next_id : int;
  mutable d_inflight : ticket list;
  mutable d_subs : sub list;
  mutable d_m_sub_dropped : Metrics.counter option;
      (* lazily created: only daemons that ever drop touch the registry *)
  mutable d_wm : wire_metrics option;
  mutable d_wires : wire list;
  mutable d_wire_rr : int; (* round-robin cursor over d_wires *)
  (* admission *)
  d_adm_cond : Sched.cond;
  mutable d_active : int;
  mutable d_queued : int;
  d_t_active : (string, int) Hashtbl.t;
  d_t_queued : (string, int) Hashtbl.t;
  (* metrics *)
  m_active : Metrics.gauge;
  m_total : Metrics.counter;
  m_rejected : Metrics.counter;
  m_recovered : Metrics.counter;
  m_calls : Metrics.counter;
  m_cancelled : Metrics.counter;
  m_wait : Metrics.histogram;
}

let protocol_version = "cntrd/1.0"

let methods =
  [
    "daemon.info";
    "session.create";
    "session.exec";
    "session.stat";
    "session.detach";
    "session.list";
    "stats.subscribe";
    "$/cancel";
  ]

let create ?(config = default_config) world =
  let kernel = world.Repro_runtime.World.kernel in
  let obs = kernel.Kernel.obs in
  let metrics = Repro_obs.Obs.metrics obs in
  let clock = kernel.Kernel.clock in
  {
    d_world = world;
    d_config = config;
    d_sched = Sched.create ~clock;
    d_fault = Option.map (Fault.arm ~obs ~clock) config.c_fault;
    d_actions = Queue.create ();
    d_sessions = Hashtbl.create 64;
    d_next_id = 1;
    d_inflight = [];
    d_subs = [];
    d_m_sub_dropped = None;
    d_wm = None;
    d_wires = [];
    d_wire_rr = 0;
    d_adm_cond = Sched.cond ();
    d_active = 0;
    d_queued = 0;
    d_t_active = Hashtbl.create 8;
    d_t_queued = Hashtbl.create 8;
    m_active = Metrics.gauge metrics "ctrl.sessions.active";
    m_total = Metrics.counter metrics "ctrl.sessions.total";
    m_rejected = Metrics.counter metrics "ctrl.sessions.rejected";
    m_recovered = Metrics.counter metrics "ctrl.sessions.recovered";
    m_calls = Metrics.counter metrics "ctrl.rpc.calls";
    m_cancelled = Metrics.counter metrics "ctrl.rpc.cancelled";
    m_wait = Metrics.histogram metrics "ctrl.queue.wait_us";
  }

let world t = t.d_world
let config t = t.d_config
let kernel t = t.d_world.Repro_runtime.World.kernel
let obs t = (kernel t).Kernel.obs
let clock t = (kernel t).Kernel.clock

(* ------------------------------------------------------------------ *)
(* Replies, events, cancellation                                      *)
(* ------------------------------------------------------------------ *)

let reply t p result =
  (match p.p_resp with
  | Some _ -> () (* first reply wins; late paths are no-ops *)
  | None -> p.p_resp <- Some { Rpc.p_id = Some p.p_rid; p_result = result });
  t.d_inflight <- List.filter (fun q -> q != p) t.d_inflight

let reply_cancelled t p =
  Metrics.incr t.m_cancelled;
  reply t p (Error (Rpc.error Rpc.cancelled "request cancelled"))

let errno_data e = Jsonx.Obj [ ("errno", Jsonx.Str (Errno.to_string e)) ]

let sub_dropped t =
  match t.d_m_sub_dropped with
  | Some c -> c
  | None ->
      let c =
        Metrics.counter (Repro_obs.Obs.metrics (obs t)) "ctrl.subscribe.dropped"
      in
      t.d_m_sub_dropped <- Some c;
      c

(* Events are buffered per subscriber, never sunk inline: the emitter must
   not block (or allocate unboundedly) on a slow client.  [flush_subs]
   drains each ring as long as its transport reports ready. *)
let emit t event fields =
  if t.d_subs <> [] then begin
    let params =
      Jsonx.Obj
        (("event", Jsonx.Str event)
        :: ("t_ns", Jsonx.Int (Int64.to_int (Clock.now_ns (clock t))))
        :: fields)
    in
    let msg = Rpc.request_json { Rpc.r_id = None; r_method = "stats.event"; r_params = params } in
    List.iter
      (fun sb ->
        if Queue.length sb.sb_buf >= t.d_config.c_sub_buffer then begin
          ignore (Queue.pop sb.sb_buf);
          Metrics.incr (sub_dropped t)
        end;
        Queue.push msg sb.sb_buf)
      t.d_subs
  end

let flush_subs t =
  List.iter
    (fun sb ->
      while (not (Queue.is_empty sb.sb_buf)) && sb.sb_ready () do
        sb.sb_sink (Queue.pop sb.sb_buf)
      done)
    t.d_subs

let cancel t id =
  match List.find_opt (fun p -> p.p_rid = id && p.p_resp = None) t.d_inflight with
  | None -> false
  | Some p ->
      p.p_cancelled <- true;
      (* wake parked admissions so a cancelled create leaves the queue *)
      ignore (Sched.broadcast t.d_sched t.d_adm_cond);
      true

(* ------------------------------------------------------------------ *)
(* Admission bookkeeping                                              *)
(* ------------------------------------------------------------------ *)

let tcount tbl tenant = Option.value (Hashtbl.find_opt tbl tenant) ~default:0

let tbump tbl tenant delta =
  let v = tcount tbl tenant + delta in
  if v <= 0 then Hashtbl.remove tbl tenant else Hashtbl.replace tbl tenant v

let can_admit t tenant =
  t.d_active < t.d_config.c_max_active
  && tcount t.d_t_active tenant < t.d_config.c_tenant.q_active

let take_slot t sess =
  t.d_active <- t.d_active + 1;
  tbump t.d_t_active sess.s_tenant 1;
  sess.s_admitted <- true;
  Metrics.set t.m_active (float_of_int t.d_active)

let release_slot t sess =
  if sess.s_admitted then begin
    sess.s_admitted <- false;
    t.d_active <- t.d_active - 1;
    tbump t.d_t_active sess.s_tenant (-1);
    Metrics.set t.m_active (float_of_int t.d_active);
    ignore (Sched.broadcast t.d_sched t.d_adm_cond)
  end

(* ------------------------------------------------------------------ *)
(* Data-plane actions                                                 *)
(* ------------------------------------------------------------------ *)

let act t mk =
  let iv = Sched.ivar () in
  Queue.add (mk iv) t.d_actions;
  Sched.read t.d_sched iv

let act_attach t cfg name = act t (fun iv -> A_attach (cfg, name, iv))
let act_run t a cmd = act t (fun iv -> A_run (a, cmd, iv))
let act_detach t a = act t (fun iv -> A_detach (a, iv))
let act_recover t a = act t (fun iv -> A_recover (a, iv))
let act_crash t a = act t (fun iv -> A_crash (a, iv))

let perform t = function
  | A_attach (cfg, name, iv) ->
      Sched.fill t.d_sched iv (Testbed.attach t.d_world ~config:cfg name)
  | A_run (a, cmd, iv) -> Sched.fill t.d_sched iv (Attach.run a cmd)
  | A_detach (a, iv) ->
      Attach.detach a;
      Sched.fill t.d_sched iv ()
  | A_recover (a, iv) ->
      Attach.recover a;
      Sched.fill t.d_sched iv ()
  | A_crash (a, iv) ->
      Attach.crash_server a;
      Sched.fill t.d_sched iv ()

let ctrl_fault t op =
  match t.d_fault with None -> None | Some f -> Fault.ctrl_action f ~op

(* Map a fired ctrl-site action onto the request: [Some errno] fails it,
   sleeps stall it, [Crash_server] marks the session for a post-attach
   crash (create) or kills the live server (exec). *)
let apply_ctrl_fault t op ~on_crash =
  match ctrl_fault t op with
  | None | Some Fault.Duplicate_reply -> None
  | Some (Fault.Delay ns) | Some (Fault.Hang ns) ->
      Sched.sleep_ns t.d_sched ns;
      None
  | Some (Fault.Fail e) -> Some e
  | Some Fault.Drop_reply -> Some Errno.ETIMEDOUT
  | Some Fault.Crash_server ->
      on_crash ();
      None

(* ------------------------------------------------------------------ *)
(* Session fiber                                                      *)
(* ------------------------------------------------------------------ *)

let remove t sess = Hashtbl.remove t.d_sessions sess.s_id

let conn_dead a = a.Attach.sn_conn.Repro_fuse.Conn.dead

let handle_op t sess op =
  match op with
  | Op_exec (p, _) when sess.s_state = Detached || sess.s_attach = None ->
      reply t p (Error (Rpc.error Rpc.no_session (Printf.sprintf "no session %d" sess.s_id)))
  | Op_exec (p, _) when p.p_cancelled -> reply_cancelled t p
  | Op_exec (p, cmd) -> (
      let a = Option.get sess.s_attach in
      let injected = apply_ctrl_fault t "exec" ~on_crash:(fun () -> act_crash t a) in
      if p.p_cancelled then reply_cancelled t p
      else
        match injected with
        | Some e ->
            reply t p (Error (Rpc.error ~data:(errno_data e) Rpc.fault_injected "exec fault injected"))
        | None ->
            let recovered = ref false in
            let dead = conn_dead a in
            if dead && t.d_config.c_auto_recover then begin
              sess.s_state <- Recovering;
              emit t "session.recovering" [ ("session", Jsonx.Int sess.s_id) ];
              (* deterministic race window: a detach submitted now lands
                 behind this op and still detaches cleanly *)
              Sched.yield t.d_sched;
              act_recover t a;
              Metrics.incr t.m_recovered;
              sess.s_state <- Active;
              recovered := true;
              emit t "session.recovered" [ ("session", Jsonx.Int sess.s_id) ]
            end;
            if dead && not t.d_config.c_auto_recover then
              reply t p
                (Error
                   (Rpc.error ~data:(errno_data Errno.ENOTCONN) Rpc.exec_failed
                      "session server crashed (auto_recover off)"))
            else begin
              let code, output = act_run t a cmd in
              sess.s_execs <- sess.s_execs + 1;
              reply t p
                (Ok
                   (Jsonx.Obj
                      [
                        ("code", Jsonx.Int code);
                        ("output", Jsonx.Str output);
                        ("recovered", Jsonx.Bool !recovered);
                      ]))
            end)
  | Op_detach p ->
      if sess.s_state = Detached then
        reply t p (Ok (Jsonx.Obj [ ("detached", Jsonx.Bool true); ("already", Jsonx.Bool true) ]))
      else begin
        (* clean even when the server is dead or mid-recovery *)
        (match sess.s_attach with Some a -> act_detach t a | None -> ());
        sess.s_state <- Detached;
        release_slot t sess;
        remove t sess;
        emit t "session.detached"
          [ ("session", Jsonx.Int sess.s_id); ("tenant", Jsonx.Str sess.s_tenant) ];
        reply t p (Ok (Jsonx.Obj [ ("detached", Jsonx.Bool true); ("already", Jsonx.Bool false) ]))
      end

let rec serve t sess =
  match Queue.take_opt sess.s_ops with
  | Some op ->
      handle_op t sess op;
      serve t sess
  | None ->
      if sess.s_state = Detached then ()
      else begin
        Sched.park t.d_sched sess.s_cond;
        serve t sess
      end

(* Failure exits before the mailbox loop still answer queued ops. *)
let drain_ops t sess =
  Queue.iter
    (fun op ->
      match op with
      | Op_exec (p, _) ->
          reply t p (Error (Rpc.error Rpc.no_session (Printf.sprintf "no session %d" sess.s_id)))
      | Op_detach p ->
          reply t p (Ok (Jsonx.Obj [ ("detached", Jsonx.Bool true); ("already", Jsonx.Bool true) ])))
    sess.s_ops;
  Queue.clear sess.s_ops

let reject t sess p why =
  Metrics.incr t.m_rejected;
  emit t "session.rejected"
    [
      ("session", Jsonx.Int sess.s_id);
      ("tenant", Jsonx.Str sess.s_tenant);
      ("reason", Jsonx.Str why);
    ];
  sess.s_state <- Detached;
  remove t sess;
  reply t p (Error (Rpc.error Rpc.admission_rejected ("admission rejected: " ^ why)));
  drain_ops t sess

let create_fiber t sess p =
  let cfg = t.d_config in
  let injected = apply_ctrl_fault t "create" ~on_crash:(fun () -> sess.s_crash_pending <- true) in
  match injected with
  | Some e ->
      sess.s_state <- Detached;
      remove t sess;
      reply t p (Error (Rpc.error ~data:(errno_data e) Rpc.fault_injected "create fault injected"));
      drain_ops t sess
  | None ->
      let cancelled () =
        sess.s_state <- Detached;
        remove t sess;
        reply_cancelled t p;
        drain_ops t sess
      in
      if p.p_cancelled then cancelled ()
      else begin
        (* admission: immediate, queued, or rejected *)
        let wait_ns = ref 0L in
        let verdict =
          if can_admit t sess.s_tenant then `Admit
          else if t.d_queued >= cfg.c_queue_depth then `Reject "queue full"
          else if tcount t.d_t_queued sess.s_tenant >= cfg.c_tenant.q_queued then
            `Reject ("tenant queue full: " ^ sess.s_tenant)
          else begin
            t.d_queued <- t.d_queued + 1;
            tbump t.d_t_queued sess.s_tenant 1;
            let t0 = Clock.now_ns (clock t) in
            while (not (can_admit t sess.s_tenant)) && not p.p_cancelled do
              Sched.park t.d_sched t.d_adm_cond
            done;
            t.d_queued <- t.d_queued - 1;
            tbump t.d_t_queued sess.s_tenant (-1);
            wait_ns := Int64.sub (Clock.now_ns (clock t)) t0;
            if p.p_cancelled then `Cancelled
            else begin
              Metrics.observe_ns t.m_wait (Int64.to_int !wait_ns);
              `Admit
            end
          end
        in
        match verdict with
        | `Cancelled -> cancelled ()
        | `Reject why -> reject t sess p why
        | `Admit -> (
            take_slot t sess;
            if p.p_cancelled then begin
              release_slot t sess;
              cancelled ()
            end
            else
              match act_attach t sess.s_config sess.s_container with
              | Error e ->
                  release_slot t sess;
                  sess.s_state <- Detached;
                  remove t sess;
                  reply t p
                    (Error
                       (Rpc.error ~data:(errno_data e) Rpc.attach_failed
                          ("attach failed: " ^ Errno.to_string e)));
                  drain_ops t sess
              | Ok a ->
                  sess.s_attach <- Some a;
                  sess.s_state <- Active;
                  Metrics.incr t.m_total;
                  if sess.s_crash_pending then begin
                    sess.s_crash_pending <- false;
                    act_crash t a
                  end;
                  emit t "session.created"
                    [
                      ("session", Jsonx.Int sess.s_id);
                      ("tenant", Jsonx.Str sess.s_tenant);
                      ("container", Jsonx.Str sess.s_container);
                    ];
                  let ctx = Attach.context a in
                  reply t p
                    (Ok
                       (Jsonx.Obj
                          [
                            ("session", Jsonx.Int sess.s_id);
                            ("container", Jsonx.Str sess.s_container);
                            ("tenant", Jsonx.Str sess.s_tenant);
                            ("pid", Jsonx.Int ctx.Context.cx_pid);
                            ("cgroup", Jsonx.Str ctx.Context.cx_cgroup);
                            ( "queue_wait_us",
                              Jsonx.Int (Int64.to_int (Int64.div !wait_ns 1000L)) );
                          ]));
                  serve t sess)
      end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let parse_attach_config t params =
  let base = t.d_config.c_attach in
  let base =
    match Jsonx.field_int params "threads" with
    | Some n when n > 0 -> { base with Attach.Config.threads = n }
    | _ -> base
  in
  let base =
    match Jsonx.field_str params "tools" with
    | Some "host" -> { base with Attach.Config.tools = Attach.From_host }
    | Some fat -> { base with Attach.Config.tools = Attach.From_container fat }
    | None -> base
  in
  match Jsonx.field_str params "fault_plan" with
  | None -> Ok base
  | Some text -> (
      match Fault.parse text with
      | Ok (plan, retry) -> Ok { base with Attach.Config.fault = Some plan; retry }
      | Error msg -> Error msg)

let find_sess t params =
  match Jsonx.field_int params "session" with
  | None -> Error (Rpc.error Rpc.invalid_params "missing integer param: session")
  | Some id -> (
      match Hashtbl.find_opt t.d_sessions id with
      | Some sess -> Ok sess
      | None -> Error (Rpc.error Rpc.no_session (Printf.sprintf "no session %d" id)))

let post_op t sess op =
  Queue.add op sess.s_ops;
  ignore (Sched.signal t.d_sched sess.s_cond)

let sess_row sess =
  Jsonx.Obj
    [
      ("session", Jsonx.Int sess.s_id);
      ("tenant", Jsonx.Str sess.s_tenant);
      ("container", Jsonx.Str sess.s_container);
      ("state", Jsonx.Str (state_str sess.s_state));
      ("execs", Jsonx.Int sess.s_execs);
    ]

let info_json =
  Jsonx.Obj
    [
      ("server", Jsonx.Str "cntrd");
      ("protocol", Jsonx.Str "2.0");
      ("version", Jsonx.Str protocol_version);
      ("methods", Jsonx.List (List.map (fun m -> Jsonx.Str m) methods));
    ]

let dispatch t ?sink ?sink_ready p (req : Rpc.request) =
  let params = req.Rpc.r_params in
  match req.Rpc.r_method with
  | "daemon.info" -> reply t p (Ok info_json)
  | "session.create" -> (
      match Jsonx.field_str params "container" with
      | None -> reply t p (Error (Rpc.error Rpc.invalid_params "missing string param: container"))
      | Some container -> (
          match parse_attach_config t params with
          | Error msg ->
              reply t p (Error (Rpc.error Rpc.invalid_params ("bad fault_plan: " ^ msg)))
          | Ok acfg ->
              let tenant =
                Option.value (Jsonx.field_str params "tenant") ~default:"default"
              in
              let sess =
                {
                  s_id = t.d_next_id;
                  s_tenant = tenant;
                  s_container = container;
                  s_config = acfg;
                  s_state = Queued;
                  s_attach = None;
                  s_execs = 0;
                  s_admitted = false;
                  s_crash_pending = false;
                  s_ops = Queue.create ();
                  s_cond = Sched.cond ();
                }
              in
              t.d_next_id <- t.d_next_id + 1;
              Hashtbl.replace t.d_sessions sess.s_id sess;
              ignore (Sched.spawn t.d_sched (fun () -> create_fiber t sess p))))
  | "session.exec" -> (
      match (find_sess t params, Jsonx.field_str params "cmd") with
      | Error e, _ -> reply t p (Error e)
      | Ok _, None -> reply t p (Error (Rpc.error Rpc.invalid_params "missing string param: cmd"))
      | Ok sess, Some cmd -> post_op t sess (Op_exec (p, cmd)))
  | "session.stat" -> (
      match find_sess t params with
      | Error e -> reply t p (Error e)
      | Ok sess ->
          let report =
            match sess.s_attach with Some a -> Attach.report a | None -> ""
          in
          let fields =
            match sess_row sess with Jsonx.Obj f -> f | _ -> assert false
          in
          reply t p (Ok (Jsonx.Obj (fields @ [ ("report", Jsonx.Str report) ]))))
  | "session.detach" -> (
      (* idempotent at the RPC layer: unknown ids are already-detached *)
      match Jsonx.field_int params "session" with
      | None -> reply t p (Error (Rpc.error Rpc.invalid_params "missing integer param: session"))
      | Some id -> (
          match Hashtbl.find_opt t.d_sessions id with
          | None ->
              reply t p
                (Ok (Jsonx.Obj [ ("detached", Jsonx.Bool true); ("already", Jsonx.Bool true) ]))
          | Some sess -> post_op t sess (Op_detach p)))
  | "session.list" ->
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.d_sessions [] in
      let rows =
        List.sort compare ids
        |> List.map (fun id -> sess_row (Hashtbl.find t.d_sessions id))
      in
      reply t p (Ok (Jsonx.Obj [ ("sessions", Jsonx.List rows) ]))
  | "stats.subscribe" -> (
      match sink with
      | None ->
          reply t p
            (Error (Rpc.error Rpc.internal_error "transport provides no notification sink"))
      | Some sink ->
          let ready = Option.value sink_ready ~default:(fun () -> true) in
          t.d_subs <-
            t.d_subs @ [ { sb_sink = sink; sb_buf = Queue.create (); sb_ready = ready } ];
          reply t p
            (Ok
               (Jsonx.Obj
                  [
                    ("subscribed", Jsonx.Bool true);
                    ("buffer", Jsonx.Int t.d_config.c_sub_buffer);
                  ])))
  | "$/cancel" -> (
      match Option.bind (Jsonx.mem params "id") Rpc.id_of_json with
      | None -> reply t p (Error (Rpc.error Rpc.invalid_params "missing param: id"))
      | Some id ->
          let found = cancel t id in
          reply t p (Ok (Jsonx.Obj [ ("cancelled", Jsonx.Bool found) ])))
  | m -> reply t p (Error (Rpc.error Rpc.method_not_found ("unknown method: " ^ m)))

let submit t ?sink ?sink_ready (req : Rpc.request) =
  Metrics.incr t.m_calls;
  match req.Rpc.r_id with
  | None ->
      (* notifications: only $/cancel is meaningful *)
      (if req.Rpc.r_method = "$/cancel" then
         match Option.bind (Jsonx.mem req.Rpc.r_params "id") Rpc.id_of_json with
         | Some id -> ignore (cancel t id)
         | None -> ());
      None
  | Some id ->
      let p = { p_rid = id; p_cancelled = false; p_resp = None } in
      t.d_inflight <- t.d_inflight @ [ p ];
      dispatch t ?sink ?sink_ready p req;
      Some p

(* ------------------------------------------------------------------ *)
(* The pump                                                           *)
(* ------------------------------------------------------------------ *)

let k t = kernel t

(* ctrl.wire.* counters, created by the first wire_serve *)
let wire_metrics t =
  match t.d_wm with
  | Some m -> m
  | None ->
      let mx = Repro_obs.Obs.metrics (obs t) in
      let m =
        {
          wm_conns = Metrics.counter mx "ctrl.wire.conns";
          wm_batches = Metrics.counter mx "ctrl.wire.batches";
          wm_stalls = Metrics.counter mx "ctrl.wire.stalls";
          wm_overloaded = Metrics.counter mx "ctrl.wire.overloaded";
          wm_pipelined_max = Metrics.gauge mx "ctrl.wire.pipelined.max";
          wm_backlog_peak = Metrics.gauge mx "ctrl.wire.backlog.peak";
          wm_frame_max = Metrics.gauge mx "ctrl.wire.frame.max";
          wm_pmax = 0;
          wm_bpeak = 0;
          wm_fmax = 0;
        }
      in
      t.d_wm <- Some m;
      m

let wm t = Option.get t.d_wm (* wire paths only run after wire_serve *)

(* [rotate l n]: l starting at index [n mod length], wrapping — the
   round-robin order for one service pass. *)
let rotate l n =
  let len = List.length l in
  if len <= 1 then l
  else
    let rec split i acc = function
      | x :: tl when i > 0 -> split (i - 1) (x :: acc) tl
      | rest -> rest @ List.rev acc
    in
    split (n mod len) [] l

(* Append one framed payload to the connection's backlog, tracking the
   peak backlog and largest single frame (the flow-control gate in the
   fleet bench checks peak <= high watermark + one frame). *)
let conn_push t wc payload =
  let framed = Rpc.frame payload in
  Queue.push framed wc.wc_outq;
  wc.wc_out_len <- wc.wc_out_len + String.length framed;
  let m = wm t in
  if String.length framed > m.wm_fmax then begin
    m.wm_fmax <- String.length framed;
    Metrics.set m.wm_frame_max (float_of_int m.wm_fmax)
  end;
  if wc.wc_out_len > m.wm_bpeak then begin
    m.wm_bpeak <- wc.wc_out_len;
    Metrics.set m.wm_backlog_peak (float_of_int m.wm_bpeak)
  end

let conn_room t wc = wc.wc_out_len < t.d_config.c_wire_high

(* Admit one id-carrying request from a connection, or refuse it with
   -32005 when the connection's inbound queue (admitted requests whose
   replies have not yet been flushed) is full.  Notifications are always
   processed — dropping a $/cancel under load would be unkind. *)
let wire_admit t wc ~sink ~sink_ready (req : Rpc.request) =
  match req.Rpc.r_id with
  | None ->
      ignore (submit t ~sink ~sink_ready req);
      `None
  | Some id ->
      if wc.wc_inflight >= t.d_config.c_wire_inflight then begin
        Metrics.incr (wm t).wm_overloaded;
        `Reply
          {
            Rpc.p_id = Some id;
            p_result =
              Error
                (Rpc.error Rpc.overloaded
                   (Printf.sprintf "connection inbound queue full (%d in flight)"
                      wc.wc_inflight));
          }
      end
      else
        match submit t ~sink ~sink_ready req with
        | Some tk ->
            wc.wc_inflight <- wc.wc_inflight + 1;
            let m = wm t in
            if wc.wc_inflight > m.wm_pmax then begin
              m.wm_pmax <- wc.wc_inflight;
              Metrics.set m.wm_pipelined_max (float_of_int m.wm_pmax)
            end;
            `Ticket tk
        | None -> `None

let handle_frame t wc ~sink ~sink_ready payload =
  let now r = Queue.push r wc.wc_now in
  match Rpc.decode_incoming payload with
  | Error e -> now { Rpc.p_id = None; p_result = Error e }
  | Ok (Rpc.Single (Error e)) -> now { Rpc.p_id = None; p_result = Error e }
  | Ok (Rpc.Single (Ok (Rpc.Response _))) -> () (* clients don't call us back *)
  | Ok (Rpc.Single (Ok (Rpc.Request req))) -> (
      match wire_admit t wc ~sink ~sink_ready req with
      | `Reply r -> now r
      | `Ticket tk -> wc.wc_singles <- wc.wc_singles @ [ tk ]
      | `None -> ())
  | Ok (Rpc.Batch elems) ->
      Metrics.incr (wm t).wm_batches;
      let slots =
        List.filter_map
          (function
            | Error e -> Some (Slot_done { Rpc.p_id = None; p_result = Error e })
            | Ok (Rpc.Response _) -> None
            | Ok (Rpc.Request req) -> (
                match wire_admit t wc ~sink ~sink_ready req with
                | `Reply r -> Some (Slot_done r)
                | `Ticket tk -> Some (Slot_wait tk)
                | `None -> None))
          elems
      in
      (* an all-notification (or all-ignored) batch gets no reply frame *)
      if slots <> [] then wc.wc_batches <- wc.wc_batches @ [ Array.of_list slots ]

let slot_response = function Slot_done r -> Some r | Slot_wait tk -> tk.p_resp

(* Move finished replies into the framed backlog while the watermark
   allows: immediate replies first, then resolved pipelined singles in
   arrival order (unresolved ones are skipped — replies are deliverable
   out of order), then complete batch envelopes as one array frame each.
   Anything without room stays queued; flow control, not truncation. *)
let conn_flush t wc =
  let progress = ref false in
  while conn_room t wc && not (Queue.is_empty wc.wc_now) do
    conn_push t wc (Rpc.encode_response (Queue.pop wc.wc_now));
    progress := true
  done;
  let rec sweep_singles = function
    | [] -> []
    | tk :: rest when conn_room t wc -> (
        match tk.p_resp with
        | Some r ->
            conn_push t wc (Rpc.encode_response r);
            wc.wc_inflight <- wc.wc_inflight - 1;
            progress := true;
            sweep_singles rest
        | None -> tk :: sweep_singles rest)
    | rest -> rest
  in
  wc.wc_singles <- sweep_singles wc.wc_singles;
  let batch_complete slots = Array.for_all (fun s -> slot_response s <> None) slots in
  let rec sweep_batches = function
    | [] -> []
    | slots :: rest when conn_room t wc && batch_complete slots ->
        let rs =
          Array.to_list (Array.map (fun s -> Option.get (slot_response s)) slots)
        in
        conn_push t wc (Rpc.encode_responses rs);
        let admitted =
          Array.fold_left
            (fun a -> function Slot_wait _ -> a + 1 | Slot_done _ -> a)
            0 slots
        in
        wc.wc_inflight <- wc.wc_inflight - admitted;
        progress := true;
        sweep_batches rest
    | slots :: rest -> slots :: sweep_batches rest
  in
  wc.wc_batches <- sweep_batches wc.wc_batches;
  !progress

(* Push backlog bytes into the (bounded) kernel socket; partial writes
   leave an offset into the head chunk. *)
let conn_write t w wc =
  let progress = ref false in
  let blocked = ref false in
  while (not !blocked) && not (Queue.is_empty wc.wc_outq) do
    let chunk = Queue.peek wc.wc_outq in
    let s =
      if wc.wc_out_off = 0 then chunk
      else String.sub chunk wc.wc_out_off (String.length chunk - wc.wc_out_off)
    in
    match Kernel.write (k t) w.w_proc wc.wc_fd s with
    | Ok n when n > 0 ->
        progress := true;
        wc.wc_out_len <- wc.wc_out_len - n;
        if n = String.length s then begin
          ignore (Queue.pop wc.wc_outq);
          wc.wc_out_off <- 0
        end
        else begin
          wc.wc_out_off <- wc.wc_out_off + n;
          blocked := true
        end
    | _ -> blocked := true
  done;
  !progress

(* The flow-control state machine: FLOWING --(backlog >= high)--> STALLED
   --(backlog <= low)--> FLOWING.  Stalled connections are not read and
   take no buffered replies or events; stall entries are counted. *)
let conn_update_flow t wc =
  match wc.wc_flow with
  | Flowing when wc.wc_out_len >= t.d_config.c_wire_high ->
      wc.wc_flow <- Stalled;
      Metrics.incr (wm t).wm_stalls
  | Stalled when wc.wc_out_len <= t.d_config.c_wire_low -> wc.wc_flow <- Flowing
  | _ -> ()

(* One service pass over a wire endpoint: move plane bytes, accept new
   clients, deframe + dispatch (pipelined; batches envelope-at-a-time),
   flush finished replies and events under the watermark, write. *)
let wire_step t w =
  let progress = ref false in
  Proxy.drain w.w_plane;
  let rec accept_loop () =
    match Kernel.socket_accept (k t) w.w_proc w.w_lfd with
    | Ok fd ->
        progress := true;
        Metrics.incr (wm t).wm_conns;
        w.w_conns <-
          {
            wc_fd = fd;
            wc_reader = Rpc.reader ();
            wc_outq = Queue.create ();
            wc_out_off = 0;
            wc_out_len = 0;
            wc_flow = Flowing;
            wc_now = Queue.create ();
            wc_singles = [];
            wc_batches = [];
            wc_inflight = 0;
          }
          :: w.w_conns;
        accept_loop ()
    | Error _ -> ()
  in
  accept_loop ();
  (* service connections round-robin so no socket is list-position-biased *)
  let conns = rotate w.w_conns w.w_rr in
  if conns <> [] then w.w_rr <- w.w_rr + 1;
  List.iter
    (fun wc ->
      (* read + dispatch only while flowing: a stalled reader's requests
         back up into the bounded socket, then into the sender *)
      if wc.wc_flow = Flowing then begin
        let rec read_loop () =
          match Kernel.read (k t) w.w_proc wc.wc_fd ~len:65536 with
          | Ok s when String.length s > 0 ->
              Rpc.feed wc.wc_reader s;
              progress := true;
              read_loop ()
          | _ -> ()
        in
        read_loop ();
        let sink j =
          if conn_room t wc then conn_push t wc (Jsonx.to_string j)
        in
        let sink_ready () = wc.wc_flow = Flowing && conn_room t wc in
        let rec frame_loop () =
          match Rpc.next wc.wc_reader with
          | `Frame payload ->
              progress := true;
              handle_frame t wc ~sink ~sink_ready payload;
              frame_loop ()
          | `Garbage _ ->
              progress := true;
              Queue.push
                {
                  Rpc.p_id = None;
                  p_result = Error (Rpc.error Rpc.parse_error "malformed framing header");
                }
                wc.wc_now;
              frame_loop ()
          | `More -> ()
        in
        frame_loop ()
      end)
    conns;
  (* buffered events drain into whichever subscriber sinks report ready
     (a wire sink is ready while its connection flows under the
     watermark) *)
  flush_subs t;
  List.iter
    (fun wc ->
      if conn_flush t wc then progress := true;
      if conn_write t w wc then progress := true;
      conn_update_flow t wc)
    conns;
  Proxy.drain w.w_plane;
  !progress

let pump t =
  let rec loop () =
    Sched.drive_main t.d_sched (fun () ->
        (not (Queue.is_empty t.d_actions)) || Sched.pending_events t.d_sched = 0);
    match Queue.take_opt t.d_actions with
    | Some a ->
        perform t a;
        loop ()
    | None ->
        (* in-process subscribers (always ready) drain here even when no
           wire exists *)
        flush_subs t;
        (* wire endpoints are serviced round-robin, not list-position
           first *)
        let wires = rotate t.d_wires t.d_wire_rr in
        if wires <> [] then t.d_wire_rr <- t.d_wire_rr + 1;
        let progressed = List.fold_left (fun acc w -> wire_step t w || acc) false wires in
        if progressed then loop ()
  in
  loop ()

let peek _t tk = tk.p_resp

exception Stalled of string

let response t tk =
  let rec go () =
    match tk.p_resp with
    | Some r -> r
    | None ->
        pump t;
        (match tk.p_resp with
        | Some r -> r
        | None ->
            if Queue.is_empty t.d_actions && Sched.pending_events t.d_sched = 0 then
              raise
                (Stalled
                   "request parked with no runnable work (admission queue with no detach coming?)")
            else go ())
  in
  go ()

let handle_text t ?sink text =
  let err e = Some (Rpc.encode_response { Rpc.p_id = None; p_result = Error e }) in
  match Rpc.decode_incoming text with
  | Error e -> err e
  | Ok (Rpc.Single (Error e)) -> err e
  | Ok (Rpc.Single (Ok (Rpc.Response _))) -> None
  | Ok (Rpc.Single (Ok (Rpc.Request req))) -> (
      match submit t ?sink req with
      | None ->
          pump t;
          None
      | Some tk -> Some (Rpc.encode_response (response t tk)))
  | Ok (Rpc.Batch elems) -> (
      (* per-element validation: a malformed element answers in place,
         well-formed neighbours still dispatch; notifications are elided
         from the reply array (JSON-RPC 2.0 §6) *)
      let slots =
        List.filter_map
          (function
            | Error e -> Some (`Now { Rpc.p_id = None; p_result = Error e })
            | Ok (Rpc.Response _) -> None
            | Ok (Rpc.Request req) -> (
                match submit t ?sink req with
                | Some tk -> Some (`Wait tk)
                | None -> None))
          elems
      in
      match slots with
      | [] ->
          pump t;
          None
      | slots ->
          let rs =
            List.map (function `Now r -> r | `Wait tk -> response t tk) slots
          in
          Some (Rpc.encode_responses rs))

(* ------------------------------------------------------------------ *)
(* Wire serving                                                       *)
(* ------------------------------------------------------------------ *)

let wire_serve t ?mode ~path () =
  ignore (wire_metrics t);
  let kernel = k t in
  let init = Kernel.init_proc kernel in
  let dproc = Kernel.fork kernel init in
  dproc.Proc.comm <- "cntrd";
  let cproc = Kernel.fork kernel init in
  cproc.Proc.comm <- "cntr-cli";
  let pproc = Kernel.fork kernel init in
  pproc.Proc.comm <- "cntrd-rpc";
  let plane = Proxy.create ?mode ~kernel ~proc:pproc () in
  (* best-effort parent dir (e.g. /run) so callers don't need setup *)
  (match String.rindex_opt path '/' with
  | Some i when i > 0 ->
      ignore (Kernel.mkdir kernel init (String.sub path 0 i) ~mode:0o755)
  | _ -> ());
  let backend_path = path ^ ".d" in
  match Kernel.socket_listen kernel dproc backend_path with
  | Error e -> Error e
  | Ok lfd -> (
      match
        Proxy.forward plane ~front_proc:init ~back_proc:dproc ~backend_path ~label:"rpc" path
      with
      | Error e -> Error e
      | Ok _fwd ->
          let w =
            {
              w_path = path;
              w_proc = dproc;
              w_client_proc = cproc;
              w_plane = plane;
              w_lfd = lfd;
              w_daemon = t;
              w_conns = [];
              w_rr = 0;
            }
          in
          (* O(1) registration; service order is round-robin, so list
             position carries no priority *)
          t.d_wires <- w :: t.d_wires;
          Ok w)

let wire_path w = w.w_path
let wire_client_proc w = w.w_client_proc
let wire_daemon w = w.w_daemon
