(* cntrd: the persistent attach control plane.

   Split-brain by design: fibers on the daemon's scheduler own every piece
   of control-plane state (session table, admission queue, quotas,
   cancellation flags), while the data-plane verbs — attach, exec, detach,
   recover, crash — are *actions* queued to the top level.  [pump]
   alternates: drive fibers until they quiesce or request an action, then
   commit the next action where the FUSE/TTY event loops can be driven
   (those loops no-op inside foreign fibers).  Everything stays on the one
   virtual clock, so identical submissions replay identically. *)

open Repro_util
open Repro_os
open Repro_cntr
module Sched = Repro_sched.Sched
module Metrics = Repro_obs.Metrics
module Fault = Repro_fault.Fault
module Proxy = Repro_proxy.Proxy

type quota = { q_active : int; q_queued : int }

type config = {
  c_max_active : int;
  c_queue_depth : int;
  c_tenant : quota;
  c_attach : Attach.Config.t;
  c_fault : Fault.plan option;
  c_auto_recover : bool;
  c_sub_buffer : int;  (* undelivered events retained per subscriber *)
}

let default_config =
  {
    c_max_active = 64;
    c_queue_depth = 32;
    c_tenant = { q_active = 16; q_queued = 8 };
    c_attach = Attach.Config.default;
    c_fault = None;
    c_auto_recover = true;
    c_sub_buffer = 256;
  }

(* One in-flight request. *)
type ticket = {
  p_rid : Rpc.id;
  mutable p_cancelled : bool;
  mutable p_resp : Rpc.response option;
}

type state = Queued | Active | Recovering | Detached

let state_str = function
  | Queued -> "queued"
  | Active -> "active"
  | Recovering -> "recovering"
  | Detached -> "detached"

type op = Op_exec of ticket * string | Op_detach of ticket

type sess = {
  s_id : int;
  s_tenant : string;
  s_container : string;
  s_config : Attach.Config.t;
  mutable s_state : state;
  mutable s_attach : Attach.session option;
  mutable s_execs : int;
  mutable s_admitted : bool;
  mutable s_crash_pending : bool; (* ctrl create fault: crash right after attach *)
  s_ops : op Queue.t;
  s_cond : Sched.cond;
}

(* Data-plane actions, executed by [pump] at top level. *)
type action =
  | A_attach of Attach.Config.t * string * (Attach.session, Errno.t) result Sched.ivar
  | A_run of Attach.session * string * (int * string) Sched.ivar
  | A_detach of Attach.session * unit Sched.ivar
  | A_recover of Attach.session * unit Sched.ivar
  | A_crash of Attach.session * unit Sched.ivar

(* A subscriber: the sink plus a bounded ring of undelivered events.  A
   slow transport stops draining instead of letting the daemon buffer its
   entire event history; at capacity the *oldest* event is dropped and
   counted (recent state beats stale history for a monitoring stream). *)
type sub = {
  sb_sink : Jsonx.t -> unit;
  sb_buf : Jsonx.t Queue.t;
  sb_ready : unit -> bool;  (* can the transport take another event now? *)
}

type wire_conn = {
  wc_fd : int;
  wc_reader : Rpc.reader;
  mutable wc_out : string;
  mutable wc_tickets : ticket list; (* awaiting replies *)
  mutable wc_sink_installed : bool;
}

type wire = {
  w_path : string;
  w_proc : Proc.t; (* daemon-side endpoint: owns the backend listener *)
  w_client_proc : Proc.t;
  w_plane : Proxy.t;
  w_lfd : int;
  mutable w_conns : wire_conn list;
}

type t = {
  d_world : Repro_runtime.World.t;
  d_config : config;
  d_sched : Sched.t;
  d_fault : Fault.t option;
  d_actions : action Queue.t;
  d_sessions : (int, sess) Hashtbl.t;
  mutable d_next_id : int;
  mutable d_inflight : ticket list;
  mutable d_subs : sub list;
  mutable d_m_sub_dropped : Metrics.counter option;
      (* lazily created: only daemons that ever drop touch the registry *)
  mutable d_wires : wire list;
  (* admission *)
  d_adm_cond : Sched.cond;
  mutable d_active : int;
  mutable d_queued : int;
  d_t_active : (string, int) Hashtbl.t;
  d_t_queued : (string, int) Hashtbl.t;
  (* metrics *)
  m_active : Metrics.gauge;
  m_total : Metrics.counter;
  m_rejected : Metrics.counter;
  m_recovered : Metrics.counter;
  m_calls : Metrics.counter;
  m_cancelled : Metrics.counter;
  m_wait : Metrics.histogram;
}

let protocol_version = "cntrd/1.0"

let methods =
  [
    "daemon.info";
    "session.create";
    "session.exec";
    "session.stat";
    "session.detach";
    "session.list";
    "stats.subscribe";
    "$/cancel";
  ]

let create ?(config = default_config) world =
  let kernel = world.Repro_runtime.World.kernel in
  let obs = kernel.Kernel.obs in
  let metrics = Repro_obs.Obs.metrics obs in
  let clock = kernel.Kernel.clock in
  {
    d_world = world;
    d_config = config;
    d_sched = Sched.create ~clock;
    d_fault = Option.map (Fault.arm ~obs ~clock) config.c_fault;
    d_actions = Queue.create ();
    d_sessions = Hashtbl.create 64;
    d_next_id = 1;
    d_inflight = [];
    d_subs = [];
    d_m_sub_dropped = None;
    d_wires = [];
    d_adm_cond = Sched.cond ();
    d_active = 0;
    d_queued = 0;
    d_t_active = Hashtbl.create 8;
    d_t_queued = Hashtbl.create 8;
    m_active = Metrics.gauge metrics "ctrl.sessions.active";
    m_total = Metrics.counter metrics "ctrl.sessions.total";
    m_rejected = Metrics.counter metrics "ctrl.sessions.rejected";
    m_recovered = Metrics.counter metrics "ctrl.sessions.recovered";
    m_calls = Metrics.counter metrics "ctrl.rpc.calls";
    m_cancelled = Metrics.counter metrics "ctrl.rpc.cancelled";
    m_wait = Metrics.histogram metrics "ctrl.queue.wait_us";
  }

let world t = t.d_world
let config t = t.d_config
let kernel t = t.d_world.Repro_runtime.World.kernel
let obs t = (kernel t).Kernel.obs
let clock t = (kernel t).Kernel.clock

(* ------------------------------------------------------------------ *)
(* Replies, events, cancellation                                      *)
(* ------------------------------------------------------------------ *)

let reply t p result =
  (match p.p_resp with
  | Some _ -> () (* first reply wins; late paths are no-ops *)
  | None -> p.p_resp <- Some { Rpc.p_id = Some p.p_rid; p_result = result });
  t.d_inflight <- List.filter (fun q -> q != p) t.d_inflight

let reply_cancelled t p =
  Metrics.incr t.m_cancelled;
  reply t p (Error (Rpc.error Rpc.cancelled "request cancelled"))

let errno_data e = Jsonx.Obj [ ("errno", Jsonx.Str (Errno.to_string e)) ]

let sub_dropped t =
  match t.d_m_sub_dropped with
  | Some c -> c
  | None ->
      let c =
        Metrics.counter (Repro_obs.Obs.metrics (obs t)) "ctrl.subscribe.dropped"
      in
      t.d_m_sub_dropped <- Some c;
      c

(* Events are buffered per subscriber, never sunk inline: the emitter must
   not block (or allocate unboundedly) on a slow client.  [flush_subs]
   drains each ring as long as its transport reports ready. *)
let emit t event fields =
  if t.d_subs <> [] then begin
    let params =
      Jsonx.Obj
        (("event", Jsonx.Str event)
        :: ("t_ns", Jsonx.Int (Int64.to_int (Clock.now_ns (clock t))))
        :: fields)
    in
    let msg = Rpc.request_json { Rpc.r_id = None; r_method = "stats.event"; r_params = params } in
    List.iter
      (fun sb ->
        if Queue.length sb.sb_buf >= t.d_config.c_sub_buffer then begin
          ignore (Queue.pop sb.sb_buf);
          Metrics.incr (sub_dropped t)
        end;
        Queue.push msg sb.sb_buf)
      t.d_subs
  end

let flush_subs t =
  List.iter
    (fun sb ->
      while (not (Queue.is_empty sb.sb_buf)) && sb.sb_ready () do
        sb.sb_sink (Queue.pop sb.sb_buf)
      done)
    t.d_subs

let cancel t id =
  match List.find_opt (fun p -> p.p_rid = id && p.p_resp = None) t.d_inflight with
  | None -> false
  | Some p ->
      p.p_cancelled <- true;
      (* wake parked admissions so a cancelled create leaves the queue *)
      ignore (Sched.broadcast t.d_sched t.d_adm_cond);
      true

(* ------------------------------------------------------------------ *)
(* Admission bookkeeping                                              *)
(* ------------------------------------------------------------------ *)

let tcount tbl tenant = Option.value (Hashtbl.find_opt tbl tenant) ~default:0

let tbump tbl tenant delta =
  let v = tcount tbl tenant + delta in
  if v <= 0 then Hashtbl.remove tbl tenant else Hashtbl.replace tbl tenant v

let can_admit t tenant =
  t.d_active < t.d_config.c_max_active
  && tcount t.d_t_active tenant < t.d_config.c_tenant.q_active

let take_slot t sess =
  t.d_active <- t.d_active + 1;
  tbump t.d_t_active sess.s_tenant 1;
  sess.s_admitted <- true;
  Metrics.set t.m_active (float_of_int t.d_active)

let release_slot t sess =
  if sess.s_admitted then begin
    sess.s_admitted <- false;
    t.d_active <- t.d_active - 1;
    tbump t.d_t_active sess.s_tenant (-1);
    Metrics.set t.m_active (float_of_int t.d_active);
    ignore (Sched.broadcast t.d_sched t.d_adm_cond)
  end

(* ------------------------------------------------------------------ *)
(* Data-plane actions                                                 *)
(* ------------------------------------------------------------------ *)

let act t mk =
  let iv = Sched.ivar () in
  Queue.add (mk iv) t.d_actions;
  Sched.read t.d_sched iv

let act_attach t cfg name = act t (fun iv -> A_attach (cfg, name, iv))
let act_run t a cmd = act t (fun iv -> A_run (a, cmd, iv))
let act_detach t a = act t (fun iv -> A_detach (a, iv))
let act_recover t a = act t (fun iv -> A_recover (a, iv))
let act_crash t a = act t (fun iv -> A_crash (a, iv))

let perform t = function
  | A_attach (cfg, name, iv) ->
      Sched.fill t.d_sched iv (Testbed.attach t.d_world ~config:cfg name)
  | A_run (a, cmd, iv) -> Sched.fill t.d_sched iv (Attach.run a cmd)
  | A_detach (a, iv) ->
      Attach.detach a;
      Sched.fill t.d_sched iv ()
  | A_recover (a, iv) ->
      Attach.recover a;
      Sched.fill t.d_sched iv ()
  | A_crash (a, iv) ->
      Attach.crash_server a;
      Sched.fill t.d_sched iv ()

let ctrl_fault t op =
  match t.d_fault with None -> None | Some f -> Fault.ctrl_action f ~op

(* Map a fired ctrl-site action onto the request: [Some errno] fails it,
   sleeps stall it, [Crash_server] marks the session for a post-attach
   crash (create) or kills the live server (exec). *)
let apply_ctrl_fault t op ~on_crash =
  match ctrl_fault t op with
  | None | Some Fault.Duplicate_reply -> None
  | Some (Fault.Delay ns) | Some (Fault.Hang ns) ->
      Sched.sleep_ns t.d_sched ns;
      None
  | Some (Fault.Fail e) -> Some e
  | Some Fault.Drop_reply -> Some Errno.ETIMEDOUT
  | Some Fault.Crash_server ->
      on_crash ();
      None

(* ------------------------------------------------------------------ *)
(* Session fiber                                                      *)
(* ------------------------------------------------------------------ *)

let remove t sess = Hashtbl.remove t.d_sessions sess.s_id

let conn_dead a = a.Attach.sn_conn.Repro_fuse.Conn.dead

let handle_op t sess op =
  match op with
  | Op_exec (p, _) when sess.s_state = Detached || sess.s_attach = None ->
      reply t p (Error (Rpc.error Rpc.no_session (Printf.sprintf "no session %d" sess.s_id)))
  | Op_exec (p, _) when p.p_cancelled -> reply_cancelled t p
  | Op_exec (p, cmd) -> (
      let a = Option.get sess.s_attach in
      let injected = apply_ctrl_fault t "exec" ~on_crash:(fun () -> act_crash t a) in
      if p.p_cancelled then reply_cancelled t p
      else
        match injected with
        | Some e ->
            reply t p (Error (Rpc.error ~data:(errno_data e) Rpc.fault_injected "exec fault injected"))
        | None ->
            let recovered = ref false in
            let dead = conn_dead a in
            if dead && t.d_config.c_auto_recover then begin
              sess.s_state <- Recovering;
              emit t "session.recovering" [ ("session", Jsonx.Int sess.s_id) ];
              (* deterministic race window: a detach submitted now lands
                 behind this op and still detaches cleanly *)
              Sched.yield t.d_sched;
              act_recover t a;
              Metrics.incr t.m_recovered;
              sess.s_state <- Active;
              recovered := true;
              emit t "session.recovered" [ ("session", Jsonx.Int sess.s_id) ]
            end;
            if dead && not t.d_config.c_auto_recover then
              reply t p
                (Error
                   (Rpc.error ~data:(errno_data Errno.ENOTCONN) Rpc.exec_failed
                      "session server crashed (auto_recover off)"))
            else begin
              let code, output = act_run t a cmd in
              sess.s_execs <- sess.s_execs + 1;
              reply t p
                (Ok
                   (Jsonx.Obj
                      [
                        ("code", Jsonx.Int code);
                        ("output", Jsonx.Str output);
                        ("recovered", Jsonx.Bool !recovered);
                      ]))
            end)
  | Op_detach p ->
      if sess.s_state = Detached then
        reply t p (Ok (Jsonx.Obj [ ("detached", Jsonx.Bool true); ("already", Jsonx.Bool true) ]))
      else begin
        (* clean even when the server is dead or mid-recovery *)
        (match sess.s_attach with Some a -> act_detach t a | None -> ());
        sess.s_state <- Detached;
        release_slot t sess;
        remove t sess;
        emit t "session.detached"
          [ ("session", Jsonx.Int sess.s_id); ("tenant", Jsonx.Str sess.s_tenant) ];
        reply t p (Ok (Jsonx.Obj [ ("detached", Jsonx.Bool true); ("already", Jsonx.Bool false) ]))
      end

let rec serve t sess =
  match Queue.take_opt sess.s_ops with
  | Some op ->
      handle_op t sess op;
      serve t sess
  | None ->
      if sess.s_state = Detached then ()
      else begin
        Sched.park t.d_sched sess.s_cond;
        serve t sess
      end

(* Failure exits before the mailbox loop still answer queued ops. *)
let drain_ops t sess =
  Queue.iter
    (fun op ->
      match op with
      | Op_exec (p, _) ->
          reply t p (Error (Rpc.error Rpc.no_session (Printf.sprintf "no session %d" sess.s_id)))
      | Op_detach p ->
          reply t p (Ok (Jsonx.Obj [ ("detached", Jsonx.Bool true); ("already", Jsonx.Bool true) ])))
    sess.s_ops;
  Queue.clear sess.s_ops

let reject t sess p why =
  Metrics.incr t.m_rejected;
  emit t "session.rejected"
    [
      ("session", Jsonx.Int sess.s_id);
      ("tenant", Jsonx.Str sess.s_tenant);
      ("reason", Jsonx.Str why);
    ];
  sess.s_state <- Detached;
  remove t sess;
  reply t p (Error (Rpc.error Rpc.admission_rejected ("admission rejected: " ^ why)));
  drain_ops t sess

let create_fiber t sess p =
  let cfg = t.d_config in
  let injected = apply_ctrl_fault t "create" ~on_crash:(fun () -> sess.s_crash_pending <- true) in
  match injected with
  | Some e ->
      sess.s_state <- Detached;
      remove t sess;
      reply t p (Error (Rpc.error ~data:(errno_data e) Rpc.fault_injected "create fault injected"));
      drain_ops t sess
  | None ->
      let cancelled () =
        sess.s_state <- Detached;
        remove t sess;
        reply_cancelled t p;
        drain_ops t sess
      in
      if p.p_cancelled then cancelled ()
      else begin
        (* admission: immediate, queued, or rejected *)
        let wait_ns = ref 0L in
        let verdict =
          if can_admit t sess.s_tenant then `Admit
          else if t.d_queued >= cfg.c_queue_depth then `Reject "queue full"
          else if tcount t.d_t_queued sess.s_tenant >= cfg.c_tenant.q_queued then
            `Reject ("tenant queue full: " ^ sess.s_tenant)
          else begin
            t.d_queued <- t.d_queued + 1;
            tbump t.d_t_queued sess.s_tenant 1;
            let t0 = Clock.now_ns (clock t) in
            while (not (can_admit t sess.s_tenant)) && not p.p_cancelled do
              Sched.park t.d_sched t.d_adm_cond
            done;
            t.d_queued <- t.d_queued - 1;
            tbump t.d_t_queued sess.s_tenant (-1);
            wait_ns := Int64.sub (Clock.now_ns (clock t)) t0;
            if p.p_cancelled then `Cancelled
            else begin
              Metrics.observe_ns t.m_wait (Int64.to_int !wait_ns);
              `Admit
            end
          end
        in
        match verdict with
        | `Cancelled -> cancelled ()
        | `Reject why -> reject t sess p why
        | `Admit -> (
            take_slot t sess;
            if p.p_cancelled then begin
              release_slot t sess;
              cancelled ()
            end
            else
              match act_attach t sess.s_config sess.s_container with
              | Error e ->
                  release_slot t sess;
                  sess.s_state <- Detached;
                  remove t sess;
                  reply t p
                    (Error
                       (Rpc.error ~data:(errno_data e) Rpc.attach_failed
                          ("attach failed: " ^ Errno.to_string e)));
                  drain_ops t sess
              | Ok a ->
                  sess.s_attach <- Some a;
                  sess.s_state <- Active;
                  Metrics.incr t.m_total;
                  if sess.s_crash_pending then begin
                    sess.s_crash_pending <- false;
                    act_crash t a
                  end;
                  emit t "session.created"
                    [
                      ("session", Jsonx.Int sess.s_id);
                      ("tenant", Jsonx.Str sess.s_tenant);
                      ("container", Jsonx.Str sess.s_container);
                    ];
                  let ctx = Attach.context a in
                  reply t p
                    (Ok
                       (Jsonx.Obj
                          [
                            ("session", Jsonx.Int sess.s_id);
                            ("container", Jsonx.Str sess.s_container);
                            ("tenant", Jsonx.Str sess.s_tenant);
                            ("pid", Jsonx.Int ctx.Context.cx_pid);
                            ("cgroup", Jsonx.Str ctx.Context.cx_cgroup);
                            ( "queue_wait_us",
                              Jsonx.Int (Int64.to_int (Int64.div !wait_ns 1000L)) );
                          ]));
                  serve t sess)
      end

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let parse_attach_config t params =
  let base = t.d_config.c_attach in
  let base =
    match Jsonx.field_int params "threads" with
    | Some n when n > 0 -> { base with Attach.Config.threads = n }
    | _ -> base
  in
  let base =
    match Jsonx.field_str params "tools" with
    | Some "host" -> { base with Attach.Config.tools = Attach.From_host }
    | Some fat -> { base with Attach.Config.tools = Attach.From_container fat }
    | None -> base
  in
  match Jsonx.field_str params "fault_plan" with
  | None -> Ok base
  | Some text -> (
      match Fault.parse text with
      | Ok (plan, retry) -> Ok { base with Attach.Config.fault = Some plan; retry }
      | Error msg -> Error msg)

let find_sess t params =
  match Jsonx.field_int params "session" with
  | None -> Error (Rpc.error Rpc.invalid_params "missing integer param: session")
  | Some id -> (
      match Hashtbl.find_opt t.d_sessions id with
      | Some sess -> Ok sess
      | None -> Error (Rpc.error Rpc.no_session (Printf.sprintf "no session %d" id)))

let post_op t sess op =
  Queue.add op sess.s_ops;
  ignore (Sched.signal t.d_sched sess.s_cond)

let sess_row sess =
  Jsonx.Obj
    [
      ("session", Jsonx.Int sess.s_id);
      ("tenant", Jsonx.Str sess.s_tenant);
      ("container", Jsonx.Str sess.s_container);
      ("state", Jsonx.Str (state_str sess.s_state));
      ("execs", Jsonx.Int sess.s_execs);
    ]

let info_json =
  Jsonx.Obj
    [
      ("server", Jsonx.Str "cntrd");
      ("protocol", Jsonx.Str "2.0");
      ("version", Jsonx.Str protocol_version);
      ("methods", Jsonx.List (List.map (fun m -> Jsonx.Str m) methods));
    ]

let dispatch t ?sink ?sink_ready p (req : Rpc.request) =
  let params = req.Rpc.r_params in
  match req.Rpc.r_method with
  | "daemon.info" -> reply t p (Ok info_json)
  | "session.create" -> (
      match Jsonx.field_str params "container" with
      | None -> reply t p (Error (Rpc.error Rpc.invalid_params "missing string param: container"))
      | Some container -> (
          match parse_attach_config t params with
          | Error msg ->
              reply t p (Error (Rpc.error Rpc.invalid_params ("bad fault_plan: " ^ msg)))
          | Ok acfg ->
              let tenant =
                Option.value (Jsonx.field_str params "tenant") ~default:"default"
              in
              let sess =
                {
                  s_id = t.d_next_id;
                  s_tenant = tenant;
                  s_container = container;
                  s_config = acfg;
                  s_state = Queued;
                  s_attach = None;
                  s_execs = 0;
                  s_admitted = false;
                  s_crash_pending = false;
                  s_ops = Queue.create ();
                  s_cond = Sched.cond ();
                }
              in
              t.d_next_id <- t.d_next_id + 1;
              Hashtbl.replace t.d_sessions sess.s_id sess;
              ignore (Sched.spawn t.d_sched (fun () -> create_fiber t sess p))))
  | "session.exec" -> (
      match (find_sess t params, Jsonx.field_str params "cmd") with
      | Error e, _ -> reply t p (Error e)
      | Ok _, None -> reply t p (Error (Rpc.error Rpc.invalid_params "missing string param: cmd"))
      | Ok sess, Some cmd -> post_op t sess (Op_exec (p, cmd)))
  | "session.stat" -> (
      match find_sess t params with
      | Error e -> reply t p (Error e)
      | Ok sess ->
          let report =
            match sess.s_attach with Some a -> Attach.report a | None -> ""
          in
          let fields =
            match sess_row sess with Jsonx.Obj f -> f | _ -> assert false
          in
          reply t p (Ok (Jsonx.Obj (fields @ [ ("report", Jsonx.Str report) ]))))
  | "session.detach" -> (
      (* idempotent at the RPC layer: unknown ids are already-detached *)
      match Jsonx.field_int params "session" with
      | None -> reply t p (Error (Rpc.error Rpc.invalid_params "missing integer param: session"))
      | Some id -> (
          match Hashtbl.find_opt t.d_sessions id with
          | None ->
              reply t p
                (Ok (Jsonx.Obj [ ("detached", Jsonx.Bool true); ("already", Jsonx.Bool true) ]))
          | Some sess -> post_op t sess (Op_detach p)))
  | "session.list" ->
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.d_sessions [] in
      let rows =
        List.sort compare ids
        |> List.map (fun id -> sess_row (Hashtbl.find t.d_sessions id))
      in
      reply t p (Ok (Jsonx.Obj [ ("sessions", Jsonx.List rows) ]))
  | "stats.subscribe" -> (
      match sink with
      | None ->
          reply t p
            (Error (Rpc.error Rpc.internal_error "transport provides no notification sink"))
      | Some sink ->
          let ready = Option.value sink_ready ~default:(fun () -> true) in
          t.d_subs <-
            t.d_subs @ [ { sb_sink = sink; sb_buf = Queue.create (); sb_ready = ready } ];
          reply t p
            (Ok
               (Jsonx.Obj
                  [
                    ("subscribed", Jsonx.Bool true);
                    ("buffer", Jsonx.Int t.d_config.c_sub_buffer);
                  ])))
  | "$/cancel" -> (
      match Option.bind (Jsonx.mem params "id") Rpc.id_of_json with
      | None -> reply t p (Error (Rpc.error Rpc.invalid_params "missing param: id"))
      | Some id ->
          let found = cancel t id in
          reply t p (Ok (Jsonx.Obj [ ("cancelled", Jsonx.Bool found) ])))
  | m -> reply t p (Error (Rpc.error Rpc.method_not_found ("unknown method: " ^ m)))

let submit t ?sink ?sink_ready (req : Rpc.request) =
  Metrics.incr t.m_calls;
  match req.Rpc.r_id with
  | None ->
      (* notifications: only $/cancel is meaningful *)
      (if req.Rpc.r_method = "$/cancel" then
         match Option.bind (Jsonx.mem req.Rpc.r_params "id") Rpc.id_of_json with
         | Some id -> ignore (cancel t id)
         | None -> ());
      None
  | Some id ->
      let p = { p_rid = id; p_cancelled = false; p_resp = None } in
      t.d_inflight <- t.d_inflight @ [ p ];
      dispatch t ?sink ?sink_ready p req;
      Some p

(* ------------------------------------------------------------------ *)
(* The pump                                                           *)
(* ------------------------------------------------------------------ *)

let k t = kernel t

(* Backlog bound above which a wire subscriber counts as not-ready. *)
let sub_watermark = 65536

(* One service pass over a wire endpoint: move plane bytes, accept new
   clients, deframe + dispatch requests, flush finished replies. *)
let wire_step t w =
  let progress = ref false in
  Proxy.drain w.w_plane;
  let rec accept_loop () =
    match Kernel.socket_accept (k t) w.w_proc w.w_lfd with
    | Ok fd ->
        progress := true;
        w.w_conns <-
          w.w_conns
          @ [
              {
                wc_fd = fd;
                wc_reader = Rpc.reader ();
                wc_out = "";
                wc_tickets = [];
                wc_sink_installed = false;
              };
            ];
        accept_loop ()
    | Error _ -> ()
  in
  accept_loop ();
  List.iter
    (fun wc ->
      (* read everything available *)
      let rec read_loop () =
        match Kernel.read (k t) w.w_proc wc.wc_fd ~len:65536 with
        | Ok s when String.length s > 0 ->
            Rpc.feed wc.wc_reader s;
            progress := true;
            read_loop ()
        | _ -> ()
      in
      read_loop ();
      (* deframe + dispatch *)
      let rec frame_loop () =
        match Rpc.next wc.wc_reader with
        | `Frame payload ->
            progress := true;
            (match Rpc.decode payload with
            | Ok (Rpc.Request req) ->
                let sink j = wc.wc_out <- wc.wc_out ^ Rpc.frame (Jsonx.to_string j) in
                (* a wire subscriber is ready while its output backlog is
                   below the watermark: a client that stops reading stops
                   receiving, and its ring starts dropping instead *)
                let sink_ready () = String.length wc.wc_out < sub_watermark in
                (match submit t ~sink ~sink_ready req with
                | Some tk -> wc.wc_tickets <- wc.wc_tickets @ [ tk ]
                | None -> ())
            | Ok (Rpc.Response _) -> () (* clients don't call us back *)
            | Error e ->
                wc.wc_out <-
                  wc.wc_out
                  ^ Rpc.frame (Rpc.encode_response { Rpc.p_id = None; p_result = Error e }));
            frame_loop ()
        | `Garbage _ ->
            progress := true;
            wc.wc_out <-
              wc.wc_out
              ^ Rpc.frame
                  (Rpc.encode_response
                     {
                       Rpc.p_id = None;
                       p_result = Error (Rpc.error Rpc.parse_error "malformed framing header");
                     });
            frame_loop ()
        | `More -> ()
      in
      frame_loop ();
      (* flush finished replies, preserving completion order *)
      let ready, waiting = List.partition (fun tk -> tk.p_resp <> None) wc.wc_tickets in
      wc.wc_tickets <- waiting;
      List.iter
        (fun tk ->
          match tk.p_resp with
          | Some r ->
              progress := true;
              wc.wc_out <- wc.wc_out ^ Rpc.frame (Rpc.encode_response r)
          | None -> ())
        ready;
      (* deliver buffered events to whichever subscribers can take them
         (this connection's sink appends to wc_out while under the
         watermark) before pushing bytes out *)
      flush_subs t;
      if String.length wc.wc_out > 0 then
        match Kernel.write (k t) w.w_proc wc.wc_fd wc.wc_out with
        | Ok n when n > 0 ->
            progress := true;
            wc.wc_out <- String.sub wc.wc_out n (String.length wc.wc_out - n)
        | _ -> ())
    w.w_conns;
  Proxy.drain w.w_plane;
  !progress

let pump t =
  let rec loop () =
    Sched.drive_main t.d_sched (fun () ->
        (not (Queue.is_empty t.d_actions)) || Sched.pending_events t.d_sched = 0);
    match Queue.take_opt t.d_actions with
    | Some a ->
        perform t a;
        loop ()
    | None ->
        (* in-process subscribers (always ready) drain here even when no
           wire exists *)
        flush_subs t;
        let progressed =
          List.fold_left (fun acc w -> wire_step t w || acc) false t.d_wires
        in
        if progressed then loop ()
  in
  loop ()

let peek _t tk = tk.p_resp

exception Stalled of string

let response t tk =
  let rec go () =
    match tk.p_resp with
    | Some r -> r
    | None ->
        pump t;
        (match tk.p_resp with
        | Some r -> r
        | None ->
            if Queue.is_empty t.d_actions && Sched.pending_events t.d_sched = 0 then
              raise
                (Stalled
                   "request parked with no runnable work (admission queue with no detach coming?)")
            else go ())
  in
  go ()

let handle_text t ?sink text =
  match Rpc.decode text with
  | Error e -> Some (Rpc.encode_response { Rpc.p_id = None; p_result = Error e })
  | Ok (Rpc.Response _) -> None
  | Ok (Rpc.Request req) -> (
      match submit t ?sink req with
      | None ->
          pump t;
          None
      | Some tk -> Some (Rpc.encode_response (response t tk)))

(* ------------------------------------------------------------------ *)
(* Wire serving                                                       *)
(* ------------------------------------------------------------------ *)

let wire_serve t ?mode ~path () =
  let kernel = k t in
  let init = Kernel.init_proc kernel in
  let dproc = Kernel.fork kernel init in
  dproc.Proc.comm <- "cntrd";
  let cproc = Kernel.fork kernel init in
  cproc.Proc.comm <- "cntr-cli";
  let pproc = Kernel.fork kernel init in
  pproc.Proc.comm <- "cntrd-rpc";
  let plane = Proxy.create ?mode ~kernel ~proc:pproc () in
  (* best-effort parent dir (e.g. /run) so callers don't need setup *)
  (match String.rindex_opt path '/' with
  | Some i when i > 0 ->
      ignore (Kernel.mkdir kernel init (String.sub path 0 i) ~mode:0o755)
  | _ -> ());
  let backend_path = path ^ ".d" in
  match Kernel.socket_listen kernel dproc backend_path with
  | Error e -> Error e
  | Ok lfd -> (
      match
        Proxy.forward plane ~front_proc:init ~back_proc:dproc ~backend_path ~label:"rpc" path
      with
      | Error e -> Error e
      | Ok _fwd ->
          let w =
            {
              w_path = path;
              w_proc = dproc;
              w_client_proc = cproc;
              w_plane = plane;
              w_lfd = lfd;
              w_conns = [];
            }
          in
          t.d_wires <- t.d_wires @ [ w ];
          Ok w)

let wire_path w = w.w_path
let wire_client_proc w = w.w_client_proc
