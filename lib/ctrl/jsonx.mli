(** Minimal JSON value type with a deterministic printer and a strict
    recursive-descent parser.  The control plane speaks JSON-RPC 2.0 over
    this representation; byte-determinism of the printer is what makes the
    fleet bench baselines diffable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool

(** Compact rendering: no insignificant whitespace, object fields in the
    order given.  Integral floats print with a trailing [.0] so they
    round-trip as [Float]; non-finite floats render as [null]. *)
val to_string : t -> string

(** Strict parse of one JSON document (trailing garbage is an error).
    [Error msg] carries a byte offset for diagnostics. *)
val parse : string -> (t, string) result

(** {1 Accessors} — shallow, total helpers for picking apart params. *)

(** Field lookup on [Obj]; [None] on missing field or non-object. *)
val mem : t -> string -> t option

val str : t -> string option
val int_ : t -> int option
val bool_ : t -> bool option
val list_ : t -> t list option

(** [field_str v k] = [mem v k |> str], and friends. *)
val field_str : t -> string -> string option

val field_int : t -> string -> int option
val field_bool : t -> string -> bool option
