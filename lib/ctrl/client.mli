(** The one client interface to cntrd, shared by every [cntr] subcommand
    and the fleet bench.  Two transports behind the same calls:

    - {!in_process}: requests go straight to {!Daemon.submit} as decoded
      values — what the CLI uses when it hosts the daemon itself.
    - {!connect}: requests are encoded, Content-Length framed and carried
      over the forwarding plane to a {!Daemon.wire_serve} endpoint —
      byte-for-byte what a remote client would send.

    Both transports share one daemon pump, so either way the run is
    deterministic on the virtual clock.

    {2 Pipelining and batching}

    [submit]/[start_*] fire without awaiting: any number of requests may
    be in flight on one connection, and replies — matched by id — may be
    claimed in any order ([poll]/[await]/[finish]).  {!batch} coalesces
    a run of submits into one JSON-RPC 2.0 array envelope, one frame on
    the wire; the daemon answers with one order-preserving reply array.
    A daemon refusing further pipelining on a connection answers
    {!Rpc.overloaded} (-32005) — back off, drain, resubmit. *)

(** Re-exported so callers spell attach defaults through the client API
    ([Client.Config.default]) instead of reaching into [Attach]. *)
module Config = Repro_cntr.Attach.Config

val default_attach : Config.t

type t

val in_process : Daemon.t -> t

(** Connect over a served wire endpoint — the wire already knows its
    daemon, so this is the whole handle.  Each [connect] is its own
    connection with its own flow-control state on the daemon side. *)
val connect : Daemon.wire -> t

val daemon : t -> Daemon.t

(** {1 Raw request plumbing} *)

type ticket

(** Fire one request (auto-assigned integer id); drive it later. *)
val submit : t -> ?params:Jsonx.t -> string -> ticket

(** [batch t f] collects every [submit]/[notify]/[start_*] issued inside
    [f] into one array envelope and sends it as a single frame when [f]
    returns.  Await the tickets {e after} the batch closes —
    [await]/[poll] inside [f] raise [Invalid_argument] (the request has
    not been sent yet).  Batches do not nest. *)
val batch : t -> (unit -> 'a) -> 'a

(** Send [$/cancel] for an in-flight ticket (a notification — no reply). *)
val cancel : t -> ticket -> unit

(** Non-blocking: service the daemon once, return the reply if done.
    Replies arrive in completion order, not submission order. *)
val poll : t -> ticket -> Rpc.response option

(** Pump until the reply arrives.  Raises {!Daemon.Stalled} when the
    request is parked and nothing left to run can unpark it. *)
val await : t -> ticket -> (Jsonx.t, Rpc.rerror) result

(** [submit] + [await]. *)
val call : t -> ?params:Jsonx.t -> string -> (Jsonx.t, Rpc.rerror) result

(** Drain [stats.event] notifications received so far (oldest first). *)
val notifications : t -> Jsonx.t list

(** {1 Typed verbs}

    Every verb is split as [start_*] (submit, returns a typed handle) and
    {!finish} (await + decode), so all of them pipeline and batch; the
    [session_*] forms are [start]+[finish] for the sequential case. *)

(** A typed in-flight request: the ticket plus its reply decoder. *)
type 'a call

(** The raw ticket under a typed handle (for {!cancel} / {!poll}). *)
val call_id : 'a call -> ticket

(** Await a typed handle.  Decode errors on a malformed daemon reply
    raise [Invalid_argument]; RPC errors return [Error]. *)
val finish : t -> 'a call -> ('a, Rpc.rerror) result

type created = { sc_session : int; sc_pid : int; sc_cgroup : string; sc_queue_wait_us : int }

val start_create :
  t -> ?tenant:string -> ?tools:string -> ?threads:int -> ?fault_plan:string -> string ->
  created call

val session_create :
  t ->
  ?tenant:string ->
  ?tools:string ->
  ?threads:int ->
  ?fault_plan:string ->
  string ->
  (created, Rpc.rerror) result

type execed = { sx_code : int; sx_output : string; sx_recovered : bool }

val start_exec : t -> session:int -> string -> execed call
val session_exec : t -> session:int -> string -> (execed, Rpc.rerror) result

(** Raw stat object (includes the human-readable ["report"] field). *)
val start_stat : t -> session:int -> Jsonx.t call

val session_stat : t -> session:int -> (Jsonx.t, Rpc.rerror) result

(** [Ok already] — [already = true] when the session was gone (detach is
    idempotent at the RPC layer). *)
val start_detach : t -> session:int -> bool call

val session_detach : t -> session:int -> (bool, Rpc.rerror) result

type row = { sr_session : int; sr_tenant : string; sr_container : string; sr_state : string; sr_execs : int }

val start_list : t -> row list call
val session_list : t -> (row list, Rpc.rerror) result

(** Subscribe this client's transport to [stats.event] notifications. *)
val start_subscribe : t -> unit call

val subscribe : t -> (unit, Rpc.rerror) result
