(** The one client interface to cntrd, shared by every [cntr] subcommand
    and the fleet bench.  Two transports behind the same calls:

    - {!in_process}: requests go straight to {!Daemon.submit} as decoded
      values — what the CLI uses when it hosts the daemon itself.
    - {!wire}: requests are encoded, Content-Length framed and carried
      over the forwarding plane to a {!Daemon.wire_serve} endpoint —
      byte-for-byte what a remote client would send.

    Both transports share one daemon pump, so either way the run is
    deterministic on the virtual clock. *)

(** Re-exported so callers spell attach defaults through the client API
    ([Client.Config.default]) instead of reaching into [Attach]. *)
module Config = Repro_cntr.Attach.Config

val default_attach : Config.t

type t

val in_process : Daemon.t -> t

(** Connect over a served wire endpoint. *)
val wire : Daemon.t -> Daemon.wire -> t

val daemon : t -> Daemon.t

(** {1 Raw request plumbing} *)

type ticket

(** Fire one request (auto-assigned integer id); drive it later. *)
val submit : t -> ?params:Jsonx.t -> string -> ticket

(** Send [$/cancel] for an in-flight ticket (a notification — no reply). *)
val cancel : t -> ticket -> unit

(** Non-blocking: service the daemon once, return the reply if done. *)
val poll : t -> ticket -> Rpc.response option

(** Pump until the reply arrives.  Raises {!Daemon.Stalled} when the
    request is parked and nothing left to run can unpark it. *)
val await : t -> ticket -> (Jsonx.t, Rpc.rerror) result

(** [submit] + [await]. *)
val call : t -> ?params:Jsonx.t -> string -> (Jsonx.t, Rpc.rerror) result

(** Drain [stats.event] notifications received so far (oldest first). *)
val notifications : t -> Jsonx.t list

(** {1 Typed wrappers} *)

type created = { sc_session : int; sc_pid : int; sc_cgroup : string; sc_queue_wait_us : int }

val session_create :
  t ->
  ?tenant:string ->
  ?tools:string ->
  ?threads:int ->
  ?fault_plan:string ->
  string ->
  (created, Rpc.rerror) result

type execed = { sx_code : int; sx_output : string; sx_recovered : bool }

val session_exec : t -> session:int -> string -> (execed, Rpc.rerror) result

(** Raw stat object (includes the human-readable ["report"] field). *)
val session_stat : t -> session:int -> (Jsonx.t, Rpc.rerror) result

(** [Ok already] — [already = true] when the session was gone (detach is
    idempotent at the RPC layer). *)
val session_detach : t -> session:int -> (bool, Rpc.rerror) result

type row = { sr_session : int; sr_tenant : string; sr_container : string; sr_state : string; sr_execs : int }

val session_list : t -> (row list, Rpc.rerror) result

(** Subscribe this client's transport to [stats.event] notifications. *)
val subscribe : t -> (unit, Rpc.rerror) result
