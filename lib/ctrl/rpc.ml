(* JSON-RPC 2.0 codec + Content-Length framing.  The codec is strict on the
   envelope ("jsonrpc":"2.0", method a string, id an int/string) and lax on
   params, which each method validates itself. *)

type id = I of int | S of string

let id_json = function I n -> Jsonx.Int n | S s -> Jsonx.Str s

let id_of_json = function
  | Jsonx.Int n -> Some (I n)
  | Jsonx.Str s -> Some (S s)
  | _ -> None

type request = { r_id : id option; r_method : string; r_params : Jsonx.t }
type rerror = { e_code : int; e_message : string; e_data : Jsonx.t option }
type response = { p_id : id option; p_result : (Jsonx.t, rerror) result }
type message = Request of request | Response of response

let parse_error = -32700
let invalid_request = -32600
let method_not_found = -32601
let invalid_params = -32602
let internal_error = -32603
let cancelled = -32800
let attach_failed = -32000
let admission_rejected = -32001
let no_session = -32002
let exec_failed = -32003
let fault_injected = -32004
let overloaded = -32005

let error ?data code msg = { e_code = code; e_message = msg; e_data = data }

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let request_json r =
  let base = [ ("jsonrpc", Jsonx.Str "2.0") ] in
  let base = match r.r_id with Some id -> base @ [ ("id", id_json id) ] | None -> base in
  let base = base @ [ ("method", Jsonx.Str r.r_method) ] in
  let base =
    match r.r_params with Jsonx.Null -> base | p -> base @ [ ("params", p) ]
  in
  Jsonx.Obj base

let error_json e =
  let fields = [ ("code", Jsonx.Int e.e_code); ("message", Jsonx.Str e.e_message) ] in
  let fields = match e.e_data with Some d -> fields @ [ ("data", d) ] | None -> fields in
  Jsonx.Obj fields

let response_json p =
  let id = match p.p_id with Some id -> id_json id | None -> Jsonx.Null in
  let payload =
    match p.p_result with
    | Ok v -> ("result", v)
    | Error e -> ("error", error_json e)
  in
  Jsonx.Obj [ ("jsonrpc", Jsonx.Str "2.0"); ("id", id); payload ]

let encode_request r = Jsonx.to_string (request_json r)
let encode_response p = Jsonx.to_string (response_json p)

let notification meth params =
  encode_request { r_id = None; r_method = meth; r_params = params }

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

let error_of_json v =
  match (Jsonx.field_int v "code", Jsonx.field_str v "message") with
  | Some code, Some msg -> Some { e_code = code; e_message = msg; e_data = Jsonx.mem v "data" }
  | _ -> None

let of_json v =
  match v with
  | Jsonx.Obj _ -> (
      if Jsonx.field_str v "jsonrpc" <> Some "2.0" then
        Error (error invalid_request "missing jsonrpc version")
      else
        let id =
          match Jsonx.mem v "id" with
          | None | Some Jsonx.Null -> Ok None
          | Some j -> (
              match id_of_json j with
              | Some id -> Ok (Some id)
              | None -> Error (error invalid_request "id must be a number or string"))
        in
        match id with
        | Error e -> Error e
        | Ok id -> (
            match Jsonx.mem v "method" with
            | Some (Jsonx.Str m) ->
                let params =
                  match Jsonx.mem v "params" with Some p -> p | None -> Jsonx.Null
                in
                Ok (Request { r_id = id; r_method = m; r_params = params })
            | Some _ -> Error (error invalid_request "method must be a string")
            | None -> (
                (* no method: a response — exactly one of result/error *)
                match (Jsonx.mem v "result", Jsonx.mem v "error") with
                | Some r, None -> Ok (Response { p_id = id; p_result = Ok r })
                | None, Some e -> (
                    match error_of_json e with
                    | Some e -> Ok (Response { p_id = id; p_result = Error e })
                    | None -> Error (error invalid_request "malformed error object"))
                | _ -> Error (error invalid_request "expected method, result or error"))))
  | _ -> Error (error invalid_request "message must be an object")

let decode text =
  match Jsonx.parse text with
  | Error msg -> Error (error parse_error ("parse error: " ^ msg))
  | Ok v -> of_json v

(* ------------------------------------------------------------------ *)
(* Batch envelopes (JSON-RPC 2.0 §6)                                  *)
(* ------------------------------------------------------------------ *)

type incoming =
  | Single of (message, rerror) result
  | Batch of (message, rerror) result list

let decode_incoming text =
  match Jsonx.parse text with
  | Error msg -> Error (error parse_error ("parse error: " ^ msg))
  | Ok (Jsonx.List []) -> Error (error invalid_request "empty batch")
  | Ok (Jsonx.List elems) -> Ok (Batch (List.map of_json elems))
  | Ok v -> Ok (Single (of_json v))

let encode_requests rs = Jsonx.to_string (Jsonx.List (List.map request_json rs))
let encode_responses ps = Jsonx.to_string (Jsonx.List (List.map response_json ps))

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

let frame payload =
  Printf.sprintf "Content-Length: %d\r\n\r\n%s" (String.length payload) payload

type reader = { mutable buf : Buffer.t }

let reader () = { buf = Buffer.create 256 }
let feed r chunk = Buffer.add_string r.buf chunk

let find_sub hay needle from =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = if i + nl > hl then None else if String.sub hay i nl = needle then Some i else go (i + 1) in
  go from

let next r =
  let data = Buffer.contents r.buf in
  match find_sub data "\r\n\r\n" 0 with
  | None ->
      (* a buffer that can no longer start a valid header is garbage *)
      if String.length data > 0 && not (String.length data <= 256) then (
        r.buf <- Buffer.create 256;
        `Garbage data)
      else `More
  | Some hdr_end -> (
      let header = String.sub data 0 hdr_end in
      let body_start = hdr_end + 4 in
      let len =
        (* accept multiple header lines; only Content-Length matters *)
        String.split_on_char '\n' header
        |> List.fold_left
             (fun acc line ->
               let line = String.trim line in
               let prefix = "content-length:" in
               let low = String.lowercase_ascii line in
               if String.length low >= String.length prefix
                  && String.sub low 0 (String.length prefix) = prefix
               then
                 int_of_string_opt
                   (String.trim (String.sub line (String.length prefix) (String.length line - String.length prefix)))
               else acc)
             None
      in
      match len with
      | None | Some 0 ->
          r.buf <- Buffer.create 256;
          Buffer.add_substring r.buf data body_start (String.length data - body_start);
          `Garbage header
      | Some len ->
          if String.length data - body_start < len then `More
          else begin
            let payload = String.sub data body_start len in
            let rest_start = body_start + len in
            r.buf <- Buffer.create 256;
            Buffer.add_substring r.buf data rest_start (String.length data - rest_start);
            `Frame payload
          end)
