(* JSON values, a deterministic compact printer, and a strict parser.
   Self-contained on purpose: the simulator depends on no external JSON
   library, and the printer's byte-stability is part of the bench
   contract. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') xs ys
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Printer                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.17g" f in
    (* shortest representation that still round-trips *)
    let s =
      let short = Printf.sprintf "%.12g" f in
      if float_of_string short = f then short else s
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s else s ^ ".0"

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool true -> Buffer.add_string buf "true"
    | Bool false -> Buffer.add_string buf "false"
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> fail "bad \\u escape"
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then (
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f))))
    else if cp < 0x10000 then (
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f))))
    else (
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f))))
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "truncated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                (* combine a surrogate pair when one follows *)
                if cp >= 0xd800 && cp <= 0xdbff && !pos + 6 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then (
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xdc00 && lo <= 0xdfff then
                    0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                  else fail "unpaired surrogate")
                else cp
              in
              add_utf8 buf cp;
              go ()
          | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    let is_float = ref false in
    if peek () = Some '.' then (
      is_float := true;
      advance ();
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done);
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
          advance ()
        done
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "bad number";
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          fields []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          List [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "%s at byte %d" msg at)

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let mem v k = match v with Obj fields -> List.assoc_opt k fields | _ -> None
let str = function Str s -> Some s | _ -> None
let int_ = function Int n -> Some n | _ -> None
let bool_ = function Bool b -> Some b | _ -> None
let list_ = function List xs -> Some xs | _ -> None
let field_str v k = Option.bind (mem v k) str
let field_int v k = Option.bind (mem v k) int_
let field_bool v k = Option.bind (mem v k) bool_
