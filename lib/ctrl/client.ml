(* Ctrl.Client: the request path shared by the CLI subcommands and the
   fleet bench.  The in-process transport hands decoded requests straight
   to the daemon; the wire transport frames them over a kernel socket and
   the forwarding plane, exercising the same bytes a remote client would
   produce.  Both co-simulate: the client pumps the daemon it talks to. *)

open Repro_os
module Config = Repro_cntr.Attach.Config

let default_attach = Config.default

type wire_state = {
  ws_wire : Daemon.wire;
  mutable ws_fd : int;
  ws_reader : Rpc.reader;
  ws_resps : (Rpc.id, Rpc.response) Hashtbl.t;
}

type transport = In_process | Wire of wire_state

type t = {
  c_daemon : Daemon.t;
  c_transport : transport;
  mutable c_next_id : int;
  mutable c_notifs : Jsonx.t list;
  c_tickets : (Rpc.id, Daemon.ticket) Hashtbl.t; (* in-process only *)
}

type ticket = Rpc.id

let daemon t = t.c_daemon

let in_process d =
  {
    c_daemon = d;
    c_transport = In_process;
    c_next_id = 1;
    c_notifs = [];
    c_tickets = Hashtbl.create 16;
  }

let wire d w =
  let ws = { ws_wire = w; ws_fd = -1; ws_reader = Rpc.reader (); ws_resps = Hashtbl.create 16 } in
  {
    c_daemon = d;
    c_transport = Wire ws;
    c_next_id = 1;
    c_notifs = [];
    c_tickets = Hashtbl.create 16;
  }

(* --- wire plumbing ------------------------------------------------- *)

let kernel t = Daemon.kernel t.c_daemon
let cli_proc ws = Daemon.wire_client_proc ws.ws_wire

let wire_connect t ws =
  if ws.ws_fd < 0 then begin
    ws.ws_fd <-
      Repro_util.Errno.ok_exn
        (Kernel.socket_connect (kernel t) (cli_proc ws) (Daemon.wire_path ws.ws_wire));
    (* let the plane accept and dial the daemon before the first write *)
    Daemon.pump t.c_daemon
  end

(* Stash every complete frame the daemon sent us: responses by id,
   notifications in arrival order. *)
let wire_slurp t ws =
  let rec read_loop () =
    match Kernel.read (kernel t) (cli_proc ws) ws.ws_fd ~len:65536 with
    | Ok s when String.length s > 0 ->
        Rpc.feed ws.ws_reader s;
        read_loop ()
    | _ -> ()
  in
  read_loop ();
  let rec frame_loop () =
    match Rpc.next ws.ws_reader with
    | `Frame payload ->
        (match Rpc.decode payload with
        | Ok (Rpc.Response r) -> (
            match r.Rpc.p_id with
            | Some id -> Hashtbl.replace ws.ws_resps id r
            | None ->
                (* id-less protocol error (e.g. we sent garbage): surface
                   as a notification so callers can observe it *)
                t.c_notifs <- t.c_notifs @ [ Rpc.response_json r ])
        | Ok (Rpc.Request req) ->
            if req.Rpc.r_id = None then t.c_notifs <- t.c_notifs @ [ Rpc.request_json req ]
        | Error _ -> ());
        frame_loop ()
    | `Garbage _ -> frame_loop ()
    | `More -> ()
  in
  frame_loop ()

let wire_send t ws text =
  wire_connect t ws;
  let framed = Rpc.frame text in
  let rec push s attempts =
    if String.length s > 0 then
      match Kernel.write (kernel t) (cli_proc ws) ws.ws_fd s with
      | Ok n when n > 0 ->
          Daemon.pump t.c_daemon;
          push (String.sub s n (String.length s - n)) 0
      | _ ->
          if attempts > 64 then failwith "cntrd wire: send stalled";
          Daemon.pump t.c_daemon;
          wire_slurp t ws;
          push s (attempts + 1)
  in
  push framed 0

(* --- transport-independent request path ---------------------------- *)

let fresh_id t =
  let id = Rpc.I t.c_next_id in
  t.c_next_id <- t.c_next_id + 1;
  id

let submit t ?(params = Jsonx.Null) meth =
  let id = fresh_id t in
  let req = { Rpc.r_id = Some id; r_method = meth; r_params = params } in
  (match t.c_transport with
  | In_process -> (
      let sink j = t.c_notifs <- t.c_notifs @ [ j ] in
      match Daemon.submit t.c_daemon ~sink req with
      | Some tk -> Hashtbl.replace t.c_tickets id tk
      | None -> ())
  | Wire ws -> wire_send t ws (Rpc.encode_request req));
  id

let notify t meth params =
  let req = { Rpc.r_id = None; r_method = meth; r_params = params } in
  match t.c_transport with
  | In_process -> ignore (Daemon.submit t.c_daemon req)
  | Wire ws -> wire_send t ws (Rpc.encode_request req)

let cancel t id = notify t "$/cancel" (Jsonx.Obj [ ("id", Rpc.id_json id) ])

let poll t id =
  Daemon.pump t.c_daemon;
  match t.c_transport with
  | In_process -> (
      match Hashtbl.find_opt t.c_tickets id with
      | None -> None
      | Some tk -> (
          match Daemon.peek t.c_daemon tk with
          | Some r ->
              Hashtbl.remove t.c_tickets id;
              Some r
          | None -> None))
  | Wire ws -> (
      wire_slurp t ws;
      match Hashtbl.find_opt ws.ws_resps id with
      | Some r ->
          Hashtbl.remove ws.ws_resps id;
          Some r
      | None -> None)

let await t id =
  match t.c_transport with
  | In_process -> (
      match Hashtbl.find_opt t.c_tickets id with
      | None -> Error (Rpc.error Rpc.internal_error "unknown or already-awaited ticket")
      | Some tk ->
          let r = Daemon.response t.c_daemon tk in
          Hashtbl.remove t.c_tickets id;
          r.Rpc.p_result)
  | Wire _ ->
      let rec go attempts =
        match poll t id with
        | Some r -> r.Rpc.p_result
        | None ->
            if attempts > 1024 then
              raise (Daemon.Stalled "wire reply never arrived (request parked?)")
            else go (attempts + 1)
      in
      go 0

let call t ?params meth = await t (submit t ?params meth)

let notifications t =
  (match t.c_transport with Wire ws -> wire_slurp t ws | In_process -> ());
  let ns = t.c_notifs in
  t.c_notifs <- [];
  ns

(* --- typed wrappers ------------------------------------------------ *)

type created = { sc_session : int; sc_pid : int; sc_cgroup : string; sc_queue_wait_us : int }

let need_int v k =
  match Jsonx.field_int v k with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "cntrd reply missing integer field %S" k)

let need_str v k =
  match Jsonx.field_str v k with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "cntrd reply missing string field %S" k)

let session_create t ?tenant ?tools ?threads ?fault_plan container =
  let fields =
    [ ("container", Jsonx.Str container) ]
    @ (match tenant with Some x -> [ ("tenant", Jsonx.Str x) ] | None -> [])
    @ (match tools with Some x -> [ ("tools", Jsonx.Str x) ] | None -> [])
    @ (match threads with Some x -> [ ("threads", Jsonx.Int x) ] | None -> [])
    @ match fault_plan with Some x -> [ ("fault_plan", Jsonx.Str x) ] | None -> []
  in
  match call t ~params:(Jsonx.Obj fields) "session.create" with
  | Error e -> Error e
  | Ok v ->
      Ok
        {
          sc_session = need_int v "session";
          sc_pid = need_int v "pid";
          sc_cgroup = need_str v "cgroup";
          sc_queue_wait_us = need_int v "queue_wait_us";
        }

type execed = { sx_code : int; sx_output : string; sx_recovered : bool }

let session_exec t ~session cmd =
  let params = Jsonx.Obj [ ("session", Jsonx.Int session); ("cmd", Jsonx.Str cmd) ] in
  match call t ~params "session.exec" with
  | Error e -> Error e
  | Ok v ->
      Ok
        {
          sx_code = need_int v "code";
          sx_output = need_str v "output";
          sx_recovered = Jsonx.field_bool v "recovered" = Some true;
        }

let session_stat t ~session =
  call t ~params:(Jsonx.Obj [ ("session", Jsonx.Int session) ]) "session.stat"

let session_detach t ~session =
  match call t ~params:(Jsonx.Obj [ ("session", Jsonx.Int session) ]) "session.detach" with
  | Error e -> Error e
  | Ok v -> Ok (Jsonx.field_bool v "already" = Some true)

type row = {
  sr_session : int;
  sr_tenant : string;
  sr_container : string;
  sr_state : string;
  sr_execs : int;
}

let session_list t =
  match call t "session.list" with
  | Error e -> Error e
  | Ok v ->
      let rows = Option.value (Option.bind (Jsonx.mem v "sessions") Jsonx.list_) ~default:[] in
      Ok
        (List.map
           (fun r ->
             {
               sr_session = need_int r "session";
               sr_tenant = need_str r "tenant";
               sr_container = need_str r "container";
               sr_state = need_str r "state";
               sr_execs = need_int r "execs";
             })
           rows)

let subscribe t =
  match call t "stats.subscribe" with Error e -> Error e | Ok _ -> Ok ()
