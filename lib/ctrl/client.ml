(* Ctrl.Client: the one request path shared by the CLI subcommands and
   the fleet bench.  The in-process transport hands decoded requests
   straight to the daemon; the wire transport frames them over a kernel
   socket and the forwarding plane, exercising the same bytes a remote
   client would produce.  Both co-simulate: the client pumps the daemon
   it talks to.

   The surface is pipelined end to end: [submit] fires without awaiting,
   replies are matched by id and may arrive out of submission order, and
   [batch] coalesces a run of submits into one JSON-RPC 2.0 array
   envelope (one frame on the wire).  Every typed verb is built on
   [start_*]/[finish], so any of them can be pipelined or batched. *)

open Repro_os
module Config = Repro_cntr.Attach.Config

let default_attach = Config.default

type wire_state = {
  ws_wire : Daemon.wire;
  mutable ws_fd : int;
  ws_reader : Rpc.reader;
  ws_resps : (Rpc.id, Rpc.response) Hashtbl.t;
}

type transport = In_process | Wire of wire_state

type t = {
  c_daemon : Daemon.t;
  c_transport : transport;
  mutable c_next_id : int;
  mutable c_notifs : Jsonx.t list;
  mutable c_batch : Rpc.request list option;  (* collecting when Some *)
  c_tickets : (Rpc.id, Daemon.ticket) Hashtbl.t; (* in-process only *)
}

type ticket = Rpc.id

let daemon t = t.c_daemon

let in_process d =
  {
    c_daemon = d;
    c_transport = In_process;
    c_next_id = 1;
    c_notifs = [];
    c_batch = None;
    c_tickets = Hashtbl.create 16;
  }

let connect w =
  let ws =
    { ws_wire = w; ws_fd = -1; ws_reader = Rpc.reader (); ws_resps = Hashtbl.create 16 }
  in
  {
    c_daemon = Daemon.wire_daemon w;
    c_transport = Wire ws;
    c_next_id = 1;
    c_notifs = [];
    c_batch = None;
    c_tickets = Hashtbl.create 16;
  }

(* --- wire plumbing ------------------------------------------------- *)

let kernel t = Daemon.kernel t.c_daemon
let cli_proc ws = Daemon.wire_client_proc ws.ws_wire

let wire_connect t ws =
  if ws.ws_fd < 0 then begin
    ws.ws_fd <-
      Repro_util.Errno.ok_exn
        (Kernel.socket_connect (kernel t) (cli_proc ws) (Daemon.wire_path ws.ws_wire));
    (* let the plane accept and dial the daemon before the first write *)
    Daemon.pump t.c_daemon
  end

(* Stash every complete frame the daemon sent us: responses by id (batch
   reply arrays element-wise), notifications in arrival order. *)
let wire_slurp t ws =
  let rec read_loop () =
    match Kernel.read (kernel t) (cli_proc ws) ws.ws_fd ~len:65536 with
    | Ok s when String.length s > 0 ->
        Rpc.feed ws.ws_reader s;
        read_loop ()
    | _ -> ()
  in
  read_loop ();
  let element = function
    | Ok (Rpc.Response r) -> (
        match r.Rpc.p_id with
        | Some id -> Hashtbl.replace ws.ws_resps id r
        | None ->
            (* id-less protocol error (e.g. we sent garbage): surface
               as a notification so callers can observe it *)
            t.c_notifs <- t.c_notifs @ [ Rpc.response_json r ])
    | Ok (Rpc.Request req) ->
        if req.Rpc.r_id = None then t.c_notifs <- t.c_notifs @ [ Rpc.request_json req ]
    | Error _ -> ()
  in
  let rec frame_loop () =
    match Rpc.next ws.ws_reader with
    | `Frame payload ->
        (match Rpc.decode_incoming payload with
        | Ok (Rpc.Single m) -> element m
        | Ok (Rpc.Batch ms) -> List.iter element ms
        | Error _ -> ());
        frame_loop ()
    | `Garbage _ -> frame_loop ()
    | `More -> ()
  in
  frame_loop ()

let wire_send t ws text =
  wire_connect t ws;
  let framed = Rpc.frame text in
  let rec push s attempts =
    if String.length s > 0 then
      match Kernel.write (kernel t) (cli_proc ws) ws.ws_fd s with
      | Ok n when n > 0 ->
          Daemon.pump t.c_daemon;
          push (String.sub s n (String.length s - n)) 0
      | _ ->
          if attempts > 64 then failwith "cntrd wire: send stalled";
          Daemon.pump t.c_daemon;
          wire_slurp t ws;
          push s (attempts + 1)
  in
  push framed 0

(* --- transport-independent request path ---------------------------- *)

let fresh_id t =
  let id = Rpc.I t.c_next_id in
  t.c_next_id <- t.c_next_id + 1;
  id

let send_request t (req : Rpc.request) =
  match t.c_batch with
  | Some acc -> t.c_batch <- Some (acc @ [ req ])
  | None -> (
      match t.c_transport with
      | In_process -> (
          let sink j = t.c_notifs <- t.c_notifs @ [ j ] in
          match Daemon.submit t.c_daemon ~sink req with
          | Some tk -> Hashtbl.replace t.c_tickets (Option.get req.Rpc.r_id) tk
          | None -> ())
      | Wire ws -> wire_send t ws (Rpc.encode_request req))

let submit t ?(params = Jsonx.Null) meth =
  let id = fresh_id t in
  send_request t { Rpc.r_id = Some id; r_method = meth; r_params = params };
  id

let notify t meth params = send_request t { Rpc.r_id = None; r_method = meth; r_params = params }

let flush_batch t =
  match t.c_batch with
  | None -> ()
  | Some reqs -> (
      t.c_batch <- None;
      match (reqs, t.c_transport) with
      | [], _ -> ()
      | reqs, Wire ws -> wire_send t ws (Rpc.encode_requests reqs)
      | reqs, In_process ->
          (* same envelope semantics, minus the framing: dispatch in
             order, replies claimable in any order *)
          List.iter
            (fun (req : Rpc.request) ->
              let sink j = t.c_notifs <- t.c_notifs @ [ j ] in
              match Daemon.submit t.c_daemon ~sink req with
              | Some tk -> Hashtbl.replace t.c_tickets (Option.get req.Rpc.r_id) tk
              | None -> ())
            reqs)

let batch t f =
  if t.c_batch <> None then invalid_arg "Client.batch: already batching";
  t.c_batch <- Some [];
  match f () with
  | v ->
      flush_batch t;
      v
  | exception e ->
      t.c_batch <- None;
      raise e

let cancel t id = notify t "$/cancel" (Jsonx.Obj [ ("id", Rpc.id_json id) ])

let poll t id =
  if t.c_batch <> None then invalid_arg "Client.poll: inside a batch (flush first)";
  Daemon.pump t.c_daemon;
  match t.c_transport with
  | In_process -> (
      match Hashtbl.find_opt t.c_tickets id with
      | None -> None
      | Some tk -> (
          match Daemon.peek t.c_daemon tk with
          | Some r ->
              Hashtbl.remove t.c_tickets id;
              Some r
          | None -> None))
  | Wire ws -> (
      wire_slurp t ws;
      match Hashtbl.find_opt ws.ws_resps id with
      | Some r ->
          Hashtbl.remove ws.ws_resps id;
          Some r
      | None -> None)

let await t id =
  if t.c_batch <> None then invalid_arg "Client.await: inside a batch (flush first)";
  match t.c_transport with
  | In_process -> (
      match Hashtbl.find_opt t.c_tickets id with
      | None -> Error (Rpc.error Rpc.internal_error "unknown or already-awaited ticket")
      | Some tk ->
          let r = Daemon.response t.c_daemon tk in
          Hashtbl.remove t.c_tickets id;
          r.Rpc.p_result)
  | Wire _ ->
      let rec go attempts =
        match poll t id with
        | Some r -> r.Rpc.p_result
        | None ->
            if attempts > 1024 then
              raise (Daemon.Stalled "wire reply never arrived (request parked?)")
            else go (attempts + 1)
      in
      go 0

let call t ?params meth = await t (submit t ?params meth)

let notifications t =
  (match t.c_transport with Wire ws -> wire_slurp t ws | In_process -> ());
  let ns = t.c_notifs in
  t.c_notifs <- [];
  ns

(* --- typed verbs: start_* submits, finish awaits -------------------- *)

type 'a call = { cl_id : ticket; cl_decode : Jsonx.t -> 'a }

let call_id c = c.cl_id

let start t ?params decode meth = { cl_id = submit t ?params meth; cl_decode = decode }

let finish t c =
  match await t c.cl_id with Error e -> Error e | Ok v -> Ok (c.cl_decode v)

type created = { sc_session : int; sc_pid : int; sc_cgroup : string; sc_queue_wait_us : int }

let need_int v k =
  match Jsonx.field_int v k with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "cntrd reply missing integer field %S" k)

let need_str v k =
  match Jsonx.field_str v k with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "cntrd reply missing string field %S" k)

let decode_created v =
  {
    sc_session = need_int v "session";
    sc_pid = need_int v "pid";
    sc_cgroup = need_str v "cgroup";
    sc_queue_wait_us = need_int v "queue_wait_us";
  }

let start_create t ?tenant ?tools ?threads ?fault_plan container =
  let fields =
    [ ("container", Jsonx.Str container) ]
    @ (match tenant with Some x -> [ ("tenant", Jsonx.Str x) ] | None -> [])
    @ (match tools with Some x -> [ ("tools", Jsonx.Str x) ] | None -> [])
    @ (match threads with Some x -> [ ("threads", Jsonx.Int x) ] | None -> [])
    @ match fault_plan with Some x -> [ ("fault_plan", Jsonx.Str x) ] | None -> []
  in
  start t ~params:(Jsonx.Obj fields) decode_created "session.create"

let session_create t ?tenant ?tools ?threads ?fault_plan container =
  finish t (start_create t ?tenant ?tools ?threads ?fault_plan container)

type execed = { sx_code : int; sx_output : string; sx_recovered : bool }

let decode_execed v =
  {
    sx_code = need_int v "code";
    sx_output = need_str v "output";
    sx_recovered = Jsonx.field_bool v "recovered" = Some true;
  }

let start_exec t ~session cmd =
  let params = Jsonx.Obj [ ("session", Jsonx.Int session); ("cmd", Jsonx.Str cmd) ] in
  start t ~params decode_execed "session.exec"

let session_exec t ~session cmd = finish t (start_exec t ~session cmd)

let start_stat t ~session =
  start t ~params:(Jsonx.Obj [ ("session", Jsonx.Int session) ]) (fun v -> v) "session.stat"

let session_stat t ~session = finish t (start_stat t ~session)

let start_detach t ~session =
  start t
    ~params:(Jsonx.Obj [ ("session", Jsonx.Int session) ])
    (fun v -> Jsonx.field_bool v "already" = Some true)
    "session.detach"

let session_detach t ~session = finish t (start_detach t ~session)

type row = {
  sr_session : int;
  sr_tenant : string;
  sr_container : string;
  sr_state : string;
  sr_execs : int;
}

let decode_rows v =
  let rows = Option.value (Option.bind (Jsonx.mem v "sessions") Jsonx.list_) ~default:[] in
  List.map
    (fun r ->
      {
        sr_session = need_int r "session";
        sr_tenant = need_str r "tenant";
        sr_container = need_str r "container";
        sr_state = need_str r "state";
        sr_execs = need_int r "execs";
      })
    rows

let start_list t = start t decode_rows "session.list"
let session_list t = finish t (start_list t)
let start_subscribe t = start t (fun _ -> ()) "stats.subscribe"
let subscribe t = finish t (start_subscribe t)
