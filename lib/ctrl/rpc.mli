(** JSON-RPC 2.0 messages for the cntrd control plane: typed
    requests/responses, the standard and cntrd-specific error codes, and
    [Content-Length]-delimited framing for the wire transport.

    Protocol identity: ["cntrd/1.0"] (reported by [daemon.info]).  The wire
    format is the LSP-style base protocol — a [Content-Length: N\r\n\r\n]
    header followed by exactly [N] bytes of one JSON-RPC message. *)

(** Request ids may be numbers or strings (JSON-RPC §4). *)
type id = I of int | S of string

val id_json : id -> Jsonx.t
val id_of_json : Jsonx.t -> id option

type request = {
  r_id : id option;  (** [None] for notifications. *)
  r_method : string;
  r_params : Jsonx.t;  (** [Null] when absent. *)
}

type rerror = { e_code : int; e_message : string; e_data : Jsonx.t option }

type response = {
  p_id : id option;  (** [None] only for protocol-level error replies. *)
  p_result : (Jsonx.t, rerror) result;
}

type message = Request of request | Response of response

(** {1 Error codes} *)

val parse_error : int  (** -32700 *)

val invalid_request : int  (** -32600 *)

val method_not_found : int  (** -32601 *)

val invalid_params : int  (** -32602 *)

val internal_error : int  (** -32603 *)

val cancelled : int  (** -32800, request cancelled via [$/cancel] *)

val attach_failed : int  (** -32000, cntrd: attach engine/fs failure *)

val admission_rejected : int  (** -32001, cntrd: queue or quota exhausted *)

val no_session : int  (** -32002, cntrd: unknown session id *)

val exec_failed : int  (** -32003, cntrd: exec on a dead, unrecovered session *)

val fault_injected : int  (** -32004, cntrd: ctrl-site fault fired *)

val overloaded : int
(** -32005, cntrd: the connection's inbound queue is full — the request
    was refused before dispatch.  Back off and resubmit once earlier
    replies have been drained. *)

val error : ?data:Jsonx.t -> int -> string -> rerror

(** {1 Encoding} *)

val request_json : request -> Jsonx.t
val response_json : response -> Jsonx.t
val encode_request : request -> string
val encode_response : response -> string

(** A [method]/[params] notification (no id). *)
val notification : string -> Jsonx.t -> string

(** Classify one parsed JSON document.  [Error e] means the document is not
    a well-formed JSON-RPC message; reply with [e] and id [null]. *)
val of_json : Jsonx.t -> (message, rerror) result

(** Parse + classify raw text. *)
val decode : string -> (message, rerror) result

(** {1 Batch envelopes}

    JSON-RPC 2.0 §6: a frame whose top-level document is an array is a
    batch.  Each element is validated independently — one malformed
    element yields a per-element error entry in the reply array without
    poisoning its well-formed neighbours.  The reply array preserves
    request order; notifications contribute no entry, and an all-
    notification batch produces no reply frame at all. *)

type incoming =
  | Single of (message, rerror) result
  | Batch of (message, rerror) result list  (** non-empty *)

(** Classify one frame as a single message or a batch.  [Error] is a
    text-level failure (parse error, or the empty-array batch the spec
    rejects) answered with one id-null error response. *)
val decode_incoming : string -> (incoming, rerror) result

(** One array envelope holding [rs] in order. *)
val encode_requests : request list -> string

(** One array envelope holding [ps] in order (the batch reply). *)
val encode_responses : response list -> string

(** {1 Framing} *)

(** Wrap a payload in a [Content-Length] header. *)
val frame : string -> string

(** Incremental deframer: feed arbitrary byte chunks, pull complete
    payloads.  Raises nothing; a malformed header surfaces as
    [`Garbage] from {!next}. *)
type reader

val reader : unit -> reader
val feed : reader -> string -> unit
val next : reader -> [ `Frame of string | `Garbage of string | `More ]
