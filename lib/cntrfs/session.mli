(** Wiring: FUSE connection + kernel-side driver + passthrough server = a
    mountable CntrFS.  The xfstests harness and the benchmarks use this
    directly; the full attach workflow builds the same session inside a
    nested namespace. *)

open Repro_os
open Repro_vfs
open Repro_fuse

type t = {
  conn : Conn.t;
  driver : Driver.t;
  server : Server.t;
  fs : Fsops.t;  (** mount this with {!Kernel.mount_at} *)
}

(** Create a serving session: [server_proc] serves [root_path] out of its
    own mount namespace.  [budget] is the page-cache budget the driver
    shares with the backing filesystems (double-buffering pressure). *)
val create :
  kernel:Kernel.t ->
  server_proc:Proc.t ->
  root_path:string ->
  ?opts:Opts.t ->
  ?threads:int ->
  ?sched:Repro_sched.Sched.t ->
  budget:Mem_budget.t ->
  unit ->
  t

val fs : t -> Fsops.t

(** The session's observability handle (the kernel's): all [fuse.*],
    [cntrfs.*] and [vfs.page_cache.fuse.*] metrics for this mount land
    here, plus the [cntrfs.server.threads] gauge and the queue metrics
    ([fuse.queue.depth.*], [fuse.inflight*], [cntrfs.worker.<i>.busy_ns]). *)
val obs : t -> Repro_obs.Obs.t

(** Protocol statistics: request counts by kind, bytes, splice usage.
    A snapshot view over the registry on {!obs}. *)
val stats : t -> Conn.stats

(** Teardown barrier: wait until every queued request (including one-way
    forgets/releases) has been served. *)
val quiesce : t -> unit
