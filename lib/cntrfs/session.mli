(** Wiring: FUSE connection + kernel-side driver + passthrough server = a
    mountable CntrFS.  The xfstests harness and the benchmarks use this
    directly; the full attach workflow builds the same session inside a
    nested namespace. *)

open Repro_os
open Repro_vfs
open Repro_fuse

type t = {
  kernel : Kernel.t;
  root_path : string;
  opts : Opts.t;
  conn : Conn.t;
  driver : Driver.t;
  mutable server : Server.t;  (** swapped by {!recover} *)
  mutable server_proc : Proc.t;
  fs : Fsops.t;  (** mount this with {!Kernel.mount_at} *)
  fault : Repro_fault.Fault.t option;  (** the armed plane, when any *)
  mutable m_recoveries : Repro_obs.Metrics.counter option;
}

(** Create a serving session: [server_proc] serves [root_path] out of its
    own mount namespace.  [budget] is the page-cache budget the driver
    shares with the backing filesystems (double-buffering pressure).

    [fault] arms a fault plan: the connection consults it while serving,
    and the kernel's backing syscalls consult it for the server's process
    (tracked across {!recover}).  [retry] arms per-request deadlines with
    idempotent-opcode retry.  With neither, the plane is off and the
    session behaves byte-identically to one built before the plane
    existed. *)
val create :
  kernel:Kernel.t ->
  server_proc:Proc.t ->
  root_path:string ->
  ?opts:Opts.t ->
  ?threads:int ->
  ?sched:Repro_sched.Sched.t ->
  ?fault:Repro_fault.Fault.plan ->
  ?retry:Repro_fault.Fault.retry ->
  budget:Mem_budget.t ->
  unit ->
  t

val fs : t -> Fsops.t

(** The session's observability handle (the kernel's): all [fuse.*],
    [cntrfs.*] and [vfs.page_cache.fuse.*] metrics for this mount land
    here, plus the [cntrfs.server.threads] gauge and the queue metrics
    ([fuse.queue.depth.*], [fuse.inflight*], [cntrfs.worker.<i>.busy_ns]). *)
val obs : t -> Repro_obs.Obs.t

(** Protocol statistics: request counts by kind, bytes, splice usage.
    A snapshot view over the registry on {!obs}. *)
val stats : t -> Conn.stats

(** The armed fault plane, when the session was created with one. *)
val fault : t -> Repro_fault.Fault.t option

(** Relaunch the CntrFS server after a crash: fork a replacement process,
    replay the driver's inode map into it ({!Server.restore}), swap the
    handler, revive the connection and reopen the driver's file handles.
    Counts under [session.recoveries]. *)
val recover : t -> unit

(** Teardown barrier: wait until every queued request (including one-way
    forgets/releases) has been served. *)
val quiesce : t -> unit
