(* The CNTRFS userspace server: a FUSE passthrough filesystem.  It runs as a
   process (usually root) inside the fat container or on the host and
   translates FUSE requests into kernel syscalls against its own mount
   namespace — this is how files of the fat container appear inside the
   slim container's nested namespace.

   Faithful cost/semantic details from the paper:
   - every LOOKUP costs a server-side open()+stat() pair to detect
     hardlinks (the compilebench/postmark bottleneck, §5.2.2);
   - operations are replayed under the *server's* credential with only
     fsuid/fsgid switched to the caller (setfsuid emulation) — so
     RLIMIT_FSIZE (generic/228) and setgid-clearing (generic/375) behave
     like the server, not the caller. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse

type entry = {
  mutable e_path : string; (* server-namespace path *)
  e_backing_ino : int;
  (* a kernel file handle captured at lookup time: CNTR holds an open
     handle per inode so hardlinked/renamed-away inodes stay reachable
     after their looked-up name disappears *)
  e_handle : (int * string) option;
  mutable e_nlookup : int;
}

type server_handle = { sh_fd : int; sh_ino : int }

(* One slot of the bounded-LRU handle cache: a lookup result (driver ino +
   backing stat) the server may re-serve without the open()+stat() pair,
   keyed by backing (dev, ino) — the single backing filesystem stands in
   for the dev.  Invalidated by every mutating op that touches the inode or
   its name. *)
type hc_slot = {
  hc_ino : int; (* driver ino *)
  hc_stat : Types.stat; (* backing stat (st_ino = backing ino) *)
  mutable hc_tick : int; (* LRU stamp *)
}

(* One live passthrough grant, keyed by the server fh it was issued with.
   The bounded LRU caps how many backing fds the server promises to keep
   stable for driver-side bypass I/O; overflow revokes the coldest. *)
type pt_slot = {
  ps_grant : Protocol.grant;
  ps_bino : int; (* backing ino, for mutation-driven revocation *)
  mutable ps_tick : int; (* LRU stamp *)
}

module Metrics = Repro_obs.Metrics

type t = {
  kernel : Kernel.t;
  proc : Proc.t;
  (* Shard-locked table discipline: the inode map and the handle cache
     are guarded by fixed-size lock tables hash-sharded on the backing
     inode, mirroring the sharding of the FUSE dirop locks.  The guarded
     segments are pure table manipulation (no effects, no virtual-time
     consumption), so the holds are zero-width on the virtual timeline —
     the locking is semantically real but timing-free.  [sched = None]
     (standalone servers in unit tests) skips the brackets. *)
  sched : Repro_sched.Sched.t option;
  ino_locks : Repro_sched.Sched.mutex array;
  hc_locks : Repro_sched.Sched.mutex array;
  inos : (int, entry) Hashtbl.t; (* driver ino -> entry *)
  by_backing : (int, int) Hashtbl.t; (* backing st_ino -> driver ino *)
  fhs : (int, server_handle) Hashtbl.t;
  mutable next_ino : int;
  mutable next_fh : int;
  (* metadata fast path: the handle cache (capacity 0 = disabled) and the
     validity windows stamped into READDIRPLUS replies *)
  hc_cap : int;
  hc : (int, hc_slot) Hashtbl.t; (* backing ino -> slot *)
  hc_paths : (string, int) Hashtbl.t; (* path -> backing ino *)
  mutable hc_tick : int;
  (* passthrough plane: live grants (capacity 0 = disabled) and the
     revocation counter, shared with the driver's registry entry *)
  pt_cap : int;
  pts : (int, pt_slot) Hashtbl.t; (* server fh -> slot *)
  mutable pt_tick : int;
  pt_m_revoked : Metrics.counter option;
  rdp_entry_valid_ns : int;
  rdp_attr_valid_ns : int;
  (* "cntrfs.*" counters on the kernel's registry: lookups, the backing
     syscalls they cost (the open()+stat() tax), and payload bytes *)
  m_lookups : Metrics.counter;
  m_backing_ops : Metrics.counter;
  m_read_bytes : Metrics.counter;
  m_write_bytes : Metrics.counter;
  m_hc_hits : Metrics.counter;
  m_hc_misses : Metrics.counter;
  m_hc_evictions : Metrics.counter;
}

let root_ino = 1

let shard_count = 64

(* Golden-ratio multiplicative hash, same spread as the dirop shards. *)
let shard key = key * 0x9E3779B9 land (shard_count - 1)

let create ?sched ~kernel ~proc ~root_path ?(handle_cache = 0) ?(valid_ns = (0, 0))
    ?(passthrough = 0) () =
  let metrics = Repro_obs.Obs.metrics kernel.Kernel.obs in
  let m_lookups = Metrics.counter metrics "cntrfs.lookup.count" in
  let m_backing_ops = Metrics.counter metrics "cntrfs.lookup.backing_ops" in
  (* Lookup amplification: backing syscalls per driver-visible lookup
     (2.0 = the plain open+stat pair; higher when handles are captured;
     handle-cache hits and READDIRPLUS entries pull it down — the metric to
     watch in the e3e ablation). *)
  Metrics.register_derived metrics "cntrfs.lookup.amplification" (fun () ->
      let l = Metrics.value m_lookups in
      if l = 0 then 0. else float_of_int (Metrics.value m_backing_ops) /. float_of_int l);
  let m_hc_hits = Metrics.counter metrics "cntrfs.handle_cache.hits" in
  let m_hc_misses = Metrics.counter metrics "cntrfs.handle_cache.misses" in
  Metrics.register_derived metrics "cntrfs.handle_cache.hit_ratio" (fun () ->
      let h = Metrics.value m_hc_hits and m = Metrics.value m_hc_misses in
      if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m));
  let t =
    {
      kernel;
      proc;
      sched;
      ino_locks = Array.init shard_count (fun _ -> Repro_sched.Sched.mutex ());
      hc_locks = Array.init shard_count (fun _ -> Repro_sched.Sched.mutex ());
      inos = Hashtbl.create 256;
      by_backing = Hashtbl.create 256;
      fhs = Hashtbl.create 32;
      next_ino = 2;
      next_fh = 1;
      hc_cap = max 0 handle_cache;
      hc = Hashtbl.create 256;
      hc_paths = Hashtbl.create 256;
      hc_tick = 0;
      pt_cap = max 0 passthrough;
      pts = Hashtbl.create 16;
      pt_tick = 0;
      pt_m_revoked =
        (if passthrough > 0 then
           Some (Metrics.counter metrics "fuse.passthrough.revocations")
         else None);
      rdp_entry_valid_ns = fst valid_ns;
      rdp_attr_valid_ns = snd valid_ns;
      m_lookups;
      m_backing_ops;
      m_read_bytes = Metrics.counter metrics "cntrfs.read.bytes";
      m_write_bytes = Metrics.counter metrics "cntrfs.write.bytes";
      m_hc_hits;
      m_hc_misses;
      m_hc_evictions = Metrics.counter metrics "cntrfs.handle_cache.evictions";
    }
  in
  Hashtbl.replace t.inos root_ino
    { e_path = root_path; e_backing_ino = 0; e_handle = None; e_nlookup = 1 };
  t

let ( let* ) = Result.bind

(* Run a table segment under one shard of a lock table. *)
let locked t locks i f =
  match t.sched with
  | None -> f ()
  | Some s -> Repro_sched.Sched.with_lock s locks.(i) f

let with_ino t bino f = locked t t.ino_locks (shard bino) f
let with_hc t bino f = locked t t.hc_locks (shard bino) f

let entry t ino =
  match Hashtbl.find_opt t.inos ino with
  | Some e -> Ok e
  | None -> Error Errno.ENOENT

let path_of t ino =
  let* e = entry t ino in
  Ok e.e_path

(* setfsuid/setfsgid emulation: run [f] with the caller's uid/gid but the
   server's capabilities and rlimits. *)
let with_fsuid t (ctx : Protocol.ctx) f =
  let cred = t.proc.Proc.cred in
  let saved_uid = cred.Proc.uid and saved_gid = cred.Proc.gid in
  cred.Proc.uid <- ctx.Protocol.c_uid;
  cred.Proc.gid <- ctx.Protocol.c_gid;
  let result = f () in
  cred.Proc.uid <- saved_uid;
  cred.Proc.gid <- saved_gid;
  result

(* Present a backing stat to the driver: the inode number must be the
   driver-visible one. *)
let xlate_stat st ~ino = { st with Types.st_ino = ino }

(* --- handle cache -------------------------------------------------------- *)

let hc_touch t (slot : hc_slot) =
  t.hc_tick <- t.hc_tick + 1;
  slot.hc_tick <- t.hc_tick

(* Eviction is O(capacity); capacities are small (the cache is bounded by
   construction) and eviction only happens on insert past the cap. *)
let hc_evict_if_full t =
  if Hashtbl.length t.hc > t.hc_cap then begin
    let victim =
      Hashtbl.fold
        (fun bino (slot : hc_slot) acc ->
          match acc with
          | Some (_, (best : hc_slot)) when best.hc_tick <= slot.hc_tick -> acc
          | _ -> Some (bino, slot))
        t.hc None
    in
    match victim with
    | Some (bino, _) ->
        Hashtbl.remove t.hc bino;
        (* the path -> backing mapping may dangle; hits re-check [t.hc] *)
        Metrics.incr t.m_hc_evictions
    | None -> ()
  end

(* Hardlinked files are uncacheable: their link count can drop through a
   sibling path (unlink of another name) that arrives with no prior LOOKUP
   — the driver's dentry cache satisfies the name — so no [hc_paths]
   binding exists to invalidate the slot through.  Directories are exempt
   (no aliases; nlink moves only via mkdir/rmdir, which do invalidate). *)
let hc_cacheable (st : Types.stat) =
  st.Types.st_kind = Types.Dir || st.Types.st_nlink <= 1

(* Eviction scans the whole table while holding only the inserter's shard:
   the LRU scan tolerates racing inserts (it only needs *a* cold victim,
   not *the* coldest), so cross-shard exactness is not worth a global
   lock. *)
let hc_insert t ~path ~(st : Types.stat) ~ino =
  if t.hc_cap > 0 && hc_cacheable st then
    with_hc t st.Types.st_ino (fun () ->
        let slot = { hc_ino = ino; hc_stat = st; hc_tick = 0 } in
        Hashtbl.replace t.hc st.Types.st_ino slot;
        hc_touch t slot;
        Hashtbl.replace t.hc_paths path st.Types.st_ino;
        hc_evict_if_full t)

(* A known-valid slot for [path], or None.  Validity requires the slot to
   still be resident *and* its driver ino still interned (monotonic ino
   allocation makes a forgotten ino detectable). *)
(* The path -> backing probe is an optimistic unguarded read; everything it
   yields is revalidated under the backing ino's shard lock (slot residency,
   st_ino match, driver ino still interned), so a stale routing entry can
   only produce a miss, never a wrong hit. *)
let hc_find t path =
  if t.hc_cap = 0 then None
  else
    match Hashtbl.find_opt t.hc_paths path with
    | None -> None
    | Some bino ->
        with_hc t bino (fun () ->
            match Hashtbl.find_opt t.hc bino with
            | Some slot
              when slot.hc_stat.Types.st_ino = bino
                   && Hashtbl.mem t.inos slot.hc_ino ->
                Some slot
            | _ -> None)

let hc_invalidate_backing t bino =
  if t.hc_cap > 0 then with_hc t bino (fun () -> Hashtbl.remove t.hc bino)

let hc_invalidate_ino t ino =
  if t.hc_cap > 0 then
    match Hashtbl.find_opt t.inos ino with
    | Some e ->
        with_hc t e.e_backing_ino (fun () ->
            Hashtbl.remove t.hc e.e_backing_ino)
    | None -> ()

let hc_invalidate_path t path =
  if t.hc_cap > 0 then
    match Hashtbl.find_opt t.hc_paths path with
    | Some bino ->
        with_hc t bino (fun () ->
            Hashtbl.remove t.hc_paths path;
            Hashtbl.remove t.hc bino)
    | None -> ()

(* Rename moves a whole subtree: drop everything at or under [dir].  The
   collection pass is an unguarded scan; each removal re-takes its own
   shard. *)
let hc_invalidate_subtree t dir =
  if t.hc_cap > 0 then begin
    let doomed =
      Hashtbl.fold
        (fun p bino acc ->
          if p = dir || Option.is_some (Pathx.strip_prefix ~dir p) then
            (p, bino) :: acc
          else acc)
        t.hc_paths []
    in
    List.iter
      (fun (p, bino) ->
        with_hc t bino (fun () ->
            Hashtbl.remove t.hc_paths p;
            Hashtbl.remove t.hc bino))
      doomed
  end

(* --- passthrough grants --------------------------------------------------- *)

(* Revoke the grant issued with server fh [sfh]: flip the capability dead
   and count it — something was taken away from a live handle, and the
   driver will fall back to round trips when it next checks. *)
let pt_revoke t sfh =
  match Hashtbl.find_opt t.pts sfh with
  | None -> ()
  | Some slot ->
      Hashtbl.remove t.pts sfh;
      if slot.ps_grant.Protocol.g_valid then begin
        slot.ps_grant.Protocol.g_valid <- false;
        match t.pt_m_revoked with Some c -> Metrics.incr c | None -> ()
      end

(* End of life (RELEASE/DESTROY): the grant dies with its handle — no
   revocation counted, nothing was taken from a live handle. *)
let pt_drop t sfh =
  match Hashtbl.find_opt t.pts sfh with
  | None -> ()
  | Some slot ->
      Hashtbl.remove t.pts sfh;
      slot.ps_grant.Protocol.g_valid <- false

(* A server-side mutation of the backing inode: every grant on it must go
   — the driver has to observe the change through round trips, not
   through a bypassed fd.  Revocations run in fh order so the counter's
   trajectory is deterministic. *)
let pt_revoke_backing t bino =
  if t.pt_cap > 0 then
    Hashtbl.fold
      (fun sfh slot acc -> if slot.ps_bino = bino then sfh :: acc else acc)
      t.pts []
    |> List.sort compare
    |> List.iter (pt_revoke t)

let pt_touch t sfh =
  match Hashtbl.find_opt t.pts sfh with
  | None -> ()
  | Some slot ->
      t.pt_tick <- t.pt_tick + 1;
      slot.ps_tick <- t.pt_tick

(* Bounded grants: past the cap, the coldest grant is revoked.  Ticks are
   unique, so the victim is unambiguous regardless of table order. *)
let pt_evict_if_full t =
  while Hashtbl.length t.pts > t.pt_cap do
    let victim =
      Hashtbl.fold
        (fun sfh (slot : pt_slot) acc ->
          match acc with
          | Some (_, best_tick) when best_tick <= slot.ps_tick -> acc
          | _ -> Some (sfh, slot.ps_tick))
        t.pts None
    in
    match victim with Some (sfh, _) -> pt_revoke t sfh | None -> ()
  done

(* Invalidate both fast planes for a driver-visible inode: the lookup
   handle cache (stale stat) and any passthrough grants (data-plane
   coherence).  The hc half is gated on its own capacity inside; the pt
   half must run even with the handle cache off. *)
let invalidate_ino t ino =
  hc_invalidate_ino t ino;
  if t.pt_cap > 0 then
    match Hashtbl.find_opt t.inos ino with
    | Some e -> pt_revoke_backing t e.e_backing_ino
    | None -> ()

(* Does the interned path still name the same backing inode?  After
   "unlink + recreate under the same name" the path aliases a *different*
   file; CNTR's per-inode handles keep serving the original.  Returns the
   path when valid, None when stale. *)
let checked_path t e =
  match e.e_handle with
  | None -> Some e.e_path (* directories/symlinks: path-identified *)
  | Some _ -> (
      match Kernel.lstat t.kernel t.proc e.e_path with
      | Ok st when st.Types.st_ino = e.e_backing_ino -> Some e.e_path
      | _ -> None)

(* Run [f fd] on a transient fd for a stale-path entry (via its handle). *)
let with_handle_fd t e ?(flags = [ Types.O_RDONLY ]) f =
  match e.e_handle with
  | None -> Error Errno.ENOENT
  | Some handle -> (
      match Kernel.open_by_handle_at t.kernel t.proc ~flags handle with
      | Error _ -> Error Errno.ENOENT
      | Ok fd ->
          let r = f fd in
          ignore (Kernel.close t.kernel t.proc fd);
          r)

(* Path-based op with handle fallback when the path went stale. *)
let on_entry t ino ~via_path ~via_fd =
  let* e = entry t ino in
  match checked_path t e with
  | Some path -> via_path path
  | None -> with_handle_fd t e via_fd

(* Allocate (or reuse, for hardlinks) a driver inode for [path].  The
   dedup check and the map insert sit under the backing ino's shard lock,
   so a racing lookup of the same backing inode cannot double-intern;
   [next_ino] itself is a relaxed monotonic counter (an atomic fetch-add
   in a parallel implementation). *)
let intern t ~path ~(st : Types.stat) =
  with_ino t st.Types.st_ino (fun () ->
      let reuse =
        match st.Types.st_kind with
        | Types.Dir -> None (* directories are never hardlinked *)
        | _ -> Hashtbl.find_opt t.by_backing st.Types.st_ino
      in
      match reuse with
      | Some ino ->
          let e = Hashtbl.find t.inos ino in
          e.e_nlookup <- e.e_nlookup + 1;
          ino
      | None ->
          let ino = t.next_ino in
          t.next_ino <- ino + 1;
          (* the open()-per-lookup also yields a persistent handle (files
             and symlinks can be hardlinked away from their looked-up name) *)
          let handle =
            match st.Types.st_kind with
            | Types.Reg | Types.Symlink | Types.Fifo | Types.Sock ->
                Metrics.incr t.m_backing_ops;
                Result.to_option
                  (Kernel.name_to_handle_at t.kernel t.proc ~follow:false path)
            | _ -> None
          in
          Hashtbl.replace t.inos ino
            {
              e_path = path;
              e_backing_ino = st.Types.st_ino;
              e_handle = handle;
              e_nlookup = 1;
            };
          Hashtbl.replace t.by_backing st.Types.st_ino ino;
          ino)

(* Recovery: teach a freshly created server the driver's existing ino
   space.  [pairs] comes from [Driver.ino_paths] — (driver ino, path
   relative to the server root, nlookup).  Every path is revalidated
   against the backing store (the lstat and handle recapture are charged,
   like the original lookups were); names that vanished while the server
   was down are skipped, so the driver's stale dentries for them fail on
   first use exactly as an expired cache entry would. *)
let restore t pairs =
  let root = (Hashtbl.find t.inos root_ino).e_path in
  List.iter
    (fun (ino, rel, nlookup) ->
      let path = if String.equal rel "" then root else Pathx.concat root rel in
      match Kernel.lstat t.kernel t.proc path with
      | Error _ -> ()
      | Ok st ->
          Metrics.incr t.m_backing_ops;
          let handle =
            match st.Types.st_kind with
            | Types.Reg | Types.Symlink | Types.Fifo | Types.Sock ->
                Metrics.incr t.m_backing_ops;
                Result.to_option
                  (Kernel.name_to_handle_at t.kernel t.proc ~follow:false path)
            | _ -> None
          in
          Hashtbl.replace t.inos ino
            {
              e_path = path;
              e_backing_ino = st.Types.st_ino;
              e_handle = handle;
              e_nlookup = max 1 nlookup;
            };
          (match st.Types.st_kind with
          | Types.Dir -> ()
          | _ -> Hashtbl.replace t.by_backing st.Types.st_ino ino);
          if ino >= t.next_ino then t.next_ino <- ino + 1)
    pairs

let handle_lookup t ctx ~parent ~name =
  let* dir = path_of t parent in
  let path = Pathx.concat dir name in
  match hc_find t path with
  | Some slot ->
      (* Handle-cache hit: the entry is known valid (every mutating op
         invalidates), so the open()+stat() pair is skipped entirely — an
         in-memory map probe, like a dcache hit. *)
      Metrics.incr t.m_lookups;
      Metrics.incr t.m_hc_hits;
      hc_touch t slot;
      Clock.consume_int t.kernel.Kernel.clock t.kernel.Kernel.cost.Cost.dentry_ns;
      let ino = slot.hc_ino in
      let e = Hashtbl.find t.inos ino in
      e.e_nlookup <- e.e_nlookup + 1;
      Ok (Protocol.R_entry (ino, xlate_stat slot.hc_stat ~ino))
  | None ->
      if t.hc_cap > 0 then Metrics.incr t.m_hc_misses;
      (* The hardlink-detection tax: one open() for a handle plus one stat(),
         per lookup (§5.2.2, Compilebench). *)
      Metrics.incr t.m_lookups;
      Metrics.add t.m_backing_ops 2;
      Clock.consume_int t.kernel.Kernel.clock t.kernel.Kernel.cost.Cost.backing_lookup_ns;
      let* st = with_fsuid t ctx (fun () -> Kernel.lstat t.kernel t.proc path) in
      let ino = intern t ~path ~st in
      hc_insert t ~path ~st ~ino;
      Ok (Protocol.R_entry (ino, xlate_stat st ~ino))

let handle_forget t pairs =
  List.iter
    (fun (ino, n) ->
      match Hashtbl.find_opt t.inos ino with
      | Some e when ino <> root_ino ->
          with_ino t e.e_backing_ino (fun () ->
              e.e_nlookup <- e.e_nlookup - n;
              if e.e_nlookup <= 0 then begin
                Hashtbl.remove t.inos ino;
                Hashtbl.remove t.by_backing e.e_backing_ino
              end);
          if e.e_nlookup <= 0 then hc_invalidate_backing t e.e_backing_ino
      | _ -> ())
    pairs;
  Protocol.R_ok

(* After a successful rename, every interned path under the source moves. *)
let remap_paths t ~src ~dst =
  Hashtbl.iter
    (fun _ e ->
      if e.e_path = src then e.e_path <- dst
      else
        match Pathx.strip_prefix ~dir:src e.e_path with
        | Some rest when rest <> "" -> e.e_path <- Pathx.concat dst rest
        | _ -> ())
    t.inos

let open_flags_for_server flags =
  (* The server opens with the caller's intent but never O_DIRECT (FUSE
     already rejected it), never O_CREAT/O_EXCL (CREATE handles that), and
     never O_APPEND — append offsets are resolved by the kernel driver, and
     WRITE requests carry explicit offsets that must be honored.  Write-only
     opens are widened to O_RDWR: the writeback cache needs to read partial
     pages back for read-modify-write. *)
  flags
  |> List.filter (fun f ->
         not (List.mem f [ Types.O_DIRECT; Types.O_CREAT; Types.O_EXCL; Types.O_APPEND ]))
  |> List.map (function Types.O_WRONLY -> Types.O_RDWR | f -> f)

let alloc_fh t ~fd ~ino =
  let fh = t.next_fh in
  t.next_fh <- fh + 1;
  Hashtbl.replace t.fhs fh { sh_fd = fd; sh_ino = ino };
  fh

let fh t n =
  match Hashtbl.find_opt t.fhs n with
  | Some h -> Ok h
  | None -> Error Errno.EBADF

(* The main dispatch: one FUSE request in, one response out.  Runs in the
   server process's namespace; all costs are charged through the kernel. *)
let handle t (ctx : Protocol.ctx) (req : Protocol.req) : Protocol.resp =
  let k = t.kernel and p = t.proc in
  let wrap r = match r with Ok resp -> resp | Error e -> Protocol.R_err e in
  wrap
    (match req with
    | Protocol.Lookup { parent; name } -> handle_lookup t ctx ~parent ~name
    | Protocol.Forget pairs -> Ok (handle_forget t pairs)
    | Protocol.Getattr ino ->
        let* st =
          on_entry t ino
            ~via_path:(fun path -> Kernel.lstat k p path)
            ~via_fd:(fun fd -> Kernel.fstat k p fd)
        in
        Ok (Protocol.R_attr (xlate_stat st ~ino))
    | Protocol.Setattr (ino, sa) ->
        invalidate_ino t ino;
        let* st =
          on_entry t ino
            ~via_path:(fun path ->
              let* () = with_fsuid t ctx (fun () -> Kernel.setattr_path k p path sa) in
              Kernel.lstat k p path)
            ~via_fd:(fun fd -> with_fsuid t ctx (fun () -> Kernel.fsetattr k p fd sa))
        in
        Ok (Protocol.R_attr (xlate_stat st ~ino))
    | Protocol.Readlink ino ->
        let* target =
          on_entry t ino
            ~via_path:(fun path -> Kernel.readlink k p path)
            ~via_fd:(fun fd -> Kernel.freadlink k p fd)
        in
        Ok (Protocol.R_readlink target)
    | Protocol.Mknod { parent; name; kind; mode } ->
        let* dir = path_of t parent in
        let path = Pathx.concat dir name in
        let* () = with_fsuid t ctx (fun () -> Kernel.mknod k p path ~kind ~mode) in
        hc_invalidate_path t path;
        hc_invalidate_path t dir;
        handle_lookup t ctx ~parent ~name
    | Protocol.Mkdir { parent; name; mode } ->
        let* dir = path_of t parent in
        let path = Pathx.concat dir name in
        let* () = with_fsuid t ctx (fun () -> Kernel.mkdir k p path ~mode) in
        hc_invalidate_path t path;
        hc_invalidate_path t dir;
        handle_lookup t ctx ~parent ~name
    | Protocol.Unlink { parent; name } ->
        let* dir = path_of t parent in
        let* () = with_fsuid t ctx (fun () -> Kernel.unlink k p (Pathx.concat dir name)) in
        hc_invalidate_path t (Pathx.concat dir name);
        hc_invalidate_path t dir;
        Ok Protocol.R_ok
    | Protocol.Rmdir { parent; name } ->
        let* dir = path_of t parent in
        let* () = with_fsuid t ctx (fun () -> Kernel.rmdir k p (Pathx.concat dir name)) in
        hc_invalidate_path t (Pathx.concat dir name);
        hc_invalidate_path t dir;
        Ok Protocol.R_ok
    | Protocol.Symlink { parent; name; target } ->
        let* dir = path_of t parent in
        let path = Pathx.concat dir name in
        let* () = with_fsuid t ctx (fun () -> Kernel.symlink k p ~target ~linkpath:path) in
        hc_invalidate_path t path;
        hc_invalidate_path t dir;
        handle_lookup t ctx ~parent ~name
    | Protocol.Rename { src_parent; src_name; dst_parent; dst_name } ->
        let* sdir = path_of t src_parent in
        let* ddir = path_of t dst_parent in
        let src = Pathx.concat sdir src_name and dst = Pathx.concat ddir dst_name in
        (* whichever of our inos sat at [dst] is displaced by this rename;
           found before [remap_paths] moves the src subtree onto that path *)
        let replaced =
          Hashtbl.fold
            (fun ino e acc -> if String.equal e.e_path dst then Some ino else acc)
            t.inos None
        in
        let* () = with_fsuid t ctx (fun () -> Kernel.rename k p ~src ~dst) in
        remap_paths t ~src ~dst;
        (* the moved subtree's cached paths are all stale, the replaced
           target (if any) lost a link, and both parents' mtimes changed *)
        hc_invalidate_subtree t src;
        hc_invalidate_subtree t dst;
        hc_invalidate_path t sdir;
        hc_invalidate_path t ddir;
        Ok (Protocol.R_renamed replaced)
    | Protocol.Link { src; parent; name } ->
        let* dir = path_of t parent in
        let path = Pathx.concat dir name in
        hc_invalidate_ino t src;
        hc_invalidate_path t path;
        hc_invalidate_path t dir;
        let* () =
          on_entry t src
            ~via_path:(fun src_path ->
              with_fsuid t ctx (fun () -> Kernel.link k p ~target:src_path ~linkpath:path))
            ~via_fd:(fun fd -> with_fsuid t ctx (fun () -> Kernel.link_fd k p fd ~linkpath:path))
        in
        handle_lookup t ctx ~parent ~name
    | Protocol.Open { ino; flags; want_pt } ->
        let* e = entry t ino in
        let sflags = open_flags_for_server flags in
        let* fd =
          match checked_path t e with
          | Some path -> with_fsuid t ctx (fun () -> Kernel.open_ k p path sflags ~mode:0)
          | None -> (
              match e.e_handle with
              | None -> Error Errno.ENOENT
              | Some handle -> (
                  match Kernel.open_by_handle_at k p ~flags:sflags handle with
                  | Ok fd -> Ok fd
                  | Error _ -> Error Errno.ENOENT))
        in
        let sfh = alloc_fh t ~fd ~ino in
        (* Passthrough handshake: if the client asked and the plane is on,
           vet the file (regular files only — the backing fd must support
           plain positional I/O) and attach a grant to the reply.  The
           grant's closures carry the backing fd: reads/writes through
           them run on the server's proc with real backing costs, but no
           FUSE request ever exists for them. *)
        if want_pt && t.pt_cap > 0 then begin
          match Kernel.fstat k p fd with
          | Ok st when st.Types.st_kind = Types.Reg ->
              let bino = st.Types.st_ino in
              let grant =
                {
                  Protocol.g_ino = ino;
                  g_valid = true;
                  g_read =
                    (fun ~off ~len ->
                      pt_touch t sfh;
                      let* data = Kernel.pread k p fd ~off ~len in
                      Metrics.add t.m_read_bytes (String.length data);
                      Ok data);
                  g_write =
                    (fun wctx ~off data ->
                      pt_touch t sfh;
                      (* a bypassed write still moves the backing mtime and
                         size: the lookup fast path must not serve the old
                         stat *)
                      hc_invalidate_backing t bino;
                      let* n =
                        with_fsuid t wctx (fun () -> Kernel.pwrite k p fd ~off data)
                      in
                      Metrics.add t.m_write_bytes n;
                      Ok n);
                }
              in
              Hashtbl.replace t.pts sfh { ps_grant = grant; ps_bino = bino; ps_tick = 0 };
              pt_touch t sfh;
              pt_evict_if_full t;
              Ok (Protocol.R_open_pt (sfh, grant))
          | _ -> Ok (Protocol.R_open sfh)
        end
        else Ok (Protocol.R_open sfh)
    | Protocol.Create { parent; name; mode; flags } ->
        let* dir = path_of t parent in
        let path = Pathx.concat dir name in
        hc_invalidate_path t path;
        hc_invalidate_path t dir;
        let* fd =
          with_fsuid t ctx (fun () ->
              Kernel.open_ k p path (Types.O_CREAT :: open_flags_for_server flags) ~mode)
        in
        let* resp = handle_lookup t ctx ~parent ~name in
        (match resp with
        | Protocol.R_entry (ino, st) -> Ok (Protocol.R_create (ino, st, alloc_fh t ~fd ~ino))
        | _ -> Error Errno.EIO)
    | Protocol.Read { fh = n; off; len } ->
        let* h = fh t n in
        let* data = Kernel.pread k p h.sh_fd ~off ~len in
        Metrics.add t.m_read_bytes (String.length data);
        Ok (Protocol.R_data data)
    | Protocol.Write { fh = n; off; data } ->
        let* h = fh t n in
        invalidate_ino t h.sh_ino;
        let* written = with_fsuid t ctx (fun () -> Kernel.pwrite k p h.sh_fd ~off data) in
        Metrics.add t.m_write_bytes written;
        Ok (Protocol.R_written written)
    | Protocol.Flush _ -> Ok Protocol.R_ok
    | Protocol.Release n ->
        pt_drop t n;
        (match Hashtbl.find_opt t.fhs n with
        | Some h ->
            Hashtbl.remove t.fhs n;
            ignore (Kernel.close k p h.sh_fd)
        | None -> ());
        Ok Protocol.R_ok
    | Protocol.Fsync n ->
        let* h = fh t n in
        let* () = Kernel.fsync k p h.sh_fd in
        Ok Protocol.R_ok
    | Protocol.Fallocate { fh = n; off; len } ->
        let* h = fh t n in
        invalidate_ino t h.sh_ino;
        let* () = Kernel.fallocate k p h.sh_fd ~off ~len in
        Ok Protocol.R_ok
    | Protocol.Readdir ino ->
        let* path = path_of t ino in
        let* entries = Kernel.readdir k p path in
        Ok (Protocol.R_dirents entries)
    | Protocol.Readdirplus ino ->
        let* path = path_of t ino in
        let* entries = Kernel.readdir k p path in
        (* Each entry is stat()ed alongside the getdents — a batched
           lookup with amplification 1 instead of the open()+stat() pair a
           per-name LOOKUP would pay.  "." and ".." carry no attr. *)
        let plus =
          List.map
            (fun (de : Types.dirent) ->
              if de.Types.d_name = "." || de.Types.d_name = ".." then
                (de, None, 0, 0)
              else
                let cpath = Pathx.concat path de.Types.d_name in
                match
                  with_fsuid t ctx (fun () -> Kernel.lstat k p cpath)
                with
                | Error _ -> (de, None, 0, 0)
                | Ok st ->
                    Metrics.incr t.m_lookups;
                    Metrics.incr t.m_backing_ops;
                    let cino = intern t ~path:cpath ~st in
                    hc_insert t ~path:cpath ~st ~ino:cino;
                    ( de,
                      Some (xlate_stat st ~ino:cino),
                      t.rdp_entry_valid_ns,
                      t.rdp_attr_valid_ns ))
            entries
        in
        Ok (Protocol.R_direntplus plus)
    | Protocol.Getxattr (ino, name) ->
        let* v =
          on_entry t ino
            ~via_path:(fun path -> Kernel.getxattr k p path name)
            ~via_fd:(fun fd -> Kernel.fgetxattr k p fd name)
        in
        Ok (Protocol.R_xattr v)
    | Protocol.Setxattr (ino, name, value) ->
        invalidate_ino t ino;
        let* () =
          on_entry t ino
            ~via_path:(fun path -> with_fsuid t ctx (fun () -> Kernel.setxattr k p path name value))
            ~via_fd:(fun fd -> with_fsuid t ctx (fun () -> Kernel.fsetxattr k p fd name value))
        in
        Ok Protocol.R_ok
    | Protocol.Listxattr ino ->
        let* names =
          on_entry t ino
            ~via_path:(fun path -> Kernel.listxattr k p path)
            ~via_fd:(fun fd -> Kernel.flistxattr k p fd)
        in
        Ok (Protocol.R_xattr_names names)
    | Protocol.Removexattr (ino, name) ->
        invalidate_ino t ino;
        let* () =
          on_entry t ino
            ~via_path:(fun path -> with_fsuid t ctx (fun () -> Kernel.removexattr k p path name))
            ~via_fd:(fun fd -> with_fsuid t ctx (fun () -> Kernel.fremovexattr k p fd name))
        in
        Ok Protocol.R_ok
    | Protocol.Statfs ->
        let* path = path_of t root_ino in
        let* s = Kernel.statfs k p path in
        Ok (Protocol.R_statfs s)
    | Protocol.Destroy ->
        (* orderly teardown: grants die with their handles, uncounted *)
        Hashtbl.iter (fun _ (slot : pt_slot) -> slot.ps_grant.Protocol.g_valid <- false) t.pts;
        Hashtbl.reset t.pts;
        Hashtbl.iter (fun _ h -> ignore (Kernel.close k p h.sh_fd)) t.fhs;
        Hashtbl.reset t.fhs;
        Ok Protocol.R_ok)

(* View over the registry counter ("cntrfs.lookup.count"). *)
let lookups_performed t = Metrics.value t.m_lookups
