(** The CNTRFS userspace server: a FUSE passthrough filesystem running as a
    process (usually root) inside the fat container or on the host,
    translating protocol requests into kernel syscalls against its own
    mount namespace.

    Faithful details from the paper: every LOOKUP costs a server-side
    open()+stat() pair for hardlink detection (the compilebench/postmark
    bottleneck, §5.2.2); operations are replayed with only fsuid/fsgid
    switched to the caller (setfsuid emulation), which is why RLIMIT_FSIZE
    (generic/228) and setgid-clearing (generic/375) behave like the server.
    Per-inode file handles keep hardlinked or recreated-under-the-same-name
    inodes reachable after their looked-up path goes stale. *)

open Repro_os
open Repro_fuse

type t

(** [create ~kernel ~proc ~root_path ()] serves [root_path] (resolved in
    [proc]'s namespace — "/" of the fat container after setns).

    [handle_cache] bounds the LRU handle cache keyed by backing (dev, ino):
    a hit re-serves a known-valid LOOKUP without the open()+stat() pair
    (counters [cntrfs.handle_cache.hits|misses|evictions], derived
    [cntrfs.handle_cache.hit_ratio]).  0 (the default, the paper's
    behaviour) disables it.  [valid_ns] = (entry, attr) validity windows
    stamped into READDIRPLUS replies.

    [sched] arms the shard-locked table discipline: the inode map and the
    handle cache are guarded by fixed-size lock tables hash-sharded on the
    backing inode (same sharding as the FUSE dirop locks).  The guarded
    segments consume no virtual time, so the holds are zero-width —
    semantically real, timing-free.  Omitting [sched] (standalone servers
    in unit tests) skips the brackets. *)
val create :
  ?sched:Repro_sched.Sched.t ->
  kernel:Kernel.t ->
  proc:Proc.t ->
  root_path:string ->
  ?handle_cache:int ->
  ?valid_ns:int * int ->
  ?passthrough:int ->
  unit ->
  t
(** [?passthrough] caps the LRU of passthrough grants the server will keep
    live at once (0 = the plane is off and OPEN never grants).  A granted
    OPEN replies [R_open_pt] with a capability onto the backing file;
    grants are revoked on LRU overflow and on any server-side mutation of
    the inode, and die uncounted with their handle on RELEASE/DESTROY. *)

(** The request handler to install with {!Conn.set_handler}. *)
val handle : t -> Protocol.ctx -> Protocol.req -> Protocol.resp

(** Recovery: teach a freshly created server an existing driver ino space —
    [(ino, path relative to the server root, nlookup)] triples from
    [Repro_fuse.Driver.ino_paths].  Paths are revalidated against the
    backing store (charged like the original lookups); names that vanished
    while the server was down are skipped. *)
val restore : t -> (int * string * int) list -> unit

(** Server-side lookups performed so far (the open()+stat() tax).

    Deprecated: thin wrapper over the kernel registry's
    [cntrfs.lookup.count] counter; kept for one release — new code should
    read the registry (which also exposes [cntrfs.lookup.backing_ops] and
    the derived [cntrfs.lookup.amplification]). *)
val lookups_performed : t -> int
