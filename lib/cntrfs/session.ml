(* Wiring: connection + driver + server = a mounted CntrFS.  Used directly
   by the xfstests harness and the benchmarks; the full CNTR attach flow
   (lib/core) builds the same session inside a nested namespace. *)

open Repro_vfs
open Repro_os
open Repro_fuse
module Fault = Repro_fault.Fault

type t = {
  kernel : Kernel.t;
  root_path : string;
  opts : Opts.t;
  conn : Conn.t;
  driver : Driver.t;
  mutable server : Server.t;
  mutable server_proc : Proc.t;
  fs : Fsops.t;
  fault : Fault.t option;
  mutable m_recoveries : Repro_obs.Metrics.counter option;
}

(* Create a CntrFS session: the server process [server_proc] serves
   [root_path] out of its own mount namespace.  The returned [fs] can be
   mounted anywhere with [Kernel.mount_at].  [sched] is the discrete-event
   scheduler the server's worker fibers run on; benchmarks pass the
   workload's so client tasks and workers interleave, and it defaults to a
   private one over the kernel's clock.

   [fault] arms a fault plan over the session: the connection consults it
   while serving, and the kernel's backing syscalls consult it for the
   server's process (tracked across recovery).  [retry] arms per-request
   deadlines + idempotent retry.  Neither given = the plane stays off and
   the session is byte-identical to an unarmed one. *)
let create ~kernel ~server_proc ~root_path ?(opts = Opts.cntr_default) ?(threads = 4) ?sched
    ?fault ?retry ~budget () =
  let obs = kernel.Kernel.obs in
  let conn =
    Conn.create ~obs ?sched ~clock:kernel.Kernel.clock ~cost:kernel.Kernel.cost ()
  in
  conn.Conn.threads <- threads;
  conn.Conn.max_background <- opts.Opts.max_background;
  let metrics = Repro_obs.Obs.metrics obs in
  Repro_obs.Metrics.set
    (Repro_obs.Metrics.gauge metrics "cntrfs.server.threads")
    (float_of_int threads);
  let server =
    Server.create ~sched:(Conn.sched conn) ~kernel ~proc:server_proc ~root_path
      ~handle_cache:opts.Opts.handle_cache
      ~valid_ns:(opts.Opts.entry_timeout_ns, opts.Opts.attr_timeout_ns)
      ~passthrough:opts.Opts.passthrough ()
  in
  Conn.set_handler conn (Server.handle server);
  let driver = Driver.create ~conn ~opts ~budget in
  let plane = Option.map (Fault.arm ~obs ~clock:kernel.Kernel.clock) fault in
  (match plane, retry with
  | None, None -> ()
  | _ -> Conn.supervise conn ?fault:plane ?retry ());
  Conn.start_serving conn;
  let t =
    {
      kernel;
      root_path;
      opts;
      conn;
      driver;
      server;
      server_proc;
      fs = Driver.ops driver;
      fault = plane;
      m_recoveries = None;
    }
  in
  (match plane with
  | Some f ->
      (* Backing-store faults hit the server's syscalls only — whichever
         process is currently serving, so recovery's relaunch stays
         covered while app syscalls never are. *)
      Kernel.set_fault kernel
        (Some
           (fun ~op proc ->
             if proc == t.server_proc then Fault.backing_errno f ~op else None))
  | None -> ());
  t

let fs t = t.fs
let obs t = Conn.obs t.conn
let stats t = Conn.stats t.conn
let fault t = t.fault

(* Relaunch the CntrFS server after a crash: fork a replacement process
   (same namespace view), teach it the driver's live ino map, swap the
   handler, revive the connection and reopen the driver's file handles.
   The mount, the driver caches and dirty writeback pages all survive. *)
let recover t =
  let pairs = Driver.ino_paths t.driver in
  let old = t.server_proc in
  let np = Kernel.fork t.kernel old in
  np.Proc.comm <- old.Proc.comm;
  let server =
    Server.create ~sched:(Conn.sched t.conn) ~kernel:t.kernel ~proc:np
      ~root_path:t.root_path ~handle_cache:t.opts.Opts.handle_cache
      ~valid_ns:(t.opts.Opts.entry_timeout_ns, t.opts.Opts.attr_timeout_ns)
      ~passthrough:t.opts.Opts.passthrough ()
  in
  Server.restore server pairs;
  t.server <- server;
  t.server_proc <- np;
  if old.Proc.alive then Kernel.exit t.kernel old 0;
  Conn.set_handler t.conn (Server.handle server);
  Conn.revive t.conn;
  Driver.on_server_restart t.driver;
  let c =
    match t.m_recoveries with
    | Some c -> c
    | None ->
        let c =
          Repro_obs.Metrics.counter
            (Repro_obs.Obs.metrics (Conn.obs t.conn))
            "session.recoveries"
        in
        t.m_recoveries <- Some c;
        c
  in
  Repro_obs.Metrics.incr c

(* Teardown barrier: wait out the background class (pending forgets,
   releases) so metrics snapshots are quiescent. *)
let quiesce t = Conn.quiesce t.conn
