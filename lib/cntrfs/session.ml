(* Wiring: connection + driver + server = a mounted CntrFS.  Used directly
   by the xfstests harness and the benchmarks; the full CNTR attach flow
   (lib/core) builds the same session inside a nested namespace. *)

open Repro_vfs
open Repro_os
open Repro_fuse

type t = {
  conn : Conn.t;
  driver : Driver.t;
  server : Server.t;
  fs : Fsops.t;
}

(* Create a CntrFS session: the server process [server_proc] serves
   [root_path] out of its own mount namespace.  The returned [fs] can be
   mounted anywhere with [Kernel.mount_at].  [sched] is the discrete-event
   scheduler the server's worker fibers run on; benchmarks pass the
   workload's so client tasks and workers interleave, and it defaults to a
   private one over the kernel's clock. *)
let create ~kernel ~server_proc ~root_path ?(opts = Opts.cntr_default) ?(threads = 4) ?sched
    ~budget () =
  let obs = kernel.Kernel.obs in
  let conn =
    Conn.create ~obs ?sched ~clock:kernel.Kernel.clock ~cost:kernel.Kernel.cost ()
  in
  conn.Conn.threads <- threads;
  conn.Conn.max_background <- opts.Opts.max_background;
  let metrics = Repro_obs.Obs.metrics obs in
  Repro_obs.Metrics.set
    (Repro_obs.Metrics.gauge metrics "cntrfs.server.threads")
    (float_of_int threads);
  let server =
    Server.create ~kernel ~proc:server_proc ~root_path
      ~handle_cache:opts.Opts.handle_cache
      ~valid_ns:(opts.Opts.entry_timeout_ns, opts.Opts.attr_timeout_ns) ()
  in
  Conn.set_handler conn (Server.handle server);
  let driver = Driver.create ~conn ~opts ~budget in
  Conn.start_serving conn;
  { conn; driver; server; fs = Driver.ops driver }

let fs t = t.fs
let obs t = Conn.obs t.conn
let stats t = Conn.stats t.conn

(* Teardown barrier: wait out the background class (pending forgets,
   releases) so metrics snapshots are quiescent. *)
let quiesce t = Conn.quiesce t.conn
