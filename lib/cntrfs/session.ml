(* Wiring: connection + driver + server = a mounted CntrFS.  Used directly
   by the xfstests harness and the benchmarks; the full CNTR attach flow
   (lib/core) builds the same session inside a nested namespace. *)

open Repro_vfs
open Repro_os
open Repro_fuse

type t = {
  conn : Conn.t;
  driver : Driver.t;
  server : Server.t;
  fs : Fsops.t;
}

(* Create a CntrFS session: the server process [server_proc] serves
   [root_path] out of its own mount namespace.  The returned [fs] can be
   mounted anywhere with [Kernel.mount_at]. *)
let create ~kernel ~server_proc ~root_path ?(opts = Opts.cntr_default) ?(threads = 4) ~budget () =
  let obs = kernel.Kernel.obs in
  let conn = Conn.create ~obs ~clock:kernel.Kernel.clock ~cost:kernel.Kernel.cost () in
  conn.Conn.threads <- threads;
  let metrics = Repro_obs.Obs.metrics obs in
  Repro_obs.Metrics.set
    (Repro_obs.Metrics.gauge metrics "cntrfs.server.threads")
    (float_of_int threads);
  (* Cumulative per-worker request load: how deep each /dev/fuse reader's
     queue has run over the session. *)
  Repro_obs.Metrics.register_derived metrics "cntrfs.server.queue_depth" (fun () ->
      float_of_int (Repro_obs.Metrics.counter_value metrics "fuse.req.count")
      /. float_of_int (max 1 threads));
  let server =
    Server.create ~kernel ~proc:server_proc ~root_path
      ~handle_cache:opts.Opts.handle_cache
      ~valid_ns:(opts.Opts.entry_timeout_ns, opts.Opts.attr_timeout_ns) ()
  in
  Conn.set_handler conn (Server.handle server);
  let driver = Driver.create ~conn ~opts ~budget in
  Conn.start_serving conn;
  { conn; driver; server; fs = Driver.ops driver }

let fs t = t.fs
let obs t = Conn.obs t.conn
let stats t = Conn.stats t.conn
let set_client_concurrency t n = Driver.set_client_concurrency t.driver n
