(* Deterministic fault injection.  A plan is data; arming it binds per-rule
   trigger state (match counters, a seeded RNG stream per rule) to a clock
   and a metrics registry.  Consult sites pay nothing when no plan is
   armed — the registry counters here are only created on [arm]. *)

open Repro_util

type action =
  | Crash_server
  | Hang of int
  | Delay of int
  | Drop_reply
  | Duplicate_reply
  | Fail of Errno.t

type site =
  | Fuse of string option
  | Backing of string option
  | Disk
  | Proxy of string option
  | Ctrl of string option
type trigger = Nth of int | Every of int | After_ns of int | Prob of float
type rule = { site : site; trigger : trigger; action : action }
type plan = { seed : int; rules : rule list }

let plan ?(seed = 42) rules = { seed; rules }

type retry = {
  deadline_ns : int;
  max_retries : int;
  backoff_ns : int;
  backoff_mult : int;
}

let no_retry = { deadline_ns = 0; max_retries = 0; backoff_ns = 0; backoff_mult = 1 }

let retry_default =
  { deadline_ns = 2_000_000; max_retries = 5; backoff_ns = 100_000; backoff_mult = 2 }

(* Trigger state lives per rule: [ar_count] counts *matching* events (not
   fires), [ar_rng] is an independent deterministic stream so adding a rule
   never perturbs another rule's draws. *)
type armed_rule = { ar_rule : rule; mutable ar_count : int; ar_rng : Rng.t }

type t = {
  f_clock : Clock.t;
  f_metrics : Repro_obs.Metrics.t;
  f_rules : armed_rule list;
  f_armed_ns : int64;
  f_total : Repro_obs.Metrics.counter;
  f_by_label : (string, Repro_obs.Metrics.counter) Hashtbl.t;
}

let arm ~obs ~clock plan =
  let metrics = Repro_obs.Obs.metrics obs in
  {
    f_clock = clock;
    f_metrics = metrics;
    f_rules =
      List.mapi
        (fun i r ->
          { ar_rule = r; ar_count = 0; ar_rng = Rng.create ~seed:(plan.seed + (7919 * i)) })
        plan.rules;
    f_armed_ns = Clock.now_ns clock;
    f_total = Repro_obs.Metrics.counter metrics "fault.injected.total";
    f_by_label = Hashtbl.create 8;
  }

let action_label = function
  | Crash_server -> "crash"
  | Hang _ -> "hang"
  | Delay _ -> "delay"
  | Drop_reply -> "drop"
  | Duplicate_reply -> "dup"
  | Fail e -> "fail." ^ Errno.to_string e

let record t label =
  Repro_obs.Metrics.incr t.f_total;
  let c =
    match Hashtbl.find_opt t.f_by_label label with
    | Some c -> c
    | None ->
        let c = Repro_obs.Metrics.counter t.f_metrics ("fault.injected." ^ label) in
        Hashtbl.replace t.f_by_label label c;
        c
  in
  Repro_obs.Metrics.incr c

let op_matches filter op =
  match filter with None -> true | Some f -> String.equal f op

(* Called once per matching event; advances the rule's counter and decides
   whether the rule fires this time. *)
let fires t ar =
  ar.ar_count <- ar.ar_count + 1;
  match ar.ar_rule.trigger with
  | Nth n -> ar.ar_count = n
  | Every n -> n > 0 && ar.ar_count mod n = 0
  | After_ns ns ->
      Int64.compare (Clock.now_ns t.f_clock) (Int64.add t.f_armed_ns (Int64.of_int ns)) >= 0
  | Prob p -> Rng.float ar.ar_rng < p

let fuse_action t ~op =
  let rec go = function
    | [] -> None
    | ar :: rest -> (
        match ar.ar_rule.site with
        | Fuse f when op_matches f op ->
            if fires t ar then begin
              record t (action_label ar.ar_rule.action);
              Some ar.ar_rule.action
            end
            else go rest
        | _ -> go rest)
  in
  go t.f_rules

let proxy_action t ~op =
  let rec go = function
    | [] -> None
    | ar :: rest -> (
        match ar.ar_rule.site with
        | Proxy f when op_matches f op ->
            if fires t ar then begin
              record t ("proxy." ^ action_label ar.ar_rule.action);
              Some ar.ar_rule.action
            end
            else go rest
        | _ -> go rest)
  in
  go t.f_rules

let ctrl_action t ~op =
  let rec go = function
    | [] -> None
    | ar :: rest -> (
        match ar.ar_rule.site with
        | Ctrl f when op_matches f op ->
            if fires t ar then begin
              record t ("ctrl." ^ action_label ar.ar_rule.action);
              Some ar.ar_rule.action
            end
            else go rest
        | _ -> go rest)
  in
  go t.f_rules

let backing_errno t ~op =
  let rec go = function
    | [] -> None
    | ar :: rest -> (
        match ar.ar_rule.site, ar.ar_rule.action with
        | Backing f, Fail e when op_matches f op ->
            if fires t ar then begin
              record t ("backing." ^ Errno.to_string e);
              Some e
            end
            else go rest
        | _ -> go rest)
  in
  go t.f_rules

let disk_delay_ns t ~op =
  List.fold_left
    (fun acc ar ->
      match ar.ar_rule.site, ar.ar_rule.action with
      | Disk, Delay ns when op_matches None op ->
          if fires t ar then begin
            record t "disk.delay";
            acc + ns
          end
          else acc
      | _ -> acc)
    0 t.f_rules

let injected t = Repro_obs.Metrics.value t.f_total

(* --- plan files -------------------------------------------------------- *)

let errno_of_string = function
  | "EPERM" -> Some Errno.EPERM
  | "ENOENT" -> Some Errno.ENOENT
  | "EINTR" -> Some Errno.EINTR
  | "EIO" -> Some Errno.EIO
  | "EAGAIN" -> Some Errno.EAGAIN
  | "ENOMEM" -> Some Errno.ENOMEM
  | "EACCES" -> Some Errno.EACCES
  | "EBUSY" -> Some Errno.EBUSY
  | "ENOSPC" -> Some Errno.ENOSPC
  | "EROFS" -> Some Errno.EROFS
  | "ENOTCONN" -> Some Errno.ENOTCONN
  | "ETIMEDOUT" -> Some Errno.ETIMEDOUT
  | _ -> None

let kv key s =
  let pre = key ^ "=" in
  if String.length s > String.length pre
     && String.equal (String.sub s 0 (String.length pre)) pre
  then Some (String.sub s (String.length pre) (String.length s - String.length pre))
  else None

let parse_trigger s =
  match kv "nth" s with
  | Some v -> Option.map (fun n -> Nth n) (int_of_string_opt v)
  | None -> (
      match kv "every" s with
      | Some v -> Option.map (fun n -> Every n) (int_of_string_opt v)
      | None -> (
          match kv "after" s with
          | Some v -> Option.map (fun n -> After_ns n) (int_of_string_opt v)
          | None -> (
              match kv "prob" s with
              | Some v -> Option.map (fun p -> Prob p) (float_of_string_opt v)
              | None -> None)))

let parse_action s =
  match s with
  | "crash" -> Some Crash_server
  | "drop" -> Some Drop_reply
  | "dup" -> Some Duplicate_reply
  | _ -> (
      match kv "hang" s with
      | Some v -> Option.map (fun n -> Hang n) (int_of_string_opt v)
      | None -> (
          match kv "delay" s with
          | Some v -> Option.map (fun n -> Delay n) (int_of_string_opt v)
          | None -> (
              match kv "fail" s with
              | Some v -> Option.map (fun e -> Fail e) (errno_of_string v)
              | None -> None)))

let parse_site kind op =
  let filter = if String.equal op "*" then None else Some op in
  match kind with
  | "fuse" -> Some (Fuse filter)
  | "backing" -> Some (Backing filter)
  | "disk" -> Some Disk
  | "proxy" -> Some (Proxy filter)
  | "ctrl" -> Some (Ctrl filter)
  | _ -> None

let parse text =
  let seed = ref 42 and rules = ref [] and retry = ref None and err = ref None in
  let fail lineno msg =
    if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno msg)
  in
  let words s =
    String.split_on_char ' ' s |> List.filter (fun w -> not (String.equal w ""))
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match words (String.trim line) with
      | [] -> ()
      | [ "seed"; v ] -> (
          match int_of_string_opt v with
          | Some n -> seed := n
          | None -> fail lineno "bad seed")
      | "retry" :: fields ->
          let r = ref { retry_default with deadline_ns = retry_default.deadline_ns } in
          List.iter
            (fun f ->
              match kv "deadline" f, kv "max" f, kv "backoff" f, kv "mult" f with
              | Some v, _, _, _ -> (
                  match int_of_string_opt v with
                  | Some n -> r := { !r with deadline_ns = n }
                  | None -> fail lineno "bad deadline")
              | _, Some v, _, _ -> (
                  match int_of_string_opt v with
                  | Some n -> r := { !r with max_retries = n }
                  | None -> fail lineno "bad max")
              | _, _, Some v, _ -> (
                  match int_of_string_opt v with
                  | Some n -> r := { !r with backoff_ns = n }
                  | None -> fail lineno "bad backoff")
              | _, _, _, Some v -> (
                  match int_of_string_opt v with
                  | Some n -> r := { !r with backoff_mult = n }
                  | None -> fail lineno "bad mult")
              | None, None, None, None ->
                  fail lineno (Printf.sprintf "unknown retry field %S" f))
            fields;
          retry := Some !r
      | [ kind; op; trig; act ] -> (
          match parse_site kind op, parse_trigger trig, parse_action act with
          | Some site, Some trigger, Some action ->
              rules := { site; trigger; action } :: !rules
          | None, _, _ -> fail lineno (Printf.sprintf "unknown site %S" kind)
          | _, None, _ -> fail lineno (Printf.sprintf "bad trigger %S" trig)
          | _, _, None -> fail lineno (Printf.sprintf "bad action %S" act))
      | _ -> fail lineno "expected: <site> <op|*> <trigger> <action>")
    (String.split_on_char '\n' text);
  match !err with
  | Some e -> Error e
  | None -> Ok ({ seed = !seed; rules = List.rev !rules }, !retry)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let trigger_to_string = function
  | Nth n -> Printf.sprintf "nth=%d" n
  | Every n -> Printf.sprintf "every=%d" n
  | After_ns n -> Printf.sprintf "after=%d" n
  | Prob p -> Printf.sprintf "prob=%g" p

let action_to_string = function
  | Crash_server -> "crash"
  | Hang n -> Printf.sprintf "hang=%d" n
  | Delay n -> Printf.sprintf "delay=%d" n
  | Drop_reply -> "drop"
  | Duplicate_reply -> "dup"
  | Fail e -> "fail=" ^ Errno.to_string e

let site_to_string = function
  | Fuse None -> "fuse *"
  | Fuse (Some op) -> "fuse " ^ op
  | Backing None -> "backing *"
  | Backing (Some op) -> "backing " ^ op
  | Disk -> "disk *"
  | Proxy None -> "proxy *"
  | Proxy (Some op) -> "proxy " ^ op
  | Ctrl None -> "ctrl *"
  | Ctrl (Some op) -> "ctrl " ^ op

let to_string p =
  let b = Buffer.create 128 in
  Buffer.add_string b (Printf.sprintf "seed %d\n" p.seed);
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s %s %s\n" (site_to_string r.site) (trigger_to_string r.trigger)
           (action_to_string r.action)))
    p.rules;
  Buffer.contents b
