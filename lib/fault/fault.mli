(** Deterministic, seed-driven fault injection (§5.1's "safe to bolt onto a
    production container" claim, made testable).

    A {!plan} is a declarative list of rules — {e at this site, when this
    trigger fires, inject this action} — armed once per session into a {!t}
    that the FUSE connection, the simulated kernel and the VFS disk model
    consult at runtime.  Everything is scheduled on the virtual clock and
    seeded through {!Repro_util.Rng}, so a fixed plan against a fixed
    workload replays bit-for-bit.

    The plane is zero-cost when off: an unarmed session carries no plan, no
    counters are created, and every consult site short-circuits on [None]. *)

open Repro_util

(** What to inject.  [Crash_server] kills the CntrFS server: in-flight and
    queued requests complete with [ENOTCONN], later calls fail immediately
    until {!val:Repro_core.Attach.recover}-style revival.  [Hang ns] stalls
    the serving worker for [ns] virtual nanoseconds (a deadline/timeout
    test); [Delay ns] is a latency spike charged to the request.
    [Drop_reply] performs the work but loses the answer (the caller's
    deadline timer must surface [ETIMEDOUT]); [Duplicate_reply] sends the
    answer twice (the second copy must be discarded).  [Fail e] short
    circuits with errno [e] without reaching the backing store. *)
type action =
  | Crash_server
  | Hang of int
  | Delay of int
  | Drop_reply
  | Duplicate_reply
  | Fail of Errno.t

(** Where to inject.  [Fuse (Some "read")] matches FUSE requests of that
    opcode kind ([None] matches all) as they are served; [Backing] matches
    the server's backing syscalls in the simulated kernel ([Fail] actions
    only — the server sees the errno as if the host fs returned it);
    [Disk] adds [Delay] latency to the VFS disk model; [Proxy] matches
    forwarding-plane events ([Some "accept"] new connections, [Some "data"]
    in-flight transfers, [None] both); [Ctrl] matches control-plane
    requests in the cntrd daemon ([Some "create"] admissions,
    [Some "exec"] command dispatch, [None] both). *)
type site =
  | Fuse of string option
  | Backing of string option
  | Disk
  | Proxy of string option
  | Ctrl of string option

(** When to inject, evaluated per matching event: [Nth n] fires exactly on
    the n-th match; [Every n] on every n-th; [After_ns ns] on every match
    once [ns] virtual nanoseconds have elapsed since arming; [Prob p] with
    probability [p] from the plan's seeded RNG. *)
type trigger = Nth of int | Every of int | After_ns of int | Prob of float

type rule = { site : site; trigger : trigger; action : action }
type plan = { seed : int; rules : rule list }

val plan : ?seed:int -> rule list -> plan

(** Per-request supervision policy for the FUSE connection.  With
    [deadline_ns > 0] every round trip races a virtual-time deadline and
    resolves to [ETIMEDOUT] when it loses.  Timed-out / [EINTR] / [ENOMEM]
    replies to {e idempotent} opcodes (see {!Repro_fuse.Protocol.idempotent})
    are retried up to [max_retries] times with exponential backoff
    ([backoff_ns], multiplied by [backoff_mult] per attempt). *)
type retry = {
  deadline_ns : int;
  max_retries : int;
  backoff_ns : int;
  backoff_mult : int;
}

(** No deadline, no retries — supervision off. *)
val no_retry : retry

(** 2ms deadline, 5 retries, 100µs backoff doubling per attempt. *)
val retry_default : retry

(** An armed plan: per-rule trigger state + fire counters.  Arming creates
    the [fault.injected.total] counter; each fired action additionally
    counts under [fault.injected.<label>]. *)
type t

val arm : obs:Repro_obs.Obs.t -> clock:Clock.t -> plan -> t

(** Consulted by {!Repro_fuse.Conn} as each request reaches a worker. *)
val fuse_action : t -> op:string -> action option

(** Consulted by the simulated kernel for the server's backing syscalls;
    [op] is the syscall name ("open", "stat", "pwrite", ...). *)
val backing_errno : t -> op:string -> Errno.t option

(** Consulted by the forwarding plane ({!Repro_proxy.Proxy}); [op] is
    ["accept"] when a client connection arrives and ["data"] per transfer
    pass.  [Delay]/[Hang] stall the event; [Crash_server]/[Drop_reply]/
    [Fail _] refuse the connection or abort it (bounded [ECONNRESET]). *)
val proxy_action : t -> op:string -> action option

(** Consulted by the cntrd control plane ({!Repro_ctrl.Daemon}); [op] is
    ["create"] at session admission and ["exec"] per dispatched command.
    [Delay]/[Hang] stall the request on the daemon's timeline; [Fail _]
    rejects it with a protocol error carrying the errno; [Crash_server]
    kills the session's FUSE server so recovery is exercised. *)
val ctrl_action : t -> op:string -> action option

(** Extra virtual latency for a disk-model operation ("read", "write",
    "fsync"); sums every firing [Disk]-site [Delay] rule. *)
val disk_delay_ns : t -> op:string -> int

(** Total actions fired so far. *)
val injected : t -> int

val action_label : action -> string

(** {1 Plan files}

    Line-based format for [cntr attach --fault-plan FILE]; ['#'] comments.

    {v
    seed 42
    retry deadline=2000000 max=5 backoff=100000 mult=2
    fuse read nth=3 fail=EIO
    fuse lookup every=5 delay=200000
    fuse * nth=40 crash
    backing open prob=0.1 fail=EINTR
    disk * every=4 delay=1000000
    fuse getattr nth=4 dup
    fuse read nth=5 drop
    fuse lookup nth=2 hang=5000000
    v} *)

val parse : string -> (plan * retry option, string) result
val of_file : string -> (plan * retry option, string) result
val to_string : plan -> string
