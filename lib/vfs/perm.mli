(** Unix permission checks, including a POSIX-ACL subset stored in the
    "system.posix_acl_access" xattr with a textual encoding
    ("u::rwx,u:1000:r-x,g::r--,m::rwx,o::---").  Enough to reproduce the
    semantics xfstests generic/375 probes. *)

open Types

type acl_entry =
  | Acl_user_obj of int
  | Acl_user of int * int
  | Acl_group_obj of int
  | Acl_group of int * int
  | Acl_mask of int
  | Acl_other of int

(** Parse an ACL text; [None] if any entry is malformed or empty. *)
val parse : string -> acl_entry list option

val serialize : acl_entry list -> string

val in_group : cred -> int -> bool

(** POSIX 1003.1e access-check algorithm over parsed entries. *)
val acl_check : cred -> uid:int -> gid:int -> acl_entry list -> int -> bool

(** Classic mode-bit check (owner/group/other). *)
val mode_check : cred -> uid:int -> gid:int -> mode:int -> int -> bool

(** [check cred ~uid ~gid ~mode ?acl want]: does [cred] have the [want]
    bits ({!Types.r_ok}/[w_ok]/[x_ok])?  CAP_DAC_OVERRIDE bypasses; a
    parseable [acl] takes precedence over mode bits. *)
val check : cred -> uid:int -> gid:int -> mode:int -> ?acl:string -> int -> bool

(** Should chmod clear S_ISGID?  Linux clears it when the caller is not a
    member of the owning group and lacks CAP_FSETID — which a privileged
    FUSE server replaying the chmod never does (generic/375). *)
val chmod_clears_setgid : cred -> gid:int -> bool

(** Should writing strip setuid/setgid (file_remove_privs)? *)
val write_clears_suid : cred -> bool
