(** Global page-cache memory budget, shared by several caches (the native
    filesystem's and the FUSE driver's).  Sharing is what produces the
    paper's double-buffering effect: a working set that fits once no longer
    fits when CntrFS caches it a second time (§5.2.2, IOzone). *)

type t

val create : limit_bytes:int -> t
val used : t -> int
val limit : t -> int
val reserve : t -> int -> unit
val release : t -> int -> unit

(** The caches collectively exceed the budget: someone must evict. *)
val over : t -> bool
