(** Sparse file contents, stored as fixed-size chunks so that large sparse
    files only pay for the regions actually touched. *)

type t

val chunk_size : int

val create : unit -> t

(** Logical file size in bytes. *)
val size : t -> int

(** Read up to [len] bytes at [off]; short at EOF, "" past it.  Holes read
    as zeros. *)
val read : t -> off:int -> len:int -> string

(** Write [data] at [off], growing the file as needed; returns the byte
    count written. *)
val write : t -> off:int -> string -> int

(** Shrink (dropping data so re-extension reads zeros) or grow the size. *)
val truncate : t -> int -> unit

(** Bytes of heap actually allocated (for statfs / memory accounting). *)
val allocated : t -> int
