(* The uniform, inode-level filesystem interface.  The simulated kernel
   walks paths component by component and drives any filesystem — native,
   FUSE-backed, procfs, devfs — through this record.  The shape deliberately
   mirrors the FUSE lowlevel API so the FUSE driver is a direct
   implementation of it. *)

open Repro_util
open Types

type fh = int

type t = {
  fs_name : string;
  fs_id : int;
  root : ino;
  (* Resolve [name] in directory [dir]; returns the child inode and its
     attributes (like a FUSE LOOKUP reply). *)
  lookup : cred -> ino -> string -> (ino * stat, Errno.t) result;
  (* The kernel no longer references [ino] (FUSE FORGET). *)
  forget : ino -> unit;
  getattr : ino -> (stat, Errno.t) result;
  setattr : cred -> ino -> setattr -> (stat, Errno.t) result;
  readlink : ino -> (string, Errno.t) result;
  mknod : cred -> ino -> string -> kind:kind -> mode:int -> (stat, Errno.t) result;
  mkdir : cred -> ino -> string -> mode:int -> (stat, Errno.t) result;
  unlink : cred -> ino -> string -> (unit, Errno.t) result;
  rmdir : cred -> ino -> string -> (unit, Errno.t) result;
  symlink : cred -> ino -> string -> target:string -> (stat, Errno.t) result;
  rename : cred -> ino -> string -> ino -> string -> (unit, Errno.t) result;
  link : cred -> src:ino -> dir:ino -> name:string -> (stat, Errno.t) result;
  open_ : cred -> ino -> open_flag list -> (fh, Errno.t) result;
  (* Atomic create+open (FUSE CREATE). *)
  create : cred -> ino -> string -> mode:int -> open_flag list -> (stat * fh, Errno.t) result;
  read : fh -> off:int -> len:int -> (string, Errno.t) result;
  write : cred -> fh -> off:int -> string -> (int, Errno.t) result;
  flush : fh -> (unit, Errno.t) result;
  release : fh -> unit;
  fsync : fh -> (unit, Errno.t) result;
  fallocate : fh -> off:int -> len:int -> (unit, Errno.t) result;
  readdir : cred -> ino -> (dirent list, Errno.t) result;
  setxattr : cred -> ino -> string -> string -> (unit, Errno.t) result;
  getxattr : ino -> string -> (string, Errno.t) result;
  listxattr : ino -> (string list, Errno.t) result;
  removexattr : cred -> ino -> string -> (unit, Errno.t) result;
  statfs : unit -> statfs;
  (* name_to_handle_at support: filesystems whose inodes are not persistent
     (CntrFS) return ENOTSUP — xfstests generic/426. *)
  export_handle : ino -> (string, Errno.t) result;
  open_by_handle : string -> (ino, Errno.t) result;
  (* mmap is required to exec binaries; FUSE makes mmap and O_DIRECT
     mutually exclusive — xfstests generic/391. *)
  supports_mmap : fh -> bool;
  supports_direct_io : bool;
}

let next_fs_id =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter
