(** The uniform, inode-level filesystem interface.  The simulated kernel
    walks paths component by component and drives any filesystem — native,
    FUSE-backed, procfs, devfs — through this record of operations.  The
    shape deliberately mirrors the FUSE lowlevel API, so the FUSE driver is
    a direct implementation of it.  [export_handle]/[open_by_handle] model
    name_to_handle_at (ENOTSUP on CntrFS — generic/426); [supports_mmap]
    and [supports_direct_io] encode the FUSE mmap/O_DIRECT exclusivity
    (generic/391). *)

open Repro_util

type fh = int
type t = {
  fs_name : string;
  fs_id : int;
  root : Types.ino;
  lookup :
    Types.cred ->
    Types.ino ->
    string ->
    (Types.ino * Types.stat, Errno.t) result;
  forget : Types.ino -> unit;
  getattr :
    Types.ino -> (Types.stat, Errno.t) result;
  setattr :
    Types.cred ->
    Types.ino ->
    Types.setattr ->
    (Types.stat, Errno.t) result;
  readlink : Types.ino -> (string, Errno.t) result;
  mknod :
    Types.cred ->
    Types.ino ->
    string ->
    kind:Types.kind ->
    mode:int -> (Types.stat, Errno.t) result;
  mkdir :
    Types.cred ->
    Types.ino ->
    string -> mode:int -> (Types.stat, Errno.t) result;
  unlink :
    Types.cred ->
    Types.ino -> string -> (unit, Errno.t) result;
  rmdir :
    Types.cred ->
    Types.ino -> string -> (unit, Errno.t) result;
  symlink :
    Types.cred ->
    Types.ino ->
    string ->
    target:string -> (Types.stat, Errno.t) result;
  rename :
    Types.cred ->
    Types.ino ->
    string ->
    Types.ino -> string -> (unit, Errno.t) result;
  link :
    Types.cred ->
    src:Types.ino ->
    dir:Types.ino ->
    name:string -> (Types.stat, Errno.t) result;
  open_ :
    Types.cred ->
    Types.ino ->
    Types.open_flag list -> (fh, Errno.t) result;
  create :
    Types.cred ->
    Types.ino ->
    string ->
    mode:int ->
    Types.open_flag list ->
    (Types.stat * fh, Errno.t) result;
  read : fh -> off:int -> len:int -> (string, Errno.t) result;
  write :
    Types.cred ->
    fh -> off:int -> string -> (int, Errno.t) result;
  flush : fh -> (unit, Errno.t) result;
  release : fh -> unit;
  fsync : fh -> (unit, Errno.t) result;
  fallocate : fh -> off:int -> len:int -> (unit, Errno.t) result;
  readdir :
    Types.cred ->
    Types.ino ->
    (Types.dirent list, Errno.t) result;
  setxattr :
    Types.cred ->
    Types.ino ->
    string -> string -> (unit, Errno.t) result;
  getxattr :
    Types.ino -> string -> (string, Errno.t) result;
  listxattr : Types.ino -> (string list, Errno.t) result;
  removexattr :
    Types.cred ->
    Types.ino -> string -> (unit, Errno.t) result;
  statfs : unit -> Types.statfs;
  export_handle : Types.ino -> (string, Errno.t) result;
  open_by_handle : string -> (Types.ino, Errno.t) result;
  supports_mmap : fh -> bool;
  supports_direct_io : bool;
}
val next_fs_id : unit -> int
