(* Global page-cache memory budget.  Several caches (the native
   filesystem's page cache and the FUSE driver's page cache) share one
   budget, which is what produces the paper's double-buffering effect: a
   working set that fits the budget once no longer fits when CntrFS caches
   it a second time (§5.2.2, IOzone 8 GB). *)

type t = {
  limit_bytes : int;
  mutable used_bytes : int;
}

let create ~limit_bytes = { limit_bytes; used_bytes = 0 }

let used t = t.used_bytes
let limit t = t.limit_bytes

let reserve t bytes = t.used_bytes <- t.used_bytes + bytes

let release t bytes = t.used_bytes <- max 0 (t.used_bytes - bytes)

(* True when the caches collectively exceed the budget and someone must
   evict. *)
let over t = t.used_bytes > t.limit_bytes
