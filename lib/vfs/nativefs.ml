(* The native in-memory filesystem: full POSIX-style semantics (hardlinks,
   symlinks, sticky/setgid rules, xattrs, a POSIX-ACL subset, O_DIRECT,
   RLIMIT_FSIZE enforcement) over a pluggable backing store.  With
   [Store.Ram] it behaves like tmpfs; with [Store.Ssd] it models ext4 on an
   SSD volume, charging page-cache and disk costs to the virtual clock. *)

open Repro_util
open Types

type handle = {
  h_fh : int;
  h_ino : int;
  h_readable : bool;
  h_writable : bool;
  h_append : bool;
  h_direct : bool;
  h_sync : bool;
  (* O_DIRECT + O_NONBLOCK models an AIO submission path: a full device
     queue hides the per-I/O latency *)
  h_async : bool;
  mutable h_open : bool;
}

type t = {
  name : string;
  clock : Clock.t;
  cost : Cost.t;
  store : Store.t;
  inodes : (int, Inode.t) Hashtbl.t;
  handles : (int, handle) Hashtbl.t;
  mutable next_ino : int;
  mutable next_fh : int;
  root_ino : int;
  fs_id : int;
  max_links : int;
  total_blocks : int;
  readonly : bool;
}

let acl_xattr = "system.posix_acl_access"

let create ?metrics ?(name = "nativefs") ?(readonly = false) ~clock ~cost store_profile () =
  let store = Store.create ?metrics ~clock ~cost store_profile in
  let t =
    {
      name;
      clock;
      cost;
      store;
      inodes = Hashtbl.create 1024;
      handles = Hashtbl.create 64;
      next_ino = 2;
      next_fh = 1;
      root_ino = 1;
      fs_id = Fsops.next_fs_id ();
      max_links = 65000;
      total_blocks = 25 * 1024 * 1024; (* 100 GiB of 4 KiB blocks *)
      readonly;
    }
  in
  let root =
    Inode.create ~ino:t.root_ino
      ~payload:(Inode.Dir { entries = Hashtbl.create 16; parent = t.root_ino })
      ~mode:0o755 ~uid:0 ~gid:0 ~now:(Clock.now_ns clock)
  in
  Hashtbl.replace t.inodes t.root_ino root;
  t

let store t = t.store
let clock t = t.clock

let now t = Clock.now_ns t.clock
let charge_meta t = Clock.consume_int t.clock t.cost.Cost.dentry_ns

(* namespace mutations additionally pay the journal *)
let charge_mutation t =
  charge_meta t;
  Store.charge_journal t.store

let get t ino =
  match Hashtbl.find_opt t.inodes ino with
  | Some i -> Ok i
  | None -> Error Errno.ENOENT

let get_dir t ino =
  match get t ino with
  | Error _ as e -> e
  | Ok i -> if Inode.is_dir i then Ok i else Error Errno.ENOTDIR

let acl_of inode = Hashtbl.find_opt inode.Inode.xattrs acl_xattr

let check_perm cred inode want =
  if
    Perm.check cred ~uid:inode.Inode.uid ~gid:inode.Inode.gid
      ~mode:inode.Inode.mode ?acl:(acl_of inode) want
  then Ok ()
  else Error Errno.EACCES

(* May [cred] delete [child] out of [dir]?  Requires w+x on the directory;
   with the sticky bit set, additionally ownership of the entry or the
   directory (or CAP_FOWNER). *)
let check_delete cred dir child =
  match check_perm cred dir (w_ok lor x_ok) with
  | Error _ as e -> e
  | Ok () ->
      if
        dir.Inode.mode land s_isvtx <> 0
        && (not cred.cap_fowner)
        && cred.uid <> child.Inode.uid
        && cred.uid <> dir.Inode.uid
      then Error Errno.EPERM
      else Ok ()

let valid_name name =
  name <> "" && name <> "." && name <> ".."
  && not (String.contains name '/')

let name_error name =
  if String.length name > 255 then Errno.ENAMETOOLONG else Errno.EINVAL

let alloc_ino t =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  ino

(* Create a new child inode in [dir], inheriting gid (and for directories
   the setgid bit) from a setgid parent. *)
let new_child t cred dir name payload mode =
  let dir_entries = Inode.dir_entries dir in
  let setgid_dir = dir.Inode.mode land s_isgid <> 0 in
  let gid = if setgid_dir then dir.Inode.gid else cred.gid in
  let is_dir = match payload with Inode.Dir _ -> true | _ -> false in
  let mode = if setgid_dir && is_dir then mode lor s_isgid else mode in
  let ino = alloc_ino t in
  let inode = Inode.create ~ino ~payload ~mode ~uid:cred.uid ~gid ~now:(now t) in
  Hashtbl.replace t.inodes ino inode;
  Hashtbl.replace dir_entries name ino;
  if is_dir then dir.Inode.nlink <- dir.Inode.nlink + 1;
  dir.Inode.mtime <- now t;
  dir.Inode.ctime <- now t;
  inode

(* Reclaim an inode once it has no links and no open handles. *)
let maybe_reap t inode =
  if inode.Inode.nlink = 0 && inode.Inode.open_count = 0 && not (Inode.is_dir inode)
  then begin
    Store.discard t.store ~ino:inode.Inode.ino;
    Hashtbl.remove t.inodes inode.Inode.ino
  end

let ro_guard t = if t.readonly then Error Errno.EROFS else Ok ()

let ( let* ) = Result.bind

(* --- fsops implementations ------------------------------------------- *)

let lookup t cred dir_ino name =
  charge_meta t;
  let* dir = get_dir t dir_ino in
  let* () = check_perm cred dir x_ok in
  if name = "." then Ok (dir_ino, Inode.stat dir)
  else if name = ".." then
    let parent = Inode.dir_parent dir in
    let* p = get t parent in
    Ok (parent, Inode.stat p)
  else
    match Hashtbl.find_opt (Inode.dir_entries dir) name with
    | None -> Error Errno.ENOENT
    | Some ino ->
        let* inode = get t ino in
        Ok (ino, Inode.stat inode)

let getattr t ino =
  let* inode = get t ino in
  Ok (Inode.stat inode)

let setattr t cred ino (sa : setattr) =
  let* () = ro_guard t in
  let* inode = get t ino in
  charge_meta t;
  (* chmod *)
  let* () =
    match sa.sa_mode with
    | None -> Ok ()
    | Some mode ->
        if cred.cap_fowner || cred.uid = inode.Inode.uid then begin
          let mode =
            if Perm.chmod_clears_setgid cred ~gid:inode.Inode.gid then
              mode land lnot s_isgid
            else mode
          in
          inode.Inode.mode <- mode land 0o7777;
          inode.Inode.ctime <- now t;
          Ok ()
        end
        else Error Errno.EPERM
  in
  (* chown *)
  let* () =
    match (sa.sa_uid, sa.sa_gid) with
    | None, None -> Ok ()
    | uid_opt, gid_opt ->
        let uid_change =
          match uid_opt with Some u when u <> inode.Inode.uid -> true | _ -> false
        in
        let allowed =
          cred.cap_chown
          || ((not uid_change)
             && cred.uid = inode.Inode.uid
             && match gid_opt with
                | None -> true
                | Some g -> g = inode.Inode.gid || Perm.in_group cred g)
        in
        if not allowed then Error Errno.EPERM
        else begin
          Option.iter (fun u -> inode.Inode.uid <- u) uid_opt;
          Option.iter (fun g -> inode.Inode.gid <- g) gid_opt;
          (* chown strips setuid/setgid on regular files for unprivileged
             callers — even when the ids do not actually change. *)
          if (not cred.cap_fsetid) && Inode.kind inode = Reg then
            inode.Inode.mode <- inode.Inode.mode land 0o1777;
          inode.Inode.ctime <- now t;
          Ok ()
        end
  in
  (* truncate *)
  let* () =
    match sa.sa_size with
    | None -> Ok ()
    | Some size ->
        if size < 0 then Error Errno.EINVAL
        else begin
          match inode.Inode.payload with
          | Inode.Dir _ -> Error Errno.EISDIR
          | Inode.Reg data ->
              let* () =
                if cred.uid = inode.Inode.uid || cred.cap_dac_override then Ok ()
                else check_perm cred inode w_ok
              in
              let* () =
                match cred.rlimit_fsize with
                | Some limit when size > limit -> Error Errno.EFBIG
                | _ -> Ok ()
              in
              Fdata.truncate data size;
              Store.invalidate t.store ~ino;
              inode.Inode.mtime <- now t;
              inode.Inode.ctime <- now t;
              Ok ()
          | _ -> Error Errno.EINVAL
        end
  in
  (* utimens *)
  let* () =
    match (sa.sa_atime, sa.sa_mtime) with
    | None, None -> Ok ()
    | at, mt ->
        let* () =
          if cred.cap_fowner || cred.uid = inode.Inode.uid then Ok ()
          else check_perm cred inode w_ok
        in
        Option.iter (fun v -> inode.Inode.atime <- v) at;
        Option.iter (fun v -> inode.Inode.mtime <- v) mt;
        inode.Inode.ctime <- now t;
        Ok ()
  in
  Ok (Inode.stat inode)

let readlink t ino =
  let* inode = get t ino in
  match inode.Inode.payload with
  | Inode.Symlink target ->
      charge_meta t;
      Ok target
  | _ -> Error Errno.EINVAL

let mknod t cred dir_ino name ~kind ~mode =
  let* () = ro_guard t in
  if not (valid_name name) || String.length name > 255 then Error (name_error name)
  else
    let* dir = get_dir t dir_ino in
    let* () = check_perm cred dir (w_ok lor x_ok) in
    if Hashtbl.mem (Inode.dir_entries dir) name then Error Errno.EEXIST
    else begin
      charge_mutation t;
      let payload =
        match kind with
        | Reg -> Inode.Reg (Fdata.create ())
        | Fifo -> Inode.Fifo
        | Sock -> Inode.Sock
        | Chr (a, b) -> Inode.Chr (a, b)
        | Blk (a, b) -> Inode.Blk (a, b)
        | Dir | Symlink -> invalid_arg "mknod: use mkdir/symlink"
      in
      let inode = new_child t cred dir name payload mode in
      Ok (Inode.stat inode)
    end

let mkdir t cred dir_ino name ~mode =
  let* () = ro_guard t in
  if not (valid_name name) || String.length name > 255 then Error (name_error name)
  else
    let* dir = get_dir t dir_ino in
    let* () = check_perm cred dir (w_ok lor x_ok) in
    if Hashtbl.mem (Inode.dir_entries dir) name then Error Errno.EEXIST
    else begin
      charge_mutation t;
      let payload = Inode.Dir { entries = Hashtbl.create 8; parent = dir_ino } in
      let inode = new_child t cred dir name payload mode in
      Ok (Inode.stat inode)
    end

let unlink t cred dir_ino name =
  let* () = ro_guard t in
  let* dir = get_dir t dir_ino in
  match Hashtbl.find_opt (Inode.dir_entries dir) name with
  | None -> Error Errno.ENOENT
  | Some ino ->
      let* inode = get t ino in
      if Inode.is_dir inode then Error Errno.EISDIR
      else
        let* () = check_delete cred dir inode in
        charge_mutation t;
        Hashtbl.remove (Inode.dir_entries dir) name;
        inode.Inode.nlink <- inode.Inode.nlink - 1;
        inode.Inode.ctime <- now t;
        dir.Inode.mtime <- now t;
        dir.Inode.ctime <- now t;
        maybe_reap t inode;
        Ok ()

let rmdir t cred dir_ino name =
  let* () = ro_guard t in
  let* dir = get_dir t dir_ino in
  match Hashtbl.find_opt (Inode.dir_entries dir) name with
  | None -> Error Errno.ENOENT
  | Some ino ->
      let* inode = get t ino in
      if not (Inode.is_dir inode) then Error Errno.ENOTDIR
      else if Hashtbl.length (Inode.dir_entries inode) > 0 then
        Error Errno.ENOTEMPTY
      else
        let* () = check_delete cred dir inode in
        charge_mutation t;
        Hashtbl.remove (Inode.dir_entries dir) name;
        dir.Inode.nlink <- dir.Inode.nlink - 1;
        dir.Inode.mtime <- now t;
        dir.Inode.ctime <- now t;
        Hashtbl.remove t.inodes ino;
        Ok ()

let symlink t cred dir_ino name ~target =
  let* () = ro_guard t in
  if not (valid_name name) || String.length name > 255 then Error (name_error name)
  else
    let* dir = get_dir t dir_ino in
    let* () = check_perm cred dir (w_ok lor x_ok) in
    if Hashtbl.mem (Inode.dir_entries dir) name then Error Errno.EEXIST
    else begin
      charge_mutation t;
      let inode = new_child t cred dir name (Inode.Symlink target) 0o777 in
      Ok (Inode.stat inode)
    end

(* Is [candidate] equal to or an ancestor (directory-wise) of [ino]? *)
let is_ancestor t ~candidate ~of_ino =
  let rec go ino =
    if ino = candidate then true
    else if ino = t.root_ino then false
    else
      match Hashtbl.find_opt t.inodes ino with
      | Some inode when Inode.is_dir inode ->
          let parent = Inode.dir_parent inode in
          if parent = ino then false else go parent
      | _ -> false
  in
  go of_ino

let rename t cred src_dir_ino src_name dst_dir_ino dst_name =
  let* () = ro_guard t in
  if not (valid_name dst_name) || String.length dst_name > 255 then Error (name_error dst_name)
  else
    let* src_dir = get_dir t src_dir_ino in
    let* dst_dir = get_dir t dst_dir_ino in
    match Hashtbl.find_opt (Inode.dir_entries src_dir) src_name with
    | None -> Error Errno.ENOENT
    | Some src_ino ->
        let* src = get t src_ino in
        let* () = check_delete cred src_dir src in
        let* () = check_perm cred dst_dir (w_ok lor x_ok) in
        (* Cannot move a directory into its own subtree. *)
        if Inode.is_dir src && is_ancestor t ~candidate:src_ino ~of_ino:dst_dir_ino
        then Error Errno.EINVAL
        else begin
          charge_mutation t;
          let replace_ok =
            match Hashtbl.find_opt (Inode.dir_entries dst_dir) dst_name with
            | None -> Ok None
            | Some dst_ino when dst_ino = src_ino -> Ok None (* same file: no-op *)
            | Some dst_ino ->
                let* dst = get t dst_ino in
                if Inode.is_dir dst then
                  if not (Inode.is_dir src) then Error Errno.EISDIR
                  else if Hashtbl.length (Inode.dir_entries dst) > 0 then
                    Error Errno.ENOTEMPTY
                  else Ok (Some dst)
                else if Inode.is_dir src then Error Errno.ENOTDIR
                else Ok (Some dst)
          in
          let* replaced = replace_ok in
          (match replaced with
          | Some dst when Inode.is_dir dst ->
              dst_dir.Inode.nlink <- dst_dir.Inode.nlink - 1;
              Hashtbl.remove t.inodes dst.Inode.ino
          | Some dst ->
              dst.Inode.nlink <- dst.Inode.nlink - 1;
              dst.Inode.ctime <- now t;
              maybe_reap t dst
          | None -> ());
          Hashtbl.remove (Inode.dir_entries src_dir) src_name;
          Hashtbl.replace (Inode.dir_entries dst_dir) dst_name src_ino;
          if Inode.is_dir src && src_dir_ino <> dst_dir_ino then begin
            src_dir.Inode.nlink <- src_dir.Inode.nlink - 1;
            dst_dir.Inode.nlink <- dst_dir.Inode.nlink + 1;
            Inode.set_dir_parent src dst_dir_ino
          end;
          let ts = now t in
          src_dir.Inode.mtime <- ts;
          src_dir.Inode.ctime <- ts;
          dst_dir.Inode.mtime <- ts;
          dst_dir.Inode.ctime <- ts;
          src.Inode.ctime <- ts;
          Ok ()
        end

let link t cred ~src ~dir ~name =
  let* () = ro_guard t in
  if not (valid_name name) || String.length name > 255 then Error (name_error name)
  else
    let* src_inode = get t src in
    if Inode.is_dir src_inode then Error Errno.EPERM
    else if src_inode.Inode.nlink >= t.max_links then Error Errno.EMLINK
    else
      let* dir_inode = get_dir t dir in
      let* () = check_perm cred dir_inode (w_ok lor x_ok) in
      if Hashtbl.mem (Inode.dir_entries dir_inode) name then Error Errno.EEXIST
      else begin
        charge_mutation t;
        Hashtbl.replace (Inode.dir_entries dir_inode) name src;
        src_inode.Inode.nlink <- src_inode.Inode.nlink + 1;
        src_inode.Inode.ctime <- now t;
        dir_inode.Inode.mtime <- now t;
        dir_inode.Inode.ctime <- now t;
        Ok (Inode.stat src_inode)
      end

let alloc_handle t inode flags =
  let fh = t.next_fh in
  t.next_fh <- fh + 1;
  let h =
    {
      h_fh = fh;
      h_ino = inode.Inode.ino;
      h_readable = flag_readable flags;
      h_writable = flag_writable flags;
      h_append = List.mem O_APPEND flags;
      h_direct = List.mem O_DIRECT flags;
      h_sync = List.mem O_SYNC flags;
      h_async = List.mem O_DIRECT flags && List.mem O_NONBLOCK flags;
      h_open = true;
    }
  in
  Hashtbl.replace t.handles fh h;
  inode.Inode.open_count <- inode.Inode.open_count + 1;
  fh

let open_ t cred ino flags =
  let* inode = get t ino in
  charge_meta t;
  let want =
    (if flag_readable flags then r_ok else 0)
    lor if flag_writable flags then w_ok else 0
  in
  let* () = check_perm cred inode want in
  let* () =
    if List.mem O_DIRECTORY flags && not (Inode.is_dir inode) then
      Error Errno.ENOTDIR
    else Ok ()
  in
  let* () =
    if Inode.is_dir inode && flag_writable flags then Error Errno.EISDIR
    else Ok ()
  in
  let* () =
    if flag_writable flags then ro_guard t else Ok ()
  in
  let* () =
    if List.mem O_TRUNC flags && flag_writable flags then begin
      match inode.Inode.payload with
      | Inode.Reg data ->
          Fdata.truncate data 0;
          Store.invalidate t.store ~ino;
          inode.Inode.mtime <- now t;
          inode.Inode.ctime <- now t;
          Ok ()
      | _ -> Ok ()
    end
    else Ok ()
  in
  Ok (alloc_handle t inode flags)

let create_file t cred dir_ino name ~mode flags =
  let* () = ro_guard t in
  if not (valid_name name) || String.length name > 255 then Error (name_error name)
  else
    let* dir = get_dir t dir_ino in
    let* () = check_perm cred dir (w_ok lor x_ok) in
    if Hashtbl.mem (Inode.dir_entries dir) name then Error Errno.EEXIST
    else begin
      charge_mutation t;
      let inode = new_child t cred dir name (Inode.Reg (Fdata.create ())) mode in
      let fh = alloc_handle t inode flags in
      Ok (Inode.stat inode, fh)
    end

let handle t fh =
  match Hashtbl.find_opt t.handles fh with
  | Some h when h.h_open -> Ok h
  | _ -> Error Errno.EBADF

let read t fh ~off ~len =
  let* h = handle t fh in
  if not h.h_readable then Error Errno.EBADF
  else
    let* inode = get t h.h_ino in
    match inode.Inode.payload with
    | Inode.Dir _ -> Error Errno.EISDIR
    | Inode.Reg data ->
        let result = Fdata.read data ~off ~len in
        let n = String.length result in
        if h.h_direct then Store.read_direct t.store ~len:n ~async:h.h_async
        else Store.read t.store ~ino:h.h_ino ~off ~len:n ~file_size:(Fdata.size data) ();
        (* copy out to userspace *)
        Clock.consume_int t.clock (Cost.copy_cost t.cost n);
        inode.Inode.atime <- now t;
        Ok result
    | _ -> Error Errno.EINVAL

let write t cred fh ~off data =
  let* h = handle t fh in
  if not h.h_writable then Error Errno.EBADF
  else
    let* inode = get t h.h_ino in
    match inode.Inode.payload with
    | Inode.Dir _ -> Error Errno.EISDIR
    | Inode.Reg fdata ->
        let len = String.length data in
        let off = if h.h_append then Fdata.size fdata else off in
        let* () =
          match cred.rlimit_fsize with
          | Some limit when off + len > limit -> Error Errno.EFBIG
          | _ -> Ok ()
        in
        (* file_remove_privs: writing strips setuid/setgid. *)
        if
          Perm.write_clears_suid cred
          && inode.Inode.mode land (s_isuid lor s_isgid) <> 0
        then inode.Inode.mode <- inode.Inode.mode land 0o1777;
        let n = Fdata.write fdata ~off data in
        (* copy in from userspace *)
        Clock.consume_int t.clock (Cost.copy_cost t.cost n);
        if h.h_direct then Store.write_direct t.store ~len:n ~async:h.h_async
        else begin
          (* ext4 write path: block reservation + journal handle per call *)
          Store.charge_write_path t.store;
          Store.write t.store ~ino:h.h_ino ~off ~len:n ~sync:h.h_sync
        end;
        inode.Inode.mtime <- now t;
        inode.Inode.ctime <- now t;
        Ok n
    | _ -> Error Errno.EINVAL

let flush _t _fh = Ok ()

let release t fh =
  match Hashtbl.find_opt t.handles fh with
  | None -> ()
  | Some h ->
      if h.h_open then begin
        h.h_open <- false;
        Hashtbl.remove t.handles fh;
        match Hashtbl.find_opt t.inodes h.h_ino with
        | Some inode ->
            inode.Inode.open_count <- inode.Inode.open_count - 1;
            maybe_reap t inode
        | None -> ()
      end

let fsync t fh =
  let* h = handle t fh in
  Store.fsync t.store ~ino:h.h_ino;
  Ok ()

let fallocate t fh ~off ~len =
  let* h = handle t fh in
  if not h.h_writable then Error Errno.EBADF
  else
    let* inode = get t h.h_ino in
    match inode.Inode.payload with
    | Inode.Reg data ->
        if off + len > Fdata.size data then Fdata.truncate data (off + len);
        charge_meta t;
        Ok ()
    | _ -> Error Errno.EINVAL

let readdir t cred ino =
  let* dir = get_dir t ino in
  let* () = check_perm cred dir r_ok in
  let kind_of i =
    match Hashtbl.find_opt t.inodes i with
    | Some inode -> Inode.kind inode
    | None -> Reg
  in
  let entries =
    Hashtbl.fold
      (fun name child acc ->
        charge_meta t;
        { d_ino = child; d_name = name; d_kind = kind_of child } :: acc)
      (Inode.dir_entries dir) []
  in
  let dot = { d_ino = ino; d_name = "."; d_kind = Dir } in
  let dotdot = { d_ino = Inode.dir_parent dir; d_name = ".."; d_kind = Dir } in
  let sorted = List.sort (fun a b -> compare a.d_name b.d_name) entries in
  Ok (dot :: dotdot :: sorted)

let xattr_set_allowed cred inode name =
  if String.length name > 6 && String.sub name 0 7 = "trusted" then
    cred.cap_dac_override
  else if
    String.length name >= 8 && String.sub name 0 8 = "security"
  then cred.cap_dac_override || cred.uid = inode.Inode.uid
  else cred.cap_dac_override || cred.uid = inode.Inode.uid

let setxattr t cred ino name value =
  let* () = ro_guard t in
  let* inode = get t ino in
  if not (xattr_set_allowed cred inode name) then Error Errno.EPERM
  else begin
    charge_meta t;
    Hashtbl.replace inode.Inode.xattrs name value;
    inode.Inode.ctime <- now t;
    Ok ()
  end

let getxattr t ino name =
  let* inode = get t ino in
  charge_meta t;
  match Hashtbl.find_opt inode.Inode.xattrs name with
  | Some v -> Ok v
  | None -> Error Errno.ENODATA

let listxattr t ino =
  let* inode = get t ino in
  charge_meta t;
  Ok (Hashtbl.fold (fun k _ acc -> k :: acc) inode.Inode.xattrs [] |> List.sort compare)

let removexattr t cred ino name =
  let* () = ro_guard t in
  let* inode = get t ino in
  if not (xattr_set_allowed cred inode name) then Error Errno.EPERM
  else if not (Hashtbl.mem inode.Inode.xattrs name) then Error Errno.ENODATA
  else begin
    charge_meta t;
    Hashtbl.remove inode.Inode.xattrs name;
    inode.Inode.ctime <- now t;
    Ok ()
  end

let statfs t () =
  let used =
    Hashtbl.fold
      (fun _ inode acc ->
        match inode.Inode.payload with
        | Inode.Reg d -> acc + Fdata.allocated d
        | _ -> acc + 4096)
      t.inodes 0
  in
  {
    f_fsname = t.name;
    f_bsize = 4096;
    f_blocks = t.total_blocks;
    f_bfree = max 0 (t.total_blocks - (used / 4096));
    f_files = Hashtbl.length t.inodes;
  }

let export_handle t ino =
  let* inode = get t ino in
  Ok (Printf.sprintf "%d:%d" t.fs_id inode.Inode.ino)

let open_by_handle t handle_str =
  match String.split_on_char ':' handle_str with
  | [ fsid; ino ] -> (
      match (int_of_string_opt fsid, int_of_string_opt ino) with
      | Some fsid, Some ino when fsid = t.fs_id ->
          if Hashtbl.mem t.inodes ino then Ok ino else Error Errno.ENOENT
      | _ -> Error Errno.EINVAL)
  | _ -> Error Errno.EINVAL

(* Direct access to the inode table, for the fanotify recorder and tests. *)
let find_inode t ino = Hashtbl.find_opt t.inodes ino

let ops t : Fsops.t = {
  fs_name = t.name;
  fs_id = t.fs_id;
  root = t.root_ino;
  lookup = lookup t;
  forget = (fun _ -> ());
  getattr = getattr t;
  setattr = setattr t;
  readlink = readlink t;
  mknod = mknod t;
  mkdir = mkdir t;
  unlink = unlink t;
  rmdir = rmdir t;
  symlink = symlink t;
  rename = rename t;
  link = link t;
  open_ = open_ t;
  create = create_file t;
  read = read t;
  write = write t;
  flush = flush t;
  release = release t;
  fsync = fsync t;
  fallocate = fallocate t;
  readdir = readdir t;
  setxattr = setxattr t;
  getxattr = getxattr t;
  listxattr = listxattr t;
  removexattr = removexattr t;
  statfs = statfs t;
  export_handle = export_handle t;
  open_by_handle = open_by_handle t;
  supports_mmap = (fun _ -> true);
  supports_direct_io = true;
}
