(* Unix permission checks, including a POSIX-ACL subset.

   ACLs are stored in the "system.posix_acl_access" xattr with a textual
   encoding: comma-separated entries of the forms
     u::rwx    owner          g::r-x    owning group
     u:UID:rwx named user     g:GID:rwx named group
     m::rwx    mask           o::r--    other
   This is enough to reproduce the semantics xfstests generic/375 probes:
   whether chmod clears the setgid bit when the caller is not a member of
   the owning group of a file carrying an ACL. *)

open Types

type acl_entry =
  | Acl_user_obj of int
  | Acl_user of int * int
  | Acl_group_obj of int
  | Acl_group of int * int
  | Acl_mask of int
  | Acl_other of int

let perm_of_string s =
  if String.length s <> 3 then None
  else
    let bit i c v = if s.[i] = c then v else if s.[i] = '-' then 0 else -1 in
    let r = bit 0 'r' 4 and w = bit 1 'w' 2 and x = bit 2 'x' 1 in
    if r < 0 || w < 0 || x < 0 then None else Some (r lor w lor x)

let string_of_perm p =
  let c b ch = if p land b <> 0 then ch else '-' in
  Printf.sprintf "%c%c%c" (c 4 'r') (c 2 'w') (c 1 'x')

let parse_entry s =
  match String.split_on_char ':' s with
  | [ "u"; ""; p ] -> Option.map (fun p -> Acl_user_obj p) (perm_of_string p)
  | [ "u"; id; p ] -> (
      match (int_of_string_opt id, perm_of_string p) with
      | Some id, Some p -> Some (Acl_user (id, p))
      | _ -> None)
  | [ "g"; ""; p ] -> Option.map (fun p -> Acl_group_obj p) (perm_of_string p)
  | [ "g"; id; p ] -> (
      match (int_of_string_opt id, perm_of_string p) with
      | Some id, Some p -> Some (Acl_group (id, p))
      | _ -> None)
  | [ "m"; ""; p ] -> Option.map (fun p -> Acl_mask p) (perm_of_string p)
  | [ "o"; ""; p ] -> Option.map (fun p -> Acl_other p) (perm_of_string p)
  | _ -> None

(* Parse an ACL text; [None] if any entry is malformed. *)
let parse s =
  let entries = String.split_on_char ',' s |> List.map String.trim in
  let parsed = List.filter_map parse_entry entries in
  if List.length parsed = List.length entries && entries <> [] then Some parsed
  else None

let serialize entries =
  entries
  |> List.map (function
       | Acl_user_obj p -> "u::" ^ string_of_perm p
       | Acl_user (id, p) -> Printf.sprintf "u:%d:%s" id (string_of_perm p)
       | Acl_group_obj p -> "g::" ^ string_of_perm p
       | Acl_group (id, p) -> Printf.sprintf "g:%d:%s" id (string_of_perm p)
       | Acl_mask p -> "m::" ^ string_of_perm p
       | Acl_other p -> "o::" ^ string_of_perm p)
  |> String.concat ","

let in_group cred gid = cred.gid = gid || List.mem gid cred.groups

(* POSIX 1003.1e ACL access-check algorithm. *)
let acl_check cred ~uid ~gid acl want =
  let mask =
    List.fold_left
      (fun acc e -> match e with Acl_mask m -> Some m | _ -> acc)
      None acl
  in
  let apply_mask p = match mask with Some m -> p land m | None -> p in
  let find f = List.find_map f acl in
  if cred.uid = uid then
    match find (function Acl_user_obj p -> Some p | _ -> None) with
    | Some p -> p land want = want
    | None -> false
  else
    match
      find (function Acl_user (id, p) when id = cred.uid -> Some p | _ -> None)
    with
    | Some p -> apply_mask p land want = want
    | None -> (
        (* Any matching group entry granting access wins. *)
        let group_entries =
          List.filter_map
            (function
              | Acl_group_obj p when in_group cred gid -> Some p
              | Acl_group (id, p) when in_group cred id -> Some p
              | _ -> None)
            acl
        in
        match group_entries with
        | [] -> (
            match find (function Acl_other p -> Some p | _ -> None) with
            | Some p -> p land want = want
            | None -> false)
        | ps -> List.exists (fun p -> apply_mask p land want = want) ps)

(* Classic mode-bit check. *)
let mode_check cred ~uid ~gid ~mode want =
  let shift =
    if cred.uid = uid then 6 else if in_group cred gid then 3 else 0
  in
  (mode lsr shift) land want = want

(* Does [cred] have [want] (a mask of r_ok/w_ok/x_ok) on a file with the
   given owner, group, mode and optional ACL xattr value? *)
let check cred ~uid ~gid ~mode ?acl want =
  if cred.cap_dac_override then true
  else
    match Option.bind acl parse with
    | Some entries -> acl_check cred ~uid ~gid entries want
    | None -> mode_check cred ~uid ~gid ~mode want

(* Should chmod clear the setgid bit?  Linux clears S_ISGID on chmod when
   the caller is not a member of the file's owning group and lacks
   CAP_FSETID.  (A FUSE passthrough that replays the chmod under the
   server's credential loses this — xfstests generic/375.) *)
let chmod_clears_setgid cred ~gid =
  (not cred.cap_fsetid) && not (in_group cred gid)

(* Should writing to the file strip setuid/setgid (file_remove_privs)? *)
let write_clears_suid cred = not cred.cap_fsetid
