(** Backing-store cost model for the native filesystem.  [Ram] models
    tmpfs (the page cache *is* the storage); [Ssd] models ext4 on an SSD
    volume: a write-back page cache over a device with fixed latency and
    per-KiB streaming costs, sequential readahead, a foreground per-inode
    dirty threshold (balance_dirty_pages), a global dirty ceiling, and
    periodic *background* writeback that is free for light writers. *)

open Repro_util

type profile =
  | Ram
  | Ssd of { cache : Page_cache.t; flush_pages : int }

(** Immutable snapshot of the store's registry counters, taken by
    {!stats}. *)
type stats = {
  disk_read_ios : int;
  disk_read_bytes : int;
  disk_write_ios : int;
  disk_write_bytes : int;
}

type t

(** Device I/O lands in [metrics] (a private registry when omitted) under
    [vfs.disk.read_ios|read_bytes|write_ios|write_bytes]; only [Ssd]
    profiles ever increment them. *)
val create : ?metrics:Repro_obs.Metrics.t -> clock:Clock.t -> cost:Cost.t -> profile -> t

(** Fresh snapshot of the registry counters. *)
val stats : t -> stats
val cache : t -> Page_cache.t option

(** Install (or clear) a fault-injection latency hook: extra device
    nanoseconds charged on entry to {!read} / {!write} / {!fsync}, keyed by
    the operation name ("read" / "write" / "fsync").  The fault plane's
    [Disk] rules use this to model latency spikes; no hook costs one
    branch. *)
val set_fault_delay : t -> (op:string -> int) option -> unit

(** Charge a read: page-cache hits cost memory copies; a miss triggers a
    readahead window (one I/O of up to 32 pages, clamped to [file_size]). *)
val read : t -> ino:int -> off:int -> len:int -> ?file_size:int -> unit -> unit

(** Charge a buffered write; [sync] forces the inode's dirty pages out. *)
val write : t -> ino:int -> off:int -> len:int -> sync:bool -> unit

(** O_DIRECT I/O, bypassing the cache.  [async] models a full device queue
    (AIO): per-I/O latency is hidden and only streaming cost is charged. *)
val write_direct : t -> len:int -> async:bool -> unit

val read_direct : t -> len:int -> async:bool -> unit

(** Flush an inode + charge the device write barrier. *)
val fsync : t -> ino:int -> unit

(** Flush and drop an inode's cached pages. *)
val invalidate : t -> ino:int -> unit

(** Drop an inode's cached pages without writeback (file deleted). *)
val discard : t -> ino:int -> unit

(** ext4 per-write-syscall overhead (block reservation, journal handle) —
    amortized away by FUSE's large coalesced writes. *)
val charge_write_path : t -> unit

(** Amortized jbd2 journal cost per namespace mutation. *)
val charge_journal : t -> unit
