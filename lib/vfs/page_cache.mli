(** LRU page cache with dirty tracking.  Pages are (inode, page-index)
    presence records for cost accounting; users that also need the bytes
    (the FUSE driver) keep them alongside and react to {!set_on_evict}. *)

(** Immutable snapshot of the cache's registry counters, taken by
    {!stats}. *)
type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writeback_ios : int;
  writeback_pages : int;
}

type t

(** Counters are registered on [metrics] (a private registry when omitted)
    as [vfs.page_cache.<name>.hits|misses|evictions|writeback_ios|
    writeback_pages], plus derived gauges [vfs.page_cache.<name>.hit_ratio]
    and the cross-cache aggregate [vfs.page_cache.hit_ratio].  Two caches
    created with the same name on one registry share counters. *)
val create :
  ?metrics:Repro_obs.Metrics.t ->
  name:string -> budget:Mem_budget.t -> page_size:int -> unit -> t

(** Device-write callback for each flushed contiguous run. *)
val set_on_flush : t -> (ino:int -> page:int -> pages:int -> unit) -> unit

(** Called whenever a page leaves the cache (eviction, invalidation,
    discard). *)
val set_on_evict : t -> (ino:int -> page:int -> unit) -> unit

(** Fresh snapshot of the registry counters. *)
val stats : t -> stats

val budget : t -> Mem_budget.t

(** Group a page list into (start, count) contiguous runs. *)
val runs_of_pages : int list -> (int * int) list

(** Write all dirty pages of an inode out as contiguous runs. *)
val flush_inode : t -> int -> unit

val flush_all : t -> unit

(** Background writeback that skips inodes with [max_dirty] or more dirty
    pages: heavy writers must be throttled in the foreground instead. *)
val flush_light_inodes : t -> max_dirty:int -> unit

val dirty_count : t -> int -> int
val dirty_total : t -> int

(** Touch a page: [`Hit] if cached, otherwise insert (evicting under
    memory pressure) and report [`Miss].  [dirty] marks it for writeback. *)
val touch : t -> ino:int -> page:int -> dirty:bool -> [ `Hit | `Miss ]

(** Presence test without promotion or insertion. *)
val mem : t -> ino:int -> page:int -> bool

(** Drop an inode's pages *without* writeback — deleted files' dirty data
    never reaches the device (the postmark effect, §5.2.2). *)
val discard_inode : t -> int -> unit

(** Flush then drop an inode's pages (FUSE open without FOPEN_KEEP_CACHE). *)
val invalidate_inode : t -> int -> unit

val page_count : t -> int
