(** Common filesystem types shared by every filesystem implementation (the
    native in-memory/disk fs, the FUSE driver, procfs, devfs) and by the
    simulated kernel.  [cred] carries the slice of a process's credentials
    a filesystem needs — including RLIMIT_FSIZE, which Linux enforces at
    the writing task (the root cause of xfstests generic/228 failing
    through CntrFS). *)

type ino = int
type kind =
    Reg
  | Dir
  | Symlink
  | Fifo
  | Sock
  | Chr of int * int
  | Blk of int * int
val kind_to_string : kind -> string
type stat = {
  st_ino : ino;
  st_kind : kind;
  st_mode : int;
  st_uid : int;
  st_gid : int;
  st_nlink : int;
  st_size : int;
  st_atime : int64;
  st_mtime : int64;
  st_ctime : int64;
}
type cred = {
  uid : int;
  gid : int;
  groups : int list;
  cap_dac_override : bool;
  cap_fowner : bool;
  cap_chown : bool;
  cap_fsetid : bool;
  rlimit_fsize : int option;
}
val root_cred : cred
val user_cred : uid:int -> gid:int -> ?groups:int list -> unit -> cred
type open_flag =
    O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_APPEND
  | O_CREAT
  | O_EXCL
  | O_TRUNC
  | O_DIRECT
  | O_SYNC
  | O_NOFOLLOW
  | O_DIRECTORY
  | O_NONBLOCK
val flag_readable : open_flag list -> bool
val flag_writable : open_flag list -> bool
type setattr = {
  sa_mode : int option;
  sa_uid : int option;
  sa_gid : int option;
  sa_size : int option;
  sa_atime : int64 option;
  sa_mtime : int64 option;
}
val setattr_none : setattr
type dirent = { d_ino : ino; d_name : string; d_kind : kind; }
type statfs = {
  f_fsname : string;
  f_bsize : int;
  f_blocks : int;
  f_bfree : int;
  f_files : int;
}
val s_isuid : int
val s_isgid : int
val s_isvtx : int
val r_ok : int
val w_ok : int
val x_ok : int
