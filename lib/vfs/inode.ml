(* In-memory inode representation used by the native filesystem. *)

type payload =
  | Reg of Fdata.t
  | Dir of { entries : (string, int) Hashtbl.t; mutable parent : int }
  | Symlink of string
  | Fifo
  | Sock
  | Chr of int * int
  | Blk of int * int

type t = {
  ino : int;
  payload : payload;
  mutable mode : int;
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  mutable atime : int64;
  mutable mtime : int64;
  mutable ctime : int64;
  xattrs : (string, string) Hashtbl.t;
  (* Open file handles referencing this inode — an unlinked inode's storage
     is reclaimed only when this drops to zero. *)
  mutable open_count : int;
}

let create ~ino ~payload ~mode ~uid ~gid ~now = {
  ino;
  payload;
  mode;
  uid;
  gid;
  nlink = (match payload with Dir _ -> 2 | _ -> 1);
  atime = now;
  mtime = now;
  ctime = now;
  xattrs = Hashtbl.create 2;
  open_count = 0;
}

let kind t : Types.kind =
  match t.payload with
  | Reg _ -> Types.Reg
  | Dir _ -> Types.Dir
  | Symlink _ -> Types.Symlink
  | Fifo -> Types.Fifo
  | Sock -> Types.Sock
  | Chr (a, b) -> Types.Chr (a, b)
  | Blk (a, b) -> Types.Blk (a, b)

let size t =
  match t.payload with
  | Reg d -> Fdata.size d
  | Dir { entries; _ } -> (Hashtbl.length entries + 2) * 32
  | Symlink s -> String.length s
  | Fifo | Sock | Chr _ | Blk _ -> 0

let stat t : Types.stat = {
  st_ino = t.ino;
  st_kind = kind t;
  st_mode = t.mode;
  st_uid = t.uid;
  st_gid = t.gid;
  st_nlink = t.nlink;
  st_size = size t;
  st_atime = t.atime;
  st_mtime = t.mtime;
  st_ctime = t.ctime;
}

let is_dir t = match t.payload with Dir _ -> true | _ -> false

let dir_entries t =
  match t.payload with
  | Dir { entries; _ } -> entries
  | _ -> invalid_arg "Inode.dir_entries: not a directory"

let dir_parent t =
  match t.payload with
  | Dir d -> d.parent
  | _ -> invalid_arg "Inode.dir_parent: not a directory"

let set_dir_parent t p =
  match t.payload with
  | Dir d -> d.parent <- p
  | _ -> invalid_arg "Inode.set_dir_parent: not a directory"

let reg_data t =
  match t.payload with
  | Reg d -> Some d
  | _ -> None
