(* Backing-store cost model for the native filesystem.  [Ram] models tmpfs
   (the page cache *is* the storage); [Ssd] models a disk-backed filesystem
   (ext4 on EBS GP2 in the paper) with a write-back page cache. *)

open Repro_util

type profile =
  | Ram
  | Ssd of {
      cache : Page_cache.t;
      (* Flush an inode's dirty pages once this many accumulate — the
         kernel's dirty-ratio writeback, scaled down. *)
      flush_pages : int;
    }

(* Writeback policy knobs shared by all Ssd stores: a global dirty-page
   ceiling (vm.dirty_ratio) and a periodic flush (dirty_expire), both
   scaled to the simulation's 1:1000 data sizes. *)
let global_dirty_fraction = 0.25
let flush_interval_ns = 500_000 (* 0.5 ms of virtual time *)

(* Sequential readahead window, in pages (128 KiB). *)
let readahead_pages = 32

type stats = {
  disk_read_ios : int;
  disk_read_bytes : int;
  disk_write_ios : int;
  disk_write_bytes : int;
}

module Metrics = Repro_obs.Metrics

type t = {
  clock : Clock.t;
  cost : Cost.t;
  profile : profile;
  (* "vfs.disk.*" registry counters — only Ssd profiles ever increment
     them, so tmpfs-backed stores report zeros. *)
  m_read_ios : Metrics.counter;
  m_read_bytes : Metrics.counter;
  m_write_ios : Metrics.counter;
  m_write_bytes : Metrics.counter;
  mutable last_flush_ns : int64;
  (* true while the periodic background writeback runs: the application
     does not wait for it, so no virtual time is charged *)
  mutable in_background : bool;
  (* Fault-injection hook: extra device latency (ns) charged on entry to
     read/write/fsync, keyed by the operation name.  Installed by the fault
     plane's [Disk] rules; None costs one branch. *)
  mutable fault_delay : (op:string -> int) option;
}

let create ?metrics ~clock ~cost profile =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let t =
    {
      clock;
      cost;
      profile;
      m_read_ios = Metrics.counter metrics "vfs.disk.read_ios";
      m_read_bytes = Metrics.counter metrics "vfs.disk.read_bytes";
      m_write_ios = Metrics.counter metrics "vfs.disk.write_ios";
      m_write_bytes = Metrics.counter metrics "vfs.disk.write_bytes";
      last_flush_ns = 0L;
      in_background = false;
      fault_delay = None;
    }
  in
  (match profile with
  | Ram -> ()
  | Ssd { cache; _ } ->
      (* Every flushed run is one device write I/O. *)
      Page_cache.set_on_flush cache (fun ~ino:_ ~page:_ ~pages ->
          let bytes = pages * cost.Cost.page_size in
          Metrics.incr t.m_write_ios;
          Metrics.add t.m_write_bytes bytes;
          if not t.in_background then
            Clock.consume_int clock (Cost.disk_write_cost cost bytes)));
  t

(* Snapshot view over the registry counters. *)
let stats t =
  {
    disk_read_ios = Metrics.value t.m_read_ios;
    disk_read_bytes = Metrics.value t.m_read_bytes;
    disk_write_ios = Metrics.value t.m_write_ios;
    disk_write_bytes = Metrics.value t.m_write_bytes;
  }

let cache t = match t.profile with Ram -> None | Ssd { cache; _ } -> Some cache

let set_fault_delay t hook = t.fault_delay <- hook

let fault_delay t op =
  match t.fault_delay with
  | None -> ()
  | Some hook ->
      let ns = hook ~op in
      if ns > 0 then Clock.consume_int t.clock ns

let page_range t ~off ~len =
  let ps = t.cost.Cost.page_size in
  let first = off / ps in
  let last = (off + max 0 (len - 1)) / ps in
  (first, last)

let charge_disk_read t bytes =
  Metrics.incr t.m_read_ios;
  Metrics.add t.m_read_bytes bytes;
  Clock.consume_int t.clock (Cost.disk_read_cost t.cost bytes)

(* Charge the cost of reading [len] bytes at [off] of [ino]: page-cache
   hits cost memory copies; a miss triggers a readahead window (one I/O
   covering up to [readahead_pages]), clamped to the file size. *)
let read t ~ino ~off ~len ?(file_size = max_int) () =
  fault_delay t "read";
  if len <= 0 then ()
  else
    match t.profile with
    | Ram -> Clock.consume_int t.clock (Cost.mem_cost t.cost len)
    | Ssd { cache; _ } ->
        let ps = t.cost.Cost.page_size in
        let first, last = page_range t ~off ~len in
        let last_file_page = max first ((max 1 file_size - 1) / ps) in
        let page = ref first in
        while !page <= last do
          match Page_cache.touch cache ~ino ~page:!page ~dirty:false with
          | `Hit ->
              Clock.consume_int t.clock (Cost.mem_cost t.cost ps);
              incr page
          | `Miss ->
              (* one device I/O covering the readahead window *)
              let win_end = min last_file_page (!page + readahead_pages - 1) in
              let fetched = ref 1 in
              let q = ref (!page + 1) in
              while
                !q <= win_end
                && (match Page_cache.touch cache ~ino ~page:!q ~dirty:false with
                   | `Miss -> true
                   | `Hit -> false)
              do
                incr fetched;
                incr q
              done;
              charge_disk_read t (!fetched * ps);
              page := !q
        done

(* Charge the cost of writing [len] bytes at [off].  Buffered writes dirty
   page-cache pages and are written back when the per-inode dirty threshold
   is crossed; [sync] forces the inode's dirty pages out before returning
   (O_SYNC / write-through). *)
let write t ~ino ~off ~len ~sync =
  fault_delay t "write";
  if len > 0 then begin
    Clock.consume_int t.clock (Cost.mem_cost t.cost len);
    match t.profile with
    | Ram -> ()
    | Ssd { cache; flush_pages } ->
        let first, last = page_range t ~off ~len in
        for page = first to last do
          ignore (Page_cache.touch cache ~ino ~page ~dirty:true)
        done;
        if sync then Page_cache.flush_inode cache ino
        else if Page_cache.dirty_count cache ino >= flush_pages then
          (* balance_dirty_pages: the writer is throttled while its inode
             is written out — charged in the foreground *)
          Page_cache.flush_inode cache ino
        else begin
          (* vm.dirty_ratio: global dirty ceiling forces writeback *)
          let limit =
            int_of_float
              (global_dirty_fraction
              *. float_of_int (Mem_budget.limit (Page_cache.budget cache))
              /. float_of_int t.cost.Cost.page_size)
          in
          if Page_cache.dirty_total cache >= max 16 limit then
            Page_cache.flush_all cache
          else begin
            (* dirty_expire: periodic writeback runs in the background —
               the writer does not wait for it *)
            let now = Clock.now_ns t.clock in
            if Int64.sub now t.last_flush_ns > Int64.of_int flush_interval_ns then begin
              t.last_flush_ns <- now;
              t.in_background <- true;
              (* heavy writers are not bailed out by the background thread *)
              Page_cache.flush_light_inodes cache ~max_dirty:8;
              t.in_background <- false
            end
          end
        end
  end

(* O_DIRECT I/O bypasses the page cache entirely.  [async] models a full
   device queue (AIO): the fixed per-I/O latency is hidden by pipelining and
   only the streaming cost is charged. *)
let write_direct t ~len ~async =
  match t.profile with
  | Ram -> Clock.consume_int t.clock (Cost.mem_cost t.cost len)
  | Ssd _ ->
      Metrics.incr t.m_write_ios;
      Metrics.add t.m_write_bytes len;
      let cost =
        if async then t.cost.Cost.disk.Cost.write_ns_per_kib * Cost.kib_of_bytes len
        else Cost.disk_write_cost t.cost len
      in
      Clock.consume_int t.clock cost

let read_direct t ~len ~async =
  match t.profile with
  | Ram -> Clock.consume_int t.clock (Cost.mem_cost t.cost len)
  | Ssd _ ->
      Metrics.incr t.m_read_ios;
      Metrics.add t.m_read_bytes len;
      let cost =
        if async then t.cost.Cost.disk.Cost.read_ns_per_kib * Cost.kib_of_bytes len
        else Cost.disk_read_cost t.cost len
      in
      Clock.consume_int t.clock cost

let fsync t ~ino =
  fault_delay t "fsync";
  match t.profile with
  | Ram -> ()
  | Ssd { cache; _ } ->
      (* device write barrier: an fsync costs at least one I/O round even
         when background writeback already cleaned the pages *)
      Clock.consume_int t.clock t.cost.Cost.disk.Cost.write_latency_ns;
      Page_cache.flush_inode cache ino

let invalidate t ~ino =
  match t.profile with
  | Ram -> ()
  | Ssd { cache; _ } -> Page_cache.invalidate_inode cache ino

(* Forget an inode's cached pages without writeback (file deleted). *)
let discard t ~ino =
  match t.profile with
  | Ram -> ()
  | Ssd { cache; _ } -> Page_cache.discard_inode cache ino

(* Per-write-syscall cost of the ext4 write path (block reservation,
   journal handle) — FUSE's writeback cache amortizes this over large
   coalesced writes, which is how it can beat native small writes. *)
let charge_write_path t =
  match t.profile with
  | Ram -> ()
  | Ssd _ -> Clock.consume_int t.clock t.cost.Cost.write_path_ns

(* Amortized metadata-journal cost (ext4 jbd2): charged per namespace
   mutation on disk-backed filesystems. *)
let charge_journal t =
  match t.profile with
  | Ram -> ()
  | Ssd _ -> Clock.consume_int t.clock t.cost.Cost.journal_ns
