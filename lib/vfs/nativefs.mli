(** The native in-memory filesystem: full POSIX-style semantics (hardlinks,
    symlinks, sticky/setgid rules, xattrs, a POSIX-ACL subset, O_DIRECT,
    RLIMIT_FSIZE enforcement) over a pluggable {!Store} backing.  With
    {!Store.Ram} it behaves like tmpfs; with {!Store.Ssd} it models ext4 on
    an SSD volume, charging page-cache and disk costs to the virtual clock. *)

open Repro_util

type t

(** [metrics] is handed to the backing {!Store} so device I/O lands in a
    shared registry ([vfs.disk.*]); a private registry is used when
    omitted. *)
val create :
  ?metrics:Repro_obs.Metrics.t ->
  ?name:string -> ?readonly:bool -> clock:Clock.t -> cost:Cost.t -> Store.profile -> unit -> t

(** The uniform filesystem interface (mount this). *)
val ops : t -> Fsops.t

val store : t -> Store.t
val clock : t -> Clock.t

(** Direct inode-table access for observers (fanotify, tests). *)
val find_inode : t -> int -> Inode.t option
