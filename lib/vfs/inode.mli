(** In-memory inode representation used by the native filesystem:
    metadata, payload (file data, directory entries, symlink target or
    special-node identity), xattrs, and the open-handle count that keeps
    unlinked-but-open files alive. *)

type payload =
    Reg of Fdata.t
  | Dir of { entries : (string, int) Hashtbl.t; mutable parent : int; }
  | Symlink of string
  | Fifo
  | Sock
  | Chr of int * int
  | Blk of int * int
type t = {
  ino : int;
  payload : payload;
  mutable mode : int;
  mutable uid : int;
  mutable gid : int;
  mutable nlink : int;
  mutable atime : int64;
  mutable mtime : int64;
  mutable ctime : int64;
  xattrs : (string, string) Hashtbl.t;
  mutable open_count : int;
}
val create :
  ino:int ->
  payload:payload -> mode:int -> uid:int -> gid:int -> now:int64 -> t
val kind : t -> Types.kind
val size : t -> int
val stat : t -> Types.stat
val is_dir : t -> bool
val dir_entries : t -> (string, int) Hashtbl.t
val dir_parent : t -> int
val set_dir_parent : t -> int -> unit
val reg_data : t -> Fdata.t option
