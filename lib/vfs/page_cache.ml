(* LRU page cache with dirty tracking.  Pages are (inode, page-index) keys;
   data lives in the filesystem's inode table — the cache only models
   *presence* (for cost accounting) and dirtiness (for writeback). *)

type key = { k_ino : int; k_page : int }

type node = {
  key : key;
  mutable dirty : bool;
  mutable prev : node option;
  mutable next : node option;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writeback_ios : int;
  writeback_pages : int;
}

module Metrics = Repro_obs.Metrics

type t = {
  name : string;
  budget : Mem_budget.t;
  page_size : int;
  mutable dirty_total : int;
  pages : (key, node) Hashtbl.t;
  mutable lru_head : node option; (* most recently used *)
  mutable lru_tail : node option; (* least recently used *)
  dirty_by_ino : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  (* Counters live in the metrics registry ("vfs.page_cache.<name>.*");
     two caches created with the same name on one registry share them. *)
  m_hits : Metrics.counter;
  m_misses : Metrics.counter;
  m_evictions : Metrics.counter;
  m_writeback_ios : Metrics.counter;
  m_writeback_pages : Metrics.counter;
  (* Called when a dirty page run must reach the device: [on_flush ~ino
     ~page ~pages] where the run covers [pages] contiguous pages. *)
  mutable on_flush : ino:int -> page:int -> pages:int -> unit;
  (* Called whenever a page leaves the cache (eviction, invalidation,
     discard) — users holding page *data* alongside must drop it. *)
  mutable on_evict : ino:int -> page:int -> unit;
}

let ratio hits misses =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int hits /. float_of_int total

(* Hit ratio over every page cache registered on [metrics], whatever their
   names: sums the per-cache hit/miss counters at snapshot time. *)
let aggregate_hit_ratio metrics () =
  let suffixed suffix =
    Metrics.counters_with_prefix metrics ~prefix:"vfs.page_cache."
    |> List.fold_left
         (fun acc (name, v) ->
           if String.length name >= String.length suffix
              && String.sub name
                   (String.length name - String.length suffix)
                   (String.length suffix)
                 = suffix
           then acc + v
           else acc)
         0
  in
  ratio (suffixed ".hits") (suffixed ".misses")

let create ?metrics ~name ~budget ~page_size () =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let key suffix = Printf.sprintf "vfs.page_cache.%s.%s" name suffix in
  let m_hits = Metrics.counter metrics (key "hits") in
  let m_misses = Metrics.counter metrics (key "misses") in
  Metrics.register_derived metrics (key "hit_ratio") (fun () ->
      ratio (Metrics.value m_hits) (Metrics.value m_misses));
  Metrics.register_derived metrics "vfs.page_cache.hit_ratio"
    (aggregate_hit_ratio metrics);
  {
    name;
    budget;
    page_size;
    pages = Hashtbl.create 1024;
    dirty_total = 0;
    lru_head = None;
    lru_tail = None;
    dirty_by_ino = Hashtbl.create 16;
    m_hits;
    m_misses;
    m_evictions = Metrics.counter metrics (key "evictions");
    m_writeback_ios = Metrics.counter metrics (key "writeback_ios");
    m_writeback_pages = Metrics.counter metrics (key "writeback_pages");
    on_flush = (fun ~ino:_ ~page:_ ~pages:_ -> ());
    on_evict = (fun ~ino:_ ~page:_ -> ());
  }

let budget t = t.budget
let set_on_flush t f = t.on_flush <- f
let set_on_evict t f = t.on_evict <- f

(* Snapshot view over the registry counters. *)
let stats t =
  {
    hits = Metrics.value t.m_hits;
    misses = Metrics.value t.m_misses;
    evictions = Metrics.value t.m_evictions;
    writeback_ios = Metrics.value t.m_writeback_ios;
    writeback_pages = Metrics.value t.m_writeback_pages;
  }

let unlink_node t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.lru_head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru_tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.lru_head;
  n.prev <- None;
  (match t.lru_head with Some h -> h.prev <- Some n | None -> t.lru_tail <- Some n);
  t.lru_head <- Some n

let dirty_table t ino =
  match Hashtbl.find_opt t.dirty_by_ino ino with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.replace t.dirty_by_ino ino tbl;
      tbl

let mark_dirty t n =
  if not n.dirty then begin
    n.dirty <- true;
    t.dirty_total <- t.dirty_total + 1;
    Hashtbl.replace (dirty_table t n.key.k_ino) n.key.k_page ()
  end

let clear_dirty t n =
  if n.dirty then begin
    n.dirty <- false;
    t.dirty_total <- max 0 (t.dirty_total - 1);
    match Hashtbl.find_opt t.dirty_by_ino n.key.k_ino with
    | Some tbl ->
        Hashtbl.remove tbl n.key.k_page;
        if Hashtbl.length tbl = 0 then Hashtbl.remove t.dirty_by_ino n.key.k_ino
    | None -> ()
  end

(* Group a sorted page list into (start, count) contiguous runs. *)
let runs_of_pages pages =
  let sorted = List.sort_uniq compare pages in
  let rec go acc cur = function
    | [] -> List.rev (match cur with Some r -> r :: acc | None -> acc)
    | p :: rest -> (
        match cur with
        | Some (start, count) when p = start + count -> go acc (Some (start, count + 1)) rest
        | Some r -> go (r :: acc) (Some (p, 1)) rest
        | None -> go acc (Some (p, 1)) rest)
  in
  go [] None sorted

(* Write all dirty pages of [ino] to the device as contiguous runs. *)
let flush_inode t ino =
  match Hashtbl.find_opt t.dirty_by_ino ino with
  | None -> ()
  | Some tbl ->
      let pages = Hashtbl.fold (fun p () acc -> p :: acc) tbl [] in
      let runs = runs_of_pages pages in
      List.iter
        (fun (start, count) ->
          Metrics.incr t.m_writeback_ios;
          Metrics.add t.m_writeback_pages count;
          t.on_flush ~ino ~page:start ~pages:count)
        runs;
      List.iter
        (fun p ->
          match Hashtbl.find_opt t.pages { k_ino = ino; k_page = p } with
          | Some n -> clear_dirty t n
          | None -> ())
        pages;
      Hashtbl.remove t.dirty_by_ino ino

let flush_all t =
  let inos = Hashtbl.fold (fun ino _ acc -> ino :: acc) t.dirty_by_ino [] in
  List.iter (flush_inode t) inos

let dirty_count t ino =
  match Hashtbl.find_opt t.dirty_by_ino ino with
  | Some tbl -> Hashtbl.length tbl
  | None -> 0

let evict_one t =
  match t.lru_tail with
  | None -> ()
  | Some n ->
      if n.dirty then begin
        (* Evicting a dirty page forces a single-page writeback I/O. *)
        Metrics.incr t.m_writeback_ios;
        Metrics.incr t.m_writeback_pages;
        t.on_flush ~ino:n.key.k_ino ~page:n.key.k_page ~pages:1;
        clear_dirty t n
      end;
      unlink_node t n;
      Hashtbl.remove t.pages n.key;
      t.on_evict ~ino:n.key.k_ino ~page:n.key.k_page;
      Mem_budget.release t.budget t.page_size;
      Metrics.incr t.m_evictions

(* Touch a page for reading: returns [`Hit] if cached, otherwise inserts it
   (evicting under memory pressure) and returns [`Miss]. *)
let touch t ~ino ~page ~dirty =
  let key = { k_ino = ino; k_page = page } in
  match Hashtbl.find_opt t.pages key with
  | Some n ->
      unlink_node t n;
      push_front t n;
      if dirty then mark_dirty t n;
      Metrics.incr t.m_hits;
      `Hit
  | None ->
      let n = { key; dirty = false; prev = None; next = None } in
      Hashtbl.replace t.pages key n;
      push_front t n;
      Mem_budget.reserve t.budget t.page_size;
      let rec evict_until_fits () =
        if Mem_budget.over t.budget then
          match t.lru_tail with
          | Some m when m != n ->
              evict_one t;
              evict_until_fits ()
          | Some _ | None -> ()
      in
      evict_until_fits ();
      if dirty then mark_dirty t n;
      Metrics.incr t.m_misses;
      `Miss

let mem t ~ino ~page = Hashtbl.mem t.pages { k_ino = ino; k_page = page }

(* Drop all pages of [ino] *without* writing dirty data back — used when a
   file is deleted: its dirty pages never reach the device.  This is what
   makes postmark-style create/delete churn cheap on the native filesystem
   (§5.2.2). *)
let discard_inode t ino =
  (match Hashtbl.find_opt t.dirty_by_ino ino with
  | Some tbl ->
      Hashtbl.iter
        (fun p () ->
          match Hashtbl.find_opt t.pages { k_ino = ino; k_page = p } with
          | Some n ->
              if n.dirty then t.dirty_total <- max 0 (t.dirty_total - 1);
              n.dirty <- false
          | None -> ())
        tbl;
      Hashtbl.remove t.dirty_by_ino ino
  | None -> ());
  let to_remove =
    Hashtbl.fold
      (fun key n acc -> if key.k_ino = ino then n :: acc else acc)
      t.pages []
  in
  List.iter
    (fun n ->
      unlink_node t n;
      Hashtbl.remove t.pages n.key;
      t.on_evict ~ino:n.key.k_ino ~page:n.key.k_page;
      Mem_budget.release t.budget t.page_size)
    to_remove

(* Drop all pages of [ino] (used when a FUSE open lacks FOPEN_KEEP_CACHE:
   the kernel invalidates the inode's cached data). *)
let invalidate_inode t ino =
  flush_inode t ino;
  let to_remove =
    Hashtbl.fold
      (fun key n acc -> if key.k_ino = ino then n :: acc else acc)
      t.pages []
  in
  List.iter
    (fun n ->
      unlink_node t n;
      Hashtbl.remove t.pages n.key;
      t.on_evict ~ino:n.key.k_ino ~page:n.key.k_page;
      Mem_budget.release t.budget t.page_size)
    to_remove

let page_count t = Hashtbl.length t.pages

let dirty_total t = t.dirty_total

(* Background writeback skips inodes with lots of dirty data: heavy
   writers must be throttled by the foreground dirty threshold instead of
   being bailed out for free. *)
let flush_light_inodes t ~max_dirty =
  let inos = Hashtbl.fold (fun ino tbl acc -> (ino, Hashtbl.length tbl) :: acc) t.dirty_by_ino [] in
  List.iter (fun (ino, n) -> if n < max_dirty then flush_inode t ino) inos
