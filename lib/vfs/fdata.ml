(* Sparse file contents, stored as fixed-size chunks so that large sparse
   files only pay for the regions actually touched. *)

let chunk_bits = 16 (* 64 KiB chunks *)
let chunk_size = 1 lsl chunk_bits

type t = {
  chunks : (int, Bytes.t) Hashtbl.t;
  mutable size : int;
}

let create () = { chunks = Hashtbl.create 8; size = 0 }

let size t = t.size

let chunk_of_offset off = off lsr chunk_bits
let offset_in_chunk off = off land (chunk_size - 1)

let get_chunk t idx =
  match Hashtbl.find_opt t.chunks idx with
  | Some c -> c
  | None ->
      let c = Bytes.make chunk_size '\000' in
      Hashtbl.replace t.chunks idx c;
      c

(* Read up to [len] bytes at [off]; short reads happen at EOF. *)
let read t ~off ~len =
  if off >= t.size || len <= 0 then ""
  else begin
    let len = min len (t.size - off) in
    let buf = Bytes.make len '\000' in
    let rec go pos =
      if pos < len then begin
        let abs = off + pos in
        let idx = chunk_of_offset abs in
        let coff = offset_in_chunk abs in
        let n = min (chunk_size - coff) (len - pos) in
        (match Hashtbl.find_opt t.chunks idx with
        | Some c -> Bytes.blit c coff buf pos n
        | None -> () (* hole: already zeroed *));
        go (pos + n)
      end
    in
    go 0;
    Bytes.unsafe_to_string buf
  end

(* Write [data] at [off], growing the file as needed. *)
let write t ~off data =
  let len = String.length data in
  let rec go pos =
    if pos < len then begin
      let abs = off + pos in
      let idx = chunk_of_offset abs in
      let coff = offset_in_chunk abs in
      let n = min (chunk_size - coff) (len - pos) in
      let c = get_chunk t idx in
      Bytes.blit_string data pos c coff n;
      go (pos + n)
    end
  in
  go 0;
  if off + len > t.size then t.size <- off + len;
  len

let truncate t new_size =
  if new_size < t.size then begin
    (* Drop whole chunks past the new end and zero the tail of the boundary
       chunk so a later re-extension reads zeros. *)
    let boundary = chunk_of_offset (max 0 (new_size - 1)) in
    Hashtbl.iter
      (fun idx _ -> if idx > boundary then Hashtbl.remove t.chunks idx)
      (Hashtbl.copy t.chunks);
    (match Hashtbl.find_opt t.chunks boundary with
    | Some c ->
        let keep = offset_in_chunk new_size in
        if new_size > 0 && keep > 0 then
          Bytes.fill c keep (chunk_size - keep) '\000'
        else if new_size = 0 then Hashtbl.remove t.chunks boundary
    | None -> ())
  end;
  t.size <- new_size

(* Bytes of heap actually allocated (for memory accounting / statfs). *)
let allocated t = Hashtbl.length t.chunks * chunk_size
