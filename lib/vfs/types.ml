(* Common filesystem types shared by every filesystem implementation (the
   native in-memory/disk fs, the FUSE driver, procfs, devfs) and by the
   simulated kernel. *)

type ino = int

type kind =
  | Reg
  | Dir
  | Symlink
  | Fifo
  | Sock
  | Chr of int * int (* major, minor *)
  | Blk of int * int

let kind_to_string = function
  | Reg -> "regular"
  | Dir -> "directory"
  | Symlink -> "symlink"
  | Fifo -> "fifo"
  | Sock -> "socket"
  | Chr _ -> "chardev"
  | Blk _ -> "blockdev"

(* stat(2)-like metadata.  [mode] holds only permission + setuid/setgid/
   sticky bits (the file type lives in [kind]). *)
type stat = {
  st_ino : ino;
  st_kind : kind;
  st_mode : int;
  st_uid : int;
  st_gid : int;
  st_nlink : int;
  st_size : int;
  st_atime : int64;
  st_mtime : int64;
  st_ctime : int64;
}

(* The slice of a process's credentials a filesystem needs for permission
   checks.  [rlimit_fsize] travels with the credential because Linux
   enforces RLIMIT_FSIZE at the writing task — a FUSE server replaying the
   write has its own (unlimited) credential, which is exactly why xfstests
   generic/228 fails through CntrFS (§5.1 of the paper). *)
type cred = {
  uid : int;
  gid : int;
  groups : int list;
  cap_dac_override : bool; (* bypass file permission checks *)
  cap_fowner : bool;       (* bypass owner checks (chmod, sticky) *)
  cap_chown : bool;        (* arbitrary chown *)
  cap_fsetid : bool;       (* keep setuid/setgid on modification *)
  rlimit_fsize : int option;
}

let root_cred = {
  uid = 0;
  gid = 0;
  groups = [ 0 ];
  cap_dac_override = true;
  cap_fowner = true;
  cap_chown = true;
  cap_fsetid = true;
  rlimit_fsize = None;
}

(* An unprivileged credential with no capabilities. *)
let user_cred ~uid ~gid ?(groups = []) () = {
  uid;
  gid;
  groups = gid :: groups;
  cap_dac_override = false;
  cap_fowner = false;
  cap_chown = false;
  cap_fsetid = false;
  rlimit_fsize = None;
}

type open_flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_APPEND
  | O_CREAT
  | O_EXCL
  | O_TRUNC
  | O_DIRECT
  | O_SYNC
  | O_NOFOLLOW
  | O_DIRECTORY
  | O_NONBLOCK

let flag_readable flags =
  not (List.mem O_WRONLY flags)

let flag_writable flags =
  List.mem O_WRONLY flags || List.mem O_RDWR flags

(* Fields of a setattr (chmod/chown/truncate/utimens) request; [None] means
   "leave unchanged". *)
type setattr = {
  sa_mode : int option;
  sa_uid : int option;
  sa_gid : int option;
  sa_size : int option;
  sa_atime : int64 option;
  sa_mtime : int64 option;
}

let setattr_none = {
  sa_mode = None;
  sa_uid = None;
  sa_gid = None;
  sa_size = None;
  sa_atime = None;
  sa_mtime = None;
}

type dirent = { d_ino : ino; d_name : string; d_kind : kind }

type statfs = {
  f_fsname : string;
  f_bsize : int;
  f_blocks : int;
  f_bfree : int;
  f_files : int;
}

(* Mode-bit constants. *)
let s_isuid = 0o4000
let s_isgid = 0o2000
let s_isvtx = 0o1000

(* access(2) probe bits. *)
let r_ok = 4
let w_ok = 2
let x_ok = 1
