(** Byte-size helpers and pretty printing. *)

val kib : int -> int
val mib : int -> int
val gib : int -> int
val pp : Format.formatter -> int -> unit
val to_string : int -> string
