(** Deterministic SplitMix64 generator.  Every source of randomness in the
    repository draws from a seeded instance, so runs are reproducible
    bit-for-bit. *)

type t

val create : seed:int -> t

(** Independent copy with the same future stream. *)
val copy : t -> t

val next_int64 : t -> int64

(** Uniform int in [0, bound). *)
val int : t -> int -> int

(** Uniform int in [lo, hi], inclusive. *)
val int_range : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Uniform element of a non-empty array. *)
val choose : t -> 'a array -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Random lowercase identifier of the given length. *)
val ident : t -> int -> string

(** Pseudo-random bytes (cheap, not cryptographic). *)
val bytes : t -> int -> bytes
