(* Path manipulation helpers shared by the mount table, the FUSE servers and
   the container engines.  Paths are plain strings with '/' separators;
   component lists never contain "" or ".". *)

let is_absolute p = String.length p > 0 && p.[0] = '/'

(* Split into components, dropping empty components and ".".
   ".." is preserved — resolving it needs mount-table context. *)
let split p =
  String.split_on_char '/' p
  |> List.filter (fun c -> c <> "" && c <> ".")

(* Join components into an absolute path. *)
let join_abs comps = "/" ^ String.concat "/" comps

(* Join a base path and a relative suffix. *)
let concat base rel =
  if rel = "" then base
  else if is_absolute rel then rel
  else if base = "/" || base = "" then "/" ^ rel
  else base ^ "/" ^ rel

(* Lexically normalize: collapse "//", ".", and ".." (".." at the root is
   dropped, as the kernel does).  Only safe for paths with no symlinks in
   play; the kernel's walker resolves component by component instead. *)
let normalize p =
  let abs = is_absolute p in
  let comps = split p in
  let rec go acc = function
    | [] -> List.rev acc
    | ".." :: rest -> (
        match acc with
        | [] -> if abs then go [] rest else go [ ".." ] rest
        | ".." :: _ -> go (".." :: acc) rest
        | _ :: up -> go up rest)
    | c :: rest -> go (c :: acc) rest
  in
  let comps = go [] comps in
  if abs then join_abs comps
  else if comps = [] then "."
  else String.concat "/" comps

(* Last component, or "/" for the root. *)
let basename p =
  match List.rev (split p) with [] -> "/" | last :: _ -> last

(* Everything but the last component. *)
let dirname p =
  match List.rev (split p) with
  | [] | [ _ ] -> if is_absolute p then "/" else "."
  | _ :: rev_rest ->
      let comps = List.rev rev_rest in
      if is_absolute p then join_abs comps else String.concat "/" comps

(* Does [p] live under directory [dir] (inclusive)?  Both lexically
   normalized first. *)
let is_under ~dir p =
  let dir = split (normalize dir) and p = split (normalize p) in
  let rec prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && prefix a' b'
    | _ :: _, [] -> false
  in
  prefix dir p

(* Strip prefix [dir] from [p]; returns a relative path ("" if equal). *)
let strip_prefix ~dir p =
  let dirc = split (normalize dir) and pc = split (normalize p) in
  let rec go a b =
    match (a, b) with
    | [], rest -> Some (String.concat "/" rest)
    | x :: a', y :: b' when x = y -> go a' b'
    | _ -> None
  in
  go dirc pc
