(** Path manipulation shared by the mount table, the FUSE servers and the
    container engines.  Paths are '/'-separated strings; component lists
    never contain "" or ".". *)

val is_absolute : string -> bool

(** Components, dropping "" and "." but keeping ".." (resolving it needs
    mount-table context). *)
val split : string -> string list

(** Join components into an absolute path. *)
val join_abs : string list -> string

(** Join a base path and a relative suffix (absolute suffixes win). *)
val concat : string -> string -> string

(** Lexical normalization: collapses "//", "." and ".." (".." at the root
    is dropped).  Only safe with no symlinks in play — the kernel's walker
    resolves component by component instead. *)
val normalize : string -> string

(** Last component, or "/" for the root. *)
val basename : string -> string

(** Everything but the last component. *)
val dirname : string -> string

(** Does [p] live under directory [dir] (inclusive)?  Lexical. *)
val is_under : dir:string -> string -> bool

(** Strip prefix [dir] from [p]; [Some ""] when equal, [None] when not
    under [dir]. *)
val strip_prefix : dir:string -> string -> string option
