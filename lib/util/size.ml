(* Byte-size helpers and pretty printing for reports. *)

let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let pp ppf bytes =
  let b = float_of_int bytes in
  if b < 1024. then Fmt.pf ppf "%dB" bytes
  else if b < 1024. *. 1024. then Fmt.pf ppf "%.1fKiB" (b /. 1024.)
  else if b < 1024. *. 1024. *. 1024. then Fmt.pf ppf "%.1fMiB" (b /. 1024. /. 1024.)
  else Fmt.pf ppf "%.2fGiB" (b /. 1024. /. 1024. /. 1024.)

let to_string bytes = Fmt.str "%a" pp bytes
