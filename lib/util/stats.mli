(** Small statistics toolkit for the benchmark harness and the Docker-Slim
    study (Figure 5 histogram). *)

val mean : float list -> float

(** Sample standard deviation (0 for fewer than two points). *)
val stddev : float list -> float

(** Nearest-rank percentile.  Raises [Invalid_argument] on an empty list
    or when [p] is outside [0, 1] (including NaN).  [p = 0.] is the
    minimum, [p = 1.] the maximum; a single-element list returns that
    element for any valid [p]. *)
val percentile : float -> 'a list -> 'a

val median : 'a list -> 'a

(** Equal-width histogram over [lo, hi); values at or above [hi] land in
    the last bucket, values below [lo] in the first.  NaN values are
    skipped.  Raises [Invalid_argument] unless [buckets > 0] and
    [hi > lo]. *)
val histogram : lo:float -> hi:float -> buckets:int -> float list -> int array

(** Render one row of '#' marks per bucket. *)
val pp_histogram : lo:float -> hi:float -> Format.formatter -> int array -> unit
