(** Small statistics toolkit for the benchmark harness and the Docker-Slim
    study (Figure 5 histogram). *)

val mean : float list -> float

(** Sample standard deviation (0 for fewer than two points). *)
val stddev : float list -> float

(** Nearest-rank percentile, [p] in [0, 1]; raises on an empty list. *)
val percentile : float -> 'a list -> 'a

val median : 'a list -> 'a

(** Equal-width histogram over [lo, hi); values at or above [hi] land in
    the last bucket. *)
val histogram : lo:float -> hi:float -> buckets:int -> float list -> int array

(** Render one row of '#' marks per bucket. *)
val pp_histogram : lo:float -> hi:float -> Format.formatter -> int array -> unit
