(** Virtual clock.  All simulated work advances this clock through the cost
    model instead of consuming wall time, making every benchmark
    deterministic and fast regardless of the simulated data volume. *)

type t

val create : unit -> t

(** Nanoseconds of virtual time since the world was created. *)
val now_ns : t -> int64

val now_s : t -> float

(** Advance the clock by [ns] nanoseconds of simulated work (non-negative
    amounts only; negatives are ignored). *)
val consume : t -> int64 -> unit

val consume_int : t -> int -> unit

(** Warp to an absolute time — may move backwards.  Reserved for the
    discrete-event scheduler, which multiplexes per-task timelines onto the
    one clock; everything else should [consume]. *)
val set_ns : t -> int64 -> unit

(** Virtual time consumed by running [f]. *)
val time : t -> (unit -> 'a) -> 'a * int64

val pp_duration : Format.formatter -> int64 -> unit
