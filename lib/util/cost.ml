(* Cost model: the virtual-time price of the primitive operations the
   simulation performs.  The constants below are the knobs the paper's
   performance analysis names (syscall entry, FUSE context switches, copy
   vs. splice, page-cache hit vs. disk access).  Absolute values are loosely
   calibrated to the paper's EC2 m4.xlarge + EBS GP2 testbed; only the
   *ratios* matter for reproducing Figures 2-4. *)

type disk = {
  read_latency_ns : int;   (* fixed per read I/O (queueing + device) *)
  write_latency_ns : int;  (* fixed per write I/O *)
  read_ns_per_kib : int;   (* streaming read cost *)
  write_ns_per_kib : int;  (* streaming write cost *)
}

type t = {
  syscall_ns : int;          (* kernel entry/exit *)
  context_switch_ns : int;   (* one process switch (FUSE round trip = 2) *)
  copy_ns_per_kib : int;     (* user<->kernel buffer copy *)
  mem_ns_per_kib : int;      (* page-cache / tmpfs copy *)
  splice_setup_ns : int;     (* per splice(2) call: pipe page remapping *)
  splice_page_ns : int;      (* per page moved by splice: remap, no copy *)
  dentry_ns : int;           (* in-kernel dcache lookup step *)
  backing_lookup_ns : int;   (* CntrFS server-side open()+stat() per lookup *)
  queue_lock_ns : int;       (* fuse_conn pending-queue spinlock critical section *)
  wakeup_ns : int;           (* waking one extra thread off the /dev/fuse waitq *)
  cpu_ns_per_kib : int;      (* generic compute (gzip, SQL parsing) unit *)
  journal_ns : int;          (* amortized jbd2 cost per metadata mutation *)
  write_path_ns : int;       (* ext4 per-write block reservation + journal handle *)
  page_size : int;           (* bytes per page-cache page *)
  disk : disk;
}

(* EBS GP2 (SSD over a dedicated network link): sub-millisecond latency,
   ~160 MiB/s streaming.  1 KiB at 160 MiB/s is ~6 us. *)
let gp2 = {
  read_latency_ns = 120_000;
  write_latency_ns = 30_000;
  read_ns_per_kib = 6_000;
  write_ns_per_kib = 6_000;
}

let default = {
  syscall_ns = 400;
  context_switch_ns = 2_500;
  copy_ns_per_kib = 60;
  mem_ns_per_kib = 25;
  splice_setup_ns = 350;
  splice_page_ns = 80;
  dentry_ns = 150;
  backing_lookup_ns = 2_600;
  queue_lock_ns = 30;
  wakeup_ns = 110;
  cpu_ns_per_kib = 2_000;
  journal_ns = 3_000;
  write_path_ns = 2_500;
  page_size = 4096;
  disk = gp2;
}

(* Round [bytes] up to whole KiB for per-KiB pricing. *)
let kib_of_bytes bytes = (bytes + 1023) / 1024

let copy_cost t bytes = t.copy_ns_per_kib * kib_of_bytes bytes

(* Round [bytes] up to whole pages for splice pricing. *)
let pages_of_bytes t bytes = (bytes + t.page_size - 1) / t.page_size

(* One splice(2) call moving [bytes]: fixed pipe setup plus a per-page
   remap.  Per page this undercuts the double copy of a userspace relay
   (80 ns vs. 2 x 240 ns at the default constants), but the fixed setup
   means tiny chatter messages still favor plain read/write — the
   trade-off bench e9 measures. *)
let splice_cost t bytes =
  t.splice_setup_ns + (t.splice_page_ns * pages_of_bytes t bytes)
let mem_cost t bytes = t.mem_ns_per_kib * kib_of_bytes bytes
let disk_read_cost t bytes = t.disk.read_latency_ns + (t.disk.read_ns_per_kib * kib_of_bytes bytes)
let disk_write_cost t bytes = t.disk.write_latency_ns + (t.disk.write_ns_per_kib * kib_of_bytes bytes)
