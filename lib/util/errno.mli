(** Linux-style error numbers used across the simulated kernel,
    filesystems and the FUSE protocol.  Every fallible operation returns
    [('a, Errno.t) result] rather than raising; [ok_exn] converts to the
    [Error] exception where an errno indicates a bug (tests, examples). *)

type t =
    EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | ENXIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EBUSY
  | EEXIST
  | EXDEV
  | ENODEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOTTY
  | EFBIG
  | ENOSPC
  | ESPIPE
  | EROFS
  | EMLINK
  | EPIPE
  | ERANGE
  | ENAMETOOLONG
  | ENOTEMPTY
  | ELOOP
  | ENODATA
  | EOVERFLOW
  | ENOTSUP
  | ENOSYS
  | ECONNREFUSED
  | ECONNRESET
  | ENOTCONN
  | ENOTSOCK
  | EADDRINUSE
  | ETIMEDOUT
val to_string : t -> string
val message : t -> string
val pp : Format.formatter -> t -> unit
exception Error of t
val ok_exn : ('a, t) result -> 'a
