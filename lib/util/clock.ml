(* Virtual clock.  All simulated work advances this clock through the cost
   model instead of consuming wall time, which makes every benchmark
   deterministic and fast regardless of the simulated data volume. *)

type t = { mutable now_ns : int64 }

let create () = { now_ns = 0L }

(* Current virtual time in nanoseconds since the world was created. *)
let now_ns t = t.now_ns

let now_s t = Int64.to_float t.now_ns /. 1e9

(* Advance the clock by [ns] nanoseconds of simulated work. *)
let consume t ns =
  if ns > 0L then t.now_ns <- Int64.add t.now_ns ns

let consume_int t ns = consume t (Int64.of_int ns)

(* Warp to an absolute time.  Only the discrete-event scheduler uses this:
   each task keeps its own timeline, and the scheduler sets the clock to an
   event's timestamp before running the owning task's next segment.  Unlike
   [consume] this may move the clock backwards (to a task that is behind). *)
let set_ns t ns = t.now_ns <- ns

(* Measure the virtual time consumed by [f]. *)
let time t f =
  let start = t.now_ns in
  let v = f () in
  (v, Int64.sub t.now_ns start)

let pp_duration ppf ns =
  let ns = Int64.to_float ns in
  if ns < 1e3 then Fmt.pf ppf "%.0fns" ns
  else if ns < 1e6 then Fmt.pf ppf "%.2fus" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%.2fms" (ns /. 1e6)
  else Fmt.pf ppf "%.3fs" (ns /. 1e9)
