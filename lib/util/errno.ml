(* Linux-style error numbers used across the simulated kernel, filesystems
   and the FUSE protocol.  Every fallible operation in the repository
   returns [('a, Errno.t) result] rather than raising. *)

type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EIO
  | ENXIO
  | EBADF
  | EAGAIN
  | ENOMEM
  | EACCES
  | EBUSY
  | EEXIST
  | EXDEV
  | ENODEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | ENFILE
  | EMFILE
  | ENOTTY
  | EFBIG
  | ENOSPC
  | ESPIPE
  | EROFS
  | EMLINK
  | EPIPE
  | ERANGE
  | ENAMETOOLONG
  | ENOTEMPTY
  | ELOOP
  | ENODATA
  | EOVERFLOW
  | ENOTSUP
  | ENOSYS
  | ECONNREFUSED
  | ECONNRESET
  | ENOTCONN
  | ENOTSOCK
  | EADDRINUSE
  | ETIMEDOUT

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | EINTR -> "EINTR"
  | EIO -> "EIO"
  | ENXIO -> "ENXIO"
  | EBADF -> "EBADF"
  | EAGAIN -> "EAGAIN"
  | ENOMEM -> "ENOMEM"
  | EACCES -> "EACCES"
  | EBUSY -> "EBUSY"
  | EEXIST -> "EEXIST"
  | EXDEV -> "EXDEV"
  | ENODEV -> "ENODEV"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | ENFILE -> "ENFILE"
  | EMFILE -> "EMFILE"
  | ENOTTY -> "ENOTTY"
  | EFBIG -> "EFBIG"
  | ENOSPC -> "ENOSPC"
  | ESPIPE -> "ESPIPE"
  | EROFS -> "EROFS"
  | EMLINK -> "EMLINK"
  | EPIPE -> "EPIPE"
  | ERANGE -> "ERANGE"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ELOOP -> "ELOOP"
  | ENODATA -> "ENODATA"
  | EOVERFLOW -> "EOVERFLOW"
  | ENOTSUP -> "ENOTSUP"
  | ENOSYS -> "ENOSYS"
  | ECONNREFUSED -> "ECONNREFUSED"
  | ECONNRESET -> "ECONNRESET"
  | ENOTCONN -> "ENOTCONN"
  | ENOTSOCK -> "ENOTSOCK"
  | EADDRINUSE -> "EADDRINUSE"
  | ETIMEDOUT -> "ETIMEDOUT"

(* Human-oriented message, matching strerror(3) closely enough for logs. *)
let message = function
  | EPERM -> "Operation not permitted"
  | ENOENT -> "No such file or directory"
  | ESRCH -> "No such process"
  | EINTR -> "Interrupted system call"
  | EIO -> "Input/output error"
  | ENXIO -> "No such device or address"
  | EBADF -> "Bad file descriptor"
  | EAGAIN -> "Resource temporarily unavailable"
  | ENOMEM -> "Cannot allocate memory"
  | EACCES -> "Permission denied"
  | EBUSY -> "Device or resource busy"
  | EEXIST -> "File exists"
  | EXDEV -> "Invalid cross-device link"
  | ENODEV -> "No such device"
  | ENOTDIR -> "Not a directory"
  | EISDIR -> "Is a directory"
  | EINVAL -> "Invalid argument"
  | ENFILE -> "Too many open files in system"
  | EMFILE -> "Too many open files"
  | ENOTTY -> "Inappropriate ioctl for device"
  | EFBIG -> "File too large"
  | ENOSPC -> "No space left on device"
  | ESPIPE -> "Illegal seek"
  | EROFS -> "Read-only file system"
  | EMLINK -> "Too many links"
  | EPIPE -> "Broken pipe"
  | ERANGE -> "Numerical result out of range"
  | ENAMETOOLONG -> "File name too long"
  | ENOTEMPTY -> "Directory not empty"
  | ELOOP -> "Too many levels of symbolic links"
  | ENODATA -> "No data available"
  | EOVERFLOW -> "Value too large for defined data type"
  | ENOTSUP -> "Operation not supported"
  | ENOSYS -> "Function not implemented"
  | ECONNREFUSED -> "Connection refused"
  | ECONNRESET -> "Connection reset by peer"
  | ENOTCONN -> "Transport endpoint is not connected"
  | ENOTSOCK -> "Socket operation on non-socket"
  | EADDRINUSE -> "Address already in use"
  | ETIMEDOUT -> "Connection timed out"

let pp ppf e = Fmt.string ppf (to_string e)

exception Error of t

(* Unwrap a result, raising [Error] — for contexts (tests, examples) where an
   errno indicates a bug rather than an expected outcome. *)
let ok_exn = function
  | Ok v -> v
  | Error e -> raise (Error e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Errno.Error %s (%s)" (to_string e) (message e))
    | _ -> None)
