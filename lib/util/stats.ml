(* Small statistics toolkit used by the benchmark harness and the
   Docker-Slim study (Figure 5 histogram). *)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

(* p in [0,1]; nearest-rank percentile of a non-empty list.  p = 0 is the
   minimum, p = 1 the maximum; a single-element list returns that element
   for every p. *)
let percentile p xs =
  if not (p >= 0. && p <= 1.) then invalid_arg "Stats.percentile: p not in [0, 1]";
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (ceil (p *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      List.nth sorted (rank - 1)

let median xs = percentile 0.5 xs

(* Histogram with [buckets] equal-width bins over [lo, hi).  Values at or
   above [hi] land in the last bin; NaN values are skipped (int_of_float
   on NaN is undefined, so they must never reach the index computation). *)
let histogram ~lo ~hi ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets";
  if not (hi > lo) then invalid_arg "Stats.histogram: hi must exceed lo";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  List.iter
    (fun x ->
      if not (Float.is_nan x) then begin
        let scaled = (x -. lo) /. width in
        let i =
          if scaled <= 0. then 0
          else if scaled >= float_of_int buckets then buckets - 1
          else int_of_float scaled
        in
        counts.(i) <- counts.(i) + 1
      end)
    xs;
  counts

(* Render a histogram as rows of '#' marks, one row per bucket. *)
let pp_histogram ~lo ~hi ppf counts =
  let buckets = Array.length counts in
  let width = (hi -. lo) /. float_of_int buckets in
  Array.iteri
    (fun i c ->
      let b0 = lo +. (float_of_int i *. width) in
      let b1 = b0 +. width in
      Fmt.pf ppf "  [%5.1f-%5.1f) %3d %s@." b0 b1 c (String.make c '#'))
    counts
