(** Cost model: the virtual-time price of the primitive operations the
    simulation performs — the knobs the paper's performance analysis names
    (syscall entry, FUSE context switches, copy vs. splice, page-cache hit
    vs. disk access, lookup amplification, journal costs).  Absolute values
    are loosely calibrated to the paper's EC2 m4.xlarge + EBS GP2 testbed;
    only the ratios matter for reproducing Figures 2-4. *)

type disk = {
  read_latency_ns : int;
  write_latency_ns : int;
  read_ns_per_kib : int;
  write_ns_per_kib : int;
}
type t = {
  syscall_ns : int;
  context_switch_ns : int;
  copy_ns_per_kib : int;
  mem_ns_per_kib : int;
  splice_setup_ns : int;
  splice_page_ns : int;
  dentry_ns : int;
  backing_lookup_ns : int;
  queue_lock_ns : int;
  wakeup_ns : int;
  cpu_ns_per_kib : int;
  journal_ns : int;
  write_path_ns : int;
  page_size : int;
  disk : disk;
}
val gp2 : disk
val default : t
val kib_of_bytes : int -> int
val copy_cost : t -> int -> int

(** Whole pages covering [bytes] (for splice pricing). *)
val pages_of_bytes : t -> int -> int

(** One splice(2) call moving [bytes]: setup plus per-page remap. *)
val splice_cost : t -> int -> int
val mem_cost : t -> int -> int
val disk_read_cost : t -> int -> int
val disk_write_cost : t -> int -> int
