(* The deterministic metrics registry: named counters, gauges (stored or
   derived) and virtual-time latency histograms, keyed by hierarchical
   names ("fuse.req.lookup.latency_us").  Everything is driven by the
   simulation's virtual clock and seeded RNGs, so two identical runs
   produce byte-identical snapshots — the registry never reads wall-clock
   time or ambient randomness. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(* Histograms keep power-of-two buckets plus a bounded sample reservoir
   (the *first* [reservoir_cap] observations — deterministic, unlike
   probabilistic reservoir sampling) that backs percentile reporting
   through [Repro_util.Stats]. *)
let reservoir_cap = 4096

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* index = bit-width of the integer value *)
  mutable h_samples : float array;
  mutable h_len : int;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_derived of (unit -> float)
  | M_histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_derived _ -> "derived gauge"
  | M_histogram _ -> "histogram"

let clash name existing want =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %s is already a %s, not a %s" name
       (kind_name existing) want)

(* --- counters ----------------------------------------------------------- *)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_counter c) -> c
  | Some m -> clash name m "counter"
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.tbl name (M_counter c);
      c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_counter c) -> c.c_value
  | _ -> 0

(* --- gauges ------------------------------------------------------------- *)

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_gauge g) -> g
  | Some m -> clash name m "gauge"
  | None ->
      let g = { g_name = name; g_value = 0. } in
      Hashtbl.replace t.tbl name (M_gauge g);
      g

let set g v = g.g_value <- v

(* Derived gauges are computed at snapshot time (hit ratios, amplification
   factors).  Re-registering the same name keeps the first closure, so
   several components can idempotently register a shared derived metric. *)
let register_derived t name f =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_derived _) -> ()
  | Some m -> clash name m "derived gauge"
  | None -> Hashtbl.replace t.tbl name (M_derived f)

let gauge_value t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_gauge g) -> g.g_value
  | Some (M_derived f) -> f ()
  | _ -> 0.

(* --- histograms --------------------------------------------------------- *)

let histogram t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (M_histogram h) -> h
  | Some m -> clash name m "histogram"
  | None ->
      let h =
        {
          h_name = name;
          h_count = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make 64 0;
          h_samples = [||];
          h_len = 0;
        }
      in
      Hashtbl.replace t.tbl name (M_histogram h);
      h

let find_histogram t name =
  match Hashtbl.find_opt t.tbl name with Some (M_histogram h) -> Some h | _ -> None

let bucket_of v =
  let n = if v <= 0. then 0 else int_of_float v in
  let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
  min 63 (bits 0 n)

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = h.h_buckets in
  let i = bucket_of v in
  b.(i) <- b.(i) + 1;
  if h.h_len < reservoir_cap then begin
    if h.h_len >= Array.length h.h_samples then begin
      let grown = Array.make (max 64 (2 * Array.length h.h_samples)) 0. in
      Array.blit h.h_samples 0 grown 0 h.h_len;
      h.h_samples <- grown
    end;
    h.h_samples.(h.h_len) <- v;
    h.h_len <- h.h_len + 1
  end

(* Observe a virtual-time duration in nanoseconds as microseconds. *)
let observe_ns h ns = observe h (float_of_int ns /. 1e3)

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
}

let summarize h =
  if h.h_count = 0 then
    { s_count = 0; s_sum = 0.; s_min = 0.; s_max = 0.; s_mean = 0.; s_p50 = 0.; s_p95 = 0.; s_p99 = 0. }
  else begin
    let samples = Array.to_list (Array.sub h.h_samples 0 h.h_len) in
    let p q = Repro_util.Stats.percentile q samples in
    {
      s_count = h.h_count;
      s_sum = h.h_sum;
      s_min = h.h_min;
      s_max = h.h_max;
      s_mean = h.h_sum /. float_of_int h.h_count;
      s_p50 = p 0.5;
      s_p95 = p 0.95;
      s_p99 = p 0.99;
    }
  end

let histogram_summary t name = Option.map summarize (find_histogram t name)

(* --- snapshots ----------------------------------------------------------- *)

type value =
  | V_counter of int
  | V_gauge of float
  | V_histogram of summary

let snapshot t =
  Hashtbl.fold
    (fun name m acc ->
      let v =
        match m with
        | M_counter c -> V_counter c.c_value
        | M_gauge g -> V_gauge g.g_value
        | M_derived f -> V_gauge (f ())
        | M_histogram h -> V_histogram (summarize h)
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters_with_prefix t ~prefix =
  let plen = String.length prefix in
  Hashtbl.fold
    (fun name m acc ->
      match m with
      | M_counter c when String.length name >= plen && String.sub name 0 plen = prefix ->
          (name, c.c_value) :: acc
      | _ -> acc)
    t.tbl []
  |> List.sort compare

(* --- rendering ----------------------------------------------------------- *)

(* Deterministic float formatting: fixed six decimals, non-finite values
   clamped, so JSON output is byte-stable across runs. *)
let json_float v =
  let v = if Float.is_nan v || v = infinity || v = neg_infinity then 0. else v in
  Printf.sprintf "%.6f" v

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_summary s =
  Printf.sprintf
    "{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
    s.s_count (json_float s.s_sum) (json_float s.s_min) (json_float s.s_max)
    (json_float s.s_mean) (json_float s.s_p50) (json_float s.s_p95) (json_float s.s_p99)

let to_json t =
  let snap = snapshot t in
  let section pred render =
    List.filter_map
      (fun (name, v) ->
        match pred v with
        | Some x -> Some (Printf.sprintf "\"%s\":%s" (json_escape name) (render x))
        | None -> None)
      snap
    |> String.concat ","
  in
  let counters =
    section (function V_counter n -> Some n | _ -> None) string_of_int
  in
  let gauges = section (function V_gauge v -> Some v | _ -> None) json_float in
  let histograms =
    section (function V_histogram s -> Some s | _ -> None) json_summary
  in
  Printf.sprintf "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}" counters
    gauges histograms

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | V_counter n -> Fmt.pf ppf "%-48s %12d@." name n
      | V_gauge g -> Fmt.pf ppf "%-48s %12.4f@." name g
      | V_histogram s ->
          Fmt.pf ppf "%-48s n=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f@." name
            s.s_count s.s_mean s.s_p50 s.s_p95 s.s_p99 s.s_max)
    (snapshot t)
