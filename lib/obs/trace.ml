(* Span-based tracing on the virtual clock.  Instrumentation sites record
   (begin, end, attrs) events; the tracer retains the most recent
   [capacity] spans in a ring buffer and optionally forwards every span to
   a pluggable sink — in-memory for tests, JSON-lines for bench/ exports.
   Timestamps are supplied by the caller (its layer's virtual clock), so
   the tracer itself holds no clock and recording is deterministic. *)

type attr = string * string

type span = {
  sp_name : string;
  sp_begin_ns : int64;
  sp_end_ns : int64;
  sp_attrs : attr list;
}

type sink = span -> unit

type t = {
  capacity : int;
  ring : span option array;
  mutable next : int; (* ring write cursor *)
  mutable recorded : int; (* total spans ever recorded *)
  mutable sink : sink option;
}

let create ?(capacity = 4096) () =
  { capacity = max 1 capacity; ring = Array.make (max 1 capacity) None; next = 0; recorded = 0; sink = None }

let set_sink t sink = t.sink <- sink

let record t ~name ~begin_ns ~end_ns ?(attrs = []) () =
  let span = { sp_name = name; sp_begin_ns = begin_ns; sp_end_ns = end_ns; sp_attrs = attrs } in
  t.ring.(t.next) <- Some span;
  t.next <- (t.next + 1) mod t.capacity;
  t.recorded <- t.recorded + 1;
  match t.sink with None -> () | Some sink -> sink span

(* Time [f] on [clock] and record the span around it. *)
let with_span t ~clock ?attrs name f =
  let begin_ns = Repro_util.Clock.now_ns clock in
  let result = f () in
  record t ~name ~begin_ns ~end_ns:(Repro_util.Clock.now_ns clock) ?attrs ();
  result

(* Ring contents, oldest first. *)
let spans t =
  let out = ref [] in
  for i = t.capacity - 1 downto 0 do
    match t.ring.((t.next + i) mod t.capacity) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  !out

let recorded t = t.recorded
let dropped t = max 0 (t.recorded - t.capacity)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.recorded <- 0

(* --- sinks --------------------------------------------------------------- *)

let jsonl_of_span s =
  let attrs =
    s.sp_attrs
    |> List.map (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k) (Metrics.json_escape v))
    |> String.concat ","
  in
  Printf.sprintf "{\"name\":\"%s\",\"begin_ns\":%Ld,\"end_ns\":%Ld,\"attrs\":{%s}}"
    (Metrics.json_escape s.sp_name) s.sp_begin_ns s.sp_end_ns attrs

(* JSON-lines export: one span object per line. *)
let buffer_sink buf span =
  Buffer.add_string buf (jsonl_of_span span);
  Buffer.add_char buf '\n'

(* In-memory sink for tests: returns the sink and a reader for everything
   it has seen (unbounded, unlike the ring). *)
let memory_sink () =
  let seen = ref [] in
  let sink span = seen := span :: !seen in
  (sink, fun () -> List.rev !seen)
