(** Deterministic metrics registry: named counters, gauges and virtual-time
    latency histograms keyed by hierarchical names such as
    ["fuse.req.lookup.latency_us"].

    Naming convention (see README): [<layer>.<subsystem>.<metric>] with
    layers [fuse], [cntrfs], [vfs] and [os]; latency histograms end in
    [_us] (microseconds of virtual time).  All values are derived from the
    virtual clock and seeded RNGs, so two identical runs snapshot to
    byte-identical JSON. *)

type t
(** A registry.  Get-or-create accessors raise [Invalid_argument] when a
    name is reused with a different metric kind. *)

val create : unit -> t

(** {1 Counters} *)

type counter

(** Get or create; hot paths should hold the returned handle. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** Value by name; 0 when absent. *)
val counter_value : t -> string -> int

(** Counters whose name starts with [prefix], sorted by name. *)
val counters_with_prefix : t -> prefix:string -> (string * int) list

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit

(** A gauge computed at snapshot time (hit ratios, amplification factors).
    Re-registering an existing derived name keeps the first closure. *)
val register_derived : t -> string -> (unit -> float) -> unit

(** Stored or derived gauge value by name; 0 when absent. *)
val gauge_value : t -> string -> float

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

(** Record a virtual-time duration in nanoseconds as microseconds. *)
val observe_ns : histogram -> int -> unit

type summary = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p95 : float;
  s_p99 : float;
}

(** Percentiles come from a bounded deterministic sample reservoir backed
    by {!Repro_util.Stats.percentile}. *)
val summarize : histogram -> summary

(** Look up an existing histogram without creating one. *)
val find_histogram : t -> string -> histogram option

(** [summarize] of an existing histogram; [None] when the name was never
    observed.  Readers (benches, the daemon's [session.stat]) use this so a
    probe never mutates the registry. *)
val histogram_summary : t -> string -> summary option

(** {1 Snapshots} *)

type value = V_counter of int | V_gauge of float | V_histogram of summary

(** All metrics, sorted by name; derived gauges are evaluated here. *)
val snapshot : t -> (string * value) list

(** Deterministic JSON object with sorted ["counters"], ["gauges"] and
    ["histograms"] sections. *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit

(** JSON string escaping shared with {!Trace} renderers. *)
val json_escape : string -> string
