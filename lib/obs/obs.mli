(** Unified observability handle: a {!Metrics} registry paired with a
    {!Trace} tracer.  One [t] is shared across the FUSE, CntrFS, VFS and
    OS layers so that [cntr stats] and bench exports read all counters
    from a single source of truth. *)

type t = { metrics : Metrics.t; tracer : Trace.t }

val create : ?trace_capacity:int -> unit -> t
val metrics : t -> Metrics.t
val tracer : t -> Trace.t

(** Deterministic JSON snapshot of the metrics registry. *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit
