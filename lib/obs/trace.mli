(** Span-based tracing on the virtual clock: [(begin, end, attrs)] events
    with ring-buffer retention and pluggable sinks (in-memory for tests,
    JSON-lines for bench/ exports).  Timestamps come from the recording
    site's virtual clock; the tracer holds no clock of its own. *)

type attr = string * string

type span = {
  sp_name : string;
  sp_begin_ns : int64;
  sp_end_ns : int64;
  sp_attrs : attr list;
}

(** A sink sees every recorded span, even those later overwritten in the
    ring. *)
type sink = span -> unit

type t

(** [capacity] bounds ring retention (default 4096 spans). *)
val create : ?capacity:int -> unit -> t

val set_sink : t -> sink option -> unit

val record :
  t -> name:string -> begin_ns:int64 -> end_ns:int64 -> ?attrs:attr list -> unit -> unit

(** Time [f] on [clock] and record the span around it. *)
val with_span : t -> clock:Repro_util.Clock.t -> ?attrs:attr list -> string -> (unit -> 'a) -> 'a

(** Retained spans, oldest first. *)
val spans : t -> span list

(** Total spans ever recorded. *)
val recorded : t -> int

(** Spans evicted from the ring ([recorded - capacity], floored at 0). *)
val dropped : t -> int

val clear : t -> unit

(** One-line JSON rendering of a span (the JSON-lines export format). *)
val jsonl_of_span : span -> string

(** Append [jsonl_of_span] lines to a buffer. *)
val buffer_sink : Buffer.t -> sink

(** In-memory sink plus a reader of everything it has seen (unbounded,
    unlike the ring). *)
val memory_sink : unit -> sink * (unit -> span list)
