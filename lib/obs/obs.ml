(* The unified observability handle threaded through the simulation: one
   metrics registry plus one tracer.  Layers share a single [t] (created by
   World or a test harness) so every counter lands in one place and
   [cntr stats] / bench exports read from a single source of truth. *)

type t = { metrics : Metrics.t; tracer : Trace.t }

let create ?trace_capacity () =
  { metrics = Metrics.create (); tracer = Trace.create ?capacity:trace_capacity () }

let metrics t = t.metrics
let tracer t = t.tracer
let to_json t = Metrics.to_json t.metrics
let pp ppf t = Metrics.pp ppf t.metrics
