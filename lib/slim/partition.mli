(** Static dependency-graph partitioning (Cimplifier-style): slim an image
    by walking [<path>.deps] sidecars from the entrypoint instead of
    running the container under fanotify.  `lib:`/`conf:` lines keep
    single files (symlinks resolved), `data:` lines keep whole
    directories; the result is closed over ancestors and
    {!Slimmer.always_keep}.  Keeps a superset of the dynamic working set
    — offline and parallelizable, but reductions trail {!Slimmer}'s. *)

type report = {
  p_image : string;  (** "name:tag" of the partitioned image *)
  p_original_bytes : int;
  p_slim_bytes : int;
  p_reduction : float;  (** 0.0 – 1.0, same metric as {!Slimmer.report} *)
  p_original_files : int;
  p_slim_files : int;
  p_kept_paths : string list;
}

(** Sidecar suffix appended to a kept path to find its dependency list. *)
val deps_suffix : string

(** The statically-declared keep set: entrypoint, followed sidecars,
    ancestors, identity files.  Keeps everything if the image has no
    entrypoint. *)
val keep_set : Repro_image.Image.t -> (string, unit) Hashtbl.t

(** Partition without running: returns the report and the slim image
    (name suffixed "-static-slim"). *)
val slim : Repro_image.Image.t -> report * Repro_image.Image.t
