(** Registry-scale parallel slimming sweep: one task per image on a
    work-stealing pool of {!Repro_sched.Sched} fibers.  Images are
    block-partitioned across workers; cost heterogeneity across program
    families drives the stealing.  Virtual-time throughout: elapsed is
    the max over worker timelines. *)

type stats = {
  sw_images : int;
  sw_workers : int;
  sw_elapsed_ns : int64;  (** virtual wall time of the whole sweep *)
  sw_images_per_s : float;  (** images / virtual second *)
  sw_steals : int;
  sw_steal_fails : int;
  sw_local_hits : int;
}

(** [run ~clock ~images ~cost_ns ~f ()] maps [f] over [images] on
    [workers] fibers, charging [cost_ns image] of virtual time per image.
    Results come back in submission order.  When [metrics] is given the
    pool counters are mirrored to [sched.steals], [sched.steal_fails] and
    [sched.local_hits]. *)
val run :
  ?workers:int ->
  ?metrics:Repro_obs.Metrics.t ->
  clock:Repro_util.Clock.t ->
  images:Repro_image.Image.t list ->
  cost_ns:(Repro_image.Image.t -> int) ->
  f:(Repro_image.Image.t -> 'a) ->
  unit ->
  stats * 'a list
