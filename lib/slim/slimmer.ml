(* Docker-Slim (§5.3): run the container under fanotify observation, keep
   only the accessed closure, and emit a single-layer slim image.  The
   result is what a developer with CNTR would ship: the application and its
   true runtime dependencies — tools move to a fat image instead. *)

open Repro_util
open Repro_os
open Repro_image
open Repro_runtime

type report = {
  r_image : string;
  r_original_bytes : int;
  r_slim_bytes : int;
  r_reduction : float; (* 0.0 - 1.0 *)
  r_original_files : int;
  r_slim_files : int;
  r_kept_paths : string list;
}

let ( let* ) = Result.bind

(* Paths docker-slim always keeps (identity and name resolution). *)
let always_keep = [ "/etc/passwd"; "/etc/group"; "/etc/hostname"; "/etc/resolv.conf" ]

(* The keep-set closure: accessed paths, their parent directories, and the
   always-keep list. *)
let closure accessed =
  let keep = Hashtbl.create 256 in
  let rec add path =
    if not (Hashtbl.mem keep path) then begin
      Hashtbl.replace keep path ();
      let parent = Pathx.dirname path in
      if parent <> path && parent <> "/" then add parent
    end
  in
  List.iter add accessed;
  List.iter add always_keep;
  keep

(* Filter the image's effective content down to the keep-set. *)
let build_slim_image image keep =
  (* walk layers bottom-up applying whiteouts, retaining last version of
     each kept path *)
  let final = Hashtbl.create 256 in
  List.iter
    (fun layer ->
      List.iter
        (fun entry ->
          match entry with
          | Layer.Whiteout p -> Hashtbl.remove final p
          | Layer.Dir { path; _ } | Layer.File { path; _ } | Layer.Symlink { path; _ } ->
              if Hashtbl.mem keep path then Hashtbl.replace final path entry)
        layer.Layer.entries)
    image.Image.layers;
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) final []
    |> List.sort (fun a b ->
           let path = function
             | Layer.Dir { path; _ } | Layer.File { path; _ } | Layer.Symlink { path; _ } -> path
             | Layer.Whiteout p -> p
           in
           compare (path a) (path b))
  in
  Image.v ~name:(image.Image.name ^ "-slim") ~tag:image.Image.tag ~config:image.Image.config
    [ Layer.v ~id:("slim:" ^ Image.ref_ image) entries ]

(* Analyze one image: instrument, run, record, slim, validate. *)
let analyze ~world image =
  let kernel = world.World.kernel in
  let recorder = Fanotify.create () in
  let engine = World.docker world in
  let name = "slim-probe-" ^ image.Image.name in
  let* container =
    Engine.run engine ~name ~wrap_rootfs:(Fanotify.wrap recorder) image
  in
  (* the entrypoint ran during startup and touched its working set; exercise
     it once more the way an operator smoke-tests the service *)
  let* () =
    match image.Image.config.Image.entrypoint with
    | [] -> Ok ()
    | bin :: args ->
        let* _code = Kernel.exec kernel container.Container.ct_main bin (bin :: args) in
        Ok ()
  in
  let accessed = Fanotify.accessed_paths recorder in
  let keep = closure accessed in
  let slim = build_slim_image image keep in
  Engine.remove engine name |> Result.value ~default:();
  let original_bytes = Image.effective_size image in
  let slim_bytes = Image.effective_size slim in
  let reduction =
    if original_bytes = 0 then 0.
    else 1. -. (float_of_int slim_bytes /. float_of_int original_bytes)
  in
  Ok
    {
      r_image = Image.ref_ image;
      r_original_bytes = original_bytes;
      r_slim_bytes = slim_bytes;
      r_reduction = reduction;
      r_original_files = List.length (Image.effective_paths image);
      r_slim_files = List.length (Image.effective_paths slim);
      r_kept_paths = Hashtbl.fold (fun p () acc -> p :: acc) keep [] |> List.sort compare;
    }

(* Validate that the slim image still runs: boot a container from it and
   check the entrypoint exits cleanly. *)
let validate ~world slim_image =
  let engine = World.docker world in
  let name = "slim-validate-" ^ slim_image.Image.name in
  match Engine.run engine ~name slim_image with
  | Error e -> Error e
  | Ok container ->
      let result =
        match slim_image.Image.config.Image.entrypoint with
        | [] -> Ok true
        | bin :: args -> (
            match
              Kernel.exec world.World.kernel container.Container.ct_main bin (bin :: args)
            with
            | Ok 0 -> Ok true
            | Ok _ -> Ok false
            | Error e -> Error e)
      in
      Engine.remove engine name |> Result.value ~default:();
      result

(* Analyze-and-slim an image, returning both the report and the image. *)
let slim ~world image =
  let* report = analyze ~world image in
  let keep = closure (List.map Fun.id report.r_kept_paths) in
  Ok (report, build_slim_image image keep)
