(* fanotify-style access recording (§5.3).  Docker-Slim watches which files
   a container touches during a representative run; here the recorder wraps
   the rootfs [Fsops.t], logging opened/read/executed paths.  Paths are
   reconstructed from lookup edges, since the kernel walks component by
   component. *)

open Repro_util
open Repro_vfs

type t = {
  (* ino -> full path, built incrementally from lookups *)
  paths : (Types.ino, string) Hashtbl.t;
  (* the access log: paths opened, created, read or listed *)
  accessed : (string, unit) Hashtbl.t;
  (* fh -> ino for read attribution *)
  fh_ino : (int, Types.ino) Hashtbl.t;
}

let create () = {
  paths = Hashtbl.create 256;
  accessed = Hashtbl.create 256;
  fh_ino = Hashtbl.create 32;
}

let path_of t ino = Hashtbl.find_opt t.paths ino

let record t path = Hashtbl.replace t.accessed path ()

let record_ino t ino =
  match path_of t ino with Some p -> record t p | None -> ()

let accessed_paths t =
  Hashtbl.fold (fun p () acc -> p :: acc) t.accessed [] |> List.sort compare

(* Wrap [ops], recording accesses into [t]. *)
let wrap t (ops : Fsops.t) : Fsops.t =
  Hashtbl.replace t.paths ops.Fsops.root "/";
  let remember_child parent name ino =
    match path_of t parent with
    | Some dir when name <> "." && name <> ".." ->
        Hashtbl.replace t.paths ino (Pathx.concat dir name)
    | _ -> ()
  in
  {
    ops with
    Fsops.lookup =
      (fun cred parent name ->
        match ops.Fsops.lookup cred parent name with
        | Ok (ino, st) ->
            remember_child parent name ino;
            Ok (ino, st)
        | Error _ as e -> e);
    open_ =
      (fun cred ino flags ->
        match ops.Fsops.open_ cred ino flags with
        | Ok fh ->
            record_ino t ino;
            Hashtbl.replace t.fh_ino fh ino;
            Ok fh
        | Error _ as e -> e);
    create =
      (fun cred parent name ~mode flags ->
        match ops.Fsops.create cred parent name ~mode flags with
        | Ok (st, fh) ->
            remember_child parent name st.Types.st_ino;
            record_ino t st.Types.st_ino;
            Hashtbl.replace t.fh_ino fh st.Types.st_ino;
            Ok (st, fh)
        | Error _ as e -> e);
    readlink =
      (fun ino ->
        match ops.Fsops.readlink ino with
        | Ok target ->
            record_ino t ino;
            Ok target
        | Error _ as e -> e);
    readdir =
      (fun cred ino ->
        match ops.Fsops.readdir cred ino with
        | Ok entries ->
            record_ino t ino;
            Ok entries
        | Error _ as e -> e);
    getxattr =
      (fun ino name ->
        match ops.Fsops.getxattr ino name with
        | Ok v ->
            record_ino t ino;
            Ok v
        | Error _ as e -> e);
  }
