(* Static dependency-graph partitioning (Cimplifier-style): slim an image
   by walking its declared dependency graph instead of observing a run.
   Starting from the entrypoint binary, follow [<path>.deps] sidecars —
   `lib:` / `conf:` lines name single files, `data:` lines name whole
   directories — resolving symlinks along the way, then close over
   ancestor directories and the identity files shared with the dynamic
   strategy ({!Slimmer.closure}).

   The trade against fanotify tracing is the classic one: no container
   ever runs (so a whole registry can be partitioned offline, in
   parallel), but the keep-set is the *declared* closure, a superset of
   the observed working set — cold data directories ride along, so static
   reductions trail dynamic ones. *)

open Repro_util
open Repro_image

type report = {
  p_image : string;  (** "name:tag" of the partitioned image *)
  p_original_bytes : int;
  p_slim_bytes : int;
  p_reduction : float;  (** 0.0 – 1.0, same metric as {!Slimmer.report} *)
  p_original_files : int;
  p_slim_files : int;
  p_kept_paths : string list;
}

let deps_suffix = ".deps"

(* One sidecar line: "kind:path".  A bare path is treated as a lib. *)
let parse_deps text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" then None
         else
           match String.index_opt line ':' with
           | Some i ->
               Some
                 ( String.sub line 0 i,
                   String.sub line (i + 1) (String.length line - i - 1) )
           | None -> Some ("lib", line))

let keep_set image =
  let entries = Image.effective_entries image in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let enqueue p =
    let p = Pathx.normalize p in
    if not (Hashtbl.mem seen p) then begin
      Hashtbl.replace seen p ();
      Queue.add p queue
    end
  in
  (match image.Image.config.Image.entrypoint with
  | bin :: _ -> enqueue bin
  | [] ->
      (* no root to partition from: keep everything *)
      Hashtbl.iter (fun p _ -> enqueue p) entries);
  while not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    (match Hashtbl.find_opt entries p with
    | Some (Layer.Symlink { target; _ }) ->
        enqueue
          (if Pathx.is_absolute target then target
           else Pathx.concat (Pathx.dirname p) target)
    | _ -> ());
    let sidecar = p ^ deps_suffix in
    match Hashtbl.find_opt entries sidecar with
    | Some (Layer.File { content = Content.Literal text; _ }) ->
        enqueue sidecar;
        List.iter
          (fun (kind, target) ->
            match kind with
            | "data" ->
                (* a directory dependency keeps its whole subtree *)
                Hashtbl.iter
                  (fun path _ ->
                    if path = target || Pathx.is_under ~dir:target path then
                      enqueue path)
                  entries
            | _ -> enqueue target)
          (parse_deps text)
    | _ -> ()
  done;
  Slimmer.closure (Hashtbl.fold (fun p () acc -> p :: acc) seen [])

let slim image =
  let keep = keep_set image in
  let slim_image =
    { (Slimmer.build_slim_image image keep) with Image.name = image.Image.name ^ "-static" }
  in
  let original_bytes = Image.effective_size image in
  let slim_bytes = Image.effective_size slim_image in
  let report =
    {
      p_image = Image.ref_ image;
      p_original_bytes = original_bytes;
      p_slim_bytes = slim_bytes;
      p_reduction =
        (if original_bytes = 0 then 0.0
         else 1.0 -. (float_of_int slim_bytes /. float_of_int original_bytes));
      p_original_files = List.length (Image.effective_paths image);
      p_slim_files = List.length (Image.effective_paths slim_image);
      p_kept_paths = Hashtbl.fold (fun p () acc -> p :: acc) keep [] |> List.sort compare;
    }
  in
  (report, slim_image)
