(** fanotify-style access recording: wraps a filesystem's operations and
    logs every path that is opened, created, listed, read-linked or
    xattr-probed.  Paths are reconstructed from lookup edges, since the
    kernel walks component by component. *)

open Repro_vfs

type t

val create : unit -> t

(** Wrap [ops] so accesses are recorded into [t]. *)
val wrap : t -> Fsops.t -> Fsops.t

(** All recorded paths, sorted. *)
val accessed_paths : t -> string list

(** Manually mark a path as accessed. *)
val record : t -> string -> unit
