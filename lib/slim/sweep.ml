(* Registry-scale parallel slimming: run one slimming task per image over
   a work-stealing pool of {!Repro_sched.Sched} fibers.  Images are
   block-partitioned across the workers up front (worker [w] owns a
   contiguous slice), so per-family cost heterogeneity empties some deques
   early and the idle workers go stealing — the same pickup pattern as the
   FUSE request scheduler, measured here at the image granularity.

   All concurrency is virtual-time: workers overlap where their timelines
   allow, and the sweep's elapsed time is the max over worker timelines,
   not the sum of per-image costs. *)

open Repro_util
module Sched = Repro_sched.Sched
module Metrics = Repro_obs.Metrics

type stats = {
  sw_images : int;
  sw_workers : int;
  sw_elapsed_ns : int64;
  sw_images_per_s : float;
  sw_steals : int;
  sw_steal_fails : int;
  sw_local_hits : int;
}

let run ?(workers = 8) ?metrics ~clock ~images ~cost_ns ~f () =
  let arr = Array.of_list images in
  let n = Array.length arr in
  let workers = max 1 (min workers (max n 1)) in
  let results = Array.make n None in
  let sched = Sched.create ~clock in
  let pool = Sched.Ws.create () in
  Sched.Ws.ensure pool workers;
  (* block partition: worker [w] owns slice [w*n/workers, (w+1)*n/workers) *)
  for w = 0 to workers - 1 do
    let lo = w * n / workers and hi = (w + 1) * n / workers in
    for i = lo to hi - 1 do
      Sched.Ws.push pool w i
    done
  done;
  let t0 = Clock.now_ns clock in
  let exec i =
    let image = arr.(i) in
    Clock.consume_int clock (cost_ns image);
    results.(i) <- Some (f image)
  in
  (* Own deque first (FIFO over the owned slice), then steal until the
     whole pool is drained.  Single-threaded fibers make the emptiness
     check exact: queued = 0 really means no work anywhere. *)
  let rec work w =
    match Sched.Ws.pop pool w with
    | Some i ->
        exec i;
        Sched.yield sched;
        work w
    | None -> steal w
  and steal w =
    if Sched.Ws.queued pool > 0 then begin
      let stolen =
        List.fold_left
          (fun acc victim ->
            match acc with
            | Some _ -> acc
            | None -> Sched.Ws.steal_from pool ~victim)
          None
          (Sched.Ws.victim_order pool ~thief:w ~now:(Clock.now_ns clock))
      in
      (match stolen with
      | Some i -> exec i
      | None -> Sched.Ws.steal_failed pool);
      Sched.yield sched;
      steal w
    end
  in
  let tasks = List.init workers (fun w -> Sched.spawn sched (fun () -> work w)) in
  List.iter (fun t -> Sched.await sched t) tasks;
  let elapsed = Int64.sub (Clock.now_ns clock) t0 in
  (match metrics with
  | None -> ()
  | Some m ->
      Metrics.add (Metrics.counter m "sched.steals") (Sched.Ws.steals pool);
      Metrics.add (Metrics.counter m "sched.steal_fails") (Sched.Ws.steal_fails pool);
      Metrics.add (Metrics.counter m "sched.local_hits") (Sched.Ws.local_hits pool));
  let stats =
    {
      sw_images = n;
      sw_workers = workers;
      sw_elapsed_ns = elapsed;
      sw_images_per_s =
        (if Int64.compare elapsed 0L > 0 then
           float_of_int n /. (Int64.to_float elapsed /. 1e9)
         else 0.0);
      sw_steals = Sched.Ws.steals pool;
      sw_steal_fails = Sched.Ws.steal_fails pool;
      sw_local_hits = Sched.Ws.local_hits pool;
    }
  in
  let out = Array.to_list (Array.map Option.get results) in
  (stats, out)
