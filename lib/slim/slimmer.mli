(** Docker-Slim (§5.3): run a container under fanotify observation, keep
    only the accessed closure, and emit a single-layer slim image — the
    workflow that produces the slim/fat split CNTR assumes. *)

open Repro_runtime

type report = {
  r_image : string;  (** "name:tag" of the analyzed image *)
  r_original_bytes : int;
  r_slim_bytes : int;
  r_reduction : float;  (** 0.0 – 1.0; Figure 5's metric *)
  r_original_files : int;
  r_slim_files : int;
  r_kept_paths : string list;  (** the keep-set closure *)
}

(** Paths always kept regardless of observation (identity files). *)
val always_keep : string list

(** The keep-set closure of a list of accessed paths: the paths, their
    ancestor directories, and {!always_keep}. *)
val closure : string list -> (string, unit) Hashtbl.t

(** Filter an image's effective content down to a keep-set, producing the
    slim image (single layer, same config, name suffixed "-slim"). *)
val build_slim_image : Repro_image.Image.t -> (string, unit) Hashtbl.t -> Repro_image.Image.t

(** Instrument a container run with the fanotify recorder and report what
    the application actually touches. *)
val analyze : world:World.t -> Repro_image.Image.t -> (report, Repro_util.Errno.t) result

(** Boot a container from the slim image and check its entrypoint still
    exits cleanly. *)
val validate : world:World.t -> Repro_image.Image.t -> (bool, Repro_util.Errno.t) result

(** {!analyze} + {!build_slim_image}. *)
val slim :
  world:World.t ->
  Repro_image.Image.t ->
  (report * Repro_image.Image.t, Repro_util.Errno.t) result
