(* The FUSE wire protocol, typed.  Requests flow from the kernel-side
   driver to the userspace server; each carries the calling process's
   context (uid/gid/pid), as the real protocol does.  The shapes mirror the
   lowlevel FUSE API that rust-fuse exposes and CNTR implements (§4). *)

open Repro_util
open Repro_vfs

type ctx = { c_uid : int; c_gid : int; c_pid : int }

let root_ctx = { c_uid = 0; c_gid = 0; c_pid = 0 }

(* A passthrough grant: the capability the server hands back from OPEN
   when the client asked for one and the file qualifies.  The closures
   reach the backing VFS directly on the server's proc — the model of
   FUSE_PASSTHROUGH's backing-file fd, over which the kernel does I/O
   without ever queueing a FUSE request.  [g_valid] is the revocation
   flag: the server flips it (LRU overflow, inode mutation, crash) and
   the driver checks it before every bypass; a revoked grant falls back
   to round-trip I/O. *)
type grant = {
  g_ino : Types.ino;  (* driver-side ino the grant was issued for *)
  mutable g_valid : bool;
  g_read : off:int -> len:int -> (string, Errno.t) result;
  g_write : ctx -> off:int -> string -> (int, Errno.t) result;
}

type req =
  | Lookup of { parent : Types.ino; name : string }
  | Forget of (Types.ino * int) list (* (ino, nlookup) pairs, batchable *)
  | Getattr of Types.ino
  | Setattr of Types.ino * Types.setattr
  | Readlink of Types.ino
  | Mknod of { parent : Types.ino; name : string; kind : Types.kind; mode : int }
  | Mkdir of { parent : Types.ino; name : string; mode : int }
  | Unlink of { parent : Types.ino; name : string }
  | Rmdir of { parent : Types.ino; name : string }
  | Symlink of { parent : Types.ino; name : string; target : string }
  | Rename of { src_parent : Types.ino; src_name : string; dst_parent : Types.ino; dst_name : string }
  | Link of { src : Types.ino; parent : Types.ino; name : string }
  | Open of { ino : Types.ino; flags : Types.open_flag list; want_pt : bool }
  | Create of { parent : Types.ino; name : string; mode : int; flags : Types.open_flag list }
  | Read of { fh : int; off : int; len : int }
  | Write of { fh : int; off : int; data : string }
  | Flush of int
  | Release of int
  | Fsync of int
  | Fallocate of { fh : int; off : int; len : int }
  | Readdir of Types.ino
  | Readdirplus of Types.ino
  | Getxattr of Types.ino * string
  | Setxattr of Types.ino * string * string
  | Listxattr of Types.ino
  | Removexattr of Types.ino * string
  | Statfs
  | Destroy

type resp =
  | R_entry of Types.ino * Types.stat (* lookup / node creation replies *)
  | R_attr of Types.stat
  | R_data of string
  | R_written of int
  | R_open of int (* server-side fh *)
  | R_open_pt of int * grant (* fh plus a passthrough grant on the backing file *)
  | R_create of Types.ino * Types.stat * int
  | R_dirents of Types.dirent list
  (* READDIRPLUS reply: each entry also carries the attr the driver would
     have fetched with a LOOKUP, plus how long the dentry and the attr may
     be cached ([entry_valid_ns], [attr_valid_ns]).  "." and ".." (and
     entries the server could not stat) carry no attr. *)
  | R_direntplus of (Types.dirent * Types.stat option * int * int) list
  | R_readlink of string
  | R_xattr of string
  | R_xattr_names of string list
  | R_statfs of Types.statfs
  | R_ok
  (* RENAME reply: the inode the rename displaced, if the target name
     existed — the driver must drop its cached attrs (nlink fell), and its
     dentry cache alone cannot tell (the target's entry may have expired) *)
  | R_renamed of Types.ino option
  | R_err of Errno.t

let req_kind = function
  | Lookup _ -> "lookup"
  | Forget _ -> "forget"
  | Getattr _ -> "getattr"
  | Setattr _ -> "setattr"
  | Readlink _ -> "readlink"
  | Mknod _ -> "mknod"
  | Mkdir _ -> "mkdir"
  | Unlink _ -> "unlink"
  | Rmdir _ -> "rmdir"
  | Symlink _ -> "symlink"
  | Rename _ -> "rename"
  | Link _ -> "link"
  | Open _ -> "open"
  | Create _ -> "create"
  | Read _ -> "read"
  | Write _ -> "write"
  | Flush _ -> "flush"
  | Release _ -> "release"
  | Fsync _ -> "fsync"
  | Fallocate _ -> "fallocate"
  | Readdir _ -> "readdir"
  | Readdirplus _ -> "readdirplus"
  | Getxattr _ -> "getxattr"
  | Setxattr _ -> "setxattr"
  | Listxattr _ -> "listxattr"
  | Removexattr _ -> "removexattr"
  | Statfs -> "statfs"
  | Destroy -> "destroy"

(* Safe to re-send when a reply is lost or times out.  Read-only opcodes
   plus Flush/Fsync; Open is excluded (a dropped reply would leak a server
   file handle) and so is Write (a duplicate would double-apply for
   O_APPEND files). *)
let idempotent = function
  | Lookup _ | Getattr _ | Readlink _ | Read _ | Readdir _ | Readdirplus _
  | Getxattr _ | Listxattr _ | Statfs | Flush _ | Fsync _ ->
      true
  | _ -> false

(* Approximate payload size carried *to* the server (for copy costs).  The
   fixed header is 80 bytes, like the real fuse_in_header + op body. *)
let req_payload_bytes = function
  | Write { data; _ } -> 80 + String.length data
  | Setxattr (_, n, v) -> 80 + String.length n + String.length v
  | Lookup { name; _ } | Unlink { name; _ } | Rmdir { name; _ } -> 80 + String.length name
  | Symlink { name; target; _ } -> 80 + String.length name + String.length target
  | Forget l -> 16 + (16 * List.length l)
  | _ -> 80

(* Approximate payload size carried *back* from the server. *)
let resp_payload_bytes = function
  | R_data s | R_readlink s | R_xattr s -> 16 + String.length s
  | R_dirents l -> 16 + (64 * List.length l)
  (* fuse_direntplus: a dirent plus a full fuse_entry_out per entry *)
  | R_direntplus l -> 16 + (192 * List.length l)
  | R_xattr_names l -> 16 + List.fold_left (fun a s -> a + String.length s + 1) 0 l
  | _ -> 96

let err_of_resp = function R_err e -> Error e | r -> Ok r
