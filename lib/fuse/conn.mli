(** A FUSE connection (/dev/fuse): the transport between the kernel driver
    and the userspace server, where the FUSE tax is charged — two context
    switches per round trip, payload copies (or splice), and the server's
    multi-thread coordination.  Batched requests amortize the context
    switches (§3.3).

    Accounting lands in the connection's {!Repro_obs.Obs.t}: aggregate
    counters ([fuse.req.count], [fuse.round_trips], [fuse.bytes.*]),
    per-opcode counters and latency histograms
    ([fuse.req.<kind>.count|bytes_to_server|bytes_from_server|latency_us]),
    context switches ([os.context_switches]) and one trace span per
    foreground request. *)

open Repro_util

(** Immutable snapshot of the connection's registry counters, built by
    {!stats}; [by_kind] is a fresh table of per-opcode request counts. *)
type stats = {
  requests : int;
  round_trips : int;
  bytes_to_server : int;
  bytes_from_server : int;
  spliced_bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

(** Per-opcode counter handles cached on the connection. *)
type kind_metrics

type t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
  mutable handler : (Protocol.ctx -> Protocol.req -> Protocol.resp) option;
  mutable threads : int;  (** server worker threads (Figure 4) *)
  mutable thread_coord_ns : int;
  mutable serving : bool;
  mutable background : bool;
      (** while true, calls charge no virtual time (background writeback) *)
  mutable rt_carry : float;
      (** fractional round trips accumulated by batched calls, so
          [fuse.round_trips] / [os.context_switches] report what was
          actually charged *)
  m_requests : Repro_obs.Metrics.counter;
  m_round_trips : Repro_obs.Metrics.counter;
  m_bytes_to : Repro_obs.Metrics.counter;
  m_bytes_from : Repro_obs.Metrics.counter;
  m_spliced : Repro_obs.Metrics.counter;
  m_copied : Repro_obs.Metrics.counter;
  m_ctx_switches : Repro_obs.Metrics.counter;
  by_kind : (string, kind_metrics) Hashtbl.t;
}

(** [obs] defaults to a private handle; pass the kernel's to aggregate
    FUSE traffic with the rest of the world's metrics. *)
val create : ?obs:Repro_obs.Obs.t -> clock:Clock.t -> cost:Cost.t -> unit -> t

val obs : t -> Repro_obs.Obs.t

(** Fresh snapshot of the registry counters. *)
val stats : t -> stats

(** Install the server's request handler. *)
val set_handler : t -> (Protocol.ctx -> Protocol.req -> Protocol.resp) -> unit

(** The CNTR handshake: the child signals once CntrFS is mounted inside the
    nested namespace; only then does the server read /dev/fuse (§3.2.2).
    Calls before this return [ENOTCONN]. *)
val start_serving : t -> unit

(** Issue one request.  [batch] divides the context-switch cost (async
    reads, coalesced forgets); [splice] moves payloads by page remapping
    instead of copying. *)
val call : t -> ?batch:int -> ?splice:bool -> Protocol.ctx -> Protocol.req -> Protocol.resp
