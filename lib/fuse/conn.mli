(** A FUSE connection (/dev/fuse): the transport between the kernel driver
    and the userspace server, modeled as a discrete-event request queue
    (the kernel's fuse_conn).  Each worker fiber owns a local submission
    deque behind its own shard lock; submitters place requests on one
    worker's deque (most recently parked worker first, round-robin
    otherwise) and wake that worker alone, and workers that drain their
    deque steal the oldest ready entry from a deterministically chosen
    victim before parking.  Concurrency costs (context-switch amortization
    under load, steal walks, multi-client overlap) are emergent from queue
    state rather than closed-form.

    One-way messages (FORGET, RELEASE) form the background request class,
    bounded by [max_background]: at the threshold submitters block until
    the pool drains (congestion backpressure).

    Accounting lands in the connection's {!Repro_obs.Obs.t}: aggregate
    counters ([fuse.req.count], [fuse.round_trips], [fuse.bytes.*]),
    queue-depth gauges ([fuse.queue.depth.max], derived
    [fuse.queue.depth.mean]), per-worker deque high-water marks
    ([fuse.queue.per_worker_depth.<i>]), in-flight gauges
    ([fuse.inflight], [fuse.inflight.max]), spurious wakeups
    ([fuse.wakeups.spurious]), work-stealing counters ([sched.steals],
    [sched.steal_fails], [sched.local_hits]), queue-wait and per-opcode
    latency histograms, per-worker busy time ([cntrfs.worker.<i>.busy_ns]),
    context switches ([os.context_switches]) and one trace span per
    request. *)

open Repro_util

(** Immutable snapshot of the connection's registry counters, built by
    {!stats}; [by_kind] is a fresh table of per-opcode request counts. *)
type stats = {
  requests : int;
  round_trips : int;
  bytes_to_server : int;
  bytes_from_server : int;
  spliced_bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

(** Per-opcode counter handles cached on the connection. *)
type kind_metrics

(** An in-flight request parked on the pending queue. *)
type item

type worker

type t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
  sched : Repro_sched.Sched.t;
  mutable handler : (Protocol.ctx -> Protocol.req -> Protocol.resp) option;
  mutable threads : int;  (** server worker threads (Figure 4) *)
  mutable max_background : int;
      (** congestion threshold for the one-way background class *)
  mutable serving : bool;
  mutable dead : bool;
      (** the server crashed; calls fail [ENOTCONN] until {!revive} *)
  mutable background : bool;
      (** while true, calls charge no virtual time (background writeback) *)
  mutable fault : Repro_fault.Fault.t option;
      (** armed fault plane — [None] means every consult short-circuits *)
  mutable retry : Repro_fault.Fault.retry;
  forced : Repro_fault.Fault.action Queue.t;
      (** one-shot test-hook actions, served before the plan *)
  mutable m_retries : Repro_obs.Metrics.counter option;
  mutable m_timeouts : Repro_obs.Metrics.counter option;
  mutable m_splice_calls : Repro_obs.Metrics.counter option;
      (** [fuse.splice.calls], created on the first spliced transfer *)
  mutable m_splice_bytes : Repro_obs.Metrics.counter option;
  pool : item Repro_sched.Sched.Ws.t;
  bg_lock : Repro_sched.Sched.mutex;
  bg_cond : Repro_sched.Sched.cond;
  mutable bg_inflight : int;
  mutable inflight : int;
  mutable inflight_max : int;
  mutable qdepth_max : int;
  mutable workers : worker array;
  mutable worker_exn : exn option;
  m_requests : Repro_obs.Metrics.counter;
  m_round_trips : Repro_obs.Metrics.counter;
  m_bytes_to : Repro_obs.Metrics.counter;
  m_bytes_from : Repro_obs.Metrics.counter;
  m_spliced : Repro_obs.Metrics.counter;
  m_copied : Repro_obs.Metrics.counter;
  m_ctx_switches : Repro_obs.Metrics.counter;
  m_qdepth_max : Repro_obs.Metrics.gauge;
  m_qdepth_sum : Repro_obs.Metrics.counter;
  m_qdepth_samples : Repro_obs.Metrics.counter;
  m_inflight : Repro_obs.Metrics.gauge;
  m_inflight_max : Repro_obs.Metrics.gauge;
  m_spurious : Repro_obs.Metrics.counter;
  m_steals : Repro_obs.Metrics.counter;
  m_steal_fails : Repro_obs.Metrics.counter;
  m_local_hits : Repro_obs.Metrics.counter;
  m_qwait : Repro_obs.Metrics.histogram;
  by_kind : (string, kind_metrics) Hashtbl.t;
}

(** [obs] defaults to a private handle; pass the kernel's to aggregate
    FUSE traffic with the rest of the world's metrics.  [sched] defaults
    to a private scheduler over [clock]; pass the world's to let requests
    overlap with other tasks. *)
val create :
  ?obs:Repro_obs.Obs.t ->
  ?sched:Repro_sched.Sched.t ->
  clock:Clock.t ->
  cost:Cost.t ->
  unit ->
  t

val obs : t -> Repro_obs.Obs.t
val sched : t -> Repro_sched.Sched.t

(** Fresh snapshot of the registry counters. *)
val stats : t -> stats

(** Install the server's request handler. *)
val set_handler : t -> (Protocol.ctx -> Protocol.req -> Protocol.resp) -> unit

(** The CNTR handshake: the child signals once CntrFS is mounted inside the
    nested namespace; only then does the server read /dev/fuse (§3.2.2).
    Calls before this return [ENOTCONN].  Spawns the worker pool. *)
val start_serving : t -> unit

(** Arm supervision on a live connection: a fault plane consulted while
    serving, and/or a per-request deadline + retry policy.  Creates the
    [fuse.retries] / [fuse.timeouts] counters (only armed sessions touch
    the registry — the plane is zero-cost when off). *)
val supervise :
  t -> ?fault:Repro_fault.Fault.t -> ?retry:Repro_fault.Fault.retry -> unit -> unit

(** Push a one-shot fault for the next served request (test hook; works
    without arming a plan). *)
val inject : t -> Repro_fault.Fault.action -> unit

(** Kill the server now: stop serving, resolve every queued request with
    [ENOTCONN], mark the connection dead (test hook / plan [Crash_server]). *)
val inject_crash : t -> unit

(** Bring a crashed connection back once the server has been relaunched and
    a fresh handler installed; the parked worker pool is reused. *)
val revive : t -> unit

(** Issue one request and wait for the reply: exactly one round trip.
    [splice] moves payloads by page remapping instead of copying.  Under
    supervision the reply races the deadline timer and idempotent opcodes
    are retried on [ETIMEDOUT]/[EINTR]/[ENOMEM]. *)
val call : t -> ?splice:bool -> Protocol.ctx -> Protocol.req -> Protocol.resp

(** Issue several requests as one submission (async reads): one round trip,
    one wake, one resume; members may be served by different workers in
    parallel.  Replies are returned in request order. *)
val call_group :
  t -> ?splice:bool -> Protocol.ctx -> Protocol.req list -> Protocol.resp list

(** One-way message (FORGET, RELEASE): queued without waiting for service.
    Counts toward [max_background]; at the threshold the submitter blocks
    until the background class drains. *)
val post : t -> ?splice:bool -> Protocol.ctx -> Protocol.req -> unit

(** Block until every queued and in-service request has completed. *)
val quiesce : t -> unit
