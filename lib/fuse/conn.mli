(** A FUSE connection (/dev/fuse): the transport between the kernel driver
    and the userspace server, where the FUSE tax is charged — two context
    switches per round trip, payload copies (or splice), and the server's
    multi-thread coordination.  Batched requests amortize the context
    switches (§3.3). *)

open Repro_util

type stats = {
  mutable requests : int;
  mutable round_trips : int;
  mutable bytes_to_server : int;
  mutable bytes_from_server : int;
  mutable spliced_bytes : int;
  by_kind : (string, int) Hashtbl.t;  (** request counts per opcode name *)
}

type t = {
  clock : Clock.t;
  cost : Cost.t;
  mutable handler : (Protocol.ctx -> Protocol.req -> Protocol.resp) option;
  mutable threads : int;  (** server worker threads (Figure 4) *)
  mutable thread_coord_ns : int;
  stats : stats;
  mutable serving : bool;
  mutable background : bool;
      (** while true, calls charge no virtual time (background writeback) *)
}

val create : clock:Clock.t -> cost:Cost.t -> t
val stats : t -> stats

(** Install the server's request handler. *)
val set_handler : t -> (Protocol.ctx -> Protocol.req -> Protocol.resp) -> unit

(** The CNTR handshake: the child signals once CntrFS is mounted inside the
    nested namespace; only then does the server read /dev/fuse (§3.2.2).
    Calls before this return [ENOTCONN]. *)
val start_serving : t -> unit

(** Issue one request.  [batch] divides the context-switch cost (async
    reads, coalesced forgets); [splice] moves payloads by page remapping
    instead of copying. *)
val call : t -> ?batch:int -> ?splice:bool -> Protocol.ctx -> Protocol.req -> Protocol.resp
