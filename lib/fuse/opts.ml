(* FUSE mount options — the optimization knobs of §3.3.  [cntr_default] is
   what CNTR ships (everything on except splice write); [unoptimized] turns
   everything off for the Figure 3 ablations. *)

type t = {
  keep_cache : bool;        (* FOPEN_KEEP_CACHE: page cache survives opens *)
  writeback : bool;         (* FUSE_WRITEBACK_CACHE: batch + delay writes *)
  parallel_dirops : bool;   (* FUSE_PARALLEL_DIROPS: concurrent lookups *)
  async_read : bool;        (* FUSE_ASYNC_READ: batch concurrent reads *)
  splice_read : bool;       (* zero-copy read replies *)
  splice_write : bool;      (* zero-copy write requests (extra ctx switch) *)
  forget_batch : int;       (* forget intents coalesced per request *)
  entry_cache : bool;       (* dentry cache in the driver *)
  attr_cache : bool;        (* attribute cache in the driver *)
  max_write : int;          (* bytes per WRITE request *)
  max_read : int;           (* bytes per READ request *)
  read_batch : int;         (* concurrent READs batched by async_read *)
  max_background : int;     (* one-way (FORGET/RELEASE) congestion threshold *)
  writeback_limit_pages : int; (* driver dirty threshold before flushing *)
  (* FUSE's writeback holds dirty data much longer than the native
     dirty_expire — this is what absorbs rewrites (FIO/PGBench, §5.2.2) *)
  wb_flush_interval_ns : int;
  (* --- the metadata fast path (extension; not in the paper) -------------
     All four knobs are off/zero in [cntr_default] so the paper's numbers
     stay byte-identical; [fastpath] turns them on. *)
  readdirplus : bool;       (* READDIRPLUS: readdir prefetches entry+attr *)
  entry_timeout_ns : int;   (* dentry-cache TTL; 0 = unbounded (paper) *)
  attr_timeout_ns : int;    (* attr-cache TTL; 0 = unbounded (paper) *)
  negative_timeout_ns : int;(* ENOENT results cached this long; 0 = never *)
  handle_cache : int;       (* server-side LRU of (dev,ino) handles; 0 = off *)
  passthrough : int;        (* server-granted backing handles; LRU cap, 0 = off *)
}

let cntr_default = {
  keep_cache = true;
  writeback = true;
  parallel_dirops = true;
  async_read = true;
  splice_read = true;
  (* §3.3: splice write adds a context switch to every request and is
     disabled by default. *)
  splice_write = false;
  forget_batch = 64;
  entry_cache = true;
  attr_cache = true;
  max_write = 128 * 1024;
  max_read = 128 * 1024;
  read_batch = 8;
  max_background = 12;
  writeback_limit_pages = 4096; (* 16 MiB of dirty data *)
  wb_flush_interval_ns = 5_000_000; (* 5 ms virtual: 10x the native expiry *)
  readdirplus = false;
  entry_timeout_ns = 0;
  attr_timeout_ns = 0;
  negative_timeout_ns = 0;
  handle_cache = 0;
  passthrough = 0;
}

let unoptimized = {
  keep_cache = false;
  writeback = false;
  parallel_dirops = false;
  async_read = false;
  splice_read = false;
  splice_write = false;
  forget_batch = 1;
  (* plain FUSE ships entry/attr validity 0 — no dcache caching; TTL'd
     caching is on CNTR's optimization list, so the baseline lacks it *)
  entry_cache = false;
  attr_cache = false;
  max_write = 128 * 1024;
  max_read = 128 * 1024;
  read_batch = 1;
  max_background = 12;
  writeback_limit_pages = 0;
  wb_flush_interval_ns = 0;
  readdirplus = false;
  entry_timeout_ns = 0;
  attr_timeout_ns = 0;
  negative_timeout_ns = 0;
  handle_cache = 0;
  passthrough = 0;
}

(* The metadata fast path: everything CNTR ships plus READDIRPLUS, TTL'd
   dentry/attr caches, negative dentry caching, and a server-side handle
   cache.  This is the "e3e" ablation's ON leg; §5.2.2's lookup tax is what
   it attacks.  1 s of virtual validity dwarfs any benchmark's runtime, so
   correctness rests on the driver's invalidation (it is the sole mutator),
   not on expiry. *)
let fastpath = {
  cntr_default with
  readdirplus = true;
  entry_timeout_ns = 1_000_000_000;
  attr_timeout_ns = 1_000_000_000;
  negative_timeout_ns = 1_000_000_000;
  handle_cache = 1024;
}
