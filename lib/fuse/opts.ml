(* FUSE mount options — the optimization knobs of §3.3.  [cntr_default] is
   what CNTR ships (everything on except splice write); [unoptimized] turns
   everything off for the Figure 3 ablations. *)

type t = {
  keep_cache : bool;        (* FOPEN_KEEP_CACHE: page cache survives opens *)
  writeback : bool;         (* FUSE_WRITEBACK_CACHE: batch + delay writes *)
  parallel_dirops : bool;   (* FUSE_PARALLEL_DIROPS: concurrent lookups *)
  async_read : bool;        (* FUSE_ASYNC_READ: batch concurrent reads *)
  splice_read : bool;       (* zero-copy read replies *)
  splice_write : bool;      (* zero-copy write requests (extra ctx switch) *)
  forget_batch : int;       (* forget intents coalesced per request *)
  entry_cache : bool;       (* dentry cache in the driver *)
  attr_cache : bool;        (* attribute cache in the driver *)
  max_write : int;          (* bytes per WRITE request *)
  max_read : int;           (* bytes per READ request *)
  read_batch : int;         (* concurrent READs batched by async_read *)
  writeback_limit_pages : int; (* driver dirty threshold before flushing *)
  (* FUSE's writeback holds dirty data much longer than the native
     dirty_expire — this is what absorbs rewrites (FIO/PGBench, §5.2.2) *)
  wb_flush_interval_ns : int;
}

let cntr_default = {
  keep_cache = true;
  writeback = true;
  parallel_dirops = true;
  async_read = true;
  splice_read = true;
  (* §3.3: splice write adds a context switch to every request and is
     disabled by default. *)
  splice_write = false;
  forget_batch = 64;
  entry_cache = true;
  attr_cache = true;
  max_write = 128 * 1024;
  max_read = 128 * 1024;
  read_batch = 8;
  writeback_limit_pages = 4096; (* 16 MiB of dirty data *)
  wb_flush_interval_ns = 5_000_000; (* 5 ms virtual: 10x the native expiry *)
}

let unoptimized = {
  keep_cache = false;
  writeback = false;
  parallel_dirops = false;
  async_read = false;
  splice_read = false;
  splice_write = false;
  forget_batch = 1;
  entry_cache = true;
  attr_cache = true;
  max_write = 128 * 1024;
  max_read = 128 * 1024;
  read_batch = 1;
  writeback_limit_pages = 0;
  wb_flush_interval_ns = 0;
}
