(** FUSE mount options — the optimization knobs of §3.3. *)

type t = {
  keep_cache : bool;  (** FOPEN_KEEP_CACHE: the page cache survives opens *)
  writeback : bool;  (** FUSE_WRITEBACK_CACHE: batch + delay writes *)
  parallel_dirops : bool;  (** FUSE_PARALLEL_DIROPS: concurrent lookups *)
  async_read : bool;  (** FUSE_ASYNC_READ: batch concurrent reads, readahead *)
  splice_read : bool;
      (** zero-copy read replies: READ payload legs ride the shared splice
          path (setup + per-page remap) instead of the per-KiB copy *)
  splice_write : bool;
      (** zero-copy writes: WRITE payloads splice through a kernel pipe,
          which costs one extra context switch on every request — both the
          switch and the splice legs are charged (§3.3 leaves it off by
          default for exactly that trade) *)
  forget_batch : int;  (** forget intents coalesced per request *)
  entry_cache : bool;  (** dentry cache in the driver *)
  attr_cache : bool;  (** attribute cache in the driver *)
  max_write : int;  (** bytes per WRITE request *)
  max_read : int;  (** bytes per READ request *)
  read_batch : int;  (** concurrent READs amortized by async_read *)
  max_background : int;
      (** congestion threshold for the one-way background class (FORGET,
          RELEASE); submitters block at the limit, like fuse_conn's
          max_background *)
  writeback_limit_pages : int;  (** per-inode dirty threshold before flushing *)
  wb_flush_interval_ns : int;  (** FUSE's (long) dirty expiry *)
  readdirplus : bool;
      (** READDIRPLUS: readdir replies carry (entry, attr, validity) tuples
          that prefill the dentry/attr caches in one round trip *)
  entry_timeout_ns : int;
      (** virtual-clock TTL on cached dentries; 0 = unbounded (the paper's
          behaviour) *)
  attr_timeout_ns : int;  (** virtual-clock TTL on cached attrs; 0 = unbounded *)
  negative_timeout_ns : int;
      (** ENOENT lookup results are cached this long; 0 = never (the paper) *)
  handle_cache : int;
      (** capacity of the server's LRU handle cache keyed by backing
          (dev, ino); a hit skips the per-LOOKUP open()+stat() pair.
          0 = disabled *)
  passthrough : int;
      (** capacity of the server's LRU of passthrough grants: at open time
          the server may hand the driver a capability onto the backing
          file, after which that handle's READ/WRITE hit the backing VFS
          directly — zero FUSE round trips.  Grants are revoked on LRU
          overflow, on server-side mutation of the inode, and on
          crash/recovery.  0 = disabled (the paper's behaviour) *)
}

(** What CNTR ships: everything on except splice write (§3.3).  The
    metadata fast-path knobs are all off/zero here — the paper's numbers. *)
val cntr_default : t

(** Everything off — the Figure 3 baselines. *)
val unoptimized : t

(** [cntr_default] plus the metadata fast path (READDIRPLUS, TTL'd
    dentry/attr caches, negative dentries, server handle cache) — the ON
    leg of the e3e ablation.  An extension; not a configuration the paper
    measures. *)
val fastpath : t
