(** FUSE mount options — the optimization knobs of §3.3. *)

type t = {
  keep_cache : bool;  (** FOPEN_KEEP_CACHE: the page cache survives opens *)
  writeback : bool;  (** FUSE_WRITEBACK_CACHE: batch + delay writes *)
  parallel_dirops : bool;  (** FUSE_PARALLEL_DIROPS: concurrent lookups *)
  async_read : bool;  (** FUSE_ASYNC_READ: batch concurrent reads, readahead *)
  splice_read : bool;  (** zero-copy read replies *)
  splice_write : bool;  (** zero-copy writes; costs a context switch on every request *)
  forget_batch : int;  (** forget intents coalesced per request *)
  entry_cache : bool;  (** dentry cache in the driver *)
  attr_cache : bool;  (** attribute cache in the driver *)
  max_write : int;  (** bytes per WRITE request *)
  max_read : int;  (** bytes per READ request *)
  read_batch : int;  (** concurrent READs amortized by async_read *)
  writeback_limit_pages : int;  (** per-inode dirty threshold before flushing *)
  wb_flush_interval_ns : int;  (** FUSE's (long) dirty expiry *)
}

(** What CNTR ships: everything on except splice write (§3.3). *)
val cntr_default : t

(** Everything off — the Figure 3 baselines. *)
val unoptimized : t
