(* A FUSE connection (/dev/fuse): the transport between the kernel driver
   and the userspace server.  This is where the FUSE tax is charged: two
   context switches per round trip, payload copies (or splice), and the
   server's multi-thread coordination overhead.  Batched requests amortize
   the context switches — the paper's batching optimization (§3.3). *)

open Repro_util

type stats = {
  mutable requests : int;
  mutable round_trips : int; (* context-switch pairs actually paid *)
  mutable bytes_to_server : int;
  mutable bytes_from_server : int;
  mutable spliced_bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

type t = {
  clock : Clock.t;
  cost : Cost.t;
  mutable handler : (Protocol.ctx -> Protocol.req -> Protocol.resp) option;
  (* Number of server worker threads reading /dev/fuse. *)
  mutable threads : int;
  (* Per-request thread coordination penalty per extra thread, ns. *)
  mutable thread_coord_ns : int;
  stats : stats;
  mutable serving : bool;
  (* while true, calls charge no virtual time (background writeback) *)
  mutable background : bool;
}

let create ~clock ~cost = {
  clock;
  cost;
  handler = None;
  threads = 4;
  thread_coord_ns = cost.Cost.thread_coord_ns;
  stats =
    {
      requests = 0;
      round_trips = 0;
      bytes_to_server = 0;
      bytes_from_server = 0;
      spliced_bytes = 0;
      by_kind = Hashtbl.create 16;
    };
  serving = false;
  background = false;
}

let stats t = t.stats

let set_handler t h = t.handler <- Some h

(* The CNTR handshake: the child signals the server (over a Unix socket)
   once CntrFS is mounted inside the nested namespace; only then does the
   server start reading /dev/fuse (§3.2.2). *)
let start_serving t = t.serving <- true

let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

(* Issue one request.

   [batch] — how many requests this round trip is amortized over (async
   reads, batched forgets): the two context switches are divided by it.
   [splice] — payload moved by splice instead of copied. *)
let call t ?(batch = 1) ?(splice = false) ctx req =
  match t.handler with
  | None -> Protocol.R_err Errno.ENOTCONN
  | Some handler ->
      if not t.serving then Protocol.R_err Errno.ENOTCONN
      else begin
        let s = t.stats in
        let charge ns = if not t.background then Clock.consume_int t.clock ns in
        s.requests <- s.requests + 1;
        bump s.by_kind (Protocol.req_kind req);
        (* Two context switches per round trip, amortized over the batch. *)
        charge (2 * t.cost.Cost.context_switch_ns / max 1 batch);
        s.round_trips <- s.round_trips + 1;
        (* Server-side dispatch: one read(2) on /dev/fuse. *)
        charge t.cost.Cost.syscall_ns;
        (* Multithreaded servers pay coordination per request (Figure 4). *)
        if t.threads > 1 then charge (t.thread_coord_ns * (t.threads - 1));
        (* Request payload transfer. *)
        let out_bytes = Protocol.req_payload_bytes req in
        s.bytes_to_server <- s.bytes_to_server + out_bytes;
        if splice then begin
          charge t.cost.Cost.splice_setup_ns;
          s.spliced_bytes <- s.spliced_bytes + out_bytes
        end
        else charge (Cost.copy_cost t.cost out_bytes);
        let resp = handler ctx req in
        (* Response payload transfer. *)
        let in_bytes = Protocol.resp_payload_bytes resp in
        s.bytes_from_server <- s.bytes_from_server + in_bytes;
        if splice then begin
          charge t.cost.Cost.splice_setup_ns;
          s.spliced_bytes <- s.spliced_bytes + in_bytes
        end
        else charge (Cost.copy_cost t.cost in_bytes);
        resp
      end
