(* A FUSE connection (/dev/fuse): the transport between the kernel driver
   and the userspace server.  This is where the FUSE tax is charged: two
   context switches per round trip, payload copies (or splice), and the
   server's multi-thread coordination overhead.  Batched requests amortize
   the context switches — the paper's batching optimization (§3.3).

   Accounting lives in the connection's observability handle: aggregate
   and per-opcode counters under "fuse.req.*", virtual-time latency
   histograms, context-switch counts under "os.context_switches", and one
   trace span per request. *)

open Repro_util
module Metrics = Repro_obs.Metrics

type stats = {
  requests : int;
  round_trips : int; (* context-switch pairs actually paid *)
  bytes_to_server : int;
  bytes_from_server : int;
  spliced_bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

(* Per-opcode counter handles, cached so the request path never does a
   name lookup: count, bytes each way, and the latency histogram. *)
type kind_metrics = {
  km_count : Metrics.counter;
  km_to : Metrics.counter;
  km_from : Metrics.counter;
  km_latency : Metrics.histogram;
}

type t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
  mutable handler : (Protocol.ctx -> Protocol.req -> Protocol.resp) option;
  (* Number of server worker threads reading /dev/fuse. *)
  mutable threads : int;
  (* Per-request thread coordination penalty per extra thread, ns. *)
  mutable thread_coord_ns : int;
  mutable serving : bool;
  (* while true, calls charge no virtual time (background writeback) *)
  mutable background : bool;
  (* fractional round trips accumulated by batched calls: a call amortized
     over a batch of n contributes 1/n of a round trip to the counters,
     matching the 1/n context-switch charge *)
  mutable rt_carry : float;
  m_requests : Metrics.counter;
  m_round_trips : Metrics.counter;
  m_bytes_to : Metrics.counter;
  m_bytes_from : Metrics.counter;
  m_spliced : Metrics.counter;
  m_copied : Metrics.counter;
  m_ctx_switches : Metrics.counter;
  by_kind : (string, kind_metrics) Hashtbl.t;
}

let create ?obs ~clock ~cost () =
  let obs = match obs with Some o -> o | None -> Repro_obs.Obs.create () in
  let m = Repro_obs.Obs.metrics obs in
  {
    clock;
    cost;
    obs;
    handler = None;
    threads = 4;
    thread_coord_ns = cost.Cost.thread_coord_ns;
    serving = false;
    background = false;
    rt_carry = 0.;
    m_requests = Metrics.counter m "fuse.req.count";
    m_round_trips = Metrics.counter m "fuse.round_trips";
    m_bytes_to = Metrics.counter m "fuse.bytes.to_server";
    m_bytes_from = Metrics.counter m "fuse.bytes.from_server";
    m_spliced = Metrics.counter m "fuse.bytes.spliced";
    m_copied = Metrics.counter m "fuse.bytes.copied";
    m_ctx_switches = Metrics.counter m "os.context_switches";
    by_kind = Hashtbl.create 16;
  }

let obs t = t.obs

let kind_metrics t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some km -> km
  | None ->
      let m = Repro_obs.Obs.metrics t.obs in
      let key suffix = Printf.sprintf "fuse.req.%s.%s" kind suffix in
      let km =
        {
          km_count = Metrics.counter m (key "count");
          km_to = Metrics.counter m (key "bytes_to_server");
          km_from = Metrics.counter m (key "bytes_from_server");
          km_latency = Metrics.histogram m (key "latency_us");
        }
      in
      Hashtbl.replace t.by_kind kind km;
      km

(* Snapshot view over the registry counters.  [by_kind] covers the opcodes
   this connection has issued (connections sharing one registry also share
   the underlying counters). *)
let stats t =
  let by_kind = Hashtbl.create 16 in
  Hashtbl.iter
    (fun kind km -> Hashtbl.replace by_kind kind (Metrics.value km.km_count))
    t.by_kind;
  {
    requests = Metrics.value t.m_requests;
    round_trips = Metrics.value t.m_round_trips;
    bytes_to_server = Metrics.value t.m_bytes_to;
    bytes_from_server = Metrics.value t.m_bytes_from;
    spliced_bytes = Metrics.value t.m_spliced;
    by_kind;
  }

let set_handler t h = t.handler <- Some h

(* The CNTR handshake: the child signals the server (over a Unix socket)
   once CntrFS is mounted inside the nested namespace; only then does the
   server start reading /dev/fuse (§3.2.2). *)
let start_serving t = t.serving <- true

(* Issue one request.

   [batch] — how many requests this round trip is amortized over (async
   reads, batched forgets): the two context switches are divided by it.
   [splice] — payload moved by splice instead of copied. *)
let call t ?(batch = 1) ?(splice = false) ctx req =
  match t.handler with
  | None -> Protocol.R_err Errno.ENOTCONN
  | Some handler ->
      if not t.serving then Protocol.R_err Errno.ENOTCONN
      else begin
        let charge ns = if not t.background then Clock.consume_int t.clock ns in
        let kind = Protocol.req_kind req in
        let km = kind_metrics t kind in
        let begin_ns = Clock.now_ns t.clock in
        Metrics.incr t.m_requests;
        Metrics.incr km.km_count;
        (* Two context switches per round trip, amortized over the batch —
           and so are the counters: n calls at batch n report one round
           trip (two switches), exactly what was charged. *)
        charge (2 * t.cost.Cost.context_switch_ns / max 1 batch);
        t.rt_carry <- t.rt_carry +. (1. /. float_of_int (max 1 batch));
        if t.rt_carry >= 1. then begin
          let whole = int_of_float t.rt_carry in
          Metrics.add t.m_round_trips whole;
          Metrics.add t.m_ctx_switches (2 * whole);
          t.rt_carry <- t.rt_carry -. float_of_int whole
        end;
        (* Server-side dispatch: one read(2) on /dev/fuse. *)
        charge t.cost.Cost.syscall_ns;
        (* Multithreaded servers pay coordination per request (Figure 4). *)
        if t.threads > 1 then charge (t.thread_coord_ns * (t.threads - 1));
        (* Request payload transfer. *)
        let out_bytes = Protocol.req_payload_bytes req in
        Metrics.add t.m_bytes_to out_bytes;
        Metrics.add km.km_to out_bytes;
        if splice then begin
          charge t.cost.Cost.splice_setup_ns;
          Metrics.add t.m_spliced out_bytes
        end
        else begin
          Metrics.add t.m_copied out_bytes;
          charge (Cost.copy_cost t.cost out_bytes)
        end;
        let resp = handler ctx req in
        (* Response payload transfer. *)
        let in_bytes = Protocol.resp_payload_bytes resp in
        Metrics.add t.m_bytes_from in_bytes;
        Metrics.add km.km_from in_bytes;
        if splice then begin
          charge t.cost.Cost.splice_setup_ns;
          Metrics.add t.m_spliced in_bytes
        end
        else begin
          Metrics.add t.m_copied in_bytes;
          charge (Cost.copy_cost t.cost in_bytes)
        end;
        let end_ns = Clock.now_ns t.clock in
        (* Background requests consume no virtual time, so their zero
           latencies would only distort the histograms. *)
        if not t.background then begin
          Metrics.observe_ns km.km_latency
            (Int64.to_int (Int64.sub end_ns begin_ns));
          Repro_obs.Trace.record
            (Repro_obs.Obs.tracer t.obs)
            ~name:("fuse.req." ^ kind) ~begin_ns ~end_ns ()
        end;
        resp
      end
