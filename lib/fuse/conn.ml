(* A FUSE connection (/dev/fuse): the transport between the kernel driver
   and the userspace server, modeled as a discrete-event request queue
   (mirroring the kernel's fuse_conn).  Each server worker owns a local
   submission deque guarded by its own shard lock; submitters place typed
   in-flight request objects on one worker's deque (preferring the most
   recently parked worker, round-robin otherwise) and wake that worker
   alone — a targeted try_to_wake_up, not a waitqueue herd.  A worker that
   drains its own deque steals the oldest entry from a deterministically
   chosen victim before parking, so imbalanced submissions still spread
   across the pool.

   Concurrency costs are emergent rather than formulaic: the submitter
   pays the shard lock and one wakeup when its target was parked, thieves
   pay the steal walk (one shard lock probe per victim) on their own
   timelines, workers woken into an already-stolen deque burn a context
   switch and count a spurious wakeup, and back-to-back queued requests
   let a worker pipeline without re-parking — which is how batching and
   multi-client overlap amortize context switches.

   One-way messages (FORGET, RELEASE) form the background request class:
   they return to the submitter immediately but count toward
   [max_background]; past the threshold submitters block until the pool
   drains below it (the kernel's congestion threshold).

   Accounting lives in the connection's observability handle: aggregate and
   per-opcode counters under "fuse.req.*", queue-depth and in-flight
   gauges, per-worker busy time, virtual-time latency histograms,
   context-switch counts under "os.context_switches", and one trace span
   per request. *)

open Repro_util
module Metrics = Repro_obs.Metrics
module Sched = Repro_sched.Sched
module Fault = Repro_fault.Fault

type stats = {
  requests : int;
  round_trips : int;
  bytes_to_server : int;
  bytes_from_server : int;
  spliced_bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

(* Per-opcode counter handles, cached so the request path never does a
   name lookup: count, bytes each way, and the latency histogram. *)
type kind_metrics = {
  km_count : Metrics.counter;
  km_to : Metrics.counter;
  km_from : Metrics.counter;
  km_latency : Metrics.histogram;
}

(* An in-flight request: what the kernel queued for the server, plus the
   reply ivar ([None] for one-way background messages). *)
type item = {
  it_ctx : Protocol.ctx;
  it_req : Protocol.req;
  it_splice : bool;
  mutable it_submit_ns : int64;
  it_reply : Protocol.resp Sched.ivar option;
  it_kind : string;
  it_km : kind_metrics;
}

(* One server worker: its pool slot, its local-deque shard lock, the cond
   it parks on (targeted wakeups go here), and its metric handles. *)
type worker = {
  w_id : int;
  w_busy : Metrics.counter;
  w_depth : Metrics.gauge; (* high-water mark of the local deque *)
  mutable w_hiwat : int;
  w_lock : Sched.mutex;
  w_cond : Sched.cond;
}

type t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
  sched : Sched.t;
  mutable handler : (Protocol.ctx -> Protocol.req -> Protocol.resp) option;
  (* Number of server worker threads reading /dev/fuse. *)
  mutable threads : int;
  (* Congestion threshold for the background class (kernel default spirit:
     small); one-way submitters block while at or above it. *)
  mutable max_background : int;
  mutable serving : bool;
  (* the server crashed (fault plane or test hook): calls fail ENOTCONN
     immediately until [revive] *)
  mutable dead : bool;
  (* while true, calls charge no virtual time (background writeback) *)
  mutable background : bool;
  (* armed fault plane; None = plane off, every consult short-circuits *)
  mutable fault : Fault.t option;
  (* per-request supervision (deadline + retry); Fault.no_retry = off *)
  mutable retry : Fault.retry;
  (* one-shot actions pushed by test hooks (crash_server / hang_server),
     served before the plan so hooks work without arming one *)
  forced : Fault.action Queue.t;
  mutable m_retries : Metrics.counter option;
  mutable m_timeouts : Metrics.counter option;
  (* fuse.splice.{calls,bytes}: created on the first spliced transfer, so
     copy-mode sessions leave the registry untouched *)
  mutable m_splice_calls : Metrics.counter option;
  mutable m_splice_bytes : Metrics.counter option;
  pool : item Sched.Ws.t; (* per-worker deques + steal/targeting state *)
  bg_lock : Sched.mutex; (* guards the background-class throttle waits *)
  bg_cond : Sched.cond; (* throttled one-way submitters park here *)
  mutable bg_inflight : int;
  mutable inflight : int;
  mutable inflight_max : int;
  mutable qdepth_max : int;
  mutable workers : worker array;
  mutable worker_exn : exn option;
  m_requests : Metrics.counter;
  m_round_trips : Metrics.counter;
  m_bytes_to : Metrics.counter;
  m_bytes_from : Metrics.counter;
  m_spliced : Metrics.counter;
  m_copied : Metrics.counter;
  m_ctx_switches : Metrics.counter;
  m_qdepth_max : Metrics.gauge;
  m_qdepth_sum : Metrics.counter;
  m_qdepth_samples : Metrics.counter;
  m_inflight : Metrics.gauge;
  m_inflight_max : Metrics.gauge;
  m_spurious : Metrics.counter;
  m_steals : Metrics.counter;
  m_steal_fails : Metrics.counter;
  m_local_hits : Metrics.counter;
  m_qwait : Metrics.histogram;
  by_kind : (string, kind_metrics) Hashtbl.t;
}

let create ?obs ?sched ~clock ~cost () =
  let obs = match obs with Some o -> o | None -> Repro_obs.Obs.create () in
  let sched = match sched with Some s -> s | None -> Sched.create ~clock in
  let m = Repro_obs.Obs.metrics obs in
  let qdepth_sum = Metrics.counter m "fuse.queue.depth.sum" in
  let qdepth_samples = Metrics.counter m "fuse.queue.depth.samples" in
  Metrics.register_derived m "fuse.queue.depth.mean" (fun () ->
      let n = Metrics.value qdepth_samples in
      if n = 0 then 0. else float_of_int (Metrics.value qdepth_sum) /. float_of_int n);
  {
    clock;
    cost;
    obs;
    sched;
    handler = None;
    threads = 4;
    max_background = 12;
    serving = false;
    dead = false;
    background = false;
    fault = None;
    retry = Fault.no_retry;
    forced = Queue.create ();
    m_retries = None;
    m_timeouts = None;
    m_splice_calls = None;
    m_splice_bytes = None;
    pool = Sched.Ws.create ();
    bg_lock = Sched.mutex ();
    bg_cond = Sched.cond ();
    bg_inflight = 0;
    inflight = 0;
    inflight_max = 0;
    qdepth_max = 0;
    workers = [||];
    worker_exn = None;
    m_requests = Metrics.counter m "fuse.req.count";
    m_round_trips = Metrics.counter m "fuse.round_trips";
    m_bytes_to = Metrics.counter m "fuse.bytes.to_server";
    m_bytes_from = Metrics.counter m "fuse.bytes.from_server";
    m_spliced = Metrics.counter m "fuse.bytes.spliced";
    m_copied = Metrics.counter m "fuse.bytes.copied";
    m_ctx_switches = Metrics.counter m "os.context_switches";
    m_qdepth_max = Metrics.gauge m "fuse.queue.depth.max";
    m_qdepth_sum = qdepth_sum;
    m_qdepth_samples = qdepth_samples;
    m_inflight = Metrics.gauge m "fuse.inflight";
    m_inflight_max = Metrics.gauge m "fuse.inflight.max";
    m_spurious = Metrics.counter m "fuse.wakeups.spurious";
    m_steals = Metrics.counter m "sched.steals";
    m_steal_fails = Metrics.counter m "sched.steal_fails";
    m_local_hits = Metrics.counter m "sched.local_hits";
    m_qwait = Metrics.histogram m "fuse.queue.wait_us";
    by_kind = Hashtbl.create 16;
  }

let obs t = t.obs
let sched t = t.sched

let kind_metrics t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some km -> km
  | None ->
      let m = Repro_obs.Obs.metrics t.obs in
      let key suffix = Printf.sprintf "fuse.req.%s.%s" kind suffix in
      let km =
        {
          km_count = Metrics.counter m (key "count");
          km_to = Metrics.counter m (key "bytes_to_server");
          km_from = Metrics.counter m (key "bytes_from_server");
          km_latency = Metrics.histogram m (key "latency_us");
        }
      in
      Hashtbl.replace t.by_kind kind km;
      km

(* Snapshot view over the registry counters.  [by_kind] covers the opcodes
   this connection has issued (connections sharing one registry also share
   the underlying counters). *)
let stats t =
  let by_kind = Hashtbl.create 16 in
  Hashtbl.iter
    (fun kind km -> Hashtbl.replace by_kind kind (Metrics.value km.km_count))
    t.by_kind;
  {
    requests = Metrics.value t.m_requests;
    round_trips = Metrics.value t.m_round_trips;
    bytes_to_server = Metrics.value t.m_bytes_to;
    bytes_from_server = Metrics.value t.m_bytes_from;
    spliced_bytes = Metrics.value t.m_spliced;
    by_kind;
  }

let set_handler t h = t.handler <- Some h

(* --- server worker pool ----------------------------------------------------- *)

(* Count one splice over the channel; creates the counters lazily. *)
let splice_note t bytes =
  (match t.m_splice_calls with
  | Some _ -> ()
  | None ->
      let m = Repro_obs.Obs.metrics t.obs in
      t.m_splice_calls <- Some (Metrics.counter m "fuse.splice.calls");
      t.m_splice_bytes <- Some (Metrics.counter m "fuse.splice.bytes"));
  (match t.m_splice_calls with Some c -> Metrics.incr c | None -> ());
  (match t.m_splice_bytes with Some c -> Metrics.add c bytes | None -> ())

(* Transfer one payload leg between kernel and server.  Both regimes
   charge through the shared Datapath model: splice pays setup + per-page
   remap (the same price Kernel.splice and the proxy pay for a page),
   copy pays the per-KiB double-buffer baseline. *)
let transfer t km ~splice ~to_server bytes =
  if to_server then begin
    Metrics.add t.m_bytes_to bytes;
    Metrics.add km.km_to bytes
  end
  else begin
    Metrics.add t.m_bytes_from bytes;
    Metrics.add km.km_from bytes
  end;
  if splice then begin
    Clock.consume_int t.clock (Repro_os.Datapath.splice_ns t.cost bytes);
    Metrics.add t.m_spliced bytes;
    splice_note t bytes
  end
  else begin
    Metrics.add t.m_copied bytes;
    Clock.consume_int t.clock (Repro_os.Datapath.copy_ns t.cost bytes)
  end

(* Resolve an item's reply with ENOTCONN (if anyone still waits for it) and
   drop its in-flight accounting — the crash path for queued requests. *)
let fail_item t item =
  (match item.it_reply with
  | Some iv ->
      if not (Sched.is_filled iv) then
        Sched.fill t.sched iv (Protocol.R_err Errno.ENOTCONN)
  | None -> t.bg_inflight <- t.bg_inflight - 1);
  t.inflight <- t.inflight - 1

(* The server process died: stop serving, resolve every queued request with
   ENOTCONN (bounded virtual time — callers are unblocked now, not parked
   forever), and leave the worker fibers to park.  Requests already being
   served by other workers complete normally, like writes that had reached
   the kernel before the crash. *)
let crash t =
  t.serving <- false;
  t.dead <- true;
  List.iter (fun it -> fail_item t it) (Sched.Ws.drain_all t.pool);
  Metrics.set t.m_inflight (float_of_int t.inflight);
  ignore (Sched.broadcast t.sched t.bg_cond)

(* Bring a crashed connection back after the server has been relaunched and
   a fresh handler installed (see Attach.recover).  The parked worker pool
   is reused. *)
let revive t =
  t.dead <- false;
  t.serving <- true

(* Next fault to inject while serving [item], if any: test-hook one-shots
   first, then the armed plan.  None in the common case. *)
let fault_action t item =
  match Queue.take_opt t.forced with
  | Some a -> Some a
  | None -> (
      match t.fault with
      | Some f -> Fault.fuse_action f ~op:item.it_kind
      | None -> None)

(* Serve one dequeued request on the worker's timeline. *)
let process t w item =
  let start = Clock.now_ns t.clock in
  Metrics.observe_ns t.m_qwait (Int64.to_int (Int64.sub start item.it_submit_ns));
  match fault_action t item with
  | Some Fault.Crash_server ->
      (* died in the middle of dispatching this very request *)
      fail_item t item;
      crash t
  | action ->
      (match action with
      | Some (Fault.Hang ns) -> Sched.sleep_ns t.sched ns
      | Some (Fault.Delay ns) -> Clock.consume_int t.clock ns
      | _ -> ());
      (* the read(2) on /dev/fuse that returns this request to the server *)
      Clock.consume_int t.clock t.cost.Cost.syscall_ns;
      transfer t item.it_km ~splice:item.it_splice ~to_server:true
        (Protocol.req_payload_bytes item.it_req);
      let handler = Option.get t.handler in
      let resp =
        match action with
        | Some (Fault.Fail e) -> Protocol.R_err e
        | _ -> handler item.it_ctx item.it_req
      in
      transfer t item.it_km ~splice:item.it_splice ~to_server:false
        (Protocol.resp_payload_bytes resp);
      let fin = Clock.now_ns t.clock in
      Metrics.add w.w_busy (Int64.to_int (Int64.sub fin start));
      t.inflight <- t.inflight - 1;
      Metrics.set t.m_inflight (float_of_int t.inflight);
      (* completion may unblock a throttled one-way submitter or a quiesce *)
      ignore (Sched.broadcast t.sched t.bg_cond);
      (match item.it_reply with
      | Some iv -> (
          match action with
          | Some Fault.Drop_reply ->
              (* the work happened but the answer is lost; the caller's
                 deadline timer surfaces ETIMEDOUT *)
              ()
          | Some Fault.Duplicate_reply ->
              (* second copy of the reply crosses the wire and is discarded *)
              if not (Sched.is_filled iv) then Sched.fill t.sched iv resp;
              transfer t item.it_km ~splice:item.it_splice ~to_server:false
                (Protocol.resp_payload_bytes resp)
          | _ ->
              (* guarded: a deadline timer may have resolved this call *)
              if not (Sched.is_filled iv) then Sched.fill t.sched iv resp)
      | None ->
          (* the span is closed here since nobody awaits the reply *)
          t.bg_inflight <- t.bg_inflight - 1;
          Metrics.observe_ns item.it_km.km_latency
            (Int64.to_int (Int64.sub fin item.it_submit_ns));
          Repro_obs.Trace.record
            (Repro_obs.Obs.tracer t.obs)
            ~name:("fuse.req." ^ item.it_kind)
            ~begin_ns:item.it_submit_ns ~end_ns:fin ())

let rec worker_loop t w =
  Sched.lock t.sched w.w_lock;
  Clock.consume_int t.clock t.cost.Cost.queue_lock_ns;
  worker_serve t w

(* Holds the worker's own shard lock on entry. *)
and worker_serve t w =
  match Sched.Ws.peek t.pool w.w_id with
  | Some item
    when Int64.compare item.it_submit_ns (Clock.now_ns t.clock) <= 0 ->
      ignore (Sched.Ws.pop t.pool w.w_id);
      Metrics.incr t.m_local_hits;
      Sched.unlock t.sched w.w_lock;
      process t w item;
      (* this work segment ends here: submissions stamped before this
         instant are absorbed with no wake (pipelined pickup) *)
      Sched.Ws.set_avail t.pool w.w_id (Clock.now_ns t.clock);
      (* between requests the server re-enters read(2) on /dev/fuse — a
         real preemption point.  Yielding keeps event order aligned with
         virtual-time order, so same-time peers (woken workers, submitters)
         interleave instead of queueing behind this worker's lock holds. *)
      Sched.yield t.sched;
      worker_loop t w
  | Some item ->
      (* the head request is in this worker's virtual future: the worker
         was blocked in read(2) when it arrived, and its wake is still in
         flight — sleep to the submit time and serve with the same wake
         accounting as a parked worker *)
      let dt = Int64.to_int (Int64.sub item.it_submit_ns (Clock.now_ns t.clock)) in
      (* busy again from the head's submit time through its wake: let
         placement treat this worker as absorbing until then *)
      Sched.Ws.set_avail t.pool w.w_id
        (Int64.add item.it_submit_ns (Int64.of_int t.cost.Cost.context_switch_ns));
      Sched.unlock t.sched w.w_lock;
      Sched.sleep_ns t.sched dt;
      Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
      Metrics.incr t.m_ctx_switches;
      worker_loop t w
  | None ->
      Sched.unlock t.sched w.w_lock;
      worker_idle t w

(* Own deque is empty (lock not held): steal, or park once nothing ready
   exists anywhere. *)
and worker_idle t w =
  match try_steal t w with
  | Some item ->
      process t w item;
      Sched.Ws.set_avail t.pool w.w_id (Clock.now_ns t.clock);
      Sched.yield t.sched;
      worker_loop t w
  | None ->
      (* Re-check the local deque under the shard lock, then park in the
         same event segment as the empty check — tasks switch only at
         effects, so a submission either lands before the check (served
         now) or after the park (its targeted wakeup finds us). *)
      Sched.lock t.sched w.w_lock;
      Clock.consume_int t.clock t.cost.Cost.queue_lock_ns;
      if Sched.Ws.depth t.pool w.w_id > 0 then worker_serve t w
      else if ready_elsewhere t w then begin
        (* A ready request sits behind a busy peer (its submitter targeted
           a worker that was still serving): steal it rather than sleep on
           available work — this is what keeps the partitioned queues as
           work-conserving as the old global FIFO.  The check-then-steal
           pair runs in one event segment, so the walk cannot miss. *)
        Sched.unlock t.sched w.w_lock;
        worker_idle t w
      end
      else begin
        (* Nothing anywhere: block in read(2) on /dev/fuse.  FUSE daemon
           threads do not spin in userspace — the read blocks in the
           kernel at once, so the next pickup is a cold wake. *)
        let parked_at = Clock.now_ns t.clock in
        Sched.Ws.set_parked t.pool w.w_id ~at:parked_at;
        Sched.unlock t.sched w.w_lock;
        Sched.park t.sched w.w_cond;
        (* A head stamped at-or-before the park instant means the fiber
           had merely run ahead of the virtual timeline in event order:
           semantically the worker never slept, and the request is picked
           up as pipelined work — no context switch.  Any later head is a
           real wake and pays one.  The peek runs in the same event
           segment as the resume, so it cannot race. *)
        let overlap =
          match Sched.Ws.peek t.pool w.w_id with
          | Some item -> Int64.compare item.it_submit_ns parked_at <= 0
          | None -> false
        in
        if not overlap then begin
          Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
          Metrics.incr t.m_ctx_switches
        end;
        Sched.Ws.clear_parked t.pool w.w_id;
        Sched.lock t.sched w.w_lock;
        Clock.consume_int t.clock t.cost.Cost.queue_lock_ns;
        (* woken but the deque is already empty again: a thief got
           there first — the wake was spurious *)
        if Sched.Ws.depth t.pool w.w_id = 0 then Metrics.incr t.m_spurious;
        worker_serve t w
      end

(* Is any other worker's deque head ready to serve right now?  Items whose
   submit time is still in the future are excluded: their owner is
   guaranteed to drain them (a worker never parks on a nonempty deque), so
   parking while only future work exists is safe. *)
and ready_elsewhere t w =
  let now = Clock.now_ns t.clock in
  let n = Array.length t.workers in
  let rec go i =
    i < n
    && ((i <> w.w_id
        &&
        match Sched.Ws.peek t.pool i with
        | Some item -> Int64.compare item.it_submit_ns now <= 0
        | None -> false)
       || go (i + 1))
  in
  go 0

(* Steal the oldest ready entry from the first victim in the thief's
   deterministic rotation order whose head is serviceable.  Every probe
   charges one queue-lock interval to the *stealer's* clock — the walk is
   the thief's cost, not the submitter's.  Probes take no victim lock:
   steals are CAS-shaped (Chase-Lev style — thieves never block the owner
   or the submitter), and the probe-then-steal pair runs in one event
   segment, so it cannot race.  Skipped outright when nothing is queued
   anywhere (the idle-pool common case), so large pools pay no quadratic
   park-time scan. *)
and try_steal t w =
  if Sched.Ws.queued t.pool = 0 then None
  else begin
    let order =
      Sched.Ws.victim_order t.pool ~thief:w.w_id ~now:(Clock.now_ns t.clock)
    in
    let rec walk = function
      | [] ->
          Sched.Ws.steal_failed t.pool;
          Metrics.incr t.m_steal_fails;
          None
      | v :: rest -> (
          Clock.consume_int t.clock t.cost.Cost.queue_lock_ns;
          let got =
            match Sched.Ws.peek t.pool v with
            | Some item
              when Int64.compare item.it_submit_ns (Clock.now_ns t.clock) <= 0
              ->
                Sched.Ws.steal_from t.pool ~victim:v
            | _ -> None
          in
          match got with
          | Some _ ->
              Metrics.incr t.m_steals;
              got
          | None -> walk rest)
    in
    walk order
  end

let spawn_worker t i =
  let m = Repro_obs.Obs.metrics t.obs in
  let w =
    {
      w_id = i;
      w_busy = Metrics.counter m (Printf.sprintf "cntrfs.worker.%d.busy_ns" i);
      w_depth =
        Metrics.gauge m (Printf.sprintf "fuse.queue.per_worker_depth.%d" i);
      w_hiwat = 0;
      w_lock = Sched.mutex ();
      w_cond = Sched.cond ();
    }
  in
  t.workers <- Array.append t.workers [| w |];
  ignore
    (Sched.spawn t.sched (fun () ->
         try worker_loop t w
         with e -> (match t.worker_exn with None -> t.worker_exn <- Some e | Some _ -> ())))

(* Top up the pool to [t.threads] workers (threads may be retuned between
   benchmark runs on a live connection). *)
let ensure_workers t =
  (match t.worker_exn with Some e -> raise e | None -> ());
  let have = Array.length t.workers in
  if have < t.threads then begin
    Sched.Ws.ensure t.pool t.threads;
    for i = have to t.threads - 1 do
      spawn_worker t i
    done
  end

(* The CNTR handshake: the child signals the server (over a Unix socket)
   once CntrFS is mounted inside the nested namespace; only then does the
   server start reading /dev/fuse (§3.2.2).  The worker pool parks on the
   request waitqueue from this point on. *)
let start_serving t =
  t.serving <- true;
  ensure_workers t;
  (* run the freshly spawned workers to their park point, so the first
     request's wake accounting matches every later one *)
  if not (Sched.in_task ()) then
    Sched.drive_main t.sched (fun () -> Sched.pending_events t.sched = 0)

(* --- submission ------------------------------------------------------------- *)

(* Place each item on one worker's local deque and wake that worker alone.
   Targeting prefers the most recently parked worker (its wake is the
   cheapest — warmest state, shortest stack pop), falling back to a
   round-robin spread once nobody is parked; imbalance left by round-robin
   is repaired by the thieves.  The submitter pays one shard lock per item
   and one try_to_wake_up when the target was actually parked — there is no
   herd to walk, so the per-submission cost no longer grows with the number
   of idle server threads (the old Figure 4 penalty). *)
let enqueue t items =
  List.iter
    (fun item ->
      let wid, _was_parked =
        (* expected-service estimate for the placement score: the wake is
           one context switch; a served item costs about its two /dev/fuse
           crossings plus dispatch *)
        Sched.Ws.submit_target t.pool ~now:(Clock.now_ns t.clock)
          ~wake_ns:t.cost.Cost.context_switch_ns
          ~item_ns:(t.cost.Cost.context_switch_ns + (2 * t.cost.Cost.syscall_ns))
      in
      let w = t.workers.(wid) in
      Sched.lock t.sched w.w_lock;
      Clock.consume_int t.clock t.cost.Cost.queue_lock_ns;
      Sched.Ws.push t.pool wid item;
      t.inflight <- t.inflight + 1;
      let d = Sched.Ws.depth t.pool wid in
      if d > w.w_hiwat then begin
        w.w_hiwat <- d;
        Metrics.set w.w_depth (float_of_int d)
      end;
      (* The single targeted try_to_wake_up is the handoff itself — its
         cost is the wakee's context switch, charged when the worker
         resumes (the same convention the old wake-walk used for the first
         waiter).  The herd's per-extra-waiter [wakeup_ns] tax is gone
         because the herd is gone. *)
      item.it_submit_ns <- Clock.now_ns t.clock;
      ignore (Sched.signal t.sched w.w_cond);
      Sched.unlock t.sched w.w_lock)
    items;
  let depth = Sched.Ws.queued t.pool in
  if depth > t.qdepth_max then begin
    t.qdepth_max <- depth;
    Metrics.set t.m_qdepth_max (float_of_int depth)
  end;
  Metrics.add t.m_qdepth_sum depth;
  Metrics.incr t.m_qdepth_samples;
  if t.inflight > t.inflight_max then begin
    t.inflight_max <- t.inflight;
    Metrics.set t.m_inflight_max (float_of_int t.inflight)
  end;
  Metrics.set t.m_inflight (float_of_int t.inflight)

let item t ?reply ~splice ctx req =
  let kind = Protocol.req_kind req in
  let km = kind_metrics t kind in
  Metrics.incr t.m_requests;
  Metrics.incr km.km_count;
  {
    it_ctx = ctx;
    it_req = req;
    it_splice = splice;
    it_submit_ns = Clock.now_ns t.clock;
    it_reply = reply;
    it_kind = kind;
    it_km = km;
  }

(* Inline bypass while the driver flushes its writeback cache "for free":
   background dirty-page flushing happens on kernel threads whose time the
   foreground workload never observes.  Counters still record the traffic. *)
let call_background t ~splice ctx req =
  let handler = Option.get t.handler in
  let kind = Protocol.req_kind req in
  let km = kind_metrics t kind in
  Metrics.incr t.m_requests;
  Metrics.incr km.km_count;
  Metrics.incr t.m_round_trips;
  Metrics.add t.m_ctx_switches 2;
  let out_bytes = Protocol.req_payload_bytes req in
  Metrics.add t.m_bytes_to out_bytes;
  Metrics.add km.km_to out_bytes;
  let in_bytes, resp =
    let resp = handler ctx req in
    (Protocol.resp_payload_bytes resp, resp)
  in
  Metrics.add t.m_bytes_from in_bytes;
  Metrics.add km.km_from in_bytes;
  if splice then begin
    Metrics.add t.m_spliced (out_bytes + in_bytes);
    splice_note t (out_bytes + in_bytes)
  end
  else Metrics.add t.m_copied (out_bytes + in_bytes);
  resp

(* Arm supervision: a fault plane to consult while serving, and/or a
   per-request deadline + retry policy.  The fuse.retries / fuse.timeouts
   counters are only created here, so unarmed sessions leave the registry
   untouched (the smoke baseline depends on this). *)
let supervise t ?fault ?retry () =
  (match fault with Some _ -> t.fault <- fault | None -> ());
  (match retry with Some r -> t.retry <- r | None -> ());
  if t.m_retries = None && (t.fault <> None || t.retry <> Fault.no_retry) then begin
    let m = Repro_obs.Obs.metrics t.obs in
    t.m_retries <- Some (Metrics.counter m "fuse.retries");
    t.m_timeouts <- Some (Metrics.counter m "fuse.timeouts")
  end

let supervised t =
  t.fault <> None
  || t.retry.Fault.deadline_ns > 0
  || t.retry.Fault.max_retries > 0
  || not (Queue.is_empty t.forced)

(* Test hooks: make the next served request hit [action], without arming a
   plan ([Attach.hang_server]), or kill the server right now
   ([Attach.crash_server]). *)
let inject t action = Queue.push action t.forced
let inject_crash t = crash t

let incr_opt = function Some c -> Metrics.incr c | None -> ()

(* One round trip under supervision: the reply ivar races a deadline timer
   fiber (losing resolves it to ETIMEDOUT), and timed-out / transient
   replies to idempotent opcodes are retried with exponential backoff.
   Late replies from the worker find the ivar filled and are discarded. *)
let supervised_call t ~splice ctx req =
  let retry = t.retry in
  let idem = Protocol.idempotent req in
  let rec attempt n backoff =
    if not t.serving then Protocol.R_err Errno.ENOTCONN
    else begin
      ensure_workers t;
      let begin_ns = Clock.now_ns t.clock in
      let reply = Sched.ivar () in
      let it = item t ~reply ~splice ctx req in
      Metrics.incr t.m_round_trips;
      enqueue t [ it ];
      if retry.Fault.deadline_ns > 0 then
        ignore
          (Sched.spawn t.sched (fun () ->
               Sched.sleep_ns t.sched retry.Fault.deadline_ns;
               if not (Sched.is_filled reply) then begin
                 incr_opt t.m_timeouts;
                 Sched.fill t.sched reply (Protocol.R_err Errno.ETIMEDOUT)
               end));
      let resp = Sched.read t.sched reply in
      Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
      Metrics.incr t.m_ctx_switches;
      let end_ns = Clock.now_ns t.clock in
      Metrics.observe_ns it.it_km.km_latency (Int64.to_int (Int64.sub end_ns begin_ns));
      Repro_obs.Trace.record
        (Repro_obs.Obs.tracer t.obs)
        ~name:("fuse.req." ^ it.it_kind)
        ~begin_ns ~end_ns ();
      match resp with
      | Protocol.R_err (Errno.ETIMEDOUT | Errno.EINTR | Errno.ENOMEM)
        when idem && n < retry.Fault.max_retries ->
          incr_opt t.m_retries;
          Sched.sleep_ns t.sched backoff;
          attempt (n + 1) (backoff * retry.Fault.backoff_mult)
      | resp -> resp
    end
  in
  attempt 0 (max retry.Fault.backoff_ns 1)

(* Issue one request and wait for the reply: one round trip.  The submitter
   pays the queue append and the herd wake; the worker pays dispatch,
   transfer and service on its own timeline; resuming the submitter costs
   one context switch.  (The wake-side switch is charged by the worker when
   it actually parks — pipelined workers skip it.) *)
let call t ?(splice = false) ctx req =
  match t.handler with
  | None -> Protocol.R_err Errno.ENOTCONN
  | Some _ ->
      if not t.serving then Protocol.R_err Errno.ENOTCONN
      else if t.background then call_background t ~splice ctx req
      else if supervised t then supervised_call t ~splice ctx req
      else begin
        ensure_workers t;
        let begin_ns = Clock.now_ns t.clock in
        let reply = Sched.ivar () in
        let it = item t ~reply ~splice ctx req in
        Metrics.incr t.m_round_trips;
        enqueue t [ it ];
        let resp = Sched.read t.sched reply in
        (* switch back onto the submitter's CPU *)
        Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
        Metrics.incr t.m_ctx_switches;
        let end_ns = Clock.now_ns t.clock in
        Metrics.observe_ns it.it_km.km_latency (Int64.to_int (Int64.sub end_ns begin_ns));
        Repro_obs.Trace.record
          (Repro_obs.Obs.tracer t.obs)
          ~name:("fuse.req." ^ it.it_kind)
          ~begin_ns ~end_ns ();
        resp
      end

(* Issue several requests as one submission (async reads, READDIRPLUS
   prefetch): one round trip, one queue append, one herd wake, one resume —
   and the members can be served by different workers in parallel. *)
let call_group t ?(splice = false) ctx reqs =
  match reqs with
  | [] -> []
  | [ req ] -> [ call t ~splice ctx req ]
  | reqs -> (
      match t.handler with
      | None -> List.map (fun _ -> Protocol.R_err Errno.ENOTCONN) reqs
      | Some _ ->
          if not t.serving then List.map (fun _ -> Protocol.R_err Errno.ENOTCONN) reqs
          else if t.background then List.map (call_background t ~splice ctx) reqs
          else if supervised t then
            (* under supervision each member needs its own deadline/retry
               bracket, so the batch degrades to sequential round trips *)
            List.map (supervised_call t ~splice ctx) reqs
          else begin
            ensure_workers t;
            let begin_ns = Clock.now_ns t.clock in
            let items =
              List.map
                (fun req ->
                  let reply = Sched.ivar () in
                  (item t ~reply ~splice ctx req, reply))
                reqs
            in
            Metrics.incr t.m_round_trips;
            enqueue t (List.map fst items);
            let resps = List.map (fun (_, reply) -> Sched.read t.sched reply) items in
            Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
            Metrics.incr t.m_ctx_switches;
            let end_ns = Clock.now_ns t.clock in
            List.iter
              (fun (it, _) ->
                Metrics.observe_ns it.it_km.km_latency
                  (Int64.to_int (Int64.sub end_ns begin_ns));
                Repro_obs.Trace.record
                  (Repro_obs.Obs.tracer t.obs)
                  ~name:("fuse.req." ^ it.it_kind)
                  ~begin_ns ~end_ns ())
              items;
            resps
          end)

(* One-way message (FORGET, RELEASE): queued and answered by nobody.  The
   submitter does not wait for service, but the background class is bounded
   by [max_background] — at the threshold the submitter blocks until the
   pool drains (congestion backpressure). *)
let post t ?(splice = false) ctx req =
  match t.handler with
  | None -> ()
  | Some _ ->
      if not t.serving then ()
      else if t.background then ignore (call_background t ~splice ctx req)
      else begin
        ensure_workers t;
        let rec throttle () =
          if t.bg_inflight >= t.max_background then
            if Sched.in_task () then begin
              Sched.lock t.sched t.bg_lock;
              if t.bg_inflight >= t.max_background then
                Sched.wait t.sched t.bg_cond t.bg_lock;
              Sched.unlock t.sched t.bg_lock;
              throttle ()
            end
            else Sched.drive_main t.sched (fun () -> t.bg_inflight < t.max_background)
        in
        throttle ();
        t.bg_inflight <- t.bg_inflight + 1;
        let it = item t ~splice ctx req in
        Metrics.incr t.m_round_trips;
        enqueue t [ it ]
      end

(* Block until every queued and in-service request has completed (unmount /
   teardown barrier). *)
let quiesce t =
  if t.inflight > 0 then begin
    ensure_workers t;
    if Sched.in_task () then
      while t.inflight > 0 do
        Sched.lock t.sched t.bg_lock;
        if t.inflight > 0 then Sched.wait t.sched t.bg_cond t.bg_lock;
        Sched.unlock t.sched t.bg_lock
      done
    else Sched.drive_main t.sched (fun () -> t.inflight = 0)
  end
