(* A FUSE connection (/dev/fuse): the transport between the kernel driver
   and the userspace server, modeled as a discrete-event request queue
   (mirroring the kernel's fuse_conn).  Submitters append typed in-flight
   request objects to the pending queue and wake the server's worker pool;
   N worker fibers contend for the queue lock, dequeue, charge the server
   side of the FUSE tax (read(2) dispatch, payload copy or splice, handler
   service time) on their own timelines, and fill the caller's reply ivar.

   Concurrency costs are emergent rather than formulaic: waking the worker
   herd charges the submitter per extra thread woken (the Figure 4
   coordination penalty), spuriously woken workers burn context switches on
   their own timelines, and back-to-back queued requests let a worker
   pipeline without re-parking — which is how batching and multi-client
   overlap amortize context switches.

   One-way messages (FORGET, RELEASE) form the background request class:
   they return to the submitter immediately but count toward
   [max_background]; past the threshold submitters block until the pool
   drains below it (the kernel's congestion threshold).

   Accounting lives in the connection's observability handle: aggregate and
   per-opcode counters under "fuse.req.*", queue-depth and in-flight
   gauges, per-worker busy time, virtual-time latency histograms,
   context-switch counts under "os.context_switches", and one trace span
   per request. *)

open Repro_util
module Metrics = Repro_obs.Metrics
module Sched = Repro_sched.Sched
module Fault = Repro_fault.Fault

type stats = {
  requests : int;
  round_trips : int;
  bytes_to_server : int;
  bytes_from_server : int;
  spliced_bytes : int;
  by_kind : (string, int) Hashtbl.t;
}

(* Per-opcode counter handles, cached so the request path never does a
   name lookup: count, bytes each way, and the latency histogram. *)
type kind_metrics = {
  km_count : Metrics.counter;
  km_to : Metrics.counter;
  km_from : Metrics.counter;
  km_latency : Metrics.histogram;
}

(* An in-flight request: what the kernel queued for the server, plus the
   reply ivar ([None] for one-way background messages). *)
type item = {
  it_ctx : Protocol.ctx;
  it_req : Protocol.req;
  it_splice : bool;
  mutable it_submit_ns : int64;
  it_reply : Protocol.resp Sched.ivar option;
  it_kind : string;
  it_km : kind_metrics;
}

type worker = { w_busy : Metrics.counter }

type t = {
  clock : Clock.t;
  cost : Cost.t;
  obs : Repro_obs.Obs.t;
  sched : Sched.t;
  mutable handler : (Protocol.ctx -> Protocol.req -> Protocol.resp) option;
  (* Number of server worker threads reading /dev/fuse. *)
  mutable threads : int;
  (* Congestion threshold for the background class (kernel default spirit:
     small); one-way submitters block while at or above it. *)
  mutable max_background : int;
  mutable serving : bool;
  (* the server crashed (fault plane or test hook): calls fail ENOTCONN
     immediately until [revive] *)
  mutable dead : bool;
  (* while true, calls charge no virtual time (background writeback) *)
  mutable background : bool;
  (* armed fault plane; None = plane off, every consult short-circuits *)
  mutable fault : Fault.t option;
  (* per-request supervision (deadline + retry); Fault.no_retry = off *)
  mutable retry : Fault.retry;
  (* one-shot actions pushed by test hooks (crash_server / hang_server),
     served before the plan so hooks work without arming one *)
  forced : Fault.action Queue.t;
  mutable m_retries : Metrics.counter option;
  mutable m_timeouts : Metrics.counter option;
  pending : item Queue.t;
  qlock : Sched.mutex;
  qcond : Sched.cond; (* workers park here; submit broadcasts (herd wake) *)
  bg_cond : Sched.cond; (* throttled one-way submitters park here *)
  mutable bg_inflight : int;
  mutable inflight : int;
  mutable inflight_max : int;
  mutable qdepth_max : int;
  mutable workers : worker list;
  mutable worker_exn : exn option;
  m_requests : Metrics.counter;
  m_round_trips : Metrics.counter;
  m_bytes_to : Metrics.counter;
  m_bytes_from : Metrics.counter;
  m_spliced : Metrics.counter;
  m_copied : Metrics.counter;
  m_ctx_switches : Metrics.counter;
  m_qdepth_max : Metrics.gauge;
  m_qdepth_sum : Metrics.counter;
  m_qdepth_samples : Metrics.counter;
  m_inflight : Metrics.gauge;
  m_inflight_max : Metrics.gauge;
  m_spurious : Metrics.counter;
  m_qwait : Metrics.histogram;
  by_kind : (string, kind_metrics) Hashtbl.t;
}

let create ?obs ?sched ~clock ~cost () =
  let obs = match obs with Some o -> o | None -> Repro_obs.Obs.create () in
  let sched = match sched with Some s -> s | None -> Sched.create ~clock in
  let m = Repro_obs.Obs.metrics obs in
  let qdepth_sum = Metrics.counter m "fuse.queue.depth.sum" in
  let qdepth_samples = Metrics.counter m "fuse.queue.depth.samples" in
  Metrics.register_derived m "fuse.queue.depth.mean" (fun () ->
      let n = Metrics.value qdepth_samples in
      if n = 0 then 0. else float_of_int (Metrics.value qdepth_sum) /. float_of_int n);
  {
    clock;
    cost;
    obs;
    sched;
    handler = None;
    threads = 4;
    max_background = 12;
    serving = false;
    dead = false;
    background = false;
    fault = None;
    retry = Fault.no_retry;
    forced = Queue.create ();
    m_retries = None;
    m_timeouts = None;
    pending = Queue.create ();
    qlock = Sched.mutex ();
    qcond = Sched.cond ();
    bg_cond = Sched.cond ();
    bg_inflight = 0;
    inflight = 0;
    inflight_max = 0;
    qdepth_max = 0;
    workers = [];
    worker_exn = None;
    m_requests = Metrics.counter m "fuse.req.count";
    m_round_trips = Metrics.counter m "fuse.round_trips";
    m_bytes_to = Metrics.counter m "fuse.bytes.to_server";
    m_bytes_from = Metrics.counter m "fuse.bytes.from_server";
    m_spliced = Metrics.counter m "fuse.bytes.spliced";
    m_copied = Metrics.counter m "fuse.bytes.copied";
    m_ctx_switches = Metrics.counter m "os.context_switches";
    m_qdepth_max = Metrics.gauge m "fuse.queue.depth.max";
    m_qdepth_sum = qdepth_sum;
    m_qdepth_samples = qdepth_samples;
    m_inflight = Metrics.gauge m "fuse.inflight";
    m_inflight_max = Metrics.gauge m "fuse.inflight.max";
    m_spurious = Metrics.counter m "fuse.wakeups.spurious";
    m_qwait = Metrics.histogram m "fuse.queue.wait_us";
    by_kind = Hashtbl.create 16;
  }

let obs t = t.obs
let sched t = t.sched

let kind_metrics t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some km -> km
  | None ->
      let m = Repro_obs.Obs.metrics t.obs in
      let key suffix = Printf.sprintf "fuse.req.%s.%s" kind suffix in
      let km =
        {
          km_count = Metrics.counter m (key "count");
          km_to = Metrics.counter m (key "bytes_to_server");
          km_from = Metrics.counter m (key "bytes_from_server");
          km_latency = Metrics.histogram m (key "latency_us");
        }
      in
      Hashtbl.replace t.by_kind kind km;
      km

(* Snapshot view over the registry counters.  [by_kind] covers the opcodes
   this connection has issued (connections sharing one registry also share
   the underlying counters). *)
let stats t =
  let by_kind = Hashtbl.create 16 in
  Hashtbl.iter
    (fun kind km -> Hashtbl.replace by_kind kind (Metrics.value km.km_count))
    t.by_kind;
  {
    requests = Metrics.value t.m_requests;
    round_trips = Metrics.value t.m_round_trips;
    bytes_to_server = Metrics.value t.m_bytes_to;
    bytes_from_server = Metrics.value t.m_bytes_from;
    spliced_bytes = Metrics.value t.m_spliced;
    by_kind;
  }

let set_handler t h = t.handler <- Some h

(* --- server worker pool ----------------------------------------------------- *)

(* Transfer one payload leg between kernel and server. *)
let transfer t km ~splice ~to_server bytes =
  if to_server then begin
    Metrics.add t.m_bytes_to bytes;
    Metrics.add km.km_to bytes
  end
  else begin
    Metrics.add t.m_bytes_from bytes;
    Metrics.add km.km_from bytes
  end;
  if splice then begin
    Clock.consume_int t.clock t.cost.Cost.splice_setup_ns;
    Metrics.add t.m_spliced bytes
  end
  else begin
    Metrics.add t.m_copied bytes;
    Clock.consume_int t.clock (Cost.copy_cost t.cost bytes)
  end

(* Resolve an item's reply with ENOTCONN (if anyone still waits for it) and
   drop its in-flight accounting — the crash path for queued requests. *)
let fail_item t item =
  (match item.it_reply with
  | Some iv ->
      if not (Sched.is_filled iv) then
        Sched.fill t.sched iv (Protocol.R_err Errno.ENOTCONN)
  | None -> t.bg_inflight <- t.bg_inflight - 1);
  t.inflight <- t.inflight - 1

(* The server process died: stop serving, resolve every queued request with
   ENOTCONN (bounded virtual time — callers are unblocked now, not parked
   forever), and leave the worker fibers to park.  Requests already being
   served by other workers complete normally, like writes that had reached
   the kernel before the crash. *)
let crash t =
  t.serving <- false;
  t.dead <- true;
  Queue.iter (fun it -> fail_item t it) t.pending;
  Queue.clear t.pending;
  Metrics.set t.m_inflight (float_of_int t.inflight);
  ignore (Sched.broadcast t.sched t.bg_cond)

(* Bring a crashed connection back after the server has been relaunched and
   a fresh handler installed (see Attach.recover).  The parked worker pool
   is reused. *)
let revive t =
  t.dead <- false;
  t.serving <- true

(* Next fault to inject while serving [item], if any: test-hook one-shots
   first, then the armed plan.  None in the common case. *)
let fault_action t item =
  match Queue.take_opt t.forced with
  | Some a -> Some a
  | None -> (
      match t.fault with
      | Some f -> Fault.fuse_action f ~op:item.it_kind
      | None -> None)

(* Serve one dequeued request on the worker's timeline. *)
let process t w item =
  let start = Clock.now_ns t.clock in
  Metrics.observe_ns t.m_qwait (Int64.to_int (Int64.sub start item.it_submit_ns));
  match fault_action t item with
  | Some Fault.Crash_server ->
      (* died in the middle of dispatching this very request *)
      fail_item t item;
      crash t
  | action ->
      (match action with
      | Some (Fault.Hang ns) -> Sched.sleep_ns t.sched ns
      | Some (Fault.Delay ns) -> Clock.consume_int t.clock ns
      | _ -> ());
      (* the read(2) on /dev/fuse that returns this request to the server *)
      Clock.consume_int t.clock t.cost.Cost.syscall_ns;
      transfer t item.it_km ~splice:item.it_splice ~to_server:true
        (Protocol.req_payload_bytes item.it_req);
      let handler = Option.get t.handler in
      let resp =
        match action with
        | Some (Fault.Fail e) -> Protocol.R_err e
        | _ -> handler item.it_ctx item.it_req
      in
      transfer t item.it_km ~splice:item.it_splice ~to_server:false
        (Protocol.resp_payload_bytes resp);
      let fin = Clock.now_ns t.clock in
      Metrics.add w.w_busy (Int64.to_int (Int64.sub fin start));
      t.inflight <- t.inflight - 1;
      Metrics.set t.m_inflight (float_of_int t.inflight);
      (* completion may unblock a throttled one-way submitter or a quiesce *)
      ignore (Sched.broadcast t.sched t.bg_cond);
      (match item.it_reply with
      | Some iv -> (
          match action with
          | Some Fault.Drop_reply ->
              (* the work happened but the answer is lost; the caller's
                 deadline timer surfaces ETIMEDOUT *)
              ()
          | Some Fault.Duplicate_reply ->
              (* second copy of the reply crosses the wire and is discarded *)
              if not (Sched.is_filled iv) then Sched.fill t.sched iv resp;
              transfer t item.it_km ~splice:item.it_splice ~to_server:false
                (Protocol.resp_payload_bytes resp)
          | _ ->
              (* guarded: a deadline timer may have resolved this call *)
              if not (Sched.is_filled iv) then Sched.fill t.sched iv resp)
      | None ->
          (* the span is closed here since nobody awaits the reply *)
          t.bg_inflight <- t.bg_inflight - 1;
          Metrics.observe_ns item.it_km.km_latency
            (Int64.to_int (Int64.sub fin item.it_submit_ns));
          Repro_obs.Trace.record
            (Repro_obs.Obs.tracer t.obs)
            ~name:("fuse.req." ^ item.it_kind)
            ~begin_ns:item.it_submit_ns ~end_ns:fin ())

let rec worker_loop t w =
  Sched.lock t.sched t.qlock;
  Clock.consume_int t.clock t.cost.Cost.queue_lock_ns;
  worker_serve t w

(* Holds the queue lock on entry. *)
and worker_serve t w =
  match Queue.peek_opt t.pending with
  | Some item
    when Int64.compare item.it_submit_ns (Clock.now_ns t.clock) <= 0 ->
      ignore (Queue.take_opt t.pending);
      Sched.unlock t.sched t.qlock;
      process t w item;
      (* between requests the server re-enters read(2) on /dev/fuse — a
         real preemption point.  Yielding keeps event order aligned with
         virtual-time order, so same-time peers (woken workers, submitters)
         interleave instead of queueing behind this worker's lock holds. *)
      Sched.yield t.sched;
      worker_loop t w
  | Some item ->
      (* the head request is in this worker's virtual future: the worker
         was blocked in read(2) when it arrived, and its wake is still in
         flight — sleep to the submit time and serve with the same wake
         accounting as a parked worker *)
      let dt = Int64.to_int (Int64.sub item.it_submit_ns (Clock.now_ns t.clock)) in
      Sched.unlock t.sched t.qlock;
      Sched.sleep_ns t.sched dt;
      Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
      Metrics.incr t.m_ctx_switches;
      worker_loop t w
  | None ->
      (* park off the lock: the wake's context switch happens before the
         worker re-contends for the queue lock, not while holding it *)
      Sched.unlock t.sched t.qlock;
      Sched.park t.sched t.qcond;
      Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
      Metrics.incr t.m_ctx_switches;
      Sched.lock t.sched t.qlock;
      Clock.consume_int t.clock t.cost.Cost.queue_lock_ns;
      if Queue.is_empty t.pending then Metrics.incr t.m_spurious;
      worker_serve t w

let spawn_worker t i =
  let m = Repro_obs.Obs.metrics t.obs in
  let w = { w_busy = Metrics.counter m (Printf.sprintf "cntrfs.worker.%d.busy_ns" i) } in
  t.workers <- t.workers @ [ w ];
  ignore
    (Sched.spawn t.sched (fun () ->
         try worker_loop t w
         with e -> (match t.worker_exn with None -> t.worker_exn <- Some e | Some _ -> ())))

(* Top up the pool to [t.threads] workers (threads may be retuned between
   benchmark runs on a live connection). *)
let ensure_workers t =
  (match t.worker_exn with Some e -> raise e | None -> ());
  let have = List.length t.workers in
  for i = have to t.threads - 1 do
    spawn_worker t i
  done

(* The CNTR handshake: the child signals the server (over a Unix socket)
   once CntrFS is mounted inside the nested namespace; only then does the
   server start reading /dev/fuse (§3.2.2).  The worker pool parks on the
   request waitqueue from this point on. *)
let start_serving t =
  t.serving <- true;
  ensure_workers t;
  (* run the freshly spawned workers to their park point, so the first
     request's wake accounting matches every later one *)
  if not (Sched.in_task ()) then
    Sched.drive_main t.sched (fun () -> Sched.pending_events t.sched = 0)

(* --- submission ------------------------------------------------------------- *)

(* Append items to the pending queue and wake the worker herd.  The /dev/fuse
   waitqueue wake is non-exclusive: every parked worker is woken, and the
   submitter walks the wait list — each entry beyond the first is pure
   coordination tax, which is where the Figure 4 penalty comes from.  Under
   load fewer workers are parked, so the tax shrinks: it is a property of the
   queue state, not of the thread count. *)
let enqueue t items =
  Sched.lock t.sched t.qlock;
  Clock.consume_int t.clock t.cost.Cost.queue_lock_ns;
  List.iter
    (fun item ->
      Queue.push item t.pending;
      t.inflight <- t.inflight + 1)
    items;
  let depth = Queue.length t.pending in
  if depth > t.qdepth_max then begin
    t.qdepth_max <- depth;
    Metrics.set t.m_qdepth_max (float_of_int depth)
  end;
  Metrics.add t.m_qdepth_sum depth;
  Metrics.incr t.m_qdepth_samples;
  if t.inflight > t.inflight_max then begin
    t.inflight_max <- t.inflight;
    Metrics.set t.m_inflight_max (float_of_int t.inflight)
  end;
  Metrics.set t.m_inflight (float_of_int t.inflight);
  (* The submitter walks the waitqueue serially (try_to_wake_up per entry)
     *before* any wakee can run: every parked worker beyond the first delays
     the handoff by one wakeup.  Charging ahead of the broadcast puts the
     walk on the request's critical path — the wakees resume after it. *)
  for _ = 2 to Sched.waiters t.qcond do
    Clock.consume_int t.clock t.cost.Cost.wakeup_ns
  done;
  (* the request becomes visible to the server once queueing and the wake
     walk are done — a worker blocked in read(2) sees it no earlier *)
  let visible = Clock.now_ns t.clock in
  List.iter (fun item -> item.it_submit_ns <- visible) items;
  ignore (Sched.broadcast t.sched t.qcond);
  Sched.unlock t.sched t.qlock

let item t ?reply ~splice ctx req =
  let kind = Protocol.req_kind req in
  let km = kind_metrics t kind in
  Metrics.incr t.m_requests;
  Metrics.incr km.km_count;
  {
    it_ctx = ctx;
    it_req = req;
    it_splice = splice;
    it_submit_ns = Clock.now_ns t.clock;
    it_reply = reply;
    it_kind = kind;
    it_km = km;
  }

(* Inline bypass while the driver flushes its writeback cache "for free":
   background dirty-page flushing happens on kernel threads whose time the
   foreground workload never observes.  Counters still record the traffic. *)
let call_background t ~splice ctx req =
  let handler = Option.get t.handler in
  let kind = Protocol.req_kind req in
  let km = kind_metrics t kind in
  Metrics.incr t.m_requests;
  Metrics.incr km.km_count;
  Metrics.incr t.m_round_trips;
  Metrics.add t.m_ctx_switches 2;
  let out_bytes = Protocol.req_payload_bytes req in
  Metrics.add t.m_bytes_to out_bytes;
  Metrics.add km.km_to out_bytes;
  let in_bytes, resp =
    let resp = handler ctx req in
    (Protocol.resp_payload_bytes resp, resp)
  in
  Metrics.add t.m_bytes_from in_bytes;
  Metrics.add km.km_from in_bytes;
  if splice then Metrics.add t.m_spliced (out_bytes + in_bytes)
  else Metrics.add t.m_copied (out_bytes + in_bytes);
  resp

(* Arm supervision: a fault plane to consult while serving, and/or a
   per-request deadline + retry policy.  The fuse.retries / fuse.timeouts
   counters are only created here, so unarmed sessions leave the registry
   untouched (the smoke baseline depends on this). *)
let supervise t ?fault ?retry () =
  (match fault with Some _ -> t.fault <- fault | None -> ());
  (match retry with Some r -> t.retry <- r | None -> ());
  if t.m_retries = None && (t.fault <> None || t.retry <> Fault.no_retry) then begin
    let m = Repro_obs.Obs.metrics t.obs in
    t.m_retries <- Some (Metrics.counter m "fuse.retries");
    t.m_timeouts <- Some (Metrics.counter m "fuse.timeouts")
  end

let supervised t =
  t.fault <> None
  || t.retry.Fault.deadline_ns > 0
  || t.retry.Fault.max_retries > 0
  || not (Queue.is_empty t.forced)

(* Test hooks: make the next served request hit [action], without arming a
   plan ([Attach.hang_server]), or kill the server right now
   ([Attach.crash_server]). *)
let inject t action = Queue.push action t.forced
let inject_crash t = crash t

let incr_opt = function Some c -> Metrics.incr c | None -> ()

(* One round trip under supervision: the reply ivar races a deadline timer
   fiber (losing resolves it to ETIMEDOUT), and timed-out / transient
   replies to idempotent opcodes are retried with exponential backoff.
   Late replies from the worker find the ivar filled and are discarded. *)
let supervised_call t ~splice ctx req =
  let retry = t.retry in
  let idem = Protocol.idempotent req in
  let rec attempt n backoff =
    if not t.serving then Protocol.R_err Errno.ENOTCONN
    else begin
      ensure_workers t;
      let begin_ns = Clock.now_ns t.clock in
      let reply = Sched.ivar () in
      let it = item t ~reply ~splice ctx req in
      Metrics.incr t.m_round_trips;
      enqueue t [ it ];
      if retry.Fault.deadline_ns > 0 then
        ignore
          (Sched.spawn t.sched (fun () ->
               Sched.sleep_ns t.sched retry.Fault.deadline_ns;
               if not (Sched.is_filled reply) then begin
                 incr_opt t.m_timeouts;
                 Sched.fill t.sched reply (Protocol.R_err Errno.ETIMEDOUT)
               end));
      let resp = Sched.read t.sched reply in
      Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
      Metrics.incr t.m_ctx_switches;
      let end_ns = Clock.now_ns t.clock in
      Metrics.observe_ns it.it_km.km_latency (Int64.to_int (Int64.sub end_ns begin_ns));
      Repro_obs.Trace.record
        (Repro_obs.Obs.tracer t.obs)
        ~name:("fuse.req." ^ it.it_kind)
        ~begin_ns ~end_ns ();
      match resp with
      | Protocol.R_err (Errno.ETIMEDOUT | Errno.EINTR | Errno.ENOMEM)
        when idem && n < retry.Fault.max_retries ->
          incr_opt t.m_retries;
          Sched.sleep_ns t.sched backoff;
          attempt (n + 1) (backoff * retry.Fault.backoff_mult)
      | resp -> resp
    end
  in
  attempt 0 (max retry.Fault.backoff_ns 1)

(* Issue one request and wait for the reply: one round trip.  The submitter
   pays the queue append and the herd wake; the worker pays dispatch,
   transfer and service on its own timeline; resuming the submitter costs
   one context switch.  (The wake-side switch is charged by the worker when
   it actually parks — pipelined workers skip it.) *)
let call t ?(splice = false) ctx req =
  match t.handler with
  | None -> Protocol.R_err Errno.ENOTCONN
  | Some _ ->
      if not t.serving then Protocol.R_err Errno.ENOTCONN
      else if t.background then call_background t ~splice ctx req
      else if supervised t then supervised_call t ~splice ctx req
      else begin
        ensure_workers t;
        let begin_ns = Clock.now_ns t.clock in
        let reply = Sched.ivar () in
        let it = item t ~reply ~splice ctx req in
        Metrics.incr t.m_round_trips;
        enqueue t [ it ];
        let resp = Sched.read t.sched reply in
        (* switch back onto the submitter's CPU *)
        Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
        Metrics.incr t.m_ctx_switches;
        let end_ns = Clock.now_ns t.clock in
        Metrics.observe_ns it.it_km.km_latency (Int64.to_int (Int64.sub end_ns begin_ns));
        Repro_obs.Trace.record
          (Repro_obs.Obs.tracer t.obs)
          ~name:("fuse.req." ^ it.it_kind)
          ~begin_ns ~end_ns ();
        resp
      end

(* Issue several requests as one submission (async reads, READDIRPLUS
   prefetch): one round trip, one queue append, one herd wake, one resume —
   and the members can be served by different workers in parallel. *)
let call_group t ?(splice = false) ctx reqs =
  match reqs with
  | [] -> []
  | [ req ] -> [ call t ~splice ctx req ]
  | reqs -> (
      match t.handler with
      | None -> List.map (fun _ -> Protocol.R_err Errno.ENOTCONN) reqs
      | Some _ ->
          if not t.serving then List.map (fun _ -> Protocol.R_err Errno.ENOTCONN) reqs
          else if t.background then List.map (call_background t ~splice ctx) reqs
          else if supervised t then
            (* under supervision each member needs its own deadline/retry
               bracket, so the batch degrades to sequential round trips *)
            List.map (supervised_call t ~splice ctx) reqs
          else begin
            ensure_workers t;
            let begin_ns = Clock.now_ns t.clock in
            let items =
              List.map
                (fun req ->
                  let reply = Sched.ivar () in
                  (item t ~reply ~splice ctx req, reply))
                reqs
            in
            Metrics.incr t.m_round_trips;
            enqueue t (List.map fst items);
            let resps = List.map (fun (_, reply) -> Sched.read t.sched reply) items in
            Clock.consume_int t.clock t.cost.Cost.context_switch_ns;
            Metrics.incr t.m_ctx_switches;
            let end_ns = Clock.now_ns t.clock in
            List.iter
              (fun (it, _) ->
                Metrics.observe_ns it.it_km.km_latency
                  (Int64.to_int (Int64.sub end_ns begin_ns));
                Repro_obs.Trace.record
                  (Repro_obs.Obs.tracer t.obs)
                  ~name:("fuse.req." ^ it.it_kind)
                  ~begin_ns ~end_ns ())
              items;
            resps
          end)

(* One-way message (FORGET, RELEASE): queued and answered by nobody.  The
   submitter does not wait for service, but the background class is bounded
   by [max_background] — at the threshold the submitter blocks until the
   pool drains (congestion backpressure). *)
let post t ?(splice = false) ctx req =
  match t.handler with
  | None -> ()
  | Some _ ->
      if not t.serving then ()
      else if t.background then ignore (call_background t ~splice ctx req)
      else begin
        ensure_workers t;
        let rec throttle () =
          if t.bg_inflight >= t.max_background then
            if Sched.in_task () then begin
              Sched.lock t.sched t.qlock;
              if t.bg_inflight >= t.max_background then Sched.wait t.sched t.bg_cond t.qlock;
              Sched.unlock t.sched t.qlock;
              throttle ()
            end
            else Sched.drive_main t.sched (fun () -> t.bg_inflight < t.max_background)
        in
        throttle ();
        t.bg_inflight <- t.bg_inflight + 1;
        let it = item t ~splice ctx req in
        Metrics.incr t.m_round_trips;
        enqueue t [ it ]
      end

(* Block until every queued and in-service request has completed (unmount /
   teardown barrier). *)
let quiesce t =
  if t.inflight > 0 then begin
    ensure_workers t;
    if Sched.in_task () then
      while t.inflight > 0 do
        Sched.lock t.sched t.qlock;
        if t.inflight > 0 then Sched.wait t.sched t.bg_cond t.qlock;
        Sched.unlock t.sched t.qlock
      done
    else Sched.drive_main t.sched (fun () -> t.inflight = 0)
  end
