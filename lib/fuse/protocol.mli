(** The FUSE wire protocol, typed.  Requests flow from the kernel-side
    driver to the userspace server; each carries the calling process's
    context (uid/gid/pid), as the real protocol does.  The shapes mirror
    the lowlevel FUSE API that rust-fuse exposes and CNTR implements (§4).
    [req_payload_bytes]/[resp_payload_bytes] approximate the transfer sizes
    the connection charges for. *)

open Repro_util
open Repro_vfs

type ctx = { c_uid : int; c_gid : int; c_pid : int; }
val root_ctx : ctx

(** A passthrough grant (the FUSE_PASSTHROUGH analogue): a capability onto
    the backing file that the server may attach to an OPEN reply.  While
    [g_valid], the driver services that handle's READ/WRITE through
    [g_read]/[g_write] — straight into the backing VFS, zero FUSE round
    trips.  The server revokes by flipping [g_valid] (LRU overflow,
    server-side inode mutation, crash/teardown); the driver then falls
    back to round-trip I/O. *)
type grant = {
  g_ino : Types.ino;
  mutable g_valid : bool;
  g_read : off:int -> len:int -> (string, Errno.t) result;
  g_write : ctx -> off:int -> string -> (int, Errno.t) result;
}

type req =
    Lookup of { parent : Types.ino; name : string; }
  | Forget of (Types.ino * int) list
  | Getattr of Types.ino
  | Setattr of Types.ino * Types.setattr
  | Readlink of Types.ino
  | Mknod of { parent : Types.ino; name : string;
      kind : Types.kind; mode : int;
    }
  | Mkdir of { parent : Types.ino; name : string; mode : int; }
  | Unlink of { parent : Types.ino; name : string; }
  | Rmdir of { parent : Types.ino; name : string; }
  | Symlink of { parent : Types.ino; name : string;
      target : string;
    }
  | Rename of { src_parent : Types.ino; src_name : string;
      dst_parent : Types.ino; dst_name : string;
    }
  | Link of { src : Types.ino; parent : Types.ino;
      name : string;
    }
  | Open of { ino : Types.ino;
      flags : Types.open_flag list;
      want_pt : bool;  (** client asks for a passthrough grant *)
    }
  | Create of { parent : Types.ino; name : string; mode : int;
      flags : Types.open_flag list;
    }
  | Read of { fh : int; off : int; len : int; }
  | Write of { fh : int; off : int; data : string; }
  | Flush of int
  | Release of int
  | Fsync of int
  | Fallocate of { fh : int; off : int; len : int; }
  | Readdir of Types.ino
  | Readdirplus of Types.ino
  | Getxattr of Types.ino * string
  | Setxattr of Types.ino * string * string
  | Listxattr of Types.ino
  | Removexattr of Types.ino * string
  | Statfs
  | Destroy
type resp =
    R_entry of Types.ino * Types.stat
  | R_attr of Types.stat
  | R_data of string
  | R_written of int
  | R_open of int
  | R_open_pt of int * grant
      (** OPEN reply carrying a passthrough grant alongside the fh *)
  | R_create of Types.ino * Types.stat * int
  | R_dirents of Types.dirent list
  | R_direntplus of (Types.dirent * Types.stat option * int * int) list
  | R_readlink of string
  | R_xattr of string
  | R_xattr_names of string list
  | R_statfs of Types.statfs
  | R_ok
  | R_renamed of Types.ino option
      (** RENAME reply: the inode the rename displaced, if any *)
  | R_err of Errno.t
val req_kind : req -> string

(** Safe to re-send when a reply is lost or times out: read-only opcodes
    plus [Flush]/[Fsync].  [Open] is excluded (a dropped reply leaks a
    server file handle), and so is [Write]. *)
val idempotent : req -> bool

val req_payload_bytes : req -> int
val resp_payload_bytes : resp -> int
val err_of_resp : resp -> (resp, Errno.t) result
