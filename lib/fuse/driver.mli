(** The kernel-side FUSE driver: a {!Repro_vfs.Fsops.t} whose operations
    become protocol requests on a {!Conn.t}.  Owns the caches that make
    FUSE bearable — dentry/attribute caches and a data-bearing page cache
    with FOPEN_KEEP_CACHE and writeback semantics — and implements the
    batching and splice transports of the paper's §3.3.

    Deliberate limitations reproduce the paper's xfstests failures:
    O_DIRECT opens fail (generic/391), inodes are not exportable
    (generic/426), and RLIMIT_FSIZE / setgid-clearing are lost because the
    server replays operations under its own credential (generic/228, /375). *)

open Repro_vfs

type t

(** Build a driver over a connection.  [budget] is the page-cache memory
    budget shared with the backing filesystem's cache — the source of the
    paper's double-buffering pressure. *)
val create : conn:Conn.t -> opts:Opts.t -> budget:Mem_budget.t -> t

(** The filesystem interface to hand to {!Repro_os.Kernel.mount_at}. *)
val ops : t -> Fsops.t

val conn : t -> Conn.t

(** The connection's observability handle; the driver's page cache and
    dentry counters ([vfs.page_cache.fuse.*], [fuse.dentry.*]) register
    here. *)
val obs : t -> Repro_obs.Obs.t

(** {1 Supervised-session recovery}

    After the CntrFS server crashes, the mount and the driver's caches
    survive; these two calls let {!Repro_core.Attach.recover}-style paths
    relaunch the server without remounting. *)

(** The driver's live inode map: [(ino, path relative to the server root,
    nlookup)] for every inode reachable through the dentry cache, in
    deterministic (DFS, name-ordered) order.  Feed to
    [Repro_cntrfs.Server.restore] so the relaunched server speaks the same
    ino space. *)
val ino_paths : t -> (int * string * int) list

(** Reopen every open driver handle against a relaunched server and rebuild
    the writeback-fh map.  Handles whose inode did not survive are marked
    dead (subsequent use fails [EBADF]). *)
val on_server_restart : t -> unit

(** Page-cache statistics (hits, misses, evictions, writeback).

    Deprecated: thin wrapper over the metrics registry (the
    [vfs.page_cache.fuse.*] counters on {!obs}); kept for one release —
    new code should read the registry directly. *)
val cache_stats : t -> Page_cache.stats

(** Test introspection: [(ino, page, first byte)] of every cached page.

    Deprecated: prefer the [vfs.page_cache.fuse.*] counters on {!obs} for
    cache behaviour assertions; this remains only for tests that must see
    page *contents*. *)
val debug_pages : t -> (int * int * char) list
