(* The kernel-side FUSE driver: an [Fsops.t] whose operations become
   protocol requests on a [Conn.t].  It owns the caches that make FUSE
   bearable — the dentry/attr caches, and a data-bearing page cache with
   FOPEN_KEEP_CACHE and writeback semantics — and implements the request
   batching and splice transports of §3.3.

   Deliberate limitations that reproduce the paper's xfstests failures:
   - O_DIRECT opens fail (mmap and direct I/O are mutually exclusive and
     CNTR needs mmap to exec binaries) — generic/391;
   - inodes are not exportable (no name_to_handle_at) — generic/426;
   - RLIMIT_FSIZE and setgid-clearing are lost because the server replays
     operations under its own credential — generic/228 and generic/375. *)

open Repro_util
open Repro_vfs

type handle = {
  dh_ino : Types.ino;
  mutable dh_server_fh : int; (* refreshed when a relaunched server reopens *)
  dh_readable : bool;
  dh_writable : bool;
  dh_append : bool;
  dh_sync : bool; (* O_SYNC: bypass the writeback cache *)
  mutable dh_open : bool;
  (* passthrough grant: while present and valid, this handle's READ/WRITE
     reach the backing VFS directly — zero FUSE round trips *)
  mutable dh_grant : Protocol.grant option;
}

(* fuse.passthrough.* counters: only materialized when the knob is on, so
   passthrough-off sessions leave the registry untouched. *)
type pt_counters = {
  ptm_grants : Repro_obs.Metrics.counter;
  ptm_reads : Repro_obs.Metrics.counter;
  ptm_writes : Repro_obs.Metrics.counter;
  ptm_revocations : Repro_obs.Metrics.counter;
}

type t = {
  conn : Conn.t;
  opts : Opts.t;
  clock : Clock.t;
  cost : Cost.t;
  fs_id : int;
  (* page cache: presence/LRU/dirty in [pcache], bytes in [pdata] *)
  pcache : Page_cache.t;
  pdata : (int * int, Bytes.t) Hashtbl.t;
  sizes : (Types.ino, int) Hashtbl.t;
  (* dentry/attr caches carry a virtual-clock expiry; 0L = valid forever
     (the paper's behaviour, when the *_timeout_ns knobs are zero) *)
  entries : (Types.ino * string, Types.ino * int64) Hashtbl.t;
  attrs : (Types.ino, Types.stat * int64) Hashtbl.t;
  (* negative dentries: names known absent, until the stored expiry *)
  neg : (Types.ino * string, int64) Hashtbl.t;
  (* inos known to carry no security.capability xattr (write fast path) *)
  capneg : (Types.ino, int64) Hashtbl.t;
  nlookup : (Types.ino, int) Hashtbl.t;
  handles : (int, handle) Hashtbl.t;
  wb_fhs : (Types.ino, int) Hashtbl.t; (* a writable server fh per ino, for writeback *)
  mutable next_fh : int;
  mutable forget_q : (Types.ino * int) list;
  mutable last_wb_flush_ns : int64;
  (* Without FUSE_PARALLEL_DIROPS the kernel serializes directory
     operations under the directory's i_mutex, held across the operation's
     round trips, so concurrent walkers queue behind each other (the
     Figure 3(c) ablation).  The locks live in a fixed-size table sharded
     by inode hash: bounded state however many directories exist, at the
     price of false sharing between hash-colliding directories. *)
  sched : Repro_sched.Sched.t;
  dirlocks : Repro_sched.Sched.mutex array;
  (* dentry-cache accounting on the connection's registry *)
  m_dentry_hits : Repro_obs.Metrics.counter;
  m_dentry_misses : Repro_obs.Metrics.counter;
  m_neg_hits : Repro_obs.Metrics.counter;
  m_rdp_entries : Repro_obs.Metrics.counter;
  m_xattr_neg_hits : Repro_obs.Metrics.counter;
  pt : pt_counters option; (* Some iff opts.passthrough > 0 *)
}

let ( let* ) = Result.bind

let page_size t = t.cost.Cost.page_size

let ctx_of (cred : Types.cred) =
  { Protocol.c_uid = cred.Types.uid; c_gid = cred.Types.gid; c_pid = 0 }

(* One request round trip.  Splice write mode costs an extra context switch
   on *every* request (the header must be examined in a pipe first); the
   price comes from the shared Datapath model. *)
let rt t ?(splice = false) ctx req =
  if t.opts.Opts.splice_write then begin
    Repro_obs.Metrics.incr t.conn.Conn.m_ctx_switches;
    Clock.consume_int t.clock (Repro_os.Datapath.splice_write_switch_ns t.cost)
  end;
  Protocol.err_of_resp (Conn.call t.conn ~splice ctx req)

(* Serialized directory operations: without FUSE_PARALLEL_DIROPS the
   kernel holds the directory's i_mutex across the operation, round trips
   included, so concurrent walkers genuinely queue.  The locks are
   reentrant (unlink looks the child up under the lock it already holds)
   and hash-sharded per directory inode; with FUSE_PARALLEL_DIROPS
   negotiated they are not taken at all. *)
let dir_shard_bits = 6
let dir_shard_count = 1 lsl dir_shard_bits

(* Golden-ratio multiplicative hash; sequentially allocated inos spread
   over the shards instead of clustering. *)
let dir_shard (ino : Types.ino) = ino * 0x9E3779B9 land (dir_shard_count - 1)
let dirlock t ino = t.dirlocks.(dir_shard ino)

(* i_rwsem is a sleeping lock: the uncontended acquisition is a fast-path
   CAS (free), but a *contended* one schedules the waiter out and wakes it
   when the holder unlocks — a context switch on top of the wait itself.
   The scheduler mutex settles a blocked taker's clock through the hold
   gap, so "we actually waited" is visible as the clock having moved. *)
let dirop_lock t m =
  let t0 = Clock.now_ns t.clock in
  Repro_sched.Sched.lock t.sched m;
  if Int64.compare (Clock.now_ns t.clock) t0 > 0 then begin
    Repro_obs.Metrics.incr t.conn.Conn.m_ctx_switches;
    Clock.consume_int t.clock t.cost.Cost.context_switch_ns
  end

let with_dirlock t m f =
  dirop_lock t m;
  match f () with
  | v ->
      Repro_sched.Sched.unlock t.sched m;
      v
  | exception e ->
      Repro_sched.Sched.unlock t.sched m;
      raise e

let with_dirop t ino f =
  if t.opts.Opts.parallel_dirops then f () else with_dirlock t (dirlock t ino) f

(* Rename spans two directories: take both locks in *shard* order (once
   when the shards coincide — the mutexes are reentrant, so colliding
   parents degrade to one hold) to stay deadlock-free. *)
let with_dirop2 t ino_a ino_b f =
  if t.opts.Opts.parallel_dirops then f ()
  else begin
    let sa = dir_shard ino_a and sb = dir_shard ino_b in
    if sa = sb then with_dirlock t t.dirlocks.(sa) f
    else begin
      let lo = min sa sb and hi = max sa sb in
      with_dirlock t t.dirlocks.(lo) (fun () ->
          with_dirlock t t.dirlocks.(hi) f)
    end
  end

(* Expiry stamp for a validity window: 0 = forever (stored as 0L). *)
let expiry_of t valid_ns =
  if valid_ns <= 0 then 0L
  else Int64.add (Clock.now_ns t.clock) (Int64.of_int valid_ns)

let expired t exp = exp <> 0L && Clock.now_ns t.clock >= exp

let cache_attr ?valid_ns t st =
  if t.opts.Opts.attr_cache then begin
    let v = Option.value ~default:t.opts.Opts.attr_timeout_ns valid_ns in
    Hashtbl.replace t.attrs st.Types.st_ino (st, expiry_of t v)
  end;
  (match st.Types.st_kind with
  | Types.Reg -> Hashtbl.replace t.sizes st.Types.st_ino st.Types.st_size
  | _ -> ())

let cached_attr t ino =
  match Hashtbl.find_opt t.attrs ino with
  | Some (st, exp) when not (expired t exp) -> Some st
  | Some _ ->
      Hashtbl.remove t.attrs ino;
      None
  | None -> None

let put_entry ?valid_ns t parent name ino =
  if t.opts.Opts.entry_cache then begin
    let v = Option.value ~default:t.opts.Opts.entry_timeout_ns valid_ns in
    Hashtbl.replace t.entries (parent, name) (ino, expiry_of t v)
  end

let cached_entry t parent name =
  if not t.opts.Opts.entry_cache then None
  else
    match Hashtbl.find_opt t.entries (parent, name) with
    | Some (ino, exp) when not (expired t exp) -> Some ino
    | Some _ ->
        Hashtbl.remove t.entries (parent, name);
        None
    | None -> None

(* Negative dentries: only meaningful with [negative_timeout_ns] > 0.
   Installed on ENOENT lookups and on unlink/rmdir/rename-away (the name is
   then *known* absent); dropped by every name-creating operation. *)
let put_neg t parent name =
  if t.opts.Opts.negative_timeout_ns > 0 then
    Hashtbl.replace t.neg (parent, name)
      (expiry_of t t.opts.Opts.negative_timeout_ns)

let drop_neg t parent name = Hashtbl.remove t.neg (parent, name)

let neg_valid t parent name =
  match Hashtbl.find_opt t.neg (parent, name) with
  | Some exp when not (expired t exp) -> true
  | Some _ ->
      Hashtbl.remove t.neg (parent, name);
      false
  | None -> false

let bump_nlookup t ino =
  Hashtbl.replace t.nlookup ino (1 + Option.value ~default:0 (Hashtbl.find_opt t.nlookup ino))

let getattr t ino =
  match cached_attr t ino with
  | Some st -> Ok st
  | None -> (
      match rt t Protocol.root_ctx (Protocol.Getattr ino) with
      | Ok (Protocol.R_attr st) ->
          cache_attr t st;
          Ok st
      | Ok _ -> Error Errno.EIO
      | Error e -> Error e)

(* default_permissions: the driver checks mode bits itself from cached
   attributes (it cannot interpret server-side ACLs). *)
let check_perm t cred ino want =
  let* st = getattr t ino in
  if
    Perm.check cred ~uid:st.Types.st_uid ~gid:st.Types.st_gid
      ~mode:st.Types.st_mode want
  then Ok ()
  else Error Errno.EACCES

let check_delete t cred dir_ino child_ino =
  let* () = check_perm t cred dir_ino (Types.w_ok lor Types.x_ok) in
  let* dir_st = getattr t dir_ino in
  if dir_st.Types.st_mode land Types.s_isvtx = 0 then Ok ()
  else
    let* child_st = getattr t child_ino in
    if
      cred.Types.cap_fowner
      || cred.Types.uid = child_st.Types.st_uid
      || cred.Types.uid = dir_st.Types.st_uid
    then Ok ()
    else Error Errno.EPERM

let size_of t ino = Option.value ~default:0 (Hashtbl.find_opt t.sizes ino)

let invalidate_attr t ino = Hashtbl.remove t.attrs ino

let drop_entry t parent name = Hashtbl.remove t.entries (parent, name)

(* --- forgets ------------------------------------------------------------ *)

(* Is any cached dentry still referencing this inode?  (A second hardlink
   keeps the inode alive after one name is unlinked.) *)
let ino_referenced t ino =
  Hashtbl.fold (fun _ (v, _) acc -> acc || v = ino) t.entries false

let queue_forget t ino =
  match Hashtbl.find_opt t.nlookup ino with
  | None -> ()
  | Some n ->
      Hashtbl.remove t.nlookup ino;
      t.forget_q <- (ino, n) :: t.forget_q;
      if List.length t.forget_q >= t.opts.Opts.forget_batch then begin
        (* FORGET is one-way: coalesced entries leave as a single
           background message nobody waits for (congestion permitting) *)
        let q = t.forget_q in
        t.forget_q <- [];
        Conn.post t.conn Protocol.root_ctx (Protocol.Forget q)
      end

(* --- page data helpers --------------------------------------------------- *)

let get_page_bytes t ino page =
  match Hashtbl.find_opt t.pdata (ino, page) with
  | Some b -> b
  | None ->
      let b = Bytes.make (page_size t) '\000' in
      Hashtbl.replace t.pdata (ino, page) b;
      b

(* Fetch pages [first..last] of [ino] from the server via READ requests
   and install them in the cache.  With async_read the chunks are submitted
   [read_batch] at a time as one queued group — one round trip, and a
   multi-threaded server serves the members in parallel. *)
let fetch_pages t ctx ~server_fh ~ino ~first ~last =
  let ps = page_size t in
  let pages_per_req = max 1 (t.opts.Opts.max_read / ps) in
  (* install one chunk's page data — but never clobber pages already cached
     (they may hold dirty data newer than the server's copy) *)
  let install page chunk_pages data =
    for p = 0 to chunk_pages - 1 do
      if not (Page_cache.mem t.pcache ~ino ~page:(page + p)) then begin
        let b = Bytes.make ps '\000' in
        let src_off = p * ps in
        if src_off < String.length data then begin
          let n = min ps (String.length data - src_off) in
          Bytes.blit_string data src_off b 0 n
        end;
        Hashtbl.replace t.pdata (ino, page + p) b;
        ignore (Page_cache.touch t.pcache ~ino ~page:(page + p) ~dirty:false)
      end
    done
  in
  let rec chunks page acc =
    if page > last then List.rev acc
    else
      let chunk_pages = min pages_per_req (last - page + 1) in
      chunks (page + chunk_pages) ((page, chunk_pages) :: acc)
  in
  let chunks = chunks first [] in
  let group_size = if t.opts.Opts.async_read then max 1 t.opts.Opts.read_batch else 1 in
  let rec take n = function
    | x :: tl when n > 0 ->
        let hd, rest = take (n - 1) tl in
        (x :: hd, rest)
    | l -> ([], l)
  in
  let splice = t.opts.Opts.splice_read in
  let rec fetch_groups = function
    | [] -> Ok ()
    | pending ->
        let group, rest = take group_size pending in
        if t.opts.Opts.splice_write then begin
          Repro_obs.Metrics.add t.conn.Conn.m_ctx_switches (List.length group);
          Clock.consume_int t.clock
            (List.length group * Repro_os.Datapath.splice_write_switch_ns t.cost)
        end;
        let reqs =
          List.map
            (fun (page, chunk_pages) ->
              Protocol.Read { fh = server_fh; off = page * ps; len = chunk_pages * ps })
            group
        in
        let resps = Conn.call_group t.conn ~splice ctx reqs in
        let* () =
          List.fold_left2
            (fun acc (page, chunk_pages) resp ->
              let* () = acc in
              match Protocol.err_of_resp resp with
              | Ok (Protocol.R_data d) ->
                  install page chunk_pages d;
                  Ok ()
              | Ok _ -> Error Errno.EIO
              | Error e -> Error e)
            (Ok ()) group resps
        in
        fetch_groups rest
  in
  fetch_groups chunks

(* --- writeback ----------------------------------------------------------- *)

(* Install the flush callback: dirty runs become WRITE requests built from
   the stored page data.  Writeback happens under the kernel's credential,
   as in Linux. *)
let install_flush_hook t =
  Page_cache.set_on_flush t.pcache (fun ~ino ~page ~pages ->
      let ps = page_size t in
      let size = size_of t ino in
      let server_fh =
        match Hashtbl.find_opt t.wb_fhs ino with
        | Some fh -> Some fh
        | None -> (
            (* Dirty data outliving its writable handle: open transiently. *)
            match rt t Protocol.root_ctx (Protocol.Open { ino; flags = [ Types.O_WRONLY ]; want_pt = false }) with
            | Ok (Protocol.R_open fh) ->
                Hashtbl.replace t.wb_fhs ino fh;
                Some fh
            | _ -> None)
      in
      match server_fh with
      | None -> ()
      | Some fh ->
          let chunk_pages = max 1 (t.opts.Opts.max_write / ps) in
          let rec send page remaining =
            if remaining > 0 then begin
              let n = min chunk_pages remaining in
              let off = page * ps in
              let len = min (n * ps) (max 0 (size - off)) in
              if len > 0 then begin
                let buf = Buffer.create len in
                for p = page to page + n - 1 do
                  match Hashtbl.find_opt t.pdata (ino, p) with
                  | Some b -> Buffer.add_bytes buf b
                  | None -> Buffer.add_string buf (String.make ps '\000')
                done;
                let data = Buffer.sub buf 0 len in
                ignore
                  (rt t ~splice:t.opts.Opts.splice_write Protocol.root_ctx
                     (Protocol.Write { fh; off; data }))
              end;
              send (page + n) (remaining - n)
            end
          in
          send page pages);
  Page_cache.set_on_evict t.pcache (fun ~ino ~page -> Hashtbl.remove t.pdata (ino, page))

let flush_dirty t ino = Page_cache.flush_inode t.pcache ino

(* --- passthrough (the FUSE_PASSTHROUGH analogue) -------------------------- *)

let pt_incr t f = match t.pt with Some c -> Repro_obs.Metrics.incr (f c) | None -> ()

(* Revoke a handle's grant from the driver's side: the server is gone
   (crash) or unreachable, so the driver is the one flipping the flag and
   owns the revocation count.  A grant the server already flipped was
   counted at that flip. *)
let pt_revoke_local t h =
  match h.dh_grant with
  | None -> ()
  | Some g ->
      if g.Protocol.g_valid then begin
        g.Protocol.g_valid <- false;
        pt_incr t (fun c -> c.ptm_revocations)
      end;
      h.dh_grant <- None

(* The grant to use for this I/O, if any.  A server-revoked grant is
   dropped silently (counted at the flip); a dead connection revokes
   driver-side — the caller then falls back to the round-trip path, where
   the failure surfaces as ENOTCONN like any other request. *)
let pt_live t h =
  match h.dh_grant with
  | None -> None
  | Some g ->
      if not g.Protocol.g_valid then begin
        h.dh_grant <- None;
        None
      end
      else if t.conn.Conn.dead then begin
        pt_revoke_local t h;
        None
      end
      else Some g

(* --- construction --------------------------------------------------------- *)

let create ~conn ~opts ~budget =
  let clock = conn.Conn.clock and cost = conn.Conn.cost in
  let metrics = Repro_obs.Obs.metrics (Conn.obs conn) in
  let t =
    {
      conn;
      opts;
      clock;
      cost;
      fs_id = Fsops.next_fs_id ();
      pcache =
        Page_cache.create ~metrics ~name:"fuse" ~budget
          ~page_size:cost.Cost.page_size ();
      pdata = Hashtbl.create 1024;
      sizes = Hashtbl.create 64;
      entries = Hashtbl.create 256;
      attrs = Hashtbl.create 256;
      neg = Hashtbl.create 64;
      capneg = Hashtbl.create 64;
      nlookup = Hashtbl.create 256;
      handles = Hashtbl.create 32;
      wb_fhs = Hashtbl.create 16;
      next_fh = 1;
      forget_q = [];
      last_wb_flush_ns = 0L;
      sched = Conn.sched conn;
      dirlocks = Array.init dir_shard_count (fun _ -> Repro_sched.Sched.mutex ());
      m_dentry_hits = Repro_obs.Metrics.counter metrics "fuse.dentry.hits";
      m_dentry_misses = Repro_obs.Metrics.counter metrics "fuse.dentry.misses";
      m_neg_hits = Repro_obs.Metrics.counter metrics "fuse.dentry.negative_hits";
      m_rdp_entries = Repro_obs.Metrics.counter metrics "fuse.readdirplus.entries";
      m_xattr_neg_hits = Repro_obs.Metrics.counter metrics "fuse.xattr.negative_hits";
      pt =
        (if opts.Opts.passthrough > 0 then
           Some
             {
               ptm_grants = Repro_obs.Metrics.counter metrics "fuse.passthrough.grants";
               ptm_reads = Repro_obs.Metrics.counter metrics "fuse.passthrough.reads";
               ptm_writes = Repro_obs.Metrics.counter metrics "fuse.passthrough.writes";
               ptm_revocations =
                 Repro_obs.Metrics.counter metrics "fuse.passthrough.revocations";
             }
         else None);
    }
  in
  install_flush_hook t;
  t

let conn t = t.conn
let obs t = Conn.obs t.conn

(* debug: first byte of every cached page (test introspection) *)
let debug_pages t =
  Hashtbl.fold (fun (i, pg) b acc -> (i, pg, Bytes.get b 0) :: acc) t.pdata []
  |> List.sort compare
let cache_stats t = Page_cache.stats t.pcache

(* --- Fsops implementation ------------------------------------------------- *)

let lookup t cred parent name =
  with_dirop t parent @@ fun () ->
  let* () = check_perm t cred parent Types.x_ok in
  match cached_entry t parent name with
  | Some ino ->
      Repro_obs.Metrics.incr t.m_dentry_hits;
      Clock.consume_int t.clock t.cost.Cost.dentry_ns;
      let* st = getattr t ino in
      Ok (ino, st)
  | None ->
      if neg_valid t parent name then begin
        (* a cached ENOENT: answered like a dentry hit, no round trip *)
        Repro_obs.Metrics.incr t.m_neg_hits;
        Clock.consume_int t.clock t.cost.Cost.dentry_ns;
        Error Errno.ENOENT
      end
      else begin
        Repro_obs.Metrics.incr t.m_dentry_misses;
        match rt t (ctx_of cred) (Protocol.Lookup { parent; name }) with
        | Ok (Protocol.R_entry (ino, st)) ->
            put_entry t parent name ino;
            drop_neg t parent name;
            cache_attr t st;
            bump_nlookup t ino;
            Ok (ino, st)
        | Ok _ -> Error Errno.EIO
        | Error e ->
            if e = Errno.ENOENT then put_neg t parent name;
            Error e
      end

let driver_getattr t ino = getattr t ino

let setattr t cred ino sa =
  let* () =
    (* truncate/chmod/chown need ownership or write permission; the server
       itself runs privileged, so the driver must gate. *)
    match sa.Types.sa_size with
    | Some _ ->
        let* st = getattr t ino in
        if cred.Types.cap_dac_override || cred.Types.uid = st.Types.st_uid then Ok ()
        else check_perm t cred ino Types.w_ok
    | None -> Ok ()
  in
  let* () =
    match sa.Types.sa_mode with
    | Some _ ->
        let* st = getattr t ino in
        if cred.Types.cap_fowner || cred.Types.uid = st.Types.st_uid then Ok ()
        else Error Errno.EPERM
    | None -> Ok ()
  in
  (* chown gating and ATTR_KILL_SUID/SGID composition happen in the kernel
     (the server would apply them under its own privileged credential) *)
  let* sa =
    match (sa.Types.sa_uid, sa.Types.sa_gid) with
    | None, None -> Ok sa
    | uid_opt, gid_opt ->
        let* st = getattr t ino in
        let uid_change =
          match uid_opt with Some u when u <> st.Types.st_uid -> true | _ -> false
        in
        let allowed =
          cred.Types.cap_chown
          || ((not uid_change)
             && cred.Types.uid = st.Types.st_uid
             && match gid_opt with
                | None -> true
                | Some g -> g = st.Types.st_gid || g = cred.Types.gid || List.mem g cred.Types.groups)
        in
        if not allowed then Error Errno.EPERM
        else if
          (not cred.Types.cap_fsetid)
          && st.Types.st_kind = Types.Reg
          && st.Types.st_mode land (Types.s_isuid lor Types.s_isgid) <> 0
          && sa.Types.sa_mode = None
        then Ok { sa with Types.sa_mode = Some (st.Types.st_mode land 0o1777) }
        else Ok sa
  in
  let* resp = rt t (ctx_of cred) (Protocol.Setattr (ino, sa)) in
  match resp with
  | Protocol.R_attr st ->
      invalidate_attr t ino;
      cache_attr t st;
      (match sa.Types.sa_size with
      | Some size ->
          Hashtbl.replace t.sizes ino size;
          (* truncation invalidates cached pages beyond the new end *)
          Page_cache.invalidate_inode t.pcache ino
      | None -> ());
      Ok st
  | _ -> Error Errno.EIO

let readlink t ino =
  match rt t Protocol.root_ctx (Protocol.Readlink ino) with
  | Ok (Protocol.R_readlink s) -> Ok s
  | Ok _ -> Error Errno.EIO
  | Error e -> Error e

(* NFS-style post-op parent attributes: the driver is the backing tree's
   sole mutator, so after a name-changing operation it knows the parent's
   new attributes without asking — update the cached copy in place and the
   next permission check needs no GETATTR round trip.  Fast path only: with
   [attr_timeout_ns = 0] (the paper's configuration) the cached attr is
   dropped and re-fetched, exactly as before.  [dentries] is the change in
   the parent's entry count (a directory's size is [(entries + 2) * 32],
   see [Inode.size]; the aggressive differential property stats directories
   to keep this in sync), [dnlink] the change in its link count. *)
let touch_parent_attr t parent ~dentries ~dnlink =
  if t.opts.Opts.attr_timeout_ns <= 0 then invalidate_attr t parent
  else
    match Hashtbl.find_opt t.attrs parent with
    | None -> ()
    | Some (st, exp) ->
        let now = Clock.now_ns t.clock in
        Hashtbl.replace t.attrs parent
          ( { st with
              Types.st_size = st.Types.st_size + (32 * dentries);
              st_nlink = st.Types.st_nlink + dnlink;
              st_mtime = now;
              st_ctime = now;
            },
            exp )

let entry_req t cred req =
  let* resp = rt t (ctx_of cred) req in
  match resp with
  | Protocol.R_entry (ino, st) ->
      cache_attr t st;
      bump_nlookup t ino;
      Ok st
  | _ -> Error Errno.EIO

let mknod t cred parent name ~kind ~mode =
  with_dirop t parent @@ fun () ->
  let* () = check_perm t cred parent (Types.w_ok lor Types.x_ok) in
  let* st = entry_req t cred (Protocol.Mknod { parent; name; kind; mode }) in
  put_entry t parent name st.Types.st_ino;
  drop_neg t parent name;
  touch_parent_attr t parent ~dentries:1 ~dnlink:0;
  Ok st

let mkdir t cred parent name ~mode =
  with_dirop t parent @@ fun () ->
  let* () = check_perm t cred parent (Types.w_ok lor Types.x_ok) in
  let* st = entry_req t cred (Protocol.Mkdir { parent; name; mode }) in
  put_entry t parent name st.Types.st_ino;
  drop_neg t parent name;
  touch_parent_attr t parent ~dentries:1 ~dnlink:1;
  Ok st

let symlink t cred parent name ~target =
  with_dirop t parent @@ fun () ->
  let* () = check_perm t cred parent (Types.w_ok lor Types.x_ok) in
  let* st = entry_req t cred (Protocol.Symlink { parent; name; target }) in
  put_entry t parent name st.Types.st_ino;
  drop_neg t parent name;
  touch_parent_attr t parent ~dentries:1 ~dnlink:0;
  Ok st

let child_ino t cred parent name =
  match cached_entry t parent name with
  | Some ino -> Ok ino
  | None ->
      let* ino, _ = lookup t cred parent name in
      Ok ino

let unlink t cred parent name =
  with_dirop t parent @@ fun () ->
  let* ino = child_ino t cred parent name in
  let* () = check_delete t cred parent ino in
  let* resp = rt t (ctx_of cred) (Protocol.Unlink { parent; name }) in
  match resp with
  | Protocol.R_ok ->
      drop_entry t parent name;
      (* the name is now known absent: a create-after-unlink (postmark's
         churn) need not pay a failed LOOKUP first *)
      put_neg t parent name;
      invalidate_attr t ino;
      touch_parent_attr t parent ~dentries:(-1) ~dnlink:0;
      (* dirty pages of a deleted file are dropped, never written *)
      if not (Hashtbl.mem t.wb_fhs ino) then Page_cache.discard_inode t.pcache ino;
      if not (ino_referenced t ino) then queue_forget t ino;
      Ok ()
  | _ -> Error Errno.EIO

let rmdir t cred parent name =
  with_dirop t parent @@ fun () ->
  let* ino = child_ino t cred parent name in
  let* () = check_delete t cred parent ino in
  let* resp = rt t (ctx_of cred) (Protocol.Rmdir { parent; name }) in
  match resp with
  | Protocol.R_ok ->
      drop_entry t parent name;
      put_neg t parent name;
      invalidate_attr t ino;
      touch_parent_attr t parent ~dentries:(-1) ~dnlink:(-1);
      if not (ino_referenced t ino) then queue_forget t ino;
      Ok ()
  | _ -> Error Errno.EIO

let rename t cred src_parent src_name dst_parent dst_name =
  with_dirop2 t src_parent dst_parent @@ fun () ->
  let* src_ino = child_ino t cred src_parent src_name in
  let* () = check_delete t cred src_parent src_ino in
  let* () = check_perm t cred dst_parent (Types.w_ok lor Types.x_ok) in
  let* resp =
    rt t (ctx_of cred) (Protocol.Rename { src_parent; src_name; dst_parent; dst_name })
  in
  match resp with
  (* the server reports which inode (if any) the rename displaced; the
     dentry cache alone cannot — the target's entry may have expired while
     its attrs, cached under another hardlink's name, live on *)
  | Protocol.R_renamed replaced ->
      (* the displaced inode, from both vantage points: the server's path
         map may know it under another hardlink's name, while our dentry
         table (expired entries included) may remember who sat at dst.
         Invalidating a wrong guess is harmless; missing the right one
         leaves a stale nlink behind. *)
      let dentry_hint =
        match Hashtbl.find_opt t.entries (dst_parent, dst_name) with
        | Some (ino, _) -> Some ino
        | None -> None
      in
      drop_entry t src_parent src_name;
      drop_entry t dst_parent dst_name;
      put_neg t src_parent src_name;
      drop_neg t dst_parent dst_name;
      invalidate_attr t src_parent;
      invalidate_attr t dst_parent;
      (* ctime of the moved inode changes; nlink of the replaced one drops *)
      invalidate_attr t src_ino;
      let doom r_ino =
        if r_ino <> src_ino then begin
          invalidate_attr t r_ino;
          if not (Hashtbl.mem t.wb_fhs r_ino) then Page_cache.discard_inode t.pcache r_ino;
          if not (ino_referenced t r_ino) then queue_forget t r_ino
        end
      in
      (match replaced with Some r -> doom r | None -> ());
      (match dentry_hint with
      | Some c when replaced <> Some c -> doom c
      | _ -> ());
      put_entry t dst_parent dst_name src_ino;
      Ok ()
  | _ -> Error Errno.EIO

let link t cred ~src ~dir ~name =
  with_dirop t dir @@ fun () ->
  let* () = check_perm t cred dir (Types.w_ok lor Types.x_ok) in
  let* st = entry_req t cred (Protocol.Link { src; parent = dir; name }) in
  put_entry t dir name st.Types.st_ino;
  drop_neg t dir name;
  touch_parent_attr t dir ~dentries:1 ~dnlink:0;
  invalidate_attr t src;
  Ok st

let alloc_handle t ~ino ~server_fh ~readable ~writable ~append ~sync =
  let fh = t.next_fh in
  t.next_fh <- fh + 1;
  Hashtbl.replace t.handles fh
    { dh_ino = ino; dh_server_fh = server_fh; dh_readable = readable; dh_writable = writable; dh_append = append; dh_sync = sync; dh_open = true; dh_grant = None };
  if writable then Hashtbl.replace t.wb_fhs ino server_fh;
  fh

let open_ t cred ino flags =
  (* mmap and direct I/O are mutually exclusive in FUSE; CNTR chose mmap
     (generic/391 fails through CntrFS). *)
  if List.mem Types.O_DIRECT flags then Error Errno.EINVAL
  else
    let want =
      (if Types.flag_readable flags then Types.r_ok else 0)
      lor if Types.flag_writable flags then Types.w_ok else 0
    in
    let* () = check_perm t cred ino want in
    let* resp =
      rt t (ctx_of cred)
        (Protocol.Open { ino; flags; want_pt = t.opts.Opts.passthrough > 0 })
    in
    let finish server_fh grant =
      (* Without FOPEN_KEEP_CACHE every open invalidates the inode's
         cached pages — the Figure 3(a) ablation. *)
      if not t.opts.Opts.keep_cache then begin
        flush_dirty t ino;
        Page_cache.invalidate_inode t.pcache ino
      end;
      if List.mem Types.O_TRUNC flags && Types.flag_writable flags then begin
        Hashtbl.replace t.sizes ino 0;
        invalidate_attr t ino;
        Page_cache.invalidate_inode t.pcache ino
      end;
      let fh =
        alloc_handle t ~ino ~server_fh ~readable:(Types.flag_readable flags)
          ~writable:(Types.flag_writable flags)
          ~append:(List.mem Types.O_APPEND flags)
          ~sync:(List.mem Types.O_SYNC flags)
      in
      (match grant with
      | Some g ->
          (* the grant coexists with the page cache: cached pages stay
             authoritative for the ranges they hold (unflushed dirty data
             only ever lives there), and the capability serves what the
             cache doesn't — misses fill from the backing file with no
             round trip, write-through writes land on it directly *)
          (match Hashtbl.find_opt t.handles fh with
          | Some h -> h.dh_grant <- Some g
          | None -> ());
          pt_incr t (fun c -> c.ptm_grants)
      | None -> ());
      Ok fh
    in
    match resp with
    | Protocol.R_open server_fh -> finish server_fh None
    | Protocol.R_open_pt (server_fh, g) -> finish server_fh (Some g)
    | _ -> Error Errno.EIO

let create_file t cred parent name ~mode flags =
  if List.mem Types.O_DIRECT flags then Error Errno.EINVAL
  else begin
  with_dirop t parent @@ fun () ->
  let* () = check_perm t cred parent (Types.w_ok lor Types.x_ok) in
  let* resp = rt t (ctx_of cred) (Protocol.Create { parent; name; mode; flags }) in
  match resp with
  | Protocol.R_create (ino, st, server_fh) ->
      put_entry t parent name ino;
      drop_neg t parent name;
      cache_attr t st;
      bump_nlookup t ino;
      touch_parent_attr t parent ~dentries:1 ~dnlink:0;
      (* a file the driver itself just created cannot carry
         security.capability: seed the known-absent cache so the first
         write skips its GETXATTR round trip *)
      if t.opts.Opts.attr_timeout_ns > 0 then
        Hashtbl.replace t.capneg ino (expiry_of t t.opts.Opts.attr_timeout_ns);
      let fh =
        alloc_handle t ~ino ~server_fh ~readable:(Types.flag_readable flags)
          ~writable:(Types.flag_writable flags)
          ~append:(List.mem Types.O_APPEND flags)
          ~sync:(List.mem Types.O_SYNC flags)
      in
      Ok (st, fh)
  | _ -> Error Errno.EIO
  end

let handle t fh =
  match Hashtbl.find_opt t.handles fh with
  | Some h when h.dh_open -> Ok h
  | _ -> Error Errno.EBADF

(* Passthrough read, uncached mode (no FOPEN_KEEP_CACHE): straight into
   the backing VFS through the grant's capability — no FUSE request.  The
   backing file is authoritative, so any dirty pages another (ungranted)
   handle left behind flush first; the only driver-side cost is the copy
   out to userspace (the backing I/O itself is charged inside the grant,
   on the server's proc). *)
let pt_read t h g ~off ~len =
  let ino = h.dh_ino in
  if Page_cache.dirty_count t.pcache ino > 0 then flush_dirty t ino;
  if len <= 0 then Ok ""
  else
    match g.Protocol.g_read ~off ~len with
    | Ok data ->
        pt_incr t (fun c -> c.ptm_reads);
        Clock.consume_int t.clock (Repro_os.Datapath.copy_ns t.cost (String.length data));
        Ok data
    | Error e -> Error e

(* Passthrough page fill: the grant reads the miss run straight out of the
   backing VFS and installs the pages — no FUSE round trip, no server
   worker wakeup.  The backing I/O is charged on the server's proc inside
   the grant; installing into the cache is one memcpy.  Pages already
   cached are never clobbered (they may hold dirty data newer than the
   backing copy — same rule as [fetch_pages]). *)
let pt_fetch_pages t g ~ino ~first ~last =
  let ps = page_size t in
  match g.Protocol.g_read ~off:(first * ps) ~len:((last - first + 1) * ps) with
  | Error e -> Error e
  | Ok data ->
      pt_incr t (fun c -> c.ptm_reads);
      Clock.consume_int t.clock (Cost.mem_cost t.cost (String.length data));
      for p = 0 to last - first do
        if not (Page_cache.mem t.pcache ~ino ~page:(first + p)) then begin
          let b = Bytes.make ps '\000' in
          let src_off = p * ps in
          if src_off < String.length data then begin
            let n = min ps (String.length data - src_off) in
            Bytes.blit_string data src_off b 0 n
          end;
          Hashtbl.replace t.pdata (ino, first + p) b;
          ignore (Page_cache.touch t.pcache ~ino ~page:(first + p) ~dirty:false)
        end
      done;
      Ok ()

let read t fh ~off ~len =
  let* h = handle t fh in
  if not h.dh_readable then Error Errno.EBADF
  else begin
  let ino = h.dh_ino in
  let granted = pt_live t h in
  match granted with
  | Some g when not t.opts.Opts.keep_cache -> pt_read t h g ~off ~len
  | _ ->
  begin
  let* size =
    match Hashtbl.find_opt t.sizes ino with
    | Some s -> Ok s
    | None ->
        let* st = getattr t ino in
        Ok st.Types.st_size
  in
  if off >= size || len <= 0 then Ok ""
  else if not t.opts.Opts.keep_cache then begin
    (* without FOPEN_KEEP_CACHE the cache is invalidated at every open and
       cannot be shared: model as uncached — every read is a round trip *)
    let len = min len (size - off) in
    let chunk = min len t.opts.Opts.max_read in
    let buf = Buffer.create len in
    let rec fetch pos =
      if pos >= len then Ok ()
      else
        let* resp =
          rt t ~splice:t.opts.Opts.splice_read (ctx_of Types.root_cred)
            (Protocol.Read { fh = h.dh_server_fh; off = off + pos; len = min chunk (len - pos) })
        in
        match resp with
        | Protocol.R_data d ->
            Buffer.add_string buf d;
            if d = "" then Ok () else fetch (pos + String.length d)
        | _ -> Error Errno.EIO
    in
    let* () = fetch 0 in
    Clock.consume_int t.clock (Cost.copy_cost t.cost len);
    Ok (Buffer.contents buf)
  end
  else begin
    let len = min len (size - off) in
    let ps = page_size t in
    let first = off / ps and last = (off + len - 1) / ps in
    let last_file_page = (size - 1) / ps in
    (* classify pages, fetch misses in contiguous runs; the kernel's
       readahead extends each miss run to a full window, so sequential
       4 KiB reads become 128 KiB FUSE requests *)
    let readahead_pages = t.opts.Opts.max_read / ps in
    let miss_run_start = ref (-1) in
    let result = ref (Ok ()) in
    let flush_run upto =
      if !miss_run_start >= 0 && !result = Ok () then begin
        let ra_end =
          if t.opts.Opts.async_read then
            min last_file_page (!miss_run_start + readahead_pages - 1)
          else upto
        in
        (result :=
           (* with a live grant the miss run fills from the backing file
              directly; otherwise it's READ round trips with readahead *)
           match granted with
           | Some g -> pt_fetch_pages t g ~ino ~first:!miss_run_start ~last:(max upto ra_end)
           | None ->
               fetch_pages t (ctx_of Types.root_cred) ~server_fh:h.dh_server_fh ~ino
                 ~first:!miss_run_start ~last:(max upto ra_end));
        miss_run_start := -1
      end
      else miss_run_start := -1
    in
    for page = first to last do
      if !result = Ok () then
        if Page_cache.mem t.pcache ~ino ~page then begin
          flush_run (page - 1);
          ignore (Page_cache.touch t.pcache ~ino ~page ~dirty:false);
          Clock.consume_int t.clock (Cost.mem_cost t.cost ps)
        end
        else if !miss_run_start < 0 then miss_run_start := page
    done;
    flush_run last;
    let* () = !result in
    (* assemble from page data *)
    let buf = Bytes.make len '\000' in
    let rec assemble pos =
      if pos < len then begin
        let abs = off + pos in
        let page = abs / ps in
        let poff = abs mod ps in
        let n = min (ps - poff) (len - pos) in
        (match Hashtbl.find_opt t.pdata (ino, page) with
        | Some b -> Bytes.blit b poff buf pos n
        | None -> ());
        assemble (pos + n)
      end
    in
    assemble 0;
    (* copy out to userspace *)
    Clock.consume_int t.clock (Cost.copy_cost t.cost len);
    Ok (Bytes.unsafe_to_string buf)
  end
  end
  end

let write t cred fh ~off data =
  let* h = handle t fh in
  if not h.dh_writable then Error Errno.EBADF
  else begin
    let ino = h.dh_ino in
    let len = String.length data in
    let off = if h.dh_append then size_of t ino else off in
    (* copy in from userspace *)
    Clock.consume_int t.clock (Cost.copy_cost t.cost len);
    let granted = pt_live t h in
    (* The kernel must check security.capability on every write; FUSE
       cannot cache the xattr, so each write() costs a GETXATTR round trip
       (the Apache/IOzone-write overhead of §5.2.2).  With the metadata
       fast path on, a known-absent capability is cached for the attr TTL
       (as the real kernel does with an inode flag), invalidated by any
       SETXATTR/REMOVEXATTR on the inode.  A live grant skips the probe
       entirely: the inode was vetted at open time and any xattr change
       on it revokes the grant server-side. *)
    (match granted with
    | Some _ -> ()
    | None -> (
        match Hashtbl.find_opt t.capneg ino with
        | Some exp when not (expired t exp) ->
            Repro_obs.Metrics.incr t.m_xattr_neg_hits
        | _ -> (
            Hashtbl.remove t.capneg ino;
            match rt t (ctx_of cred) (Protocol.Getxattr (ino, "security.capability")) with
            | Error e
              when t.opts.Opts.attr_timeout_ns > 0
                   && (e = Errno.ENODATA || e = Errno.ENOTSUP) ->
                Hashtbl.replace t.capneg ino (expiry_of t t.opts.Opts.attr_timeout_ns)
            | _ -> ())));
    (* file_remove_privs: the kernel strips setuid/setgid via SETATTR *)
    let* () =
      if cred.Types.cap_fsetid then Ok ()
      else
        let* st = getattr t ino in
        if st.Types.st_mode land (Types.s_isuid lor Types.s_isgid) = 0 then Ok ()
        else
          let sa = { Types.setattr_none with Types.sa_mode = Some (st.Types.st_mode land 0o1777) } in
          let* resp = rt t Protocol.root_ctx (Protocol.Setattr (ino, sa)) in
          match resp with
          | Protocol.R_attr st' ->
              invalidate_attr t ino;
              cache_attr t st';
              Ok ()
          | _ -> Error Errno.EIO
    in
    (* with the writeback cache the kernel owns size and mtime *)
    let update_local_attr ~new_size =
      (match Hashtbl.find_opt t.attrs ino with
      | Some (st, exp) ->
          Hashtbl.replace t.attrs ino
            ( { st with Types.st_size = max st.Types.st_size new_size; st_mtime = Clock.now_ns t.clock },
              exp )
      | None -> ());
      if new_size > size_of t ino then Hashtbl.replace t.sizes ino new_size
    in
    let writeback_mode = t.opts.Opts.writeback && not h.dh_sync in
    (* The grant replaces the synchronous write-through round trip only.
       In writeback mode dirty pages batch in the page cache and flush in
       the background — cheaper than any synchronous backing write — and
       routing some writes around the flusher would reorder them against
       pending dirty data, so writeback-mode writes stay on the cache.
       Re-check liveness: a remove-privs SETATTR above revokes the grant
       on the server (inode mutation), in which case this write rides the
       round-trip path like any other. *)
    match
      (match (writeback_mode, granted) with
      | false, Some _ -> pt_live t h
      | _ -> None)
    with
    | Some g -> (
        (* passthrough write: the payload goes straight to the backing
           file.  Dirty pages from an earlier ungranted writer flush
           first (the backing copy must not go backwards); cached clean
           pages are patched in place, as on the write-through path. *)
        if Page_cache.dirty_count t.pcache ino > 0 then flush_dirty t ino;
        match g.Protocol.g_write (ctx_of cred) ~off data with
        | Ok n ->
            pt_incr t (fun c -> c.ptm_writes);
            if n > 0 then begin
              let ps = page_size t in
              let first = off / ps and last = (off + n - 1) / ps in
              for page = first to last do
                if Hashtbl.mem t.pdata (ino, page) then begin
                  let b = get_page_bytes t ino page in
                  let pstart = page * ps in
                  let s = max off pstart in
                  let e = min (off + n) (pstart + ps) in
                  Bytes.blit_string data (s - off) b (s - pstart) (e - s)
                end
              done
            end;
            update_local_attr ~new_size:(off + n);
            Ok n
        | Error e -> Error e)
    | None ->
    if writeback_mode then begin
      let ps = page_size t in
      let size = size_of t ino in
      let first = off / ps and last = (off + len - 1) / ps in
      (* read-modify-write: boundary pages that partially overlap existing
         data must be fetched first *)
      let need_fetch page =
        (not (Hashtbl.mem t.pdata (ino, page)))
        && page * ps < size
        && ((page = first && off mod ps <> 0)
           || (page = last && (off + len) mod ps <> 0 && off + len < size))
      in
      let* () =
        if need_fetch first || need_fetch last then
          let* () =
            if need_fetch first then
              fetch_pages t (ctx_of cred) ~server_fh:h.dh_server_fh ~ino ~first ~last:first
            else Ok ()
          in
          if last <> first && need_fetch last then
            fetch_pages t (ctx_of cred) ~server_fh:h.dh_server_fh ~ino ~first:last ~last
          else Ok ()
        else Ok ()
      in
      (* modify page data and dirty the cache *)
      let rec store pos =
        if pos < len then begin
          let abs = off + pos in
          let page = abs / ps in
          let poff = abs mod ps in
          let n = min (ps - poff) (len - pos) in
          let b = get_page_bytes t ino page in
          Bytes.blit_string data pos b poff n;
          ignore (Page_cache.touch t.pcache ~ino ~page ~dirty:true);
          store (pos + n)
        end
      in
      store 0;
      update_local_attr ~new_size:(off + len);
      if
        t.opts.Opts.writeback_limit_pages > 0
        && Page_cache.dirty_count t.pcache ino >= t.opts.Opts.writeback_limit_pages
      then flush_dirty t ino
      else if t.opts.Opts.wb_flush_interval_ns > 0 then begin
        (* FUSE's own (long) dirty expiry, also in the background *)
        let now = Clock.now_ns t.clock in
        if Int64.sub now t.last_wb_flush_ns > Int64.of_int t.opts.Opts.wb_flush_interval_ns
        then begin
          t.last_wb_flush_ns <- now;
          t.conn.Conn.background <- true;
          Page_cache.flush_all t.pcache;
          t.conn.Conn.background <- false
        end
      end;
      Ok len
    end
    else begin
      (* write-through: one WRITE request per max_write chunk *)
      let rec send pos =
        if pos >= len then Ok len
        else begin
          let n = min t.opts.Opts.max_write (len - pos) in
          let* resp =
            rt t ~splice:t.opts.Opts.splice_write (ctx_of cred)
              (Protocol.Write
                 { fh = h.dh_server_fh; off = off + pos; data = String.sub data pos n })
          in
          match resp with
          | Protocol.R_written _ ->
              (* keep cached pages coherent *)
              let ps = page_size t in
              let first = (off + pos) / ps and last = (off + pos + n - 1) / ps in
              for page = first to last do
                if Hashtbl.mem t.pdata (ino, page) then begin
                  let b = get_page_bytes t ino page in
                  let pstart = page * ps in
                  let s = max (off + pos) pstart in
                  let e = min (off + pos + n) (pstart + ps) in
                  Bytes.blit_string data (s - off) b (s - pstart) (e - s)
                end
              done;
              update_local_attr ~new_size:(off + pos + n);
              send (pos + n)
          | _ -> Error Errno.EIO
        end
      in
      send 0
    end
  end

let flush t fh =
  let* h = handle t fh in
  flush_dirty t h.dh_ino;
  match rt t Protocol.root_ctx (Protocol.Flush h.dh_server_fh) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let release t fh =
  match Hashtbl.find_opt t.handles fh with
  | None -> ()
  | Some h ->
      if h.dh_open then begin
        h.dh_open <- false;
        (* a grant dies with its handle; the server drops its slot when
           the RELEASE lands (normal end of life, not a revocation) *)
        h.dh_grant <- None;
        Hashtbl.remove t.handles fh;
        if h.dh_writable then begin
          flush_dirty t h.dh_ino;
          (* another writable handle may still reference the ino *)
          let still_writable =
            Hashtbl.fold
              (fun _ o acc -> acc || (o.dh_open && o.dh_ino = h.dh_ino && o.dh_writable))
              t.handles false
          in
          if not still_writable then Hashtbl.remove t.wb_fhs h.dh_ino
        end;
        (* RELEASE is asynchronous in FUSE: a one-way background message *)
        Conn.post t.conn Protocol.root_ctx (Protocol.Release h.dh_server_fh)
      end

let fsync t fh =
  let* h = handle t fh in
  flush_dirty t h.dh_ino;
  match rt t Protocol.root_ctx (Protocol.Fsync h.dh_server_fh) with
  | Ok _ -> Ok ()
  | Error e -> Error e

let fallocate t fh ~off ~len =
  let* h = handle t fh in
  let* resp = rt t Protocol.root_ctx (Protocol.Fallocate { fh = h.dh_server_fh; off; len }) in
  match resp with
  | Protocol.R_ok ->
      if off + len > size_of t h.dh_ino then Hashtbl.replace t.sizes h.dh_ino (off + len);
      invalidate_attr t h.dh_ino;
      Ok ()
  | _ -> Error Errno.EIO

let readdir t cred ino =
  with_dirop t ino @@ fun () ->
  let* () = check_perm t cred ino Types.r_ok in
  if t.opts.Opts.readdirplus then
    (* READDIRPLUS: one batched round trip returns every entry *with* its
       attr, prefilling the dentry/attr caches so the per-entry LOOKUPs a
       directory walk would otherwise issue (§5.2.2's compilebench tax)
       never hit the wire. *)
    match rt t (ctx_of cred) (Protocol.Readdirplus ino) with
    | Ok (Protocol.R_direntplus l) ->
        List.iter
          (fun ((de : Types.dirent), st_opt, entry_valid, attr_valid) ->
            match st_opt with
            | Some st when de.Types.d_name <> "." && de.Types.d_name <> ".." ->
                Repro_obs.Metrics.incr t.m_rdp_entries;
                let child = st.Types.st_ino in
                put_entry t ino de.Types.d_name child
                  ~valid_ns:
                    (if entry_valid > 0 then entry_valid
                     else t.opts.Opts.entry_timeout_ns);
                drop_neg t ino de.Types.d_name;
                cache_attr t st
                  ~valid_ns:
                    (if attr_valid > 0 then attr_valid
                     else t.opts.Opts.attr_timeout_ns);
                bump_nlookup t child
            | _ -> ())
          l;
        Ok (List.map (fun (de, _, _, _) -> de) l)
    | Ok _ -> Error Errno.EIO
    | Error e -> Error e
  else
    match rt t (ctx_of cred) (Protocol.Readdir ino) with
    | Ok (Protocol.R_dirents l) -> Ok l
    | Ok _ -> Error Errno.EIO
    | Error e -> Error e

(* default_permissions does not cover xattrs: the driver gates them the
   way the VFS does (trusted.* needs privilege; others need ownership). *)
let xattr_change_allowed t cred ino name =
  let* st = getattr t ino in
  let is_trusted = String.length name >= 7 && String.sub name 0 7 = "trusted" in
  if is_trusted then
    if cred.Types.cap_dac_override then Ok () else Error Errno.EPERM
  else if cred.Types.cap_dac_override || cred.Types.uid = st.Types.st_uid then Ok ()
  else Error Errno.EPERM

let setxattr t cred ino name value =
  let* () = xattr_change_allowed t cred ino name in
  Hashtbl.remove t.capneg ino;
  match rt t (ctx_of cred) (Protocol.Setxattr (ino, name, value)) with
  | Ok Protocol.R_ok -> Ok ()
  | Ok _ -> Error Errno.EIO
  | Error e -> Error e

let getxattr t ino name =
  match rt t Protocol.root_ctx (Protocol.Getxattr (ino, name)) with
  | Ok (Protocol.R_xattr v) -> Ok v
  | Ok _ -> Error Errno.EIO
  | Error e -> Error e

let listxattr t ino =
  match rt t Protocol.root_ctx (Protocol.Listxattr ino) with
  | Ok (Protocol.R_xattr_names l) -> Ok l
  | Ok _ -> Error Errno.EIO
  | Error e -> Error e

let removexattr t cred ino name =
  let* () = xattr_change_allowed t cred ino name in
  Hashtbl.remove t.capneg ino;
  match rt t (ctx_of cred) (Protocol.Removexattr (ino, name)) with
  | Ok Protocol.R_ok -> Ok ()
  | Ok _ -> Error Errno.EIO
  | Error e -> Error e

let statfs t () =
  match rt t Protocol.root_ctx Protocol.Statfs with
  | Ok (Protocol.R_statfs s) -> s
  | _ -> { Types.f_fsname = "cntrfs"; f_bsize = 4096; f_blocks = 0; f_bfree = 0; f_files = 0 }

(* --- supervised-session recovery --------------------------------------- *)

(* The driver's live inode map: (ino, path relative to the server root,
   nlookup) for every inode reachable through the dentry cache from the
   root (ino 1).  After a server crash this is what survives — the mount,
   the caches, the handles — and what a relaunched server must re-learn so
   the driver's ino space stays valid (Attach.recover).  Depth-first,
   children in name order, so the replay is deterministic. *)
let ino_paths t =
  let children = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (parent, name) (ino, _expiry) ->
      Hashtbl.replace children parent
        ((name, ino) :: Option.value ~default:[] (Hashtbl.find_opt children parent)))
    t.entries;
  let acc = ref [] in
  let visited = Hashtbl.create 64 in
  let rec walk ino path =
    if not (Hashtbl.mem visited ino) then begin
      Hashtbl.replace visited ino ();
      if ino <> 1 then begin
        let n = Option.value ~default:1 (Hashtbl.find_opt t.nlookup ino) in
        acc := (ino, path, n) :: !acc
      end;
      match Hashtbl.find_opt children ino with
      | None -> ()
      | Some kids ->
          List.iter
            (fun (name, child) ->
              walk child (if path = "" then name else path ^ "/" ^ name))
            (List.sort compare kids)
    end
  in
  walk 1 "";
  List.rev !acc

(* The CntrFS server was relaunched (same mount, fresh process): its file
   handles died with the old process.  Reopen every open driver handle
   against the new server and rebuild the writeback fh map; handles whose
   inode did not survive (unlinked-but-open files) are marked dead and
   fail with EBADF from now on. *)
let on_server_restart t =
  Hashtbl.reset t.wb_fhs;
  (* live grants died with the old server's backing fds: revoke them all
     (driver-side — the crashed server never got to flip the flags) and
     reopen without asking for new ones, so post-recovery I/O is plain
     round trips; a fresh open may earn a grant again *)
  Hashtbl.iter (fun _ h -> pt_revoke_local t h) t.handles;
  let hs = Hashtbl.fold (fun fh h acc -> (fh, h) :: acc) t.handles [] in
  List.iter
    (fun (_, h) ->
      if h.dh_open then begin
        let flags =
          (if h.dh_readable && h.dh_writable then [ Types.O_RDWR ]
           else if h.dh_writable then [ Types.O_WRONLY ]
           else [ Types.O_RDONLY ])
          @ (if h.dh_append then [ Types.O_APPEND ] else [])
          @ if h.dh_sync then [ Types.O_SYNC ] else []
        in
        match rt t Protocol.root_ctx (Protocol.Open { ino = h.dh_ino; flags; want_pt = false }) with
        | Ok (Protocol.R_open server_fh) ->
            h.dh_server_fh <- server_fh;
            if h.dh_writable then Hashtbl.replace t.wb_fhs h.dh_ino server_fh
        | _ -> h.dh_open <- false
      end)
    (List.sort (fun (a, _) (b, _) -> compare a b) hs)

let ops t : Fsops.t = {
  fs_name = "cntrfs";
  fs_id = t.fs_id;
  root = 1;
  lookup = lookup t;
  forget = queue_forget t;
  getattr = driver_getattr t;
  setattr = setattr t;
  readlink = readlink t;
  mknod = mknod t;
  mkdir = mkdir t;
  unlink = unlink t;
  rmdir = rmdir t;
  symlink = symlink t;
  rename = rename t;
  link = link t;
  open_ = open_ t;
  create = create_file t;
  read = read t;
  write = write t;
  flush = flush t;
  release = release t;
  fsync = fsync t;
  fallocate = fallocate t;
  readdir = readdir t;
  setxattr = setxattr t;
  getxattr = getxattr t;
  listxattr = listxattr t;
  removexattr = removexattr t;
  statfs = statfs t;
  (* CntrFS inodes are not persistent, hence not exportable — generic/426. *)
  export_handle = (fun _ -> Error Errno.ENOTSUP);
  open_by_handle = (fun _ -> Error Errno.ENOTSUP);
  supports_mmap = (fun _ -> true);
  supports_direct_io = false;
}
