(* The forwarding plane (§3.2.4): sockets and the attach TTY ride an
   event-driven data path instead of ad-hoc turn-based relays.

   Structure: one reactor fiber per plane blocks in epoll_wait_edge and
   parks on its scheduler between wakeups — the watched fds' waitqueues
   fire the epoll notify hook, which pokes the reactor.  Each connection
   runs two per-direction pump fibers moving bytes src -> staging pipe ->
   dst with splice(2) (or a userspace read/write relay in [Copy] mode, the
   baseline e9 compares against).  A pump that drains to EAGAIN re-arms
   its fds' edge state (EPOLL_CTL_MOD idiom) and parks; the reactor kicks
   it when readiness returns.  The staging pipe's capacity bounds
   in-flight bytes per direction — that is the backpressure ceiling, and
   stalls against it are counted.

   Everything runs on the shared virtual clock; event order is
   (time, sequence)-deterministic, so two identical runs move identical
   bytes at identical timestamps. *)

open Repro_util
open Repro_os
module Sched = Repro_sched.Sched
module Metrics = Repro_obs.Metrics
module Trace = Repro_obs.Trace
module Fault = Repro_fault.Fault

type mode = Splice | Copy

(* How much one pump pass asks the kernel to move per call, and how many
   in-flight bytes a pump stages by default: both come from the shared
   Datapath model, so the proxy's notion of a transfer unit is the same
   one the FUSE plane splices by. *)
let chunk = Datapath.chunk
let default_buffer = Datapath.default_buffer

(* One direction of a connection: src fd -> staging pipe -> dst fd. *)
type dir = {
  d_label : string;
  d_src : int;
  d_dst : int;
  d_buf : Pipe.t; (* staging: bounds in-flight bytes for this direction *)
  d_buf_r : int;
  d_buf_w : int;
  mutable d_carry : string; (* Copy mode: bytes read but not yet written *)
  d_cond : Sched.cond;
  mutable d_dirty : bool; (* kicked since the pump last looked *)
  mutable d_src_eof : bool;
  mutable d_buf_closed : bool; (* staging writer closed (EOF propagating) *)
  mutable d_done : bool;
  d_bytes : Metrics.counter;
  d_extra : Metrics.counter option; (* per-forwarder byte accounting *)
}

type conn = {
  cn_label : string;
  cn_dirs : dir array; (* [| c2b; b2c |] *)
  cn_endpoint_fds : int list; (* unique endpoint fds, for teardown *)
  mutable cn_closed : bool;
}

type stream = conn

(* Per-fd reactor bookkeeping: merged epoll interest plus the pump kicks
   readiness transitions should fire. *)
type kick = { k_on_in : bool; k_on_out : bool; k_fn : unit -> unit }
type watch = { mutable w_interest : Epoll.interest; mutable w_kicks : kick list }

type forwarder = {
  fw_path : string;
  fw_label : string;
  fw_bytes : (Metrics.counter * Metrics.counter) option; (* (c2b, b2c) *)
  fw_backend_path : string;
  fw_back_proc : Proc.t;
  fw_lfd : int; (* listener fd, moved into the plane's proc *)
  fw_cond : Sched.cond;
  mutable fw_dirty : bool;
  mutable fw_closed : bool;
  mutable fw_proxied : int;
}

type t = {
  px_kernel : Kernel.t;
  px_proc : Proc.t;
  px_sched : Sched.t;
  px_mode : mode;
  px_fault : Fault.t option;
  px_buffer : int;
  px_epfd : int;
  px_cond : Sched.cond; (* reactor parks here *)
  mutable px_dirty : bool;
  mutable px_closed : bool;
  px_watch : (int, watch) Hashtbl.t;
  mutable px_conns : conn list;
  mutable px_forwarders : forwarder list;
  mutable px_error : exn option;
  mutable px_active : int;
  m_active : Metrics.gauge;
  m_total : Metrics.counter;
  m_refused : Metrics.counter;
  m_c2b : Metrics.counter;
  m_b2c : Metrics.counter;
  m_unflushed : Metrics.counter;
  m_splice : Metrics.counter;
  m_stalls : Metrics.counter;
  m_wakeups : Metrics.counter;
  m_datapath : Metrics.counter;
}

let mode t = t.px_mode
let proc t = t.px_proc
let sched t = t.px_sched
let connection_count fw = fw.fw_proxied
let stream_closed cn = cn.cn_closed

(* A fiber that dies takes the whole plane's credibility with it: remember
   the first exception and re-raise it at the next drain. *)
let guard t f =
  try f () with e -> if t.px_error = None then t.px_error <- Some e

(* Wake the reactor.  The dirty flag is set before the signal so a kick
   landing while the reactor is mid-cycle is not lost (Mesa-style). *)
let poke t =
  t.px_dirty <- true;
  if not t.px_closed then ignore (Sched.signal t.px_sched t.px_cond)

let kick_dir t d =
  d.d_dirty <- true;
  ignore (Sched.signal t.px_sched d.d_cond)

(* --- reactor ------------------------------------------------------------ *)

let dispatch t (ev : Epoll.event) =
  match Hashtbl.find_opt t.px_watch ev.Epoll.ev_fd with
  | None -> ()
  | Some w ->
      List.iter
        (fun k ->
          if (ev.Epoll.ev_in && k.k_on_in) || (ev.Epoll.ev_out && k.k_on_out) then k.k_fn ())
        w.w_kicks

let rec reactor t =
  if t.px_closed then ()
  else if t.px_dirty then begin
    t.px_dirty <- false;
    Metrics.incr t.m_wakeups;
    (match Kernel.epoll_wait_edge t.px_kernel t.px_proc t.px_epfd with
    | Ok events -> List.iter (dispatch t) events
    | Error _ -> ());
    Sched.yield t.px_sched;
    reactor t
  end
  else begin
    Sched.park t.px_sched t.px_cond;
    reactor t
  end

let register_kick t fd ~on_in ~on_out fn =
  let w =
    match Hashtbl.find_opt t.px_watch fd with
    | Some w -> w
    | None ->
        let w = { w_interest = { Epoll.want_in = false; want_out = false }; w_kicks = [] } in
        Hashtbl.replace t.px_watch fd w;
        w
  in
  w.w_interest <-
    {
      Epoll.want_in = w.w_interest.Epoll.want_in || on_in;
      want_out = w.w_interest.Epoll.want_out || on_out;
    };
  w.w_kicks <- w.w_kicks @ [ { k_on_in = on_in; k_on_out = on_out; k_fn = fn } ];
  Errno.ok_exn
    (Kernel.epoll_add t.px_kernel t.px_proc ~epfd:t.px_epfd ~fd ~interest:w.w_interest)

(* Reset the fd's edge state before parking on it: the ET contract only
   reports false->true transitions, and our wait_edge samples rather than
   journals, so a flap between two waits would otherwise be lost. *)
let rearm t fd =
  if Hashtbl.mem t.px_watch fd then
    ignore (Kernel.epoll_rearm t.px_kernel t.px_proc ~epfd:t.px_epfd ~fd)

let unwatch t fd =
  if Hashtbl.mem t.px_watch fd then begin
    Hashtbl.remove t.px_watch fd;
    ignore (Kernel.epoll_del t.px_kernel t.px_proc ~epfd:t.px_epfd ~fd)
  end

(* Close an fd if the plane still owns it (fd numbers are never reused, so
   a vanished entry means someone already closed it). *)
let close_fd t fd =
  if Proc.fd t.px_proc fd <> None then ignore (Kernel.close t.px_kernel t.px_proc fd)

(* --- connection teardown ------------------------------------------------ *)

let close_buf_writer t d =
  if not d.d_buf_closed then begin
    d.d_buf_closed <- true;
    close_fd t d.d_buf_w
  end

let conn_retired t =
  t.px_active <- t.px_active - 1;
  Metrics.set t.m_active (float_of_int t.px_active)

(* Half-close the destination once this direction has delivered everything:
   sockets shut down their send side (the peer's read side stays usable),
   pipe writers just close. *)
let half_close_dst t cn d =
  (match Proc.fd t.px_proc d.d_dst with
  | Some (Proc.Sock_conn _) -> ignore (Kernel.shutdown_write t.px_kernel t.px_proc d.d_dst)
  | Some _ -> close_fd t d.d_dst
  | None -> ());
  d.d_done <- true;
  if Array.for_all (fun d -> d.d_done) cn.cn_dirs && not cn.cn_closed then begin
    cn.cn_closed <- true;
    List.iter
      (fun fd ->
        unwatch t fd;
        close_fd t fd)
      cn.cn_endpoint_fds;
    Array.iter
      (fun d ->
        close_buf_writer t d;
        close_fd t d.d_buf_r)
      cn.cn_dirs;
    conn_retired t
  end

(* Abortive teardown (injected crash, peer reset, plane close): count every
   in-flight byte the connection accepted but never delivered — source
   queue, staging pipe, carry — RST socket ends so nobody waits on a byte
   that will not come, and release everything. *)
let fd_pending t fd =
  match Proc.fd t.px_proc fd with
  | Some (Proc.Pipe_r p) -> Pipe.available p
  | Some (Proc.Sock_conn ep) -> Sock.available ep
  | _ -> 0

let abort_conn t cn =
  if not cn.cn_closed then begin
    cn.cn_closed <- true;
    Array.iter
      (fun d ->
        let stranded =
          fd_pending t d.d_src + Pipe.available d.d_buf + String.length d.d_carry
        in
        if stranded > 0 then Metrics.add t.m_unflushed stranded;
        d.d_carry <- "";
        d.d_done <- true)
      cn.cn_dirs;
    List.iter
      (fun fd ->
        unwatch t fd;
        match Proc.fd t.px_proc fd with
        | Some (Proc.Sock_conn _) -> ignore (Kernel.socket_abort t.px_kernel t.px_proc fd)
        | Some _ -> close_fd t fd
        | None -> ())
      cn.cn_endpoint_fds;
    Array.iter
      (fun d ->
        close_buf_writer t d;
        close_fd t d.d_buf_r)
      cn.cn_dirs;
    conn_retired t;
    Array.iter (fun d -> ignore (Sched.signal t.px_sched d.d_cond)) cn.cn_dirs
  end

(* --- fault consultation ------------------------------------------------- *)

let fd_readable t fd =
  match Proc.fd t.px_proc fd with
  | Some (Proc.Pipe_r p) -> Pipe.readable p
  | Some (Proc.Sock_conn ep) -> Sock.readable ep
  | _ -> false

let dir_has_work t d =
  (not d.d_src_eof) && fd_readable t d.d_src
  || Pipe.available d.d_buf > 0
  || String.length d.d_carry > 0

(* Consult the [proxy data] site once per pass that has bytes to move.
   Delay/hang stall this direction on the virtual clock; anything else
   kills the connection abortively — a bounded ECONNRESET, never a hang. *)
let fault_data t cn d =
  match t.px_fault with
  | None -> ()
  | Some f ->
      if dir_has_work t d && not cn.cn_closed then begin
        match Fault.proxy_action f ~op:"data" with
        | None -> ()
        | Some (Fault.Delay ns) | Some (Fault.Hang ns) -> Sched.sleep_ns t.px_sched ns
        | Some _ -> abort_conn t cn
      end

(* --- pumps -------------------------------------------------------------- *)

(* Splice pass: drain src into the staging pipe, then the staging pipe into
   dst, each until EAGAIN.  Kernel.splice clamps its pull to the sink's
   free room, so nothing read is ever stranded mid-flight. *)
let splice_pass t cn d =
  let progress = ref false in
  let src_finished () =
    if not d.d_src_eof then begin
      d.d_src_eof <- true;
      close_buf_writer t d;
      progress := true
    end
  in
  let moved = ref true in
  (* Doorbell discipline: splice only when the plane already knows the
     call can make headway (source readable — which includes EOF and RST,
     both of which a call must observe — and staging room / staged bytes).
     A blind probe costs a full virtual syscall+setup; an event-driven
     relay earns its keep by not paying that on every wakeup. *)
  let rec pull () =
    if
      (not d.d_src_eof) && (not cn.cn_closed)
      && Pipe.room d.d_buf > 0
      && fd_readable t d.d_src
    then
      match Kernel.splice t.px_kernel t.px_proc ~fd_in:d.d_src ~fd_out:d.d_buf_w ~len:chunk with
      | Ok 0 -> src_finished ()
      | Ok _ ->
          Metrics.incr t.m_splice;
          progress := true;
          moved := true;
          pull ()
      | Error Errno.EAGAIN -> ()
      | Error Errno.ECONNRESET -> abort_conn t cn
      | Error _ -> src_finished ()
  in
  let rec push () =
    if
      (not d.d_done) && (not cn.cn_closed)
      && (Pipe.available d.d_buf > 0 || d.d_buf_closed)
    then
      match Kernel.splice t.px_kernel t.px_proc ~fd_in:d.d_buf_r ~fd_out:d.d_dst ~len:chunk with
      | Ok 0 ->
          (* staging EOF: src side finished and fully drained *)
          progress := true;
          half_close_dst t cn d
      | Ok n ->
          Metrics.incr t.m_splice;
          Metrics.add d.d_bytes n;
          (match d.d_extra with Some c -> Metrics.add c n | None -> ());
          progress := true;
          moved := true;
          push ()
      | Error Errno.EAGAIN -> ()
      | Error (Errno.EPIPE | Errno.ECONNRESET) -> abort_conn t cn
      | Error Errno.EBADF -> d.d_done <- true
      | Error _ -> abort_conn t cn
  in
  (* Cycle until quiescent: a push that frees staging room can unblock
     another pull.  The readiness gates make an idle cycle free, so the
     pass always leaves the direction with nothing more it could do. *)
  while !moved && (not cn.cn_closed) && not d.d_done do
    moved := false;
    pull ();
    push ()
  done;
  !progress

(* Copy pass: the userspace relay baseline.  Bytes cross the boundary
   twice (read + write), each leg charged per KiB.  A short write keeps
   its remainder in d_carry — bytes read out of the source are never
   dropped; the carry also serves as this mode's in-flight bound. *)
let copy_pass t cn d =
  let clock = t.px_kernel.Kernel.clock and cost = t.px_kernel.Kernel.cost in
  let progress = ref false in
  let rec step () =
    if cn.cn_closed || d.d_done then ()
    else if String.length d.d_carry > 0 then begin
      match Kernel.write t.px_kernel t.px_proc d.d_dst d.d_carry with
      | Ok n when n > 0 ->
          Clock.consume_int clock (Datapath.copy_ns cost n);
          Metrics.add d.d_bytes n;
          (match d.d_extra with Some c -> Metrics.add c n | None -> ());
          d.d_carry <- String.sub d.d_carry n (String.length d.d_carry - n);
          progress := true;
          step ()
      | Ok _ | Error Errno.EAGAIN -> ()
      | Error (Errno.EPIPE | Errno.ECONNRESET) -> abort_conn t cn
      | Error Errno.EBADF -> d.d_done <- true
      | Error _ -> abort_conn t cn
    end
    else if d.d_src_eof then begin
      progress := true;
      half_close_dst t cn d
    end
    else if not (fd_readable t d.d_src) then
      (* nothing to read: skip the probe (same doorbell discipline as the
         splice pass; readable covers EOF and RST, so both still surface) *)
      ()
    else begin
      match Kernel.read t.px_kernel t.px_proc d.d_src ~len:(min chunk t.px_buffer) with
      | Ok "" ->
          d.d_src_eof <- true;
          progress := true;
          step ()
      | Ok s ->
          Clock.consume_int clock (Datapath.copy_ns cost (String.length s));
          d.d_carry <- s;
          progress := true;
          step ()
      | Error Errno.EAGAIN -> ()
      | Error Errno.ECONNRESET -> abort_conn t cn
      | Error Errno.EBADF -> d.d_done <- true
      | Error _ ->
          d.d_src_eof <- true;
          progress := true;
          step ()
    end
  in
  step ();
  !progress

(* Is this direction parked against its in-flight ceiling?  (Source still
   has more, but the staging pipe / carry cannot take it.) *)
let backpressured t d =
  match t.px_mode with
  | Splice -> (not d.d_src_eof) && Pipe.room d.d_buf = 0
  | Copy -> String.length d.d_carry > 0

let rec pump_loop t cn d =
  if t.px_closed || cn.cn_closed || d.d_done then ()
  else begin
    fault_data t cn d;
    if t.px_closed || cn.cn_closed || d.d_done then ()
    else
      (* Meter the virtual time one pass consumes.  Fibers overlap on the
         clock, so this — not wall virtual time — is the plane's own cost;
         a pass has no suspension point, making the delta well defined. *)
      let t0 = Clock.now_ns t.px_kernel.Kernel.clock in
      ignore
        (match t.px_mode with Splice -> splice_pass t cn d | Copy -> copy_pass t cn d);
      let spent = Int64.sub (Clock.now_ns t.px_kernel.Kernel.clock) t0 in
      if Int64.compare spent 0L > 0 then
        Metrics.add t.m_datapath (Int64.to_int spent);
      if t.px_closed || cn.cn_closed || d.d_done then ()
      else if d.d_dirty then begin
        (* a kick landed mid-pass: give the reactor a turn, then re-pass
           (the readiness gates make a spurious re-pass free) *)
        d.d_dirty <- false;
        Sched.yield t.px_sched;
        pump_loop t cn d
      end
      else begin
        if backpressured t d then Metrics.incr t.m_stalls;
        (* Re-arm only the edges this direction is actually blocked on.
           Each such fd is not-ready right now (that is why the pass
           stalled), so the rearm cannot re-report it spuriously — while a
           blanket rearm of a still-writable destination would kick the
           pump into a futile pass on every reactor cycle. *)
        if Pipe.available d.d_buf > 0 || String.length d.d_carry > 0 then rearm t d.d_dst;
        if
          (not d.d_src_eof)
          &&
          match t.px_mode with
          | Splice -> Pipe.room d.d_buf > 0
          | Copy -> String.length d.d_carry = 0
        then rearm t d.d_src;
        (* No effect points since the dirty check above, so parking here
           cannot miss a kick. *)
        Sched.park t.px_sched d.d_cond;
        pump_loop t cn d
      end
  end

(* --- wiring up a connection --------------------------------------------- *)

let add_conn t ?(extra = (None, None)) ~label ~a_rfd ~a_wfd ~b_rfd ~b_wfd () =
  let mk d_label src dst counter extra =
    let buf = Pipe.create ~capacity:t.px_buffer () in
    let buf_r = Proc.alloc_fd t.px_proc (Proc.Pipe_r buf) in
    let buf_w = Proc.alloc_fd t.px_proc (Proc.Pipe_w buf) in
    {
      d_label;
      d_src = src;
      d_dst = dst;
      d_buf = buf;
      d_buf_r = buf_r;
      d_buf_w = buf_w;
      d_carry = "";
      d_cond = Sched.cond ();
      d_dirty = false;
      d_src_eof = false;
      d_buf_closed = false;
      d_done = false;
      d_bytes = counter;
      d_extra = extra;
    }
  in
  let extra_c2b, extra_b2c = extra in
  let c2b = mk "c2b" a_rfd b_wfd t.m_c2b extra_c2b in
  let b2c = mk "b2c" b_rfd a_wfd t.m_b2c extra_b2c in
  let cn =
    {
      cn_label = label;
      cn_dirs = [| c2b; b2c |];
      cn_endpoint_fds = List.sort_uniq compare [ a_rfd; a_wfd; b_rfd; b_wfd ];
      cn_closed = false;
    }
  in
  t.px_conns <- cn :: t.px_conns;
  t.px_active <- t.px_active + 1;
  Metrics.set t.m_active (float_of_int t.px_active);
  register_kick t a_rfd ~on_in:true ~on_out:false (fun () -> kick_dir t c2b);
  register_kick t b_wfd ~on_in:false ~on_out:true (fun () -> kick_dir t c2b);
  register_kick t b_rfd ~on_in:true ~on_out:false (fun () -> kick_dir t b2c);
  register_kick t a_wfd ~on_in:false ~on_out:true (fun () -> kick_dir t b2c);
  ignore (Sched.spawn t.px_sched (fun () -> guard t (fun () -> pump_loop t cn c2b)));
  ignore (Sched.spawn t.px_sched (fun () -> guard t (fun () -> pump_loop t cn b2c)));
  cn

let add_stream t ?(label = "stream") ~a_rfd ~a_wfd ~b_rfd ~b_wfd () =
  add_conn t ~label ~a_rfd ~a_wfd ~b_rfd ~b_wfd ()

(* --- forwarders --------------------------------------------------------- *)

let refuse t fw ~client_fd ~why =
  Metrics.incr t.m_refused;
  let now = Clock.now_ns t.px_kernel.Kernel.clock in
  Trace.record
    (Repro_obs.Obs.tracer t.px_kernel.Kernel.obs)
    ~name:"proxy.refused" ~begin_ns:now ~end_ns:now
    ~attrs:[ ("path", fw.fw_path); ("reason", why) ]
    ();
  (match Proc.fd t.px_proc client_fd with
  | Some (Proc.Sock_conn _) -> ignore (Kernel.socket_abort t.px_kernel t.px_proc client_fd)
  | Some _ -> close_fd t client_fd
  | None -> ())

(* One accepted client: consult the [proxy accept] fault site, dial the
   backend as the host-side process, move both fds into the plane and
   start the pumps.  A backend that will not connect refuses the client
   loudly (counter + trace), never silently. *)
let accept_one t fw client_fd =
  let faulted =
    match t.px_fault with
    | None -> false
    | Some f -> (
        match Fault.proxy_action f ~op:"accept" with
        | None -> false
        | Some (Fault.Delay ns) | Some (Fault.Hang ns) ->
            Sched.sleep_ns t.px_sched ns;
            false
        | Some _ ->
            refuse t fw ~client_fd ~why:"fault";
            true)
  in
  if not faulted then
    match Kernel.socket_connect t.px_kernel fw.fw_back_proc fw.fw_backend_path with
    | Error e -> refuse t fw ~client_fd ~why:(Errno.to_string e)
    | Ok backend_fd ->
        let bfd =
          Errno.ok_exn (Kernel.pass_fd t.px_kernel ~src:fw.fw_back_proc ~dst:t.px_proc backend_fd)
        in
        let extra =
          match fw.fw_bytes with
          | Some (c2b, b2c) -> (Some c2b, Some b2c)
          | None -> (None, None)
        in
        ignore
          (add_conn t ~extra ~label:fw.fw_label ~a_rfd:client_fd ~a_wfd:client_fd ~b_rfd:bfd
             ~b_wfd:bfd ());
        Metrics.incr t.m_total;
        fw.fw_proxied <- fw.fw_proxied + 1

let accept_pass t fw =
  if fw.fw_closed || t.px_closed then false
  else
    match Kernel.socket_accept t.px_kernel t.px_proc fw.fw_lfd with
    | Error _ -> false
    | Ok client_fd ->
        accept_one t fw client_fd;
        true

let rec accept_loop t fw =
  if t.px_closed || fw.fw_closed then ()
  else if accept_pass t fw then begin
    Sched.yield t.px_sched;
    accept_loop t fw
  end
  else if fw.fw_dirty then begin
    fw.fw_dirty <- false;
    accept_loop t fw
  end
  else begin
    rearm t fw.fw_lfd;
    Sched.park t.px_sched fw.fw_cond;
    accept_loop t fw
  end

let forward t ~front_proc ~back_proc ?backend_path ?label path =
  let backend_path = Option.value backend_path ~default:path in
  match Kernel.socket_listen t.px_kernel front_proc path with
  | Error e -> Error e
  | Ok lfd_front ->
      let lfd = Errno.ok_exn (Kernel.pass_fd t.px_kernel ~src:front_proc ~dst:t.px_proc lfd_front) in
      let fw_bytes =
        (* labelled forwarders get their own byte accounting, e.g. the RPC
           carriage under [proxy.fwd.rpc.bytes.*] *)
        match label with
        | None -> None
        | Some l ->
            let m = Repro_obs.Obs.metrics t.px_kernel.Kernel.obs in
            Some
              ( Metrics.counter m (Printf.sprintf "proxy.fwd.%s.bytes.c2b" l),
                Metrics.counter m (Printf.sprintf "proxy.fwd.%s.bytes.b2c" l) )
      in
      let fw =
        {
          fw_path = path;
          fw_label = Option.value label ~default:path;
          fw_bytes;
          fw_backend_path = backend_path;
          fw_back_proc = back_proc;
          fw_lfd = lfd;
          fw_cond = Sched.cond ();
          fw_dirty = false;
          fw_closed = false;
          fw_proxied = 0;
        }
      in
      t.px_forwarders <- fw :: t.px_forwarders;
      register_kick t lfd ~on_in:true ~on_out:false (fun () ->
          fw.fw_dirty <- true;
          ignore (Sched.signal t.px_sched fw.fw_cond));
      ignore (Sched.spawn t.px_sched (fun () -> guard t (fun () -> accept_loop t fw)));
      Ok fw

let close_forwarder t fw =
  if not fw.fw_closed then begin
    fw.fw_closed <- true;
    unwatch t fw.fw_lfd;
    close_fd t fw.fw_lfd;
    ignore (Sched.signal t.px_sched fw.fw_cond)
  end

(* --- plane lifecycle ---------------------------------------------------- *)

let raise_error t = match t.px_error with Some e -> raise e | None -> ()

(* Quiescence is the scheduler's event queue draining: parked fibers are
   not pending events, so "nothing runnable" means every pump has hit
   EAGAIN and parked — no turn budget, no fixed cap. *)
let drain t =
  raise_error t;
  if not (Sched.in_task ()) then
    Sched.drive_main t.px_sched (fun () -> Sched.pending_events t.px_sched = 0);
  raise_error t

let close t =
  if not t.px_closed then begin
    drain t;
    List.iter (fun fw -> close_forwarder t fw) t.px_forwarders;
    List.iter (fun cn -> abort_conn t cn) t.px_conns;
    t.px_closed <- true;
    ignore (Sched.broadcast t.px_sched t.px_cond);
    List.iter
      (fun cn -> Array.iter (fun d -> ignore (Sched.signal t.px_sched d.d_cond)) cn.cn_dirs)
      t.px_conns;
    (* Let the reactor, pumps and acceptors observe the flag and unwind. *)
    if not (Sched.in_task ()) then
      Sched.drive_main t.px_sched (fun () -> Sched.pending_events t.px_sched = 0);
    close_fd t t.px_epfd;
    raise_error t
  end

let create ?(mode = Splice) ?(buffer = default_buffer) ?sched ?fault ~kernel ~proc () =
  let sched =
    match sched with Some s -> s | None -> Sched.create ~clock:kernel.Kernel.clock
  in
  let metrics = Repro_obs.Obs.metrics kernel.Kernel.obs in
  let epfd = Kernel.epoll_create kernel proc in
  let t =
    {
      px_kernel = kernel;
      px_proc = proc;
      px_sched = sched;
      px_mode = mode;
      px_fault = fault;
      px_buffer = max 1 buffer;
      px_epfd = epfd;
      px_cond = Sched.cond ();
      px_dirty = false;
      px_closed = false;
      px_watch = Hashtbl.create 16;
      px_conns = [];
      px_forwarders = [];
      px_error = None;
      px_active = 0;
      m_active = Metrics.gauge metrics "proxy.connections.active";
      m_total = Metrics.counter metrics "proxy.connections.total";
      m_refused = Metrics.counter metrics "proxy.connections.refused";
      m_c2b = Metrics.counter metrics "proxy.bytes.c2b";
      m_b2c = Metrics.counter metrics "proxy.bytes.b2c";
      m_unflushed = Metrics.counter metrics "proxy.bytes.unflushed";
      m_splice = Metrics.counter metrics "proxy.splice.calls";
      m_stalls = Metrics.counter metrics "proxy.buffer.stalls";
      m_wakeups = Metrics.counter metrics "proxy.loop.wakeups";
      m_datapath = Metrics.counter metrics "proxy.datapath.ns";
    }
  in
  Errno.ok_exn (Kernel.epoll_set_notify kernel proc ~epfd (Some (fun () -> poke t)));
  ignore (Sched.spawn sched (fun () -> guard t (fun () -> reactor t)));
  t
