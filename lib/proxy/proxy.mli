(** The forwarding plane (§3.2.4): an event-driven data path carrying
    Unix-socket connections and the attach pseudo-TTY stream between the
    container view and the host.

    One reactor fiber per plane parks on its scheduler and blocks in
    {!Repro_os.Kernel.epoll_wait_edge} (edge-triggered — no busy polling);
    watched fds' waitqueues wake it through the epoll notify hook.  Each
    proxied connection runs two per-direction pump fibers that splice bytes
    through a bounded in-kernel staging pipe ({!Splice}), or copy them
    through userspace ({!Copy}, the baseline the bench compares against).
    Backpressure is EAGAIN-driven: a pump that cannot make progress re-arms
    its edge state and parks until the reactor kicks it.  EOF and
    half-close propagate per direction independently: draining a source to
    EOF shuts down only the paired write side, so an interactive peer can
    keep talking the other way.

    All plane fds live in the plane's own process; connection endpoints
    accepted or dialed in other processes are moved in with
    {!Repro_os.Kernel.pass_fd} (SCM_RIGHTS style).

    Metrics (registry of the kernel's obs handle):
    [proxy.connections.active] (gauge), [proxy.connections.total],
    [proxy.connections.refused], [proxy.bytes.c2b], [proxy.bytes.b2c],
    [proxy.bytes.unflushed], [proxy.splice.calls], [proxy.buffer.stalls],
    [proxy.loop.wakeups].

    Fault plans address the plane through the [proxy] site:
    [proxy accept ...] gates new connections, [proxy data ...] in-flight
    transfers.  Delay/hang stall the event on the virtual clock; crash,
    drop and fail refuse the connection or abort it — both ends observe a
    bounded [ECONNRESET], never a hang. *)

open Repro_util
open Repro_os

(** [Splice] moves bytes with splice(2) through the staging pipe — per-page
    remap cost, no userspace copy.  [Copy] is the read/write relay with
    per-KiB copy charges on both sides. *)
type mode = Splice | Copy

type t

(** [create ~kernel ~proc ()] builds a plane whose fds live in [proc] and
    spawns its reactor.  [sched] defaults to a fresh scheduler on the
    kernel's clock, keeping event ordering independent of other
    subsystems' schedulers; [buffer] bounds in-flight bytes per direction
    (default 64 KiB); [fault] attaches an armed plan consulted at the
    [proxy] site. *)
val create :
  ?mode:mode ->
  ?buffer:int ->
  ?sched:Repro_sched.Sched.t ->
  ?fault:Repro_fault.Fault.t ->
  kernel:Kernel.t ->
  proc:Proc.t ->
  unit ->
  t

val mode : t -> mode
val proc : t -> Proc.t
val sched : t -> Repro_sched.Sched.t

(** A socket forwarder: a listener in the container plus an accept fiber
    that dials the host backend per client. *)
type forwarder

(** [forward t ~front_proc ~back_proc path] listens at [path] as
    [front_proc] (the container view) and, per accepted client, connects
    to [backend_path] (default [path]) as [back_proc] (the host view),
    then pumps both directions.  Backend connection failures refuse the
    client — counted under [proxy.connections.refused] and traced as
    [proxy.refused] — rather than silently dropping it.

    [label] names the forwarder in traces and gives it dedicated byte
    counters [proxy.fwd.<label>.bytes.{c2b,b2c}] — the cntrd wire
    transport uses [~label:"rpc"] so RPC-framing traffic on the plane is
    visible separately from proxied application sockets. *)
val forward :
  t ->
  front_proc:Proc.t ->
  back_proc:Proc.t ->
  ?backend_path:string ->
  ?label:string ->
  string ->
  (forwarder, Errno.t) result

(** Successfully proxied connections so far. *)
val connection_count : forwarder -> int

(** A directly plumbed duplex stream (the attach TTY rides on this). *)
type stream

(** [add_stream t ~a_rfd ~a_wfd ~b_rfd ~b_wfd ()] pumps [a_rfd]->[b_wfd]
    and [b_rfd]->[a_wfd].  All four fds must already live in the plane's
    process (socket fds may repeat: [a_rfd = a_wfd]). *)
val add_stream :
  t -> ?label:string -> a_rfd:int -> a_wfd:int -> b_rfd:int -> b_wfd:int -> unit -> stream

val stream_closed : stream -> bool

(** Drive the plane to quiescence: every pump and the reactor have parked
    with nothing left to do.  No turn budget — the scheduler's event queue
    draining {e is} the termination condition.  Re-raises the first
    exception a plane fiber died with.  No-op when called from inside a
    fiber (the plane is already being driven). *)
val drain : t -> unit

(** Stop accepting at this forwarder and close its listener; established
    connections keep pumping. *)
val close_forwarder : t -> forwarder -> unit

(** Drain, then tear the plane down: abort remaining connections (counting
    accepted-but-undelivered bytes — source queue, staging, carry — under
    [proxy.bytes.unflushed]), close listeners, retire the reactor.
    Idempotent. *)
val close : t -> unit
