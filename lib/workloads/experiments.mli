(** Figures 3 and 4 (§5.2.3) plus extension experiments: per-optimization
    ablations, the server-thread sweep, the single-switch ablation matrix,
    and the page-cache-fit sweep behind the paper's IOzone discussion. *)

type ablation = {
  a_name : string;
  a_metric : string;
  a_before : float;  (** optimization off *)
  a_after : float;  (** optimization on (CNTR default) *)
  a_native : float;  (** native reference *)
  a_paper_note : string;
}

val fig3a : unit -> ablation  (** read cache (FOPEN_KEEP_CACHE) *)

val fig3b : unit -> ablation  (** writeback cache *)

val fig3c : unit -> ablation  (** batching (FUSE_PARALLEL_DIROPS) *)

val fig3d : unit -> ablation  (** splice read *)

val figure3 : unit -> ablation list

type thread_point = { tp_threads : int; tp_mbps : float }

(** Figure 4: sequential-read throughput at 1, 2, 4, 8, 16 server threads. *)
val figure4 : unit -> thread_point list

type matrix_row = { mr_config : string; mr_overhead : float }

(** Switch each optimization off individually and measure the worst-case
    workload (compilebench read). *)
val ablation_matrix : unit -> matrix_row list

type cache_point = { cp_label : string; cp_budget_mb : int; cp_overhead : float }

(** §5.2.2: the same file fits the native cache one budget step longer than
    CntrFS's double-buffered pair. *)
val iozone_cache_sweep : unit -> cache_point list
