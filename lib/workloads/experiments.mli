(** Figures 3 and 4 (§5.2.3) plus extension experiments: per-optimization
    ablations, the server-thread sweep, the single-switch ablation matrix,
    and the page-cache-fit sweep behind the paper's IOzone discussion. *)

type ablation = {
  a_name : string;
  a_metric : string;
  a_before : float;  (** optimization off *)
  a_after : float;  (** optimization on (CNTR default) *)
  a_native : float;  (** native reference *)
  a_paper_note : string;
}

val fig3a : unit -> ablation  (** read cache (FOPEN_KEEP_CACHE) *)

val fig3b : unit -> ablation  (** writeback cache *)

val fig3c : unit -> ablation  (** batching (FUSE_PARALLEL_DIROPS) *)

val fig3d : unit -> ablation  (** splice read *)

val figure3 : unit -> ablation list

type e3e_row = {
  er_workload : string;
  er_off : float;  (** relative overhead, fast path off (the paper's config) *)
  er_on : float;  (** relative overhead with {!Repro_fuse.Opts.fastpath} *)
  er_amp_off : float;  (** [cntrfs.lookup.amplification], off leg *)
  er_amp_on : float;  (** [cntrfs.lookup.amplification], on leg *)
  er_backing_off : int;  (** [cntrfs.lookup.backing_ops], off leg *)
  er_backing_on : int;  (** [cntrfs.lookup.backing_ops], on leg *)
  er_neg_hits : int;  (** [fuse.dentry.negative_hits], on leg *)
  er_rdp_entries : int;  (** [fuse.readdirplus.entries], on leg *)
  er_hc_hits : int;  (** [cntrfs.handle_cache.hits], on leg *)
}

(** e3e (extension; no paper figure): the metadata fast path
    (READDIRPLUS + TTL dentry/attr + negative dentries + server handle
    cache) off vs. on, on the two lookup-bound workloads of §5.2.2
    (compilebench read, postmark). *)
val fig3e : unit -> e3e_row list

type thread_point = { tp_threads : int; tp_mbps : float }

(** Figure 4: single-reader sequential-read throughput at 1, 2, 4, 8, 16,
    64 and 256 server threads.  With per-worker submission deques and
    targeted wakeups, idle threads stay off the critical path and the
    sweep is flat; the 64/256 legs probe far past the paper's axis. *)
val figure4 : unit -> thread_point list

type contended_point = {
  cp_threads : int;
  cp_mbps : float;
  cp_steals : int;  (** [sched.steals] over the run *)
  cp_steal_fails : int;  (** [sched.steal_fails] *)
  cp_local_hits : int;  (** [sched.local_hits] *)
}

(** Contended companion to Figure 4: 8 concurrent readers over disjoint
    files at 4, 16, 64 and 256 server threads.  Oversized pools must not
    collapse — work stealing repairs placement imbalance, and the steal
    counters are reported alongside throughput. *)
val figure4_contended : unit -> contended_point list

type matrix_row = { mr_config : string; mr_overhead : float }

(** Switch each optimization off individually and measure the worst-case
    workload (compilebench read). *)
val ablation_matrix : unit -> matrix_row list

type cache_point = { cp_label : string; cp_budget_mb : int; cp_overhead : float }

(** §5.2.2: the same file fits the native cache one budget step longer than
    CntrFS's double-buffered pair. *)
val iozone_cache_sweep : unit -> cache_point list
