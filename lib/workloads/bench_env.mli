(** Measurement harness for the Phoronix-like suite (§5.2).

    Testbed model (paper: EC2 m4.xlarge + EBS GP2): a host with an
    ext4-on-SSD data filesystem.  The native backend touches /data
    directly; the CntrFS backend reaches the same filesystem through the
    FUSE stack mounted at /cntr.  Setup phases run through the native path
    in both configurations so the backing page cache starts equally warm;
    only the measured path differs. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_cntrfs

type backend = Native | Cntrfs of Opts.t

type env = {
  kernel : Kernel.t;
  proc : Proc.t;
  dir : string;  (** measured directory *)
  backing_dir : string;  (** the same directory via the native path *)
  session : Session.t option;
  sched : Repro_sched.Sched.t;
      (** the world's discrete-event scheduler: FUSE worker fibers and
          client tasks all run on it *)
  rng : Rng.t;
  data_fs : Nativefs.t;
}

type workload = {
  w_name : string;
  w_paper : float;  (** Figure 2 reference overhead *)
  w_concurrency : int;  (** number of concurrent client tasks the body spawns *)
  w_budget_mb : int;  (** page-cache budget for this workload's world *)
  w_setup : env -> unit;  (** unmeasured; runs via [backing_dir] *)
  w_run : env -> unit;  (** measured; runs via [dir] as the root task *)
}

(** [obs] is shared by the env's kernel, page caches and FUSE session, so
    one registry sees the whole run; omitted = a fresh private handle. *)
val make_env :
  ?obs:Repro_obs.Obs.t -> backend:backend -> budget_mb:int -> ?threads:int -> unit -> env

(** Flush the backing cache's dirty pages so measurement starts settled. *)
val settle : env -> unit

(** Run the workload; returns measured virtual nanoseconds.  [obs]
    collects the run's counters for inspection after the run.  The body
    runs as the scheduler's root task, so concurrent client tasks it
    spawns genuinely overlap; measured time is the root task's span. *)
val run_workload : ?obs:Repro_obs.Obs.t -> backend:backend -> workload -> int

(** Figure 2's metric: time(CntrFS) / time(native); >1 = CntrFS slower. *)
val overhead : ?opts:Opts.t -> workload -> float

(** Run the thunks as concurrent client tasks and join them all; elapsed
    time is the slowest task's timeline, not the sum. *)
val concurrently : env -> (unit -> unit) list -> unit

(** {1 Syscall shorthands for workload bodies} *)

val openf : env -> string -> Types.open_flag list -> int -> int
val closef : env -> int -> unit
val write_all : env -> int -> string -> unit
val pwrite : env -> int -> off:int -> string -> unit
val pread : env -> int -> off:int -> len:int -> string
val write_file : env -> string -> string -> unit
val read_file : env -> string -> string
val mkdir : env -> string -> unit
val unlink : env -> string -> unit
val fsync : env -> int -> unit

(** Burn CPU time (compression, request parsing, SQL). *)
val cpu : env -> int -> unit

val seq_write : env -> int -> total:int -> record:int -> unit
val seq_read : env -> int -> total:int -> record:int -> unit
