(** The Phoronix disk-suite workloads (§5.2, Figure 2): 13 generators in 20
    benchmark configurations.  Each [w_paper] is the overhead the paper
    reports; sizes are scaled ~1:1000 (constants documented inline). *)

open Bench_env

val aio_stress : workload
val apachebench : workload

(** Source-tree shape shared by the compilebench stages. *)
val tree_dirs : int

val tree_files_per_dir : int
val tree_file_bytes : int

(** Recursive readdir + read of every file under a directory (the
    compilebench read stage); reused by the Figure 3(c) parallel walkers. *)
val walk_tree : env -> string -> unit

val compilebench_read : workload
val compilebench_create : workload
val compilebench_compile : workload

(** [dbench clients paper_overhead]. *)
val dbench : int -> float -> workload

val fs_mark : workload
val fio : workload
val gzip : workload
val iozone_write : workload
val iozone_read : workload
val postmark : workload
val pgbench : workload
val sqlite : workload
val threaded_io_read : workload
val threaded_io_write : workload
val unpack_tarball : workload

(** The 20 Figure-2 rows, in the paper's order. *)
val figure2 : workload list
