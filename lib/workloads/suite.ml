(* The Phoronix disk-suite workloads (§5.2, Figure 2): 13 generators, 20
   benchmark configurations.  Sizes are scaled (documented per workload);
   each [w_paper] is the overhead the paper reports, for side-by-side
   output in EXPERIMENTS.md. *)

open Repro_util
open Repro_vfs
open Bench_env

let kib = Size.kib
let mib = Size.mib

let w name ~paper ?(concurrency = 1) ?(budget_mb = 64) ~setup ~run () =
  { w_name = name; w_paper = paper; w_concurrency = concurrency; w_budget_mb = budget_mb; w_setup = setup; w_run = run }

let p env rel = env.dir ^ "/" ^ rel
let pb env rel = env.backing_dir ^ "/" ^ rel

(* --- AIO-Stress: 2 GB of async writes (scaled to 2 MiB) -------------------- *)
(* Native runs O_DIRECT + full queue depth; CntrFS cannot do direct I/O, so
   every request is processed synchronously (paper: 2.6x). *)

let aio_stress =
  w "AIO-Stress" ~paper:2.6
    ~setup:(fun _ -> ())
    ~run:(fun env ->
      let total = mib 2 and record = kib 4 in
      let fd =
        match
          Repro_os.Kernel.open_ env.kernel env.proc (p env "aiofile")
            [ Types.O_CREAT; Types.O_WRONLY; Types.O_DIRECT; Types.O_NONBLOCK ]
            ~mode:0o644
        with
        | Ok fd -> fd
        | Error Errno.EINVAL ->
            (* FUSE: no direct I/O — fall back to synchronous writes *)
            openf env (p env "aiofile") [ Types.O_CREAT; Types.O_WRONLY; Types.O_SYNC ] 0o644
        | Error e -> raise (Errno.Error e)
      in
      seq_write env fd ~total ~record;
      closef env fd)
    ()

(* --- Apache benchmark: 100K requests for ~3 KB files (scaled to 3000) ------ *)
(* Serving is cache-warm; the bottleneck is the <100-byte access-log append
   per request, which costs an uncached security.capability getxattr
   through FUSE (paper: 1.5x). *)

let apachebench =
  w "Apachebench" ~paper:1.5
    ~setup:(fun env ->
      mkdir env (pb env "docroot");
      for i = 0 to 49 do
        write_file env (pb env (Printf.sprintf "docroot/page%d.html" i)) (String.make (kib 3) 'p')
      done)
    ~run:(fun env ->
      let log = openf env (p env "access.log") [ Types.O_CREAT; Types.O_WRONLY; Types.O_APPEND ] 0o644 in
      (* the server keeps an fd cache for hot content, like Apache *)
      let fds =
        Array.init 50 (fun i ->
            openf env (p env (Printf.sprintf "docroot/page%d.html" i)) [ Types.O_RDONLY ] 0)
      in
      for i = 0 to 2999 do
        ignore (pread env fds.(i mod 50) ~off:0 ~len:(kib 3));
        (* request handling CPU (parse, headers, socket work) *)
        cpu env 10_000;
        write_all env log "10.0.0.1 - GET /page HTTP/1.1 200 3072\n"
      done;
      Array.iter (closef env) fds;
      closef env log)
    ()

(* --- Compilebench (three stages) -------------------------------------------- *)
(* A kernel-ish source tree: many small files in nested dirs.  The read
   stage walks a *fresh* tree, so every file costs a cold FUSE lookup with
   the server-side open()+stat() — the suite's worst case (paper: 13.3x).
   The create stage copies a tree (7.3x); the compile stage writes .o files
   next to sources (2.3x). *)

let tree_dirs = 12
let tree_files_per_dir = 18
let tree_file_bytes = kib 4

let make_tree env ~via base =
  let path rel = match via with `Backing -> pb env rel | `Measured -> p env rel in
  mkdir env (path base);
  for d = 0 to tree_dirs - 1 do
    let dir = Printf.sprintf "%s/dir%02d" base d in
    mkdir env (path dir);
    for f = 0 to tree_files_per_dir - 1 do
      write_file env (path (Printf.sprintf "%s/src%02d.c" dir f)) (String.make tree_file_bytes 'c')
    done
  done

let walk_tree env base =
  let rec go dir =
    let entries = Errno.ok_exn (Repro_os.Kernel.readdir env.kernel env.proc dir) in
    List.iter
      (fun e ->
        let n = e.Types.d_name in
        if n <> "." && n <> ".." then
          match e.Types.d_kind with
          | Types.Dir -> go (dir ^ "/" ^ n)
          | _ -> ignore (read_file env (dir ^ "/" ^ n)))
      entries
  in
  go base

let compilebench_read =
  w "Compileb.: Read" ~paper:13.3 ~concurrency:4
    ~setup:(fun env -> make_tree env ~via:`Backing "tree")
    ~run:(fun env -> walk_tree env (p env "tree"))
    ()

let compilebench_create =
  w "Compileb.: Create" ~paper:7.3 ~concurrency:4
    ~setup:(fun _ -> ())
    ~run:(fun env ->
      (* the initial-creation stage: unpack a fresh source tree (the data
         comes out of the tar stream in memory; every file costs namespace
         operations) *)
      mkdir env (p env "newtree");
      let data = String.make tree_file_bytes 'c' in
      for d = 0 to tree_dirs - 1 do
        let ddir = p env (Printf.sprintf "newtree/dir%02d" d) in
        mkdir env ddir;
        for f = 0 to tree_files_per_dir - 1 do
          write_file env (Printf.sprintf "%s/src%02d.c" ddir f) data
        done
      done)
    ()

let compilebench_compile =
  w "Compileb.: Comp." ~paper:2.3 ~concurrency:4 ~budget_mb:8
    ~setup:(fun env ->
      (* compilebench runs its stages back to back through the same mount:
         by compile time the tree was created through it, so caches are
         warm — build the tree through the *measured* path *)
      make_tree env ~via:`Measured "ctree")
    ~run:(fun env ->
      (* compile one "module": read sources, emit objects (4x the size) *)
      for d = 0 to tree_dirs - 1 do
        let dir = p env (Printf.sprintf "ctree/dir%02d" d) in
        for f = 0 to tree_files_per_dir - 1 do
          let src = read_file env (Printf.sprintf "%s/src%02d.c" dir f) in
          cpu env (String.length src * 5); (* cc time *)
          write_file env (Printf.sprintf "%s/src%02d.o" dir f)
            (String.make (String.length src * 4) 'o')
        done
      done)
    ()

(* --- Dbench: file-server mix at 1/12/48/128 clients -------------------------- *)
(* Clients re-read a warm working set; the driver's caches absorb nearly
   everything after the first round (paper: 0.9x - 1.0x). *)

let dbench clients paper =
  w (Printf.sprintf "Dbench: %d Clients" clients) ~paper ~concurrency:(min clients 8)
    ~setup:(fun env ->
      for c = 0 to min clients 8 - 1 do
        let dir = Printf.sprintf "client%d" c in
        mkdir env (pb env dir);
        for f = 0 to 3 do
          write_file env (pb env (Printf.sprintf "%s/f%d" dir f)) (String.make (kib 256) 'd')
        done
      done)
    ~run:(fun env ->
      (* each client opens its working set once and re-reads it — the
         dbench NBENCH loop is dominated by data transfer, not opens.
         Clients are concurrent tasks: their cold-round FUSE round trips
         genuinely overlap on the server's worker pool. *)
      let dirs = min clients 8 in
      let fds =
        Array.init dirs (fun c ->
            Array.init 4 (fun f ->
                openf env (p env (Printf.sprintf "client%d/f%d" c f)) [ Types.O_RDONLY ] 0))
      in
      let rounds = 16 + (4 * clients) in
      let client c () =
        for r = 0 to rounds - 1 do
          let fd = fds.(c).(r mod 4) in
          seq_read env fd ~total:(kib 256) ~record:(kib 64);
          if r mod 8 = 0 then
            ignore
              (Errno.ok_exn
                 (Repro_os.Kernel.stat env.kernel env.proc
                    (p env (Printf.sprintf "client%d/f%d" c (r mod 4)))))
        done
      in
      concurrently env (List.init dirs client);
      Array.iter (Array.iter (closef env)) fds)
    ()

(* --- FS-Mark: 1000 x 1 MB sequential creates (scaled to 24 x 256 KiB) ------- *)
(* 16 KiB writes, disk-bound: the streaming cost dominates both sides
   (paper: 1.0x). *)

let fs_mark =
  w "FS-Mark" ~paper:1.0
    ~setup:(fun _ -> ())
    ~run:(fun env ->
      for i = 0 to 23 do
        let fd = openf env (p env (Printf.sprintf "mark%03d" i)) [ Types.O_CREAT; Types.O_WRONLY ] 0o644 in
        seq_write env fd ~total:(kib 256) ~record:(kib 16);
        fsync env fd;
        closef env fd
      done)
    ()

(* --- FIO fileserver profile: 80% random reads / 20% random writes ----------- *)
(* 4 GB scaled to 4 MiB, ~128 KiB blocks, hot working set.  CntrFS's
   writeback cache holds dirty pages much longer than the native dirty
   threshold, absorbing rewrites: fewer, larger disk writes — faster than
   native (paper: 0.2x). *)

let fio =
  w "FIO" ~paper:0.2
    ~setup:(fun env -> write_file env (pb env "fio.dat") (String.make (mib 4) 'f'))
    ~run:(fun env ->
      let fd = openf env (p env "fio.dat") [ Types.O_RDWR ] 0o644 in
      let block = kib 128 in
      let hot_blocks = 4 in (* hot region: 512 KiB *)
      let blocks = mib 4 / block in
      let buf = String.make block 'F' in
      for i = 0 to 399 do
        let hot = Rng.int env.rng 10 < 8 in
        let blk = if hot then Rng.int env.rng hot_blocks else Rng.int env.rng blocks in
        let off = blk * block in
        if Rng.int env.rng 10 < 8 then ignore (pread env fd ~off ~len:block)
        else begin
          ignore i;
          pwrite env fd ~off buf
        end
      done;
      closef env fd)
    ()

(* --- Gzip: compress a 2 GB zero file (scaled to 2 MiB) ---------------------- *)
(* Compute-bound: gzip is slower than either filesystem (paper: 1.0x). *)

let gzip =
  w "Gzip" ~paper:1.0
    ~setup:(fun env -> write_file env (pb env "zeros") (String.make (mib 2) '\000'))
    ~run:(fun env ->
      let fd = openf env (p env "zeros") [ Types.O_RDONLY ] 0 in
      let out = openf env (p env "zeros.gz") [ Types.O_CREAT; Types.O_WRONLY ] 0o644 in
      let record = kib 64 in
      let rec go off =
        if off < mib 2 then begin
          let chunk = pread env fd ~off ~len:record in
          (* gzip: ~25 us per 4 KiB of input *)
          cpu env (String.length chunk / 4096 * 25_000);
          write_all env out (String.make (record / 50) 'z');
          go (off + record)
        end
      in
      go 0;
      closef env fd;
      closef env out)
    ()

(* --- IOzone: sequential write then sequential read, 4 KiB records ----------- *)
(* Write: the per-write getxattr tax (paper: 1.2x).  Read: the working set
   fits the page cache natively but not when CntrFS double-buffers it
   (paper: 2.1x). *)

let iozone_write =
  w "IOzone: Write" ~paper:1.2
    ~setup:(fun _ -> ())
    ~run:(fun env ->
      let fd = openf env (p env "ioz") [ Types.O_CREAT; Types.O_WRONLY ] 0o644 in
      seq_write env fd ~total:(mib 2) ~record:(kib 4);
      fsync env fd;
      closef env fd)
    ()

let iozone_read =
  w "IOzone: Read" ~paper:2.1 ~budget_mb:6
    ~setup:(fun env -> write_file env (pb env "ioz") (String.make (mib 4) 'r'))
    ~run:(fun env ->
      let fd = openf env (p env "ioz") [ Types.O_RDONLY ] 0 in
      (* two sequential passes, as iozone re-reads *)
      seq_read env fd ~total:(mib 4) ~record:(kib 4);
      seq_read env fd ~total:(mib 4) ~record:(kib 4);
      closef env fd)
    ()

(* --- Postmark: mail-server churn --------------------------------------------- *)
(* Small files created, appended, read and deleted before they are ever
   synced: native pays almost no disk I/O, CntrFS pays lookups and round
   trips for everything (paper: 7.1x). *)

let postmark =
  w "PostMark" ~paper:7.1
    ~setup:(fun env -> mkdir env (pb env "mail"))
    ~run:(fun env ->
      let pool = Array.make 40 None in
      for i = 0 to 399 do
        let slot = Rng.int env.rng 40 in
        let name = p env (Printf.sprintf "mail/msg%d" slot) in
        match pool.(slot) with
        | None ->
            let size = 512 + Rng.int env.rng (kib 7) in
            write_file env name (String.make size 'm');
            pool.(slot) <- Some size
        | Some _ when Rng.int env.rng 4 = 0 ->
            unlink env name;
            pool.(slot) <- None
        | Some size when Rng.int env.rng 2 = 0 ->
            let fd = openf env name [ Types.O_WRONLY; Types.O_APPEND ] 0 in
            write_all env fd (String.make 256 'a');
            closef env fd;
            pool.(slot) <- Some (size + 256);
            ignore i
        | Some _ -> ignore (read_file env name)
      done)
    ()

(* --- PGBench: OLTP reads/writes + WAL ---------------------------------------- *)
(* Hot-page rewrites sit in the writeback cache instead of hitting the
   device at every native dirty-threshold flush (paper: 0.4x). *)

let pgbench =
  w "Pgbench" ~paper:0.4
    ~setup:(fun env ->
      write_file env (pb env "table.dat") (String.make (mib 2) 't');
      write_file env (pb env "wal") "")
    ~run:(fun env ->
      let table = openf env (p env "table.dat") [ Types.O_RDWR ] 0 in
      let wal = openf env (p env "wal") [ Types.O_WRONLY; Types.O_APPEND ] 0 in
      let page = kib 8 in
      let hot_pages = 64 in (* 512 KiB hot b-tree region *)
      for tx = 0 to 1199 do
        (* read two pages (mostly hot), update one hot page, append WAL *)
        let rd () =
          let pg =
            if Rng.int env.rng 10 < 9 then Rng.int env.rng hot_pages
            else Rng.int env.rng (mib 2 / page)
          in
          ignore (pread env table ~off:(pg * page) ~len:page)
        in
        rd ();
        rd ();
        let hot = Rng.int env.rng hot_pages * page in
        pwrite env table ~off:hot (String.make page 'u');
        write_all env wal (String.make 120 'w');
        cpu env 3_000;
        (* group commit every 100 transactions *)
        if tx mod 100 = 99 then fsync env wal
      done;
      closef env table;
      closef env wal)
    ()

(* --- SQLite: 1000 row inserts, one fsync each (scaled to 150) --------------- *)
(* The fsync after every insert defeats the writeback cache: every insert
   pays the FUSE round trips (paper: 1.9x). *)

let sqlite =
  w "SQlite" ~paper:1.9
    ~setup:(fun env -> write_file env (pb env "db.sqlite") (String.make (kib 16) 's'))
    ~run:(fun env ->
      let db = openf env (p env "db.sqlite") [ Types.O_RDWR; Types.O_APPEND ] 0 in
      for i = 0 to 149 do
        (* rollback journal: create, write the old page, sync *)
        let jpath = p env "db.sqlite-journal" in
        let j = openf env jpath [ Types.O_CREAT; Types.O_WRONLY ] 0o644 in
        write_all env j (String.make (kib 1) 'j');
        fsync env j;
        closef env j;
        (* the insert itself *)
        write_all env db (String.make 200 'r');
        cpu env 4_000; (* SQL parse + b-tree update *)
        fsync env db;
        (* commit: delete the journal *)
        unlink env jpath;
        ignore i
      done;
      closef env db)
    ()

(* --- Threaded I/O: 4 concurrent readers / writers over a 64 MB file --------- *)
(* Reads are cache-served on both sides (paper: 1.1x); writes re-dirty the
   same regions and the longer writeback window absorbs them (0.3x). *)

let threaded_io_read =
  w "Threaded I/O: Read" ~paper:1.1 ~concurrency:4
    ~setup:(fun env -> write_file env (pb env "tio") (String.make (mib 1) 'x'))
    ~run:(fun env ->
      let fds = List.init 4 (fun _ -> openf env (p env "tio") [ Types.O_RDONLY ] 0) in
      (* four reader threads over the same file, as concurrent tasks *)
      concurrently env
        (List.map
           (fun fd () ->
             for pass = 0 to 2 do
               ignore pass;
               seq_read env fd ~total:(mib 1) ~record:(kib 64)
             done)
           fds);
      List.iter (closef env) fds)
    ()

let threaded_io_write =
  w "Threaded I/O: Write" ~paper:0.3 ~concurrency:4
    ~setup:(fun env -> write_file env (pb env "tiow") (String.make (mib 1) 'x'))
    ~run:(fun env ->
      let fds = List.init 4 (fun _ -> openf env (p env "tiow") [ Types.O_RDWR ] 0) in
      let quarter = mib 1 / 4 in
      (* each "thread" rewrites its own quarter, as a concurrent task *)
      concurrently env
        (List.mapi
           (fun i fd () ->
             let base = i * quarter in
             for pass = 0 to 4 do
               ignore pass;
               let rec go off =
                 if off < quarter then begin
                   pwrite env fd ~off:(base + off) (String.make (kib 16) 'W');
                   go (off + kib 16)
                 end
               in
               go 0
             done)
           fds);
      List.iter (closef env) fds)
    ()

(* --- Unpack tarball: kernel source from one archive -------------------------- *)
(* Creates many small files like compilebench-create, but reads a single
   archive instead of a source tree: far fewer lookups (paper: 1.2x). *)

let unpack_tarball =
  w "Unpack tarball" ~paper:1.2
    ~setup:(fun env -> write_file env (pb env "linux.tar") (String.make (mib 2) 'T'))
    ~run:(fun env ->
      let tar = openf env (p env "linux.tar") [ Types.O_RDONLY ] 0 in
      mkdir env (p env "linux");
      let files = 150 in
      let fsize = mib 2 / files in
      for i = 0 to files - 1 do
        let data = pread env tar ~off:(i * fsize) ~len:fsize in
        (* gunzip of the compressed stream: ~8.5 us per KiB of output *)
        cpu env (String.length data * 8_500 / 1024);
        if i mod 15 = 0 then mkdir env (p env (Printf.sprintf "linux/d%d" (i / 15)));
        write_file env (p env (Printf.sprintf "linux/d%d/f%d" (i / 15) i)) data
      done;
      closef env tar)
    ()

(* --- the Figure 2 suite -------------------------------------------------------- *)

let figure2 = [
  aio_stress;
  apachebench;
  compilebench_compile;
  compilebench_create;
  compilebench_read;
  dbench 1 1.4;
  dbench 12 0.9;
  dbench 128 1.0;
  dbench 48 1.0;
  fs_mark;
  fio;
  gzip;
  iozone_read;
  iozone_write;
  postmark;
  pgbench;
  sqlite;
  threaded_io_read;
  threaded_io_write;
  unpack_tarball;
]
