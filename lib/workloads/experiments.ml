(* Figures 3 and 4 (§5.2.3): effectiveness of the individual optimizations,
   each measured with a dedicated micro-workload that isolates the
   mechanism, exactly as the paper does. *)

open Repro_util
open Repro_vfs
open Repro_fuse
open Bench_env

let kib = Size.kib
let mib = Size.mib

type ablation = {
  a_name : string;
  a_metric : string; (* e.g. "Threaded read [MB/s]" *)
  a_before : float;
  a_after : float;
  a_native : float; (* native reference, where meaningful *)
  a_paper_note : string;
}

let throughput ~bytes ~ns = float_of_int bytes /. (float_of_int ns /. 1e9) /. 1024. /. 1024.

(* --- Figure 3(a): read cache (FOPEN_KEEP_CACHE) ---------------------------- *)
(* Threaded I/O read, 8 reader threads, re-opening the file between passes.
   Without FOPEN_KEEP_CACHE every open invalidates the page cache, so each
   pass re-fetches through the server's worker pool — which the readers
   outnumber, so the connection saturates; with the flag kept pages are
   served from the page cache at memory speed (paper: ~10x). *)

let read_cache_workload =
  {
    w_name = "fig3a";
    w_paper = 0.;
    w_concurrency = 8;
    w_budget_mb = 64;
    w_setup = (fun env -> write_file env (env.backing_dir ^ "/tio") (String.make (mib 1) 'x'));
    w_run =
      (fun env ->
        (* 8 reader tasks x 4 passes, each pass opens and closes its fd *)
        for _pass = 0 to 3 do
          let fds = List.init 8 (fun _ -> openf env (env.dir ^ "/tio") [ Types.O_RDONLY ] 0) in
          concurrently env
            (List.map (fun fd () -> seq_read env fd ~total:(mib 1) ~record:(kib 8)) fds);
          List.iter (closef env) fds
        done);
  }

let fig3a () =
  let bytes = 32 * mib 1 in
  let before =
    run_workload ~backend:(Cntrfs { Opts.cntr_default with Opts.keep_cache = false }) read_cache_workload
  in
  let after = run_workload ~backend:(Cntrfs Opts.cntr_default) read_cache_workload in
  let native = run_workload ~backend:Native read_cache_workload in
  {
    a_name = "Read cache (FOPEN_KEEP_CACHE)";
    a_metric = "Threaded read [MB/s]";
    a_before = throughput ~bytes ~ns:before;
    a_after = throughput ~bytes ~ns:after;
    a_native = throughput ~bytes ~ns:native;
    a_paper_note = "paper: ~10x higher concurrent-read throughput";
  }

(* --- Figure 3(b): writeback cache ------------------------------------------- *)
(* IOzone sequential write, 4 KiB records, no fsync: write-through sends
   one WRITE round trip per record; writeback coalesces into 128 KiB
   requests (paper: +65% vs native). *)

let writeback_workload =
  {
    w_name = "fig3b";
    w_paper = 0.;
    w_concurrency = 1;
    w_budget_mb = 64;
    w_setup = (fun _ -> ());
    w_run =
      (fun env ->
        let fd = openf env (env.dir ^ "/wb") [ Types.O_CREAT; Types.O_WRONLY ] 0o644 in
        seq_write env fd ~total:(mib 2) ~record:(kib 2);
        closef env fd);
  }

let fig3b () =
  let bytes = mib 2 in
  let before =
    run_workload ~backend:(Cntrfs { Opts.cntr_default with Opts.writeback = false }) writeback_workload
  in
  let after = run_workload ~backend:(Cntrfs Opts.cntr_default) writeback_workload in
  let native = run_workload ~backend:Native writeback_workload in
  {
    a_name = "Writeback cache (FUSE_WRITEBACK_CACHE)";
    a_metric = "Sequential write [MB/s]";
    a_before = throughput ~bytes ~ns:before;
    a_after = throughput ~bytes ~ns:after;
    a_native = throughput ~bytes ~ns:native;
    a_paper_note = "paper: +65% write throughput vs native";
  }

(* --- Figure 3(c): batching (FUSE_PARALLEL_DIROPS) --------------------------- *)
(* A metadata-bound stat storm over one flat source directory with 4
   concurrent walker tasks striped across disjoint file names: without
   PARALLEL_DIROPS every cold lookup takes the parent's i_rwsem
   exclusively across its round trip, and since all walkers share the one
   parent they queue behind each other for essentially the whole runtime
   (paper: 2.5x).  With the flag, lookups for different names overlap on
   the server's worker pool.  Each walker also reads every 8th file — the
   off-lock share that keeps the serialization penalty short of total.
   Striping keeps total work identical in both configurations. *)

let flat_files = 216
let flat_file_bytes = kib 4

let parallel_walk_workload =
  {
    w_name = "fig3c";
    w_paper = 0.;
    w_concurrency = 4;
    w_budget_mb = 64;
    w_setup =
      (fun env ->
        mkdir env (env.backing_dir ^ "/flat");
        let data = String.make flat_file_bytes 'c' in
        for f = 0 to flat_files - 1 do
          write_file env (Printf.sprintf "%s/flat/src%03d.c" env.backing_dir f) data
        done);
    w_run =
      (fun env ->
        concurrently env
          (List.init 4 (fun stripe () ->
               for f = 0 to flat_files - 1 do
                 if f mod 4 = stripe then begin
                   let path = Printf.sprintf "%s/flat/src%03d.c" env.dir f in
                   ignore (Errno.ok_exn (Repro_os.Kernel.stat env.kernel env.proc path));
                   if f mod 8 = stripe then ignore (read_file env path)
                 end
               done)));
  }

let fig3c () =
  let workload = parallel_walk_workload in
  let bytes = flat_files / 2 * flat_file_bytes in
  let before =
    run_workload ~backend:(Cntrfs { Opts.cntr_default with Opts.parallel_dirops = false }) workload
  in
  let after = run_workload ~backend:(Cntrfs Opts.cntr_default) workload in
  let native = run_workload ~backend:Native workload in
  {
    a_name = "Batching (FUSE_PARALLEL_DIROPS)";
    a_metric = "Stat+read source dir [MB/s]";
    a_before = throughput ~bytes ~ns:before;
    a_after = throughput ~bytes ~ns:after;
    a_native = throughput ~bytes ~ns:native;
    a_paper_note = "paper: 2.5x faster compilebench read";
  }

(* --- Figure 3(d): splice read ------------------------------------------------ *)
(* Sequential read with a working set slightly over the cache budget, so a
   steady fraction of requests reaches the server: splice saves the reply
   copies (paper: ~5%). *)

let splice_workload =
  {
    w_name = "fig3d";
    w_paper = 0.;
    w_concurrency = 1;
    w_budget_mb = 9;
    w_setup = (fun env -> write_file env (env.backing_dir ^ "/spl") (String.make (mib 4) 's'));
    w_run =
      (fun env ->
        let fd = openf env (env.dir ^ "/spl") [ Types.O_RDONLY ] 0 in
        for _pass = 0 to 4 do
          seq_read env fd ~total:(mib 4) ~record:(kib 4)
        done;
        closef env fd);
  }

let fig3d () =
  let bytes = 5 * mib 4 in
  let before =
    run_workload ~backend:(Cntrfs { Opts.cntr_default with Opts.splice_read = false }) splice_workload
  in
  let after = run_workload ~backend:(Cntrfs Opts.cntr_default) splice_workload in
  let native = run_workload ~backend:Native splice_workload in
  {
    a_name = "Splice read";
    a_metric = "Sequential read [MB/s]";
    a_before = throughput ~bytes ~ns:before;
    a_after = throughput ~bytes ~ns:after;
    a_native = throughput ~bytes ~ns:native;
    a_paper_note = "paper: ~5% sequential-read improvement";
  }

let figure3 () = [ fig3a (); fig3b (); fig3c (); fig3d () ]

(* --- e3e: the metadata fast path (extension; no paper figure) --------------- *)
(* The §5.2.2 lookup tax, attacked: READDIRPLUS + TTL'd dentry/attr caches +
   negative dentries + the server handle cache (Opts.fastpath), measured on
   the two workloads the paper names as lookup-bound.  OFF = the paper's
   configuration, so its Figure 2 numbers are untouched. *)

type e3e_row = {
  er_workload : string;
  er_off : float; (* relative overhead with Opts.cntr_default *)
  er_on : float; (* relative overhead with Opts.fastpath *)
  er_amp_off : float; (* cntrfs.lookup.amplification *)
  er_amp_on : float;
  er_backing_off : int; (* cntrfs.lookup.backing_ops: the absolute tax *)
  er_backing_on : int;
  er_neg_hits : int; (* fuse.dentry.negative_hits, ON leg *)
  er_rdp_entries : int; (* fuse.readdirplus.entries, ON leg *)
  er_hc_hits : int; (* cntrfs.handle_cache.hits, ON leg *)
}

let fig3e () =
  let measure opts w =
    let obs = Repro_obs.Obs.create () in
    let cntr = run_workload ~obs ~backend:(Cntrfs opts) w in
    let native = run_workload ~backend:Native w in
    (float_of_int cntr /. float_of_int (max 1 native), Repro_obs.Obs.metrics obs)
  in
  List.map
    (fun w ->
      let off, m_off = measure Opts.cntr_default w in
      let on, m_on = measure Opts.fastpath w in
      {
        er_workload = w.w_name;
        er_off = off;
        er_on = on;
        er_amp_off = Repro_obs.Metrics.gauge_value m_off "cntrfs.lookup.amplification";
        er_amp_on = Repro_obs.Metrics.gauge_value m_on "cntrfs.lookup.amplification";
        er_backing_off = Repro_obs.Metrics.counter_value m_off "cntrfs.lookup.backing_ops";
        er_backing_on = Repro_obs.Metrics.counter_value m_on "cntrfs.lookup.backing_ops";
        er_neg_hits = Repro_obs.Metrics.counter_value m_on "fuse.dentry.negative_hits";
        er_rdp_entries = Repro_obs.Metrics.counter_value m_on "fuse.readdirplus.entries";
        er_hc_hits = Repro_obs.Metrics.counter_value m_on "cntrfs.handle_cache.hits";
      })
    [ Suite.compilebench_read; Suite.postmark ]

(* --- Figure 4: multithreading -------------------------------------------------- *)
(* IOzone sequential read, 500 MB / 4 KiB records (scaled), sweeping the
   CntrFS server thread count.  The reader is single-threaded, so extra
   workers never help; the question is what they *cost*.  Under the old
   global pending queue every submission broadcast-woke the whole parked
   herd and paid a wait-list walk per extra thread, an emergent
   coordination tax of up to ~8% at 16 threads.  With per-worker
   submission deques the submitter targets one worker and wakes it alone,
   so idle threads are never on the critical path and the sweep stays
   flat — including the 64- and 256-thread legs far past the paper's
   axis, where the herd tax would have been ruinous.  4 KiB records keep
   each request a single READ, so no read-batch parallelism masks the
   result. *)

type thread_point = { tp_threads : int; tp_mbps : float }

let fig4_workload =
  {
    w_name = "fig4";
    w_paper = 0.;
    w_concurrency = 1;
    w_budget_mb = 64;
    w_setup =
      (fun env -> write_file env (env.backing_dir ^ "/ioz") (String.make (200 * kib 4) 'r'));
    w_run =
      (fun env ->
        let fd = openf env (env.dir ^ "/ioz") [ Types.O_RDONLY ] 0 in
        seq_read env fd ~total:(200 * kib 4) ~record:(kib 4);
        closef env fd);
  }

let figure4 () =
  let bytes = 200 * kib 4 in
  List.map
    (fun threads ->
      let env = make_env ~backend:(Cntrfs Opts.cntr_default) ~budget_mb:64 ~threads () in
      fig4_workload.w_setup env;
      settle env;
      let t0 = Clock.now_ns env.kernel.Repro_os.Kernel.clock in
      (* run as the scheduler's root task (like run_workload): the event
         loop then retires every wake in time order, so its cost is real
         rather than left pending in the queue *)
      Repro_sched.Sched.run env.sched (fun () -> fig4_workload.w_run env);
      let ns = Int64.to_int (Int64.sub (Clock.now_ns env.kernel.Repro_os.Kernel.clock) t0) in
      { tp_threads = threads; tp_mbps = throughput ~bytes ~ns })
    [ 1; 2; 4; 8; 16; 64; 256 ]

(* Contended companion to Figure 4: 8 concurrent readers over disjoint
   files, where extra workers *can* help and placement mistakes *can*
   hurt.  The point of the sweep is the right-hand side: oversized pools
   (64, 256 threads) must not collapse — submissions spread over mostly
   idle deques and the stealers repair the imbalance, so the steal
   counters are the interesting output alongside throughput. *)

type contended_point = {
  cp_threads : int;
  cp_mbps : float;
  cp_steals : int;
  cp_steal_fails : int;
  cp_local_hits : int;
}

let fig4c_readers = 8
let fig4c_file_bytes = 128 * kib 4 (* ~512 KiB per reader *)

let fig4_contended_workload =
  {
    w_name = "fig4c";
    w_paper = 0.;
    w_concurrency = fig4c_readers;
    w_budget_mb = 64;
    w_setup =
      (fun env ->
        let data = String.make fig4c_file_bytes 'r' in
        for r = 0 to fig4c_readers - 1 do
          write_file env (Printf.sprintf "%s/ioz%d" env.backing_dir r) data
        done);
    w_run =
      (fun env ->
        concurrently env
          (List.init fig4c_readers (fun r () ->
               let fd =
                 openf env (Printf.sprintf "%s/ioz%d" env.dir r) [ Types.O_RDONLY ] 0
               in
               seq_read env fd ~total:fig4c_file_bytes ~record:(kib 4);
               closef env fd)));
  }

let figure4_contended () =
  let bytes = fig4c_readers * fig4c_file_bytes in
  List.map
    (fun threads ->
      let obs = Repro_obs.Obs.create () in
      let env = make_env ~obs ~backend:(Cntrfs Opts.cntr_default) ~budget_mb:64 ~threads () in
      fig4_contended_workload.w_setup env;
      settle env;
      let t0 = Clock.now_ns env.kernel.Repro_os.Kernel.clock in
      Repro_sched.Sched.run env.sched (fun () -> fig4_contended_workload.w_run env);
      let ns = Int64.to_int (Int64.sub (Clock.now_ns env.kernel.Repro_os.Kernel.clock) t0) in
      let m = Repro_obs.Obs.metrics obs in
      {
        cp_threads = threads;
        cp_mbps = throughput ~bytes ~ns;
        cp_steals = Repro_obs.Metrics.counter_value m "sched.steals";
        cp_steal_fails = Repro_obs.Metrics.counter_value m "sched.steal_fails";
        cp_local_hits = Repro_obs.Metrics.counter_value m "sched.local_hits";
      })
    [ 4; 16; 64; 256 ]

(* --- ablation matrix: which optimization buys what ----------------------------- *)
(* Beyond the paper's Figure 3: switch each optimization off *individually*
   (keeping the rest at CNTR defaults) and measure the overhead of the
   worst-case workload.  Quantifies each design choice's contribution. *)

type matrix_row = { mr_config : string; mr_overhead : float }

let ablation_matrix () =
  let base = Opts.cntr_default in
  let configs =
    [
      ("all optimizations (CNTR default)", base);
      ("without FOPEN_KEEP_CACHE", { base with Opts.keep_cache = false });
      ("without writeback cache", { base with Opts.writeback = false });
      ("without PARALLEL_DIROPS", { base with Opts.parallel_dirops = false });
      ("without async read batching", { base with Opts.async_read = false; read_batch = 1 });
      ("without splice read", { base with Opts.splice_read = false });
      ("without forget batching", { base with Opts.forget_batch = 1 });
      ("without entry/attr caches", { base with Opts.entry_cache = false; attr_cache = false });
      ("with splice write (off by default, §3.3)", { base with Opts.splice_write = true });
      ("nothing (unoptimized FUSE)", Opts.unoptimized);
    ]
  in
  List.map
    (fun (name, opts) ->
      { mr_config = name; mr_overhead = overhead ~opts Suite.compilebench_read })
    configs

(* --- §5.2.2 IOzone working-set sweep ------------------------------------------- *)
(* "For smaller read sizes the throughput is comparable because the data
   fits in the page cache.  A larger workload no longer fits into the page
   cache of CNTRFS and degrades the throughput significantly."  CntrFS
   double-buffers (driver cache + backing cache), so the same file stops
   fitting at half the budget. *)

type cache_point = { cp_label : string; cp_budget_mb : int; cp_overhead : float }

let iozone_cache_sweep () =
  List.map
    (fun (label, budget_mb) ->
      let w = { Suite.iozone_read with w_name = "iozone-" ^ label; w_budget_mb = budget_mb } in
      { cp_label = label; cp_budget_mb = budget_mb; cp_overhead = overhead w })
    [
      ("fits both caches (4 MiB file, 32 MiB RAM)", 32);
      ("fits native only (4 MiB file, 6 MiB RAM)", 6);
      ("fits neither (4 MiB file, 3 MiB RAM)", 3);
    ]
