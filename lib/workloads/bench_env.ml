(* Measurement harness for the Phoronix-like suite (§5.2).

   Testbed model (paper: EC2 m4.xlarge + EBS GP2): a host with an
   ext4-on-SSD data filesystem.  The *native* backend touches /data
   directly; the *CntrFS* backend reaches the same filesystem through the
   FUSE stack mounted at /cntr (the worst case for CNTR: an application
   aggressively doing I/O through the fat-container mount).

   Setup phases run through the native path in both configurations, so the
   backing page cache starts equally warm and only the measured path
   differs.  All sizes are scaled down ~1:1000 from the paper's (documented
   per workload); the virtual-time ratios are size-stable. *)

open Repro_util
open Repro_vfs
open Repro_os
open Repro_fuse
open Repro_cntrfs

type backend = Native | Cntrfs of Opts.t

type env = {
  kernel : Kernel.t;
  proc : Proc.t;
  dir : string; (* measured directory *)
  backing_dir : string; (* same directory via the native path *)
  session : Session.t option;
  sched : Repro_sched.Sched.t; (* the world's discrete-event scheduler *)
  rng : Rng.t;
  data_fs : Nativefs.t;
}

type workload = {
  w_name : string;
  w_paper : float; (* Figure 2 reference overhead (cntr/native) *)
  w_concurrency : int; (* number of concurrent client tasks the body spawns *)
  w_budget_mb : int; (* page-cache budget for this workload's world *)
  w_setup : env -> unit;
  w_run : env -> unit;
}

let ok = Errno.ok_exn

let make_env ?obs ~backend ~budget_mb ?(threads = 4) () =
  let clock = Clock.create () in
  let cost = Cost.default in
  let obs = match obs with Some o -> o | None -> Repro_obs.Obs.create () in
  let metrics = Repro_obs.Obs.metrics obs in
  let budget = Mem_budget.create ~limit_bytes:(budget_mb * 1024 * 1024) in
  let rootfs = Nativefs.create ~name:"host-root" ~clock ~cost Store.Ram () in
  let sched = Repro_sched.Sched.create ~clock in
  let kernel = Kernel.create ~obs ~clock ~cost ~root_fs:(Nativefs.ops rootfs) () in
  let init = Kernel.init_proc kernel in
  List.iter (fun d -> ok (Kernel.mkdir kernel init d ~mode:0o755)) [ "/data"; "/cntr" ];
  (* the ext4-on-EBS data volume *)
  let cache =
    Page_cache.create ~metrics ~name:"ext4" ~budget ~page_size:cost.Cost.page_size ()
  in
  let data_fs =
    Nativefs.create ~metrics ~name:"ext4-data" ~clock ~cost
      (Store.Ssd { cache; flush_pages = 64 }) ()
  in
  ignore (ok (Kernel.mount_at kernel init ~fs:(Nativefs.ops data_fs) "/data"));
  ok (Kernel.mkdir kernel init "/data/bench" ~mode:0o777);
  let session, dir =
    match backend with
    | Native -> (None, "/data/bench")
    | Cntrfs opts ->
        let server_proc = Kernel.fork kernel init in
        server_proc.Proc.comm <- "cntrfs";
        let session =
          Session.create ~kernel ~server_proc ~root_path:"/" ~opts ~threads ~sched ~budget ()
        in
        ignore (ok (Kernel.mount_at kernel init ~fs:(Session.fs session) "/cntr"));
        (Some session, "/cntr/data/bench")
  in
  {
    kernel;
    proc = init;
    dir;
    backing_dir = "/data/bench";
    session;
    sched;
    rng = Rng.create ~seed:0xbe7c4;
    data_fs;
  }

(* Flush the backing cache's dirty pages so measurement starts from a
   settled device state (cache stays warm — clean pages remain). *)
let settle env =
  match Store.cache (Nativefs.store env.data_fs) with
  | Some cache -> Page_cache.flush_all cache
  | None -> ()

(* Run [w] on [backend]; returns virtual nanoseconds of the measured
   phase.  [obs] collects the run's metrics (a fresh private handle when
   omitted, since each run builds a fresh env).  The body runs as the root
   task of the world's scheduler, so it may spawn concurrent client tasks
   whose round trips overlap; the measured time is the root task's span. *)
let run_workload ?obs ~backend w =
  let env = make_env ?obs ~backend ~budget_mb:w.w_budget_mb () in
  w.w_setup env;
  settle env;
  let t0 = Clock.now_ns env.kernel.Kernel.clock in
  Repro_sched.Sched.run env.sched (fun () -> w.w_run env);
  let t1 = Clock.now_ns env.kernel.Kernel.clock in
  Int64.to_int (Int64.sub t1 t0)

(* Relative overhead as in Figure 2: >1 means CntrFS is slower. *)
let overhead ?(opts = Opts.cntr_default) w =
  let native = run_workload ~backend:Native w in
  let cntr = run_workload ~backend:(Cntrfs opts) w in
  float_of_int cntr /. float_of_int (max 1 native)

(* Run [thunks] as concurrent client tasks (dbench clients, I/O threads)
   and join them all; total elapsed is the slowest task's timeline. *)
let concurrently env thunks =
  let tasks = List.map (Repro_sched.Sched.spawn env.sched) thunks in
  List.iter (Repro_sched.Sched.await env.sched) tasks

(* --- tiny syscall helpers for workload bodies ----------------------------- *)

let openf env path flags mode = ok (Kernel.open_ env.kernel env.proc path flags ~mode)
let closef env fd = ok (Kernel.close env.kernel env.proc fd)

let write_all env fd data = ignore (ok (Kernel.write env.kernel env.proc fd data))

let pwrite env fd ~off data = ignore (ok (Kernel.pwrite env.kernel env.proc fd ~off data))
let pread env fd ~off ~len = ok (Kernel.pread env.kernel env.proc fd ~off ~len)

let write_file env path data =
  let fd = openf env path [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] 0o644 in
  write_all env fd data;
  closef env fd

let read_file env path = ok (Kernel.read_whole env.kernel env.proc path)

let mkdir env path = ok (Kernel.mkdir env.kernel env.proc path ~mode:0o755)

let unlink env path = ok (Kernel.unlink env.kernel env.proc path)

let fsync env fd = ok (Kernel.fsync env.kernel env.proc fd)

(* Burn CPU time (compression, request parsing, SQL). *)
let cpu env ns = Clock.consume_int env.kernel.Kernel.clock ns

(* Sequentially write [total] bytes in [record]-sized writes. *)
let seq_write env fd ~total ~record =
  let chunk = String.make record 'w' in
  let rec go off =
    if off < total then begin
      pwrite env fd ~off chunk;
      go (off + record)
    end
  in
  go 0

(* Sequentially read [total] bytes in [record]-sized reads. *)
let seq_read env fd ~total ~record =
  let rec go off =
    if off < total then begin
      ignore (pread env fd ~off ~len:record);
      go (off + record)
    end
  in
  go 0
