(* The synthetic Top-50 Docker Hub catalogue (§5.3, Figure 5).

   Each entry mirrors the structure the paper observed in popular official
   images: a distro base (shell, coreutils, libc, package manager, docs),
   an application layer (binary, config, libraries, assets), and auxiliary
   tooling — of which only a fraction is touched at runtime.  Six images
   are single Go binaries whose whole content is used (the paper's 6/50
   with <10 % reduction).  Sizes are scaled 1:16 from real images to keep
   materialization cheap; reductions are ratios and unaffected by scale. *)

open Repro_util

let kib = Size.kib
let mib = Size.mib

(* scaled-down "MB": 1/16th of a real megabyte *)
let smb n = n * mib 1 / 16

type spec = {
  sp_name : string;
  sp_base : [ `Debian | `Alpine | `Scratch ];
  (* application working set (binary + libs + used assets), scaled bytes *)
  sp_app_bytes : int;
  (* target size reduction when slimmed, 0.0 - 1.0 *)
  sp_target_reduction : float;
}

(* --- shared base layers -------------------------------------------------- *)

let coreutils_names = [
  "ls"; "cat"; "cp"; "mv"; "rm"; "mkdir"; "rmdir"; "ln"; "chmod"; "chown";
  "head"; "tail"; "wc"; "sort"; "uniq"; "cut"; "tr"; "touch"; "date"; "env";
  "id"; "stat"; "du"; "df"; "find"; "grep"; "sed"; "awk"; "tar"; "ps";
]

let debian_base =
  let entries =
    [
      Layer.Dir { path = "/bin"; mode = 0o755 };
      Layer.Dir { path = "/usr"; mode = 0o755 };
      Layer.Dir { path = "/usr/bin"; mode = 0o755 };
      Layer.Dir { path = "/usr/sbin"; mode = 0o755 };
      Layer.Dir { path = "/lib"; mode = 0o755 };
      Layer.Dir { path = "/etc"; mode = 0o755 };
      Layer.Dir { path = "/tmp"; mode = 0o1777 };
      Layer.Dir { path = "/var"; mode = 0o755 };
      Layer.Dir { path = "/var/lib"; mode = 0o755 };
      Layer.File { path = "/bin/bash"; mode = 0o755; content = Content.Binary { prog = "sh"; size = smb 1 } };
      Layer.Symlink { path = "/bin/sh"; target = "bash" };
      Layer.File { path = "/lib/libc.so.6"; mode = 0o755; content = Content.Filler (smb 2) };
      Layer.File { path = "/etc/passwd"; mode = 0o644; content = Content.Literal "root:x:0:0:root:/root:/bin/bash\n" };
      Layer.File { path = "/etc/group"; mode = 0o644; content = Content.Literal "root:x:0:\n" };
      Layer.File { path = "/etc/hostname"; mode = 0o644; content = Content.Literal "debian\n" };
      Layer.File { path = "/etc/os-release"; mode = 0o644; content = Content.Literal "ID=debian\nVERSION_ID=9\n" };
      Layer.File { path = "/usr/bin/apt"; mode = 0o755; content = Content.Binary { prog = "pkg"; size = smb 1 } };
      Layer.File { path = "/usr/bin/dpkg"; mode = 0o755; content = Content.Binary { prog = "pkg"; size = smb 1 } };
      Layer.File { path = "/var/lib/dpkg-status"; mode = 0o644; content = Content.Filler (smb 3) };
      Layer.File { path = "/usr/share/locale.archive"; mode = 0o644; content = Content.Filler (smb 6) };
      Layer.File { path = "/usr/share/doc.tar"; mode = 0o644; content = Content.Filler (smb 4) };
    ]
    @ List.map
        (fun name ->
          Layer.File
            { path = "/usr/bin/" ^ name; mode = 0o755; content = Content.Binary { prog = name; size = smb 1 / 8 } })
        coreutils_names
  in
  Layer.v ~id:"base:debian" entries

let alpine_base =
  Layer.v ~id:"base:alpine"
    [
      Layer.Dir { path = "/bin"; mode = 0o755 };
      Layer.Dir { path = "/usr"; mode = 0o755 };
      Layer.Dir { path = "/usr/bin"; mode = 0o755 };
      Layer.Dir { path = "/usr/sbin"; mode = 0o755 };
      Layer.Dir { path = "/lib"; mode = 0o755 };
      Layer.Dir { path = "/etc"; mode = 0o755 };
      Layer.Dir { path = "/tmp"; mode = 0o1777 };
      Layer.File { path = "/bin/busybox"; mode = 0o755; content = Content.Binary { prog = "busybox"; size = smb 1 } };
      Layer.Symlink { path = "/bin/sh"; target = "busybox" };
      Layer.File { path = "/lib/ld-musl.so.1"; mode = 0o755; content = Content.Filler (smb 1 / 2) };
      Layer.File { path = "/etc/passwd"; mode = 0o644; content = Content.Literal "root:x:0:0:root:/root:/bin/sh\n" };
      Layer.File { path = "/etc/hostname"; mode = 0o644; content = Content.Literal "alpine\n" };
      Layer.File { path = "/etc/os-release"; mode = 0o644; content = Content.Literal "ID=alpine\nVERSION_ID=3.7\n" };
      Layer.File { path = "/sbin/apk"; mode = 0o755; content = Content.Binary { prog = "pkg"; size = smb 1 / 2 } };
    ]

let scratch_base =
  Layer.v ~id:"base:scratch"
    [
      Layer.Dir { path = "/etc"; mode = 0o755 };
      Layer.Dir { path = "/etc/ssl"; mode = 0o755 };
      Layer.File { path = "/etc/ssl/cert.pem"; mode = 0o644; content = Content.Filler (kib 16) };
    ]

let base_layer = function
  | `Debian -> debian_base
  | `Alpine -> alpine_base
  | `Scratch -> scratch_base

(* Bytes of a base the application actually touches at runtime. *)
let base_used_bytes = function
  | `Debian -> smb 2 + (smb 1) (* libc + sh *)
  | `Alpine -> smb 1 / 2 + smb 1
  | `Scratch -> kib 16

let base_paths_used = function
  | `Debian -> [ "/lib/libc.so.6"; "/bin/bash" ]
  | `Alpine -> [ "/lib/ld-musl.so.1"; "/bin/busybox" ]
  | `Scratch -> [ "/etc/ssl/cert.pem" ]

(* --- image synthesis ------------------------------------------------------ *)

(* Build the image for a spec: the application layer holds the working set
   plus enough unused ballast (assets, docs, aux tools) to land the target
   reduction. *)
let build spec =
  let rng = Rng.create ~seed:(Hashtbl.hash spec.sp_name) in
  let name = spec.sp_name in
  let base = base_layer spec.sp_base in
  let base_size = Layer.size base in
  let bin_path =
    match spec.sp_base with `Scratch -> "/" ^ name | _ -> "/usr/sbin/" ^ name
  in
  let conf_path = "/etc/" ^ name ^ ".conf" in
  let lib_path = "/usr/lib-" ^ name ^ ".so" in
  let bin_bytes = max (kib 64) (spec.sp_app_bytes * 6 / 10) in
  let lib_bytes = spec.sp_app_bytes * 3 / 10 in
  let used_asset_bytes = max 0 (spec.sp_app_bytes - bin_bytes - lib_bytes) in
  let used_paths =
    [ bin_path; conf_path; Programs.manifest_path ]
    @ (if lib_bytes > 0 then [ lib_path ] else [])
    @ (if used_asset_bytes > 0 then [ "/usr/share/" ^ name ^ "/hot.dat" ] else [])
    @ base_paths_used spec.sp_base
  in
  let accessed_bytes = spec.sp_app_bytes + base_used_bytes spec.sp_base in
  (* unused bytes needed so that reduction = unused / total hits target *)
  let r = spec.sp_target_reduction in
  let total_target = int_of_float (float_of_int accessed_bytes /. (1. -. r)) in
  let base_unused = max 0 (base_size - base_used_bytes spec.sp_base) in
  let ballast = max 0 (total_target - accessed_bytes - base_unused) in
  let manifest =
    String.concat "\n" (List.filter (fun p -> p <> Programs.manifest_path) used_paths) ^ "\n"
  in
  let app_entries =
    [
      Layer.Dir { path = "/usr/share/" ^ name; mode = 0o755 };
      Layer.File { path = bin_path; mode = 0o755; content = Content.Binary { prog = "appmain"; size = bin_bytes } };
      Layer.File { path = conf_path; mode = 0o644; content = Content.Literal ("# " ^ name ^ " config\nlisten=0.0.0.0\n") };
      Layer.File { path = Programs.manifest_path; mode = 0o644; content = Content.Literal manifest };
    ]
    @ (if lib_bytes > 0 then
         [ Layer.File { path = lib_path; mode = 0o755; content = Content.Filler lib_bytes } ]
       else [])
    @ (if used_asset_bytes > 0 then
         [ Layer.File { path = "/usr/share/" ^ name ^ "/hot.dat"; mode = 0o644; content = Content.Filler used_asset_bytes } ]
       else [])
  in
  (* ballast: cold assets, docs, bundled aux tools — present, never read *)
  let aux_entries =
    if ballast = 0 then []
    else begin
      let pieces = 3 + Rng.int rng 4 in
      let piece = ballast / pieces in
      List.init pieces (fun i ->
          let path =
            match i mod 3 with
            | 0 -> Printf.sprintf "/usr/share/%s/cold-%d.dat" name i
            | 1 -> Printf.sprintf "/usr/share/doc/%s-%d.gz" name i
            | _ -> Printf.sprintf "/opt/%s-extras/tool-%d" name i
          in
          let size = if i = pieces - 1 then ballast - (piece * (pieces - 1)) else piece in
          Layer.File { path; mode = 0o644; content = Content.Filler size })
      |> fun files ->
      Layer.Dir { path = "/usr/share/doc"; mode = 0o755 }
      :: Layer.Dir { path = "/opt"; mode = 0o755 }
      :: Layer.Dir { path = "/opt/" ^ name ^ "-extras"; mode = 0o755 }
      :: files
    end
  in
  let config =
    {
      Image.env =
        [ ("PATH", "/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin"); (name ^ "_MODE", "production") ];
      entrypoint = [ bin_path ];
      workdir = "/";
      user = 0;
    }
  in
  Image.v ~name ~config
    [ base; Layer.v ~id:("app:" ^ name) app_entries; Layer.v ~id:("aux:" ^ name) aux_entries ]

(* --- the Top-50 ------------------------------------------------------------ *)

(* 44 ordinary applications: reductions spread over ~[0.40, 0.97] with most
   mass in [0.60, 0.97], plus 6 Go single binaries below 0.10.  The
   resulting mean is ~0.66, matching the paper's 66.6 %. *)
let specs =
  let app name base app_smb reduction =
    { sp_name = name; sp_base = base; sp_app_bytes = smb app_smb; sp_target_reduction = reduction }
  in
  [
    app "nginx" `Debian 4 0.92;
    app "httpd" `Debian 6 0.88;
    app "redis" `Alpine 3 0.85;
    app "memcached" `Alpine 2 0.90;
    app "mysql" `Debian 40 0.75;
    app "postgres" `Debian 30 0.77;
    app "mongo" `Debian 45 0.70;
    app "mariadb" `Debian 38 0.74;
    app "rabbitmq" `Debian 18 0.72;
    app "elasticsearch" `Debian 60 0.65;
    app "kibana" `Debian 50 0.68;
    app "logstash" `Debian 55 0.63;
    app "cassandra" `Debian 45 0.66;
    app "influxdb" `Alpine 20 0.80;
    app "telegraf" `Alpine 15 0.78;
    app "wordpress" `Debian 25 0.82;
    app "ghost" `Debian 30 0.76;
    app "drupal" `Debian 28 0.81;
    app "joomla" `Debian 26 0.83;
    app "redmine" `Debian 32 0.71;
    app "jenkins" `Debian 70 0.62;
    app "sonarqube" `Debian 65 0.60;
    app "nextcloud" `Debian 35 0.79;
    app "owncloud" `Debian 34 0.78;
    app "gitlab" `Debian 120 0.55;
    app "rocketchat" `Debian 45 0.69;
    app "mattermost" `Debian 40 0.73;
    app "grafana" `Alpine 25 0.76;
    app "haproxy" `Debian 3 0.93;
    app "varnish" `Debian 4 0.91;
    app "squid" `Debian 6 0.87;
    app "openldap" `Debian 8 0.84;
    app "zookeeper" `Debian 20 0.70;
    app "kafka" `Debian 50 0.64;
    app "solr" `Debian 55 0.61;
    app "tomcat" `Debian 30 0.72;
    app "jetty" `Debian 22 0.75;
    app "adminer" `Alpine 2 0.94;
    app "phpmyadmin" `Alpine 6 0.89;
    app "matomo" `Debian 20 0.80;
    app "odoo" `Debian 60 0.58;
    app "couchdb" `Debian 25 0.74;
    app "neo4j" `Debian 55 0.63;
    app "rethinkdb" `Debian 30 0.68;
    (* Go single binaries: nearly everything is used *)
    app "traefik" `Scratch 28 0.06;
    app "etcd" `Scratch 22 0.05;
    app "consul" `Scratch 35 0.08;
    app "vault" `Scratch 40 0.07;
    app "registry" `Scratch 18 0.04;
    app "coredns" `Scratch 20 0.09;
  ]

let top50 () = List.map build specs

(* Push the whole catalogue into a registry. *)
let publish registry = List.iter (Registry.push registry) (top50 ())
