(** Programs baked into catalogue images.  [appmain] reads
    /etc/app.manifest and touches every file listed there, giving
    Docker-Slim's dynamic analysis a realistic access trace. *)

val manifest_path : string

(** Register [appmain] and [pause] with the kernel. *)
val install : Repro_os.Kernel.t -> unit
