(* File contents in image layers.  Catalogue images carry megabytes of
   ballast; content descriptors keep layers cheap until materialization. *)

open Repro_os

type t =
  | Literal of string
  | Binary of { prog : string; size : int } (* executable: #!BIN header + pad *)
  | Filler of int (* incompressible data of the given size *)

let size = function
  | Literal s -> String.length s
  | Binary { size; prog } -> max size (String.length Binfmt.bin_prefix + String.length prog + 1)
  | Filler n -> n

(* Render to actual bytes (at materialization time). *)
let render = function
  | Literal s -> s
  | Binary { prog; size } -> Binfmt.make ~prog ~size ()
  | Filler n -> String.make n 'D'
