(* Programs baked into catalogue images.  [appmain] is the generic
   application entrypoint: it reads /etc/app.manifest and touches every
   file listed there — giving Docker-Slim's dynamic analysis a realistic
   access trace (binary, config, libraries, hot assets). *)

open Repro_util
open Repro_os

let manifest_path = "/etc/app.manifest"

let install kernel =
  Kernel.register_program kernel "appmain" (fun k proc _args ->
      match Kernel.read_whole k proc manifest_path with
      | Error _ -> 1
      | Ok manifest ->
          let files =
            String.split_on_char '\n' manifest |> List.filter (fun l -> String.trim l <> "")
          in
          let touched_all =
            List.for_all
              (fun path ->
                match Kernel.read_whole k proc (String.trim path) with
                | Ok _ -> true
                | Error Errno.EISDIR -> Result.is_ok (Kernel.readdir k proc (String.trim path))
                | Error _ -> false)
              files
          in
          if touched_all then 0 else 1);
  (* A do-nothing long-running main for images without a workload. *)
  Kernel.register_program kernel "pause" (fun _ _ _ -> 0)
