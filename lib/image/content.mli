(** File contents in image layers, kept as cheap descriptors until
    materialization. *)

type t =
  | Literal of string
  | Binary of { prog : string; size : int }  (** executable: binfmt header + pad *)
  | Filler of int  (** incompressible data of the given size *)

val size : t -> int

(** Render to actual bytes. *)
val render : t -> string
