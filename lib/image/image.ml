(* Container images: an ordered stack of layers plus run configuration.
   [materialize] unions the layers into a fresh filesystem — the rootfs a
   container engine boots from. *)

open Repro_util
open Repro_vfs
open Repro_os

type config = {
  env : (string * string) list;
  entrypoint : string list;
  workdir : string;
  user : int; (* uid the main process runs as *)
}

let default_config = {
  env = [ ("PATH", "/usr/local/bin:/usr/bin:/bin:/usr/sbin:/sbin") ];
  entrypoint = [];
  workdir = "/";
  user = 0;
}

type t = {
  name : string;
  tag : string;
  layers : Layer.t list; (* bottom-most first *)
  config : config;
}

let v ?(tag = "latest") ?(config = default_config) ~name layers = { name; tag; layers; config }

let ref_ t = t.name ^ ":" ^ t.tag

(* Total uncompressed size. *)
let size t = List.fold_left (fun acc l -> acc + Layer.size l) 0 t.layers

let file_count t =
  List.fold_left (fun acc l -> acc + List.length (Layer.paths l)) 0 t.layers

(* All paths present after union (whiteouts applied). *)
let effective_paths t =
  let present = Hashtbl.create 256 in
  List.iter
    (fun layer ->
      List.iter
        (function
          | Layer.Whiteout p -> Hashtbl.remove present p
          | Layer.Dir { path; _ } | Layer.File { path; _ } | Layer.Symlink { path; _ } ->
              Hashtbl.replace present path ())
        layer.Layer.entries)
    t.layers;
  Hashtbl.fold (fun p () acc -> p :: acc) present []
  |> List.sort compare

(* Winning entry per path after union — the static view a partitioner
   walks without materializing the image. *)
let effective_entries t =
  let entries = Hashtbl.create 256 in
  List.iter
    (fun layer ->
      List.iter
        (fun entry ->
          match entry with
          | Layer.Whiteout p -> Hashtbl.remove entries p
          | Layer.Dir { path; _ } | Layer.File { path; _ } | Layer.Symlink { path; _ } ->
              Hashtbl.replace entries path entry)
        layer.Layer.entries)
    t.layers;
  entries

(* Effective size per path after union. *)
let effective_sizes t =
  let sizes = Hashtbl.create 256 in
  List.iter
    (fun layer ->
      List.iter
        (function
          | Layer.Whiteout p -> Hashtbl.remove sizes p
          | Layer.Dir { path; _ } -> Hashtbl.replace sizes path 0
          | Layer.File { path; content; _ } -> Hashtbl.replace sizes path (Content.size content)
          | Layer.Symlink { path; target } -> Hashtbl.replace sizes path (String.length target))
        layer.Layer.entries)
    t.layers;
  sizes

let effective_size t =
  Hashtbl.fold (fun _ s acc -> acc + s) (effective_sizes t) 0

let ( let* ) = Result.bind

let rec mkdir_p kernel proc path =
  match Kernel.stat kernel proc path with
  | Ok _ -> Ok ()
  | Error Errno.ENOENT ->
      let parent = Pathx.dirname path in
      let* () = if parent = "/" || parent = "." then Ok () else mkdir_p kernel proc parent in
      (match Kernel.mkdir kernel proc path ~mode:0o755 with
      | Ok () | (Error Errno.EEXIST) -> Ok ()
      | Error e -> Error e)
  | Error e -> Error e

(* Union-materialize the image into a fresh RAM filesystem, applying layers
   bottom-up with whiteouts.  Returns the rootfs.  [proc] supplies the
   kernel context doing the work (the engine daemon). *)
let materialize t ~kernel ~proc =
  let clock = kernel.Kernel.clock and cost = kernel.Kernel.cost in
  let rootfs = Nativefs.create ~name:(ref_ t ^ "/rootfs") ~clock ~cost Store.Ram () in
  (* Work in a scratch process whose root is the new fs, so paths are
     simply image-absolute. *)
  let scratch = Kernel.fork kernel proc in
  let ns = Mount.create_ns ~fs:(Nativefs.ops rootfs) () in
  Kernel.register_mnt_ns kernel ns;
  let root_vnode = { Proc.v_mount = Mount.root_mount ns; v_ino = (Nativefs.ops rootfs).Fsops.root } in
  scratch.Proc.ns.Proc.mnt <- ns;
  scratch.Proc.root <- root_vnode;
  scratch.Proc.cwd <- root_vnode;
  let apply entry =
    match entry with
    | Layer.Dir { path; mode } ->
        let* () = mkdir_p kernel scratch (Pathx.dirname path) in
        (match Kernel.mkdir kernel scratch path ~mode with
        | Ok () | (Error Errno.EEXIST) -> Ok ()
        | Error e -> Error e)
    | Layer.File { path; mode; content } ->
        let* () = mkdir_p kernel scratch (Pathx.dirname path) in
        let* fd =
          Kernel.open_ kernel scratch path [ Types.O_CREAT; Types.O_WRONLY; Types.O_TRUNC ] ~mode
        in
        let* _n = Kernel.write kernel scratch fd (Content.render content) in
        let* () = Kernel.close kernel scratch fd in
        Kernel.chmod kernel scratch path mode
    | Layer.Symlink { path; target } ->
        let* () = mkdir_p kernel scratch (Pathx.dirname path) in
        (match Kernel.symlink kernel scratch ~target ~linkpath:path with
        | Ok () | (Error Errno.EEXIST) -> Ok ()
        | Error e -> Error e)
    | Layer.Whiteout path -> (
        match Kernel.stat kernel scratch path with
        | Error Errno.ENOENT -> Ok ()
        | Error e -> Error e
        | Ok st ->
            if st.Types.st_kind = Types.Dir then Kernel.rmdir kernel scratch path
            else Kernel.unlink kernel scratch path)
  in
  let result =
    List.fold_left
      (fun acc layer ->
        let* () = acc in
        List.fold_left
          (fun acc e ->
            let* () = acc in
            apply e)
          (Ok ()) layer.Layer.entries)
      (Ok ()) t.layers
  in
  Kernel.exit kernel scratch 0;
  match result with Ok () -> Ok rootfs | Error e -> Error e
