(* A Dockerfile-style image builder.

   Instructions assemble layers; RUN executes a command in a *build
   container* over the image-so-far and captures the filesystem diff as a
   new layer (adds, changes and whiteouts), exactly like `docker build`.
   This is how a user of this library produces the slim/fat image pairs
   CNTR works with. *)

open Repro_util
open Repro_vfs
open Repro_os

type instruction =
  | From of string (* image reference in the registry, or "scratch" *)
  | Copy of { dst : string; mode : int; content : Content.t }
  | Mkdir of string
  | Run of string (* executed with /bin/sh -c in a build container *)
  | Env of string * string
  | Entrypoint of string list
  | Workdir of string
  | User of int

let ( let* ) = Result.bind

(* --- filesystem snapshots for RUN diffs ----------------------------------- *)

type snap_node =
  | S_dir of int (* mode *)
  | S_file of int * string (* mode, content *)
  | S_symlink of string

(* Walk the build container's filesystem into a path -> node map. *)
let snapshot kernel proc =
  let nodes = Hashtbl.create 256 in
  let rec walk dir =
    match Kernel.readdir kernel proc dir with
    | Error _ -> ()
    | Ok entries ->
        List.iter
          (fun e ->
            let name = e.Types.d_name in
            if name <> "." && name <> ".." then begin
              let path = if dir = "/" then "/" ^ name else dir ^ "/" ^ name in
              match Kernel.lstat kernel proc path with
              | Error _ -> ()
              | Ok st -> (
                  match st.Types.st_kind with
                  | Types.Dir ->
                      Hashtbl.replace nodes path (S_dir st.Types.st_mode);
                      walk path
                  | Types.Symlink ->
                      (match Kernel.readlink kernel proc path with
                      | Ok target -> Hashtbl.replace nodes path (S_symlink target)
                      | Error _ -> ())
                  | Types.Reg -> (
                      match Kernel.read_whole kernel proc path with
                      | Ok content -> Hashtbl.replace nodes path (S_file (st.Types.st_mode, content))
                      | Error _ -> ())
                  | _ -> () (* devices/sockets are not captured in layers *))
            end)
          entries
  in
  walk "/";
  nodes

(* Diff two snapshots into layer entries: adds/changes plus whiteouts,
   parents before children, whiteouts deepest-first. *)
let diff_layers ~before ~after =
  let changes = ref [] in
  Hashtbl.iter
    (fun path node ->
      let changed =
        match Hashtbl.find_opt before path with
        | Some old -> old <> node
        | None -> true
      in
      if changed then
        changes :=
          (match node with
          | S_dir mode -> Layer.Dir { path; mode }
          | S_file (mode, content) -> Layer.File { path; mode; content = Content.Literal content }
          | S_symlink target -> Layer.Symlink { path; target })
          :: !changes)
    after;
  let removals = ref [] in
  Hashtbl.iter
    (fun path _ -> if not (Hashtbl.mem after path) then removals := Layer.Whiteout path :: !removals)
    before;
  let path_of = function
    | Layer.Dir { path; _ } | Layer.File { path; _ } | Layer.Symlink { path; _ } | Layer.Whiteout path
      -> path
  in
  let adds = List.sort (fun a b -> compare (path_of a) (path_of b)) !changes in
  let whiteouts =
    List.sort (fun a b -> compare (path_of b) (path_of a)) !removals (* deepest first *)
  in
  whiteouts @ adds

(* --- the build loop --------------------------------------------------------- *)

(* A minimal build container: fresh namespace over the materialized image,
   running as root with the image's env. *)
let build_container kernel image =
  let init = Kernel.init_proc kernel in
  let* rootfs = Image.materialize image ~kernel ~proc:init in
  let proc = Kernel.fork kernel init in
  proc.Proc.comm <- "buildkit";
  let ns = Mount.create_ns ~fs:(Nativefs.ops rootfs) () in
  Kernel.register_mnt_ns kernel ns;
  let root_vnode =
    { Proc.v_mount = Mount.root_mount ns; v_ino = (Nativefs.ops rootfs).Fsops.root }
  in
  proc.Proc.ns.Proc.mnt <- ns;
  proc.Proc.root <- root_vnode;
  proc.Proc.cwd <- root_vnode;
  proc.Proc.env <- image.Image.config.Image.env;
  Ok proc

(* [build ~kernel ~registry ~name instructions] assembles an image.  FROM
   must come first (or be omitted for scratch builds). *)
let build ~kernel ~registry ~name instructions =
  let counter = ref 0 in
  let fresh_layer entries =
    incr counter;
    Layer.v ~id:(Printf.sprintf "build:%s:%d" name !counter) entries
  in
  let start config layers = Image.v ~name ~config layers in
  let* base, rest =
    match instructions with
    | From "scratch" :: rest -> Ok (start Image.default_config [], rest)
    | From ref_ :: rest -> (
        match Registry.find registry ref_ with
        | Some img -> Ok (start img.Image.config img.Image.layers, rest)
        | None -> Error Errno.ENOENT)
    | rest -> Ok (start Image.default_config [], rest)
  in
  List.fold_left
    (fun acc instr ->
      let* image = acc in
      match instr with
      | From _ -> Error Errno.EINVAL (* only first *)
      | Copy { dst; mode; content } ->
          Ok { image with Image.layers = image.Image.layers @ [ fresh_layer [ Layer.File { path = dst; mode; content } ] ] }
      | Mkdir path ->
          Ok { image with Image.layers = image.Image.layers @ [ fresh_layer [ Layer.Dir { path; mode = 0o755 } ] ] }
      | Env (k, v) ->
          let config =
            { image.Image.config with Image.env = (k, v) :: List.remove_assoc k image.Image.config.Image.env }
          in
          Ok { image with Image.config = config }
      | Entrypoint argv ->
          Ok { image with Image.config = { image.Image.config with Image.entrypoint = argv } }
      | Workdir dir ->
          Ok { image with Image.config = { image.Image.config with Image.workdir = dir } }
      | User uid ->
          Ok { image with Image.config = { image.Image.config with Image.user = uid } }
      | Run cmd ->
          (* execute in a build container; the fs diff becomes a layer *)
          let* proc = build_container kernel image in
          let before = snapshot kernel proc in
          let* code = Kernel.exec kernel proc "/bin/sh" [ "sh"; "-c"; cmd ] in
          if code <> 0 then begin
            Kernel.exit kernel proc code;
            Error Errno.EIO
          end
          else begin
            let after = snapshot kernel proc in
            Kernel.exit kernel proc 0;
            let entries = diff_layers ~before ~after in
            let layers =
              if entries = [] then image.Image.layers
              else image.Image.layers @ [ fresh_layer entries ]
            in
            Ok { image with Image.layers }
          end)
    (Ok base) rest
