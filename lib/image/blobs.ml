(* Content descriptors -> chunk manifests, the bridge between the image
   substrate and the dedup store.

   Chunking is a pure function of the rendered bytes, so results are
   memoized process-wide by structural descriptor equality: the Top-50
   catalogue's 7-MB binaries are chunked once ever, not once per world.
   [Filler] and [Binary] render to (header +) a uniform pad, so they take
   {!Repro_store.Chunker.chunks_prefixed_uniform}'s analytic path and are
   never materialized at all. *)

open Repro_os
module Chunker = Repro_store.Chunker

let memo : (Content.t, Chunker.chunk list) Hashtbl.t = Hashtbl.create 1024

let content_chunks (c : Content.t) =
  match Hashtbl.find_opt memo c with
  | Some chunks -> chunks
  | None ->
      let chunks =
        match c with
        | Content.Literal s -> Chunker.chunks_of_string s
        | Content.Filler n -> Chunker.chunks_prefixed_uniform ~prefix:"" ~fill:'D' ~total:n ()
        | Content.Binary { prog; size } ->
            (* mirror Binfmt.make: "#!BIN <prog>\n" padded with 'x' *)
            let header = Binfmt.bin_prefix ^ prog ^ "\n" in
            let total = max size (String.length header) in
            Chunker.chunks_prefixed_uniform ~prefix:header ~fill:'x' ~total ()
      in
      Hashtbl.replace memo c chunks;
      chunks

(* A layer's manifest: entry chunks in entry order.  Directory and
   whiteout entries carry no bytes; symlinks carry their target. *)
let layer_chunks (layer : Layer.t) =
  List.concat_map
    (function
      | Layer.Dir _ | Layer.Whiteout _ -> []
      | Layer.File { content; _ } -> content_chunks content
      | Layer.Symlink { target; _ } -> Chunker.chunks_of_string target)
    layer.Layer.entries
