(* An image registry with a network cost model, rebuilt on the
   content-addressed dedup store (lib/store).

   Pushing an image registers every layer's chunk manifest in the
   registry-side store; pulling transfers only the chunks missing from the
   pulling host's store.  The cost model is chunk-granular: a layer whose
   chunks are all already on the host costs nothing — not even the
   per-layer round-trip latency — so shared base layers and shared chunk
   runs both make deployments cheaper (the paper's §1 motivation, download
   = 92 % of deployment [52], now visible at registry scale). *)

open Repro_util
module Store = Repro_store.Store

type t = {
  clock : Clock.t;
  images : (string, Image.t) Hashtbl.t; (* "name:tag" *)
  (* network model *)
  bandwidth_bytes_per_s : float;
  latency_ns_per_layer : int;
  (* the registry's content store (everything pushed) *)
  store : Store.t;
  (* the pulling host's chunk store (the "layer cache" of old, now
     chunk-granular) *)
  host : Store.t;
  mutable bytes_transferred : int;
}

let create ?metrics ~clock ?(bandwidth_mb_per_s = 125.0) ?(latency_ms_per_layer = 20) () = {
  clock;
  images = Hashtbl.create 64;
  bandwidth_bytes_per_s = bandwidth_mb_per_s *. 1024. *. 1024.;
  latency_ns_per_layer = latency_ms_per_layer * 1_000_000;
  store = Store.create ?metrics ~prefix:"store" ();
  host = Store.create ?metrics ~prefix:"store.host" ();
  bytes_transferred = 0;
}

let store t = t.store
let host_store t = t.host
let bytes_transferred t = t.bytes_transferred

let push t image =
  Hashtbl.replace t.images (Image.ref_ image) image;
  List.iter
    (fun (layer : Layer.t) ->
      (* layer ids are content addresses: a known id re-registers its
         cached manifest (refcount bump) without re-walking the entries *)
      let manifest =
        match Store.manifest t.store layer.Layer.id with
        | Some m -> m
        | None -> Blobs.layer_chunks layer
      in
      Store.add t.store ~key:layer.Layer.id manifest)
    image.Image.layers

let find t ref_ = Hashtbl.find_opt t.images ref_

let images t =
  Hashtbl.fold (fun _ i acc -> i :: acc) t.images []
  |> List.sort (fun a b -> compare (Image.ref_ a) (Image.ref_ b))

(* Pull an image: for each layer missing from the host store, transfer the
   chunks the host doesn't already hold, charging network time on the
   virtual clock.  Layers already present — or whose chunks are all
   present under other layers — transfer nothing and are free: the
   per-layer latency is charged only for layers that actually move bytes.
   Returns the image and the bytes actually transferred. *)
let pull t ref_ =
  match find t ref_ with
  | None -> Error `Not_found
  | Some image ->
      let transferred = ref 0 in
      List.iter
        (fun (layer : Layer.t) ->
          if not (Store.mem t.host layer.Layer.id) then begin
            let manifest =
              match Store.manifest t.store layer.Layer.id with
              | Some m -> m
              | None -> Blobs.layer_chunks layer (* pulled without a push; still well-defined *)
            in
            let missing = Store.missing t.host manifest in
            let bytes = Repro_store.Chunker.manifest_bytes missing in
            Store.add t.host ~key:layer.Layer.id manifest;
            if bytes > 0 then begin
              transferred := !transferred + bytes;
              let ns =
                t.latency_ns_per_layer
                + int_of_float (float_of_int bytes /. t.bandwidth_bytes_per_s *. 1e9)
              in
              Clock.consume_int t.clock ns
            end
          end)
        image.Image.layers;
      t.bytes_transferred <- t.bytes_transferred + !transferred;
      Ok (image, !transferred)

let drop_cache t = Store.reset t.host
