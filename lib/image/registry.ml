(* An image registry with a network cost model.  Pulling transfers each
   layer not already in the host's layer cache — this is how shared base
   images make deployments cheaper, and how slim images cut the deployment
   time the paper's introduction measures (download = 92 % of deployment
   [52]). *)

open Repro_util

type t = {
  clock : Clock.t;
  images : (string, Image.t) Hashtbl.t; (* "name:tag" *)
  (* network model *)
  bandwidth_bytes_per_s : float;
  latency_ns_per_layer : int;
  (* the pulling host's layer cache *)
  layer_cache : (string, unit) Hashtbl.t;
  mutable bytes_transferred : int;
}

let create ~clock ?(bandwidth_mb_per_s = 125.0) ?(latency_ms_per_layer = 20) () = {
  clock;
  images = Hashtbl.create 64;
  bandwidth_bytes_per_s = bandwidth_mb_per_s *. 1024. *. 1024.;
  latency_ns_per_layer = latency_ms_per_layer * 1_000_000;
  layer_cache = Hashtbl.create 64;
  bytes_transferred = 0;
}

let push t image = Hashtbl.replace t.images (Image.ref_ image) image

let find t ref_ = Hashtbl.find_opt t.images ref_

let images t =
  Hashtbl.fold (fun _ i acc -> i :: acc) t.images []
  |> List.sort (fun a b -> compare (Image.ref_ a) (Image.ref_ b))

(* Pull an image: transfer every layer missing from the host cache,
   charging network time on the virtual clock.  Returns the image and the
   bytes actually transferred. *)
let pull t ref_ =
  match find t ref_ with
  | None -> Error `Not_found
  | Some image ->
      let transferred = ref 0 in
      List.iter
        (fun layer ->
          if not (Hashtbl.mem t.layer_cache layer.Layer.id) then begin
            let bytes = Layer.size layer in
            transferred := !transferred + bytes;
            Hashtbl.replace t.layer_cache layer.Layer.id ();
            let ns =
              t.latency_ns_per_layer
              + int_of_float (float_of_int bytes /. t.bandwidth_bytes_per_s *. 1e9)
            in
            Clock.consume_int t.clock ns
          end)
        image.Image.layers;
      t.bytes_transferred <- t.bytes_transferred + !transferred;
      Ok (image, !transferred)

let drop_cache t = Hashtbl.reset t.layer_cache
